// Command fourq-sign is the ITS-flavoured end-to-end demo: generate a
// key pair, sign a message with ECDSA over FourQ, verify it, and report
// what the modelled ASIC would achieve for the same operations.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ecdsa"
)

func main() {
	msg := flag.String("msg", "priority vehicle approaching: clear intersection 7", "message to sign")
	asic := flag.Bool("asic", true, "also report modelled ASIC timing")
	flag.Parse()

	if err := run(*msg, *asic); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-sign:", err)
		os.Exit(1)
	}
}

func run(msg string, asic bool) error {
	fmt.Println("generating FourQ key pair...")
	t0 := time.Now()
	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("  done in %v\n", time.Since(t0).Round(time.Microsecond))

	fmt.Printf("signing %q...\n", msg)
	t0 = time.Now()
	sig, err := ecdsa.Sign(rand.Reader, priv, []byte(msg))
	if err != nil {
		return err
	}
	signDur := time.Since(t0)
	b := sig.Bytes()
	fmt.Printf("  signature (r||s): %x...\n", b[:24])
	fmt.Printf("  software signing time: %v\n", signDur.Round(time.Microsecond))

	t0 = time.Now()
	ok := ecdsa.Verify(&priv.Public, []byte(msg), sig)
	verDur := time.Since(t0)
	if !ok {
		return fmt.Errorf("signature did not verify")
	}
	fmt.Printf("  verified in software: %v\n", verDur.Round(time.Microsecond))

	// Tampering check for the demo.
	bad := strings.ToUpper(msg)
	if ecdsa.Verify(&priv.Public, []byte(bad), sig) {
		return fmt.Errorf("tampered message verified")
	}
	fmt.Println("  tampered message correctly rejected")

	if asic {
		fmt.Println("modelled ASIC offload (scalar multiplications on the cryptoprocessor):")
		p, err := core.New(core.Config{})
		if err != nil {
			return err
		}
		m, err := p.PowerModel()
		if err != nil {
			return err
		}
		// Signing = 1 SM; verification = 2 SMs (double-scalar).
		for _, v := range []float64{1.20, 0.32} {
			fmt.Printf("  VDD %.2f V: sign %7.1f us (%5.0f msg/s), verify %7.1f us (%5.0f msg/s), %.3f uJ/SM\n",
				v,
				m.Latency(v)*1e6, m.Throughput(v),
				2*m.Latency(v)*1e6, m.Throughput(v)/2,
				m.EnergyPerSM(v)*1e6)
		}
		fmt.Printf("  (the paper's dense-traffic scenario needs ~1000 verifications/s: satisfied at 1.2 V with %.0fx headroom)\n",
			m.Throughput(1.2)/2/1000)
	}
	return nil
}
