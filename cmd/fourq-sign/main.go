// Command fourq-sign is the ITS-flavoured end-to-end demo: generate a
// key pair, sign a message with ECDSA over FourQ, verify it, then run
// SchnorrQ signing and verification with every scalar multiplication
// served by the concurrent batch engine (cycle-accurate RTL workers),
// and report what the modelled ASIC would achieve for the same
// operations.
//
// Observability (see docs/OBSERVABILITY.md): -debug-addr serves the
// unified debug surface (pprof, expvar, /metrics, /debug/telemetry,
// /debug/flightrecorder) over the engine's own registry and flight
// recorder; -metrics writes the engine's Prometheus text exposition to
// a file at exit (the `make obs-smoke` hook).
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ecdsa"
	"repro/internal/engine"
	"repro/internal/schnorrq"
	"repro/internal/telemetry"
)

func main() {
	msg := flag.String("msg", "priority vehicle approaching: clear intersection 7", "message to sign")
	asic := flag.Bool("asic", true, "also report modelled ASIC timing")
	workers := flag.Int("workers", runtime.NumCPU(), "engine worker pool size for the SchnorrQ section")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /debug on this address (e.g. localhost:6060)")
	metricsPath := flag.String("metrics", "", "write the engine's Prometheus text exposition to this file at exit")
	flag.Parse()

	if err := run(*msg, *asic, *workers, *debugAddr, *metricsPath); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-sign:", err)
		os.Exit(1)
	}
}

func run(msg string, asic bool, workers int, debugAddr, metricsPath string) error {
	// One registry + flight recorder for the whole process: the SchnorrQ
	// engine reports into them, and the debug surface serves them live.
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(0)
	if debugAddr != "" {
		telemetry.ServeDebug(debugAddr, reg, fr)
	}
	fmt.Println("generating FourQ key pair...")
	t0 := time.Now()
	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("  done in %v\n", time.Since(t0).Round(time.Microsecond))

	fmt.Printf("signing %q...\n", msg)
	t0 = time.Now()
	sig, err := ecdsa.Sign(rand.Reader, priv, []byte(msg))
	if err != nil {
		return err
	}
	signDur := time.Since(t0)
	b := sig.Bytes()
	fmt.Printf("  signature (r||s): %x...\n", b[:24])
	fmt.Printf("  software signing time: %v\n", signDur.Round(time.Microsecond))

	t0 = time.Now()
	ok := ecdsa.Verify(&priv.Public, []byte(msg), sig)
	verDur := time.Since(t0)
	if !ok {
		return fmt.Errorf("signature did not verify")
	}
	fmt.Printf("  verified in software: %v\n", verDur.Round(time.Microsecond))

	// Tampering check for the demo.
	bad := strings.ToUpper(msg)
	if ecdsa.Verify(&priv.Public, []byte(bad), sig) {
		return fmt.Errorf("tampered message verified")
	}
	fmt.Println("  tampered message correctly rejected")

	if err := schnorrqOverEngine(msg, workers, reg, fr); err != nil {
		return err
	}

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = telemetry.WritePrometheus(f, reg.Snapshot())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Printf("wrote Prometheus exposition to %s\n", metricsPath)
	}

	if asic {
		fmt.Println("modelled ASIC offload (scalar multiplications on the cryptoprocessor):")
		// Same cache the engine uses: when the SchnorrQ section above
		// already built the default processor this is a cache hit.
		p, err := engine.CachedProcessor(core.Config{})
		if err != nil {
			return err
		}
		m, err := p.PowerModel()
		if err != nil {
			return err
		}
		// Signing = 1 SM; verification = 2 SMs (double-scalar).
		for _, v := range []float64{1.20, 0.32} {
			fmt.Printf("  VDD %.2f V: sign %7.1f us (%5.0f msg/s), verify %7.1f us (%5.0f msg/s), %.3f uJ/SM\n",
				v,
				m.Latency(v)*1e6, m.Throughput(v),
				2*m.Latency(v)*1e6, m.Throughput(v)/2,
				m.EnergyPerSM(v)*1e6)
		}
		fmt.Printf("  (the paper's dense-traffic scenario needs ~1000 verifications/s: satisfied at 1.2 V with %.0fx headroom)\n",
			m.Throughput(1.2)/2/1000)
	}
	return nil
}

// schnorrqOverEngine signs and verifies the message with SchnorrQ where
// every scalar multiplication runs through the batch engine: the nonce
// commitment [r]G during signing, and [s]G plus [h]A during
// verification, are each executed on a cycle-accurate RTL worker.
func schnorrqOverEngine(msg string, workers int, reg *telemetry.Registry, fr *telemetry.FlightRecorder) error {
	fmt.Printf("SchnorrQ over the batch engine (%d worker(s), RTL executors):\n", workers)
	eng, err := engine.New(core.Config{}, engine.Options{
		Workers: workers, Registry: reg, FlightRecorder: fr,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	key, err := schnorrq.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	ctx := context.Background()

	t0 := time.Now()
	sig, err := key.SignWith(ctx, eng, []byte(msg))
	if err != nil {
		return err
	}
	signDur := time.Since(t0)
	fmt.Printf("  signature (R||s): %x...\n", sig[:24])
	fmt.Printf("  engine signing time: %v (1 scalar multiplication)\n", signDur.Round(time.Microsecond))

	// Cross-check: the engine-backed signature must be byte-identical to
	// the pure-software one (SchnorrQ is deterministic) and must pass the
	// software verifier.
	if soft := key.Sign([]byte(msg)); soft != sig {
		return fmt.Errorf("engine-backed signature diverges from software signing")
	}
	pub := &key.Public
	if !schnorrq.Verify(pub, []byte(msg), sig[:]) {
		return fmt.Errorf("engine-backed signature rejected by software verifier")
	}

	t0 = time.Now()
	ok, err := schnorrq.VerifyWith(ctx, eng, pub, []byte(msg), sig[:])
	if err != nil {
		return err
	}
	verDur := time.Since(t0)
	if !ok {
		return fmt.Errorf("engine verification rejected a valid signature")
	}
	fmt.Printf("  engine verification time: %v (2 scalar multiplications)\n", verDur.Round(time.Microsecond))

	bad := strings.ToUpper(msg)
	if ok, err := schnorrq.VerifyWith(ctx, eng, pub, []byte(bad), sig[:]); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("engine verified a tampered message")
	}
	fmt.Println("  tampered message correctly rejected by the engine verifier")

	snap := eng.Metrics().Snapshot()
	fmt.Printf("  engine telemetry: submitted=%d completed=%d failed=%d\n",
		snap.Counters["engine.submitted"], snap.Counters["engine.completed"],
		snap.Counters["engine.failed"])
	return nil
}
