// Command fourq-serve runs the sharded FourQ signing/verification
// service (internal/serve): an HTTP/JSON API for scalar multiplication,
// SchnorrQ sign/verify and batch verification, dispatched least-loaded
// across several engine shards, with weighted admission control that
// sheds load (503) before any engine queue can saturate.
//
// The PR 6 observability surface (/metrics, /debug/telemetry,
// /debug/flightrecorder, /debug/pprof/) is served on the same address.
//
// SIGTERM or SIGINT triggers a graceful drain: the server stops
// admitting (new requests get 503 "draining"), waits up to
// -drain-timeout for every in-flight request to be answered, flushes
// the engine lanes, and exits 0. A second signal, or the deadline,
// forces exit (the deadline path exits 1 so orchestrators can tell a
// clean drain from a forced one).
//
// Tenant enforcement is off by default; -tenants installs per-tenant
// token buckets, e.g. -tenants "alice=100:200,bob=10:10" (rate
// requests/s and burst per tenant, X-Tenant request header selects).
// -default-tenant "rate:burst" opens tenancy to unknown X-Tenant
// values through dynamically created buckets in a bounded LRU map
// (-tenant-cache) instead of 403.
//
// -sched portfolio builds the shared processor with the deterministic
// solver portfolio (see docs/PERF.md): a ~20s one-time startup cost
// that shortens every scalar multiplication's critical path by ~5%.
// The build's solver progress lands on /metrics as sched.best_makespan
// and sched.solver_improvements.
//
// Failure-domain controls (see docs/FAULTS.md): the shard supervisor
// samples per-shard health every -supervisor-interval and ejects+
// rebuilds a shard after -eject-after consecutive unhealthy samples;
// -hedge-delay enables hedged dispatch (a stalled request is re-run
// speculatively on a different healthy shard, first answer wins, at
// most -hedge-budget concurrent hedges).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7414", "listen address for the API and debug surface")
	shards := flag.Int("shards", 2, "engine shards (least-loaded dispatch)")
	workers := flag.Int("workers", 0, "workers per shard (0 = GOMAXPROCS)")
	laneWidth := flag.Int("lane-width", 4, "engine lane width per shard (1 disables coalescing)")
	queueDepth := flag.Int("queue-depth", 0, "engine queue depth per shard (0 = default)")
	maxBatch := flag.Int("max-batch", 64, "largest accepted batch-verify item count")
	shedHW := flag.Float64("shed-highwater", 0.8, "admission sheds at this fraction of a shard's queue capacity")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
	tenants := flag.String("tenants", "", "per-tenant limits, \"name=rate:burst,...\" (empty disables tenant enforcement)")
	defaultTenant := flag.String("default-tenant", "", "\"rate:burst\" bucket for unknown X-Tenant values (empty keeps unknown tenants 403 when -tenants is set)")
	tenantCache := flag.Int("tenant-cache", 0, "dynamic tenant bucket cap for -default-tenant (0 = default 1024)")
	supervisorInterval := flag.Duration("supervisor-interval", 0, "shard health sampling period (0 = default 250ms, negative disables supervision)")
	ejectAfter := flag.Int("eject-after", 0, "consecutive unhealthy samples before a shard is ejected and rebuilt (0 = default 4)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "re-run a request on a second healthy shard after this long unanswered (0 disables hedging)")
	hedgeBudget := flag.Int("hedge-budget", 0, "max concurrent hedged requests (0 = one per shard)")
	schedSolver := flag.String("sched", "single", "schedule solver for the shared processor build: single (fast list pass) or portfolio (deterministic multi-solver race, ~20s startup, shorter per-SM critical path)")
	flag.Parse()

	tenantMap, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fourq-serve:", err)
		os.Exit(1)
	}
	opts := serve.Options{
		Shards: *shards,
		Engine: engine.Options{
			Workers:    *workers,
			LaneWidth:  *laneWidth,
			QueueDepth: *queueDepth,
		},
		Tenants:            tenantMap,
		MaxBatch:           *maxBatch,
		ShedHighWater:      *shedHW,
		TenantCacheSize:    *tenantCache,
		SupervisorInterval: *supervisorInterval,
		EjectAfter:         *ejectAfter,
		HedgeDelay:         *hedgeDelay,
		HedgeBudget:        *hedgeBudget,
	}
	if *defaultTenant != "" {
		lim, err := parseLimit(*defaultTenant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fourq-serve: default-tenant:", err)
			os.Exit(1)
		}
		opts.DefaultTenant = &lim
	}
	switch *schedSolver {
	case "single":
	case "portfolio":
		opts.Config.Sched = sched.Options{
			Method:    sched.MethodPortfolio,
			Seed:      sched.DefaultPortfolioSeed,
			Portfolio: sched.DefaultPortfolioKnobs(),
		}
	default:
		fmt.Fprintf(os.Stderr, "fourq-serve: -sched %q: want single or portfolio\n", *schedSolver)
		os.Exit(1)
	}

	if err := run(*addr, opts, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-serve:", err)
		os.Exit(1)
	}
}

// parseLimit parses "rate:burst".
func parseLimit(s string) (serve.TenantLimit, error) {
	rateStr, burstStr, ok := strings.Cut(s, ":")
	if !ok {
		return serve.TenantLimit{}, fmt.Errorf("%q is not rate:burst", s)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return serve.TenantLimit{}, fmt.Errorf("%q: bad rate: %v", s, err)
	}
	burst, err := strconv.Atoi(burstStr)
	if err != nil {
		return serve.TenantLimit{}, fmt.Errorf("%q: bad burst: %v", s, err)
	}
	return serve.TenantLimit{Rate: rate, Burst: burst}, nil
}

// parseTenants parses "name=rate:burst,..." into the serve option map.
func parseTenants(s string) (map[string]serve.TenantLimit, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]serve.TenantLimit{}
	for _, ent := range strings.Split(s, ",") {
		name, limStr, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenants: %q is not name=rate:burst", ent)
		}
		lim, err := parseLimit(limStr)
		if err != nil {
			return nil, fmt.Errorf("tenants: %v", err)
		}
		out[name] = lim
	}
	return out, nil
}

func run(addr string, opts serve.Options, drainTimeout time.Duration) error {
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("fourq-serve: listening on http://%s (%d shards, lane width %d, %s schedule)\n",
		l.Addr(), s.Shards(), opts.Engine.LaneWidth, opts.Config.Sched.Method)
	fmt.Printf("fourq-serve: API under /v1/, health at /healthz, metrics at /metrics\n")

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Printf("fourq-serve: %v — draining (deadline %v)\n", sig, drainTimeout)
		s.StartDrain()
		// A second signal forces immediate shutdown.
		forced := make(chan struct{})
		go func() {
			<-sigs
			close(forced)
			s.Close()
		}()
		err := s.AwaitDrain(drainTimeout)
		select {
		case <-forced:
			return fmt.Errorf("forced shutdown on second signal")
		default:
		}
		if err != nil {
			return fmt.Errorf("drain: %w (in-flight requests were answered on open connections)", err)
		}
		fmt.Println("fourq-serve: drained cleanly")
		return nil
	}
}
