// Command fourq-chaos runs the deterministic failure campaigns of
// internal/chaos against a real in-process serve.Server and reports
// whether every service invariant held:
//
//	fourq-chaos                             # full catalog, default seed
//	fourq-chaos -seed 42 -requests 120      # bigger, replayable campaign
//	fourq-chaos -scenarios faulty-shard,saturation
//	fourq-chaos -json BENCH_chaos.json      # fourq-bench/v1 report
//
// The campaign is replayable: the same -seed reproduces the same
// workload, fault placement, and traffic mix. The process exits
// non-zero when any scenario breached an invariant (lost or duplicated
// answers, oracle disagreement, engine backpressure before shed,
// unbounded recovery), so CI can gate on it directly; `make
// chaos-record` commits the report as BENCH_chaos.json and `make ci`
// validates it with scripts/benchcheck.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (same seed replays the same campaign)")
	requests := flag.Int("requests", 60, "requests per measured phase")
	scenariosFlag := flag.String("scenarios", "", "comma-separated scenario filter (default all): "+
		strings.Join(chaos.ScenarioNames(), ","))
	jsonPath := flag.String("json", "", "write the fourq-bench/v1 report to this file")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	opts := chaos.Options{Seed: *seed, Requests: *requests}
	if *scenariosFlag != "" {
		for _, name := range strings.Split(*scenariosFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Scenarios = append(opts.Scenarios, name)
			}
		}
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fourq-chaos: %v\n", err)
		os.Exit(2)
	}

	printSummary(rep)

	if *jsonPath != "" {
		doc := map[string]any{
			"schema":      "fourq-bench/v1",
			"experiments": map[string]any{"chaos": rep},
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fourq-chaos: marshal report: %v\n", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fourq-chaos: write %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "fourq-chaos: %d invariant violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
}

func printSummary(rep *chaos.Report) {
	fmt.Printf("chaos campaign: seed=%d requests/phase=%d scenarios=%d\n",
		rep.Seed, rep.Requests, len(rep.Scenarios))
	for _, sc := range rep.Scenarios {
		line := fmt.Sprintf("  %-22s faults=%-6d ok=%-5d shed=%-4d ejected=%d rebuilt=%d hedge_wins=%d",
			sc.Name, sc.FaultsInjected, sc.Requests["ok"], sc.Requests["shed"],
			sc.ShardsEjected, sc.ShardsRebuilt, sc.HedgeWins)
		if sc.RecoveryRatio != nil {
			line += fmt.Sprintf(" recovery=%.0f%%", 100**sc.RecoveryRatio)
		}
		fmt.Println(line)
		for _, v := range sc.Violations {
			fmt.Printf("    VIOLATION: %s\n", v)
		}
	}
	verdict := "all invariants held"
	if len(rep.Violations) > 0 {
		verdict = fmt.Sprintf("%d VIOLATIONS", len(rep.Violations))
	}
	fmt.Printf("  total: faults=%d lost=%d dup=%d mis=%d engine_rejected=%d — %s\n",
		rep.FaultsInjected, rep.Lost, rep.Duplicates, rep.MisAnswered,
		rep.EngineRejected, verdict)
}
