package main

import (
	"encoding/json"
	"io"

	"repro/internal/rtl"
)

// report accumulates the structured results of every executed
// experiment and serializes them as one JSON document (written by the
// -json flag). Schema identifier "fourq-bench/v1"; each experiment adds
// one entry under its -exp name.
type report struct {
	Schema      string         `json:"schema"`
	Experiments map[string]any `json:"experiments"`
	// Errors records experiments that failed mid-run, keyed by -exp
	// name. Consumers (scripts/benchcheck) treat a non-empty map as a
	// failed run even though the document itself parses: a partial
	// report must never masquerade as a clean one.
	Errors map[string]string `json:"errors,omitempty"`
}

func newReport() *report {
	return &report{Schema: "fourq-bench/v1", Experiments: map[string]any{}}
}

func (r *report) add(name string, v any) {
	r.Experiments[name] = v
}

func (r *report) fail(name string, err error) {
	if r.Errors == nil {
		r.Errors = map[string]string{}
	}
	r.Errors[name] = err.Error()
}

func (r *report) write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// rtlStats mirrors rtl.Stats field-for-field, adding JSON tags so the
// -json report uses stable snake_case keys.
type rtlStats struct {
	Cycles            int            `json:"cycles"`
	MulIssues         int            `json:"mul_issues"`
	AddIssues         int            `json:"add_issues"`
	RegReads          int            `json:"reg_reads"`
	RegWrites         int            `json:"reg_writes"`
	ElidedWrites      int            `json:"elided_writes"`
	ForwardedReads    int            `json:"forwarded_reads"`
	ROMReads          int            `json:"rom_reads"`
	MulUtilization    float64        `json:"mul_utilization"`
	AddUtilization    float64        `json:"add_utilization"`
	StallCycles       int            `json:"stall_cycles"`
	ReadPortPressure  [5]int         `json:"read_port_pressure"`
	WritePortPressure [3]int         `json:"write_port_pressure"`
	IssuesByOpcode    map[string]int `json:"issues_by_opcode"`
}

var _ = rtlStats(rtl.Stats{}) // layouts must stay convertible
