package main

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/scalar"
)

// throughputPoint is one worker-count measurement of the batch engine.
type throughputPoint struct {
	Workers  int     `json:"workers"`
	SMs      int     `json:"sms"`
	Seconds  float64 `json:"seconds"`
	SMPerSec float64 `json:"sm_per_sec"`
	// Speedup is SMPerSec relative to the 1-worker baseline.
	Speedup float64 `json:"speedup"`
	// OracleOK records that every result was cross-checked against the
	// functional curve model (engine Verify mode) and matched.
	OracleOK bool `json:"oracle_ok"`
}

// throughputResult is the -exp throughput entry of the JSON report.
type throughputResult struct {
	NumCPU      int               `json:"num_cpu"`
	SMsPerPoint int               `json:"sms_per_point"`
	Points      []throughputPoint `json:"points"`
	MaxSpeedup  float64           `json:"max_speedup"`
	BuildShared bool              `json:"build_shared"`
	QueueDepth  int               `json:"queue_depth"`
	VerifiedAll bool              `json:"verified_all"`
	// ScheduleCycles and Solver record the schedule every measured SM
	// executed (the functional program's cycle count) and which solver
	// produced it — the provenance linking a throughput number to the
	// scheduling layer that earned it.
	ScheduleCycles int    `json:"schedule_cycles"`
	Solver         string `json:"solver"`
	EngineCached   int    `json:"engine_cache_size"`
}

// throughput measures the batch engine's scalar-multiplication rate
// versus worker-pool size (E8): the serving-layer answer to the paper's
// single-op latency headline. All engines share one cached processor
// (the build is paid once), each worker owns an independent RTL
// executor, and every produced point is verified against the functional
// model oracle before it counts.
func (b *bench) throughput() error {
	const smsPerPoint = 24

	cpus := runtime.NumCPU()
	seen := map[int]bool{}
	var counts []int
	for _, w := range []int{1, 2, 4, cpus} {
		if w >= 1 && !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	sort.Ints(counts)

	// One shared processor for every engine below: the first engine.New
	// pays the trace->schedule->emit build, the rest hit the cache. The
	// -sched selection flows through b.config() so the measured SM/s run
	// the solver under test.
	proc, err := engine.CachedProcessor(b.config())
	if err != nil {
		return err
	}
	b.proc = proc // later experiments reuse it too

	// Deterministic request stream (splitmix64), same for every count.
	reqs := make([]engine.Request, smsPerPoint)
	s := uint64(0x5eed)
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	for i := range reqs {
		reqs[i].K = scalar.Scalar{next(), next(), next(), next()}
	}

	res := throughputResult{
		NumCPU:         cpus,
		SMsPerPoint:    smsPerPoint,
		BuildShared:    true,
		QueueDepth:     2 * smsPerPoint,
		VerifiedAll:    true,
		ScheduleCycles: proc.CyclesFunctional(),
		Solver:         proc.ScheduleResult().Solver,
	}
	ctx := context.Background()
	fmt.Printf("schedule: %d cycles/SM (solver %s)\n", res.ScheduleCycles, res.Solver)
	fmt.Printf("%-8s %-8s %-10s %-10s %-9s %s\n", "workers", "SMs", "wall[ms]", "SM/s", "speedup", "oracle")
	for _, w := range counts {
		e := engine.NewWithProcessor(proc, engine.Options{
			Workers:    w,
			QueueDepth: res.QueueDepth,
			Verify:     true,
		})
		t0 := time.Now()
		out, err := e.SubmitBatch(ctx, reqs)
		dt := time.Since(t0)
		e.Close()
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		oracleOK := true
		for i, r := range out {
			if r.Err != nil {
				return fmt.Errorf("workers=%d request %d: %w", w, i, r.Err)
			}
		}
		snap := e.Metrics().Snapshot()
		if snap.Counters["engine.failed"] != 0 || snap.Counters["engine.completed"] != int64(smsPerPoint) {
			return fmt.Errorf("workers=%d: telemetry does not reconcile: completed=%d failed=%d",
				w, snap.Counters["engine.completed"], snap.Counters["engine.failed"])
		}
		pt := throughputPoint{
			Workers:  w,
			SMs:      smsPerPoint,
			Seconds:  dt.Seconds(),
			SMPerSec: float64(smsPerPoint) / dt.Seconds(),
			OracleOK: oracleOK,
		}
		if len(res.Points) == 0 {
			pt.Speedup = 1
		} else {
			pt.Speedup = pt.SMPerSec / res.Points[0].SMPerSec
		}
		res.Points = append(res.Points, pt)
		if pt.Speedup > res.MaxSpeedup {
			res.MaxSpeedup = pt.Speedup
		}
		fmt.Printf("%-8d %-8d %-10.1f %-10.0f %-9.2f %v\n",
			w, pt.SMs, dt.Seconds()*1e3, pt.SMPerSec, pt.Speedup, pt.OracleOK)
	}
	res.EngineCached = engine.CacheSize()
	fmt.Printf("\nall %d results per point oracle-verified against the functional model;\n", smsPerPoint)
	fmt.Printf("processor built once and shared across %d engines (cache size %d)\n", len(counts), res.EngineCached)
	if cpus == 1 {
		fmt.Println("note: single-CPU host — worker scaling cannot exceed 1x here")
	}
	b.rep.add("throughput", res)
	return nil
}
