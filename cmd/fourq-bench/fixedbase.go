package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/jobshop"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fixedBaseResult is the -exp fixedbase entry of the JSON report: the
// fixed-base comb program's schedule next to the variable-base program
// signing traffic would otherwise ride, with the differential evidence
// and the determinism cross-check benchcheck gates on.
type fixedBaseResult struct {
	TraceOps   int `json:"trace_ops"`
	ROMWindows int `json:"rom_windows"`
	ROMReads   int `json:"rom_reads"`
	LowerBound int `json:"lower_bound"`

	Single    schedSolverRow `json:"single"`
	Portfolio schedSolverRow `json:"portfolio"`

	// VariableBaseMakespan is the list-scheduled full variable-base SM —
	// the schedule a sign commitment rides when no comb program exists.
	VariableBaseMakespan int `json:"variable_base_makespan"`
	// Ratio is Portfolio.Makespan / VariableBaseMakespan (lower is
	// better; the routing pays off iff this stays well below 1).
	Ratio float64 `json:"ratio"`

	Improvements  int    `json:"improvements"`
	Rounds        int    `json:"rounds"`
	Seed          int64  `json:"seed"`
	ScheduleHash  string `json:"schedule_hash"`
	Deterministic bool   `json:"deterministic"`
	// Validated counts the scalars whose compiled-comb output matched
	// the library's precomputed-table oracle bit for bit.
	Validated int `json:"validated"`
}

// fixedbase is the fixed-base comb experiment: it traces [k]G with the
// precomputed window table as ROM operands, schedules the trace with
// the list scheduler and the deterministic portfolio (same pinned seed
// the processor builds use), compiles both through the RTL hazard
// prover, proves determinism by re-solving, and validates the compiled
// program differentially against curve.FixedBaseTable. The headline is
// the makespan next to the variable-base program signing would
// otherwise ride.
func (b *bench) fixedbase() error {
	tr, err := trace.BuildFixedBaseScalarMult(core.DefaultTraceScalar(), curve.GeneratorAffine())
	if err != nil {
		return err
	}
	res := sched.DefaultResources()
	nOps := len(tr.Graph.Ops)
	fmt.Printf("fixed-base comb trace: %d GF(p^2) operations, %d ROM windows\n",
		nOps, len(tr.Graph.ROM))

	solve := func(opts sched.Options) (schedSolverRow, *sched.Result, *rtl.CompiledProgram, error) {
		t0 := time.Now()
		r, err := sched.Schedule(tr.Graph, res, opts)
		if err != nil {
			return schedSolverRow{}, nil, nil, err
		}
		dt := time.Since(t0)
		cp, err := rtl.Compile(r.Program)
		if err != nil {
			return schedSolverRow{}, nil, nil, fmt.Errorf("%s comb program failed hazard compilation: %w", r.Solver, err)
		}
		st := cp.Stats()
		return schedSolverRow{
			Solver:         r.Solver,
			Makespan:       r.Makespan,
			MulUtilization: st.MulUtilization,
			AddUtilization: st.AddUtilization,
			StallCycles:    st.StallCycles,
			SolveSeconds:   dt.Seconds(),
		}, r, cp, nil
	}

	single, singleR, _, err := solve(sched.Options{Method: sched.MethodList})
	if err != nil {
		return err
	}
	fmt.Printf("single (list): %d cycles in %.2fs (lower bound %d)\n",
		single.Makespan, single.SolveSeconds, singleR.LowerBound)

	popts := sched.Options{
		Method:    sched.MethodPortfolio,
		Seed:      benchSchedSeed,
		Portfolio: benchPortfolioKnobs(),
		Progress: func(p jobshop.Progress) {
			if p.Kind == jobshop.ProgressIncumbent && p.Iteration > 0 {
				fmt.Printf("  portfolio round %d: incumbent %d cycles\n", p.Iteration, p.Makespan)
			}
		},
	}
	portfolio, portfolioR, cp, err := solve(popts)
	if err != nil {
		return err
	}
	fmt.Printf("portfolio: %d cycles in %.2fs (%d improvements over %d rounds, hash %016x)\n",
		portfolio.Makespan, portfolio.SolveSeconds, portfolioR.Improvements,
		popts.Portfolio.Rounds, portfolioR.ScheduleHash)

	// Determinism cross-check: a second solve with identical options
	// must land on the identical schedule.
	popts.Progress = nil
	rerun, rerunR, _, err := solve(popts)
	if err != nil {
		return err
	}
	deterministic := rerunR.ScheduleHash == portfolioR.ScheduleHash && rerun.Makespan == portfolio.Makespan
	if !deterministic {
		return fmt.Errorf("portfolio not deterministic: %016x/%d vs %016x/%d",
			portfolioR.ScheduleHash, portfolio.Makespan, rerunR.ScheduleHash, rerun.Makespan)
	}
	fmt.Println("determinism: second run reproduced the schedule bit for bit")

	// Differential validation of the portfolio-compiled comb against the
	// library's precomputed-table path, covering the correction (even,
	// zero) and reduction (>= N) edges.
	tbl := curve.NewFixedBaseTable(curve.Generator())
	m := cp.NewMachine()
	xr, okX := cp.OutputReg("x")
	yr, okY := cp.OutputReg("y")
	if !okX || !okY {
		return fmt.Errorf("comb program misses its x/y outputs")
	}
	vScalars := []scalar.Scalar{
		traceScalar, core.DefaultTraceScalar(),
		{}, {42}, scalar.FromBig(scalar.Order()),
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
	}
	for i, k := range vScalars {
		rec, corrected := scalar.RecodeFixedBase(k)
		if _, err := m.Run(rtl.RunInput{Rec: rec, Corrected: corrected}); err != nil {
			return fmt.Errorf("validation scalar %d: %v", i, err)
		}
		want := tbl.ScalarMult(k).Affine()
		if !m.Reg(xr).Equal(want.X) || !m.Reg(yr).Equal(want.Y) {
			return fmt.Errorf("validation scalar %d: compiled comb differs from curve.FixedBaseTable", i)
		}
	}
	fmt.Printf("differential: %d/%d scalars bit-exact vs the library's precomputed table\n",
		len(vScalars), len(vScalars))

	// The routing baseline: the list-scheduled full variable-base SM a
	// sign commitment rides without the comb (the same schedule a
	// default processor build compiles).
	vtr, err := trace.BuildScalarMult(core.DefaultTraceScalar(), curve.GeneratorAffine())
	if err != nil {
		return err
	}
	vr, err := sched.Schedule(vtr.Graph, res, sched.Options{Method: sched.MethodList})
	if err != nil {
		return err
	}
	ratio := float64(portfolio.Makespan) / float64(vr.Makespan)

	st := cp.Stats()
	fmt.Printf("\n%-12s %-10s %-10s %-10s %-8s %s\n", "solver", "makespan", "mul-util", "add-util", "stalls", "solve[s]")
	for _, row := range []schedSolverRow{single, portfolio} {
		fmt.Printf("%-12s %-10d %-10.1f %-10.1f %-8d %.2f\n",
			row.Solver, row.Makespan, 100*row.MulUtilization, 100*row.AddUtilization,
			row.StallCycles, row.SolveSeconds)
	}
	fmt.Printf("comb vs variable-base: %d vs %d cycles (%.2fx) with %d ROM reads over %d windows\n",
		portfolio.Makespan, vr.Makespan, ratio, st.ROMReads, len(tr.Graph.ROM))

	b.rep.add("fixedbase", fixedBaseResult{
		TraceOps:             nOps,
		ROMWindows:           len(tr.Graph.ROM),
		ROMReads:             st.ROMReads,
		LowerBound:           portfolioR.LowerBound,
		Single:               single,
		Portfolio:            portfolio,
		VariableBaseMakespan: vr.Makespan,
		Ratio:                ratio,
		Improvements:         portfolioR.Improvements,
		Rounds:               popts.Portfolio.Rounds,
		Seed:                 benchSchedSeed,
		ScheduleHash:         fmt.Sprintf("%016x", portfolioR.ScheduleHash),
		Deterministic:        deterministic,
		Validated:            len(vScalars),
	})
	return nil
}
