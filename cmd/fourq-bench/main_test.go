package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestExecuteContinuesPastFailure is the regression test for the
// exit-code bug: a failure mid-list used to abort the run; it must now
// let the remaining experiments execute, still write the JSON report
// (with the failure recorded under "errors"), and return a non-nil
// error so main exits non-zero.
func TestExecuteContinuesPastFailure(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	b := &bench{rep: newReport()}

	var ranAfter bool
	boom := errors.New("synthetic experiment failure")
	steps := []step{
		{"first", func() error { b.rep.add("first", map[string]any{"ok": true}); return nil }},
		{"broken", func() error { return boom }},
		{"after", func() error {
			ranAfter = true
			b.rep.add("after", map[string]any{"ok": true})
			return nil
		}},
	}

	err := execute(b, steps, "all", jsonPath, "")
	if err == nil {
		t.Fatal("execute returned nil despite a failing experiment")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("returned error %v does not wrap the experiment failure", err)
	}
	if !ranAfter {
		t.Fatal("experiment after the failing one did not run")
	}

	data, rerr := os.ReadFile(jsonPath)
	if rerr != nil {
		t.Fatalf("JSON report not written after failure: %v", rerr)
	}
	var rep struct {
		Schema      string                     `json:"schema"`
		Experiments map[string]json.RawMessage `json:"experiments"`
		Errors      map[string]string          `json:"errors"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != "fourq-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if _, ok := rep.Experiments["first"]; !ok {
		t.Error("successful experiment before the failure missing from report")
	}
	if _, ok := rep.Experiments["after"]; !ok {
		t.Error("successful experiment after the failure missing from report")
	}
	if msg, ok := rep.Errors["broken"]; !ok || msg == "" {
		t.Errorf("failure not recorded under errors: %v", rep.Errors)
	}
}

// TestExecuteCleanRunHasNoErrors pins the happy path: no "errors" key
// in the document and a nil return.
func TestExecuteCleanRunHasNoErrors(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	b := &bench{rep: newReport()}
	steps := []step{{"only", func() error { b.rep.add("only", map[string]any{}); return nil }}}
	if err := execute(b, steps, "all", jsonPath, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["errors"]; ok {
		t.Fatal("clean run emitted an errors key")
	}
}

// TestExecuteUnknownExperiment keeps the unknown-name diagnostics.
func TestExecuteUnknownExperiment(t *testing.T) {
	b := &bench{rep: newReport()}
	err := execute(b, []step{{"real", func() error { return nil }}}, "nope", "", "")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
