package main

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/curve"
	"repro/internal/engine"
	"repro/internal/scalar"
)

// engineLaneWidth is the coalescing width of the batch experiment's
// engine point (the serving-layer counterpart of the width-4 lockstep
// sweep point the acceptance gate watches).
const engineLaneWidth = 4

// batchLanePoint is one lane-width measurement of the lockstep
// executor path (core.Executor.ScalarMultLanes).
type batchLanePoint struct {
	Width    int     `json:"width"`
	SMPerSec float64 `json:"sm_per_sec"`
	// Speedup is SMPerSec relative to the first (narrowest) point.
	Speedup float64 `json:"speedup"`
	// OracleOK records that every lane of a verification pass matched
	// the functional curve model before any timing started.
	OracleOK bool `json:"oracle_ok"`
}

// batchEnginePoint measures the engine's request-coalescing path at a
// fixed lane width: SubmitBatch wall-clock SM/s plus the lockstep
// telemetry proving the lane path actually served the load.
type batchEnginePoint struct {
	LaneWidth int     `json:"lane_width"`
	Workers   int     `json:"workers"`
	SMs       int     `json:"sms"`
	SMPerSec  float64 `json:"sm_per_sec"`
	LaneRuns  int64   `json:"lane_runs"`
	LaneLanes int64   `json:"lane_lanes"`
	OracleOK  bool    `json:"oracle_ok"`
}

// batchResult is the -exp batch entry of the JSON report.
type batchResult struct {
	NumCPU           int               `json:"num_cpu"`
	LaneWidths       []batchLanePoint  `json:"lane_widths"`
	PeakLaneSMPerSec float64           `json:"peak_lane_sm_per_sec"`
	Engine           *batchEnginePoint `json:"engine,omitempty"`
	// Note explains a non-monotone sweep (benchcheck rejects one
	// without it): on a noisy shared host a wider batch can lose a
	// point to scheduling jitter even though the amortization is real.
	Note        string `json:"note,omitempty"`
	VerifiedAll bool   `json:"verified_all"`
}

// batch measures the lockstep lane-batched execution path: host SM/s of
// core.Executor.ScalarMultLanes across the configured lane widths
// (default 1,2,4,8), then the engine's coalescing path at lane width
// 4. Every configuration is oracle-verified against the functional
// curve model before any timing starts, so a rate is only ever reported
// for bit-correct outputs.
func (b *bench) batch() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	res := batchResult{NumCPU: runtime.NumCPU(), VerifiedAll: true}

	// Deterministic operand stream (splitmix64), independent of lane
	// width so every point multiplies comparable inputs. Half the lanes
	// use variable bases to exercise the general bind path.
	s := uint64(0xba7c4)
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	randScalar := func() scalar.Scalar {
		return scalar.Scalar{next(), next(), next(), next()}
	}

	ex := p.NewExecutor()
	fmt.Printf("%-8s %-10s %-9s %s\n", "width", "SM/s", "speedup", "oracle")
	for _, w := range b.lanes {
		ks := make([]scalar.Scalar, w)
		bases := make([]curve.Affine, w)
		outs := make([]curve.Affine, w)
		errs := make([]error, w)
		for l := range ks {
			ks[l] = randScalar()
			bases[l] = curve.GeneratorAffine()
			if l%2 == 1 {
				bases[l] = curve.ScalarMultBinary(randScalar(), curve.Generator()).Affine()
			}
		}
		// Oracle pass before the clock starts: every lane bit-exact
		// against the functional model, or the experiment fails.
		if _, err := ex.ScalarMultLanes(ks, bases, outs, errs); err != nil {
			return fmt.Errorf("width %d: %w", w, err)
		}
		for l := range ks {
			if errs[l] != nil {
				return fmt.Errorf("width %d lane %d: %w", w, l, errs[l])
			}
			want := curve.ScalarMult(ks[l], curve.FromAffine(bases[l])).Affine()
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				return fmt.Errorf("width %d lane %d: lockstep output disagrees with the curve oracle", w, l)
			}
		}
		rate, err := measureRate(func() error {
			if _, err := ex.ScalarMultLanes(ks, bases, outs, errs); err != nil {
				return err
			}
			for l := range errs {
				if errs[l] != nil {
					return errs[l]
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("width %d: %w", w, err)
		}
		pt := batchLanePoint{Width: w, SMPerSec: rate * float64(w), OracleOK: true}
		if len(res.LaneWidths) == 0 {
			pt.Speedup = 1
		} else {
			pt.Speedup = pt.SMPerSec / res.LaneWidths[0].SMPerSec
		}
		res.LaneWidths = append(res.LaneWidths, pt)
		if pt.SMPerSec > res.PeakLaneSMPerSec {
			res.PeakLaneSMPerSec = pt.SMPerSec
		}
		fmt.Printf("%-8d %-10.0f %-9.2f %v\n", w, pt.SMPerSec, pt.Speedup, pt.OracleOK)
	}
	for i := 1; i < len(res.LaneWidths); i++ {
		if cur, prev := res.LaneWidths[i], res.LaneWidths[i-1]; cur.SMPerSec < prev.SMPerSec {
			res.Note = fmt.Sprintf("non-monotone sweep: width %d measured %.0f SM/s below width %d's %.0f (host scheduling noise; amortization gain is per-op, see docs/PERF.md)",
				cur.Width, cur.SMPerSec, prev.Width, prev.SMPerSec)
			fmt.Println("note:", res.Note)
		}
	}

	// Engine point: the same lockstep path reached through request
	// coalescing, with the engine's oracle (Verify mode) on every
	// result.
	const sms = 32
	e := engine.NewWithProcessor(p, engine.Options{
		Workers:    1,
		QueueDepth: sms,
		LaneWidth:  engineLaneWidth,
		Verify:     true,
	})
	reqs := make([]engine.Request, sms)
	for i := range reqs {
		reqs[i].K = randScalar()
	}
	t0 := time.Now()
	out, err := e.SubmitBatch(context.Background(), reqs)
	dt := time.Since(t0)
	e.Close()
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	for i, r := range out {
		if r.Err != nil {
			return fmt.Errorf("engine request %d: %w", i, r.Err)
		}
	}
	snap := e.Metrics().Snapshot()
	ep := batchEnginePoint{
		LaneWidth: engineLaneWidth,
		Workers:   1,
		SMs:       sms,
		SMPerSec:  float64(sms) / dt.Seconds(),
		LaneRuns:  snap.Counters["engine.lane_runs"],
		LaneLanes: snap.Counters["engine.lane_lanes"],
		OracleOK:  true,
	}
	if ep.LaneRuns < 1 || ep.LaneLanes < int64(engineLaneWidth) {
		return fmt.Errorf("engine: lockstep path unused (lane_runs=%d lane_lanes=%d)", ep.LaneRuns, ep.LaneLanes)
	}
	res.Engine = &ep
	fmt.Printf("engine (workers=1, lane width %d): %.0f SM/s over %d SMs, %d lockstep runs covering %d lanes\n",
		ep.LaneWidth, ep.SMPerSec, ep.SMs, ep.LaneRuns, ep.LaneLanes)

	b.rep.add("batch", res)
	return nil
}

// parseLanes parses the -lanes flag: a comma-separated ascending list
// of lockstep widths for the batch experiment.
func parseLanes(spec string) ([]int, error) {
	var lanes []int
	for _, f := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 || w > 64 {
			return nil, fmt.Errorf("invalid lane width %q (want 1..64)", strings.TrimSpace(f))
		}
		if len(lanes) > 0 && w <= lanes[len(lanes)-1] {
			return nil, fmt.Errorf("lane widths must be strictly ascending, got %q", spec)
		}
		lanes = append(lanes, w)
	}
	return lanes, nil
}
