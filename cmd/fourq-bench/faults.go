package main

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// faultSeed fixes the campaign so every run (and the JSON report) is
// byte-for-byte reproducible; replay any trial by rebuilding the fault
// list from this seed.
const (
	faultSeed   = 0xF4017
	faultTrials = 64
)

// faults is E9: a seeded fault-injection campaign over the datapath.
// Each trial corrupts one (cycle, site, bit) address during a full
// scalar multiplication and classifies the outcome as detected (hazard
// checker or on-curve validation), silent corruption (passed the cheap
// checks, failed the oracle), or masked (no architectural effect).
func (b *bench) faults() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	fmt.Printf("sweeping %d seeded faults over the datapath (seed %#x)...\n", faultTrials, faultSeed)
	rep, err := fault.Campaign(p, fault.CampaignConfig{
		Seed:     faultSeed,
		Trials:   faultTrials,
		Registry: reg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %-8s %-10s %-8s %s\n", "site", "trials", "detected", "silent", "masked")
	for _, s := range fault.AllSites() {
		tally, ok := rep.BySite[s.String()]
		if !ok {
			continue
		}
		fmt.Printf("%-10s %-8d %-10d %-8d %d\n",
			s, tally.Trials, tally.Detected, tally.Silent, tally.Masked)
	}
	fmt.Printf("%-10s %-8d %-10d %-8d %d\n", "total", faultTrials, rep.Detected, rep.Silent, rep.Masked)
	fmt.Printf("detection coverage (detected / architecturally effective): %.1f%%\n",
		100*rep.DetectionCoverage)
	if rep.Silent > 0 {
		fmt.Printf("silent corruptions: %d — caught only by the differential oracle (engine Verify mode)\n", rep.Silent)
	}
	snap := reg.Snapshot()
	fmt.Printf("fault.fired=%d fault.squashed_slots=%d\n",
		snap.Counters["fault.fired"], snap.Counters["fault.squashed_slots"])
	b.rep.add("faults", rep)
	return nil
}
