package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/jobshop"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/trace"
)

// schedSolverRow is one solver's measurement in the -exp sched report.
type schedSolverRow struct {
	Solver         string  `json:"solver"`
	Makespan       int     `json:"makespan"`
	MulUtilization float64 `json:"mul_utilization"`
	AddUtilization float64 `json:"add_utilization"`
	StallCycles    int     `json:"stall_cycles"`
	SolveSeconds   float64 `json:"solve_seconds"`
}

// schedResult is the -exp sched entry of the JSON report: the head-to-
// head of the single-pass list scheduler against the portfolio on the
// full functional trace, with the RTL-compiled utilization evidence and
// the determinism cross-check benchcheck gates on.
type schedResult struct {
	TraceOps       int            `json:"trace_ops"`
	LowerBound     int            `json:"lower_bound"`
	Single         schedSolverRow `json:"single"`
	Portfolio      schedSolverRow `json:"portfolio"`
	ImprovementPct float64        `json:"improvement_pct"`
	Improvements   int            `json:"improvements"`
	Rounds         int            `json:"rounds"`
	Seed           int64          `json:"seed"`
	ScheduleHash   string         `json:"schedule_hash"`
	// Deterministic records that a second portfolio run with identical
	// options reproduced the same ScheduleHash.
	Deterministic bool `json:"deterministic"`
}

// sched is the scheduler head-to-head experiment: it solves the full
// functional scalar-multiplication trace with the single-pass list
// scheduler and with the portfolio (same pinned seed and budget the
// -sched portfolio processor build uses), compiles both programs
// through the RTL hazard prover, and reports makespan, functional-unit
// utilization and stall cycles for each. The portfolio is solved twice
// to demonstrate determinism: same seed + same round budget must
// reproduce the same schedule hash.
func (b *bench) sched() error {
	tr, err := trace.BuildScalarMult(core.DefaultTraceScalar(), curve.GeneratorAffine())
	if err != nil {
		return err
	}
	res := sched.DefaultResources()
	nOps := len(tr.Graph.Ops)
	fmt.Printf("full functional trace: %d GF(p^2) operations\n", nOps)

	solve := func(opts sched.Options) (schedSolverRow, *sched.Result, error) {
		t0 := time.Now()
		r, err := sched.Schedule(tr.Graph, res, opts)
		if err != nil {
			return schedSolverRow{}, nil, err
		}
		dt := time.Since(t0)
		cp, err := rtl.Compile(r.Program)
		if err != nil {
			return schedSolverRow{}, nil, fmt.Errorf("%s program failed hazard compilation: %w", r.Solver, err)
		}
		st := cp.Stats()
		return schedSolverRow{
			Solver:         r.Solver,
			Makespan:       r.Makespan,
			MulUtilization: st.MulUtilization,
			AddUtilization: st.AddUtilization,
			StallCycles:    st.StallCycles,
			SolveSeconds:   dt.Seconds(),
		}, r, nil
	}

	single, singleR, err := solve(sched.Options{Method: sched.MethodList})
	if err != nil {
		return err
	}
	fmt.Printf("single (list): %d cycles in %.2fs (lower bound %d)\n",
		single.Makespan, single.SolveSeconds, singleR.LowerBound)

	popts := sched.Options{
		Method:    sched.MethodPortfolio,
		Seed:      benchSchedSeed,
		Portfolio: benchPortfolioKnobs(),
		Progress: func(p jobshop.Progress) {
			if p.Kind == jobshop.ProgressIncumbent && p.Iteration > 0 {
				fmt.Printf("  portfolio round %d: incumbent %d cycles\n", p.Iteration, p.Makespan)
			}
		},
	}
	portfolio, portfolioR, err := solve(popts)
	if err != nil {
		return err
	}
	fmt.Printf("portfolio: %d cycles in %.2fs (%d improvements over %d rounds, hash %016x)\n",
		portfolio.Makespan, portfolio.SolveSeconds, portfolioR.Improvements,
		popts.Portfolio.Rounds, portfolioR.ScheduleHash)

	// Determinism cross-check: a second solve with identical options
	// must land on the identical schedule.
	popts.Progress = nil
	rerun, rerunR, err := solve(popts)
	if err != nil {
		return err
	}
	deterministic := rerunR.ScheduleHash == portfolioR.ScheduleHash && rerun.Makespan == portfolio.Makespan
	if !deterministic {
		return fmt.Errorf("portfolio not deterministic: %016x/%d vs %016x/%d",
			portfolioR.ScheduleHash, portfolio.Makespan, rerunR.ScheduleHash, rerun.Makespan)
	}
	fmt.Println("determinism: second run reproduced the schedule bit for bit")

	impr := 100 * float64(single.Makespan-portfolio.Makespan) / float64(single.Makespan)
	fmt.Printf("\n%-12s %-10s %-10s %-10s %-8s %s\n", "solver", "makespan", "mul-util", "add-util", "stalls", "solve[s]")
	for _, row := range []schedSolverRow{single, portfolio} {
		fmt.Printf("%-12s %-10d %-10.1f %-10.1f %-8d %.2f\n",
			row.Solver, row.Makespan, 100*row.MulUtilization, 100*row.AddUtilization,
			row.StallCycles, row.SolveSeconds)
	}
	fmt.Printf("portfolio shortens the critical path by %.1f%% (%d -> %d cycles; lower bound %d)\n",
		impr, single.Makespan, portfolio.Makespan, portfolioR.LowerBound)

	b.rep.add("sched", schedResult{
		TraceOps:       nOps,
		LowerBound:     portfolioR.LowerBound,
		Single:         single,
		Portfolio:      portfolio,
		ImprovementPct: impr,
		Improvements:   portfolioR.Improvements,
		Rounds:         popts.Portfolio.Rounds,
		Seed:           benchSchedSeed,
		ScheduleHash:   fmt.Sprintf("%016x", portfolioR.ScheduleHash),
		Deterministic:  deterministic,
	})
	return nil
}
