// Command fourq-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	fourq-bench -exp profile   # E1: op-mix profile (the "57%" claim)
//	fourq-bench -exp table1    # E2: scheduled double-and-add block
//	fourq-bench -exp latency   # E3: cycles / latency @1.2V
//	fourq-bench -exp fig4      # E4: VDD sweep (Fmax, latency, energy)
//	fourq-bench -exp table2    # E5: comparison to prior art
//	fourq-bench -exp fig3      # E6: area breakdown
//	fourq-bench -exp ablation  # E7: scheduler ablation
//	fourq-bench -exp throughput# E8: batch-engine SM/s vs worker count
//	fourq-bench -exp faults    # E9: fault-injection detection coverage
//	fourq-bench -exp all       # everything
//
// -exp accepts a comma-separated list (e.g. -exp latency,throughput) so
// a single JSON report can carry exactly the experiments a consumer
// needs; `make bench-record` uses this to write the committed
// performance baseline BENCH_rtl.json.
//
// A failing experiment in a multi-experiment run no longer aborts the
// rest: remaining experiments execute, the JSON report records the
// failure under "errors", and the process exits non-zero.
//
// Observability flags (see docs/OBSERVABILITY.md):
//
//	-json <path>        write every executed experiment's tables as
//	                    structured JSON (schema "fourq-bench/v1") in
//	                    addition to the text output
//	-trace <path>       execute one scalar multiplication on the RTL
//	                    model and write its cycle-level timeline as
//	                    Chrome trace_event JSON (open in Perfetto or
//	                    chrome://tracing)
//	-debug-addr <addr>  serve the unified debug surface on addr (e.g.
//	                    "localhost:6060"): net/http/pprof, expvar,
//	                    /metrics (Prometheus) and /debug/telemetry
//	                    for profiling long sweeps
//
// The processor (the full trace -> schedule -> emit build) is
// constructed lazily: cheap experiments that do not need it (table1,
// ablation, pareto) run without paying for the build.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobshop"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: profile|table1|latency|throughput|batch|sched|fixedbase|fig4|table2|fig3|ablation|pareto|faults|all")
	full := flag.Bool("full", false, "include full-trace scheduler ablation (slow)")
	lanes := flag.String("lanes", "1,2,4,8", "ascending lockstep lane widths swept by -exp batch")
	schedSolver := flag.String("sched", "single", "schedule solver for the benchmarked processor: single (fast list scheduler) or portfolio (parallel tabu + LNS search; slower build, shorter schedule)")
	jsonPath := flag.String("json", "", "write executed experiments' results as structured JSON to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event timeline of one scalar multiplication to this file")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /debug on this address (e.g. localhost:6060)")
	flag.Parse()

	if *debugAddr != "" {
		// The experiments create their own per-engine registries (their
		// tests assert exact counter values), so the served registry is
		// the process-level one; pprof and expvar are the main draw when
		// profiling a long sweep.
		telemetry.ServeDebug(*debugAddr, telemetry.NewRegistry(), telemetry.NewFlightRecorder(0))
	}

	if err := run(*exp, *full, *lanes, *schedSolver, *jsonPath, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-bench:", err)
		os.Exit(1)
	}
}

// benchSchedSeed and benchPortfolioKnobs pin the bench's portfolio
// solves to the shared production defaults (internal/sched), so the
// committed BENCH_rtl.json baseline, the -sched portfolio processor
// builds, and fourq-serve -sched portfolio all race the exact same
// deterministic configuration.
const benchSchedSeed = sched.DefaultPortfolioSeed

func benchPortfolioKnobs() sched.PortfolioKnobs {
	return sched.DefaultPortfolioKnobs()
}

// bench carries the shared state of one invocation: the lazily built
// processor and the accumulating JSON report.
type bench struct {
	full      bool
	lanes     []int  // lockstep widths swept by -exp batch
	schedName string // -sched: "single" or "portfolio"
	proc      *core.Processor
	rep       *report
}

// config is the processor configuration of this invocation — every
// experiment that builds or caches a processor must go through it so
// the -sched selection applies uniformly.
func (b *bench) config() core.Config {
	cfg := core.Config{}
	if b.schedName == "portfolio" {
		cfg.Sched = sched.Options{
			Method:    sched.MethodPortfolio,
			Seed:      benchSchedSeed,
			Portfolio: benchPortfolioKnobs(),
		}
	}
	return cfg
}

// processor builds the full trace->schedule->emit pipeline on first use
// so cheap experiments never pay for it.
func (b *bench) processor() (*core.Processor, error) {
	if b.proc != nil {
		return b.proc, nil
	}
	fmt.Printf("building processor (trace -> schedule -> program, solver=%s)...\n", b.schedName)
	p, err := core.New(b.config())
	if err != nil {
		return nil, err
	}
	fmt.Printf("  functional program: %s\n", core.ProgramSummary(p.Program()))
	fmt.Printf("  endo-workload program: %s\n\n", core.ProgramSummary(p.EndoProgram()))
	b.proc = p
	return p, nil
}

// traceScalar is the fixed scalar traced by -trace (any scalar produces
// the same schedule; a fixed one keeps the timeline reproducible).
var traceScalar = scalar.Scalar{0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 0x2545F4914F6CDD1D, 0x27220A95FE9D3E8F}

// step is one runnable experiment.
type step struct {
	name string
	f    func() error
}

func run(exp string, full bool, lanes, schedSolver, jsonPath, tracePath string) error {
	widths, err := parseLanes(lanes)
	if err != nil {
		return fmt.Errorf("-lanes: %w", err)
	}
	if schedSolver != "single" && schedSolver != "portfolio" {
		return fmt.Errorf("-sched: unknown solver %q (valid: single, portfolio)", schedSolver)
	}
	b := &bench{full: full, lanes: widths, schedName: schedSolver, rep: newReport()}
	steps := []step{
		{"profile", b.profile},
		{"table1", b.table1},
		{"latency", b.latency},
		{"throughput", b.throughput},
		{"batch", b.batch},
		{"sched", b.sched},
		{"fixedbase", b.fixedbase},
		{"fig4", b.fig4},
		{"table2", b.table2},
		{"fig3", b.fig3},
		{"ablation", b.ablation},
		{"pareto", b.pareto},
		{"faults", b.faults},
	}
	return execute(b, steps, exp, jsonPath, tracePath)
}

// execute runs the selected experiments (exp is a comma-separated list;
// "all" selects everything). A failing experiment no longer aborts the
// run: the remaining experiments still execute and the JSON report is
// still written (carrying the failure under "errors", so a partial
// document is distinguishable from a clean one), but the accumulated
// error is returned so the process exits non-zero.
func execute(b *bench, steps []step, exp, jsonPath, tracePath string) error {
	known := func(name string) bool {
		for _, s := range steps {
			if s.name == name {
				return true
			}
		}
		return false
	}
	all := false
	selected := make(map[string]bool)
	for _, name := range strings.Split(exp, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "all":
			all = true
		case known(name):
			selected[name] = true
		default:
			names := make([]string, len(steps))
			for i, s := range steps {
				names[i] = s.name
			}
			return fmt.Errorf("unknown experiment %q (valid: %s, all)", name, strings.Join(names, ", "))
		}
	}
	if !all && len(selected) == 0 {
		return fmt.Errorf("no experiment selected")
	}
	var errs []error
	for _, s := range steps {
		if !all && !selected[s.name] {
			continue
		}
		fmt.Printf("==== %s ====\n", s.name)
		if err := s.f(); err != nil {
			err = fmt.Errorf("%s: %w", s.name, err)
			fmt.Fprintln(os.Stderr, "fourq-bench:", err)
			b.rep.fail(s.name, err)
			errs = append(errs, err)
			continue
		}
		fmt.Println()
	}

	if tracePath != "" {
		if err := writeRunTrace(b, tracePath); err != nil {
			errs = append(errs, fmt.Errorf("trace: %w", err))
		}
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err == nil {
			err = b.rep.write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("json: %w", err))
		} else {
			fmt.Printf("wrote structured results to %s\n", jsonPath)
		}
	}
	return errors.Join(errs...)
}

// writeRunTrace executes one scalar multiplication under the telemetry
// observer and writes its cycle-level timeline.
func writeRunTrace(b *bench, tracePath string) error {
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	p, err := b.processor()
	if err != nil {
		f.Close()
		return err
	}
	st, err := p.TraceScalarMult(traceScalar, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote Chrome trace_event timeline (%d cycles, %d slices) to %s\n",
		st.Cycles, st.MulIssues+st.AddIssues, tracePath)
	return nil
}

func (b *bench) pareto() error {
	pts, err := core.ParetoSweep()
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-8s %-10s %-10s %-10s %s\n", "design point", "cycles", "area[kGE]", "lat[us]", "LAP", "RTL verified")
	for _, p := range pts {
		fmt.Printf("%-28s %-8d %-10.0f %-10.1f %-10.1f %v\n",
			p.Name, p.Cycles, p.AreaKGE, p.LatencyUS, p.LatencyAreaProduct, p.Verified)
	}
	fmt.Println("\nfinding: with a per-cycle control ROM, narrower multipliers lose on both axes;")
	fmt.Println("the paper's full-throughput 3-core Karatsuba datapath is Pareto-optimal.")
	b.rep.add("pareto", map[string]any{"points": pts})
	return nil
}

func (b *bench) profile() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	st := p.TraceStats()
	fmt.Printf("full SM trace: %d GF(p^2) operations\n", st.Total)
	fmt.Printf("  multiplications: %d (%.1f%%)   [paper: ~57%%]\n", st.Muls, 100*st.MulShare)
	fmt.Printf("  add/subs:        %d (%.1f%%)\n", st.Adds, 100*(1-st.MulShare))
	rst, err := b.runStats()
	if err != nil {
		return err
	}
	fmt.Printf("scheduled issue occupancy over %d cycles: multiplier %.1f%%, adder %.1f%%\n",
		rst.Cycles, 100*rst.MulUtilization, 100*rst.AddUtilization)
	b.rep.add("profile", map[string]any{
		"trace_ops": st,
		"rtl_stats": rst,
	})
	return nil
}

func (b *bench) table1() error {
	fmt.Println("scheduling the double-and-add block with the exact solver...")
	var progressLines int
	r, err := core.TableIObserved(sched.DefaultResources(), func(p jobshop.Progress) {
		switch p.Kind {
		case jobshop.ProgressIncumbent:
			fmt.Printf("  bnb: incumbent makespan %d (bound %d, %d nodes)\n", p.Makespan, p.Bound, p.Nodes)
		case jobshop.ProgressBound:
			fmt.Printf("  bnb: lower bound raised to %d (%d nodes)\n", p.Bound, p.Nodes)
		case jobshop.ProgressNodes:
			fmt.Printf("  bnb: %d nodes explored...\n", p.Nodes)
		case jobshop.ProgressDone:
			fmt.Printf("  bnb: done, makespan %d, optimal %v (%d nodes)\n", p.Makespan, p.Optimal, p.Nodes)
		}
		progressLines++
	})
	if err != nil {
		return err
	}
	fmt.Printf("block: %d Fp2 mults + %d Fp2 add/subs [paper: 15 + 13]\n", r.Muls, r.Adds)
	fmt.Printf("makespan: %d cycles (optimal proven: %v, lower bound %d) [paper's Table I: 25]\n\n",
		r.Makespan, r.Optimal, r.LowerBound)
	fmt.Println(r.Listing)
	b.rep.add("table1", map[string]any{
		"muls":            r.Muls,
		"adds":            r.Adds,
		"makespan":        r.Makespan,
		"optimal":         r.Optimal,
		"lower_bound":     r.LowerBound,
		"progress_events": progressLines,
	})
	return nil
}

// runStats executes one scalar multiplication bit-true on the RTL model
// and returns its statistics (shared by the profile and latency
// experiments; the run is milliseconds, the build dominates).
func (b *bench) runStats() (stats rtlStats, err error) {
	p, err := b.processor()
	if err != nil {
		return rtlStats{}, err
	}
	_, st, err := p.ScalarMult(traceScalar)
	if err != nil {
		return rtlStats{}, err
	}
	return rtlStats(st), nil
}

func (b *bench) latency() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	m, err := p.PowerModel()
	if err != nil {
		return err
	}
	fmt.Printf("cycles/SM: functional (with substitution doublings) %d, paper-comparable %d\n",
		p.CyclesFunctional(), p.CyclesEndoModeled())
	fmt.Printf("derived clock @1.20V: %.1f MHz\n", m.Fmax(1.2)/1e6)
	fmt.Printf("latency @1.20V: %.2f us  [paper: 10.1 us]\n", m.Latency(1.2)*1e6)
	fmt.Printf("latency @0.32V: %.0f us  [paper: 857 us]\n", m.Latency(0.32)*1e6)
	rst, err := b.runStats()
	if err != nil {
		return err
	}
	fmt.Printf("issue occupancy: multiplier %.1f%%, adder %.1f%% (%d stall cycles)\n",
		100*rst.MulUtilization, 100*rst.AddUtilization, rst.StallCycles)
	fmt.Printf("register file: %d reads (%d forwarded), %d writes (%d elided)\n",
		rst.RegReads, rst.ForwardedReads, rst.RegWrites, rst.ElidedWrites)
	if err := p.Verify(2, 7); err != nil {
		return err
	}
	fmt.Println("RTL-vs-library verification: 2/2 scalar multiplications bit-exact")

	// Host-side single-thread SM/s, compiled execution plan vs the
	// reference interpreter: the measured win of the ahead-of-time
	// compile. Recorded in the report so benchcheck's compare mode can
	// gate regressions against the committed baseline.
	ex := p.NewExecutor()
	compiledRate, err := measureRate(func() error {
		_, _, err := ex.ScalarMult(traceScalar)
		return err
	})
	if err != nil {
		return err
	}
	interpretedRate, err := measureRate(func() error {
		_, _, err := p.ScalarMultInterpreted(traceScalar)
		return err
	})
	if err != nil {
		return err
	}
	speedup := compiledRate / interpretedRate
	fmt.Printf("host single-thread SM/s: compiled plan %.0f, interpreter %.0f (%.2fx)\n",
		compiledRate, interpretedRate, speedup)
	b.rep.add("latency", map[string]any{
		"cycles_functional":   p.CyclesFunctional(),
		"cycles_endo_modeled": p.CyclesEndoModeled(),
		"fmax_mhz_1v20":       m.Fmax(1.2) / 1e6,
		"latency_us_1v20":     m.Latency(1.2) * 1e6,
		"latency_us_0v32":     m.Latency(0.32) * 1e6,
		"rtl_stats":           rst,
		"single_thread": map[string]any{
			"compiled_sm_per_sec":    compiledRate,
			"interpreted_sm_per_sec": interpretedRate,
			"speedup":                speedup,
		},
	})
	return nil
}

// measureRate times fn in a loop (one warm-up call first) until at
// least 250ms and 8 iterations have elapsed, returning iterations per
// second.
func measureRate(fn func() error) (float64, error) {
	if err := fn(); err != nil { // warm-up
		return 0, err
	}
	const (
		minRuns = 8
		minDur  = 250 * time.Millisecond
	)
	start := time.Now()
	runs := 0
	for {
		if err := fn(); err != nil {
			return 0, err
		}
		runs++
		if d := time.Since(start); runs >= minRuns && d >= minDur {
			return float64(runs) / d.Seconds(), nil
		}
	}
}

func (b *bench) fig4() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	r, err := p.Figure4(12)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-14s %-12s %s\n", "VDD [V]", "Fmax [MHz]", "Latency [us]", "Energy [uJ]", "SM/s")
	for _, pt := range r.Points {
		fmt.Printf("%-8.2f %-12.2f %-14.1f %-12.3f %.0f\n",
			pt.V, pt.FmaxHz/1e6, pt.LatencyS*1e6, pt.EnergyJ*1e6, pt.Throughput)
	}
	fmt.Printf("model minimum energy: %.3f uJ at %.2f V [paper: 0.327 uJ at 0.32 V]\n",
		r.MinEnergyJ*1e6, r.MinEnergyV)
	b.rep.add("fig4", r)
	return nil
}

func (b *bench) table2() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	r, err := p.TableII()
	if err != nil {
		return err
	}
	hdr := fmt.Sprintf("%-22s %-16s %-11s %-5s %-24s %-6s %-12s %-12s %-10s %s",
		"Design", "Platform", "Curve", "Core", "Area", "VDD", "Latency[ms]", "Ops/s", "E/op[uJ]", "LatxArea")
	fmt.Println(hdr)
	printRow := func(c core.CompRow) {
		v := "-"
		if c.VDD > 0 {
			v = fmt.Sprintf("%.2f", c.VDD)
		}
		lat := "-"
		if c.LatencyMS > 0 {
			lat = fmt.Sprintf("%.4f", c.LatencyMS)
		}
		e := "-"
		if c.EnergyUJ > 0 {
			e = fmt.Sprintf("%.3f", c.EnergyUJ)
		}
		lap := "-"
		if c.LatencyAreaProduct > 0 {
			lap = fmt.Sprintf("%.1f", c.LatencyAreaProduct)
		}
		fmt.Printf("%-22s %-16s %-11s %-5d %-24s %-6s %-12s %-12.3g %-10s %s\n",
			c.Design, c.Platform, c.Curve, c.Cores, c.Area, v, lat, c.OpsPerSec, e, lap)
	}
	printRow(r.OursLowV)
	printRow(r.OursHighV)
	if mc, err := p.MultiCore(11, 1.20); err == nil {
		printRow(mc)
	}
	for _, c := range r.Prior {
		printRow(c)
	}
	fmt.Println()
	fmt.Printf("headline ratios: %.2fx vs P-256 ASIC [paper 3.66x], %.1fx vs FourQ FPGA [paper 15.5x], %.2fx energy vs ECDSA ASIC [paper 5.14x]\n",
		r.SpeedupVsP256ASIC, r.SpeedupVsFourQFPGA, r.EnergyGainVsECDSA)
	fmt.Printf("same-silicon cross-check: FourQ %d cycles vs P-256 model %d (%.2fx) vs Curve25519 model %d (%.2fx)\n",
		r.FourQCycles, r.P256ModelCycles, r.ModelSpeedupP256, r.C25519ModelCycles, r.ModelSpeedupC25519)
	b.rep.add("table2", r)
	return nil
}

func (b *bench) fig3() error {
	p, err := b.processor()
	if err != nil {
		return err
	}
	br := p.Figure3()
	fmt.Println("area breakdown (calibrated to the published 1400 kGE):")
	fmt.Println(br)
	fmt.Printf("\n  [paper: 1400 kGE, %.2f mm x %.2f mm]\n", 1.76, 3.56)
	b.rep.add("fig3", br)
	return nil
}

func (b *bench) ablation() error {
	rows, err := core.SchedulerAblation(sched.DefaultResources(), b.full)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-10s %-12s %s\n", "trace/method", "makespan", "lower bound", "optimal")
	for _, r := range rows {
		fmt.Printf("%-18s %-10d %-12d %v\n", r.Method, r.Makespan, r.LowerBound, r.Optimal)
	}
	withF, withoutF, err := core.ForwardingAblation(sched.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("\npipeline-depth sensitivity (DBLADD block): %d cycles at default latency, %d with +1 stage\n", withF, withoutF)
	el, err := core.ElisionAblation(sched.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("write-back elision (full SM): %d of %d register-file writes removed (%.0f%%)\n",
		el.ElidedWrites, el.TotalOps, 100*el.SavedShare)
	b.rep.add("ablation", map[string]any{
		"methods":                   rows,
		"forwarding_makespan":       withF,
		"forwarding_plus1_makespan": withoutF,
		"elision":                   el,
	})
	return nil
}
