// Command fourq-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	fourq-bench -exp profile   # E1: op-mix profile (the "57%" claim)
//	fourq-bench -exp table1    # E2: scheduled double-and-add block
//	fourq-bench -exp latency   # E3: cycles / latency @1.2V
//	fourq-bench -exp fig4      # E4: VDD sweep (Fmax, latency, energy)
//	fourq-bench -exp table2    # E5: comparison to prior art
//	fourq-bench -exp fig3      # E6: area breakdown
//	fourq-bench -exp ablation  # E7: scheduler ablation
//	fourq-bench -exp all       # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sched"
)

func main() {
	exp := flag.String("exp", "all", "experiment: profile|table1|latency|fig4|table2|fig3|ablation|pareto|all")
	full := flag.Bool("full", false, "include full-trace scheduler ablation (slow)")
	flag.Parse()

	if err := run(*exp, *full); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, full bool) error {
	needProcessor := exp != "table1" && exp != "ablation"
	var p *core.Processor
	if needProcessor || exp == "all" {
		var err error
		fmt.Println("building processor (trace -> schedule -> program)...")
		p, err = core.New(core.Config{})
		if err != nil {
			return err
		}
		fmt.Printf("  functional program: %s\n", core.ProgramSummary(p.Program()))
		fmt.Printf("  endo-workload program: %s\n\n", core.ProgramSummary(p.EndoProgram()))
	}

	do := func(name string, f func() error) error {
		if exp != "all" && exp != name {
			return nil
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}

	if err := do("profile", func() error { return profile(p) }); err != nil {
		return err
	}
	if err := do("table1", table1); err != nil {
		return err
	}
	if err := do("latency", func() error { return latency(p) }); err != nil {
		return err
	}
	if err := do("fig4", func() error { return fig4(p) }); err != nil {
		return err
	}
	if err := do("table2", func() error { return table2(p) }); err != nil {
		return err
	}
	if err := do("fig3", func() error { return fig3(p) }); err != nil {
		return err
	}
	if err := do("ablation", func() error { return ablation(full) }); err != nil {
		return err
	}
	if err := do("pareto", pareto); err != nil {
		return err
	}
	return nil
}

func pareto() error {
	pts, err := core.ParetoSweep()
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-8s %-10s %-10s %-10s %s\n", "design point", "cycles", "area[kGE]", "lat[us]", "LAP", "RTL verified")
	for _, p := range pts {
		fmt.Printf("%-28s %-8d %-10.0f %-10.1f %-10.1f %v\n",
			p.Name, p.Cycles, p.AreaKGE, p.LatencyUS, p.LatencyAreaProduct, p.Verified)
	}
	fmt.Println("\nfinding: with a per-cycle control ROM, narrower multipliers lose on both axes;")
	fmt.Println("the paper's full-throughput 3-core Karatsuba datapath is Pareto-optimal.")
	return nil
}

func profile(p *core.Processor) error {
	st := p.TraceStats()
	fmt.Printf("full SM trace: %d GF(p^2) operations\n", st.Total)
	fmt.Printf("  multiplications: %d (%.1f%%)   [paper: ~57%%]\n", st.Muls, 100*st.MulShare)
	fmt.Printf("  add/subs:        %d (%.1f%%)\n", st.Adds, 100*(1-st.MulShare))
	return nil
}

func table1() error {
	fmt.Println("scheduling the double-and-add block with the exact solver...")
	r, err := core.TableI(sched.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("block: %d Fp2 mults + %d Fp2 add/subs [paper: 15 + 13]\n", r.Muls, r.Adds)
	fmt.Printf("makespan: %d cycles (optimal proven: %v, lower bound %d) [paper's Table I: 25]\n\n",
		r.Makespan, r.Optimal, r.LowerBound)
	fmt.Println(r.Listing)
	return nil
}

func latency(p *core.Processor) error {
	m, err := p.PowerModel()
	if err != nil {
		return err
	}
	fmt.Printf("cycles/SM: functional (with substitution doublings) %d, paper-comparable %d\n",
		p.CyclesFunctional(), p.CyclesEndoModeled())
	fmt.Printf("derived clock @1.20V: %.1f MHz\n", m.Fmax(1.2)/1e6)
	fmt.Printf("latency @1.20V: %.2f us  [paper: 10.1 us]\n", m.Latency(1.2)*1e6)
	fmt.Printf("latency @0.32V: %.0f us  [paper: 857 us]\n", m.Latency(0.32)*1e6)
	if err := p.Verify(2, 7); err != nil {
		return err
	}
	fmt.Println("RTL-vs-library verification: 2/2 scalar multiplications bit-exact")
	return nil
}

func fig4(p *core.Processor) error {
	r, err := p.Figure4(12)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-14s %-12s %s\n", "VDD [V]", "Fmax [MHz]", "Latency [us]", "Energy [uJ]", "SM/s")
	for _, pt := range r.Points {
		fmt.Printf("%-8.2f %-12.2f %-14.1f %-12.3f %.0f\n",
			pt.V, pt.FmaxHz/1e6, pt.LatencyS*1e6, pt.EnergyJ*1e6, pt.Throughput)
	}
	fmt.Printf("model minimum energy: %.3f uJ at %.2f V [paper: 0.327 uJ at 0.32 V]\n",
		r.MinEnergyJ*1e6, r.MinEnergyV)
	return nil
}

func table2(p *core.Processor) error {
	r, err := p.TableII()
	if err != nil {
		return err
	}
	hdr := fmt.Sprintf("%-22s %-16s %-11s %-5s %-24s %-6s %-12s %-12s %-10s %s",
		"Design", "Platform", "Curve", "Core", "Area", "VDD", "Latency[ms]", "Ops/s", "E/op[uJ]", "LatxArea")
	fmt.Println(hdr)
	printRow := func(c core.CompRow) {
		v := "-"
		if c.VDD > 0 {
			v = fmt.Sprintf("%.2f", c.VDD)
		}
		lat := "-"
		if c.LatencyMS > 0 {
			lat = fmt.Sprintf("%.4f", c.LatencyMS)
		}
		e := "-"
		if c.EnergyUJ > 0 {
			e = fmt.Sprintf("%.3f", c.EnergyUJ)
		}
		lap := "-"
		if c.LatencyAreaProduct > 0 {
			lap = fmt.Sprintf("%.1f", c.LatencyAreaProduct)
		}
		fmt.Printf("%-22s %-16s %-11s %-5d %-24s %-6s %-12s %-12.3g %-10s %s\n",
			c.Design, c.Platform, c.Curve, c.Cores, c.Area, v, lat, c.OpsPerSec, e, lap)
	}
	printRow(r.OursLowV)
	printRow(r.OursHighV)
	if mc, err := p.MultiCore(11, 1.20); err == nil {
		printRow(mc)
	}
	for _, c := range r.Prior {
		printRow(c)
	}
	fmt.Println()
	fmt.Printf("headline ratios: %.2fx vs P-256 ASIC [paper 3.66x], %.1fx vs FourQ FPGA [paper 15.5x], %.2fx energy vs ECDSA ASIC [paper 5.14x]\n",
		r.SpeedupVsP256ASIC, r.SpeedupVsFourQFPGA, r.EnergyGainVsECDSA)
	fmt.Printf("same-silicon cross-check: FourQ %d cycles vs P-256 model %d (%.2fx) vs Curve25519 model %d (%.2fx)\n",
		r.FourQCycles, r.P256ModelCycles, r.ModelSpeedupP256, r.C25519ModelCycles, r.ModelSpeedupC25519)
	return nil
}

func fig3(p *core.Processor) error {
	b := p.Figure3()
	fmt.Println("area breakdown (calibrated to the published 1400 kGE):")
	fmt.Println(b)
	fmt.Printf("\n  [paper: 1400 kGE, %.2f mm x %.2f mm]\n", 1.76, 3.56)
	return nil
}

func ablation(full bool) error {
	rows, err := core.SchedulerAblation(sched.DefaultResources(), full)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-10s %-12s %s\n", "trace/method", "makespan", "lower bound", "optimal")
	for _, r := range rows {
		fmt.Printf("%-18s %-10d %-12d %v\n", r.Method, r.Makespan, r.LowerBound, r.Optimal)
	}
	withF, withoutF, err := core.ForwardingAblation(sched.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("\npipeline-depth sensitivity (DBLADD block): %d cycles at default latency, %d with +1 stage\n", withF, withoutF)
	el, err := core.ElisionAblation(sched.DefaultResources())
	if err != nil {
		return err
	}
	fmt.Printf("write-back elision (full SM): %d of %d register-file writes removed (%.0f%%)\n",
		el.ElidedWrites, el.TotalOps, 100*el.SavedShare)
	return nil
}
