// Command fourq-sched runs the automated instruction-scheduling flow of
// Section III-C on its own: record the GF(p^2) operation trace of the
// scalar-multiplication algorithm, convert it to a job-shop instance,
// solve with the selected method, and emit flow statistics plus an
// optional Table I-style schedule listing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"path/filepath"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/hdl"
	"repro/internal/isa"
	"repro/internal/jobshop"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	block := flag.Bool("block", false, "schedule only the double-and-add block (Table I workload)")
	method := flag.String("method", "list", "scheduler: list|bnb|anneal|blocked|tabu|portfolio")
	listing := flag.Bool("listing", false, "print the per-cycle schedule listing")
	mulLat := flag.Int("mul-latency", 3, "multiplier pipeline depth")
	addLat := flag.Int("add-latency", 1, "adder latency")
	blockSize := flag.Int("block-size", 32, "block size for -method blocked")
	seed := flag.Int64("seed", 0, "root seed for the randomized solvers (tabu, portfolio)")
	rounds := flag.Int("rounds", 0, "portfolio round budget (0 = default); determinism holds per (seed, rounds)")
	timeBudget := flag.Duration("time-budget", 0, "portfolio wall-clock cap (breaks run-to-run determinism)")
	dumpAsm := flag.String("dump-asm", "", "write the scheduled microprogram as assembly text to this file")
	dumpDot := flag.String("dump-dot", "", "write the trace dataflow graph in Graphviz DOT format to this file")
	verilogDir := flag.String("verilog", "", "export the scheduled design as Verilog into this directory")
	flag.Parse()

	if err := run(runConfig{
		block: *block, method: *method, listing: *listing,
		mulLat: *mulLat, addLat: *addLat, blockSize: *blockSize,
		seed: *seed, rounds: *rounds, timeBudget: *timeBudget,
		dumpAsm: *dumpAsm, dumpDot: *dumpDot, verilogDir: *verilogDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-sched:", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (sched.Method, error) {
	switch s {
	case "list":
		return sched.MethodList, nil
	case "bnb":
		return sched.MethodBnB, nil
	case "anneal":
		return sched.MethodAnneal, nil
	case "blocked":
		return sched.MethodBlocked, nil
	case "tabu":
		return sched.MethodTabu, nil
	case "portfolio":
		return sched.MethodPortfolio, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

type runConfig struct {
	block      bool
	method     string
	listing    bool
	mulLat     int
	addLat     int
	blockSize  int
	seed       int64
	rounds     int
	timeBudget time.Duration
	dumpAsm    string
	dumpDot    string
	verilogDir string
}

func run(rc runConfig) error {
	method, err := parseMethod(rc.method)
	if err != nil {
		return err
	}
	res := sched.DefaultResources()
	res.MulLatency = rc.mulLat
	res.AddLatency = rc.addLat

	k := scalar.Scalar{0xDEADBEEFCAFEF00D, 0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x0F1E2D3C4B5A6978}
	var tr *trace.ScalarMultTrace
	fmt.Println("step 1-2: recording the execution trace of the SM algorithm...")
	if rc.block {
		g := curve.Generator()
		table := curve.BuildTable(curve.NewMultiBase(g))
		tr, err = trace.BuildDblAdd(k, g, table)
	} else {
		tr, err = trace.BuildScalarMult(k, curve.GeneratorAffine())
	}
	if err != nil {
		return err
	}
	st := tr.Graph.Stats()
	fmt.Printf("  recorded %d micro-operations (%d mult, %d add/sub; %.1f%% multiplications)\n",
		st.Total, st.Muls, st.Adds, 100*st.MulShare)

	fmt.Printf("step 3: job-shop scheduling (method=%s, Lm=%d, La=%d)...\n", rc.method, rc.mulLat, rc.addLat)
	lb, err := core.LowerBoundOfInstance(tr.Graph, res)
	if err != nil {
		return err
	}
	opts := sched.Options{
		Method:    method,
		BlockSize: rc.blockSize,
		BnBBudget: 10_000_000,
		Seed:      rc.seed,
		Portfolio: sched.PortfolioKnobs{Rounds: rc.rounds, TimeBudget: rc.timeBudget},
	}
	if method == sched.MethodPortfolio {
		// Live incumbent trajectory: a full-trace portfolio run takes
		// seconds to minutes, so narrate the search.
		opts.Progress = func(p jobshop.Progress) {
			switch p.Kind {
			case jobshop.ProgressIncumbent:
				fmt.Printf("  round %d: incumbent %d cycles\n", p.Iteration, p.Makespan)
			case jobshop.ProgressDone:
				fmt.Printf("  portfolio done after %d rounds\n", p.Iteration)
			}
		}
	}
	r, err := sched.Schedule(tr.Graph, res, opts)
	if err != nil {
		return err
	}
	fmt.Printf("  makespan: %d cycles (lower bound %d, optimal proven: %v)\n", r.Makespan, lb, r.Optimal)
	fmt.Printf("  solver: %s, schedule hash %016x\n", r.Solver, r.ScheduleHash)
	fmt.Printf("  multiplier utilization: %.1f%% of cycles issue a multiplication\n",
		100*float64(st.Muls)/float64(r.Makespan))

	fmt.Println("step 4: control-signal generation...")
	fmt.Printf("  %s\n", core.ProgramSummary(r.Program))
	rom, err := r.Program.ROMImage()
	if err != nil {
		return err
	}
	fmt.Printf("  program ROM: %d words x 64 bit = %.1f kbit; peak live values %d\n",
		len(rom), float64(len(rom)*64)/1000, r.MaxLive)

	if rc.dumpDot != "" {
		if err := os.WriteFile(rc.dumpDot, []byte(tr.Graph.DOT("fourq_sm")), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote dataflow graph to %s\n", rc.dumpDot)
	}

	if rc.dumpAsm != "" {
		if err := os.WriteFile(rc.dumpAsm, []byte(isa.FormatProgram(r.Program)), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote assembly listing to %s\n", rc.dumpAsm)
	}

	if rc.verilogDir != "" {
		design, err := hdl.Generate(r.Program)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(rc.verilogDir, 0o755); err != nil {
			return err
		}
		for name, contents := range design {
			if err := os.WriteFile(filepath.Join(rc.verilogDir, name), []byte(contents), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("  exported %d Verilog/ROM files to %s\n", len(design), rc.verilogDir)
	}

	if rc.listing {
		fmt.Println()
		fmt.Println(core.FormatScheduleTable(tr.Graph, r))
	}
	return nil
}
