// Command fourq-asm is the microprogram toolchain: it parses the textual
// assembly format (see fourq-sched -dump-asm), validates the program
// against the datapath's structural rules, reports statistics, and
// converts between assembly and the 64-bit control-word ROM image.
//
//	fourq-asm -in prog.s                 # validate + stats
//	fourq-asm -in prog.s -rom prog.hex   # assemble to ROM image (hex)
//	fourq-asm -disasm prog.hex -out prog.s  # disassemble a ROM image
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/isa"
)

func main() {
	in := flag.String("in", "", "assembly file to parse and validate")
	rom := flag.String("rom", "", "write the ROM image (one hex word per line) here")
	disasm := flag.String("disasm", "", "ROM image to disassemble instead of -in")
	out := flag.String("out", "", "output file for -disasm (default stdout)")
	flag.Parse()

	if err := run(*in, *rom, *disasm, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-asm:", err)
		os.Exit(1)
	}
}

func run(in, rom, disasm, out string) error {
	switch {
	case disasm != "":
		return runDisasm(disasm, out)
	case in != "":
		return runAssemble(in, rom)
	}
	return fmt.Errorf("need -in or -disasm (see -h)")
}

func runAssemble(in, rom string) error {
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	p, err := isa.ParseProgram(string(src))
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("validation failed: %w", err)
	}
	muls, adds, elided := 0, 0, 0
	for _, i := range p.Instrs {
		if i.Unit == isa.UnitMul {
			muls++
		} else {
			adds++
		}
		if i.NoWB {
			elided++
		}
	}
	fmt.Printf("%s: OK\n", in)
	fmt.Printf("  %d instructions (%d mul, %d add; %d elided write-backs)\n", len(p.Instrs), muls, adds, elided)
	fmt.Printf("  makespan %d cycles, %d registers, latencies mul=%d add=%d ii=%d\n",
		p.Makespan, p.NumRegs, p.MulLatency, p.AddLatency, p.MulII)
	if rom == "" {
		return nil
	}
	words, err := p.ROMImage()
	if err != nil {
		return err
	}
	f, err := os.Create(rom)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	// Header comment carries the metadata the control words don't.
	fmt.Fprintf(w, "# fourq ROM: makespan=%d regs=%d mul=%d add=%d ii=%d\n",
		p.Makespan, p.NumRegs, p.MulLatency, p.AddLatency, p.MulII)
	for _, word := range words {
		fmt.Fprintf(w, "%016x\n", word)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("  wrote %d control words (%d valid) to %s\n", len(words), len(p.Instrs), rom)
	return nil
}

func runDisasm(path, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var words []uint64
	meta := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(line[1:]) {
				kv := strings.SplitN(field, "=", 2)
				if len(kv) == 2 {
					if v, err := strconv.Atoi(kv[1]); err == nil {
						meta[kv[0]] = v
					}
				}
			}
			continue
		}
		w, err := strconv.ParseUint(line, 16, 64)
		if err != nil {
			return fmt.Errorf("bad ROM word %q: %v", line, err)
		}
		words = append(words, w)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	instrs, err := isa.FromROMImage(words)
	if err != nil {
		return err
	}
	p := &isa.Program{
		Instrs:     instrs,
		NumRegs:    metaOr(meta, "regs", isa.MaxRegs),
		Makespan:   metaOr(meta, "makespan", len(words)/2),
		MulLatency: metaOr(meta, "mul", 3),
		AddLatency: metaOr(meta, "add", 1),
		MulII:      metaOr(meta, "ii", 1),
		InputRegs:  map[string]uint16{},
		OutputRegs: map[string]uint16{},
	}
	text := isa.FormatProgram(p)
	if out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(out, []byte(text), 0o644)
}

func metaOr(m map[string]int, key string, def int) int {
	if v, ok := m[key]; ok {
		return v
	}
	return def
}
