// Command fourq-loadgen drives a running fourq-serve instance with an
// open-loop request stream (arrivals paced by a clock, independent of
// response latency — the honest way to measure a service under
// overload) and records the outcome as a "fourq-bench/v1" report:
// latency percentiles over successful requests, goodput in requests
// and scalar-multiplication equivalents per second, and the shed rate
// (clean 503s per offered request).
//
// The workload is deterministic: a fixed mix of scalarmult / sign /
// verify / batch-verify requests built from precomputed payloads, so
// runs are comparable and every 200 is known-verifiable. -metrics-out
// scrapes the server's /metrics at the end of the run, which lets the
// smoke harness assert on the server's own counters without needing
// curl in the image.
//
// -fault-window "start,end" marks the interval (offsets from run
// start) in which a fault is being injected on the server side — e.g.
// a chaos campaign arming an injector, or an operator killing a shard.
// The report then splits goodput, tallies, and latency percentiles
// into before/during/after phases keyed by each request's launch time,
// so degradation under the fault and recovery after it are measured
// separately instead of averaged away.
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scalar"
	"repro/internal/schnorrq"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:7414", "base URL of the fourq-serve instance")
	rps := flag.Float64("rps", 200, "offered request rate (open loop)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	mix := flag.String("mix", "scalarmult=4,sign=2,verify=3,batch=1", "weighted operation mix")
	batchSize := flag.Int("batch-size", 4, "items per batch-verify request")
	tenant := flag.String("tenant", "", "X-Tenant header value (empty omits the header)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	waitReady := flag.Duration("wait-ready", 0, "poll /healthz up to this long before starting")
	jsonPath := flag.String("json", "", "write the fourq-bench/v1 report to this file")
	metricsOut := flag.String("metrics-out", "", "scrape the server's /metrics into this file after the run")
	expName := flag.String("exp", "serve", "experiment name in the report")
	faultWindow := flag.String("fault-window", "", "\"start,end\" offsets of the server-side fault window (e.g. \"2s,3s\"); splits the report into before/during/after phases")
	flag.Parse()

	if err := run(*target, *rps, *duration, *mix, *batchSize, *tenant, *timeout, *waitReady, *jsonPath, *metricsOut, *expName, *faultWindow); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-loadgen:", err)
		os.Exit(1)
	}
}

// opKind is one entry of the offered mix: a request payload plus its
// admission weight in scalar-multiplication equivalents (matching the
// server's accounting, so goodput_sm_per_sec is comparable with the
// engine benchmarks).
type opKind struct {
	name   string
	path   string
	body   []byte
	smCost int
}

// buildOps precomputes one deterministic payload per operation kind.
// Every payload is valid, so any non-200 answer is an admission
// decision (shed / throttle), not a validation artifact.
func buildOps(batchSize int) ([]opKind, error) {
	k := scalar.ModN(scalar.Scalar{0x9E3779B97F4A7C15, 7, 0, 0})
	kb := k.Bytes()
	smBody, _ := json.Marshal(map[string]string{"scalar": hex.EncodeToString(kb[:])})

	var seed [schnorrq.SeedSize]byte
	for i := range seed {
		seed[i] = byte(i*31 + 5)
	}
	key, err := schnorrq.NewKeyFromSeed(seed)
	if err != nil {
		return nil, err
	}
	msg := []byte("fourq-loadgen canonical message")
	sig := key.Sign(msg)
	pub := key.Public.Bytes()
	signBody, _ := json.Marshal(map[string]string{
		"seed": hex.EncodeToString(seed[:]),
		"msg":  hex.EncodeToString(msg),
	})
	item := map[string]string{
		"pub": hex.EncodeToString(pub[:]),
		"msg": hex.EncodeToString(msg),
		"sig": hex.EncodeToString(sig[:]),
	}
	verifyBody, _ := json.Marshal(item)
	items := make([]map[string]string, batchSize)
	for i := range items {
		items[i] = item
	}
	batchBody, _ := json.Marshal(map[string]any{"items": items})

	return []opKind{
		{"scalarmult", "/v1/scalarmult", smBody, 1},
		{"sign", "/v1/sign", signBody, 1},
		{"verify", "/v1/verify", verifyBody, 2},
		{"batch", "/v1/batch/verify", batchBody, 2*batchSize + 1},
	}, nil
}

// parseMix expands "scalarmult=4,sign=2" into a weighted round-robin
// schedule over the known op kinds.
func parseMix(mix string, ops []opKind) ([]opKind, error) {
	byName := map[string]opKind{}
	for _, o := range ops {
		byName[o.name] = o
	}
	var sched []opKind
	for _, ent := range strings.Split(mix, ",") {
		name, wStr, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("mix: %q is not name=weight", ent)
		}
		o, found := byName[name]
		if !found {
			return nil, fmt.Errorf("mix: unknown operation %q", name)
		}
		w, err := strconv.Atoi(wStr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix: bad weight in %q", ent)
		}
		for i := 0; i < w; i++ {
			sched = append(sched, o)
		}
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("mix: empty schedule")
	}
	return sched, nil
}

// outcome tallies one request's fate. at is the launch offset from run
// start — the phase key when a fault window is configured.
type outcome struct {
	status  int
	latency time.Duration
	smCost  int
	at      time.Duration
	err     error
}

// phaseStats is one fault-window phase's share of the run.
type phaseStats struct {
	Seconds    float64            `json:"seconds"`
	Requests   map[string]int     `json:"requests"`
	LatencyMS  map[string]float64 `json:"latency_ms"`
	GoodputRPS float64            `json:"goodput_rps"`
}

// parseFaultWindow parses "start,end" run offsets.
func parseFaultWindow(spec string, duration time.Duration) (start, end time.Duration, err error) {
	sStr, eStr, ok := strings.Cut(spec, ",")
	if !ok {
		return 0, 0, fmt.Errorf("fault-window: %q is not \"start,end\"", spec)
	}
	if start, err = time.ParseDuration(strings.TrimSpace(sStr)); err != nil {
		return 0, 0, fmt.Errorf("fault-window start: %w", err)
	}
	if end, err = time.ParseDuration(strings.TrimSpace(eStr)); err != nil {
		return 0, 0, fmt.Errorf("fault-window end: %w", err)
	}
	if start < 0 || end <= start || end > duration {
		return 0, 0, fmt.Errorf("fault-window: need 0 <= start < end <= duration (%v), got [%v, %v]", duration, start, end)
	}
	return start, end, nil
}

// serveStats is the experiments.<name> payload of the report —
// scripts/benchcheck validates exactly these fields.
type serveStats struct {
	Target          string             `json:"target"`
	OfferedRPS      float64            `json:"offered_rps"`
	DurationSeconds float64            `json:"duration_seconds"`
	Mix             string             `json:"mix"`
	BatchSize       int                `json:"batch_size"`
	Requests        map[string]int     `json:"requests"`
	ShedRate        float64            `json:"shed_rate"`
	LatencyMS       map[string]float64 `json:"latency_ms"`
	GoodputRPS      float64            `json:"goodput_rps"`
	GoodputSMPerSec float64            `json:"goodput_sm_per_sec"`
	// FaultWindow and Phases are present only when -fault-window was
	// given: the window spec and the before/during/after split.
	FaultWindow string                 `json:"fault_window,omitempty"`
	Phases      map[string]*phaseStats `json:"phases,omitempty"`
}

func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func waitHealthy(client *http.Client, target string, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		resp, err := client.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(end) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", deadline, err)
			}
			return fmt.Errorf("server not ready after %v", deadline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func run(target string, rps float64, duration time.Duration, mix string, batchSize int, tenant string, timeout, waitReady time.Duration, jsonPath, metricsOut, expName, faultWindow string) error {
	if rps <= 0 {
		return fmt.Errorf("rps must be positive")
	}
	var fwStart, fwEnd time.Duration
	if faultWindow != "" {
		var err error
		if fwStart, fwEnd, err = parseFaultWindow(faultWindow, duration); err != nil {
			return err
		}
	}
	ops, err := buildOps(batchSize)
	if err != nil {
		return err
	}
	sched, err := parseMix(mix, ops)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: timeout}
	if waitReady > 0 {
		if err := waitHealthy(client, target, waitReady); err != nil {
			return err
		}
	}

	// Open loop: arrivals are paced by the wall clock alone, independent
	// of how many requests are still outstanding. The pacer launches
	// whatever the elapsed-time schedule owes on every tick (a plain
	// per-tick launch would silently under-offer at high rates, because
	// time.Ticker coalesces missed ticks). Under overload the arrival
	// rate holds and the server's shedding (503) is what keeps latency
	// bounded — which is exactly the behavior being measured.
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	stop := time.After(duration)
	start := time.Now()

	var wg sync.WaitGroup
	outcomes := make(chan outcome, 1<<20)
	launched := 0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			owed := int(time.Since(start).Seconds() * rps)
			for launched < owed {
				o := sched[launched%len(sched)]
				launched++
				wg.Add(1)
				go func(o opKind) {
					defer wg.Done()
					t0 := time.Now()
					at := t0.Sub(start)
					req, err := http.NewRequest(http.MethodPost, target+o.path, bytes.NewReader(o.body))
					if err != nil {
						outcomes <- outcome{err: err, at: at}
						return
					}
					req.Header.Set("Content-Type", "application/json")
					if tenant != "" {
						req.Header.Set("X-Tenant", tenant)
					}
					resp, err := client.Do(req)
					if err != nil {
						outcomes <- outcome{err: err, at: at}
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					outcomes <- outcome{status: resp.StatusCode, latency: time.Since(t0), smCost: o.smCost, at: at}
				}(o)
			}
		}
	}
	wg.Wait()
	close(outcomes)

	stats := serveStats{
		Target:          target,
		OfferedRPS:      rps,
		DurationSeconds: duration.Seconds(),
		Mix:             mix,
		BatchSize:       batchSize,
		Requests:        map[string]int{"total": 0, "ok": 0, "shed": 0, "rate_limited": 0, "failed": 0},
		LatencyMS:       map[string]float64{},
	}
	phaseOf := func(at time.Duration) string {
		switch {
		case at < fwStart:
			return "before"
		case at < fwEnd:
			return "during"
		default:
			return "after"
		}
	}
	var phaseLat map[string][]time.Duration
	if faultWindow != "" {
		stats.FaultWindow = faultWindow
		stats.Phases = map[string]*phaseStats{
			"before": {Seconds: fwStart.Seconds()},
			"during": {Seconds: (fwEnd - fwStart).Seconds()},
			"after":  {Seconds: (duration - fwEnd).Seconds()},
		}
		for _, ph := range stats.Phases {
			ph.Requests = map[string]int{"total": 0, "ok": 0, "shed": 0, "rate_limited": 0, "failed": 0}
			ph.LatencyMS = map[string]float64{}
		}
		phaseLat = map[string][]time.Duration{}
	}
	var okLat []time.Duration
	smDone := 0
	for o := range outcomes {
		var ph *phaseStats
		var phName string
		if stats.Phases != nil {
			phName = phaseOf(o.at)
			ph = stats.Phases[phName]
		}
		stats.Requests["total"]++
		if ph != nil {
			ph.Requests["total"]++
		}
		bump := func(key string) {
			stats.Requests[key]++
			if ph != nil {
				ph.Requests[key]++
			}
		}
		switch {
		case o.err != nil:
			bump("failed")
		case o.status == http.StatusOK:
			bump("ok")
			okLat = append(okLat, o.latency)
			smDone += o.smCost
			if ph != nil {
				phaseLat[phName] = append(phaseLat[phName], o.latency)
			}
		case o.status == http.StatusServiceUnavailable:
			bump("shed")
		case o.status == http.StatusTooManyRequests:
			bump("rate_limited")
		default:
			bump("failed")
		}
	}
	if stats.Requests["total"] == 0 {
		return fmt.Errorf("no requests launched (duration too short for rate %v?)", rps)
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	stats.LatencyMS["p50"] = percentileMS(okLat, 0.50)
	stats.LatencyMS["p95"] = percentileMS(okLat, 0.95)
	stats.LatencyMS["p99"] = percentileMS(okLat, 0.99)
	stats.ShedRate = float64(stats.Requests["shed"]) / float64(stats.Requests["total"])
	stats.GoodputRPS = float64(stats.Requests["ok"]) / duration.Seconds()
	stats.GoodputSMPerSec = float64(smDone) / duration.Seconds()
	for name, ph := range stats.Phases {
		lat := phaseLat[name]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		ph.LatencyMS["p50"] = percentileMS(lat, 0.50)
		ph.LatencyMS["p95"] = percentileMS(lat, 0.95)
		ph.LatencyMS["p99"] = percentileMS(lat, 0.99)
		if ph.Seconds > 0 {
			ph.GoodputRPS = float64(ph.Requests["ok"]) / ph.Seconds
		}
	}

	fmt.Printf("fourq-loadgen: %d offered (%0.f rps over %v), %d ok, %d shed (%.1f%%), %d throttled, %d failed\n",
		stats.Requests["total"], rps, duration,
		stats.Requests["ok"], stats.Requests["shed"], 100*stats.ShedRate,
		stats.Requests["rate_limited"], stats.Requests["failed"])
	fmt.Printf("fourq-loadgen: latency p50=%.2fms p95=%.2fms p99=%.2fms, goodput %.1f req/s (%.1f SM/s)\n",
		stats.LatencyMS["p50"], stats.LatencyMS["p95"], stats.LatencyMS["p99"],
		stats.GoodputRPS, stats.GoodputSMPerSec)

	for _, name := range []string{"before", "during", "after"} {
		if ph := stats.Phases[name]; ph != nil {
			fmt.Printf("fourq-loadgen: %-6s %5.1fs: %4d ok, %4d shed, %3d throttled, %3d failed, goodput %.1f req/s, p99 %.2fms\n",
				name, ph.Seconds, ph.Requests["ok"], ph.Requests["shed"],
				ph.Requests["rate_limited"], ph.Requests["failed"], ph.GoodputRPS, ph.LatencyMS["p99"])
		}
	}

	if stats.Requests["ok"] == 0 {
		return fmt.Errorf("no request succeeded")
	}

	if jsonPath != "" {
		report := map[string]any{
			"schema":      "fourq-bench/v1",
			"experiments": map[string]any{expName: stats},
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("fourq-loadgen: wrote report to %s\n", jsonPath)
	}
	if metricsOut != "" {
		resp, err := client.Get(target + "/metrics")
		if err != nil {
			return fmt.Errorf("metrics scrape: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics scrape: status %d", resp.StatusCode)
		}
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		_, err = io.Copy(f, resp.Body)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("metrics scrape: %w", err)
		}
		fmt.Printf("fourq-loadgen: scraped /metrics to %s\n", metricsOut)
	}
	return nil
}
