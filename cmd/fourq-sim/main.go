// Command fourq-sim executes scalar multiplications on the cycle-accurate
// datapath model, verifies every result against the functional library,
// and reports cycle counts plus modelled latency and energy at a chosen
// supply voltage.
//
// Pass -debug-addr (e.g. "localhost:6060") to serve the unified debug
// surface (net/http/pprof, expvar, /metrics, /debug/telemetry) while
// the simulation runs; see docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

func main() {
	kHex := flag.String("k", "", "scalar in hex (random-looking default if empty)")
	vdd := flag.Float64("vdd", 1.20, "supply voltage [0.32, 1.2]")
	trials := flag.Int("verify", 4, "number of random verification runs")
	vcdPath := flag.String("vcd", "", "dump a waveform of the run to this VCD file")
	powerCSV := flag.String("power", "", "dump the per-cycle switching-activity trace (CSV) to this file")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /debug on this address (e.g. localhost:6060)")
	flag.Parse()

	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, telemetry.NewRegistry(), telemetry.NewFlightRecorder(0))
	}

	if err := run(*kHex, *vdd, *trials, *vcdPath, *powerCSV); err != nil {
		fmt.Fprintln(os.Stderr, "fourq-sim:", err)
		os.Exit(1)
	}
}

func run(kHex string, vdd float64, trials int, vcdPath, powerCSV string) error {
	k := scalar.Scalar{0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 0x2545F4914F6CDD1D, 0x27220A95FE9D3E8F}
	if kHex != "" {
		v, ok := new(big.Int).SetString(kHex, 16)
		if !ok {
			return fmt.Errorf("bad scalar %q", kHex)
		}
		k = scalar.FromBig(v)
	}

	fmt.Println("building and scheduling the processor...")
	p, err := core.New(core.Config{})
	if err != nil {
		return err
	}

	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dec := scalar.Decompose(k)
		g := curve.GeneratorAffine()
		if _, _, err := rtl.WriteVCD(p.Program(), rtl.RunInput{
			Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
			Rec:       scalar.Recode(dec),
			Corrected: dec.Corrected,
		}, f); err != nil {
			return err
		}
		fmt.Printf("wrote waveform to %s\n", vcdPath)
	}

	if powerCSV != "" {
		f, err := os.Create(powerCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		dec := scalar.Decompose(k)
		g := curve.GeneratorAffine()
		act := rtl.NewActivity(p.Program().Makespan)
		if _, _, err := rtl.Run(p.Program(), rtl.RunInput{
			Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
			Rec:       scalar.Recode(dec),
			Corrected: dec.Corrected,
			Observer:  act.Observe,
		}); err != nil {
			return err
		}
		fmt.Fprintln(f, "cycle,toggles")
		for c, tg := range act.PerCycle {
			fmt.Fprintf(f, "%d,%d\n", c, tg)
		}
		fmt.Printf("wrote switching-activity trace (%d cycles, %d total toggles) to %s\n",
			len(act.PerCycle), act.Toggles, powerCSV)
	}

	fmt.Printf("running [k]G on the RTL model, k = %v\n", k)
	got, st, err := p.ScalarMult(k)
	if err != nil {
		return err
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
		return fmt.Errorf("RTL result differs from the functional library")
	}
	fmt.Println("  result verified bit-exact against the functional library")
	fmt.Printf("  x = %v\n  y = %v\n", got.X, got.Y)
	fmt.Printf("  cycles: %d (issues: %d mul, %d add; %d forwarded reads, %d register writes)\n",
		st.Cycles, st.MulIssues, st.AddIssues, st.ForwardedReads, st.RegWrites)

	if trials > 0 {
		fmt.Printf("verifying %d random scalars...\n", trials)
		if err := p.Verify(trials, 424242); err != nil {
			return err
		}
		fmt.Printf("  %d/%d bit-exact\n", trials, trials)
	}

	m, err := p.PowerModel()
	if err != nil {
		return err
	}
	fmt.Printf("at VDD = %.2f V (paper-comparable %d cycles/SM):\n", vdd, p.CyclesEndoModeled())
	fmt.Printf("  Fmax    %10.2f MHz\n", m.Fmax(vdd)/1e6)
	fmt.Printf("  latency %10.1f us/SM\n", m.Latency(vdd)*1e6)
	fmt.Printf("  energy  %10.3f uJ/SM\n", m.EnergyPerSM(vdd)*1e6)
	fmt.Printf("  rate    %10.0f SM/s\n", m.Throughput(vdd))
	return nil
}
