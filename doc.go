// Package fourqasic is a full-system reproduction of "FourQ on ASIC:
// Breaking Speed Records for Elliptic Curve Scalar Multiplication"
// (Awano & Ikeda, DATE 2019).
//
// The repository implements, from scratch and in pure Go:
//
//   - the FourQ elliptic curve stack: GF(2^127-1) and GF(p^2) arithmetic,
//     complete twisted Edwards point operations, four-way decomposed
//     scalar multiplication (the paper's Algorithm 1), and ECDSA
//     (internal/fp, internal/fp2, internal/curve, internal/scalar,
//     internal/ecdsa);
//   - the paper's automated hardware-design flow: an execution-trace
//     recorder (internal/trace), a job-shop / RCPSP solver standing in
//     for PySchedule + IBM CP Optimizer (internal/jobshop), a scheduling
//     front-end with register allocation (internal/sched), a
//     microinstruction set and program ROM (internal/isa);
//   - a cycle-accurate model of the fabricated datapath, bit-true through
//     the lazy-reduction Karatsuba multiplier pipeline (internal/rtl);
//   - measurement models calibrated to the published silicon results:
//     voltage/frequency/energy (internal/power) and area (internal/gates);
//   - the prior-art baselines of Table II: NIST P-256 (internal/p256)
//     and Curve25519 (internal/c25519);
//   - the top-level processor assembly and every table/figure
//     reproduction (internal/core).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for paper-versus-measured results. The root-level
// benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem .
package fourqasic
