# Build/test/CI entry points. `make ci` is what the smoke pipeline runs:
# vet + build + race-enabled tests (plus a dedicated -race pass over the
# concurrency-heavy engine and fault packages with a higher -count, the
# paths the robustness machinery exercises hardest), a short-budget fuzz
# pass over the arithmetic and recoding differential fuzzers, an
# end-to-end check that fourq-bench's machine-readable output carries
# real RTL statistics, a healthy batch-engine throughput experiment, a
# reconciled fault-injection campaign, a lane-batch smoke (the
# race-enabled engine coalescing tests plus a width-2 lockstep sweep),
# an observability smoke (race-enabled span/flight-recorder tests plus a
# linted end-to-end Prometheus scrape through fourq-sign -metrics),
# a serve smoke (race-enabled tests of the sharded signing service plus
# an end-to-end fourq-loadgen drive of a live fourq-serve: steady run
# gated against the committed BENCH_serve.json, overload run that must
# shed 503s without ever saturating an engine queue, linted /metrics
# scrape, graceful SIGTERM drain),
# a chaos smoke (race-enabled deterministic failure campaigns — a
# poisoned shard, a stalled shard, clock skew, saturation, drain racing
# a fault — against a real in-process server, gated against the
# committed BENCH_chaos.json),
# a scheduler smoke (race-enabled portfolio/tabu tests plus a
# short-budget pinned-seed portfolio solve that must be deterministic,
# hazard-proven, and beat the committed single-solver makespan),
# a fixed-base smoke (race-enabled comb/class-routing tests across the
# stack plus a real -exp fixedbase run whose comb schedule must beat
# the variable-base one),
# and finally the perf-regression gate: a fresh
# latency+throughput+batch+sched+fixedbase run on the portfolio schedule compared
# against the committed BENCH_rtl.json baseline (refresh it with
# `make bench-record` after a deliberate perf change; TOLERANCE sets
# the allowed fractional SM/s drop, and the allowed upward drift of the
# portfolio makespan).

GO ?= go
BENCH_JSON ?= /tmp/bench.json
FIXEDBASE_JSON ?= /tmp/fixedbase.json
THROUGHPUT_JSON ?= /tmp/throughput.json
BATCH_JSON ?= /tmp/batch.json
FAULTS_JSON ?= /tmp/faults.json
COMPARE_JSON ?= /tmp/bench_compare.json
BENCH_BASELINE ?= BENCH_rtl.json
TOLERANCE ?= 0.10
FUZZTIME ?= 5s
OBS_METRICS ?= /tmp/obs_metrics.prom

SERVE_BASELINE ?= BENCH_serve.json
CHAOS_JSON ?= /tmp/chaos.json
CHAOS_BASELINE ?= BENCH_chaos.json
CHAOS_SEED ?= 1

.PHONY: all build test vet race race-robust fuzz-smoke ci smoke lane-smoke obs-smoke serve-smoke serve-record chaos-smoke chaos-record sched-smoke fixedbase-smoke bench-record bench-compare clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race hunt over the retry/quarantine/breaker machinery and the
# fault injector: repeated runs shake out interleavings a single -race
# pass can miss.
race-robust:
	$(GO) test -race -count=3 ./internal/engine ./internal/fault

# Short-budget fuzz smoke: one representative differential fuzzer per
# package (go's -fuzz accepts a single target per run). Seed corpora in
# testdata/fuzz/ run on every plain `go test`; this adds a few seconds
# of coverage-guided input generation on top.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzArithVsBig$$' -fuzztime=$(FUZZTIME) ./internal/fp
	$(GO) test -run='^$$' -fuzz='^FuzzMulVsBig$$' -fuzztime=$(FUZZTIME) ./internal/fp2
	$(GO) test -run='^$$' -fuzz='^FuzzDecomposeRecodeRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/scalar

smoke: build
	$(GO) run ./cmd/fourq-bench -exp latency -json $(BENCH_JSON)
	$(GO) run ./scripts/benchcheck $(BENCH_JSON)
	$(GO) run ./cmd/fourq-bench -exp throughput -json $(THROUGHPUT_JSON)
	$(GO) run ./scripts/benchcheck $(THROUGHPUT_JSON)
	$(GO) run ./cmd/fourq-bench -exp faults -json $(FAULTS_JSON)
	$(GO) run ./scripts/benchcheck $(FAULTS_JSON)

# Lane-batch smoke: the race-enabled coalescing/lockstep engine tests,
# then a cheap width-2 lockstep sweep through the real bench binary so
# CI exercises the -exp batch path end to end (full widths are swept by
# bench-record/bench-compare).
lane-smoke: build
	$(GO) test -race -run 'Lane|Coalesc' -count=1 ./internal/engine ./internal/core ./internal/rtl
	$(GO) run ./cmd/fourq-bench -exp batch -lanes 1,2 -json $(BATCH_JSON)
	$(GO) run ./scripts/benchcheck $(BATCH_JSON)

# Observability smoke: the race-enabled span/flight-recorder/exposition
# tests (including the zero-alloc guarantee of the tracing-disabled hot
# path), then an end-to-end scrape check — fourq-sign writes its
# engine's Prometheus exposition and promlint validates it.
obs-smoke: build
	$(GO) test -race -count=1 -run 'Span|Trace|Flight|Sampling|Prometheus|Handler|DebugMux|Quantile|SumCount|PromName|ZeroAlloc|LaneFill' ./internal/telemetry ./internal/engine
	$(GO) test -count=1 ./scripts/promlint
	$(GO) run ./cmd/fourq-sign -workers 2 -metrics $(OBS_METRICS)
	$(GO) run ./scripts/promlint $(OBS_METRICS)

# Serve smoke: the race-enabled service tests (end-to-end mixed traffic
# against the software oracle, fake-clock drain, malformed-input
# rejection), then the live harness in scripts/serve_smoke.sh — a real
# fourq-serve driven by fourq-loadgen, with the steady run gated against
# the committed BENCH_serve.json and the overload run required to shed
# cleanly before any engine queue saturates.
serve-smoke: build
	$(GO) test -race -count=1 ./internal/serve
	SERVE_BASELINE=$(SERVE_BASELINE) sh ./scripts/serve_smoke.sh

# Chaos smoke: the race-enabled failure campaigns of internal/chaos
# (seed pinned inside the test), then a fresh fourq-chaos run at the
# committed seed — the process exits non-zero on any invariant breach —
# validated by benchcheck alongside the committed BENCH_chaos.json, so
# CI fails if either the live campaign or the recorded baseline stops
# holding the invariants (exactly-once, zero mis-answers,
# shed-before-backpressure, bounded recovery).
chaos-smoke: build
	$(GO) test -race -count=1 ./internal/chaos ./internal/fault
	$(GO) run ./cmd/fourq-chaos -seed $(CHAOS_SEED) -requests 60 -q -json $(CHAOS_JSON)
	$(GO) run ./scripts/benchcheck $(CHAOS_JSON)
	$(GO) run ./scripts/benchcheck $(CHAOS_BASELINE)

# Refresh the committed chaos baseline (validated before it lands).
chaos-record: build
	$(GO) run ./cmd/fourq-chaos -seed $(CHAOS_SEED) -requests 60 -json $(CHAOS_BASELINE)
	$(GO) run ./scripts/benchcheck $(CHAOS_BASELINE)

# Refresh the committed service baseline from a steady loadgen run
# (validated by benchcheck inside the harness before it lands).
serve-record: build
	SERVE_BENCH_OUT=$(SERVE_BASELINE) SERVE_BASELINE=$(SERVE_BASELINE) sh ./scripts/serve_smoke.sh

# Scheduler smoke: the race-enabled portfolio/tabu solver tests, then a
# short-budget pinned-seed portfolio solve of the real trace that must
# reproduce itself bit for bit, survive the RTL hazard prover at the
# cycle count it claimed, and beat the committed baseline's
# single-solver makespan (the full-budget head-to-head is gated by
# bench-compare).
sched-smoke: build
	$(GO) test -race -count=1 -run 'Portfolio|Tabu|MetricsProgress' ./internal/jobshop ./internal/sched
	$(GO) run ./scripts/schedsmoke -baseline $(BENCH_BASELINE)

# Fixed-base smoke: the race-enabled comb tests across every layer
# (recoding, ROM-operand RTL, the third core microprogram, the engine's
# class-homogeneous coalescing, fixed-base-routed signing), then the
# real -exp fixedbase experiment — portfolio-solved, determinism-
# checked, differentially validated against the library's precomputed
# table, and required by benchcheck to beat the variable-base schedule.
fixedbase-smoke: build
	$(GO) test -race -count=1 -run 'FixedBase|Class|Recode' ./internal/scalar ./internal/curve ./internal/trace ./internal/rtl ./internal/core ./internal/engine ./internal/schnorrq ./internal/serve
	$(GO) run ./cmd/fourq-bench -exp fixedbase -json $(FIXEDBASE_JSON)
	$(GO) run ./scripts/benchcheck $(FIXEDBASE_JSON)

# Record the committed performance baseline: one report carrying the
# latency experiment (with host single-thread compiled vs interpreted
# SM/s), the batch-engine throughput sweep, the lockstep lane-width
# sweep, and the scheduler head-to-head (with the deterministic
# portfolio schedule hash), validated before it lands in the tree. The
# measured experiments run on the portfolio schedule — the SM/s
# baselines describe the solver the binaries actually ship.
bench-record: build
	$(GO) run ./cmd/fourq-bench -exp latency,throughput,batch,sched,fixedbase -sched portfolio -json $(BENCH_BASELINE)
	$(GO) run ./scripts/benchcheck $(BENCH_BASELINE)

# Perf-regression gate: a fresh run of the same experiments must stay
# within TOLERANCE of every SM/s metric in the committed baseline
# (including the lockstep peak lane rate), and the portfolio makespan
# must not drift up past the committed cycle count by more than
# TOLERANCE either.
bench-compare: build
	$(GO) run ./cmd/fourq-bench -exp latency,throughput,batch,sched,fixedbase -sched portfolio -json $(COMPARE_JSON)
	$(GO) run ./scripts/benchcheck -baseline $(BENCH_BASELINE) -tolerance $(TOLERANCE) $(COMPARE_JSON)

ci: vet build race race-robust fuzz-smoke smoke lane-smoke obs-smoke serve-smoke chaos-smoke sched-smoke fixedbase-smoke bench-compare

clean:
	$(GO) clean ./...
	rm -f $(BENCH_JSON) $(THROUGHPUT_JSON) $(BATCH_JSON) $(FAULTS_JSON) $(COMPARE_JSON) $(OBS_METRICS) $(CHAOS_JSON) $(FIXEDBASE_JSON)
