# Build/test/CI entry points. `make ci` is what the smoke pipeline runs:
# vet + build + race-enabled tests, then an end-to-end check that
# fourq-bench's machine-readable output carries real RTL statistics.

GO ?= go
BENCH_JSON ?= /tmp/bench.json

.PHONY: all build test vet race ci smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke: build
	$(GO) run ./cmd/fourq-bench -exp latency -json $(BENCH_JSON)
	$(GO) run ./scripts/benchcheck $(BENCH_JSON)

ci: vet build race smoke

clean:
	$(GO) clean ./...
	rm -f $(BENCH_JSON)
