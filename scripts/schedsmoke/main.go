// Command schedsmoke is the CI gate on the portfolio scheduling layer:
// a short-budget, pinned-seed portfolio solve of the real functional
// scalar-multiplication trace that must (a) reproduce itself bit for
// bit when run twice (the determinism contract the committed baseline
// depends on), (b) compile through the RTL hazard prover with the
// cycle count the solver claimed, and (c) beat the committed
// baseline's single-solver makespan — a portfolio that cannot improve
// on its own warm start inside two rounds is broken, whatever the
// full-budget numbers say.
//
// The full-budget head-to-head (and the committed portfolio makespan)
// lives in `fourq-bench -exp sched`; this program exists so `make ci`
// exercises the portfolio end to end in a few seconds instead of ~30.
//
//	go run ./scripts/schedsmoke -baseline BENCH_rtl.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/trace"
)

// baselineSched is the slice of BENCH_rtl.json the smoke gates on.
type baselineSched struct {
	Experiments struct {
		Sched *struct {
			Single struct {
				Makespan int `json:"makespan"`
			} `json:"single"`
			Portfolio struct {
				Makespan int `json:"makespan"`
			} `json:"portfolio"`
			ScheduleHash string `json:"schedule_hash"`
		} `json:"sched"`
	} `json:"experiments"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_rtl.json", "committed bench baseline carrying the sched experiment")
	rounds := flag.Int("rounds", 2, "portfolio round budget (short on purpose)")
	iters := flag.Int("iters", 150, "tabu iterations per worker per round")
	seed := flag.Int64("seed", sched.DefaultPortfolioSeed, "portfolio root seed")
	flag.Parse()

	if err := run(*baseline, *rounds, *iters, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "schedsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("schedsmoke: ok")
}

func run(baselinePath string, rounds, iters int, seed int64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineSched
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: parse: %w", baselinePath, err)
	}
	bs := base.Experiments.Sched
	if bs == nil || bs.Single.Makespan <= 0 {
		return fmt.Errorf("%s carries no sched experiment (refresh it with `make bench-record`)", baselinePath)
	}

	tr, err := trace.BuildScalarMult(core.DefaultTraceScalar(), curve.GeneratorAffine())
	if err != nil {
		return err
	}
	knobs := sched.DefaultPortfolioKnobs()
	knobs.Rounds = rounds
	knobs.TabuIters = iters
	knobs.TabuWorkers = 2
	opts := sched.Options{
		Method:    sched.MethodPortfolio,
		Seed:      seed,
		Portfolio: knobs,
	}

	solve := func() (*sched.Result, error) {
		r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), opts)
		if err != nil {
			return nil, err
		}
		cp, err := rtl.Compile(r.Program)
		if err != nil {
			return nil, fmt.Errorf("portfolio program failed hazard compilation: %w", err)
		}
		if got := cp.Stats().Cycles; got != r.Makespan {
			return nil, fmt.Errorf("RTL executes in %d cycles but the solver claimed %d", got, r.Makespan)
		}
		return r, nil
	}

	first, err := solve()
	if err != nil {
		return err
	}
	fmt.Printf("schedsmoke: seed %d, %d rounds x %d iters: %d cycles (hash %016x, lower bound %d)\n",
		seed, rounds, iters, first.Makespan, first.ScheduleHash, first.LowerBound)

	second, err := solve()
	if err != nil {
		return err
	}
	if second.ScheduleHash != first.ScheduleHash || second.Makespan != first.Makespan {
		return fmt.Errorf("not deterministic: run 1 %016x/%d, run 2 %016x/%d",
			first.ScheduleHash, first.Makespan, second.ScheduleHash, second.Makespan)
	}
	fmt.Println("schedsmoke: second run reproduced the schedule bit for bit")

	if first.Makespan > bs.Single.Makespan {
		return fmt.Errorf("short-budget portfolio makespan %d exceeds the baseline single-solver %d — the portfolio lost to its warm start",
			first.Makespan, bs.Single.Makespan)
	}
	fmt.Printf("schedsmoke: %d cycles beats the baseline single-solver %d (committed full-budget portfolio: %d, hash %s)\n",
		first.Makespan, bs.Single.Makespan, bs.Portfolio.Makespan, bs.ScheduleHash)
	return nil
}
