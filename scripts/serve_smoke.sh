#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the sharded signing service:
# build fourq-serve and fourq-loadgen, boot a 2-shard server, drive it
# with a steady open-loop run (validated against the committed
# BENCH_serve.json baseline when present) and an overload run (which
# must shed with clean 503s while the engine queues never saturate),
# lint the scraped /metrics exposition, then SIGTERM the server and
# require a clean graceful drain (exit 0).
#
# The loadgen scrapes /metrics itself (-metrics-out), so the script has
# no curl/wget dependency. Environment knobs:
#   GO              go binary (default go)
#   SERVE_ADDR      listen address (default 127.0.0.1:7414)
#   STEADY_RPS      offered rate of the steady run (default 300)
#   OVERLOAD_RPS    offered rate of the overload run (default 2500)
#   SERVE_BASELINE  committed baseline report (default BENCH_serve.json)
#   SERVE_TOLERANCE allowed fractional goodput regression (default 0.50:
#                   service goodput on a shared CI host is far noisier
#                   than the process-local RTL benchmarks, so the gate
#                   is sized to catch collapses — a broken dispatch or
#                   coalescing path loses far more than half — without
#                   flaking on scheduler jitter)
#   SERVE_BENCH_OUT when set, copy the steady-run report here (this is
#                   how `make serve-record` refreshes the baseline)
set -eu

GO="${GO:-go}"
TMP="${TMPDIR:-/tmp}"
ADDR="${SERVE_ADDR:-127.0.0.1:7414}"
STEADY_RPS="${STEADY_RPS:-300}"
OVERLOAD_RPS="${OVERLOAD_RPS:-2500}"
BASELINE="${SERVE_BASELINE:-BENCH_serve.json}"
TOLERANCE="${SERVE_TOLERANCE:-0.50}"
STEADY_JSON="$TMP/serve_steady.json"
OVERLOAD_JSON="$TMP/serve_overload.json"
METRICS="$TMP/serve_smoke_metrics.prom"

echo "serve-smoke: building binaries"
"$GO" build -o "$TMP/fourq-serve" ./cmd/fourq-serve
"$GO" build -o "$TMP/fourq-loadgen" ./cmd/fourq-loadgen

echo "serve-smoke: starting fourq-serve on $ADDR"
"$TMP/fourq-serve" -addr "$ADDR" -shards 2 -workers 2 -queue-depth 32 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

echo "serve-smoke: steady run ($STEADY_RPS rps)"
"$TMP/fourq-loadgen" -target "http://$ADDR" -rps "$STEADY_RPS" -duration 3s \
    -wait-ready 30s -json "$STEADY_JSON"
"$GO" run ./scripts/benchcheck "$STEADY_JSON"
if [ -f "$BASELINE" ]; then
    echo "serve-smoke: gating against $BASELINE (tolerance $TOLERANCE)"
    "$GO" run ./scripts/benchcheck -baseline "$BASELINE" -tolerance "$TOLERANCE" "$STEADY_JSON"
fi
if [ -n "${SERVE_BENCH_OUT:-}" ]; then
    cp "$STEADY_JSON" "$SERVE_BENCH_OUT"
    echo "serve-smoke: recorded baseline to $SERVE_BENCH_OUT"
fi

echo "serve-smoke: overload run ($OVERLOAD_RPS rps)"
"$TMP/fourq-loadgen" -target "http://$ADDR" -rps "$OVERLOAD_RPS" -duration 2s \
    -mix "scalarmult=4,sign=2,verify=3" -json "$OVERLOAD_JSON" -metrics-out "$METRICS"
"$GO" run ./scripts/benchcheck "$OVERLOAD_JSON"
"$GO" run ./scripts/promlint "$METRICS"

# The load-shedding invariant, read off the server's own counters:
# overload must have shed (admission control engaged) and the engine
# queues must never have rejected a submission (shedding happened
# strictly before saturation).
if grep -q '^serve_shed 0$' "$METRICS"; then
    echo "serve-smoke: FAIL — overload run never shed" >&2
    exit 1
fi
if ! grep -q '^serve_engine_rejected 0$' "$METRICS"; then
    echo "serve-smoke: FAIL — engine backpressure reached through the front door" >&2
    exit 1
fi
for s in 0 1; do
    if ! grep -q "^engine_shard${s}_rejected 0$" "$METRICS"; then
        echo "serve-smoke: FAIL — engine shard $s rejected submissions" >&2
        exit 1
    fi
done

echo "serve-smoke: draining (SIGTERM)"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "serve-smoke: ok"
