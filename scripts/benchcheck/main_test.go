package main

import (
	"strings"
	"testing"
)

const goodReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      }
    }
  }
}`

func TestCheckGood(t *testing.T) {
	if err := check([]byte(goodReport)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "{not json", "parse"},
		{"wrong schema", `{"schema":"v0","experiments":{}}`, "schema"},
		{"no experiments", `{"schema":"fourq-bench/v1","experiments":{}}`, "no experiments"},
		{"no rtl stats", `{"schema":"fourq-bench/v1","experiments":{"table1":{"makespan":23}}}`, "rtl_stats"},
		{"zero cycles", strings.Replace(goodReport, `"cycles": 3940`, `"cycles": 0`, 1), "cycles"},
		{"bad mul util", strings.Replace(goodReport, `"mul_utilization": 0.657`, `"mul_utilization": 0`, 1), "mul_utilization"},
		{"bad add util", strings.Replace(goodReport, `"add_utilization": 0.526`, `"add_utilization": 1.5`, 1), "add_utilization"},
		{"missing forwarded", strings.Replace(goodReport, `"forwarded_reads": 3393,`, ``, 1), "forwarded_reads"},
		{"missing elided", strings.Replace(goodReport, `"elided_writes": 0`, `"unrelated": 0`, 1), "elided_writes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
