package main

import (
	"strings"
	"testing"
)

const goodReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      }
    }
  }
}`

func TestCheckGood(t *testing.T) {
	if err := check([]byte(goodReport)); err != nil {
		t.Fatal(err)
	}
}

const goodThroughput = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "throughput": {
      "num_cpu": 4,
      "sms_per_point": 24,
      "points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ],
      "verified_all": true
    }
  }
}`

func TestCheckThroughputGood(t *testing.T) {
	if err := check([]byte(goodThroughput)); err != nil {
		t.Fatal(err)
	}
}

const goodFaults = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "faults": {
      "campaign": {"seed": 999447, "trials": 8, "sites": ["regfile", "rom"], "validation": "oncurve"},
      "detected": 3,
      "silent": 1,
      "masked": 4,
      "detection_coverage": 0.75,
      "by_site": {
        "regfile": {"trials": 5, "detected": 2, "silent": 1, "masked": 2},
        "rom": {"trials": 3, "detected": 1, "silent": 0, "masked": 2}
      },
      "trial_log": []
    }
  }
}`

func TestCheckFaultsGood(t *testing.T) {
	if err := check([]byte(goodFaults)); err != nil {
		t.Fatal(err)
	}
}

// baselineReport carries both comparable SM/s metrics: the throughput
// peak (433.8, at 4 workers) and the latency single-thread compiled
// rate (2200).
const baselineReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      },
      "single_thread": {
        "compiled_sm_per_sec": 2200,
        "interpreted_sm_per_sec": 400,
        "speedup": 5.5
      }
    },
    "throughput": {
      "num_cpu": 4,
      "sms_per_point": 24,
      "points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ],
      "verified_all": true
    }
  }
}`

func TestCompare(t *testing.T) {
	base := []byte(baselineReport)
	cases := []struct {
		name    string
		cur     string
		tol     float64
		wantErr string // empty = must pass
	}{
		{"identical", baselineReport, 0.10, ""},
		{"small dip within tolerance", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 2050`, 1), 0.10, ""},
		{"single-thread regression", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 1500`, 1), 0.10, "single-thread"},
		{"throughput regression", strings.Replace(strings.Replace(baselineReport,
			`"sm_per_sec": 433.8`, `"sm_per_sec": 310`, 1),
			`"sm_per_sec": 410.2`, `"sm_per_sec": 300`, 1), 0.10, "throughput"},
		{"tight tolerance trips", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 2100`, 1), 0.01, "regression"},
		{"no shared metric", goodFaults, 0.10, "no SM/s metric"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := compare(base, []byte(c.cur), c.tol)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("compare failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("compare accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestCompareLegacyBaseline: a baseline written before the single_thread
// block existed still gates on the metrics it does carry.
func TestCompareLegacyBaseline(t *testing.T) {
	if err := compare([]byte(goodThroughput), []byte(baselineReport), 0.10); err != nil {
		t.Fatalf("legacy baseline with only throughput should compare cleanly: %v", err)
	}
	slow := strings.Replace(strings.Replace(baselineReport,
		`"sm_per_sec": 433.8`, `"sm_per_sec": 110`, 1),
		`"sm_per_sec": 410.2`, `"sm_per_sec": 100`, 1)
	if err := compare([]byte(goodThroughput), []byte(slow), 0.10); err == nil {
		t.Fatal("throughput regression vs legacy baseline not caught")
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "{not json", "parse"},
		// Regression for the exit-code satellite: a report carrying an
		// errors map is a partial run and must fail validation even when
		// the successful experiments look healthy.
		{"failed experiments", strings.Replace(goodReport, `"experiments"`,
			`"errors": {"throughput": "synthetic failure"}, "experiments"`, 1), "failed experiments"},
		{"throughput no points", strings.Replace(goodThroughput,
			`"points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ]`, `"points": []`, 1), "no points"},
		{"throughput zero rate", strings.Replace(goodThroughput, `"sm_per_sec": 433.8`, `"sm_per_sec": 0`, 1), "sm_per_sec"},
		{"throughput bad workers", strings.Replace(goodThroughput, `"workers": 4`, `"workers": 0`, 1), "workers"},
		{"throughput sms mismatch", strings.Replace(goodThroughput, `"workers": 4, "sms": 24`, `"workers": 4, "sms": 12`, 1), "sms"},
		{"throughput oracle fail", strings.Replace(goodThroughput, `"speedup": 1.06, "oracle_ok": true`, `"speedup": 1.06, "oracle_ok": false`, 1), "oracle_ok"},
		{"throughput unverified", strings.Replace(goodThroughput, `"verified_all": true`, `"verified_all": false`, 1), "verified_all"},
		{"wrong schema", `{"schema":"v0","experiments":{}}`, "schema"},
		{"no experiments", `{"schema":"fourq-bench/v1","experiments":{}}`, "no experiments"},
		{"no rtl stats", `{"schema":"fourq-bench/v1","experiments":{"table1":{"makespan":23}}}`, "rtl_stats"},
		{"zero cycles", strings.Replace(goodReport, `"cycles": 3940`, `"cycles": 0`, 1), "cycles"},
		{"bad mul util", strings.Replace(goodReport, `"mul_utilization": 0.657`, `"mul_utilization": 0`, 1), "mul_utilization"},
		{"bad add util", strings.Replace(goodReport, `"add_utilization": 0.526`, `"add_utilization": 1.5`, 1), "add_utilization"},
		{"missing forwarded", strings.Replace(goodReport, `"forwarded_reads": 3393,`, ``, 1), "forwarded_reads"},
		{"missing elided", strings.Replace(goodReport, `"elided_writes": 0`, `"unrelated": 0`, 1), "elided_writes"},
		// The faults campaign: a silent-corruption rate without the full
		// replay recipe is unreproducible and must be rejected.
		{"faults no campaign", strings.Replace(goodFaults,
			`"campaign": {"seed": 999447, "trials": 8, "sites": ["regfile", "rom"], "validation": "oncurve"},`,
			``, 1), "campaign metadata"},
		{"faults no seed", strings.Replace(goodFaults, `"seed": 999447, `, ``, 1), "seed"},
		{"faults zero trials", strings.Replace(goodFaults, `"trials": 8,`, `"trials": 0,`, 1), "trials"},
		{"faults no sites", strings.Replace(goodFaults, `"sites": ["regfile", "rom"]`, `"sites": []`, 1), "sites"},
		{"faults no validation", strings.Replace(goodFaults, `"validation": "oncurve"`, `"validation": ""`, 1), "validation"},
		{"faults tally mismatch", strings.Replace(goodFaults, `"masked": 4,`, `"masked": 5,`, 1), "detected+silent+masked"},
		{"faults coverage range", strings.Replace(goodFaults, `"detection_coverage": 0.75,`, `"detection_coverage": 1.75,`, 1), "detection_coverage"},
		{"faults coverage missing", strings.Replace(goodFaults, `"detection_coverage": 0.75,`, ``, 1), "detection_coverage"},
		{"faults site mismatch", strings.Replace(goodFaults,
			`"rom": {"trials": 3, "detected": 1, "silent": 0, "masked": 2}`,
			`"rom": {"trials": 3, "detected": 0, "silent": 1, "masked": 2}`, 1), "by_site"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
