package main

import (
	"strings"
	"testing"
)

const goodReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      }
    }
  }
}`

func TestCheckGood(t *testing.T) {
	if err := check([]byte(goodReport)); err != nil {
		t.Fatal(err)
	}
}

const goodThroughput = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "throughput": {
      "num_cpu": 4,
      "sms_per_point": 24,
      "points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ],
      "verified_all": true,
      "schedule_cycles": 3756,
      "solver": "portfolio"
    }
  }
}`

func TestCheckThroughputGood(t *testing.T) {
	if err := check([]byte(goodThroughput)); err != nil {
		t.Fatal(err)
	}
}

const goodBatch = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "batch": {
      "num_cpu": 4,
      "lane_widths": [
        {"width": 1, "sm_per_sec": 2900.0, "speedup": 1, "oracle_ok": true},
        {"width": 2, "sm_per_sec": 4800.0, "speedup": 1.66, "oracle_ok": true},
        {"width": 4, "sm_per_sec": 7000.0, "speedup": 2.41, "oracle_ok": true}
      ],
      "peak_lane_sm_per_sec": 7000.0,
      "engine": {"lane_width": 4, "workers": 1, "sms": 32, "sm_per_sec": 3800.0, "lane_runs": 8, "lane_lanes": 32, "oracle_ok": true},
      "verified_all": true
    }
  }
}`

func TestCheckBatchGood(t *testing.T) {
	if err := check([]byte(goodBatch)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckBatchNonMonotoneNote: a sweep that dips at a wider width is
// rejected bare but accepted once the report explains the dip.
func TestCheckBatchNonMonotoneNote(t *testing.T) {
	dip := strings.Replace(strings.Replace(goodBatch,
		`"sm_per_sec": 7000.0, "speedup": 2.41`, `"sm_per_sec": 4500.0, "speedup": 1.55`, 1),
		`"peak_lane_sm_per_sec": 7000.0`, `"peak_lane_sm_per_sec": 4800.0`, 1)
	if err := check([]byte(dip)); err == nil {
		t.Fatal("non-monotone sweep without a note accepted")
	} else if !strings.Contains(err.Error(), "no note") {
		t.Fatalf("error %q does not mention the missing note", err)
	}
	noted := strings.Replace(dip, `"verified_all": true`,
		`"note": "host scheduling noise at width 4", "verified_all": true`, 1)
	if err := check([]byte(noted)); err != nil {
		t.Fatalf("noted non-monotone sweep rejected: %v", err)
	}
}

const goodFaults = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "faults": {
      "campaign": {"seed": 999447, "trials": 8, "sites": ["regfile", "rom"], "validation": "oncurve"},
      "detected": 3,
      "silent": 1,
      "masked": 4,
      "detection_coverage": 0.75,
      "by_site": {
        "regfile": {"trials": 5, "detected": 2, "silent": 1, "masked": 2},
        "rom": {"trials": 3, "detected": 1, "silent": 0, "masked": 2}
      },
      "trial_log": []
    }
  }
}`

func TestCheckFaultsGood(t *testing.T) {
	if err := check([]byte(goodFaults)); err != nil {
		t.Fatal(err)
	}
}

const goodServe = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "serve": {
      "target": "http://127.0.0.1:7414",
      "offered_rps": 300,
      "duration_seconds": 5,
      "mix": "scalarmult=4,sign=2,verify=3,batch=1",
      "batch_size": 4,
      "requests": {"total": 1500, "ok": 1350, "shed": 140, "rate_limited": 10, "failed": 0},
      "shed_rate": 0.0933,
      "latency_ms": {"p50": 2.6, "p95": 6.2, "p99": 8.8},
      "goodput_rps": 270.0,
      "goodput_sm_per_sec": 560.5
    }
  }
}`

func TestCheckServeGood(t *testing.T) {
	if err := check([]byte(goodServe)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckServeRejects: the serve experiment's non-negotiables — a
// report without the latency percentiles or the shed-rate metadata
// (or with tallies that do not reconcile) must fail validation.
func TestCheckServeRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing percentile", strings.Replace(goodServe,
			`"p95": 6.2, `, ``, 1), "latency_ms.p95"},
		{"missing latency block", strings.Replace(goodServe,
			`"latency_ms": {"p50": 2.6, "p95": 6.2, "p99": 8.8},`, ``, 1), "latency_ms.p50"},
		{"missing shed rate", strings.Replace(goodServe,
			`"shed_rate": 0.0933,`, ``, 1), "shed_rate"},
		{"shed rate out of range", strings.Replace(goodServe,
			`"shed_rate": 0.0933`, `"shed_rate": 1.5`, 1), "shed_rate"},
		{"unordered percentiles", strings.Replace(goodServe,
			`"p99": 8.8`, `"p99": 1.0`, 1), "below a lower percentile"},
		{"tallies do not reconcile", strings.Replace(goodServe,
			`"shed": 140`, `"shed": 100`, 1), "tallies"},
		{"nothing succeeded", strings.Replace(strings.Replace(goodServe,
			`"ok": 1350`, `"ok": 0`, 1),
			`"shed": 140`, `"shed": 1490`, 1), "no successful request"},
		{"zero goodput", strings.Replace(goodServe,
			`"goodput_sm_per_sec": 560.5`, `"goodput_sm_per_sec": 0`, 1), "goodput_sm_per_sec"},
		{"zero offered", strings.Replace(goodServe,
			`"offered_rps": 300`, `"offered_rps": 0`, 1), "offered_rps"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestCompareServeMetric: service goodput participates in compare mode.
func TestCompareServeMetric(t *testing.T) {
	if err := compare([]byte(goodServe), []byte(goodServe), 0.10); err != nil {
		t.Fatalf("identical serve reports must compare cleanly: %v", err)
	}
	slow := strings.Replace(goodServe,
		`"goodput_sm_per_sec": 560.5`, `"goodput_sm_per_sec": 400`, 1)
	err := compare([]byte(goodServe), []byte(slow), 0.10)
	if err == nil {
		t.Fatal("28% serve goodput regression passed the gate")
	}
	if !strings.Contains(err.Error(), "serve goodput") {
		t.Fatalf("error %q does not name the serve metric", err)
	}
}

// baselineReport carries both comparable SM/s metrics: the throughput
// peak (433.8, at 4 workers) and the latency single-thread compiled
// rate (2200).
const baselineReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      },
      "single_thread": {
        "compiled_sm_per_sec": 2200,
        "interpreted_sm_per_sec": 400,
        "speedup": 5.5
      }
    },
    "throughput": {
      "num_cpu": 4,
      "sms_per_point": 24,
      "points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ],
      "verified_all": true,
      "schedule_cycles": 3940,
      "solver": "list"
    }
  }
}`

func TestCompare(t *testing.T) {
	base := []byte(baselineReport)
	cases := []struct {
		name    string
		cur     string
		tol     float64
		wantErr string // empty = must pass
	}{
		{"identical", baselineReport, 0.10, ""},
		{"small dip within tolerance", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 2050`, 1), 0.10, ""},
		{"single-thread regression", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 1500`, 1), 0.10, "single-thread"},
		{"throughput regression", strings.Replace(strings.Replace(baselineReport,
			`"sm_per_sec": 433.8`, `"sm_per_sec": 310`, 1),
			`"sm_per_sec": 410.2`, `"sm_per_sec": 300`, 1), 0.10, "throughput"},
		{"tight tolerance trips", strings.Replace(baselineReport,
			`"compiled_sm_per_sec": 2200`, `"compiled_sm_per_sec": 2100`, 1), 0.01, "regression"},
		{"no shared metric", goodFaults, 0.10, "no SM/s metric"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := compare(base, []byte(c.cur), c.tol)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("compare failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("compare accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestCompareBatchMetric: the lockstep peak lane rate participates in
// compare mode — a regression beyond tolerance fails the gate, and a
// baseline predating the batch experiment simply does not contribute
// the metric.
func TestCompareBatchMetric(t *testing.T) {
	if err := compare([]byte(goodBatch), []byte(goodBatch), 0.10); err != nil {
		t.Fatalf("identical batch reports must compare cleanly: %v", err)
	}
	slow := strings.Replace(strings.Replace(goodBatch,
		`"sm_per_sec": 7000.0, "speedup": 2.41`, `"sm_per_sec": 4500.0, "speedup": 1.55`, 1),
		`"peak_lane_sm_per_sec": 7000.0`, `"peak_lane_sm_per_sec": 4800.0`, 1)
	slow = strings.Replace(slow, `"verified_all": true`,
		`"note": "synthetic regression", "verified_all": true`, 1)
	err := compare([]byte(goodBatch), []byte(slow), 0.10)
	if err == nil {
		t.Fatal("31% lane-rate regression passed the gate")
	}
	if !strings.Contains(err.Error(), "batch peak lane") {
		t.Fatalf("error %q does not name the lane metric", err)
	}
}

// TestCompareLegacyBaseline: a baseline written before the single_thread
// block existed still gates on the metrics it does carry.
func TestCompareLegacyBaseline(t *testing.T) {
	if err := compare([]byte(goodThroughput), []byte(baselineReport), 0.10); err != nil {
		t.Fatalf("legacy baseline with only throughput should compare cleanly: %v", err)
	}
	slow := strings.Replace(strings.Replace(baselineReport,
		`"sm_per_sec": 433.8`, `"sm_per_sec": 110`, 1),
		`"sm_per_sec": 410.2`, `"sm_per_sec": 100`, 1)
	if err := compare([]byte(goodThroughput), []byte(slow), 0.10); err == nil {
		t.Fatal("throughput regression vs legacy baseline not caught")
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "{not json", "parse"},
		// Regression for the exit-code satellite: a report carrying an
		// errors map is a partial run and must fail validation even when
		// the successful experiments look healthy.
		{"failed experiments", strings.Replace(goodReport, `"experiments"`,
			`"errors": {"throughput": "synthetic failure"}, "experiments"`, 1), "failed experiments"},
		{"throughput no points", strings.Replace(goodThroughput,
			`"points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ]`, `"points": []`, 1), "no points"},
		{"throughput zero rate", strings.Replace(goodThroughput, `"sm_per_sec": 433.8`, `"sm_per_sec": 0`, 1), "sm_per_sec"},
		{"throughput bad workers", strings.Replace(goodThroughput, `"workers": 4`, `"workers": 0`, 1), "workers"},
		{"throughput sms mismatch", strings.Replace(goodThroughput, `"workers": 4, "sms": 24`, `"workers": 4, "sms": 12`, 1), "sms"},
		{"throughput oracle fail", strings.Replace(goodThroughput, `"speedup": 1.06, "oracle_ok": true`, `"speedup": 1.06, "oracle_ok": false`, 1), "oracle_ok"},
		{"throughput unverified", strings.Replace(goodThroughput, `"verified_all": true`, `"verified_all": false`, 1), "verified_all"},
		{"throughput no schedule cycles", strings.Replace(goodThroughput,
			`"schedule_cycles": 3756,`, `"schedule_cycles": 0,`, 1), "schedule_cycles"},
		{"throughput no solver", strings.Replace(goodThroughput,
			`"solver": "portfolio"`, `"solver": ""`, 1), "solver"},
		{"wrong schema", `{"schema":"v0","experiments":{}}`, "schema"},
		{"no experiments", `{"schema":"fourq-bench/v1","experiments":{}}`, "no experiments"},
		{"no rtl stats", `{"schema":"fourq-bench/v1","experiments":{"table1":{"makespan":23}}}`, "rtl_stats"},
		{"zero cycles", strings.Replace(goodReport, `"cycles": 3940`, `"cycles": 0`, 1), "cycles"},
		{"bad mul util", strings.Replace(goodReport, `"mul_utilization": 0.657`, `"mul_utilization": 0`, 1), "mul_utilization"},
		{"bad add util", strings.Replace(goodReport, `"add_utilization": 0.526`, `"add_utilization": 1.5`, 1), "add_utilization"},
		{"missing forwarded", strings.Replace(goodReport, `"forwarded_reads": 3393,`, ``, 1), "forwarded_reads"},
		{"missing elided", strings.Replace(goodReport, `"elided_writes": 0`, `"unrelated": 0`, 1), "elided_writes"},
		// The faults campaign: a silent-corruption rate without the full
		// replay recipe is unreproducible and must be rejected.
		{"faults no campaign", strings.Replace(goodFaults,
			`"campaign": {"seed": 999447, "trials": 8, "sites": ["regfile", "rom"], "validation": "oncurve"},`,
			``, 1), "campaign metadata"},
		{"faults no seed", strings.Replace(goodFaults, `"seed": 999447, `, ``, 1), "seed"},
		{"faults zero trials", strings.Replace(goodFaults, `"trials": 8,`, `"trials": 0,`, 1), "trials"},
		{"faults no sites", strings.Replace(goodFaults, `"sites": ["regfile", "rom"]`, `"sites": []`, 1), "sites"},
		{"faults no validation", strings.Replace(goodFaults, `"validation": "oncurve"`, `"validation": ""`, 1), "validation"},
		{"faults tally mismatch", strings.Replace(goodFaults, `"masked": 4,`, `"masked": 5,`, 1), "detected+silent+masked"},
		{"faults coverage range", strings.Replace(goodFaults, `"detection_coverage": 0.75,`, `"detection_coverage": 1.75,`, 1), "detection_coverage"},
		{"faults coverage missing", strings.Replace(goodFaults, `"detection_coverage": 0.75,`, ``, 1), "detection_coverage"},
		{"faults site mismatch", strings.Replace(goodFaults,
			`"rom": {"trials": 3, "detected": 1, "silent": 0, "masked": 2}`,
			`"rom": {"trials": 3, "detected": 0, "silent": 1, "masked": 2}`, 1), "by_site"},
		// The batch lane sweep: a block without the sweep carries no
		// evidence the lockstep path was measured at all.
		{"batch no lane widths", strings.Replace(goodBatch, `"lane_widths": [
        {"width": 1, "sm_per_sec": 2900.0, "speedup": 1, "oracle_ok": true},
        {"width": 2, "sm_per_sec": 4800.0, "speedup": 1.66, "oracle_ok": true},
        {"width": 4, "sm_per_sec": 7000.0, "speedup": 2.41, "oracle_ok": true}
      ]`, `"lane_widths": []`, 1), "no lane_widths"},
		{"batch zero rate", strings.Replace(goodBatch, `"sm_per_sec": 2900.0`, `"sm_per_sec": 0`, 1), "sm_per_sec"},
		{"batch oracle fail", strings.Replace(goodBatch, `"speedup": 2.41, "oracle_ok": true`, `"speedup": 2.41, "oracle_ok": false`, 1), "oracle_ok"},
		{"batch unverified", strings.Replace(goodBatch, `"verified_all": true`, `"verified_all": false`, 1), "verified_all"},
		{"batch widths not ascending", strings.Replace(goodBatch, `{"width": 2, `, `{"width": 1, `, 1), "ascending"},
		{"batch wrong peak", strings.Replace(goodBatch, `"peak_lane_sm_per_sec": 7000.0`, `"peak_lane_sm_per_sec": 9000.0`, 1), "peak_lane_sm_per_sec"},
		{"batch engine lanes unused", strings.Replace(goodBatch, `"lane_runs": 8, "lane_lanes": 32`, `"lane_runs": 0, "lane_lanes": 0`, 1), "lockstep path unused"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// goodSched mirrors a real -exp sched run: the list scheduler's 3940
// cycles against the portfolio's 3756, both RTL-proven, with the
// determinism cross-check recorded.
const goodSched = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "sched": {
      "trace_ops": 4663,
      "lower_bound": 3010,
      "single": {"solver": "list", "makespan": 3940, "mul_utilization": 0.657, "add_utilization": 0.526, "stall_cycles": 291, "solve_seconds": 0.01},
      "portfolio": {"solver": "portfolio", "makespan": 3756, "mul_utilization": 0.689, "add_utilization": 0.552, "stall_cycles": 351, "solve_seconds": 15.0},
      "improvement_pct": 4.67,
      "improvements": 6,
      "rounds": 6,
      "seed": 1,
      "schedule_hash": "039059a484ff3833",
      "deterministic": true
    }
  }
}`

func TestCheckSchedGood(t *testing.T) {
	if err := check([]byte(goodSched)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckSchedRejects: the sched experiment's non-negotiables — a
// portfolio that loses to its own warm start, a makespan below the
// machine-load lower bound, missing utilization evidence, or a failed
// determinism cross-check must all fail validation.
func TestCheckSchedRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"portfolio worse than single", strings.Replace(goodSched,
			`"makespan": 3756`, `"makespan": 4100`, 1), "warm start"},
		{"missing single row", strings.Replace(goodSched,
			`"single": {"solver": "list", "makespan": 3940, "mul_utilization": 0.657, "add_utilization": 0.526, "stall_cycles": 291, "solve_seconds": 0.01},`,
			``, 1), "both single and portfolio"},
		{"zero makespan", strings.Replace(goodSched,
			`"makespan": 3756`, `"makespan": 0`, 1), "makespan"},
		{"missing mul utilization", strings.Replace(goodSched,
			`"mul_utilization": 0.689, `, ``, 1), "mul_utilization"},
		{"mul utilization out of range", strings.Replace(goodSched,
			`"mul_utilization": 0.689`, `"mul_utilization": 1.4`, 1), "mul_utilization"},
		{"missing add utilization", strings.Replace(goodSched,
			`"add_utilization": 0.552, `, ``, 1), "add_utilization"},
		{"missing stall cycles", strings.Replace(goodSched,
			`"stall_cycles": 351, `, ``, 1), "stall_cycles"},
		{"lower bound missing", strings.Replace(goodSched,
			`"lower_bound": 3010,`, `"lower_bound": 0,`, 1), "lower_bound"},
		{"lower bound above makespan", strings.Replace(goodSched,
			`"lower_bound": 3010,`, `"lower_bound": 3800,`, 1), "lower_bound"},
		{"missing hash", strings.Replace(goodSched,
			`"schedule_hash": "039059a484ff3833",`, ``, 1), "schedule_hash"},
		{"not deterministic", strings.Replace(goodSched,
			`"deterministic": true`, `"deterministic": false`, 1), "deterministic"},
		{"no trace ops", strings.Replace(goodSched,
			`"trace_ops": 4663,`, `"trace_ops": 0,`, 1), "trace_ops"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestCompareSchedMetric: the portfolio makespan participates in compare
// mode with the opposite sign to the SM/s rates — cycles going UP beyond
// tolerance is the regression, and a shorter schedule always passes.
func TestCompareSchedMetric(t *testing.T) {
	if err := compare([]byte(goodSched), []byte(goodSched), 0.10); err != nil {
		t.Fatalf("identical sched reports must compare cleanly: %v", err)
	}
	shorter := strings.Replace(goodSched, `"makespan": 3756`, `"makespan": 3700`, 1)
	if err := compare([]byte(goodSched), []byte(shorter), 0.10); err != nil {
		t.Fatalf("a shorter schedule must pass the gate: %v", err)
	}
	longer := strings.Replace(goodSched, `"makespan": 3756`, `"makespan": 4300`, 1)
	longer = strings.Replace(longer, `"makespan": 3940`, `"makespan": 4400`, 1)
	err := compare([]byte(goodSched), []byte(longer), 0.10)
	if err == nil {
		t.Fatal("14% makespan regression passed the gate")
	}
	if !strings.Contains(err.Error(), "portfolio makespan") {
		t.Fatalf("error %q does not name the makespan metric", err)
	}
}

const goodChaos = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "chaos": {
      "seed": 1,
      "requests_per_phase": 60,
      "scenarios": [
        {
          "name": "faulty-shard",
          "seed": -5569162553654349038,
          "faults_injected": 3906,
          "phases": {},
          "requests": {"total": 546, "ok": 546, "shed": 0, "rate_limited": 0, "canceled": 0, "drained": 0, "failed": 0},
          "mis_answered": 0,
          "lost": 0,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 1,
          "shards_rebuilt": 1,
          "hedge_wins": 0,
          "recovery_ms": 12.5,
          "recovery_ratio": 1.06,
          "violations": []
        },
        {
          "name": "saturation",
          "seed": 77,
          "faults_injected": 1,
          "phases": {},
          "requests": {"total": 540, "ok": 363, "shed": 177, "rate_limited": 0, "canceled": 0, "drained": 0, "failed": 0},
          "mis_answered": 0,
          "lost": 0,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 0,
          "shards_rebuilt": 0,
          "hedge_wins": 0,
          "recovery_ratio": 1.11,
          "violations": []
        }
      ],
      "faults_injected": 3907,
      "mis_answered": 0,
      "lost": 0,
      "duplicates": 0,
      "engine_rejected": 0,
      "min_recovery_ratio": 1.06,
      "violations": []
    }
  }
}`

func TestCheckChaosGood(t *testing.T) {
	if err := check([]byte(goodChaos)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckChaosRejects: the chaos campaign's non-negotiables — a
// campaign that injected nothing, tallies that do not reconcile with
// the per-scenario totals, any breach of the exactly-once or
// shed-before-backpressure invariants, or a recovery ratio under the
// floor must all fail validation.
func TestCheckChaosRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"zero faults campaign", strings.Replace(strings.Replace(strings.Replace(goodChaos,
			`"faults_injected": 3907`, `"faults_injected": 0`, 1),
			`"faults_injected": 3906`, `"faults_injected": 0`, 1),
			`"faults_injected": 1`, `"faults_injected": 0`, 1), "zero faults"},
		{"zero faults scenario", strings.Replace(goodChaos,
			`"faults_injected": 1`, `"faults_injected": 0`, 1), "injected zero faults"},
		{"missing campaign seed", strings.Replace(goodChaos,
			`"seed": 1,`, ``, 1), "seed missing"},
		{"missing scenario seed", strings.Replace(goodChaos,
			`"seed": 77,`, ``, 1), "replay seed"},
		{"unreconciled tallies", strings.Replace(goodChaos,
			`"shed": 177`, `"shed": 100`, 1), "tallies"},
		{"lost requests", strings.Replace(goodChaos,
			`"lost": 0,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 1`,
			`"lost": 3,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 1`, 1), "exactly-once"},
		{"duplicated answers", strings.Replace(goodChaos,
			`"duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 0`,
			`"duplicates": 2,
          "engine_rejected": 0,
          "shards_ejected": 0`, 1), "exactly-once"},
		{"mis-answered", strings.Replace(goodChaos,
			`"mis_answered": 0,
          "lost": 0,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 1`,
			`"mis_answered": 1,
          "lost": 0,
          "duplicates": 0,
          "engine_rejected": 0,
          "shards_ejected": 1`, 1), "mis_answered"},
		{"engine rejected", strings.Replace(goodChaos,
			`"engine_rejected": 0,
          "shards_ejected": 0`,
			`"engine_rejected": 4,
          "shards_ejected": 0`, 1), "shed must precede backpressure"},
		{"recovery under floor", strings.Replace(goodChaos,
			`"recovery_ratio": 1.11`, `"recovery_ratio": 0.62`, 1), "below the 0.90 floor"},
		{"violations recorded", strings.Replace(goodChaos,
			`"min_recovery_ratio": 1.06,
      "violations": []`,
			`"min_recovery_ratio": 1.06,
      "violations": ["saturation: burst was never shed"]`, 1), "violation"},
		{"fault sum mismatch", strings.Replace(goodChaos,
			`"faults_injected": 3907`, `"faults_injected": 9999`, 1), "campaign total"},
		{"no scenarios", strings.Replace(goodChaos,
			`"scenarios": [`, `"scenarios_off": [`, 1), "no scenarios"},
		{"no recovery ratio anywhere", strings.Replace(strings.Replace(goodChaos,
			`"recovery_ratio": 1.06,`, ``, 1),
			`"recovery_ratio": 1.11,`, ``, 1), "recovery ratio"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
