package main

import (
	"strings"
	"testing"
)

const goodReport = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "latency": {
      "cycles_functional": 3940,
      "rtl_stats": {
        "cycles": 3940,
        "mul_utilization": 0.657,
        "add_utilization": 0.526,
        "forwarded_reads": 3393,
        "elided_writes": 0
      }
    }
  }
}`

func TestCheckGood(t *testing.T) {
	if err := check([]byte(goodReport)); err != nil {
		t.Fatal(err)
	}
}

const goodThroughput = `{
  "schema": "fourq-bench/v1",
  "experiments": {
    "throughput": {
      "num_cpu": 4,
      "sms_per_point": 24,
      "points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ],
      "verified_all": true
    }
  }
}`

func TestCheckThroughputGood(t *testing.T) {
	if err := check([]byte(goodThroughput)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "{not json", "parse"},
		// Regression for the exit-code satellite: a report carrying an
		// errors map is a partial run and must fail validation even when
		// the successful experiments look healthy.
		{"failed experiments", strings.Replace(goodReport, `"experiments"`,
			`"errors": {"throughput": "synthetic failure"}, "experiments"`, 1), "failed experiments"},
		{"throughput no points", strings.Replace(goodThroughput,
			`"points": [
        {"workers": 1, "sms": 24, "sm_per_sec": 410.2, "speedup": 1, "oracle_ok": true},
        {"workers": 4, "sms": 24, "sm_per_sec": 433.8, "speedup": 1.06, "oracle_ok": true}
      ]`, `"points": []`, 1), "no points"},
		{"throughput zero rate", strings.Replace(goodThroughput, `"sm_per_sec": 433.8`, `"sm_per_sec": 0`, 1), "sm_per_sec"},
		{"throughput bad workers", strings.Replace(goodThroughput, `"workers": 4`, `"workers": 0`, 1), "workers"},
		{"throughput sms mismatch", strings.Replace(goodThroughput, `"workers": 4, "sms": 24`, `"workers": 4, "sms": 12`, 1), "sms"},
		{"throughput oracle fail", strings.Replace(goodThroughput, `"speedup": 1.06, "oracle_ok": true`, `"speedup": 1.06, "oracle_ok": false`, 1), "oracle_ok"},
		{"throughput unverified", strings.Replace(goodThroughput, `"verified_all": true`, `"verified_all": false`, 1), "verified_all"},
		{"wrong schema", `{"schema":"v0","experiments":{}}`, "schema"},
		{"no experiments", `{"schema":"fourq-bench/v1","experiments":{}}`, "no experiments"},
		{"no rtl stats", `{"schema":"fourq-bench/v1","experiments":{"table1":{"makespan":23}}}`, "rtl_stats"},
		{"zero cycles", strings.Replace(goodReport, `"cycles": 3940`, `"cycles": 0`, 1), "cycles"},
		{"bad mul util", strings.Replace(goodReport, `"mul_utilization": 0.657`, `"mul_utilization": 0`, 1), "mul_utilization"},
		{"bad add util", strings.Replace(goodReport, `"add_utilization": 0.526`, `"add_utilization": 1.5`, 1), "add_utilization"},
		{"missing forwarded", strings.Replace(goodReport, `"forwarded_reads": 3393,`, ``, 1), "forwarded_reads"},
		{"missing elided", strings.Replace(goodReport, `"elided_writes": 0`, `"unrelated": 0`, 1), "elided_writes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := check([]byte(c.doc))
			if err == nil {
				t.Fatalf("check accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
