// Command benchcheck validates a fourq-bench -json report. It is the CI
// smoke test for the machine-readable benchmark output: it asserts the
// document parses, carries the expected schema, records no failed
// experiments, and that the latency experiment recorded a real RTL run
// (positive cycle count, per-unit utilization, and forwarding/elision
// counters). When the throughput experiment is present its points must
// be internally consistent (positive rates, oracle-verified results).
// When the batch experiment is present its lockstep lane-width sweep
// must exist, be oracle-verified, and be monotone in SM/s — a wider
// batch measuring slower is only accepted when the report carries a
// note saying why.
// When the faults experiment is present its outcome tallies must
// reconcile with the trial count, and a report quoting a silent-
// corruption rate without the campaign metadata (seed, trials, sites,
// validation level) is rejected outright: an unreproducible fault rate
// is not evidence.
// When the serve experiment is present (fourq-loadgen -json) it must
// carry the latency percentiles (p50/p95/p99, ordered) and the
// shed-rate metadata, its request tallies must reconcile with the
// offered total, and a run where nothing succeeded is rejected — a
// goodput figure with no successful requests behind it is not a
// measurement.
// When the chaos experiment is present (fourq-chaos -json) the
// campaign must have injected faults, every scenario must carry its
// replay seed with reconciled tallies, and the recorded invariants
// (exactly-once, zero mis-answers, shed-before-backpressure, recovery
// at or above the 90% floor) must hold with an empty violation list.
//
// With -baseline it additionally runs in compare mode: the SM/s metrics
// shared by the report and the baseline (the throughput experiment's
// peak rate, the latency experiment's single-thread compiled rate, the
// batch experiment's peak lockstep lane rate) must
// not have regressed by more than -tolerance (default 10%). This is the
// perf-regression gate `make bench-compare` runs against the committed
// BENCH_rtl.json.
//
//	go run ./cmd/fourq-bench -exp latency -json /tmp/bench.json
//	go run ./scripts/benchcheck /tmp/bench.json
//	go run ./scripts/benchcheck -baseline BENCH_rtl.json /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report to compare SM/s metrics against (fails on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional SM/s regression vs the baseline")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline base.json] [-tolerance 0.10] <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if err := check(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		base, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if err := compare(base, data, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	}
	fmt.Println("benchcheck: ok")
}

// report mirrors the subset of the fourq-bench/v1 schema the check
// inspects. Experiments stay raw so each known experiment can be decoded
// into its own shape.
type report struct {
	Schema      string                     `json:"schema"`
	Experiments map[string]json.RawMessage `json:"experiments"`
	Errors      map[string]string          `json:"errors"`
}

type rtlStats struct {
	Cycles         int     `json:"cycles"`
	MulUtilization float64 `json:"mul_utilization"`
	AddUtilization float64 `json:"add_utilization"`
	ForwardedReads *int    `json:"forwarded_reads"`
	ElidedWrites   *int    `json:"elided_writes"`
}

type batchExp struct {
	LaneWidths []struct {
		Width    int     `json:"width"`
		SMPerSec float64 `json:"sm_per_sec"`
		Speedup  float64 `json:"speedup"`
		OracleOK bool    `json:"oracle_ok"`
	} `json:"lane_widths"`
	PeakLaneSMPerSec float64 `json:"peak_lane_sm_per_sec"`
	Engine           *struct {
		LaneWidth int     `json:"lane_width"`
		SMPerSec  float64 `json:"sm_per_sec"`
		LaneRuns  int64   `json:"lane_runs"`
		LaneLanes int64   `json:"lane_lanes"`
		OracleOK  bool    `json:"oracle_ok"`
	} `json:"engine"`
	Note        string `json:"note"`
	VerifiedAll bool   `json:"verified_all"`
}

type throughputExp struct {
	NumCPU      int `json:"num_cpu"`
	SMsPerPoint int `json:"sms_per_point"`
	Points      []struct {
		Workers  int     `json:"workers"`
		SMs      int     `json:"sms"`
		SMPerSec float64 `json:"sm_per_sec"`
		Speedup  float64 `json:"speedup"`
		OracleOK bool    `json:"oracle_ok"`
	} `json:"points"`
	VerifiedAll    bool   `json:"verified_all"`
	ScheduleCycles int    `json:"schedule_cycles"`
	Solver         string `json:"solver"`
}

// schedExp mirrors the -exp sched report entry (scheduler head-to-head).
type schedExp struct {
	TraceOps      int             `json:"trace_ops"`
	LowerBound    int             `json:"lower_bound"`
	Single        *schedSolverRow `json:"single"`
	Portfolio     *schedSolverRow `json:"portfolio"`
	ScheduleHash  string          `json:"schedule_hash"`
	Deterministic bool            `json:"deterministic"`
}

func check(data []byte) error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if r.Schema != "fourq-bench/v1" {
		return fmt.Errorf("schema = %q, want fourq-bench/v1", r.Schema)
	}
	// A partial report must never pass: any recorded experiment failure
	// fails the whole check, even though the document itself parses.
	if len(r.Errors) > 0 {
		names := make([]string, 0, len(r.Errors))
		for name := range r.Errors {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("report records failed experiments: %s", strings.Join(names, ", "))
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments in report")
	}
	st := (*rtlStats)(nil)
	for _, raw := range r.Experiments {
		var e struct {
			RTLStats *rtlStats `json:"rtl_stats"`
		}
		if err := json.Unmarshal(raw, &e); err == nil && e.RTLStats != nil {
			st = e.RTLStats
			break
		}
	}
	tp, hasThroughput := r.Experiments["throughput"]
	if hasThroughput {
		if err := checkThroughput(tp); err != nil {
			return err
		}
	}
	fa, hasFaults := r.Experiments["faults"]
	if hasFaults {
		if err := checkFaults(fa); err != nil {
			return err
		}
	}
	ba, hasBatch := r.Experiments["batch"]
	if hasBatch {
		if err := checkBatch(ba); err != nil {
			return err
		}
	}
	sv, hasServe := r.Experiments["serve"]
	if hasServe {
		if err := checkServe(sv); err != nil {
			return err
		}
	}
	chx, hasChaos := r.Experiments["chaos"]
	if hasChaos {
		if err := checkChaos(chx); err != nil {
			return err
		}
	}
	sc, hasSched := r.Experiments["sched"]
	if hasSched {
		if err := checkSched(sc); err != nil {
			return err
		}
	}
	fb, hasFixedBase := r.Experiments["fixedbase"]
	if hasFixedBase {
		if err := checkFixedBase(fb); err != nil {
			return err
		}
	}
	if st == nil && !hasThroughput && !hasFaults && !hasBatch && !hasServe && !hasChaos && !hasSched && !hasFixedBase {
		return fmt.Errorf("no experiment carries rtl_stats (run -exp latency or -exp profile)")
	}
	if st != nil {
		if st.Cycles <= 0 {
			return fmt.Errorf("rtl_stats.cycles = %d, want > 0", st.Cycles)
		}
		if st.MulUtilization <= 0 || st.MulUtilization > 1 {
			return fmt.Errorf("rtl_stats.mul_utilization = %v, want in (0, 1]", st.MulUtilization)
		}
		if st.AddUtilization <= 0 || st.AddUtilization > 1 {
			return fmt.Errorf("rtl_stats.add_utilization = %v, want in (0, 1]", st.AddUtilization)
		}
		if st.ForwardedReads == nil {
			return fmt.Errorf("rtl_stats.forwarded_reads missing")
		}
		if st.ElidedWrites == nil {
			return fmt.Errorf("rtl_stats.elided_writes missing")
		}
	}
	return nil
}

// checkThroughput validates the batch-engine experiment: every point
// must report a positive rate for a positive worker count, carry the
// advertised number of scalar multiplications, and have passed the
// functional-model oracle check.
func checkThroughput(raw json.RawMessage) error {
	var tp throughputExp
	if err := json.Unmarshal(raw, &tp); err != nil {
		return fmt.Errorf("throughput: parse: %w", err)
	}
	if len(tp.Points) == 0 {
		return fmt.Errorf("throughput: no points")
	}
	if tp.SMsPerPoint <= 0 {
		return fmt.Errorf("throughput: sms_per_point = %d, want > 0", tp.SMsPerPoint)
	}
	if !tp.VerifiedAll {
		return fmt.Errorf("throughput: verified_all = false")
	}
	if tp.ScheduleCycles <= 0 {
		return fmt.Errorf("throughput: schedule_cycles = %d, want > 0 (what schedule did the SMs run?)", tp.ScheduleCycles)
	}
	if tp.Solver == "" {
		return fmt.Errorf("throughput: solver missing (scheduling provenance is part of the result)")
	}
	for i, p := range tp.Points {
		if p.Workers < 1 {
			return fmt.Errorf("throughput point %d: workers = %d, want >= 1", i, p.Workers)
		}
		if p.SMs != tp.SMsPerPoint {
			return fmt.Errorf("throughput point %d: sms = %d, want %d", i, p.SMs, tp.SMsPerPoint)
		}
		if p.SMPerSec <= 0 {
			return fmt.Errorf("throughput point %d: sm_per_sec = %v, want > 0", i, p.SMPerSec)
		}
		if p.Speedup <= 0 {
			return fmt.Errorf("throughput point %d: speedup = %v, want > 0", i, p.Speedup)
		}
		if !p.OracleOK {
			return fmt.Errorf("throughput point %d: oracle_ok = false", i)
		}
	}
	return nil
}

// checkBatch validates the lockstep lane-batching experiment: the
// lane-width sweep must be present, every point oracle-verified with a
// positive rate at an ascending width, and the sweep monotone in SM/s
// — a wider batch that measures slower is only accepted when the
// report says why (the "note" field). The engine point, when present,
// must prove the lockstep path actually served lanes.
func checkBatch(raw json.RawMessage) error {
	var ba batchExp
	if err := json.Unmarshal(raw, &ba); err != nil {
		return fmt.Errorf("batch: parse: %w", err)
	}
	if len(ba.LaneWidths) == 0 {
		return fmt.Errorf("batch: no lane_widths points (the lane sweep is the experiment)")
	}
	if !ba.VerifiedAll {
		return fmt.Errorf("batch: verified_all = false")
	}
	peak := 0.0
	for i, p := range ba.LaneWidths {
		if p.Width < 1 {
			return fmt.Errorf("batch point %d: width = %d, want >= 1", i, p.Width)
		}
		if i > 0 && p.Width <= ba.LaneWidths[i-1].Width {
			return fmt.Errorf("batch point %d: width %d not ascending", i, p.Width)
		}
		if p.SMPerSec <= 0 {
			return fmt.Errorf("batch point %d: sm_per_sec = %v, want > 0", i, p.SMPerSec)
		}
		if p.Speedup <= 0 {
			return fmt.Errorf("batch point %d: speedup = %v, want > 0", i, p.Speedup)
		}
		if !p.OracleOK {
			return fmt.Errorf("batch point %d: oracle_ok = false", i)
		}
		if i > 0 && p.SMPerSec < ba.LaneWidths[i-1].SMPerSec && ba.Note == "" {
			return fmt.Errorf("batch: sm_per_sec drops at width %d with no note explaining it", p.Width)
		}
		if p.SMPerSec > peak {
			peak = p.SMPerSec
		}
	}
	if ba.PeakLaneSMPerSec != peak {
		return fmt.Errorf("batch: peak_lane_sm_per_sec = %v, but the sweep's maximum is %v", ba.PeakLaneSMPerSec, peak)
	}
	if e := ba.Engine; e != nil {
		if e.SMPerSec <= 0 {
			return fmt.Errorf("batch engine: sm_per_sec = %v, want > 0", e.SMPerSec)
		}
		if e.LaneRuns < 1 || e.LaneLanes < int64(e.LaneWidth) {
			return fmt.Errorf("batch engine: lockstep path unused (lane_runs=%d lane_lanes=%d, width %d)",
				e.LaneRuns, e.LaneLanes, e.LaneWidth)
		}
		if !e.OracleOK {
			return fmt.Errorf("batch engine: oracle_ok = false")
		}
	}
	return nil
}

type serveExp struct {
	OfferedRPS      float64             `json:"offered_rps"`
	DurationSeconds float64             `json:"duration_seconds"`
	Requests        map[string]int      `json:"requests"`
	ShedRate        *float64            `json:"shed_rate"`
	LatencyMS       map[string]*float64 `json:"latency_ms"`
	GoodputRPS      float64             `json:"goodput_rps"`
	GoodputSMPerSec float64             `json:"goodput_sm_per_sec"`
}

// checkServe validates the fourq-loadgen service benchmark. The two
// non-negotiables are the latency percentiles and the shed-rate
// metadata: a service benchmark quoting goodput without saying what
// latency the survivors paid, or how much offered load was refused, is
// cherry-picking.
func checkServe(raw json.RawMessage) error {
	var sv serveExp
	if err := json.Unmarshal(raw, &sv); err != nil {
		return fmt.Errorf("serve: parse: %w", err)
	}
	if sv.OfferedRPS <= 0 {
		return fmt.Errorf("serve: offered_rps = %v, want > 0", sv.OfferedRPS)
	}
	if sv.DurationSeconds <= 0 {
		return fmt.Errorf("serve: duration_seconds = %v, want > 0", sv.DurationSeconds)
	}
	total, ok := sv.Requests["total"], sv.Requests["ok"]
	if sv.Requests == nil || total <= 0 {
		return fmt.Errorf("serve: requests.total = %d, want > 0", total)
	}
	if ok <= 0 {
		return fmt.Errorf("serve: requests.ok = %d — a run with no successful request is not a measurement", ok)
	}
	if sum := ok + sv.Requests["shed"] + sv.Requests["rate_limited"] + sv.Requests["failed"]; sum != total {
		return fmt.Errorf("serve: request tallies sum to %d, want total = %d", sum, total)
	}
	if sv.ShedRate == nil {
		return fmt.Errorf("serve: shed_rate missing (overload behavior is part of the result)")
	}
	if r := *sv.ShedRate; r < 0 || r > 1 {
		return fmt.Errorf("serve: shed_rate = %v, want in [0, 1]", r)
	}
	var prev float64
	for _, q := range []string{"p50", "p95", "p99"} {
		p := sv.LatencyMS[q]
		if p == nil {
			return fmt.Errorf("serve: latency_ms.%s missing (percentiles are required)", q)
		}
		if *p <= 0 {
			return fmt.Errorf("serve: latency_ms.%s = %v, want > 0", q, *p)
		}
		if *p < prev {
			return fmt.Errorf("serve: latency_ms.%s = %v below a lower percentile (%v)", q, *p, prev)
		}
		prev = *p
	}
	if sv.GoodputRPS <= 0 {
		return fmt.Errorf("serve: goodput_rps = %v, want > 0", sv.GoodputRPS)
	}
	if sv.GoodputSMPerSec <= 0 {
		return fmt.Errorf("serve: goodput_sm_per_sec = %v, want > 0", sv.GoodputSMPerSec)
	}
	return nil
}

// checkSched validates the scheduler head-to-head experiment: both
// solver rows must be present with RTL-proven utilization evidence, the
// portfolio must not be worse than the single-pass list schedule it
// races (a "portfolio" that loses to its own warm start is a bug, not a
// result), the makespans must respect the machine-load lower bound, and
// the determinism cross-check must have passed — a schedule whose hash
// cannot be reproduced from its seed is not a committable baseline.
func checkSched(raw json.RawMessage) error {
	var sc schedExp
	if err := json.Unmarshal(raw, &sc); err != nil {
		return fmt.Errorf("sched: parse: %w", err)
	}
	if sc.TraceOps <= 0 {
		return fmt.Errorf("sched: trace_ops = %d, want > 0", sc.TraceOps)
	}
	if sc.Single == nil || sc.Portfolio == nil {
		return fmt.Errorf("sched: both single and portfolio rows are required (the experiment is the head-to-head)")
	}
	rows := []struct {
		name string
		row  *schedSolverRow
	}{{"single", sc.Single}, {"portfolio", sc.Portfolio}}
	for _, r := range rows {
		if r.row.Makespan <= 0 {
			return fmt.Errorf("sched: %s.makespan = %d, want > 0", r.name, r.row.Makespan)
		}
		if r.row.MulUtilization == nil {
			return fmt.Errorf("sched: %s.mul_utilization missing (utilization is the evidence)", r.name)
		}
		if u := *r.row.MulUtilization; u <= 0 || u > 1 {
			return fmt.Errorf("sched: %s.mul_utilization = %v, want in (0, 1]", r.name, u)
		}
		if r.row.AddUtilization == nil {
			return fmt.Errorf("sched: %s.add_utilization missing", r.name)
		}
		if u := *r.row.AddUtilization; u <= 0 || u > 1 {
			return fmt.Errorf("sched: %s.add_utilization = %v, want in (0, 1]", r.name, u)
		}
		if r.row.StallCycles == nil {
			return fmt.Errorf("sched: %s.stall_cycles missing", r.name)
		}
		if *r.row.StallCycles < 0 {
			return fmt.Errorf("sched: %s.stall_cycles = %d, want >= 0", r.name, *r.row.StallCycles)
		}
	}
	if sc.Portfolio.Makespan > sc.Single.Makespan {
		return fmt.Errorf("sched: portfolio makespan %d exceeds single-solver makespan %d (the portfolio must never lose to its own warm start)",
			sc.Portfolio.Makespan, sc.Single.Makespan)
	}
	if sc.LowerBound <= 0 || sc.LowerBound > sc.Portfolio.Makespan {
		return fmt.Errorf("sched: lower_bound = %d, want in (0, %d] (a schedule below the machine-load bound is impossible)",
			sc.LowerBound, sc.Portfolio.Makespan)
	}
	if sc.ScheduleHash == "" {
		return fmt.Errorf("sched: schedule_hash missing (the reproducibility handle is part of the result)")
	}
	if !sc.Deterministic {
		return fmt.Errorf("sched: deterministic = false — the rerun did not reproduce the schedule")
	}
	return nil
}

// schedSolverRow mirrors one solver row of the sched experiment for
// checkSched's pointer-based presence checks.
type schedSolverRow struct {
	Makespan       int      `json:"makespan"`
	MulUtilization *float64 `json:"mul_utilization"`
	AddUtilization *float64 `json:"add_utilization"`
	StallCycles    *int     `json:"stall_cycles"`
}

// fixedBaseExp mirrors the -exp fixedbase report entry (the fixed-base
// comb program next to the variable-base schedule signing would
// otherwise ride).
type fixedBaseExp struct {
	TraceOps             int             `json:"trace_ops"`
	ROMWindows           int             `json:"rom_windows"`
	ROMReads             int             `json:"rom_reads"`
	LowerBound           int             `json:"lower_bound"`
	Single               *schedSolverRow `json:"single"`
	Portfolio            *schedSolverRow `json:"portfolio"`
	VariableBaseMakespan int             `json:"variable_base_makespan"`
	Ratio                *float64        `json:"ratio"`
	Seed                 *int64          `json:"seed"`
	ScheduleHash         string          `json:"schedule_hash"`
	Deterministic        bool            `json:"deterministic"`
	Validated            int             `json:"validated"`
}

// checkFixedBase validates the fixed-base comb experiment: the comb's
// ROM evidence must be present (a comb with no ROM reads rode the wrong
// program), both solver rows need RTL-proven utilization, the comb
// makespan must actually beat the variable-base schedule it displaces
// (otherwise the request-class routing is pure overhead), the
// differential validation must have run, and — like sched — the
// schedule must carry its seed + hash provenance with the determinism
// cross-check passed.
func checkFixedBase(raw json.RawMessage) error {
	var fb fixedBaseExp
	if err := json.Unmarshal(raw, &fb); err != nil {
		return fmt.Errorf("fixedbase: parse: %w", err)
	}
	if fb.TraceOps <= 0 {
		return fmt.Errorf("fixedbase: trace_ops = %d, want > 0", fb.TraceOps)
	}
	if fb.ROMWindows <= 0 {
		return fmt.Errorf("fixedbase: rom_windows = %d, want > 0 (the precomputed table is the experiment)", fb.ROMWindows)
	}
	if fb.ROMReads <= 0 {
		return fmt.Errorf("fixedbase: rom_reads = %d, want > 0 (a comb with no ROM reads rode the wrong program)", fb.ROMReads)
	}
	if fb.Single == nil || fb.Portfolio == nil {
		return fmt.Errorf("fixedbase: both single and portfolio rows are required")
	}
	rows := []struct {
		name string
		row  *schedSolverRow
	}{{"single", fb.Single}, {"portfolio", fb.Portfolio}}
	for _, r := range rows {
		if r.row.Makespan <= 0 {
			return fmt.Errorf("fixedbase: %s.makespan = %d, want > 0", r.name, r.row.Makespan)
		}
		if r.row.MulUtilization == nil {
			return fmt.Errorf("fixedbase: %s.mul_utilization missing (utilization is the evidence)", r.name)
		}
		if u := *r.row.MulUtilization; u <= 0 || u > 1 {
			return fmt.Errorf("fixedbase: %s.mul_utilization = %v, want in (0, 1]", r.name, u)
		}
		if r.row.AddUtilization == nil {
			return fmt.Errorf("fixedbase: %s.add_utilization missing", r.name)
		}
		if u := *r.row.AddUtilization; u <= 0 || u > 1 {
			return fmt.Errorf("fixedbase: %s.add_utilization = %v, want in (0, 1]", r.name, u)
		}
		if r.row.StallCycles == nil {
			return fmt.Errorf("fixedbase: %s.stall_cycles missing", r.name)
		}
		if *r.row.StallCycles < 0 {
			return fmt.Errorf("fixedbase: %s.stall_cycles = %d, want >= 0", r.name, *r.row.StallCycles)
		}
	}
	if fb.Portfolio.Makespan > fb.Single.Makespan {
		return fmt.Errorf("fixedbase: portfolio makespan %d exceeds single-solver makespan %d",
			fb.Portfolio.Makespan, fb.Single.Makespan)
	}
	if fb.LowerBound <= 0 || fb.LowerBound > fb.Portfolio.Makespan {
		return fmt.Errorf("fixedbase: lower_bound = %d, want in (0, %d]", fb.LowerBound, fb.Portfolio.Makespan)
	}
	if fb.VariableBaseMakespan <= 0 {
		return fmt.Errorf("fixedbase: variable_base_makespan = %d, want > 0 (the comparison is the point)", fb.VariableBaseMakespan)
	}
	if fb.Portfolio.Makespan >= fb.VariableBaseMakespan {
		return fmt.Errorf("fixedbase: comb makespan %d does not beat the variable-base schedule %d — the request-class routing is pure overhead",
			fb.Portfolio.Makespan, fb.VariableBaseMakespan)
	}
	if fb.Ratio == nil {
		return fmt.Errorf("fixedbase: ratio missing")
	}
	want := float64(fb.Portfolio.Makespan) / float64(fb.VariableBaseMakespan)
	if d := *fb.Ratio - want; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("fixedbase: ratio = %v, but makespans give %v", *fb.Ratio, want)
	}
	if fb.Seed == nil {
		return fmt.Errorf("fixedbase: seed missing (scheduling provenance is part of the result)")
	}
	if fb.ScheduleHash == "" {
		return fmt.Errorf("fixedbase: schedule_hash missing (the reproducibility handle is part of the result)")
	}
	if !fb.Deterministic {
		return fmt.Errorf("fixedbase: deterministic = false — the rerun did not reproduce the schedule")
	}
	if fb.Validated <= 0 {
		return fmt.Errorf("fixedbase: validated = %d, want > 0 (no differential evidence against the library table)", fb.Validated)
	}
	return nil
}

// smRates extracts the comparable throughput metrics from a report,
// keyed by a human-readable metric name: the throughput experiment's
// peak SM/s over the worker sweep, and the latency experiment's
// single-thread compiled-plan SM/s. Reports predating a metric simply
// do not contribute it.
func smRates(data []byte) (map[string]float64, error) {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	rates := make(map[string]float64)
	if raw, ok := r.Experiments["throughput"]; ok {
		var tp throughputExp
		if err := json.Unmarshal(raw, &tp); err != nil {
			return nil, fmt.Errorf("throughput: parse: %w", err)
		}
		peak := 0.0
		for _, p := range tp.Points {
			if p.SMPerSec > peak {
				peak = p.SMPerSec
			}
		}
		if peak > 0 {
			rates["throughput peak sm_per_sec"] = peak
		}
	}
	if raw, ok := r.Experiments["latency"]; ok {
		var la struct {
			SingleThread *struct {
				Compiled float64 `json:"compiled_sm_per_sec"`
			} `json:"single_thread"`
		}
		if err := json.Unmarshal(raw, &la); err != nil {
			return nil, fmt.Errorf("latency: parse: %w", err)
		}
		if la.SingleThread != nil && la.SingleThread.Compiled > 0 {
			rates["latency single-thread compiled sm_per_sec"] = la.SingleThread.Compiled
		}
	}
	if raw, ok := r.Experiments["batch"]; ok {
		var ba batchExp
		if err := json.Unmarshal(raw, &ba); err != nil {
			return nil, fmt.Errorf("batch: parse: %w", err)
		}
		if ba.PeakLaneSMPerSec > 0 {
			rates["batch peak lane sm_per_sec"] = ba.PeakLaneSMPerSec
		}
	}
	if raw, ok := r.Experiments["serve"]; ok {
		var sv serveExp
		if err := json.Unmarshal(raw, &sv); err != nil {
			return nil, fmt.Errorf("serve: parse: %w", err)
		}
		if sv.GoodputSMPerSec > 0 {
			rates["serve goodput sm_per_sec"] = sv.GoodputSMPerSec
		}
	}
	return rates, nil
}

// schedMakespan pulls the portfolio makespan out of a report's sched
// experiment, when present. Unlike the SM/s rates this metric is
// lower-is-better, so compare handles it separately.
func schedMakespan(data []byte) (int, bool, error) {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return 0, false, fmt.Errorf("parse: %w", err)
	}
	raw, ok := r.Experiments["sched"]
	if !ok {
		return 0, false, nil
	}
	var sc schedExp
	if err := json.Unmarshal(raw, &sc); err != nil {
		return 0, false, fmt.Errorf("sched: parse: %w", err)
	}
	if sc.Portfolio == nil || sc.Portfolio.Makespan <= 0 {
		return 0, false, nil
	}
	return sc.Portfolio.Makespan, true, nil
}

// fixedBaseMakespan pulls the comb's portfolio makespan out of a
// report's fixedbase experiment, when present (lower-is-better, like
// the sched makespan).
func fixedBaseMakespan(data []byte) (int, bool, error) {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return 0, false, fmt.Errorf("parse: %w", err)
	}
	raw, ok := r.Experiments["fixedbase"]
	if !ok {
		return 0, false, nil
	}
	var fb fixedBaseExp
	if err := json.Unmarshal(raw, &fb); err != nil {
		return 0, false, fmt.Errorf("fixedbase: parse: %w", err)
	}
	if fb.Portfolio == nil || fb.Portfolio.Makespan <= 0 {
		return 0, false, nil
	}
	return fb.Portfolio.Makespan, true, nil
}

// compare is the perf-regression gate: every SM/s metric present in
// both the baseline and the current report must be at least
// baseline*(1-tol), and the sched and fixedbase experiments' portfolio
// makespans (lower-is-better cycle counts) must not exceed
// baseline*(1+tol). Two reports with no metric in common are an error —
// a gate that compares nothing must not pass silently.
func compare(base, cur []byte, tol float64) error {
	baseRates, err := smRates(base)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	curRates, err := smRates(cur)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(baseRates))
	for name := range baseRates {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	for _, name := range names {
		c, ok := curRates[name]
		if !ok {
			continue
		}
		b := baseRates[name]
		compared++
		if floor := b * (1 - tol); c < floor {
			return fmt.Errorf("regression: %s = %.1f, below %.1f (baseline %.1f - %.0f%% tolerance)",
				name, c, floor, b, 100*tol)
		}
		fmt.Printf("benchcheck: %s %.1f vs baseline %.1f (%+.1f%%)\n", name, c, b, 100*(c/b-1))
	}
	baseMk, baseHas, err := schedMakespan(base)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	curMk, curHas, err := schedMakespan(cur)
	if err != nil {
		return err
	}
	if baseHas && curHas {
		compared++
		if ceil := float64(baseMk) * (1 + tol); float64(curMk) > ceil {
			return fmt.Errorf("regression: sched portfolio makespan = %d cycles, above %.0f (baseline %d + %.0f%% tolerance)",
				curMk, ceil, baseMk, 100*tol)
		}
		fmt.Printf("benchcheck: sched portfolio makespan %d vs baseline %d cycles (%+.1f%%)\n",
			curMk, baseMk, 100*(float64(curMk)/float64(baseMk)-1))
	}
	baseFB, baseFBHas, err := fixedBaseMakespan(base)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	curFB, curFBHas, err := fixedBaseMakespan(cur)
	if err != nil {
		return err
	}
	if baseFBHas && curFBHas {
		compared++
		if ceil := float64(baseFB) * (1 + tol); float64(curFB) > ceil {
			return fmt.Errorf("regression: fixedbase comb makespan = %d cycles, above %.0f (baseline %d + %.0f%% tolerance)",
				curFB, ceil, baseFB, 100*tol)
		}
		fmt.Printf("benchcheck: fixedbase comb makespan %d vs baseline %d cycles (%+.1f%%)\n",
			curFB, baseFB, 100*(float64(curFB)/float64(baseFB)-1))
	}
	if compared == 0 {
		return fmt.Errorf("no SM/s metric shared by the report and the baseline (need throughput points or latency single_thread)")
	}
	return nil
}

type faultsExp struct {
	Campaign *struct {
		Seed       *int64   `json:"seed"`
		Trials     int      `json:"trials"`
		Sites      []string `json:"sites"`
		Validation string   `json:"validation"`
	} `json:"campaign"`
	Detected          int      `json:"detected"`
	Silent            int      `json:"silent"`
	Masked            int      `json:"masked"`
	DetectionCoverage *float64 `json:"detection_coverage"`
	BySite            map[string]struct {
		Trials   int `json:"trials"`
		Detected int `json:"detected"`
		Silent   int `json:"silent"`
		Masked   int `json:"masked"`
	} `json:"by_site"`
}

// checkFaults validates the fault-injection campaign: the report must
// carry the full replay recipe (seed, trials, sites, validation level)
// before any corruption rate is believed, and every tally must
// reconcile with the advertised trial count.
func checkFaults(raw json.RawMessage) error {
	var fa faultsExp
	if err := json.Unmarshal(raw, &fa); err != nil {
		return fmt.Errorf("faults: parse: %w", err)
	}
	// The ordering matters: a silent-corruption rate without the
	// campaign metadata is unreproducible and rejected before anything
	// else is even looked at.
	switch {
	case fa.Campaign == nil:
		return fmt.Errorf("faults: outcome tallies without campaign metadata (unreproducible; record seed/trials/sites/validation)")
	case fa.Campaign.Seed == nil:
		return fmt.Errorf("faults: campaign metadata missing the seed")
	case fa.Campaign.Trials <= 0:
		return fmt.Errorf("faults: campaign.trials = %d, want > 0", fa.Campaign.Trials)
	case len(fa.Campaign.Sites) == 0:
		return fmt.Errorf("faults: campaign.sites empty")
	case fa.Campaign.Validation == "":
		return fmt.Errorf("faults: campaign.validation missing (which detector was classified against?)")
	}
	if got := fa.Detected + fa.Silent + fa.Masked; got != fa.Campaign.Trials {
		return fmt.Errorf("faults: detected+silent+masked = %d, want trials = %d", got, fa.Campaign.Trials)
	}
	if fa.DetectionCoverage == nil {
		return fmt.Errorf("faults: detection_coverage missing")
	}
	if c := *fa.DetectionCoverage; c < 0 || c > 1 {
		return fmt.Errorf("faults: detection_coverage = %v, want in [0, 1]", c)
	}
	var siteTrials, siteDetected, siteSilent, siteMasked int
	for site, tally := range fa.BySite {
		if tally.Detected+tally.Silent+tally.Masked != tally.Trials {
			return fmt.Errorf("faults: site %q tally does not reconcile", site)
		}
		siteTrials += tally.Trials
		siteDetected += tally.Detected
		siteSilent += tally.Silent
		siteMasked += tally.Masked
	}
	if siteTrials != fa.Campaign.Trials || siteDetected != fa.Detected ||
		siteSilent != fa.Silent || siteMasked != fa.Masked {
		return fmt.Errorf("faults: by_site totals (%d/%d/%d/%d) disagree with the campaign totals (%d/%d/%d/%d)",
			siteTrials, siteDetected, siteSilent, siteMasked,
			fa.Campaign.Trials, fa.Detected, fa.Silent, fa.Masked)
	}
	return nil
}

type chaosExp struct {
	Seed      *int64 `json:"seed"`
	Requests  int    `json:"requests_per_phase"`
	Scenarios []struct {
		Name           string         `json:"name"`
		Seed           *int64         `json:"seed"`
		FaultsInjected int64          `json:"faults_injected"`
		Requests       map[string]int `json:"requests"`
		MisAnswered    int            `json:"mis_answered"`
		Lost           int            `json:"lost"`
		Duplicates     int64          `json:"duplicates"`
		EngineRejected int64          `json:"engine_rejected"`
		RecoveryRatio  *float64       `json:"recovery_ratio"`
		Violations     []string       `json:"violations"`
	} `json:"scenarios"`
	FaultsInjected   int64    `json:"faults_injected"`
	MisAnswered      int      `json:"mis_answered"`
	Lost             int      `json:"lost"`
	Duplicates       int64    `json:"duplicates"`
	EngineRejected   int64    `json:"engine_rejected"`
	MinRecoveryRatio *float64 `json:"min_recovery_ratio"`
	Violations       []string `json:"violations"`
}

// minRecoveryRatio is the lowest post-fault/pre-fault goodput a chaos
// scenario may record and still pass — the same floor internal/chaos
// enforces at run time.
const minRecoveryRatio = 0.9

// checkChaos validates the failure-campaign report (fourq-chaos -json):
// a campaign that injected no faults tested nothing and is rejected
// outright, every scenario must carry its replay seed and reconciled
// request tallies, and the recorded invariants must actually hold —
// zero lost/duplicated/mis-answered requests, zero engine-level
// rejections, recovery ratios at or above the floor, and an empty
// violation list. A "passing" chaos report whose own numbers breach an
// invariant is a recording bug, not evidence of robustness.
func checkChaos(raw json.RawMessage) error {
	var ch chaosExp
	if err := json.Unmarshal(raw, &ch); err != nil {
		return fmt.Errorf("chaos: parse: %w", err)
	}
	if ch.Seed == nil {
		return fmt.Errorf("chaos: campaign seed missing (unreproducible)")
	}
	if ch.Requests <= 0 {
		return fmt.Errorf("chaos: requests_per_phase = %d, want > 0", ch.Requests)
	}
	if len(ch.Scenarios) == 0 {
		return fmt.Errorf("chaos: no scenarios recorded")
	}
	if ch.FaultsInjected == 0 {
		return fmt.Errorf("chaos: campaign injected zero faults — nothing was tested")
	}
	if len(ch.Violations) > 0 {
		return fmt.Errorf("chaos: report records %d invariant violation(s): %s",
			len(ch.Violations), strings.Join(ch.Violations, "; "))
	}
	var faults int64
	ratios := 0
	for _, sc := range ch.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("chaos: scenario with no name")
		}
		if sc.Seed == nil {
			return fmt.Errorf("chaos: scenario %s missing its replay seed", sc.Name)
		}
		if sc.FaultsInjected == 0 {
			return fmt.Errorf("chaos: scenario %s injected zero faults", sc.Name)
		}
		total := sc.Requests["total"]
		if total <= 0 {
			return fmt.Errorf("chaos: scenario %s issued no requests", sc.Name)
		}
		if sc.Requests["ok"] <= 0 {
			return fmt.Errorf("chaos: scenario %s answered no request successfully", sc.Name)
		}
		sum := sc.Requests["ok"] + sc.Requests["shed"] + sc.Requests["rate_limited"] +
			sc.Requests["canceled"] + sc.Requests["drained"] + sc.Requests["failed"]
		if sum != total {
			return fmt.Errorf("chaos: scenario %s tallies sum to %d, want total = %d", sc.Name, sum, total)
		}
		if sc.Lost != 0 || sc.Duplicates != 0 {
			return fmt.Errorf("chaos: scenario %s lost=%d duplicates=%d, want 0/0 (exactly-once broken)",
				sc.Name, sc.Lost, sc.Duplicates)
		}
		if sc.MisAnswered != 0 {
			return fmt.Errorf("chaos: scenario %s mis_answered = %d, want 0", sc.Name, sc.MisAnswered)
		}
		if sc.EngineRejected != 0 {
			return fmt.Errorf("chaos: scenario %s engine_rejected = %d, want 0 (shed must precede backpressure)",
				sc.Name, sc.EngineRejected)
		}
		if len(sc.Violations) > 0 {
			return fmt.Errorf("chaos: scenario %s records violations: %s", sc.Name, strings.Join(sc.Violations, "; "))
		}
		if sc.RecoveryRatio != nil {
			ratios++
			if *sc.RecoveryRatio < minRecoveryRatio {
				return fmt.Errorf("chaos: scenario %s recovery_ratio = %.2f, below the %.2f floor",
					sc.Name, *sc.RecoveryRatio, minRecoveryRatio)
			}
		}
		faults += sc.FaultsInjected
	}
	if faults != ch.FaultsInjected {
		return fmt.Errorf("chaos: per-scenario faults sum to %d, campaign total says %d", faults, ch.FaultsInjected)
	}
	if ratios == 0 {
		return fmt.Errorf("chaos: no scenario measured a recovery ratio")
	}
	if ch.MinRecoveryRatio == nil {
		return fmt.Errorf("chaos: min_recovery_ratio missing")
	}
	if *ch.MinRecoveryRatio < minRecoveryRatio {
		return fmt.Errorf("chaos: min_recovery_ratio = %.2f, below the %.2f floor", *ch.MinRecoveryRatio, minRecoveryRatio)
	}
	return nil
}
