// Command benchcheck validates a fourq-bench -json report. It is the CI
// smoke test for the machine-readable benchmark output: it asserts the
// document parses, carries the expected schema, records no failed
// experiments, and that the latency experiment recorded a real RTL run
// (positive cycle count, per-unit utilization, and forwarding/elision
// counters). When the throughput experiment is present its points must
// be internally consistent (positive rates, oracle-verified results).
// When the faults experiment is present its outcome tallies must
// reconcile with the trial count, and a report quoting a silent-
// corruption rate without the campaign metadata (seed, trials, sites,
// validation level) is rejected outright: an unreproducible fault rate
// is not evidence.
//
//	go run ./cmd/fourq-bench -exp latency -json /tmp/bench.json
//	go run ./scripts/benchcheck /tmp/bench.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if err := check(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// report mirrors the subset of the fourq-bench/v1 schema the check
// inspects. Experiments stay raw so each known experiment can be decoded
// into its own shape.
type report struct {
	Schema      string                     `json:"schema"`
	Experiments map[string]json.RawMessage `json:"experiments"`
	Errors      map[string]string          `json:"errors"`
}

type rtlStats struct {
	Cycles         int     `json:"cycles"`
	MulUtilization float64 `json:"mul_utilization"`
	AddUtilization float64 `json:"add_utilization"`
	ForwardedReads *int    `json:"forwarded_reads"`
	ElidedWrites   *int    `json:"elided_writes"`
}

type throughputExp struct {
	NumCPU      int `json:"num_cpu"`
	SMsPerPoint int `json:"sms_per_point"`
	Points      []struct {
		Workers  int     `json:"workers"`
		SMs      int     `json:"sms"`
		SMPerSec float64 `json:"sm_per_sec"`
		Speedup  float64 `json:"speedup"`
		OracleOK bool    `json:"oracle_ok"`
	} `json:"points"`
	VerifiedAll bool `json:"verified_all"`
}

func check(data []byte) error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if r.Schema != "fourq-bench/v1" {
		return fmt.Errorf("schema = %q, want fourq-bench/v1", r.Schema)
	}
	// A partial report must never pass: any recorded experiment failure
	// fails the whole check, even though the document itself parses.
	if len(r.Errors) > 0 {
		names := make([]string, 0, len(r.Errors))
		for name := range r.Errors {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("report records failed experiments: %s", strings.Join(names, ", "))
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments in report")
	}
	st := (*rtlStats)(nil)
	for _, raw := range r.Experiments {
		var e struct {
			RTLStats *rtlStats `json:"rtl_stats"`
		}
		if err := json.Unmarshal(raw, &e); err == nil && e.RTLStats != nil {
			st = e.RTLStats
			break
		}
	}
	tp, hasThroughput := r.Experiments["throughput"]
	if hasThroughput {
		if err := checkThroughput(tp); err != nil {
			return err
		}
	}
	fa, hasFaults := r.Experiments["faults"]
	if hasFaults {
		if err := checkFaults(fa); err != nil {
			return err
		}
	}
	if st == nil && !hasThroughput && !hasFaults {
		return fmt.Errorf("no experiment carries rtl_stats (run -exp latency or -exp profile)")
	}
	if st != nil {
		if st.Cycles <= 0 {
			return fmt.Errorf("rtl_stats.cycles = %d, want > 0", st.Cycles)
		}
		if st.MulUtilization <= 0 || st.MulUtilization > 1 {
			return fmt.Errorf("rtl_stats.mul_utilization = %v, want in (0, 1]", st.MulUtilization)
		}
		if st.AddUtilization <= 0 || st.AddUtilization > 1 {
			return fmt.Errorf("rtl_stats.add_utilization = %v, want in (0, 1]", st.AddUtilization)
		}
		if st.ForwardedReads == nil {
			return fmt.Errorf("rtl_stats.forwarded_reads missing")
		}
		if st.ElidedWrites == nil {
			return fmt.Errorf("rtl_stats.elided_writes missing")
		}
	}
	return nil
}

// checkThroughput validates the batch-engine experiment: every point
// must report a positive rate for a positive worker count, carry the
// advertised number of scalar multiplications, and have passed the
// functional-model oracle check.
func checkThroughput(raw json.RawMessage) error {
	var tp throughputExp
	if err := json.Unmarshal(raw, &tp); err != nil {
		return fmt.Errorf("throughput: parse: %w", err)
	}
	if len(tp.Points) == 0 {
		return fmt.Errorf("throughput: no points")
	}
	if tp.SMsPerPoint <= 0 {
		return fmt.Errorf("throughput: sms_per_point = %d, want > 0", tp.SMsPerPoint)
	}
	if !tp.VerifiedAll {
		return fmt.Errorf("throughput: verified_all = false")
	}
	for i, p := range tp.Points {
		if p.Workers < 1 {
			return fmt.Errorf("throughput point %d: workers = %d, want >= 1", i, p.Workers)
		}
		if p.SMs != tp.SMsPerPoint {
			return fmt.Errorf("throughput point %d: sms = %d, want %d", i, p.SMs, tp.SMsPerPoint)
		}
		if p.SMPerSec <= 0 {
			return fmt.Errorf("throughput point %d: sm_per_sec = %v, want > 0", i, p.SMPerSec)
		}
		if p.Speedup <= 0 {
			return fmt.Errorf("throughput point %d: speedup = %v, want > 0", i, p.Speedup)
		}
		if !p.OracleOK {
			return fmt.Errorf("throughput point %d: oracle_ok = false", i)
		}
	}
	return nil
}

type faultsExp struct {
	Campaign *struct {
		Seed       *int64   `json:"seed"`
		Trials     int      `json:"trials"`
		Sites      []string `json:"sites"`
		Validation string   `json:"validation"`
	} `json:"campaign"`
	Detected          int      `json:"detected"`
	Silent            int      `json:"silent"`
	Masked            int      `json:"masked"`
	DetectionCoverage *float64 `json:"detection_coverage"`
	BySite            map[string]struct {
		Trials   int `json:"trials"`
		Detected int `json:"detected"`
		Silent   int `json:"silent"`
		Masked   int `json:"masked"`
	} `json:"by_site"`
}

// checkFaults validates the fault-injection campaign: the report must
// carry the full replay recipe (seed, trials, sites, validation level)
// before any corruption rate is believed, and every tally must
// reconcile with the advertised trial count.
func checkFaults(raw json.RawMessage) error {
	var fa faultsExp
	if err := json.Unmarshal(raw, &fa); err != nil {
		return fmt.Errorf("faults: parse: %w", err)
	}
	// The ordering matters: a silent-corruption rate without the
	// campaign metadata is unreproducible and rejected before anything
	// else is even looked at.
	switch {
	case fa.Campaign == nil:
		return fmt.Errorf("faults: outcome tallies without campaign metadata (unreproducible; record seed/trials/sites/validation)")
	case fa.Campaign.Seed == nil:
		return fmt.Errorf("faults: campaign metadata missing the seed")
	case fa.Campaign.Trials <= 0:
		return fmt.Errorf("faults: campaign.trials = %d, want > 0", fa.Campaign.Trials)
	case len(fa.Campaign.Sites) == 0:
		return fmt.Errorf("faults: campaign.sites empty")
	case fa.Campaign.Validation == "":
		return fmt.Errorf("faults: campaign.validation missing (which detector was classified against?)")
	}
	if got := fa.Detected + fa.Silent + fa.Masked; got != fa.Campaign.Trials {
		return fmt.Errorf("faults: detected+silent+masked = %d, want trials = %d", got, fa.Campaign.Trials)
	}
	if fa.DetectionCoverage == nil {
		return fmt.Errorf("faults: detection_coverage missing")
	}
	if c := *fa.DetectionCoverage; c < 0 || c > 1 {
		return fmt.Errorf("faults: detection_coverage = %v, want in [0, 1]", c)
	}
	var siteTrials, siteDetected, siteSilent, siteMasked int
	for site, tally := range fa.BySite {
		if tally.Detected+tally.Silent+tally.Masked != tally.Trials {
			return fmt.Errorf("faults: site %q tally does not reconcile", site)
		}
		siteTrials += tally.Trials
		siteDetected += tally.Detected
		siteSilent += tally.Silent
		siteMasked += tally.Masked
	}
	if siteTrials != fa.Campaign.Trials || siteDetected != fa.Detected ||
		siteSilent != fa.Silent || siteMasked != fa.Masked {
		return fmt.Errorf("faults: by_site totals (%d/%d/%d/%d) disagree with the campaign totals (%d/%d/%d/%d)",
			siteTrials, siteDetected, siteSilent, siteMasked,
			fa.Campaign.Trials, fa.Detected, fa.Silent, fa.Masked)
	}
	return nil
}
