// Command benchcheck validates a fourq-bench -json report. It is the CI
// smoke test for the machine-readable benchmark output: it asserts the
// document parses, carries the expected schema, records no failed
// experiments, and that the latency experiment recorded a real RTL run
// (positive cycle count, per-unit utilization, and forwarding/elision
// counters). When the throughput experiment is present its points must
// be internally consistent (positive rates, oracle-verified results).
//
//	go run ./cmd/fourq-bench -exp latency -json /tmp/bench.json
//	go run ./scripts/benchcheck /tmp/bench.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if err := check(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// report mirrors the subset of the fourq-bench/v1 schema the check
// inspects. Experiments stay raw so each known experiment can be decoded
// into its own shape.
type report struct {
	Schema      string                     `json:"schema"`
	Experiments map[string]json.RawMessage `json:"experiments"`
	Errors      map[string]string          `json:"errors"`
}

type rtlStats struct {
	Cycles         int     `json:"cycles"`
	MulUtilization float64 `json:"mul_utilization"`
	AddUtilization float64 `json:"add_utilization"`
	ForwardedReads *int    `json:"forwarded_reads"`
	ElidedWrites   *int    `json:"elided_writes"`
}

type throughputExp struct {
	NumCPU      int `json:"num_cpu"`
	SMsPerPoint int `json:"sms_per_point"`
	Points      []struct {
		Workers  int     `json:"workers"`
		SMs      int     `json:"sms"`
		SMPerSec float64 `json:"sm_per_sec"`
		Speedup  float64 `json:"speedup"`
		OracleOK bool    `json:"oracle_ok"`
	} `json:"points"`
	VerifiedAll bool `json:"verified_all"`
}

func check(data []byte) error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if r.Schema != "fourq-bench/v1" {
		return fmt.Errorf("schema = %q, want fourq-bench/v1", r.Schema)
	}
	// A partial report must never pass: any recorded experiment failure
	// fails the whole check, even though the document itself parses.
	if len(r.Errors) > 0 {
		names := make([]string, 0, len(r.Errors))
		for name := range r.Errors {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("report records failed experiments: %s", strings.Join(names, ", "))
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments in report")
	}
	st := (*rtlStats)(nil)
	for _, raw := range r.Experiments {
		var e struct {
			RTLStats *rtlStats `json:"rtl_stats"`
		}
		if err := json.Unmarshal(raw, &e); err == nil && e.RTLStats != nil {
			st = e.RTLStats
			break
		}
	}
	if tp, ok := r.Experiments["throughput"]; ok {
		if err := checkThroughput(tp); err != nil {
			return err
		}
	} else if st == nil {
		return fmt.Errorf("no experiment carries rtl_stats (run -exp latency or -exp profile)")
	}
	if st != nil {
		if st.Cycles <= 0 {
			return fmt.Errorf("rtl_stats.cycles = %d, want > 0", st.Cycles)
		}
		if st.MulUtilization <= 0 || st.MulUtilization > 1 {
			return fmt.Errorf("rtl_stats.mul_utilization = %v, want in (0, 1]", st.MulUtilization)
		}
		if st.AddUtilization <= 0 || st.AddUtilization > 1 {
			return fmt.Errorf("rtl_stats.add_utilization = %v, want in (0, 1]", st.AddUtilization)
		}
		if st.ForwardedReads == nil {
			return fmt.Errorf("rtl_stats.forwarded_reads missing")
		}
		if st.ElidedWrites == nil {
			return fmt.Errorf("rtl_stats.elided_writes missing")
		}
	}
	return nil
}

// checkThroughput validates the batch-engine experiment: every point
// must report a positive rate for a positive worker count, carry the
// advertised number of scalar multiplications, and have passed the
// functional-model oracle check.
func checkThroughput(raw json.RawMessage) error {
	var tp throughputExp
	if err := json.Unmarshal(raw, &tp); err != nil {
		return fmt.Errorf("throughput: parse: %w", err)
	}
	if len(tp.Points) == 0 {
		return fmt.Errorf("throughput: no points")
	}
	if tp.SMsPerPoint <= 0 {
		return fmt.Errorf("throughput: sms_per_point = %d, want > 0", tp.SMsPerPoint)
	}
	if !tp.VerifiedAll {
		return fmt.Errorf("throughput: verified_all = false")
	}
	for i, p := range tp.Points {
		if p.Workers < 1 {
			return fmt.Errorf("throughput point %d: workers = %d, want >= 1", i, p.Workers)
		}
		if p.SMs != tp.SMsPerPoint {
			return fmt.Errorf("throughput point %d: sms = %d, want %d", i, p.SMs, tp.SMsPerPoint)
		}
		if p.SMPerSec <= 0 {
			return fmt.Errorf("throughput point %d: sm_per_sec = %v, want > 0", i, p.SMPerSec)
		}
		if p.Speedup <= 0 {
			return fmt.Errorf("throughput point %d: speedup = %v, want > 0", i, p.Speedup)
		}
		if !p.OracleOK {
			return fmt.Errorf("throughput point %d: oracle_ok = false", i)
		}
	}
	return nil
}
