// Command benchcheck validates a fourq-bench -json report. It is the CI
// smoke test for the machine-readable benchmark output: it asserts the
// document parses, carries the expected schema, and that the latency
// experiment recorded a real RTL run (positive cycle count, per-unit
// utilization, and forwarding/elision counters).
//
//	go run ./cmd/fourq-bench -exp latency -json /tmp/bench.json
//	go run ./scripts/benchcheck /tmp/bench.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <bench.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	if err := check(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// report mirrors the subset of the fourq-bench/v1 schema the check
// inspects.
type report struct {
	Schema      string `json:"schema"`
	Experiments map[string]struct {
		RTLStats *rtlStats `json:"rtl_stats"`
	} `json:"experiments"`
}

type rtlStats struct {
	Cycles         int     `json:"cycles"`
	MulUtilization float64 `json:"mul_utilization"`
	AddUtilization float64 `json:"add_utilization"`
	ForwardedReads *int    `json:"forwarded_reads"`
	ElidedWrites   *int    `json:"elided_writes"`
}

func check(data []byte) error {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if r.Schema != "fourq-bench/v1" {
		return fmt.Errorf("schema = %q, want fourq-bench/v1", r.Schema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments in report")
	}
	st := (*rtlStats)(nil)
	for _, e := range r.Experiments {
		if e.RTLStats != nil {
			st = e.RTLStats
			break
		}
	}
	if st == nil {
		return fmt.Errorf("no experiment carries rtl_stats (run -exp latency or -exp profile)")
	}
	if st.Cycles <= 0 {
		return fmt.Errorf("rtl_stats.cycles = %d, want > 0", st.Cycles)
	}
	if st.MulUtilization <= 0 || st.MulUtilization > 1 {
		return fmt.Errorf("rtl_stats.mul_utilization = %v, want in (0, 1]", st.MulUtilization)
	}
	if st.AddUtilization <= 0 || st.AddUtilization > 1 {
		return fmt.Errorf("rtl_stats.add_utilization = %v, want in (0, 1]", st.AddUtilization)
	}
	if st.ForwardedReads == nil {
		return fmt.Errorf("rtl_stats.forwarded_reads missing")
	}
	if st.ElidedWrites == nil {
		return fmt.Errorf("rtl_stats.elided_writes missing")
	}
	return nil
}
