// Command promlint validates a Prometheus text exposition (format
// 0.0.4) file, as written by telemetry.WritePrometheus and served on
// /metrics. It is the CI lint for the scrape surface: every sample line
// must parse (metric name charset, label syntax, float value including
// the spelled-out +Inf/-Inf/NaN), every sample must be preceded by
// exactly one # TYPE declaration of a known type, counters must be
// non-negative, histograms must expose cumulative non-decreasing
// buckets ending in a mandatory +Inf bucket that equals _count, plus
// _sum and _count samples, and no sample may appear twice.
//
//	go run ./cmd/fourq-sign -metrics /tmp/metrics.prom
//	go run ./scripts/promlint /tmp/metrics.prom
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promlint <metrics.prom>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	if err := check(data); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// sampleRE splits one sample line into name, optional {labels}, value.
var sampleRE = regexp.MustCompile(`^([^{\s]+)(\{[^}]*\})?\s+(\S+)$`)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseValue accepts what the exposition format does: Go float syntax
// plus the spelled-out specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `{k1="v1",k2="v2"}` (no escaped quotes — the
// repo's emitter never produces them, and the lint is strict).
func parseLabels(s string) (map[string]string, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	labels := map[string]string{}
	if body == "" {
		return labels, nil
	}
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("label pair %q has no '='", pair)
		}
		if !nameRE.MatchString(k) {
			return nil, fmt.Errorf("bad label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' || strings.ContainsAny(v[1:len(v)-1], `"\`) {
			return nil, fmt.Errorf("label value %s is not a plain quoted string", v)
		}
		if _, dup := labels[k]; dup {
			return nil, fmt.Errorf("duplicate label %q", k)
		}
		labels[k] = v[1 : len(v)-1]
	}
	return labels, nil
}

// sampleKey identifies a sample for duplicate detection: name plus the
// sorted label set.
func sampleKey(s sample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, `{%s=%q}`, k, s.labels[k])
	}
	return b.String()
}

// baseName maps a sample name to the metric it belongs to: histogram
// series (_bucket/_sum/_count) roll up to their declared base metric,
// everything else is its own base.
func baseName(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func check(data []byte) error {
	types := map[string]string{}     // metric -> declared type
	seen := map[string]int{}         // sample key -> first line
	samples := map[string][]sample{} // base metric -> samples in order
	for i, raw := range strings.Split(string(data), "\n") {
		n := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", n, line)
				}
				name, typ := fields[2], fields[3]
				if !nameRE.MatchString(name) {
					return fmt.Errorf("line %d: bad metric name %q in TYPE", n, name)
				}
				if !validTypes[typ] {
					return fmt.Errorf("line %d: unknown metric type %q", n, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", n, name)
				}
				if len(samples[name]) > 0 {
					return fmt.Errorf("line %d: TYPE for %q after its samples", n, name)
				}
				types[name] = typ
			}
			continue // HELP and free comments pass through
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample %q", n, line)
		}
		s := sample{name: m[1], line: n}
		if !nameRE.MatchString(s.name) {
			return fmt.Errorf("line %d: bad metric name %q", n, s.name)
		}
		var err error
		if s.labels, err = parseLabels(m[2]); m[2] != "" && err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		if s.value, err = parseValue(m[3]); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", n, m[3])
		}
		base := baseName(s.name, types)
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", n, s.name)
		}
		key := sampleKey(s)
		if first, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate sample %s (first at line %d)", n, key, first)
		}
		seen[key] = n
		samples[base] = append(samples[base], s)
	}

	names := make([]string, 0, len(types))
	for name := range types {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		if len(ss) == 0 {
			return fmt.Errorf("metric %q: TYPE declared but no samples", name)
		}
		switch types[name] {
		case "counter":
			for _, s := range ss {
				if s.value < 0 {
					return fmt.Errorf("line %d: counter %q is negative (%v)", s.line, name, s.value)
				}
			}
		case "histogram":
			if err := checkHistogram(name, ss); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkHistogram enforces the well-formedness of one histogram family:
// cumulative non-decreasing buckets in increasing le order, a final
// +Inf bucket equal to _count, and the _sum/_count pair present.
func checkHistogram(name string, ss []sample) error {
	var buckets []sample
	var sum, count *sample
	for i := range ss {
		s := ss[i]
		switch s.name {
		case name + "_bucket":
			if _, ok := s.labels["le"]; !ok {
				return fmt.Errorf("line %d: %s without an le label", s.line, s.name)
			}
			buckets = append(buckets, s)
		case name + "_sum":
			sum = &ss[i]
		case name + "_count":
			count = &ss[i]
		default:
			return fmt.Errorf("line %d: unexpected histogram series %q", s.line, s.name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("histogram %q has no buckets", name)
	}
	if sum == nil || count == nil {
		return fmt.Errorf("histogram %q is missing _sum or _count", name)
	}
	prevLe := math.Inf(-1)
	prev := -1.0
	for _, b := range buckets {
		le, err := parseValue(b.labels["le"])
		if err != nil || math.IsNaN(le) {
			return fmt.Errorf("line %d: bad le %q", b.line, b.labels["le"])
		}
		if le <= prevLe {
			return fmt.Errorf("line %d: bucket le %v not increasing (previous %v)", b.line, le, prevLe)
		}
		if b.value < prev {
			return fmt.Errorf("line %d: bucket counts not cumulative (%v after %v)", b.line, b.value, prev)
		}
		if b.value < 0 || b.value != math.Trunc(b.value) {
			return fmt.Errorf("line %d: bucket count %v is not a non-negative integer", b.line, b.value)
		}
		prevLe, prev = le, b.value
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(prevLe, +1) {
		return fmt.Errorf("histogram %q is missing the +Inf bucket", name)
	}
	if last.value != count.value {
		return fmt.Errorf("histogram %q: +Inf bucket (%v) != _count (%v)", name, last.value, count.value)
	}
	return nil
}
