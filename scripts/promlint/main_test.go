package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// expo builds a real exposition through the production writer, so the
// lint and the emitter are tested against each other.
func expo(t *testing.T) string {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("engine.submitted").Add(7)
	reg.Gauge("engine.queue_depth").Set(1.5)
	h := reg.Histogram("engine.latency_seconds", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	reg.Histogram("engine.boundless").Observe(2)
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCheckAcceptsWritePrometheusOutput(t *testing.T) {
	if err := check([]byte(expo(t))); err != nil {
		t.Fatalf("lint rejects the production emitter's output: %v", err)
	}
}

func TestCheckAcceptsCommentsAndBlankLines(t *testing.T) {
	doc := "# HELP x something\n# a free comment\n\n# TYPE x counter\nx 1\n"
	if err := check([]byte(doc)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"sample without TYPE", "engine_submitted 5\n", "no preceding TYPE"},
		{"TYPE after samples", "# TYPE x counter\nx 1\n# TYPE x counter\n", "duplicate TYPE"},
		{"unknown type", "# TYPE x sparkline\nx 1\n", "unknown metric type"},
		{"bad name", "# TYPE 9lives counter\n9lives 1\n", "bad metric name"},
		{"dotted name", "# TYPE engine.submitted counter\nengine.submitted 5\n", "bad metric name"},
		{"bad value", "# TYPE x gauge\nx fast\n", "bad sample value"},
		{"negative counter", "# TYPE x counter\nx -3\n", "negative"},
		{"duplicate sample", "# TYPE x gauge\nx 1\nx 2\n", "duplicate sample"},
		{"bad label syntax", "# TYPE h histogram\nh_bucket{le=0.1} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.05\nh_count 1\n", "quoted string"},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 4\n",
			"not cumulative",
		},
		{
			"unsorted le",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"not increasing",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
			"_count",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"_sum",
		},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "le label"},
		{"declared but empty", "# TYPE x counter\n", "no samples"},
	}
	for _, tc := range cases {
		err := check([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: lint accepted the document", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
