// Sidechannel: a toy differential-power-analysis experiment on the RTL
// model. The FSM executes the identical instruction schedule for every
// scalar (no timing leakage -- verified), but the switching activity of
// the datapath is data-dependent: grouping power traces by a recoded
// scalar digit shows measurably different mean activity per group, the
// signal a DPA attacker would exploit and the reason real deployments add
// masking or re-randomization on top of constant-time schedules.
package main

import (
	"fmt"
	"log"
	"math"
	mrand "math/rand"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	rng := mrand.New(mrand.NewSource(1234))
	randScalar := func() scalar.Scalar {
		var s scalar.Scalar
		for i := range s {
			s[i] = rng.Uint64()
		}
		return s
	}

	// Build and schedule the double-and-add block once.
	base := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(base))
	acc := curve.ScalarMultBinary(randScalar(), base)
	tr, err := trace.BuildDblAdd(randScalar(), acc, table)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodList})
	if err != nil {
		log.Fatal(err)
	}

	inputs := map[string]fp2.Element{
		"Q.x": acc.X, "Q.y": acc.Y, "Q.z": acc.Z, "Q.ta": acc.Ta, "Q.tb": acc.Tb,
	}
	names := [4]string{"x+y", "y-x", "2z", "2dt"}
	for u := 0; u < 8; u++ {
		vals := [4]fp2.Element{table[u].XplusY, table[u].YminusX, table[u].Z2, table[u].T2d}
		for ci, n := range names {
			inputs[fmt.Sprintf("T%d.%s", u, n)] = vals[ci]
		}
	}

	// Countermeasure variant: re-randomize the table's projective
	// representation per trace (randomized projective coordinates).
	randomizedInputs := func() map[string]fp2.Element {
		lambda := curve.ScalarMultBinary(randScalar(), base).Z // random nonzero
		in := map[string]fp2.Element{
			"Q.x": acc.X, "Q.y": acc.Y, "Q.z": acc.Z, "Q.ta": acc.Ta, "Q.tb": acc.Tb,
		}
		for u := 0; u < 8; u++ {
			rc := table[u].Rerandomize(lambda)
			vals := [4]fp2.Element{rc.XplusY, rc.YminusX, rc.Z2, rc.T2d}
			for ci, n := range names {
				in[fmt.Sprintf("T%d.%s", u, n)] = vals[ci]
			}
		}
		return in
	}

	const traces = 400
	var (
		cyclesSeen = map[int]bool{}
		groupSum   [2][8]float64
		groupSqSum [8]float64
		groupCount [2][8]int
	)
	for i := 0; i < traces; i++ {
		k := randScalar()
		dec := scalar.Decompose(k)
		rec := scalar.Recode(dec)
		idx := int(rec.Index[0])
		for variant := 0; variant < 2; variant++ {
			in := inputs
			if variant == 1 {
				in = randomizedInputs()
			}
			act := rtl.NewActivity(r.Program.Makespan)
			out, st, err := rtl.Run(r.Program, rtl.RunInput{
				Inputs: in, Rec: rec, Corrected: dec.Corrected, Observer: act.Observe,
			})
			if err != nil {
				log.Fatal(err)
			}
			_ = out
			cyclesSeen[st.Cycles] = true
			groupSum[variant][idx] += float64(act.Toggles)
			groupCount[variant][idx]++
			if variant == 0 {
				groupSqSum[idx] += float64(act.Toggles) * float64(act.Toggles)
			}
		}
	}

	fmt.Printf("collected %d power traces of the DBLADD block\n\n", traces)
	fmt.Printf("timing side channel: %d distinct cycle counts observed", len(cyclesSeen))
	if len(cyclesSeen) == 1 {
		fmt.Println("  -> constant-time schedule, no timing leakage")
	} else {
		fmt.Println("  -> TIMING LEAKS!")
	}

	fmt.Println("\npower side channel: mean output-bus toggles grouped by table index v_0:")
	spreads := [2]float64{}
	for variant := 0; variant < 2; variant++ {
		grand, count := 0.0, 0
		for i := 0; i < 8; i++ {
			grand += groupSum[variant][i]
			count += groupCount[variant][i]
		}
		grandMean := grand / float64(count)
		spread := 0.0
		if variant == 0 {
			fmt.Println("  baseline (fixed table representation):")
		} else {
			fmt.Println("  with randomized projective coordinates (countermeasure):")
		}
		for i := 0; i < 8; i++ {
			if groupCount[variant][i] == 0 {
				continue
			}
			mean := groupSum[variant][i] / float64(groupCount[variant][i])
			dev := mean - grandMean
			if variant == 0 {
				sd := math.Sqrt(groupSqSum[i]/float64(groupCount[variant][i]) - mean*mean)
				fmt.Printf("    v0=%d: n=%3d  mean=%8.1f  sd=%7.1f  vs grand mean %+7.1f\n",
					i, groupCount[variant][i], mean, sd, dev)
			} else {
				fmt.Printf("    v0=%d: n=%3d  mean=%8.1f  vs grand mean %+7.1f\n",
					i, groupCount[variant][i], mean, dev)
			}
			spread += math.Abs(dev)
		}
		spreads[variant] = spread / 8
		fmt.Printf("  mean |group deviation| = %.1f toggles (grand mean %.1f)\n\n", spread/8, grandMean)
	}
	fmt.Println("-> the schedule leaks nothing through time; the fixed table leaks its")
	fmt.Printf("   selected entry through data switching (|dev| %.1f), and per-trace\n", spreads[0])
	fmt.Printf("   projective re-randomization flattens the groups (|dev| %.1f).\n", spreads[1])
}
