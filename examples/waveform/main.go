// Waveform: dump a GTKWave-viewable VCD of the Table I double-and-add
// block executing on the datapath model, and print its per-cycle
// switching activity (the first-order dynamic-power proxy). Shows the
// observability hooks of the RTL model.
package main

import (
	"fmt"
	"log"
	mrand "math/rand"
	"os"
	"strings"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	rng := mrand.New(mrand.NewSource(7))
	randScalar := func() scalar.Scalar {
		var s scalar.Scalar
		for i := range s {
			s[i] = rng.Uint64()
		}
		return s
	}

	// Build and schedule the block.
	base := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(base))
	acc := curve.ScalarMultBinary(randScalar(), base)
	k := randScalar()
	tr, err := trace.BuildDblAdd(k, acc, table)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodBnB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled DBLADD block: %d ops in %d cycles (optimal: %v)\n",
		len(tr.Graph.Ops), r.Makespan, r.Optimal)

	// Execute with both a VCD dump and an activity counter attached.
	in := rtl.RunInput{Inputs: mkInputs(acc, table)}
	dec := scalar.Decompose(k)
	in.Rec = scalar.Recode(dec)
	in.Corrected = dec.Corrected
	act := rtl.NewActivity(r.Program.Makespan)
	in.Observer = act.Observe

	f, err := os.Create("dbladd.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, _, err := rtl.WriteVCD(r.Program, in, f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote dbladd.vcd (view with GTKWave)")

	// ASCII activity plot.
	fmt.Printf("\nswitching activity (output-bus toggles per cycle, total %d):\n", act.Toggles)
	max := 1
	for _, c := range act.PerCycle {
		if c > max {
			max = c
		}
	}
	for cyc, c := range act.PerCycle {
		fmt.Printf("cycle %2d |%s %d\n", cyc, strings.Repeat("*", 40*c/max), c)
	}
	fmt.Printf("mean %.1f toggles/cycle\n", act.MeanTogglesPerCycle())
}

func mkInputs(acc curve.Point, table [8]curve.Cached) map[string]fp2.Element {
	in := map[string]fp2.Element{
		"Q.x": acc.X, "Q.y": acc.Y, "Q.z": acc.Z, "Q.ta": acc.Ta, "Q.tb": acc.Tb,
	}
	names := [4]string{"x+y", "y-x", "2z", "2dt"}
	for u := 0; u < 8; u++ {
		vals := [4]fp2.Element{table[u].XplusY, table[u].YminusX, table[u].Z2, table[u].T2d}
		for ci, n := range names {
			in[fmt.Sprintf("T%d.%s", u, n)] = vals[ci]
		}
	}
	return in
}
