// Quickstart: the FourQ library in six steps -- key generation, scalar
// multiplication (functional and on the cycle-accurate ASIC model),
// signing and verification.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/ecdsa"
	"repro/internal/scalar"
)

func main() {
	// 1. A random scalar and the classic double-and-add reference.
	k, err := scalar.Random(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	ref := curve.ScalarMultBinary(k, curve.Generator())

	// 2. The paper's Algorithm 1: decomposed, table-driven scalar mult.
	fast := curve.ScalarMult(k, curve.Generator())
	fmt.Println("Algorithm 1 matches double-and-add:", fast.Equal(ref))

	// 3. Point encoding round trip.
	enc := fast.Bytes()
	dec, err := curve.FromBytes(enc[:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compressed encoding round-trips:   ", dec.Equal(fast))

	// 4. The same multiplication on the modelled ASIC.
	proc, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	hw, stats, err := proc.ScalarMult(k)
	if err != nil {
		log.Fatal(err)
	}
	want := fast.Affine()
	fmt.Println("cycle-accurate RTL model agrees:   ", hw.X.Equal(want.X) && hw.Y.Equal(want.Y))
	fmt.Printf("  (%d cycles, %d multiplications issued)\n", stats.Cycles, stats.MulIssues)

	// 5. ECDSA over FourQ.
	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello, FourQ")
	sig, err := ecdsa.Sign(rand.Reader, priv, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signature verifies:                ", ecdsa.Verify(&priv.Public, msg, sig))

	// 6. What the silicon would do.
	m, err := proc.PowerModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled chip @1.2V: %.1f us and %.2f uJ per scalar multiplication\n",
		m.Latency(1.2)*1e6, m.EnergyPerSM(1.2)*1e6)
}
