// ITS traffic scenario from the paper's introduction: a roadside unit in
// dense traffic must verify a flood of signed vehicle messages (the paper
// cites ~1000 messages/s at 6 Mb/s channel bandwidth, growing with 5G).
// This example sizes the modelled FourQ ASIC against that load across
// supply voltages and finds the lowest-power operating point that still
// meets the deadline.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ecdsa"
	"repro/internal/its"
)

// message is a signed vehicle-to-infrastructure report.
type message struct {
	payload []byte
	sig     ecdsa.Signature
	pub     *ecdsa.PublicKey
}

func main() {
	// A small fleet of vehicles, each with its own key.
	const vehicles = 5
	const msgsPerVehicle = 4
	var msgs []message
	for v := 0; v < vehicles; v++ {
		priv, err := ecdsa.GenerateKey(rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < msgsPerVehicle; i++ {
			payload := []byte(fmt.Sprintf("vehicle %d: pos=(%d,%d) speed=%d", v, 100*v+i, 200-v, 40+i))
			sig, err := ecdsa.Sign(rand.Reader, priv, payload)
			if err != nil {
				log.Fatal(err)
			}
			msgs = append(msgs, message{payload, sig, &priv.Public})
		}
	}

	// Functional verification of the whole flood.
	okCount := 0
	for _, m := range msgs {
		if ecdsa.Verify(m.pub, m.payload, m.sig) {
			okCount++
		}
	}
	fmt.Printf("verified %d/%d vehicle messages functionally\n\n", okCount, len(msgs))

	// Size the ASIC against the load. One verification needs a
	// double-scalar multiplication, which we charge as 2 SMs.
	proc, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pm, err := proc.PowerModel()
	if err != nil {
		log.Fatal(err)
	}

	loads := []float64{1000, 10000, 40000} // verifications per second
	fmt.Printf("%-8s %-14s %-18s %s\n", "VDD [V]", "verify/s", "power budget", "meets 1000/s? 10k/s? 40k/s?")
	for v := 1.20; v >= 0.319; v -= 0.08 {
		rate := pm.Throughput(v) / 2
		// Average power at full utilization: energy per verify x rate.
		watts := 2 * pm.EnergyPerSM(v) * rate
		marks := ""
		for _, l := range loads {
			if rate >= l {
				marks += " yes"
			} else {
				marks += "  no"
			}
		}
		fmt.Printf("%-8.2f %-14.0f %8.1f uW     %s\n", v, rate, watts*1e6, marks)
	}

	// Lowest voltage meeting the paper's 1000 msg/s scenario.
	lo, hi := 0.32, 1.20
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if pm.Throughput(mid)/2 >= 1000 {
			hi = mid
		} else {
			lo = mid
		}
	}
	fmt.Printf("\nlowest supply meeting 1000 verifications/s: %.3f V (%.3f uJ per verification)\n",
		hi, 2*pm.EnergyPerSM(hi)*1e6)

	// Queueing view: Poisson arrivals at the paper's 1000 msg/s against
	// the deterministic verification latency -- what do waiting times
	// look like near the minimum viable voltage?
	fmt.Println("\nqueueing simulation (M/D/1, 1000 msg/s, 60 s horizon):")
	fmt.Printf("%-8s %-8s %-14s %-14s %-12s %s\n", "VDD [V]", "util", "mean lat [us]", "p99 lat [us]", "max [us]", "theory wait [us]")
	for _, v := range []float64{1.20, 0.80, hi * 1.10, hi * 1.02} {
		service := 2 * pm.Latency(v)
		r, err := its.Simulate(its.Config{
			ArrivalRate: 1000, ServiceTime: service, Horizon: 60, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		tw, _ := its.TheoreticalMeanWait(1000, service)
		fmt.Printf("%-8.3f %-8.2f %-14.1f %-14.1f %-12.1f %.1f\n",
			v, r.Utilization, r.MeanSojourn*1e6, r.P99Sojourn*1e6, r.MaxSojourn*1e6, tw*1e6)
	}
	fmt.Println("(the latency distribution collapses once utilization leaves the knee,")
	fmt.Println(" so the chip can run far below 1.2 V and still serve dense traffic)")
}
