// Custom schedule: the automated flow applied to a computation that is
// not scalar multiplication. The paper's pipeline (record trace ->
// job-shop -> control signals -> datapath) is generic over any GF(p^2)
// dataflow; here we schedule a Horner evaluation of a degree-8
// polynomial and run it on the same RTL model, comparing the exact solver
// against the list heuristic.
package main

import (
	"fmt"
	"log"
	mrand "math/rand"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	rng := mrand.New(mrand.NewSource(2024))
	randFp2 := func() fp2.Element {
		return fp2.New(
			fp.SetLimbs(rng.Uint64(), rng.Uint64()),
			fp.SetLimbs(rng.Uint64(), rng.Uint64()),
		)
	}

	// Record the trace: p(x) = sum c_i x^i by Horner, plus x^2+conj(x)
	// side products to give the adder some work.
	b := trace.NewBuilder()
	x := b.Input("x", randFp2())
	coeffs := make([]trace.Val, 9)
	for i := range coeffs {
		coeffs[i] = b.Input(fmt.Sprintf("c%d", i), randFp2())
	}
	acc := coeffs[8]
	for i := 7; i >= 0; i-- {
		acc = b.Mul(acc, x, fmt.Sprintf("horner%d.mul", i))
		acc = b.Add(acc, coeffs[i], fmt.Sprintf("horner%d.add", i))
	}
	aux := b.Add(b.Sqr(x, "x2"), b.Conj(x, "xbar"), "aux")
	out := b.Add(acc, aux, "out")
	b.Output("p", out)
	g := b.Graph()
	fmt.Printf("recorded %d ops (%d mult, %d add/sub)\n", len(g.Ops), g.NumMuls(), g.NumAdds())

	// Schedule with both solvers.
	res := sched.DefaultResources()
	list, err := sched.Schedule(g, res, sched.Options{Method: sched.MethodList})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := sched.Schedule(g, res, sched.Options{Method: sched.MethodBnB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list schedule:  %d cycles\n", list.Makespan)
	fmt.Printf("exact schedule: %d cycles (optimal proven: %v)\n", exact.Makespan, exact.Optimal)

	// Execute the optimal program on the datapath model and check it
	// against the recorded golden value.
	inputs := map[string]fp2.Element{}
	for name, id := range g.Inputs {
		inputs[name] = g.Concrete[id]
	}
	outVals, stats, err := rtl.Run(exact.Program, rtl.RunInput{Inputs: inputs})
	if err != nil {
		log.Fatal(err)
	}
	golden := g.Concrete[g.Outputs["p"]]
	fmt.Println("RTL result matches golden evaluation:", outVals["p"].Equal(golden))
	fmt.Printf("datapath: %d register reads, %d forwarded operands\n", stats.RegReads, stats.ForwardedReads)
}
