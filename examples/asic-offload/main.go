// ASIC offload: an ECDSA signature where the scalar multiplication --
// the 94-99% of signing time the paper quotes -- executes on the
// cycle-accurate processor model instead of the software library. The
// host keeps the (cheap) hash and mod-N arithmetic; the "chip" computes
// [k]G. The resulting signature verifies with the ordinary software
// verifier, demonstrating drop-in offload correctness.
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"log"
	"math/big"

	"repro/internal/core"
	"repro/internal/ecdsa"
	"repro/internal/scalar"
)

func main() {
	fmt.Println("building the processor model...")
	proc, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("ITS message: lane closure ahead, reroute via exit 12")

	// ECDSA signing with the SM offloaded to the modelled chip.
	e := sha256.Sum256(msg)
	z := scalar.FromBig(new(big.Int).Rsh(new(big.Int).SetBytes(e[:]), uint(256-scalar.Order().BitLen())))
	var sig ecdsa.Signature
	for {
		k, err := scalar.Random(rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		// ---- the offloaded part: [k]G on the RTL model ----
		pt, stats, err := proc.ScalarMult(k)
		if err != nil {
			log.Fatal(err)
		}
		xb := pt.X.Bytes()
		rInt, _ := scalar.FromBytes(xb[:])
		r := scalar.ModN(rInt)
		if r.IsZero() {
			continue
		}
		kinv, err := scalar.InvModN(k)
		if err != nil {
			continue
		}
		s := scalar.MulModN(kinv, scalar.AddModN(z, scalar.MulModN(r, priv.D)))
		if s.IsZero() {
			continue
		}
		sig = ecdsa.Signature{R: r, S: s}
		fmt.Printf("chip computed [k]G in %d cycles (%d multiplications issued)\n",
			stats.Cycles, stats.MulIssues)
		break
	}

	// The plain software verifier accepts the chip-assisted signature.
	fmt.Println("software verifier accepts chip-assisted signature:",
		ecdsa.Verify(&priv.Public, msg, sig))

	m, err := proc.PowerModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 1.2 V the chip signs %.0f msg/s at %.2f uJ per signature's SM\n",
		m.Throughput(1.2), m.EnergyPerSM(1.2)*1e6)
}
