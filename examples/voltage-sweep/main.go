// Voltage sweep: Fig. 4 of the paper as a programmatic experiment.
// Sweeps the supply voltage, prints frequency / latency / energy, renders
// a small ASCII plot of the energy curve and locates the minimum-energy
// operating point.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/core"
)

func main() {
	proc, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fig, err := proc.Figure4(23)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fig. 4 reproduction (%d cycles per scalar multiplication)\n\n", fig.Cycles)
	fmt.Printf("%-8s %-12s %-14s %s\n", "VDD [V]", "Fmax [MHz]", "Latency [us]", "Energy [uJ]")
	for _, p := range fig.Points {
		fmt.Printf("%-8.2f %-12.2f %-14.1f %.3f\n", p.V, p.FmaxHz/1e6, p.LatencyS*1e6, p.EnergyJ*1e6)
	}

	// ASCII plot of energy vs voltage (log-ish scale not needed; the
	// curve is gentle on the measured range).
	fmt.Println("\nenergy per SM vs supply voltage:")
	maxE := 0.0
	for _, p := range fig.Points {
		maxE = math.Max(maxE, p.EnergyJ)
	}
	for _, p := range fig.Points {
		bar := int(48 * p.EnergyJ / maxE)
		fmt.Printf("%5.2f V |%s %.3f uJ\n", p.V, strings.Repeat("#", bar), p.EnergyJ*1e6)
	}

	fmt.Printf("\nminimum-energy operating point: %.3f uJ/SM at %.2f V\n", fig.MinEnergyJ*1e6, fig.MinEnergyV)
	fmt.Println("paper's measured minimum:       0.327 uJ/SM at 0.32 V")
}
