package c25519

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/hex"
	"testing"
)

// RFC 7748 Section 5.2 test vector 1.
func TestRFC7748Vector(t *testing.T) {
	scalar, _ := hex.DecodeString("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
	point, _ := hex.DecodeString("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
	want, _ := hex.DecodeString("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
	var s, p [32]byte
	copy(s[:], scalar)
	copy(p[:], point)
	got, err := X25519(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], want) {
		t.Fatalf("X25519 = %x, want %x", got, want)
	}
}

func TestAgainstStdlibECDH(t *testing.T) {
	curve := ecdh.X25519()
	for i := 0; i < 6; i++ {
		priv, err := curve.GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		var s, base [32]byte
		copy(s[:], priv.Bytes())
		base[0] = 9
		got, err := X25519(s, base)
		if err != nil {
			t.Fatal(err)
		}
		want := priv.PublicKey().Bytes()
		if !bytes.Equal(got[:], want) {
			t.Fatalf("trial %d: public key mismatch", i)
		}
	}
}

func TestDiffieHellmanAgreement(t *testing.T) {
	var a, b, base [32]byte
	rand.Read(a[:])
	rand.Read(b[:])
	base[0] = 9
	pa, err := X25519(a, base)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := X25519(b, base)
	if err != nil {
		t.Fatal(err)
	}
	sab, err := X25519(a, pb)
	if err != nil {
		t.Fatal(err)
	}
	sba, err := X25519(b, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sab[:], sba[:]) {
		t.Fatal("DH shared secrets disagree")
	}
}

func TestOpCountsAndCycleModel(t *testing.T) {
	var s, base [32]byte
	rand.Read(s[:])
	base[0] = 9
	k := ClampScalar(s)
	res, err := ScalarMult(k, BasePointU)
	if err != nil {
		t.Fatal(err)
	}
	// 255 ladder steps x (5M + 4S) = 2295 mult-class ops.
	if res.Ops.Mults() != 255*9 {
		t.Errorf("mult count %d, want %d", res.Ops.Mults(), 255*9)
	}
	if res.Ops.Mul121665 != 255 {
		t.Errorf("a24 scalings %d, want 255", res.Ops.Mul121665)
	}
	cycles := DefaultCycleModel().Cycles(res.Ops)
	if cycles < 5000 || cycles > 12000 {
		t.Errorf("cycle estimate %d outside plausible band", cycles)
	}
}

func TestClamping(t *testing.T) {
	var s [32]byte
	for i := range s {
		s[i] = 0xFF
	}
	k := ClampScalar(s)
	if k.Bit(0) != 0 || k.Bit(1) != 0 || k.Bit(2) != 0 {
		t.Error("low bits not cleared")
	}
	if k.Bit(255) != 0 || k.Bit(254) != 1 {
		t.Error("high bits not clamped")
	}
}

func BenchmarkX25519(b *testing.B) {
	var s, base [32]byte
	rand.Read(s[:])
	base[0] = 9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := X25519(s, base); err != nil {
			b.Fatal(err)
		}
	}
}
