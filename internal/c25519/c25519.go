// Package c25519 implements Curve25519 (X25519) scalar multiplication by
// the Montgomery ladder: the second prior-art baseline of the paper's
// Table II (row [22]) and of the intro's "FourQ is ~2x faster than
// Curve25519" comparison.
//
// Field arithmetic runs on 4x64-bit limbs in Montgomery form (package
// mont); as with the P-256 baseline, hardware comparisons use the
// operation-count cycle model.
package c25519

import (
	"errors"
	"math/big"

	"repro/internal/mont"
)

// P is the field prime 2^255 - 19.
var P = func() *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	return p.Sub(p, big.NewInt(19))
}()

// pMod is the Montgomery context for the field prime.
var pMod = func() *mont.Modulus {
	var limbs mont.Elem
	v := new(big.Int).Set(P)
	for i := 0; i < 4; i++ {
		limbs[i] = new(big.Int).Rsh(v, uint(64*i)).Uint64()
	}
	m, err := mont.NewModulus(limbs)
	if err != nil {
		panic("c25519: " + err.Error())
	}
	return m
}()

// felem is a field element in Montgomery form.
type felem = mont.Elem

func feFromBig(v *big.Int) felem {
	var e mont.Elem
	red := new(big.Int).Mod(v, P)
	for i := 0; i < 4; i++ {
		e[i] = new(big.Int).Rsh(red, uint(64*i)).Uint64()
	}
	return pMod.ToMont(e)
}

func feToBig(e felem) *big.Int {
	v := new(big.Int)
	p := pMod.FromMont(e)
	for i := 3; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Add(v, new(big.Int).SetUint64(p[i]))
	}
	return v
}

// a24 = (486662 - 2) / 4, the ladder constant (Montgomery form).
var a24 = feFromBig(big.NewInt(121665))

var feOneM = pMod.One
var feZeroM = mont.Elem{}

// BasePointU is the standard base point u = 9.
var BasePointU = big.NewInt(9)

// OpCount tallies field operations.
type OpCount struct {
	Mul, Sqr, Mul121665, Add, Inv int
}

// Mults returns multiplier-class operations (the a24 scaling is small
// enough to fold into an addition tree, so it is not counted here).
func (c OpCount) Mults() int { return c.Mul + c.Sqr }

type fieldCtx struct{ ops OpCount }

func (f *fieldCtx) mul(a, b felem) felem {
	f.ops.Mul++
	return pMod.Mul(a, b)
}

func (f *fieldCtx) sqr(a felem) felem {
	f.ops.Sqr++
	return pMod.Mul(a, a)
}

func (f *fieldCtx) mul121665(a felem) felem {
	f.ops.Mul121665++
	return pMod.Mul(a, a24)
}

func (f *fieldCtx) add(a, b felem) felem {
	f.ops.Add++
	return pMod.Add(a, b)
}

func (f *fieldCtx) sub(a, b felem) felem {
	f.ops.Add++
	return pMod.Sub(a, b)
}

// ClampScalar applies the X25519 clamping to a 32-byte little-endian
// scalar, returning the effective integer.
func ClampScalar(k [32]byte) *big.Int {
	k[0] &= 248
	k[31] &= 127
	k[31] |= 64
	// little-endian decode
	v := new(big.Int)
	for i := 31; i >= 0; i-- {
		v.Lsh(v, 8)
		v.Add(v, big.NewInt(int64(k[i])))
	}
	return v
}

// Result carries the shared-secret u coordinate and the op tally.
type Result struct {
	U   *big.Int
	Ops OpCount
}

// errZero reports the all-zero output (low-order input point).
var errZero = errors.New("c25519: low-order point")

// ScalarMult computes the X25519 function: the u coordinate of [k]P for
// a clamped scalar k, by the constant-structure Montgomery ladder
// (255 steps of 5M + 4S + 1 small-constant multiply).
func ScalarMult(k *big.Int, u *big.Int) (*Result, error) {
	f := &fieldCtx{}
	x1 := feFromBig(u)
	x2, z2 := feOneM, feZeroM
	x3, z3 := x1, feOneM
	swap := uint(0)
	for t := 254; t >= 0; t-- {
		kt := k.Bit(t)
		swap ^= kt
		if swap == 1 {
			x2, x3 = x3, x2
			z2, z3 = z3, z2
		}
		swap = kt

		a := f.add(x2, z2)
		aa := f.sqr(a)
		b := f.sub(x2, z2)
		bb := f.sqr(b)
		e := f.sub(aa, bb)
		c := f.add(x3, z3)
		d := f.sub(x3, z3)
		da := f.mul(d, a)
		cb := f.mul(c, b)
		x3 = f.sqr(f.add(da, cb))
		z3 = f.mul(x1, f.sqr(f.sub(da, cb)))
		x2 = f.mul(aa, bb)
		z2 = f.mul(e, f.add(aa, f.mul121665(e)))
	}
	if swap == 1 {
		x2, x3 = x3, x2
		z2, z3 = z3, z2
	}
	_ = x3
	_ = z3
	f.ops.Inv++
	if mont.IsZero(pMod.FromMont(z2)) {
		return nil, errZero
	}
	out := feToBig(pMod.Mul(x2, pMod.InvFermat(z2)))
	return &Result{U: out, Ops: f.ops}, nil
}

// X25519 is the byte-oriented RFC 7748 function.
func X25519(scalar, point [32]byte) ([32]byte, error) {
	k := ClampScalar(scalar)
	// decode u little-endian with the top bit masked.
	point[31] &= 127
	u := new(big.Int)
	for i := 31; i >= 0; i-- {
		u.Lsh(u, 8)
		u.Add(u, big.NewInt(int64(point[i])))
	}
	res, err := ScalarMult(k, u)
	if err != nil {
		return [32]byte{}, err
	}
	var out [32]byte
	b := res.U.Bytes()
	for i := 0; i < len(b); i++ {
		out[i] = b[len(b)-1-i]
	}
	return out, nil
}

// CycleModel mirrors the same-silicon model used for P-256: each 255-bit
// modular multiplication composes from the 127-bit multiplier cores in
// MulIssueSlots issue cycles.
type CycleModel struct {
	MulIssueSlots int
	InvCycles     int
}

// DefaultCycleModel returns the comparison model.
func DefaultCycleModel() CycleModel {
	return CycleModel{MulIssueSlots: 3, InvCycles: 265 * 3}
}

// Cycles estimates the ladder's cycle count.
func (m CycleModel) Cycles(ops OpCount) int {
	return ops.Mults()*m.MulIssueSlots + ops.Inv*m.InvCycles
}
