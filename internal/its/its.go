// Package its models the paper's motivating workload (Section I): a
// roadside unit verifying a flood of signed vehicle messages. It provides
// a discrete-event simulation of the verification queue -- Poisson
// message arrivals served by the (deterministic-latency) cryptoprocessor
// -- so the throughput claims can be translated into the latency and
// loss figures a traffic engineer actually cares about.
//
// The model is M/D/1 (memoryless arrivals, deterministic service, one
// accelerator): the simulation is validated against the closed-form
// Pollaczek-Khinchine mean waiting time in the tests.
package its

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Config describes a verification-queue scenario.
type Config struct {
	// ArrivalRate is the mean message rate (messages/second, Poisson).
	ArrivalRate float64
	// ServiceTime is the deterministic verification latency (seconds),
	// e.g. two scalar-multiplication latencies at the chosen VDD.
	ServiceTime float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// QueueCap bounds the number of waiting messages (0 = unbounded);
	// arrivals finding a full queue are dropped (message loss).
	QueueCap int
	// Servers is the number of parallel accelerator cores (M/D/c);
	// 0 means 1.
	Servers int
	// Seed makes the simulation reproducible.
	Seed int64
}

// Result summarizes a simulation run.
type Result struct {
	Arrived, Served, Dropped int
	// Sojourn times (arrival to verification complete), seconds.
	MeanSojourn, MaxSojourn, P99Sojourn float64
	// MeanQueueWait is the time spent waiting before service starts.
	MeanQueueWait float64
	// Utilization is the fraction of the horizon the accelerator is busy.
	Utilization float64
	// LossRate is Dropped/Arrived.
	LossRate float64
}

// Simulate runs the discrete-event model.
func Simulate(cfg Config) (*Result, error) {
	if cfg.ArrivalRate <= 0 || cfg.ServiceTime <= 0 || cfg.Horizon <= 0 {
		return nil, errors.New("its: rates, service time and horizon must be positive")
	}
	servers := cfg.Servers
	if servers <= 0 {
		servers = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		t        float64 // arrival clock
		busy     float64
		sojourns []float64
		waits    []float64
		res      Result
		// completion times of queued-or-in-service messages, ascending;
		// used for the finite-queue occupancy check.
		completions []float64
	)
	freeAt := make([]float64, servers) // per-core next-free times
	for {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		if t > cfg.Horizon {
			break
		}
		res.Arrived++
		// Drop completed entries from the occupancy window.
		idx := sort.SearchFloat64s(completions, t)
		completions = completions[idx:]
		if cfg.QueueCap > 0 && len(completions) > cfg.QueueCap+servers-1 {
			res.Dropped++
			continue
		}
		// Earliest-free core serves next (FCFS across cores).
		core := 0
		for c := 1; c < servers; c++ {
			if freeAt[c] < freeAt[core] {
				core = c
			}
		}
		start := t
		if freeAt[core] > start {
			start = freeAt[core]
		}
		done := start + cfg.ServiceTime
		freeAt[core] = done
		busy += cfg.ServiceTime
		// Keep completions sorted (insertion point search).
		pos := sort.SearchFloat64s(completions, done)
		completions = append(completions, 0)
		copy(completions[pos+1:], completions[pos:])
		completions[pos] = done
		res.Served++
		sojourns = append(sojourns, done-t)
		waits = append(waits, start-t)
	}
	if res.Served > 0 {
		sort.Float64s(sojourns)
		var sum, wsum float64
		for _, s := range sojourns {
			sum += s
		}
		for _, w := range waits {
			wsum += w
		}
		res.MeanSojourn = sum / float64(res.Served)
		res.MeanQueueWait = wsum / float64(res.Served)
		res.MaxSojourn = sojourns[len(sojourns)-1]
		res.P99Sojourn = sojourns[int(math.Ceil(0.99*float64(len(sojourns))))-1]
	}
	res.Utilization = busy / (cfg.Horizon * float64(servers))
	if res.Arrived > 0 {
		res.LossRate = float64(res.Dropped) / float64(res.Arrived)
	}
	return &res, nil
}

// TheoreticalMeanWait returns the M/D/1 Pollaczek-Khinchine mean queueing
// delay rho/(2*mu*(1-rho)) for utilization rho < 1.
func TheoreticalMeanWait(arrivalRate, serviceTime float64) (float64, error) {
	rho := arrivalRate * serviceTime
	if rho >= 1 {
		return 0, errors.New("its: unstable queue (utilization >= 1)")
	}
	mu := 1 / serviceTime
	return rho / (2 * mu * (1 - rho)), nil
}

// MaxStableRate returns the largest Poisson arrival rate the accelerator
// sustains with utilization at most rho (e.g. 0.8 for headroom).
func MaxStableRate(serviceTime, rho float64) float64 {
	if serviceTime <= 0 {
		return 0
	}
	return rho / serviceTime
}
