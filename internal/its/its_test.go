package its

import (
	"math"
	"testing"
)

func TestSimulateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{ArrivalRate: 0, ServiceTime: 1, Horizon: 1},
		{ArrivalRate: 1, ServiceTime: 0, Horizon: 1},
		{ArrivalRate: 1, ServiceTime: 1, Horizon: 0},
	}
	for _, c := range bad {
		if _, err := Simulate(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestMatchesPollaczekKhinchine(t *testing.T) {
	// rho = 0.5: Wq = 0.5/(2*mu*0.5) = S/2... compare sim vs theory.
	cfg := Config{
		ArrivalRate: 500,
		ServiceTime: 0.001, // rho = 0.5
		Horizon:     2000,
		Seed:        99,
	}
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TheoreticalMeanWait(cfg.ArrivalRate, cfg.ServiceTime)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MeanQueueWait-want)/want > 0.05 {
		t.Errorf("mean queue wait %.6f vs theory %.6f (>5%% off)", r.MeanQueueWait, want)
	}
	// Utilization approximates rho.
	if math.Abs(r.Utilization-0.5) > 0.02 {
		t.Errorf("utilization %.3f, want ~0.5", r.Utilization)
	}
	// Sojourn = wait + service.
	if math.Abs(r.MeanSojourn-(r.MeanQueueWait+cfg.ServiceTime)) > 1e-9 {
		t.Error("sojourn decomposition broken")
	}
}

func TestHighLoadQueueGrows(t *testing.T) {
	low, err := Simulate(Config{ArrivalRate: 100, ServiceTime: 0.001, Horizon: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Simulate(Config{ArrivalRate: 950, ServiceTime: 0.001, Horizon: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if high.MeanSojourn <= low.MeanSojourn {
		t.Error("heavier load should increase latency")
	}
	if high.P99Sojourn < high.MeanSojourn {
		t.Error("p99 below mean")
	}
	if high.MaxSojourn < high.P99Sojourn {
		t.Error("max below p99")
	}
}

func TestFiniteQueueDrops(t *testing.T) {
	// Overloaded system with a small buffer must drop messages.
	r, err := Simulate(Config{ArrivalRate: 2000, ServiceTime: 0.001, Horizon: 100, QueueCap: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped == 0 {
		t.Fatal("overloaded finite queue dropped nothing")
	}
	if r.LossRate < 0.3 {
		t.Errorf("loss rate %.2f suspiciously low at 2x overload", r.LossRate)
	}
	if r.Served+r.Dropped != r.Arrived {
		t.Error("message accounting broken")
	}
	// The served stream keeps bounded latency.
	if r.MaxSojourn > 0.001*float64(8+2) {
		t.Errorf("max sojourn %.4f exceeds the buffer bound", r.MaxSojourn)
	}
}

func TestDeterministicSeed(t *testing.T) {
	cfg := Config{ArrivalRate: 700, ServiceTime: 0.0009, Horizon: 200, Seed: 7}
	a, _ := Simulate(cfg)
	b, _ := Simulate(cfg)
	if *a != *b {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 8
	c, _ := Simulate(cfg)
	if *a == *c {
		t.Error("different seeds produced identical results")
	}
}

func TestTheoreticalMeanWaitUnstable(t *testing.T) {
	if _, err := TheoreticalMeanWait(1001, 0.001); err == nil {
		t.Error("unstable queue accepted")
	}
}

func TestMaxStableRate(t *testing.T) {
	if r := MaxStableRate(0.001, 0.8); math.Abs(r-800) > 1e-9 {
		t.Errorf("MaxStableRate = %f, want 800", r)
	}
	if MaxStableRate(0, 0.8) != 0 {
		t.Error("zero service time should return 0")
	}
}

func TestMultiServerScaling(t *testing.T) {
	// Heavy single-core load becomes light with 11 cores (the paper's
	// multi-core comparison row).
	base := Config{ArrivalRate: 900, ServiceTime: 0.001, Horizon: 300, Seed: 3}
	one, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Servers = 11
	eleven, err := Simulate(multi)
	if err != nil {
		t.Fatal(err)
	}
	if eleven.MeanSojourn >= one.MeanSojourn {
		t.Errorf("11 cores (%.6f) should beat 1 core (%.6f)", eleven.MeanSojourn, one.MeanSojourn)
	}
	// With 11 cores at rho_total = 0.082, waiting is nearly zero:
	// sojourn ~ service time.
	if eleven.MeanSojourn > 1.05*base.ServiceTime {
		t.Errorf("11-core sojourn %.6f should approach the bare service time", eleven.MeanSojourn)
	}
	if math.Abs(eleven.Utilization-0.9/11) > 0.02 {
		t.Errorf("utilization %.3f, want ~%.3f", eleven.Utilization, 0.9/11)
	}
	// Overload beyond a single core remains stable with enough cores.
	over := Config{ArrivalRate: 2500, ServiceTime: 0.001, Horizon: 100, Servers: 4, Seed: 4}
	r, err := Simulate(over)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanSojourn > 0.01 {
		t.Errorf("4 cores at 62%% load should stay fast, got %.4f s", r.MeanSojourn)
	}
}
