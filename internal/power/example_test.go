package power_test

import (
	"fmt"

	"repro/internal/power"
)

// Example calibrates the model and reads off the paper's headline
// operating points.
func Example() {
	m, err := power.Calibrate(1981) // cycles per SM from the scheduled program
	if err != nil {
		panic(err)
	}
	fmt.Printf("@1.20V: %.1f us, %.2f uJ\n", m.Latency(1.2)*1e6, m.EnergyPerSM(1.2)*1e6)
	fmt.Printf("@0.32V: %.0f us, %.3f uJ\n", m.Latency(0.32)*1e6, m.EnergyPerSM(0.32)*1e6)
	fmt.Printf("clock @1.20V: %.0f MHz\n", m.Fmax(1.2)/1e6)
	// Output:
	// @1.20V: 10.1 us, 3.98 uJ
	// @0.32V: 857 us, 0.327 uJ
	// clock @1.20V: 196 MHz
}
