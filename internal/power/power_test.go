package power

import (
	"math"
	"testing"
)

const testCycles = 2500

func calibrated(t *testing.T) *Model {
	t.Helper()
	m, err := Calibrate(testCycles)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Abs(b)
}

func TestCalibrationHitsAnchors(t *testing.T) {
	m := calibrated(t)
	if !approx(m.Latency(AnchorHighV), AnchorHighLatency, 1e-6) {
		t.Errorf("latency @1.2V = %g, want %g", m.Latency(AnchorHighV), AnchorHighLatency)
	}
	if !approx(m.Latency(AnchorLowV), AnchorLowLatency, 1e-6) {
		t.Errorf("latency @0.32V = %g, want %g", m.Latency(AnchorLowV), AnchorLowLatency)
	}
	if !approx(m.EnergyPerSM(AnchorHighV), AnchorHighEnergy, 1e-6) {
		t.Errorf("energy @1.2V = %g, want %g", m.EnergyPerSM(AnchorHighV), AnchorHighEnergy)
	}
	if !approx(m.EnergyPerSM(AnchorLowV), AnchorLowEnergy, 1e-6) {
		t.Errorf("energy @0.32V = %g, want %g", m.EnergyPerSM(AnchorLowV), AnchorLowEnergy)
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	if _, err := Calibrate(0); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := Calibrate(-5); err == nil {
		t.Error("negative cycles accepted")
	}
}

func TestFrequencyMonotone(t *testing.T) {
	m := calibrated(t)
	prev := 0.0
	for v := VMin; v <= VMax; v += 0.01 {
		f := m.Fmax(v)
		if f <= prev {
			t.Fatalf("Fmax not monotone at %.2f V", v)
		}
		prev = f
	}
}

func TestFrequencyShape(t *testing.T) {
	m := calibrated(t)
	// Fig. 4 shape: frequency collapses by orders of magnitude between
	// 1.2 V and the near-threshold region.
	ratio := m.Fmax(1.2) / m.Fmax(0.32)
	if !approx(ratio, AnchorLowLatency/AnchorHighLatency, 1e-6) {
		t.Errorf("anchored frequency ratio wrong: %f", ratio)
	}
	// Threshold must be physically plausible for SOTB with forward bias.
	if m.Vth() < 0.15 || m.Vth() > 0.6 {
		t.Errorf("fitted Vth %.3f V implausible", m.Vth())
	}
	// Fmax @1.2V should be a plausible 65nm clock (tens of MHz..1GHz).
	if m.Fmax(1.2) < 20e6 || m.Fmax(1.2) > 2e9 {
		t.Errorf("Fmax(1.2V) = %g Hz implausible", m.Fmax(1.2))
	}
}

func TestEnergyMinimumNearLowAnchor(t *testing.T) {
	m := calibrated(t)
	v, e := m.MinEnergyVoltage()
	// The paper reports the minimum measured energy at 0.32 V; the
	// continuous model's minimum must sit at or just below that point.
	if v < VMin || v > 0.40 {
		t.Errorf("minimum-energy voltage %.3f V not near the paper's 0.32 V", v)
	}
	if e > AnchorLowEnergy*(1+1e-9) {
		t.Errorf("minimum energy %g above the 0.32 V anchor %g", e, AnchorLowEnergy)
	}
	// On the measured grid (>= 0.32 V) the minimum is at 0.32 V exactly,
	// as the paper claims.
	for v := 0.36; v <= 1.2; v += 0.04 {
		if m.EnergyPerSM(v) <= AnchorLowEnergy {
			t.Errorf("energy at %.2f V undercuts the 0.32 V point", v)
		}
	}
}

func TestEnergyDecomposition(t *testing.T) {
	m := calibrated(t)
	// At high voltage dynamic energy dominates; at low voltage leakage is
	// a visible share (that's what creates the minimum).
	dynHigh := m.aDyn * AnchorHighV * AnchorHighV
	if dynHigh/m.EnergyPerSM(AnchorHighV) < 0.9 {
		t.Error("dynamic energy should dominate at 1.2 V")
	}
	leakLow := m.iLeak * AnchorLowV * m.Latency(AnchorLowV)
	if leakLow/m.EnergyPerSM(AnchorLowV) < 0.05 {
		t.Error("leakage share at 0.32 V suspiciously low")
	}
}

func TestSweep(t *testing.T) {
	m := calibrated(t)
	pts := m.Sweep(0.32, 1.2, 23)
	if len(pts) != 23 {
		t.Fatalf("sweep length %d", len(pts))
	}
	if pts[0].V != 0.32 || !approx(pts[len(pts)-1].V, 1.2, 1e-9) {
		t.Error("sweep endpoints wrong")
	}
	for _, p := range pts {
		if p.LatencyS <= 0 || p.EnergyJ <= 0 || p.FmaxHz <= 0 {
			t.Fatalf("non-positive sweep values at %.2f V", p.V)
		}
		if !approx(p.Throughput*p.LatencyS, 1, 1e-9) {
			t.Fatalf("throughput/latency inconsistent at %.2f V", p.V)
		}
	}
}

func TestLatencyCyclesScaling(t *testing.T) {
	m := calibrated(t)
	// Double the cycles -> double the latency at any voltage.
	if !approx(m.LatencyCycles(0.9, 2*testCycles), 2*m.Latency(0.9), 1e-12) {
		t.Error("LatencyCycles does not scale linearly")
	}
	if !approx(m.EnergyPerCycle(1.2)*testCycles, m.EnergyPerSM(1.2), 1e-9) {
		t.Error("EnergyPerCycle inconsistent")
	}
}

func TestDifferentCycleCountsSameEnergy(t *testing.T) {
	// Energy anchors are per-SM chip measurements: they must not depend
	// on the cycle-count estimate used for frequency calibration.
	m1, _ := Calibrate(2000)
	m2, _ := Calibrate(4000)
	if !approx(m1.EnergyPerSM(0.7), m2.EnergyPerSM(0.7), 1e-9) {
		t.Error("energy model should be cycle-count invariant")
	}
	// But frequency scales with cycles.
	if !approx(m2.Fmax(1.2)/m1.Fmax(1.2), 2, 1e-9) {
		t.Error("frequency should scale with cycle count")
	}
}

func TestBodyBiasAblation(t *testing.T) {
	m := calibrated(t)
	// Removing the forward body bias raises the effective threshold and
	// collapses near-threshold performance far more than nominal-voltage
	// performance -- the reason the paper's SOTB bias scheme matters.
	noBias := m.WithBodyBias(0.10)
	if noBias.Vth() <= m.Vth() {
		t.Fatal("threshold did not rise")
	}
	slow32 := m.Fmax(0.32) / noBias.Fmax(0.32)
	slow120 := m.Fmax(1.20) / noBias.Fmax(1.20)
	if slow32 <= slow120 {
		t.Errorf("bias removal should hurt 0.32V (%.2fx) more than 1.2V (%.2fx)", slow32, slow120)
	}
	if slow32 < 2 {
		t.Errorf("near-threshold slowdown %.2fx implausibly small for +100mV Vth", slow32)
	}
	// The original model is untouched.
	if m.Vth() == noBias.Vth() {
		t.Error("WithBodyBias mutated the receiver")
	}
	// Energy at low voltage rises with the longer runtime.
	if noBias.EnergyPerSM(0.32) <= m.EnergyPerSM(0.32) {
		t.Error("longer latency should increase leakage energy")
	}
}
