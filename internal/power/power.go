// Package power models the fabricated chip's voltage/frequency/energy
// behaviour (Fig. 4 of the paper): maximum operating frequency, scalar
// multiplication latency and energy per SM as functions of the supply
// voltage, for the 65 nm SOTB process with the paper's body-bias scheme
// (VBP = 0.7*VDD, VBN = 0.3*VDD).
//
// Since we cannot measure silicon, the model is an EKV-style
// inversion-charge delay law (smooth across the sub/near/super-threshold
// regions; the body-bias scheme is absorbed into the fitted effective
// threshold) combined with a CV^2 dynamic-plus-leakage energy law. The
// four free parameters are calibrated exactly to the paper's measured
// anchor points:
//
//	1.20 V: 10.1 us / 3.98 uJ per SM
//	0.32 V:  857 us / 0.327 uJ per SM
//
// so the reproduced Fig. 4 passes through the published measurements and
// keeps their shape: exponential frequency collapse below ~0.5 V and an
// energy minimum at the low-voltage end of the measured range.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Paper anchor points (Section IV-B / Table II).
const (
	AnchorHighV       = 1.20     // V
	AnchorHighLatency = 10.1e-6  // s per SM
	AnchorHighEnergy  = 3.98e-6  // J per SM
	AnchorLowV        = 0.32     // V
	AnchorLowLatency  = 857e-6   // s per SM
	AnchorLowEnergy   = 0.327e-6 // J per SM
)

// VMin and VMax bound the model's validated supply range.
const (
	VMin = 0.26
	VMax = 1.32
)

// Model is a calibrated voltage/frequency/energy model.
type Model struct {
	// CyclesPerSM is the cycle count of one scalar multiplication on the
	// modelled processor (from the scheduled microprogram).
	CyclesPerSM float64
	// vth is the fitted effective threshold voltage (body bias absorbed).
	vth float64
	// k scales the EKV speed term to Hz.
	k float64
	// aDyn is the dynamic energy coefficient (J/V^2 per SM).
	aDyn float64
	// iLeak is the effective leakage current (A).
	iLeak float64
	// thermal slope 2*n*phi_t of the EKV charge law.
	slope float64
}

// speed is the EKV-normalized frequency term: q(V)^2/V with
// q = ln(1+exp((V-Vth)/slope)). Monotone increasing in V.
func speed(v, vth, slope float64) float64 {
	q := math.Log1p(math.Exp((v - vth) / slope))
	return q * q / v
}

// Calibrate fits the model for a processor that takes cyclesPerSM cycles
// per scalar multiplication. The frequency law is fitted so that the
// latency anchors hold exactly; the energy law so the energy anchors hold
// exactly.
func Calibrate(cyclesPerSM float64) (*Model, error) {
	if cyclesPerSM <= 0 {
		return nil, errors.New("power: cyclesPerSM must be positive")
	}
	m := &Model{CyclesPerSM: cyclesPerSM, slope: 2 * 1.5 * 0.026}

	// Fit Vth by bisection on the frequency ratio between the anchors.
	targetRatio := AnchorLowLatency / AnchorHighLatency // f(high)/f(low)
	lo, hi := 0.01, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		r := speed(AnchorHighV, mid, m.slope) / speed(AnchorLowV, mid, m.slope)
		if r < targetRatio {
			lo = mid
		} else {
			hi = mid
		}
	}
	m.vth = (lo + hi) / 2
	r := speed(AnchorHighV, m.vth, m.slope) / speed(AnchorLowV, m.vth, m.slope)
	if math.Abs(r-targetRatio)/targetRatio > 1e-6 {
		return nil, fmt.Errorf("power: threshold fit failed (ratio %.3f vs %.3f)", r, targetRatio)
	}
	// Scale to the absolute frequency anchor.
	fHigh := cyclesPerSM / AnchorHighLatency
	m.k = fHigh / speed(AnchorHighV, m.vth, m.slope)

	// Energy: E(V) = aDyn*V^2 + iLeak*V*T(V); solve the 2x2 linear system
	// from the two anchors.
	t1, t2 := m.Latency(AnchorHighV), m.Latency(AnchorLowV)
	// [ v1^2  v1*t1 ] [aDyn ]   [E1]
	// [ v2^2  v2*t2 ] [iLeak] = [E2]
	a11, a12 := AnchorHighV*AnchorHighV, AnchorHighV*t1
	a21, a22 := AnchorLowV*AnchorLowV, AnchorLowV*t2
	det := a11*a22 - a12*a21
	if math.Abs(det) < 1e-30 {
		return nil, errors.New("power: singular energy calibration")
	}
	m.aDyn = (AnchorHighEnergy*a22 - a12*AnchorLowEnergy) / det
	m.iLeak = (a11*AnchorLowEnergy - AnchorHighEnergy*a21) / det
	if m.aDyn <= 0 || m.iLeak <= 0 {
		return nil, fmt.Errorf("power: non-physical energy fit (aDyn=%g, iLeak=%g)", m.aDyn, m.iLeak)
	}
	return m, nil
}

// Vth returns the fitted effective threshold voltage.
func (m *Model) Vth() float64 { return m.vth }

// WithBodyBias returns a derived model whose effective threshold is
// shifted by deltaVth. The paper's forward body-bias scheme
// (VBP = 0.7*VDD, VBN = 0.3*VDD) is absorbed into the fitted threshold
// of the calibrated model; passing a positive delta (~+0.1 V for 65 nm
// SOTB with the bias removed) models operation without it, which is what
// makes 0.32 V operation possible in the first place. The energy
// coefficients are kept; energy follows the changed latency.
func (m *Model) WithBodyBias(deltaVth float64) *Model {
	d := *m
	d.vth = m.vth + deltaVth
	return &d
}

// Fmax returns the maximum operating frequency (Hz) at supply v.
func (m *Model) Fmax(v float64) float64 {
	return m.k * speed(v, m.vth, m.slope)
}

// Latency returns the scalar-multiplication latency (seconds) at supply v.
func (m *Model) Latency(v float64) float64 {
	return m.CyclesPerSM / m.Fmax(v)
}

// LatencyCycles returns the latency for an arbitrary cycle count.
func (m *Model) LatencyCycles(v float64, cycles float64) float64 {
	return cycles / m.Fmax(v)
}

// EnergyPerSM returns the energy (Joules) of one scalar multiplication at
// supply v: dynamic CV^2 plus leakage integrated over the SM latency.
func (m *Model) EnergyPerSM(v float64) float64 {
	return m.aDyn*v*v + m.iLeak*v*m.Latency(v)
}

// EnergyPerCycle returns the per-cycle energy at supply v, for scaling to
// workloads with different cycle counts.
func (m *Model) EnergyPerCycle(v float64) float64 {
	return m.EnergyPerSM(v) / m.CyclesPerSM
}

// Throughput returns scalar multiplications per second at supply v.
func (m *Model) Throughput(v float64) float64 { return 1 / m.Latency(v) }

// SweepPoint is one row of the Fig. 4 reproduction.
type SweepPoint struct {
	V          float64 // supply voltage
	FmaxHz     float64
	LatencyS   float64 // per SM
	EnergyJ    float64 // per SM
	Throughput float64 // SM/s
}

// Sweep evaluates the model on n evenly spaced voltages in [vlo, vhi].
func (m *Model) Sweep(vlo, vhi float64, n int) []SweepPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]SweepPoint, n)
	for i := 0; i < n; i++ {
		v := vlo + (vhi-vlo)*float64(i)/float64(n-1)
		pts[i] = SweepPoint{
			V:          v,
			FmaxHz:     m.Fmax(v),
			LatencyS:   m.Latency(v),
			EnergyJ:    m.EnergyPerSM(v),
			Throughput: m.Throughput(v),
		}
	}
	return pts
}

// MinEnergyVoltage finds the supply voltage minimizing energy per SM over
// the validated range, by golden-section search.
func (m *Model) MinEnergyVoltage() (v, e float64) {
	lo, hi := VMin, VMax
	phi := (math.Sqrt(5) - 1) / 2
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := m.EnergyPerSM(a), m.EnergyPerSM(b)
	for i := 0; i < 100; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = m.EnergyPerSM(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = m.EnergyPerSM(b)
		}
	}
	v = (lo + hi) / 2
	return v, m.EnergyPerSM(v)
}
