package fp

import (
	"math/big"
	"testing"
)

// elemFromLimbs reduces an arbitrary 128-bit pattern into the field the
// same way the fuzzer's reference does, so the two domains agree on the
// input before the operation under test runs.
func elemFromLimbs(lo, hi uint64) Element { return SetLimbs(lo, hi) }

func refFromLimbs(lo, hi uint64) *big.Int {
	v := new(big.Int).SetUint64(hi)
	v.Lsh(v, 64)
	v.Or(v, new(big.Int).SetUint64(lo))
	return v.Mod(v, bigP)
}

// FuzzArithVsBig differentially tests every field operation against
// math/big on fuzz-chosen limb patterns: the Mersenne-folding tricks in
// Add/Sub/Mul/Sqr and the addition-chain inversion must agree with the
// schoolbook mod-p reference bit for bit.
func FuzzArithVsBig(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0), uint64(2), uint64(0))
	f.Add(^uint64(0), uint64(0x7FFFFFFFFFFFFFFF), ^uint64(0), uint64(0x7FFFFFFFFFFFFFFF)) // p vs p
	f.Add(^uint64(0), ^uint64(0), uint64(1), uint64(0))                                   // high bit folding
	f.Add(uint64(0xFFFFFFFFFFFFFFFE), uint64(0x7FFFFFFFFFFFFFFF), uint64(1), uint64(0))   // p-1 + 1

	f.Fuzz(func(t *testing.T, alo, ahi, blo, bhi uint64) {
		a, b := elemFromLimbs(alo, ahi), elemFromLimbs(blo, bhi)
		ra, rb := refFromLimbs(alo, ahi), refFromLimbs(blo, bhi)
		if toBig(a).Cmp(ra) != 0 {
			t.Fatalf("SetLimbs(%#x,%#x) = %v, reference %v", alo, ahi, a, ra)
		}

		check := func(name string, got Element, want *big.Int) {
			t.Helper()
			if toBig(got).Cmp(want) != 0 {
				t.Fatalf("%s: got %v, reference %v (a=%v b=%v)", name, toBig(got), want, ra, rb)
			}
		}
		mod := func(v *big.Int) *big.Int { return v.Mod(v, bigP) }

		check("Add", Add(a, b), mod(new(big.Int).Add(ra, rb)))
		check("Sub", Sub(a, b), mod(new(big.Int).Sub(ra, rb)))
		check("Neg", Neg(a), mod(new(big.Int).Neg(ra)))
		check("Double", Double(a), mod(new(big.Int).Lsh(ra, 1)))
		check("Mul", Mul(a, b), mod(new(big.Int).Mul(ra, rb)))
		check("Sqr", Sqr(a), mod(new(big.Int).Mul(ra, ra)))
		check("MulSmall", MulSmall(a, blo), mod(new(big.Int).Mul(ra, new(big.Int).SetUint64(blo))))

		if !a.IsZero() {
			inv := Inv(a)
			check("Inv", inv, new(big.Int).ModInverse(ra, bigP))
			if !Mul(a, inv).IsOne() {
				t.Fatalf("a * Inv(a) != 1 for a=%v", a)
			}
		} else if !Inv(a).IsZero() {
			t.Fatal("Inv(0) must be 0")
		}
	})
}

// FuzzEncodingRoundTrip checks that FromBytes accepts exactly the
// canonical encodings and that accepted encodings round-trip.
func FuzzEncodingRoundTrip(f *testing.F) {
	z := Zero().Bytes()
	f.Add(z[:])
	one := One().Bytes()
	f.Add(one[:])
	pm1 := Sub(Zero(), One()).Bytes()
	f.Add(pm1[:])
	bad := make([]byte, Size)
	for i := range bad {
		bad[i] = 0xFF
	}
	f.Add(bad) // 2^128-1: non-canonical, must be rejected
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := FromBytes(data)
		if err != nil {
			if len(data) == Size {
				// The only in-length rejections are values >= p.
				v := new(big.Int).SetBytes(reverse(data))
				if v.Cmp(bigP) < 0 {
					t.Fatalf("canonical encoding %x rejected: %v", data, err)
				}
			}
			return
		}
		if v := toBig(e); v.Cmp(bigP) >= 0 {
			t.Fatalf("accepted non-canonical value %v", v)
		}
		re := e.Bytes()
		if string(re[:]) != string(data) {
			t.Fatalf("round trip changed encoding: %x -> %x", data, re)
		}
	})
}

func reverse(b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[len(b)-1-i] = v
	}
	return out
}
