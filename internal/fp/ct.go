package fp

// Constant-time helpers. These never branch on their arguments; all
// selection happens through AND masks. (Go's compiler gives no hard
// constant-time guarantee, but the code contains no secret-dependent
// branches or memory indices, the practical bar for software CT.)

// CSelect returns a when flag == 1 and b when flag == 0, without
// branching. flag must be 0 or 1.
func CSelect(flag uint64, a, b Element) Element {
	mask := -flag
	return Element{
		l0: (a.l0 & mask) | (b.l0 &^ mask),
		l1: (a.l1 & mask) | (b.l1 &^ mask),
	}
}

// CSwap conditionally swaps a and b in place when flag == 1.
func CSwap(flag uint64, a, b *Element) {
	mask := -flag
	t0 := (a.l0 ^ b.l0) & mask
	t1 := (a.l1 ^ b.l1) & mask
	a.l0 ^= t0
	b.l0 ^= t0
	a.l1 ^= t1
	b.l1 ^= t1
}

// CTEq returns 1 when a == b and 0 otherwise, without branching.
func CTEq(a, b Element) uint64 {
	x := (a.l0 ^ b.l0) | (a.l1 ^ b.l1)
	return 1 ^ ((x | -x) >> 63)
}
