// Package fp implements arithmetic in the finite field GF(p) with
// p = 2^127 - 1, the Mersenne prime underlying the FourQ curve.
//
// Elements are kept in canonical reduced form (0 <= value < p) as two
// 64-bit limbs. All arithmetic uses the Mersenne folding identity
// 2^127 == 1 (mod p), so no integer division is ever performed; this
// mirrors the hardware datapath of the reproduced ASIC, where the modular
// reduction is a 127-bit addition.
package fp

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// Size is the byte length of an encoded field element.
const Size = 16

// p = 2^127 - 1 as two 64-bit limbs.
const (
	p0 = 0xFFFFFFFFFFFFFFFF
	p1 = 0x7FFFFFFFFFFFFFFF
)

// mask127 clears bit 63 of the high limb, keeping the low 127 bits.
const mask127 = 0x7FFFFFFFFFFFFFFF

// Element is an integer modulo p = 2^127 - 1, in canonical form.
// The value is l0 + l1*2^64 and is always < p. The zero value is 0.
type Element struct {
	l0, l1 uint64
}

// P returns the field modulus 2^127 - 1 as an (invalid) Element-shaped
// pair of limbs. It is exported for tests and for the wide arithmetic
// helpers; P itself is not a canonical element.
func P() (lo, hi uint64) { return p0, p1 }

// New returns an element set to the small integer v.
func New(v uint64) Element { return Element{l0: v} }

// Zero returns the additive identity.
func Zero() Element { return Element{} }

// One returns the multiplicative identity.
func One() Element { return Element{l0: 1} }

// Limbs returns the two 64-bit little-endian limbs of e.
func (e Element) Limbs() (lo, hi uint64) { return e.l0, e.l1 }

// SetLimbs sets e from two limbs, reducing modulo p. Any 128-bit input is
// accepted; bit 127 is folded and the result normalized to canonical form.
func SetLimbs(lo, hi uint64) Element {
	var e Element
	// Fold bit 127.
	t := hi >> 63
	hi &= mask127
	lo, c := bits.Add64(lo, t, 0)
	hi += c
	// hi may now have bit 63 set again only if lo+carry overflowed into it,
	// impossible since hi <= 2^63-1 and c <= 1 gives hi <= 2^63-1+1; fold once more.
	t = hi >> 63
	hi &= mask127
	lo, c = bits.Add64(lo, t, 0)
	hi += c
	e.l0, e.l1 = lo, hi
	e.normalize()
	return e
}

// normalize subtracts p once if the value equals p, keeping bits < 2^127.
// Callers must ensure the value is at most p (i.e. already folded).
// Branchless: the comparison result becomes an AND mask.
func (e *Element) normalize() {
	// isP == all-ones iff e == p.
	x := (e.l0 ^ p0) | (e.l1 ^ p1)
	// x == 0 -> mask = ^0; else mask = 0.
	isZero := uint64(1) ^ ((x | -x) >> 63)
	mask := -isZero
	e.l0 &^= mask
	e.l1 &^= mask
}

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e.l0 == 0 && e.l1 == 0 }

// IsOne reports whether e is the multiplicative identity.
func (e Element) IsOne() bool { return e.l0 == 1 && e.l1 == 0 }

// Equal reports whether e and x represent the same field element.
func (e Element) Equal(x Element) bool { return e.l0 == x.l0 && e.l1 == x.l1 }

// Add returns a + b mod p.
func Add(a, b Element) Element {
	lo, c := bits.Add64(a.l0, b.l0, 0)
	hi, _ := bits.Add64(a.l1, b.l1, c)
	// Sum < 2^128; fold bit 127 (and the impossible-to-survive second carry).
	t := hi >> 63
	hi &= mask127
	lo, c = bits.Add64(lo, t, 0)
	hi += c
	var e Element
	e.l0, e.l1 = lo, hi
	// After fold the value is at most 2^127; a set bit 127 means exactly
	// 2^127 == 1 mod p. Branchless fix-up.
	top := e.l1 >> 63
	e.l0 |= top // value was exactly 2^127 (l0 == 0), so this sets it to 1
	e.l1 &= mask127
	e.normalize()
	return e
}

// Sub returns a - b mod p.
func Sub(a, b Element) Element {
	lo, borrow := bits.Sub64(a.l0, b.l0, 0)
	hi, borrow := bits.Sub64(a.l1, b.l1, borrow)
	// Add p back exactly when the subtraction borrowed (branchless).
	mask := -borrow
	lo, c := bits.Add64(lo, p0&mask, 0)
	hi, _ = bits.Add64(hi, p1&mask, c)
	e := Element{l0: lo, l1: hi}
	e.normalize()
	return e
}

// Neg returns -a mod p.
func Neg(a Element) Element { return Sub(Element{}, a) }

// Double returns 2a mod p.
func Double(a Element) Element { return Add(a, a) }

// Mul returns a * b mod p using a 128x128 -> 256-bit product followed by
// two Mersenne foldings (the datapath's "reduction by 127-bit addition").
func Mul(a, b Element) Element {
	r0, r1, r2, r3 := mul128(a.l0, a.l1, b.l0, b.l1)
	return reduce256(r0, r1, r2, r3)
}

// Sqr returns a^2 mod p.
func Sqr(a Element) Element {
	// A dedicated squaring saves one 64x64 multiply (the cross product is
	// computed once and doubled).
	lo, hi := a.l0, a.l1
	hi1, lo0 := bits.Mul64(lo, lo) // lo^2
	hi2, lo2 := bits.Mul64(lo, hi) // lo*hi (to be doubled)
	hi3, lo3 := bits.Mul64(hi, hi) // hi^2
	// Double the cross term.
	c2top := hi2 >> 63
	hi2 = hi2<<1 | lo2>>63
	lo2 <<= 1
	// Assemble r = lo0 + (hi1+lo2)*2^64 + (hi2+lo3)*2^128 + (hi3+c2top)*2^192.
	r0 := lo0
	r1, c := bits.Add64(hi1, lo2, 0)
	r2, c := bits.Add64(hi2, lo3, c)
	r3, _ := bits.Add64(hi3, c2top, c)
	return reduce256(r0, r1, r2, r3)
}

// mul128 computes the 256-bit product of two 128-bit integers.
func mul128(a0, a1, b0, b1 uint64) (r0, r1, r2, r3 uint64) {
	h00, l00 := bits.Mul64(a0, b0)
	h01, l01 := bits.Mul64(a0, b1)
	h10, l10 := bits.Mul64(a1, b0)
	h11, l11 := bits.Mul64(a1, b1)

	r0 = l00
	r1, c := bits.Add64(h00, l01, 0)
	r2, c2 := bits.Add64(h01, l11, c)
	r3 = h11 + c2

	r1, c = bits.Add64(r1, l10, 0)
	r2, c2 = bits.Add64(r2, h10, c)
	r3 += c2
	return
}

// reduce256 reduces a 256-bit integer r modulo p = 2^127 - 1.
// Since inputs come from products of values < 2^127, r < 2^254.
func reduce256(r0, r1, r2, r3 uint64) Element {
	// Split r = u*2^127 + v with u, v < 2^127.
	v0 := r0
	v1 := r1 & mask127
	u0 := r1>>63 | r2<<1
	u1 := r2>>63 | r3<<1 // r3 < 2^62 so no bits lost

	// s = u + v  (< 2^128)
	s0, c := bits.Add64(u0, v0, 0)
	s1, _ := bits.Add64(u1, v1, c)

	// Fold bit 127 of s, then fix up the exact-2^127 case branchlessly.
	t := s1 >> 63
	s1 &= mask127
	s0, c = bits.Add64(s0, t, 0)
	s1 += c
	top := s1 >> 63
	s0 |= top
	s1 &= mask127
	e := Element{l0: s0, l1: s1}
	e.normalize()
	return e
}

// MulSmall returns a * v mod p for a small scalar v.
func MulSmall(a Element, v uint64) Element {
	h0, l0 := bits.Mul64(a.l0, v)
	h1, l1 := bits.Mul64(a.l1, v)
	r1, c := bits.Add64(h0, l1, 0)
	r2 := h1 + c
	return reduce256(l0, r1, r2, 0)
}

// Exp returns a^e mod p where the exponent is given as little-endian
// 64-bit limbs. Uses left-to-right binary exponentiation.
func Exp(a Element, e []uint64) Element {
	r := One()
	started := false
	for i := len(e) - 1; i >= 0; i-- {
		for b := 63; b >= 0; b-- {
			if started {
				r = Sqr(r)
			}
			if e[i]>>uint(b)&1 == 1 {
				if started {
					r = Mul(r, a)
				} else {
					r = a
					started = true
				}
			}
		}
	}
	if !started {
		return One()
	}
	return r
}

// Inv returns a^-1 mod p (and zero for a == 0). Uses Fermat's little
// theorem with the fixed exponent p-2 = 2^127 - 3 evaluated by an
// addition chain (10 multiplications, 126 squarings), matching the
// inversion routine a hardware sequencer would run.
func Inv(a Element) Element {
	// t_k denotes a^(2^k - 1).
	t1 := Sqr(a)        // a^2
	t1 = Mul(t1, a)     // a^3           = a^(2^2-1)
	t2 := sqrN(t1, 2)   // a^(2^2(2^2-1))
	t2 = Mul(t2, t1)    // a^(2^4-1)
	t3 := sqrN(t2, 4)   //
	t3 = Mul(t3, t2)    // a^(2^8-1)
	t4 := sqrN(t3, 8)   //
	t4 = Mul(t4, t3)    // a^(2^16-1)
	t5 := sqrN(t4, 16)  //
	t5 = Mul(t5, t4)    // a^(2^32-1)
	t6 := sqrN(t5, 32)  //
	t6 = Mul(t6, t5)    // a^(2^64-1)
	t7 := sqrN(t6, 61)  // a^(2^125-2^61)
	t5b := sqrN(t5, 29) // a^(2^61-2^29)
	t7 = Mul(t7, t5b)
	t4b := sqrN(t4, 13) // a^(2^29-2^13)
	t7 = Mul(t7, t4b)
	t3b := sqrN(t3, 5)
	t7 = Mul(t7, t3b)
	t2b := sqrN(t2, 1)
	t7 = Mul(t7, t2b)
	// t7 = a^(2^125 - 2^61 + 2^61 - 2^29 + 2^29 - 2^13 + 2^13 - 2^5 + 2^5 - 2)
	//    = a^(2^125 - 2)
	// We need a^(2^127 - 3) = a^(4*(2^125 - 2) + 5).
	r := sqrN(t7, 2) // a^(2^127-8)
	r = Mul(r, t1)   // * a^3 -> a^(2^127-5)
	r = Mul(r, Sqr(a))
	// a^(2^127-5) * a^2 = a^(2^127-3)
	return r
}

func sqrN(a Element, n int) Element {
	for i := 0; i < n; i++ {
		a = Sqr(a)
	}
	return a
}

// IsSquare reports whether a is a quadratic residue mod p (0 counts as a
// square). Computes the Legendre symbol a^((p-1)/2).
func IsSquare(a Element) bool {
	if a.IsZero() {
		return true
	}
	// (p-1)/2 = 2^126 - 1.
	e := []uint64{0xFFFFFFFFFFFFFFFF, 0x3FFFFFFFFFFFFFFF}
	return Exp(a, e).IsOne()
}

// Sqrt returns a square root of a if one exists. Since p == 3 (mod 4),
// sqrt(a) = a^((p+1)/4) = a^(2^125).
func Sqrt(a Element) (Element, bool) {
	r := sqrN(a, 125)
	if !Sqr(r).Equal(a) {
		return Element{}, false
	}
	return r, true
}

// Bytes returns the 16-byte little-endian canonical encoding of e.
func (e Element) Bytes() [Size]byte {
	var out [Size]byte
	putUint64LE(out[0:8], e.l0)
	putUint64LE(out[8:16], e.l1)
	return out
}

// FromBytes decodes a little-endian 16-byte encoding. It returns an error
// if the encoding is non-canonical (value >= p).
func FromBytes(b []byte) (Element, error) {
	if len(b) != Size {
		return Element{}, fmt.Errorf("fp: encoding must be %d bytes, got %d", Size, len(b))
	}
	lo := getUint64LE(b[0:8])
	hi := getUint64LE(b[8:16])
	if hi>>63 != 0 || (hi == p1 && lo == p0) {
		return Element{}, errors.New("fp: non-canonical encoding")
	}
	return Element{l0: lo, l1: hi}, nil
}

// Random returns a uniformly random field element read from r.
func Random(r io.Reader) (Element, error) {
	var buf [Size]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Element{}, err
		}
		lo := getUint64LE(buf[0:8])
		hi := getUint64LE(buf[8:16]) & mask127
		if hi == p1 && lo == p0 {
			continue // rejection sample the single invalid pattern
		}
		return Element{l0: lo, l1: hi}, nil
	}
}

// String formats the element as 0x-prefixed big-endian hex.
func (e Element) String() string {
	return fmt.Sprintf("0x%016x%016x", e.l1, e.l0)
}

func putUint64LE(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64LE(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
