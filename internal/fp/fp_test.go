package fp

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// bigP is the modulus as a big.Int for reference computations.
var bigP = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

func toBig(e Element) *big.Int {
	lo, hi := e.Limbs()
	v := new(big.Int).SetUint64(hi)
	v.Lsh(v, 64)
	return v.Add(v, new(big.Int).SetUint64(lo))
}

func fromBig(v *big.Int) Element {
	m := new(big.Int).Mod(v, bigP)
	lo := new(big.Int).And(m, new(big.Int).SetUint64(^uint64(0))).Uint64()
	hi := new(big.Int).Rsh(m, 64).Uint64()
	return SetLimbs(lo, hi)
}

// randElement returns a uniformly random element using the given source.
func randElement(r *mrand.Rand) Element {
	for {
		lo := r.Uint64()
		hi := r.Uint64() & mask127
		if hi == p1 && lo == p0 {
			continue
		}
		return Element{l0: lo, l1: hi}
	}
}

// Generate implements quick.Generator so Element can be used directly in
// property-based tests.
func (Element) Generate(r *mrand.Rand, _ int) reflect.Value {
	// Bias toward boundary values occasionally.
	var e Element
	switch r.Intn(8) {
	case 0:
		e = Element{}
	case 1:
		e = One()
	case 2:
		e = Element{l0: p0 - 1, l1: p1} // p-1
	default:
		e = randElement(r)
	}
	return reflect.ValueOf(e)
}

func TestConstants(t *testing.T) {
	if !Zero().IsZero() {
		t.Fatal("Zero is not zero")
	}
	if !One().IsOne() {
		t.Fatal("One is not one")
	}
	if One().IsZero() || Zero().IsOne() {
		t.Fatal("identity confusion")
	}
}

func TestSetLimbsFolding(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		want   *big.Int
	}{
		{0, 0, big.NewInt(0)},
		{1, 0, big.NewInt(1)},
		{p0, p1, big.NewInt(0)},                       // p == 0
		{0, 1 << 63, big.NewInt(1)},                   // 2^127 == 1
		{p0, ^uint64(0), big.NewInt(0).SetUint64(p0)}, // fold check
		{^uint64(0), ^uint64(0), big.NewInt(1)},       // 2^128-1 == 2*(2^127-1)+1 == 1
	}
	for i, c := range cases {
		e := SetLimbs(c.lo, c.hi)
		in := new(big.Int).SetUint64(c.hi)
		in.Lsh(in, 64).Add(in, new(big.Int).SetUint64(c.lo))
		want := new(big.Int).Mod(in, bigP)
		if toBig(e).Cmp(want) != 0 {
			t.Errorf("case %d: SetLimbs(%#x,%#x) = %v, want %v", i, c.lo, c.hi, toBig(e), want)
		}
	}
}

func TestAddMatchesBigInt(t *testing.T) {
	f := func(a, b Element) bool {
		got := toBig(Add(a, b))
		want := new(big.Int).Add(toBig(a), toBig(b))
		want.Mod(want, bigP)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBigInt(t *testing.T) {
	f := func(a, b Element) bool {
		got := toBig(Sub(a, b))
		want := new(big.Int).Sub(toBig(a), toBig(b))
		want.Mod(want, bigP)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	f := func(a, b Element) bool {
		got := toBig(Mul(a, b))
		want := new(big.Int).Mul(toBig(a), toBig(b))
		want.Mod(want, bigP)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSqrMatchesMul(t *testing.T) {
	f := func(a Element) bool {
		return Sqr(a).Equal(Mul(a, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMulSmallMatchesMul(t *testing.T) {
	f := func(a Element, v uint64) bool {
		return MulSmall(a, v).Equal(Mul(a, New(v)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	assoc := func(a, b, c Element) bool {
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c))) &&
			Add(Add(a, b), c).Equal(Add(a, Add(b, c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	comm := func(a, b Element) bool {
		return Mul(a, b).Equal(Mul(b, a)) && Add(a, b).Equal(Add(b, a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	distrib := func(a, b, c Element) bool {
		return Mul(a, Add(b, c)).Equal(Add(Mul(a, b), Mul(a, c)))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error("distributivity:", err)
	}
	ident := func(a Element) bool {
		return Mul(a, One()).Equal(a) && Add(a, Zero()).Equal(a)
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	inverse := func(a Element) bool {
		return Add(a, Neg(a)).IsZero() && Sub(a, a).IsZero()
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error("additive inverse:", err)
	}
}

func TestInv(t *testing.T) {
	if !Inv(Zero()).IsZero() {
		t.Error("Inv(0) should be 0 by convention")
	}
	if !Inv(One()).IsOne() {
		t.Error("Inv(1) != 1")
	}
	f := func(a Element) bool {
		if a.IsZero() {
			return true
		}
		return Mul(a, Inv(a)).IsOne()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Cross-check against big.Int ModInverse.
	rng := mrand.New(mrand.NewSource(7))
	for i := 0; i < 20; i++ {
		a := randElement(rng)
		if a.IsZero() {
			continue
		}
		want := new(big.Int).ModInverse(toBig(a), bigP)
		if toBig(Inv(a)).Cmp(want) != 0 {
			t.Fatalf("Inv mismatch for %v", a)
		}
	}
}

func TestExp(t *testing.T) {
	rng := mrand.New(mrand.NewSource(11))
	for i := 0; i < 50; i++ {
		a := randElement(rng)
		e := []uint64{rng.Uint64(), rng.Uint64() & mask127}
		be := new(big.Int).SetUint64(e[1])
		be.Lsh(be, 64).Add(be, new(big.Int).SetUint64(e[0]))
		want := new(big.Int).Exp(toBig(a), be, bigP)
		if toBig(Exp(a, e)).Cmp(want) != 0 {
			t.Fatalf("Exp mismatch: a=%v e=%v", a, be)
		}
	}
	if !Exp(New(5), []uint64{0}).IsOne() {
		t.Error("a^0 != 1")
	}
}

func TestSqrt(t *testing.T) {
	rng := mrand.New(mrand.NewSource(13))
	squares, nonSquares := 0, 0
	for i := 0; i < 100; i++ {
		a := randElement(rng)
		s := Sqr(a)
		r, ok := Sqrt(s)
		if !ok {
			t.Fatalf("Sqrt failed on a known square %v", s)
		}
		if !Sqr(r).Equal(s) {
			t.Fatalf("Sqrt returned a non-root")
		}
		if IsSquare(s) {
			squares++
		}
		b := randElement(rng)
		if !IsSquare(b) {
			nonSquares++
			if _, ok := Sqrt(b); ok {
				t.Fatalf("Sqrt succeeded on a non-square")
			}
		}
	}
	if squares != 100 {
		t.Errorf("IsSquare failed on %d known squares", 100-squares)
	}
	if nonSquares == 0 {
		t.Error("suspicious: no non-squares among random elements")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a Element) bool {
		b := a.Bytes()
		got, err := FromBytes(b[:])
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesRejectsNonCanonical(t *testing.T) {
	// Encoding of p itself.
	enc := Element{l0: p0, l1: p1}
	b := enc.Bytes()
	if _, err := FromBytes(b[:]); err == nil {
		t.Error("FromBytes accepted encoding of p")
	}
	// Bit 127 set.
	var hi [Size]byte
	hi[15] = 0x80
	if _, err := FromBytes(hi[:]); err == nil {
		t.Error("FromBytes accepted encoding with bit 127 set")
	}
	if _, err := FromBytes(make([]byte, 5)); err == nil {
		t.Error("FromBytes accepted short encoding")
	}
}

func TestRandom(t *testing.T) {
	seen := map[Element]bool{}
	for i := 0; i < 32; i++ {
		e, err := Random(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		seen[e] = true
	}
	if len(seen) < 32 {
		t.Error("Random produced duplicates; extremely unlikely")
	}
}

func TestFermat(t *testing.T) {
	// a^(p-1) == 1 for a != 0.
	pm1 := []uint64{p0 - 1, p1}
	rng := mrand.New(mrand.NewSource(17))
	for i := 0; i < 10; i++ {
		a := randElement(rng)
		if a.IsZero() {
			continue
		}
		if !Exp(a, pm1).IsOne() {
			t.Fatalf("Fermat violated for %v", a)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x, y := randElement(rng), randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	sink = x
}

func BenchmarkSqr(b *testing.B) {
	rng := mrand.New(mrand.NewSource(2))
	x := randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Sqr(x)
	}
	sink = x
}

func BenchmarkInv(b *testing.B) {
	rng := mrand.New(mrand.NewSource(3))
	x := randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Inv(x)
	}
	sink = x
}

var sink Element

func TestLegendreMultiplicative(t *testing.T) {
	f := func(a, b Element) bool {
		if a.IsZero() || b.IsZero() {
			return true
		}
		return IsSquare(Mul(a, b)) == (IsSquare(a) == IsSquare(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCTHelpersMatchBranches(t *testing.T) {
	f := func(a, b Element) bool {
		if !CSelect(1, a, b).Equal(a) || !CSelect(0, a, b).Equal(b) {
			return false
		}
		eq := CTEq(a, b)
		return (eq == 1) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
