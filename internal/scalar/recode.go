package scalar

// This file implements steps 3-5 of the paper's Algorithm 1: the four-way
// scalar decomposition and the GLV-SAC signed all-nonzero recoding
// (Faz-Hernandez, Longa, Sanchez), producing for each of the 65 loop
// iterations a sign s_i in {+1,-1} and a table index v_i in [0,7].

// Digits is the number of recoded digit positions: 64-bit sub-scalars
// recode into 65 signed digits (the paper's loop runs i = 64 down to 0).
const Digits = 65

// Decomposition is the output of Decompose: four 64-bit sub-scalars plus
// the parity-correction flag.
type Decomposition struct {
	// A holds the four sub-scalars a1..a4 (A[0] is a1).
	A [4]uint64
	// Corrected is set when a1 was even and had to be incremented to
	// satisfy the recoding's oddness requirement. The caller must then
	// subtract the base point once from the final result:
	// [k]P = [k']P - P with k' = k+1.
	Corrected bool
}

// Decompose splits k into four 64-bit sub-scalars a1..a4 such that
// k = a1 + a2*2^64 + a3*2^128 + a4*2^192, forcing a1 odd (see
// Decomposition.Corrected). With the multi-base point set
// {P, [2^64]P, [2^128]P, [2^192]P} this makes
// [k]P = [a1]P + [a2]P2 + [a3]P3 + [a4]P4, the shape of equation (2) in
// the paper.
func Decompose(k Scalar) Decomposition {
	d := Decomposition{A: [4]uint64{k[0], k[1], k[2], k[3]}}
	if d.A[0]&1 == 0 {
		// a1 must be odd for GLV-SAC; k even => use k+1 and correct later.
		// a1 is even so a1+1 cannot carry.
		d.A[0]++
		d.Corrected = true
	}
	return d
}

// Recoded is the matrix of signed digits from GLV-SAC recoding.
type Recoded struct {
	// Sign[i] is s_i in {+1, -1}: the sign applied to the table entry at
	// iteration i (i = Digits-1 is consumed first).
	Sign [Digits]int8
	// Index[i] is v_i in [0, 7]: which precomputed point T[v_i] to use.
	Index [Digits]uint8
}

// Recode applies the GLV-SAC recoding to a decomposition. a1 must be odd
// (guaranteed by Decompose). The recoded output satisfies, for each j,
//
//	a_j = sum_i b_j[i] * 2^i
//
// where b_1[i] = Sign[i] and b_j[i] in {0, Sign[i]} is bit j-2 of
// Index[i] times Sign[i], for j = 2..4.
func Recode(d Decomposition) Recoded {
	var r Recoded
	a1 := d.A[0]
	if a1&1 == 0 {
		panic("scalar: Recode requires odd a1")
	}

	// b1: the sign row. b1[i] = 2*bit(a1, i+1) - 1 for i < Digits-1,
	// b1[Digits-1] = +1.
	var b1 [Digits]int8
	for i := 0; i < Digits-1; i++ {
		bit := int8(0)
		if i+1 < 64 {
			bit = int8(a1 >> uint(i+1) & 1)
		}
		b1[i] = 2*bit - 1
	}
	b1[Digits-1] = 1

	// Rows 2..4: digit extraction. The GLV-SAC recurrence is
	//   b_j[i] = b1[i] * (k_j mod 2)
	//   k_j   <- floor(k_j/2) - floor(b_j[i]/2)
	// and floor(b_j[i]/2) is -1 exactly when the current bit is set and
	// the sign row is negative, so k_j gains a +1 carry in that case.
	// k_j never goes negative and is fully consumed after Digits steps.
	// The loop body is branchless: secret bits become masks, so the
	// recoding is usable from the constant-time path.
	var idx [Digits]uint8
	for j := 1; j < 4; j++ {
		kj := d.A[j]
		for i := 0; i < Digits; i++ {
			bit := kj & 1
			idx[i] |= uint8(bit) << uint(j-1)
			negSign := uint64(uint8(b1[i])) >> 7 // 1 iff b1[i] < 0
			kj = kj>>1 + (bit & negSign)
		}
		if kj != 0 {
			panic("scalar: recoding failed to consume sub-scalar")
		}
	}

	r.Index = idx
	copy(r.Sign[:], b1[:])
	return r
}

// ReconstructDigit returns the value contribution of digit position i for
// sub-scalar row j (j = 0 is the sign row itself). Used by tests to verify
// the recoding identity.
func (r Recoded) ReconstructDigit(j, i int) int64 {
	s := int64(r.Sign[i])
	if j == 0 {
		return s
	}
	if r.Index[i]>>(uint(j-1))&1 == 1 {
		return s
	}
	return 0
}
