// Package scalar implements 256-bit scalars for FourQ scalar
// multiplication: arithmetic modulo the prime subgroup order N, the
// four-way scalar decomposition, and the GLV-SAC signed recoding used by
// steps 3-5 of the paper's Algorithm 1.
//
// The decomposition here splits k into its four base-2^64 digits, pairing
// with the multi-base point set {P, [2^64]P, [2^128]P, [2^192]P}. This is
// the documented substitution for the Costello-Longa endomorphism
// decomposition (see DESIGN.md): steps 2-10 of Algorithm 1 -- table
// construction, recoding and the 64-iteration double-and-add loop -- are
// structurally identical, which is what the ASIC scheduling study needs.
//
// Scalar-field arithmetic (mod N) uses math/big internally; it runs once
// per signature, never inside the SM datapath, and is not constant time.
package scalar

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Size is the byte length of an encoded scalar.
const Size = 32

// Scalar is a 256-bit unsigned integer in four little-endian 64-bit limbs.
// Scalars are *not* implicitly reduced modulo the group order; FourQ's SM
// accepts any k in [0, 2^256).
type Scalar [4]uint64

// NHex is the order of the prime-order subgroup of FourQ (246 bits).
const NHex = "29cbc14e5e0a72f05397829cbc14e5dfbd004dfe0f79992fb2540ec7768ce7"

// Cofactor is #E(F_p^2) / N = 392 = 2^3 * 7^2.
const Cofactor = 392

// bigN is the subgroup order as a big.Int (initialized once, read-only).
var bigN = mustBig(NHex)

func mustBig(hex string) *big.Int {
	v, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("scalar: bad constant " + hex)
	}
	return v
}

// Order returns a copy of the subgroup order N.
func Order() *big.Int { return new(big.Int).Set(bigN) }

// FromUint64 returns the scalar with value v.
func FromUint64(v uint64) Scalar { return Scalar{v} }

// FromBig returns the scalar k mod 2^256.
func FromBig(v *big.Int) Scalar {
	var s Scalar
	red := new(big.Int).And(v, mask256)
	if v.Sign() < 0 {
		red.Mod(v, two256)
	}
	for i := 0; i < 4; i++ {
		s[i] = new(big.Int).Rsh(red, uint(64*i)).Uint64()
	}
	return s
}

var (
	two256  = new(big.Int).Lsh(big.NewInt(1), 256)
	mask256 = new(big.Int).Sub(two256, big.NewInt(1))
)

// Big returns the scalar as a big.Int.
func (s Scalar) Big() *big.Int {
	v := new(big.Int)
	for i := 3; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Add(v, new(big.Int).SetUint64(s[i]))
	}
	return v
}

// IsZero reports whether s == 0.
func (s Scalar) IsZero() bool {
	return s[0]|s[1]|s[2]|s[3] == 0
}

// Equal reports whether two scalars are identical, in constant time.
func (s Scalar) Equal(t Scalar) bool {
	var b [Size]byte
	var c [Size]byte
	sb, tb := s.Bytes(), t.Bytes()
	copy(b[:], sb[:])
	copy(c[:], tb[:])
	return subtle.ConstantTimeCompare(b[:], c[:]) == 1
}

// Bit returns bit i of the scalar (0 for i >= 256).
func (s Scalar) Bit(i int) uint64 {
	if i < 0 || i >= 256 {
		return 0
	}
	return s[i/64] >> (uint(i) % 64) & 1
}

// BitLen returns the minimal number of bits needed to represent s.
func (s Scalar) BitLen() int {
	for i := 3; i >= 0; i-- {
		if s[i] != 0 {
			n := 0
			for v := s[i]; v != 0; v >>= 1 {
				n++
			}
			return 64*i + n
		}
	}
	return 0
}

// Bytes returns the 32-byte little-endian encoding.
func (s Scalar) Bytes() [Size]byte {
	var out [Size]byte
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[8*i+j] = byte(s[i] >> (8 * j))
		}
	}
	return out
}

// FromBytes decodes a 32-byte little-endian scalar.
func FromBytes(b []byte) (Scalar, error) {
	if len(b) != Size {
		return Scalar{}, fmt.Errorf("scalar: encoding must be %d bytes, got %d", Size, len(b))
	}
	var s Scalar
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			s[i] |= uint64(b[8*i+j]) << (8 * j)
		}
	}
	return s, nil
}

// Random returns a uniformly random scalar in [1, N-1], suitable as a
// private key or signing nonce.
func Random(r io.Reader) (Scalar, error) {
	for {
		var buf [Size]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Scalar{}, err
		}
		v := new(big.Int).SetBytes(buf[:])
		v.Mod(v, bigN)
		if v.Sign() == 0 {
			continue
		}
		return FromBig(v), nil
	}
}

// errZeroInverse is returned when inverting zero mod N.
var errZeroInverse = errors.New("scalar: inverse of zero")

// ModN reduces s modulo the subgroup order N (limb-based Montgomery
// reduction; see mont.go).
func ModN(s Scalar) Scalar {
	return Scalar(reduceFull([4]uint64(s)))
}

// AddModN returns a + b mod N. Inputs may be unreduced.
func AddModN(a, b Scalar) Scalar {
	return Scalar(addModNLimbs(reduceFull([4]uint64(a)), reduceFull([4]uint64(b))))
}

// SubModN returns a - b mod N. Inputs may be unreduced.
func SubModN(a, b Scalar) Scalar {
	return Scalar(subModNLimbs(reduceFull([4]uint64(a)), reduceFull([4]uint64(b))))
}

// MulModN returns a * b mod N. Inputs may be unreduced.
func MulModN(a, b Scalar) Scalar {
	am := toMont([4]uint64(a)) // montMul accepts any 256-bit value
	bm := toMont([4]uint64(b))
	return Scalar(fromMont(montMul(am, bm)))
}

// InvModN returns a^-1 mod N, or an error for a == 0 mod N.
func InvModN(a Scalar) (Scalar, error) {
	r := reduceFull([4]uint64(a))
	if r == ([4]uint64{}) {
		return Scalar{}, errZeroInverse
	}
	return Scalar(invModNLimbs(r)), nil
}

// String formats the scalar as 0x-prefixed big-endian hex.
func (s Scalar) String() string {
	return fmt.Sprintf("0x%016x%016x%016x%016x", s[3], s[2], s[1], s[0])
}
