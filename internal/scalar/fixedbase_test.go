package scalar

import (
	"math/big"
	"math/rand"
	"testing"
)

// fixedBaseValue reconstructs Σ d_i·16^i from a recoding.
func fixedBaseValue(rec Recoded) *big.Int {
	v := new(big.Int)
	base := big.NewInt(1)
	sixteen := big.NewInt(16)
	for i := 0; i < FixedBaseDigits; i++ {
		d := int64(2*rec.Index[i] + 1)
		if rec.Sign[i] < 0 {
			d = -d
		}
		term := new(big.Int).Mul(base, big.NewInt(d))
		v.Add(v, term)
		base = new(big.Int).Mul(base, sixteen)
	}
	return v
}

func checkFixedBaseRecoding(t *testing.T, k Scalar) {
	t.Helper()
	rec, corrected := RecodeFixedBase(k)
	// Digit shape: every position in range, odd magnitude, sign ±1; the
	// top digit is always +1; unused positions stay zero.
	for i := 0; i < FixedBaseDigits; i++ {
		if rec.Sign[i] != 1 && rec.Sign[i] != -1 {
			t.Fatalf("digit %d: sign %d", i, rec.Sign[i])
		}
		if rec.Index[i] > 7 {
			t.Fatalf("digit %d: index %d out of range", i, rec.Index[i])
		}
	}
	if rec.Sign[FixedBaseDigits-1] != 1 || rec.Index[FixedBaseDigits-1] != 0 {
		t.Fatalf("top digit not +1: sign=%d index=%d",
			rec.Sign[FixedBaseDigits-1], rec.Index[FixedBaseDigits-1])
	}
	for i := FixedBaseDigits; i < Digits; i++ {
		if rec.Sign[i] != 0 || rec.Index[i] != 0 {
			t.Fatalf("position %d not zero: sign=%d index=%d", i, rec.Sign[i], rec.Index[i])
		}
	}
	// Reconstruction: the digits must encode ModN(k), plus one when the
	// correction flag says the recoder forced parity.
	want := new(big.Int).Mod(k.Big(), Order())
	if corrected {
		want.Add(want, big.NewInt(1))
	}
	if corrected != (new(big.Int).Mod(k.Big(), Order()).Bit(0) == 0) {
		t.Fatalf("corrected=%v disagrees with parity of k mod N", corrected)
	}
	if got := fixedBaseValue(rec); got.Cmp(want) != 0 {
		t.Fatalf("reconstruction mismatch for k=%v:\n got %v\nwant %v", k, got, want)
	}
}

func TestRecodeFixedBaseEdges(t *testing.T) {
	nMinus1 := FromBig(new(big.Int).Sub(Order(), big.NewInt(1)))
	n := FromBig(Order())
	all1s := Scalar{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	for _, k := range []Scalar{
		{},            // 0 mod N: corrected to 1, all low digits collapse
		{1, 0, 0, 0},  // already odd minimal
		{2, 0, 0, 0},  // even, corrected
		{16, 0, 0, 0}, // single-window carry
		nMinus1,       // largest residue
		n,             // ≡ 0 mod N
		all1s,         // full 256-bit input, reduced first
	} {
		checkFixedBaseRecoding(t, k)
	}
}

func TestRecodeFixedBaseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		var k Scalar
		for j := range k {
			k[j] = rng.Uint64()
		}
		checkFixedBaseRecoding(t, k)
	}
}
