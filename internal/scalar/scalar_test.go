package scalar

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator for Scalar.
func (Scalar) Generate(r *mrand.Rand, _ int) reflect.Value {
	var s Scalar
	switch r.Intn(8) {
	case 0:
		// zero
	case 1:
		s = Scalar{1}
	case 2:
		s = Scalar{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	default:
		for i := range s {
			s[i] = r.Uint64()
		}
	}
	return reflect.ValueOf(s)
}

func TestOrderProperties(t *testing.T) {
	n := Order()
	if n.BitLen() != 246 {
		t.Errorf("N should be 246 bits, got %d", n.BitLen())
	}
	if !n.ProbablyPrime(64) {
		t.Error("N is not prime")
	}
}

func TestBigRoundTrip(t *testing.T) {
	f := func(s Scalar) bool {
		return FromBig(s.Big()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(s Scalar) bool {
		b := s.Bytes()
		got, err := FromBytes(b[:])
		return err == nil && got.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromBytes(make([]byte, 31)); err == nil {
		t.Error("FromBytes accepted short input")
	}
}

func TestBitAndBitLen(t *testing.T) {
	s := Scalar{0b1011, 0, 0, 1}
	if s.Bit(0) != 1 || s.Bit(1) != 1 || s.Bit(2) != 0 || s.Bit(3) != 1 {
		t.Error("Bit() wrong in low limb")
	}
	if s.Bit(192) != 1 || s.Bit(193) != 0 {
		t.Error("Bit() wrong in high limb")
	}
	if s.Bit(-1) != 0 || s.Bit(256) != 0 {
		t.Error("Bit() out of range should be 0")
	}
	if s.BitLen() != 193 {
		t.Errorf("BitLen = %d, want 193", s.BitLen())
	}
	if (Scalar{}).BitLen() != 0 {
		t.Error("BitLen(0) != 0")
	}
}

func TestModNArithmetic(t *testing.T) {
	n := Order()
	f := func(a, b Scalar) bool {
		sum := AddModN(a, b).Big()
		want := new(big.Int).Add(a.Big(), b.Big())
		want.Mod(want, n)
		if sum.Cmp(want) != 0 {
			return false
		}
		diff := SubModN(a, b).Big()
		want = new(big.Int).Sub(a.Big(), b.Big())
		want.Mod(want, n)
		if diff.Cmp(want) != 0 {
			return false
		}
		prod := MulModN(a, b).Big()
		want = new(big.Int).Mul(a.Big(), b.Big())
		want.Mod(want, n)
		return prod.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvModN(t *testing.T) {
	if _, err := InvModN(Scalar{}); err == nil {
		t.Error("InvModN(0) should fail")
	}
	f := func(a Scalar) bool {
		if ModN(a).IsZero() {
			return true
		}
		inv, err := InvModN(a)
		if err != nil {
			return false
		}
		return MulModN(a, inv).Equal(FromUint64(1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomScalar(t *testing.T) {
	n := Order()
	for i := 0; i < 16; i++ {
		s, err := Random(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if s.IsZero() {
			t.Fatal("Random returned zero")
		}
		if s.Big().Cmp(n) >= 0 {
			t.Fatal("Random returned >= N")
		}
	}
}

func TestDecompose(t *testing.T) {
	f := func(k Scalar) bool {
		d := Decompose(k)
		if d.A[0]&1 != 1 {
			return false
		}
		// Reconstruct: a1 + a2*2^64 + a3*2^128 + a4*2^192 == k (+1 if corrected).
		v := new(big.Int)
		for i := 3; i >= 0; i-- {
			v.Lsh(v, 64)
			v.Add(v, new(big.Int).SetUint64(d.A[i]))
		}
		want := k.Big()
		if d.Corrected {
			want.Add(want, big.NewInt(1))
		}
		return v.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// reconstructRecoded recovers the four sub-scalars from a recoding.
func reconstructRecoded(r Recoded) [4]*big.Int {
	var out [4]*big.Int
	for j := 0; j < 4; j++ {
		v := new(big.Int)
		for i := Digits - 1; i >= 0; i-- {
			v.Lsh(v, 1)
			v.Add(v, big.NewInt(r.ReconstructDigit(j, i)))
		}
		out[j] = v
	}
	return out
}

func TestRecodeRoundTrip(t *testing.T) {
	f := func(k Scalar) bool {
		d := Decompose(k)
		r := Recode(d)
		got := reconstructRecoded(r)
		for j := 0; j < 4; j++ {
			if got[j].Cmp(new(big.Int).SetUint64(d.A[j])) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecodeDigitRanges(t *testing.T) {
	f := func(k Scalar) bool {
		r := Recode(Decompose(k))
		for i := 0; i < Digits; i++ {
			if r.Sign[i] != 1 && r.Sign[i] != -1 {
				return false
			}
			if r.Index[i] > 7 {
				return false
			}
		}
		// Top digit always has positive sign.
		return r.Sign[Digits-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecodePanicsOnEven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Recode accepted even a1")
		}
	}()
	Recode(Decomposition{A: [4]uint64{2, 0, 0, 0}})
}

func TestDecomposeEdgeCases(t *testing.T) {
	// k = 0: a1 becomes 1, corrected.
	d := Decompose(Scalar{})
	if !d.Corrected || d.A[0] != 1 {
		t.Error("Decompose(0) should correct to a1=1")
	}
	// k with a1 = 2^64-1 (odd): no correction.
	d = Decompose(Scalar{^uint64(0)})
	if d.Corrected {
		t.Error("odd a1 should not be corrected")
	}
	// k with a1 = 2^64-2 (even): corrected without overflow.
	d = Decompose(Scalar{^uint64(0) - 1})
	if !d.Corrected || d.A[0] != ^uint64(0) {
		t.Error("even a1 correction wrong")
	}
}

func BenchmarkDecomposeRecode(b *testing.B) {
	rng := mrand.New(mrand.NewSource(5))
	var k Scalar
	for i := range k {
		k[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Recode(Decompose(k))
		benchSink = r.Index[0]
	}
}

var benchSink uint8
