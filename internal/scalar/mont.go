package scalar

import (
	"math/big"

	"repro/internal/mont"
)

// Limb-based arithmetic modulo the subgroup order N, built on the
// generic Montgomery package. The public AddModN/SubModN/MulModN/InvModN
// functions run entirely on 4x64-bit limbs; math/big appears only in the
// test suite as the reference implementation.

// nLimbs is N in little-endian limbs.
var nLimbs = [4]uint64{
	0x2FB2540EC7768CE7,
	0xDFBD004DFE0F7999,
	0xF05397829CBC14E5,
	0x0029CBC14E5E0A72,
}

// modN is the precomputed Montgomery context for N.
var modN = func() *mont.Modulus {
	m, err := mont.NewModulus(nLimbs)
	if err != nil {
		panic("scalar: " + err.Error())
	}
	// Cross-check the hex constant against bigN once at init.
	check := new(big.Int)
	for i := 3; i >= 0; i-- {
		check.Lsh(check, 64)
		check.Add(check, new(big.Int).SetUint64(nLimbs[i]))
	}
	if check.Cmp(bigN) != 0 {
		panic("scalar: N limb constant disagrees with NHex")
	}
	return m
}()

// Internal helpers used by scalar.go; kept as named functions so the
// call sites read like the algorithm descriptions.

func reduceFull(a [4]uint64) [4]uint64      { return modN.Reduce(a) }
func toMont(a [4]uint64) [4]uint64          { return modN.ToMont(a) }
func fromMont(a [4]uint64) [4]uint64        { return modN.FromMont(a) }
func montMul(a, b [4]uint64) [4]uint64      { return modN.Mul(a, b) }
func addModNLimbs(a, b [4]uint64) [4]uint64 { return modN.Add(a, b) }
func subModNLimbs(a, b [4]uint64) [4]uint64 { return modN.Sub(a, b) }

// invModNLimbs computes a^-1 mod N (a reduced, non-zero) by Fermat
// exponentiation (N is prime).
func invModNLimbs(a [4]uint64) [4]uint64 {
	return modN.FromMont(modN.InvFermat(modN.ToMont(a)))
}
