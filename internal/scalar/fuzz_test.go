package scalar

import (
	"math/big"
	"testing"
)

// FuzzDecomposeRecodeRoundTrip drives the decode-recode round-trip
// invariant on fuzz-chosen scalars: decomposing k and applying the
// GLV-SAC recoding must yield signed digit rows that reconstruct each
// sub-scalar exactly — i.e. for every row j,
//
//	a_j == sum_i ReconstructDigit(j, i) * 2^i
//
// with a_1 = k_0 (+1 when the parity correction fired), and the digit
// encoding must stay within its domain (sign in {+1,-1}, index < 8,
// all-nonzero digits as GLV-SAC guarantees).
func FuzzDecomposeRecodeRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(2), uint64(0), uint64(0), uint64(0)) // even: correction path
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(0xDEADBEEF), uint64(1)<<63, uint64(42), uint64(7))

	f.Fuzz(func(t *testing.T, k0, k1, k2, k3 uint64) {
		k := Scalar{k0, k1, k2, k3}
		d := Decompose(k)

		// Decomposition contract: pass-through limbs with a1 forced odd.
		if d.A[0]&1 == 0 {
			t.Fatalf("a1 = %#x is even after Decompose", d.A[0])
		}
		wantA0 := k0
		if d.Corrected {
			if k0&1 != 0 {
				t.Fatal("correction fired on an odd scalar")
			}
			wantA0 = k0 + 1
		}
		if d.A[0] != wantA0 || d.A[1] != k1 || d.A[2] != k2 || d.A[3] != k3 {
			t.Fatalf("Decompose(%v) = %+v, want limbs (%#x,%#x,%#x,%#x)", k, d, wantA0, k1, k2, k3)
		}

		r := Recode(d)
		for i := 0; i < Digits; i++ {
			if r.Sign[i] != 1 && r.Sign[i] != -1 {
				t.Fatalf("digit %d sign %d outside {+1,-1}: GLV-SAC digits are all-nonzero", i, r.Sign[i])
			}
			if r.Index[i] > 7 {
				t.Fatalf("digit %d table index %d out of range", i, r.Index[i])
			}
		}
		if r.Sign[Digits-1] != 1 {
			t.Fatal("top digit must be positive (a1 is odd and positive)")
		}

		// Round trip: each digit row reconstructs its sub-scalar. Rows
		// can transiently exceed 64 bits, so reconstruct in big.Int.
		for j := 0; j < 4; j++ {
			sum := new(big.Int)
			bit := new(big.Int)
			for i := 0; i < Digits; i++ {
				c := r.ReconstructDigit(j, i)
				if c == 0 {
					continue
				}
				bit.SetInt64(c)
				bit.Lsh(bit, uint(i))
				sum.Add(sum, bit)
			}
			want := new(big.Int).SetUint64(d.A[j])
			if sum.Cmp(want) != 0 {
				t.Fatalf("row %d reconstructs to %v, want %#x (k=%v)", j, sum, d.A[j], k)
			}
		}
	})
}
