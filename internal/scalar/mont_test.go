package scalar

import (
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// Reference implementations over math/big, used only to verify the limb
// code.

func refMod(a Scalar) Scalar {
	v := new(big.Int).Mod(a.Big(), bigN)
	return FromBig(v)
}

func refMul(a, b Scalar) Scalar {
	v := new(big.Int).Mul(a.Big(), b.Big())
	v.Mod(v, bigN)
	return FromBig(v)
}

func TestNPrime(t *testing.T) {
	// NPrime * N[0] == -1 mod 2^64.
	if modN.NPrime*nLimbs[0] != ^uint64(0) {
		t.Fatalf("NPrime wrong: %#x", modN.NPrime)
	}
}

func TestR2Constant(t *testing.T) {
	want := new(big.Int).Lsh(big.NewInt(1), 512)
	want.Mod(want, bigN)
	got := Scalar(modN.R2).Big()
	if got.Cmp(want) != 0 {
		t.Fatal("R^2 constant wrong")
	}
}

func TestMontRoundTrip(t *testing.T) {
	f := func(a Scalar) bool {
		r := reduceFull([4]uint64(a))
		return Scalar(fromMont(toMont(r))) == Scalar(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReduceFullMatchesBig(t *testing.T) {
	f := func(a Scalar) bool {
		return ModN(a).Equal(refMod(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Boundary cases.
	cases := []Scalar{
		{},
		{1},
		Scalar(nLimbs),
		{nLimbs[0] - 1, nLimbs[1], nLimbs[2], nLimbs[3]}, // N-1
		{nLimbs[0] + 1, nLimbs[1], nLimbs[2], nLimbs[3]}, // N+1
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
	}
	for _, c := range cases {
		if !ModN(c).Equal(refMod(c)) {
			t.Fatalf("ModN(%v) mismatch", c)
		}
	}
}

func TestMontMulMatchesBig(t *testing.T) {
	f := func(a, b Scalar) bool {
		return MulModN(a, b).Equal(refMul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// N-1 squared and friends.
	nm1 := Scalar{nLimbs[0] - 1, nLimbs[1], nLimbs[2], nLimbs[3]}
	all1 := Scalar{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	for _, pair := range [][2]Scalar{{nm1, nm1}, {all1, all1}, {nm1, all1}, {Scalar(nLimbs), nm1}} {
		if !MulModN(pair[0], pair[1]).Equal(refMul(pair[0], pair[1])) {
			t.Fatalf("MulModN boundary mismatch for %v * %v", pair[0], pair[1])
		}
	}
}

func TestLimbAddSubMatchBig(t *testing.T) {
	rng := mrand.New(mrand.NewSource(321))
	for i := 0; i < 2000; i++ {
		a := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		b := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		sum := new(big.Int).Add(a.Big(), b.Big())
		sum.Mod(sum, bigN)
		if AddModN(a, b).Big().Cmp(sum) != 0 {
			t.Fatalf("AddModN mismatch for %v + %v", a, b)
		}
		diff := new(big.Int).Sub(a.Big(), b.Big())
		diff.Mod(diff, bigN)
		if SubModN(a, b).Big().Cmp(diff) != 0 {
			t.Fatalf("SubModN mismatch for %v - %v", a, b)
		}
	}
}

func TestInvModNLimbsMatchesBig(t *testing.T) {
	rng := mrand.New(mrand.NewSource(654))
	for i := 0; i < 50; i++ {
		a := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		if ModN(a).IsZero() {
			continue
		}
		got, err := InvModN(a)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).ModInverse(new(big.Int).Mod(a.Big(), bigN), bigN)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("InvModN mismatch for %v", a)
		}
	}
	// Multiples of N invert to an error.
	if _, err := InvModN(Scalar(nLimbs)); err == nil {
		t.Error("InvModN(N) should fail")
	}
}

func BenchmarkMulModN(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	y := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = MulModN(x, y)
	}
	scalarSink = x
}

func BenchmarkInvModN(b *testing.B) {
	rng := mrand.New(mrand.NewSource(2))
	x := Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		x, err = InvModN(x)
		if err != nil {
			b.Fatal(err)
		}
	}
	scalarSink = x
}

var scalarSink Scalar
