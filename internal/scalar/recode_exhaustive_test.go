package scalar

import (
	"math/big"
	"testing"
)

// TestRecodeExhaustiveSmall verifies the decompose+recode pipeline for
// every scalar with interesting small sub-scalars: all 2^12 combinations
// of 8-valued digits across the four limbs, plus every k < 1024. This
// catches carry/borrow edge cases randomized testing can miss.
func TestRecodeExhaustiveSmall(t *testing.T) {
	check := func(k Scalar) {
		t.Helper()
		d := Decompose(k)
		r := Recode(d)
		for j := 0; j < 4; j++ {
			v := new(big.Int)
			for i := Digits - 1; i >= 0; i-- {
				v.Lsh(v, 1)
				v.Add(v, big.NewInt(r.ReconstructDigit(j, i)))
			}
			if v.Cmp(new(big.Int).SetUint64(d.A[j])) != 0 {
				t.Fatalf("k=%v row %d: reconstructed %v, want %d", k, j, v, d.A[j])
			}
		}
	}
	for k := uint64(0); k < 1024; k++ {
		check(Scalar{k})
	}
	vals := []uint64{0, 1, 2, 3, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				for _, d := range vals {
					check(Scalar{a, b, c, d})
				}
			}
		}
	}
}

// TestRecodeSignIndexCoverage verifies every (sign, index) pair is
// reachable at digit position 0 by engineered scalars (the runtime
// addressing cases the RTL must handle).
func TestRecodeSignIndexCoverage(t *testing.T) {
	seen := map[[2]int]bool{}
	for idx := 0; idx < 8; idx++ {
		for signBit := uint64(0); signBit < 2; signBit++ {
			k := Scalar{
				1 | signBit<<1,
				uint64(idx) & 1,
				uint64(idx) >> 1 & 1,
				uint64(idx) >> 2 & 1,
			}
			r := Recode(Decompose(k))
			seen[[2]int{int(r.Sign[0]), int(r.Index[0])}] = true
			if int(r.Index[0]) != idx {
				t.Fatalf("engineered index %d, got %d", idx, r.Index[0])
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d of 16 (sign,index) pairs", len(seen))
	}
}
