package scalar

import "math/bits"

// Fixed-base comb recoding. The fixed-base microprogram computes [k]G
// as a straight chain of FixedBaseDigits cached additions over
// precomputed windows — no doublings at all — so the scalar must be
// expressed in a form with no zero digits (a zero digit would need a
// branch, and the datapath's schedule is static). That form is signed
// odd radix-16:
//
//	k' = Σ_{i=0}^{FixedBaseDigits-1} d_i · 16^i,  d_i ∈ {±1, ±3, ..., ±15}
//
// where k' is k reduced mod N and forced odd. Odd digits mean only the
// 8 magnitudes per window need precomputing, and the sign rides the
// existing sign-swapped table pre-decode (X+Y ↔ Y−X, negate 2dT)
// unchanged.
//
// FixedBaseDigits is 63 because N < 2^246: the digit recurrence
// v_{i+1} = (v_i − d_i)/16 keeps v odd and shrinks it by 4 bits per
// step, so after 62 steps v has provably collapsed to exactly 1 — the
// top digit is always +1 and the chain length is constant for every
// scalar.
const FixedBaseDigits = 63

// RecodeFixedBase reduces k mod N, forces it odd (reporting the
// correction in the second return, wired to the microprogram's
// correction add exactly like Decompose's Corrected flag: the program
// then subtracts [1]G), and recodes it into FixedBaseDigits signed odd
// radix-16 digits packed the way the datapath's table operands consume
// them: Sign[i] = ±1 and Index[i] = (|d_i|−1)/2 ∈ [0,7]. Positions
// FixedBaseDigits and above stay zero; the fixed-base program never
// reads them. Since G has order N, [k']G with the correction applied
// equals [k]G for any 256-bit k.
func RecodeFixedBase(k Scalar) (Recoded, bool) {
	v := ModN(k)
	corrected := false
	if v[0]&1 == 0 {
		// v is even so the +1 stays within the low limb; v+1 ≤ N < 2^246.
		v[0]++
		corrected = true
	}
	var rec Recoded
	for i := 0; i < FixedBaseDigits-1; i++ {
		d := int64(v[0]&31) - 16 // odd, in [−15, 15], since v is odd
		if d >= 0 {
			// v mod 32 ≥ 17 here, so v > d and the subtraction never
			// underflows.
			var b uint64
			v[0], b = bits.Sub64(v[0], uint64(d), 0)
			v[1], b = bits.Sub64(v[1], 0, b)
			v[2], b = bits.Sub64(v[2], 0, b)
			v[3], _ = bits.Sub64(v[3], 0, b)
			rec.Sign[i] = 1
			rec.Index[i] = uint8((d - 1) / 2)
		} else {
			var c uint64
			v[0], c = bits.Add64(v[0], uint64(-d), 0)
			v[1], c = bits.Add64(v[1], 0, c)
			v[2], c = bits.Add64(v[2], 0, c)
			v[3], _ = bits.Add64(v[3], 0, c)
			rec.Sign[i] = -1
			rec.Index[i] = uint8((-d - 1) / 2)
		}
		// v ≡ 16 mod 32 now: shift the consumed digit out, staying odd.
		v[0] = v[0]>>4 | v[1]<<60
		v[1] = v[1]>>4 | v[2]<<60
		v[2] = v[2]>>4 | v[3]<<60
		v[3] >>= 4
	}
	if v != (Scalar{1, 0, 0, 0}) {
		panic("scalar: fixed-base recoding invariant broken (top digit != 1)")
	}
	rec.Sign[FixedBaseDigits-1] = 1
	rec.Index[FixedBaseDigits-1] = 0
	return rec, corrected
}
