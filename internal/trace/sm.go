package trace

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/scalar"
)

// This file is the reproduction of Fig. 2(a) of the paper: FourQ's scalar
// multiplication written against the high-level arithmetic DSL, whose
// execution leaves behind the microinstruction trace. The algorithm is
// the same as curve.ScalarMult (the paper's Algorithm 1 under the
// documented decomposition substitution), so the recorded trace evaluates
// to exactly the library's result.

// pointVals is a point in extended coordinates (R1) inside the trace.
type pointVals struct {
	X, Y, Z, Ta, Tb Val
}

// cachedVals is a cached point (X+Y, Y-X, 2Z, 2dT) inside the trace.
type cachedVals struct {
	XpY, YmX, Z2, T2d Val
}

// smBuilder wraps Builder with the curve constants it needs.
type smBuilder struct {
	*Builder
	d2  Val // 2d constant
	one Val
}

// double records the extended twisted Edwards doubling
// (7 multiplier ops + 6 adder ops), mirroring curve.Double.
func (b *smBuilder) double(p pointVals, tag string) pointVals {
	t1 := b.Sqr(p.X, tag+".x2")
	t2 := b.Sqr(p.Y, tag+".y2")
	xy := b.Add(p.X, p.Y, tag+".x+y")
	t3 := b.Sqr(xy, tag+".(x+y)2")
	tb := b.Add(t1, t2, tag+".tb")
	ta := b.Sub(t3, tb, tag+".ta")
	g := b.Sub(t2, t1, tag+".g")
	z2 := b.Sqr(p.Z, tag+".z2")
	zz := b.Add(z2, z2, tag+".2z2")
	f := b.Sub(zz, g, tag+".f")
	return pointVals{
		X:  b.Mul(ta, f, tag+".X"),
		Y:  b.Mul(g, tb, tag+".Y"),
		Z:  b.Mul(f, g, tag+".Z"),
		Ta: ta,
		Tb: tb,
	}
}

// addCached records the complete addition P + Q with Q given as explicit
// cached values (8 multiplier ops + 6 adder ops), mirroring
// curve.AddCached.
func (b *smBuilder) addCached(p pointVals, q cachedVals, tag string) pointVals {
	t0 := b.Mul(p.Ta, p.Tb, tag+".T1")
	t1 := b.Mul(t0, q.T2d, tag+".t1")
	t2 := b.Mul(p.Z, q.Z2, tag+".t2")
	xy := b.Add(p.X, p.Y, tag+".x+y")
	yx := b.Sub(p.Y, p.X, tag+".y-x")
	t3 := b.Mul(xy, q.XpY, tag+".t3")
	t4 := b.Mul(yx, q.YmX, tag+".t4")
	ta := b.Sub(t3, t4, tag+".ta")
	tb := b.Add(t3, t4, tag+".tb")
	f := b.Sub(t2, t1, tag+".f")
	g := b.Add(t2, t1, tag+".g")
	return pointVals{
		X:  b.Mul(ta, f, tag+".X"),
		Y:  b.Mul(g, tb, tag+".Y"),
		Z:  b.Mul(f, g, tag+".Z"),
		Ta: ta,
		Tb: tb,
	}
}

// addTable records P + s_i*T[v_i] with runtime table operands and the
// dynamic sign op: the paper's Fig. 2(b) double-and-add ADD block
// (8 multiplier ops + 7 adder ops; together with double this is the
// 15-mult/13-add sequence of Section III-C).
func (b *smBuilder) addTable(p pointVals, digit int, tag string) pointVals {
	t0 := b.Mul(p.Ta, p.Tb, tag+".T1")
	t2dRaw := b.TableRead(CoordT2d, digit)
	t2ds := b.DynSign(t2dRaw, digit, tag+".signsel")
	t1 := b.Mul(t0, t2ds, tag+".t1")
	t2 := b.Mul(p.Z, b.TableRead(CoordZ2, digit), tag+".t2")
	xy := b.Add(p.X, p.Y, tag+".x+y")
	yx := b.Sub(p.Y, p.X, tag+".y-x")
	t3 := b.Mul(xy, b.TableRead(CoordXplusY, digit), tag+".t3")
	t4 := b.Mul(yx, b.TableRead(CoordYminusX, digit), tag+".t4")
	ta := b.Sub(t3, t4, tag+".ta")
	tb := b.Add(t3, t4, tag+".tb")
	f := b.Sub(t2, t1, tag+".f")
	g := b.Add(t2, t1, tag+".g")
	return pointVals{
		X:  b.Mul(ta, f, tag+".X"),
		Y:  b.Mul(g, tb, tag+".Y"),
		Z:  b.Mul(f, g, tag+".Z"),
		Ta: ta,
		Tb: tb,
	}
}

// addCorr records the constant-structure parity correction: P + c where
// c is -P0 or O selected by the correction flag (digit -1).
func (b *smBuilder) addCorr(p pointVals, tag string) pointVals {
	t0 := b.Mul(p.Ta, p.Tb, tag+".T1")
	t2dRaw := b.CorrRead(CoordT2d)
	t2ds := b.DynSign(t2dRaw, -1, tag+".signsel")
	t1 := b.Mul(t0, t2ds, tag+".t1")
	t2 := b.Mul(p.Z, b.CorrRead(CoordZ2), tag+".t2")
	xy := b.Add(p.X, p.Y, tag+".x+y")
	yx := b.Sub(p.Y, p.X, tag+".y-x")
	t3 := b.Mul(xy, b.CorrRead(CoordXplusY), tag+".t3")
	t4 := b.Mul(yx, b.CorrRead(CoordYminusX), tag+".t4")
	ta := b.Sub(t3, t4, tag+".ta")
	tb := b.Add(t3, t4, tag+".tb")
	f := b.Sub(t2, t1, tag+".f")
	g := b.Add(t2, t1, tag+".g")
	return pointVals{
		X:  b.Mul(ta, f, tag+".X"),
		Y:  b.Mul(g, tb, tag+".Y"),
		Z:  b.Mul(f, g, tag+".Z"),
		Ta: ta,
		Tb: tb,
	}
}

// toCached records the R1 -> cached conversion (2 mults + 3 adds).
func (b *smBuilder) toCached(p pointVals, tag string) cachedVals {
	t := b.Mul(p.Ta, p.Tb, tag+".T")
	return cachedVals{
		XpY: b.Add(p.X, p.Y, tag+".x+y"),
		YmX: b.Sub(p.Y, p.X, tag+".y-x"),
		Z2:  b.Add(p.Z, p.Z, tag+".2z"),
		T2d: b.Mul(t, b.d2, tag+".2dt"),
	}
}

// invert records the GF(p^2) inversion z^-1 = conj(z) / norm(z), with
// the GF(p) Fermat inversion of the (real) norm run on the GF(p^2)
// multiplier. Mirrors fp.Inv's addition chain.
func (b *smBuilder) invert(z Val, tag string) Val {
	cz := b.Conj(z, tag+".conj")
	n := b.Mul(z, cz, tag+".norm") // (a^2+b^2) + 0i
	// Fermat chain for n^(p-2), p-2 = 2^127-3 (see fp.Inv).
	sqrN := func(x Val, k int, t string) Val {
		for i := 0; i < k; i++ {
			x = b.Sqr(x, fmt.Sprintf("%s.%s.s%d", tag, t, i))
		}
		return x
	}
	t1 := b.Sqr(n, tag+".c0")
	t1 = b.Mul(t1, n, tag+".c1") // n^3
	t2 := sqrN(t1, 2, "t2")
	t2 = b.Mul(t2, t1, tag+".c2") // n^(2^4-1)
	t3 := sqrN(t2, 4, "t3")
	t3 = b.Mul(t3, t2, tag+".c3") // 2^8-1
	t4 := sqrN(t3, 8, "t4")
	t4 = b.Mul(t4, t3, tag+".c4") // 2^16-1
	t5 := sqrN(t4, 16, "t5")
	t5 = b.Mul(t5, t4, tag+".c5") // 2^32-1
	t6 := sqrN(t5, 32, "t6")
	t6 = b.Mul(t6, t5, tag+".c6") // 2^64-1
	t7 := sqrN(t6, 61, "t7")
	t7 = b.Mul(t7, sqrN(t5, 29, "t5b"), tag+".c7")
	t7 = b.Mul(t7, sqrN(t4, 13, "t4b"), tag+".c8")
	t7 = b.Mul(t7, sqrN(t3, 5, "t3b"), tag+".c9")
	t7 = b.Mul(t7, sqrN(t2, 1, "t2b"), tag+".c10") // n^(2^125-2)
	r := sqrN(t7, 2, "r")
	r = b.Mul(r, t1, tag+".c11")                  // n^(2^127-5)
	r = b.Mul(r, b.Sqr(n, tag+".n2"), tag+".c12") // n^(2^127-3) = n^-1
	return b.Mul(cz, r, tag+".zinv")
}

// ScalarMultTrace is the result of recording a full scalar
// multiplication.
type ScalarMultTrace struct {
	Graph *Graph
	// XOut, YOut are the value IDs of the affine result.
	XOut, YOut int
	// Sections records op-count boundaries for profiling/reporting:
	// [multibase, tablebuild, mainloop, correction+normalize].
	Sections map[string][2]int // name -> [firstOp, lastOp)
}

// BuildScalarMult records the complete SM of Algorithm 1 for base point p
// and scalar k: multibase doublings, table build, recoded main loop,
// parity correction, and final normalization to affine coordinates.
func BuildScalarMult(k scalar.Scalar, p curve.Affine) (*ScalarMultTrace, error) {
	bb := NewBuilder()
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	bb.SetScalar(rec, dec.Corrected)

	b := &smBuilder{Builder: bb}
	b.Zero()
	b.one = b.Const("one", fp2.One())
	b.Const("two", fp2.FromUint64(2, 0)) // cached-identity Z2 for the correction read
	b.d2 = b.Const("2d", curve.D2())

	px := b.Input("P.x", p.X)
	py := b.Input("P.y", p.Y)

	sections := map[string][2]int{}
	mark := func(name string, from int) {
		sections[name] = [2]int{from, len(b.g.Ops)}
	}

	// Step 1 (substituted): multibase Q_j = [2^64]Q_{j-1} by doubling.
	base := pointVals{X: px, Y: py, Z: b.one, Ta: px, Tb: py}
	start := len(b.g.Ops)
	var bases [4]pointVals
	bases[0] = base
	q := base
	for j := 1; j < 4; j++ {
		for i := 0; i < 64; i++ {
			q = b.double(q, fmt.Sprintf("mb%d.%d", j, i))
		}
		bases[j] = q
	}
	mark("multibase", start)

	// Step 2: table build.
	start = len(b.g.Ops)
	c1 := b.toCached(bases[1], "cQ1")
	c2 := b.toCached(bases[2], "cQ2")
	c3 := b.toCached(bases[3], "cQ3")
	var pts [8]pointVals
	pts[0] = bases[0]
	pts[1] = b.addCached(pts[0], c1, "tb1")
	pts[2] = b.addCached(pts[0], c2, "tb2")
	pts[3] = b.addCached(pts[1], c2, "tb3")
	pts[4] = b.addCached(pts[0], c3, "tb4")
	pts[5] = b.addCached(pts[1], c3, "tb5")
	pts[6] = b.addCached(pts[2], c3, "tb6")
	pts[7] = b.addCached(pts[3], c3, "tb7")
	var slots [8][4]Val
	for u := 0; u < 8; u++ {
		c := b.toCached(pts[u], fmt.Sprintf("T%d", u))
		slots[u] = [4]Val{c.XpY, c.YmX, c.Z2, c.T2d}
	}
	b.RegisterTable(slots)
	mark("tablebuild", start)

	// Steps 6-10: main loop.
	start = len(b.g.Ops)
	identity := pointVals{X: b.Zero(), Y: b.one, Z: b.one, Ta: b.Zero(), Tb: b.one}
	acc := b.addTable(identity, scalar.Digits-1, "init")
	for i := scalar.Digits - 2; i >= 0; i-- {
		acc = b.double(acc, fmt.Sprintf("dbl%d", i))
		acc = b.addTable(acc, i, fmt.Sprintf("add%d", i))
	}
	mark("mainloop", start)

	// Parity correction + normalization.
	start = len(b.g.Ops)
	acc = b.addCorr(acc, "corr")
	zinv := b.invert(acc.Z, "inv")
	x := b.Mul(acc.X, zinv, "out.x")
	y := b.Mul(acc.Y, zinv, "out.y")
	mark("finalize", start)

	b.Output("x", x)
	b.Output("y", y)

	g := b.Graph()
	if err := g.CheckConsistency(); err != nil {
		return nil, err
	}
	return &ScalarMultTrace{Graph: g, XOut: x.ID(), YOut: y.ID(), Sections: sections}, nil
}

// BuildScalarMultWithBases records the SM trace with the three auxiliary
// base points supplied as inputs instead of being computed by doublings:
// the workload shape of the paper's actual Algorithm 1, where step 1
// applies the phi/psi endomorphisms (our documented substitution computes
// the same points externally; the processor-level cycle count for step 1
// is modelled separately, see core.EndoStepCycles).
func BuildScalarMultWithBases(k scalar.Scalar, bases [4]curve.Affine) (*ScalarMultTrace, error) {
	bb := NewBuilder()
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	bb.SetScalar(rec, dec.Corrected)

	b := &smBuilder{Builder: bb}
	b.Zero()
	b.one = b.Const("one", fp2.One())
	b.Const("two", fp2.FromUint64(2, 0))
	b.d2 = b.Const("2d", curve.D2())

	sections := map[string][2]int{}
	mark := func(name string, from int) {
		sections[name] = [2]int{from, len(b.g.Ops)}
	}

	var basePts [4]pointVals
	for j := 0; j < 4; j++ {
		x := b.Input(fmt.Sprintf("P%d.x", j), bases[j].X)
		y := b.Input(fmt.Sprintf("P%d.y", j), bases[j].Y)
		basePts[j] = pointVals{X: x, Y: y, Z: b.one, Ta: x, Tb: y}
	}

	start := len(b.g.Ops)
	c1 := b.toCached(basePts[1], "cQ1")
	c2 := b.toCached(basePts[2], "cQ2")
	c3 := b.toCached(basePts[3], "cQ3")
	var pts [8]pointVals
	pts[0] = basePts[0]
	pts[1] = b.addCached(pts[0], c1, "tb1")
	pts[2] = b.addCached(pts[0], c2, "tb2")
	pts[3] = b.addCached(pts[1], c2, "tb3")
	pts[4] = b.addCached(pts[0], c3, "tb4")
	pts[5] = b.addCached(pts[1], c3, "tb5")
	pts[6] = b.addCached(pts[2], c3, "tb6")
	pts[7] = b.addCached(pts[3], c3, "tb7")
	var slots [8][4]Val
	for u := 0; u < 8; u++ {
		c := b.toCached(pts[u], fmt.Sprintf("T%d", u))
		slots[u] = [4]Val{c.XpY, c.YmX, c.Z2, c.T2d}
	}
	b.RegisterTable(slots)
	mark("tablebuild", start)

	start = len(b.g.Ops)
	identity := pointVals{X: b.Zero(), Y: b.one, Z: b.one, Ta: b.Zero(), Tb: b.one}
	acc := b.addTable(identity, scalar.Digits-1, "init")
	for i := scalar.Digits - 2; i >= 0; i-- {
		acc = b.double(acc, fmt.Sprintf("dbl%d", i))
		acc = b.addTable(acc, i, fmt.Sprintf("add%d", i))
	}
	mark("mainloop", start)

	start = len(b.g.Ops)
	acc = b.addCorr(acc, "corr")
	zinv := b.invert(acc.Z, "inv")
	x := b.Mul(acc.X, zinv, "out.x")
	y := b.Mul(acc.Y, zinv, "out.y")
	mark("finalize", start)

	b.Output("x", x)
	b.Output("y", y)

	g := b.Graph()
	if err := g.CheckConsistency(); err != nil {
		return nil, err
	}
	return &ScalarMultTrace{Graph: g, XOut: x.ID(), YOut: y.ID(), Sections: sections}, nil
}

// BuildDblAdd records one standalone double-and-add loop iteration (the
// paper's Fig. 2(b) / Table I block): inputs are the accumulator
// coordinates and an 8-entry table; the block performs DBL then
// ADD-with-table at digit position 0. Used for the Table I experiment and
// scheduler ablations.
func BuildDblAdd(k scalar.Scalar, acc curve.Point, table [8]curve.Cached) (*ScalarMultTrace, error) {
	bb := NewBuilder()
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	bb.SetScalar(rec, dec.Corrected)

	b := &smBuilder{Builder: bb}
	b.Zero()

	p := pointVals{
		X:  b.Input("Q.x", acc.X),
		Y:  b.Input("Q.y", acc.Y),
		Z:  b.Input("Q.z", acc.Z),
		Ta: b.Input("Q.ta", acc.Ta),
		Tb: b.Input("Q.tb", acc.Tb),
	}
	var slots [8][4]Val
	for u := 0; u < 8; u++ {
		slots[u] = [4]Val{
			b.Input(fmt.Sprintf("T%d.x+y", u), table[u].XplusY),
			b.Input(fmt.Sprintf("T%d.y-x", u), table[u].YminusX),
			b.Input(fmt.Sprintf("T%d.2z", u), table[u].Z2),
			b.Input(fmt.Sprintf("T%d.2dt", u), table[u].T2d),
		}
	}
	b.RegisterTable(slots)

	q := b.double(p, "dbl")
	q = b.addTable(q, 0, "add")

	b.Output("x", q.X)
	b.Output("y", q.Y)
	b.Output("z", q.Z)
	b.Output("ta", q.Ta)
	b.Output("tb", q.Tb)

	g := b.Graph()
	if err := g.CheckConsistency(); err != nil {
		return nil, err
	}
	return &ScalarMultTrace{Graph: g, XOut: g.Outputs["x"], YOut: g.Outputs["y"]}, nil
}
