package trace

import (
	"fmt"

	"repro/internal/fp2"
	"repro/internal/scalar"
)

// Val is a handle to a graph value, carrying its concrete evaluation.
type Val struct {
	id int
	v  fp2.Element
}

// ID returns the underlying value node ID.
func (v Val) ID() int { return v.id }

// Concrete returns the evaluated field element.
func (v Val) Concrete() fp2.Element { return v.v }

// Builder records operations into a Graph while evaluating them.
// The recoded scalar digits (when set) resolve runtime table reads.
type Builder struct {
	g         *Graph
	rec       scalar.Recoded
	corrected bool
	hasRec    bool
	zero      Val
	hasZero   bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{g: &Graph{
		Inputs:  map[string]int{},
		Outputs: map[string]int{},
	}}
}

// SetScalar provides the recoded digits used to resolve table reads and
// dynamic sign commands during concrete evaluation.
func (b *Builder) SetScalar(rec scalar.Recoded, corrected bool) {
	b.rec = rec
	b.corrected = corrected
	b.hasRec = true
}

// Graph finalizes and returns the recorded graph.
func (b *Builder) Graph() *Graph { return b.g }

func (b *Builder) newValue(kind SrcKind, op int, name string, concrete fp2.Element) Val {
	id := len(b.g.Values)
	b.g.Values = append(b.g.Values, Value{ID: id, Kind: kind, Op: op, Name: name, Digit: -1})
	b.g.Concrete = append(b.g.Concrete, concrete)
	return Val{id: id, v: concrete}
}

// Input declares an externally loaded value.
func (b *Builder) Input(name string, v fp2.Element) Val {
	val := b.newValue(SrcInput, -1, name, v)
	b.g.Inputs[name] = val.id
	return val
}

// Const declares a register-file constant.
func (b *Builder) Const(name string, v fp2.Element) Val {
	return b.newValue(SrcConst, -1, name, v)
}

// Zero returns the shared zero constant (declared on first use).
func (b *Builder) Zero() Val {
	if !b.hasZero {
		b.zero = b.Const("zero", fp2.Zero())
		b.hasZero = true
	}
	return b.zero
}

// Output names a value as an external output.
func (b *Builder) Output(name string, v Val) {
	b.g.Outputs[name] = v.id
}

func (b *Builder) record(op Op, concrete fp2.Element) Val {
	op.ID = len(b.g.Ops)
	out := b.newValue(SrcOp, op.ID, op.Label, concrete)
	op.Out = out.id
	b.g.Ops = append(b.g.Ops, op)
	// fix the Op field of the output value (newValue set Op already).
	return out
}

// Mul records x*y on the multiplier.
func (b *Builder) Mul(x, y Val, label string) Val {
	return b.record(Op{Unit: UnitMul, A: x.id, B: y.id, Digit: -1, Label: label}, fp2.Mul(x.v, y.v))
}

// Sqr records x*x (squarings issue on the multiplier as ordinary
// multiplications, as in the paper's datapath).
func (b *Builder) Sqr(x Val, label string) Val { return b.Mul(x, x, label) }

// Add records x+y on the adder.
func (b *Builder) Add(x, y Val, label string) Val {
	return b.record(Op{Unit: UnitAdd, CmdRe: LaneAdd, CmdIm: LaneAdd, A: x.id, B: y.id, Digit: -1, Label: label},
		fp2.Add(x.v, y.v))
}

// Sub records x-y on the adder.
func (b *Builder) Sub(x, y Val, label string) Val {
	return b.record(Op{Unit: UnitAdd, CmdRe: LaneSub, CmdIm: LaneSub, A: x.id, B: y.id, Digit: -1, Label: label},
		fp2.Sub(x.v, y.v))
}

// Conj records the conjugation (0+re, 0-im) as an adder op with
// per-lane commands and first operand zero.
func (b *Builder) Conj(x Val, label string) Val {
	z := b.Zero()
	re := fp2.Conj(x.v)
	return b.record(Op{Unit: UnitAdd, CmdRe: LaneAdd, CmdIm: LaneSub, A: z.id, B: x.id, Digit: -1, Label: label}, re)
}

// DynSign records the sign-application op of the main loop: (0 +/- x)
// with the command driven at runtime by the sign of recoded digit
// position `digit` (or by the correction flag when digit == -1).
func (b *Builder) DynSign(x Val, digit int, label string) Val {
	z := b.Zero()
	neg := b.signAt(digit) < 0
	conc := x.v
	if neg {
		conc = fp2.Neg(x.v)
	}
	return b.record(Op{Unit: UnitAdd, CmdMode: CmdDynSign, A: z.id, B: x.id, Digit: digit, Label: label}, conc)
}

func (b *Builder) signAt(digit int) int8 {
	if !b.hasRec {
		return 1
	}
	if digit < 0 {
		if b.corrected {
			return -1
		}
		return 1
	}
	return b.rec.Sign[digit]
}

// RegisterTable records the value IDs that produce the 8x4 table
// coordinates. Must be called before TableRead.
func (b *Builder) RegisterTable(slots [8][4]Val) {
	for u := 0; u < 8; u++ {
		for c := 0; c < 4; c++ {
			b.g.TableSlots[u][TableCoord(c)] = slots[u][c].id
		}
	}
	b.g.hasTable = true
}

// TableRead records a runtime-indexed table operand: coordinate coord of
// T[v_digit], with the X+Y / Y-X swap applied when the digit's sign is
// negative. Concrete evaluation resolves the read using the builder's
// recoded scalar.
func (b *Builder) TableRead(coord TableCoord, digit int) Val {
	if !b.g.hasTable {
		panic("trace: TableRead before RegisterTable")
	}
	if digit < 0 || digit >= scalar.Digits {
		panic(fmt.Sprintf("trace: digit %d out of range", digit))
	}
	idx := 0
	sign := int8(1)
	if b.hasRec {
		idx = int(b.rec.Index[digit])
		sign = b.rec.Sign[digit]
	}
	effective := coord
	if sign < 0 {
		switch coord {
		case CoordXplusY:
			effective = CoordYminusX
		case CoordYminusX:
			effective = CoordXplusY
		}
	}
	src := b.g.TableSlots[idx][effective]
	conc := b.g.Concrete[src]
	id := len(b.g.Values)
	b.g.Values = append(b.g.Values, Value{ID: id, Kind: SrcTable, Op: -1, Coord: coord, Digit: digit})
	b.g.Concrete = append(b.g.Concrete, conc)
	return Val{id: id, v: conc}
}

// RegisterROM installs the fixed-base window constants consumed by
// ROMRead: windows[w-1][u][c] is coordinate c of entry u of window w
// (window 0 is register-file territory — see RegisterTable). Must be
// called before ROMRead.
func (b *Builder) RegisterROM(windows [][8][4]fp2.Element) {
	b.g.ROM = make([][8][numCoords]fp2.Element, len(windows))
	for w := range windows {
		for u := 0; u < 8; u++ {
			for c := 0; c < 4; c++ {
				b.g.ROM[w][u][TableCoord(c)] = windows[w][u][c]
			}
		}
	}
}

// ROMRead records a runtime-indexed ROM operand: coordinate coord of
// entry v_window of ROM window `window` (which is also the recoded
// digit position driving the index and sign), with the same X+Y / Y-X
// sign swap as TableRead. ROM contents are constants, so the read has
// no producer dependencies and burns no register-file port.
func (b *Builder) ROMRead(coord TableCoord, window int) Val {
	if window < 1 || window > len(b.g.ROM) {
		panic(fmt.Sprintf("trace: ROM window %d outside [1,%d]", window, len(b.g.ROM)))
	}
	if window >= scalar.Digits {
		panic(fmt.Sprintf("trace: ROM window %d exceeds digit positions", window))
	}
	idx := 0
	sign := int8(1)
	if b.hasRec {
		idx = int(b.rec.Index[window])
		sign = b.rec.Sign[window]
	}
	effective := coord
	if sign < 0 {
		switch coord {
		case CoordXplusY:
			effective = CoordYminusX
		case CoordYminusX:
			effective = CoordXplusY
		}
	}
	conc := b.g.ROM[window-1][idx][effective]
	id := len(b.g.Values)
	b.g.Values = append(b.g.Values, Value{ID: id, Kind: SrcROM, Op: -1, Coord: coord, Digit: window})
	b.g.Concrete = append(b.g.Concrete, conc)
	return Val{id: id, v: conc}
}

// CorrRead records the correction operand for coordinate coord: the
// corresponding coordinate of -P (table slot 0, swapped) when the
// decomposition was parity-corrected, else the cached identity constant.
func (b *Builder) CorrRead(coord TableCoord) Val {
	if !b.g.hasTable {
		panic("trace: CorrRead before RegisterTable")
	}
	var conc fp2.Element
	if b.corrected {
		effective := coord
		switch coord {
		case CoordXplusY:
			effective = CoordYminusX
		case CoordYminusX:
			effective = CoordXplusY
		}
		conc = b.g.Concrete[b.g.TableSlots[0][effective]]
		if coord == CoordT2d {
			// the dynamic sign op downstream negates 2dT; the raw read is
			// the stored (positive) coordinate.
			conc = b.g.Concrete[b.g.TableSlots[0][CoordT2d]]
		}
	} else {
		switch coord {
		case CoordXplusY, CoordYminusX:
			conc = fp2.One()
		case CoordZ2:
			conc = fp2.FromUint64(2, 0)
		case CoordT2d:
			conc = fp2.Zero()
		}
	}
	id := len(b.g.Values)
	b.g.Values = append(b.g.Values, Value{ID: id, Kind: SrcCorr, Op: -1, Coord: coord, Digit: -1})
	b.g.Concrete = append(b.g.Concrete, conc)
	return Val{id: id, v: conc}
}
