package trace

import (
	mrand "math/rand"
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/scalar"
)

func randScalar(r *mrand.Rand) scalar.Scalar {
	var s scalar.Scalar
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}

func TestBuilderBasicOps(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", fp2.FromUint64(3, 5))
	y := b.Input("y", fp2.FromUint64(7, 11))
	m := b.Mul(x, y, "m")
	if !m.Concrete().Equal(fp2.Mul(x.Concrete(), y.Concrete())) {
		t.Fatal("Mul concrete wrong")
	}
	a := b.Add(x, y, "a")
	if !a.Concrete().Equal(fp2.Add(x.Concrete(), y.Concrete())) {
		t.Fatal("Add concrete wrong")
	}
	s := b.Sub(x, y, "s")
	if !s.Concrete().Equal(fp2.Sub(x.Concrete(), y.Concrete())) {
		t.Fatal("Sub concrete wrong")
	}
	c := b.Conj(x, "c")
	if !c.Concrete().Equal(fp2.Conj(x.Concrete())) {
		t.Fatal("Conj concrete wrong")
	}
	g := b.Graph()
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if g.NumMuls() != 1 || g.NumAdds() != 3 {
		t.Fatalf("op counts wrong: %d muls %d adds", g.NumMuls(), g.NumAdds())
	}
}

func TestBuildScalarMultMatchesLibrary(t *testing.T) {
	rng := mrand.New(mrand.NewSource(61))
	g := curve.GeneratorAffine()
	for trial := 0; trial < 3; trial++ {
		k := randScalar(rng)
		tr, err := BuildScalarMult(k, g)
		if err != nil {
			t.Fatal(err)
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		gotX := tr.Graph.Concrete[tr.XOut]
		gotY := tr.Graph.Concrete[tr.YOut]
		if !gotX.Equal(want.X) || !gotY.Equal(want.Y) {
			t.Fatalf("trial %d: trace evaluation disagrees with curve.ScalarMult", trial)
		}
	}
}

func TestBuildScalarMultCorrectedScalar(t *testing.T) {
	// Even scalar forces the parity-correction path.
	k := scalar.Scalar{42}
	tr, err := BuildScalarMult(k, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !tr.Graph.Concrete[tr.XOut].Equal(want.X) || !tr.Graph.Concrete[tr.YOut].Equal(want.Y) {
		t.Fatal("corrected-path trace disagrees with library")
	}
}

func TestScalarMultTraceStats(t *testing.T) {
	rng := mrand.New(mrand.NewSource(62))
	tr, err := BuildScalarMult(randScalar(rng), curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Graph.Stats()
	// The paper profiles GF(p^2) multiplications at ~57% of SM operations.
	if st.MulShare < 0.45 || st.MulShare > 0.70 {
		t.Errorf("multiplication share %.2f outside the plausible band around the paper's 57%%", st.MulShare)
	}
	if st.Total < 3000 {
		t.Errorf("full SM trace suspiciously small: %d ops", st.Total)
	}
	// Sections must partition consecutively.
	for _, name := range []string{"multibase", "tablebuild", "mainloop", "finalize"} {
		if _, ok := tr.Sections[name]; !ok {
			t.Errorf("missing section %s", name)
		}
	}
}

func TestDblAddBlockMatchesLibrary(t *testing.T) {
	rng := mrand.New(mrand.NewSource(63))
	for trial := 0; trial < 4; trial++ {
		k := randScalar(rng)
		p := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
		table := curve.BuildTable(curve.NewMultiBase(p))
		acc := curve.ScalarMultBinary(randScalar(rng), curve.Generator())

		tr, err := BuildDblAdd(k, acc, table)
		if err != nil {
			t.Fatal(err)
		}
		dec := scalar.Decompose(k)
		rec := scalar.Recode(dec)
		want := curve.AddCached(curve.Double(acc), table[rec.Index[0]].CondNeg(rec.Sign[0]))
		g := tr.Graph
		got := curve.Point{
			X:  g.Concrete[g.Outputs["x"]],
			Y:  g.Concrete[g.Outputs["y"]],
			Z:  g.Concrete[g.Outputs["z"]],
			Ta: g.Concrete[g.Outputs["ta"]],
			Tb: g.Concrete[g.Outputs["tb"]],
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: DBLADD block disagrees with library", trial)
		}
	}
}

func TestDblAddBlockOpCounts(t *testing.T) {
	// Section III-C: the double-and-add loop body is 15 GF(p^2)
	// multiplications and 13 additions/subtractions.
	rng := mrand.New(mrand.NewSource(64))
	p := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(p))
	tr, err := BuildDblAdd(randScalar(rng), p, table)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Graph.NumMuls(); got != 15 {
		t.Errorf("DBLADD multiplications = %d, want 15 (paper)", got)
	}
	if got := tr.Graph.NumAdds(); got != 13 {
		t.Errorf("DBLADD add/subs = %d, want 13 (paper)", got)
	}
}

func TestOperandDepsTableReads(t *testing.T) {
	rng := mrand.New(mrand.NewSource(65))
	tr, err := BuildScalarMult(randScalar(rng), curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Graph
	// Find a table-read value and check it depends on table producers.
	found := false
	for _, v := range g.Values {
		if v.Kind == SrcTable && v.Coord == CoordZ2 {
			deps := g.OperandDeps(v.ID)
			if len(deps) != 8 {
				t.Fatalf("2Z table read should depend on 8 producers, got %d", len(deps))
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no table read in trace")
	}
	// X+Y reads must depend on both swapped coordinates (16 producers).
	for _, v := range g.Values {
		if v.Kind == SrcTable && v.Coord == CoordXplusY {
			if deps := g.OperandDeps(v.ID); len(deps) != 16 {
				t.Fatalf("X+Y table read should depend on 16 producers, got %d", len(deps))
			}
			break
		}
	}
}

func TestCheckConsistencyCatchesCorruption(t *testing.T) {
	rng := mrand.New(mrand.NewSource(66))
	p := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(p))
	tr, err := BuildDblAdd(randScalar(rng), p, table)
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Graph
	// Corrupt: op referencing an out-of-range value.
	bad := *g
	badOps := append([]Op(nil), g.Ops...)
	badOps[3].A = 1 << 20
	bad.Ops = badOps
	if bad.CheckConsistency() == nil {
		t.Error("out-of-range operand not caught")
	}
}

func TestTableReadBeforeRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TableRead before RegisterTable did not panic")
		}
	}()
	b := NewBuilder()
	b.TableRead(CoordZ2, 0)
}

func BenchmarkBuildScalarMult(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	k := randScalar(rng)
	g := curve.GeneratorAffine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildScalarMult(k, g); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDOTExport(t *testing.T) {
	rng := mrand.New(mrand.NewSource(71))
	p := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(p))
	tr, err := BuildDblAdd(randScalar(rng), p, table)
	if err != nil {
		t.Fatal(err)
	}
	dot := tr.Graph.DOT("dbladd")
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "T[v0]", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// One node per op.
	if got := strings.Count(dot, "[shape=box"); got != tr.Graph.NumMuls() {
		t.Errorf("box nodes %d, want %d", got, tr.Graph.NumMuls())
	}
}

func TestBuildScalarMultWithBases(t *testing.T) {
	rng := mrand.New(mrand.NewSource(72))
	k := randScalar(rng)
	mb := curve.NewMultiBase(curve.Generator())
	var bases [4]curve.Affine
	for j := 0; j < 4; j++ {
		bases[j] = mb.P[j].Affine()
	}
	tr, err := BuildScalarMultWithBases(k, bases)
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !tr.Graph.Concrete[tr.XOut].Equal(want.X) || !tr.Graph.Concrete[tr.YOut].Equal(want.Y) {
		t.Fatal("with-bases trace disagrees with library")
	}
	if _, ok := tr.Sections["multibase"]; ok {
		t.Fatal("with-bases trace should have no multibase section")
	}
	// The endo-workload trace is much smaller than the functional one.
	full, err := BuildScalarMult(k, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Graph.Ops) >= len(full.Graph.Ops) {
		t.Fatal("with-bases trace not smaller than full trace")
	}
}
