package trace

import (
	mrand "math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
)

func TestBuildFixedBaseMatchesLibrary(t *testing.T) {
	rng := mrand.New(mrand.NewSource(62))
	g := curve.GeneratorAffine()
	tab := curve.NewFixedBaseTable(curve.Generator())
	for trial := 0; trial < 3; trial++ {
		k := randScalar(rng)
		tr, err := BuildFixedBaseScalarMult(k, g)
		if err != nil {
			t.Fatal(err)
		}
		// Two oracles: the generic variable-base library walk and the
		// comb table the microprogram is meant to replace.
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		comb := tab.ScalarMult(k).Affine()
		if want != comb {
			t.Fatalf("trial %d: library oracles disagree", trial)
		}
		gotX := tr.Graph.Concrete[tr.XOut]
		gotY := tr.Graph.Concrete[tr.YOut]
		if !gotX.Equal(want.X) || !gotY.Equal(want.Y) {
			t.Fatalf("trial %d: fixed-base trace disagrees with curve.FixedBaseTable", trial)
		}
	}
}

func TestBuildFixedBaseEdgeScalars(t *testing.T) {
	g := curve.GeneratorAffine()
	for _, k := range []scalar.Scalar{
		{},   // ≡ 0 mod N: corrected, result is the identity
		{1},  // minimal odd
		{42}, // even: correction path
		scalar.FromBig(scalar.Order()),
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
	} {
		tr, err := BuildFixedBaseScalarMult(k, g)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !tr.Graph.Concrete[tr.XOut].Equal(want.X) || !tr.Graph.Concrete[tr.YOut].Equal(want.Y) {
			t.Fatalf("k=%v: fixed-base trace disagrees with library", k)
		}
	}
}

func TestBuildFixedBaseShape(t *testing.T) {
	tr, err := BuildFixedBaseScalarMult(scalar.Scalar{3}, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Graph
	// No external inputs: the program is fully self-contained.
	if len(g.Inputs) != 0 {
		t.Fatalf("fixed-base trace has %d inputs, want 0", len(g.Inputs))
	}
	// ROM registered for every window above 0.
	if len(g.ROM) != scalar.FixedBaseDigits-1 {
		t.Fatalf("ROM windows = %d, want %d", len(g.ROM), scalar.FixedBaseDigits-1)
	}
	// ROM reads have no scheduling dependencies (pure constants).
	romReads := 0
	for _, v := range g.Values {
		if v.Kind == SrcROM {
			romReads++
			if deps := g.OperandDeps(v.ID); len(deps) != 0 {
				t.Fatalf("SrcROM value %d has producer deps %v", v.ID, deps)
			}
		}
	}
	// 4 coordinates per ROM addition, FixedBaseDigits-1 of them.
	if want := 4 * (scalar.FixedBaseDigits - 1); romReads != want {
		t.Fatalf("rom reads = %d, want %d", romReads, want)
	}
	// The comb trades the doubling chain away: far fewer multiplier ops
	// than the variable-base trace's ~2589.
	if muls := g.NumMuls(); muls > 1200 {
		t.Fatalf("fixed-base trace has %d muls; comb should be far below the variable-base count", muls)
	}
}
