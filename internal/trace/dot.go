package trace

import (
	"fmt"
	"strings"
)

// DOT renders the dataflow graph in Graphviz format for visual
// inspection of the extracted dependencies (multiplications as boxes,
// adder ops as ellipses, runtime table reads as dashed inputs). Intended
// for block-sized traces; the full SM graph renders but is unwieldy.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontsize=10];\n", name)
	for _, op := range g.Ops {
		shape := "ellipse"
		if op.Unit == UnitMul {
			shape = "box"
		}
		label := op.Label
		if label == "" {
			label = fmt.Sprintf("op%d", op.ID)
		}
		fmt.Fprintf(&b, "  op%d [shape=%s,label=%q];\n", op.ID, shape, label)
	}
	// Input/const/table pseudo-nodes, emitted lazily.
	emitted := map[int]bool{}
	ensureValueNode := func(vid int) string {
		v := g.Values[vid]
		if v.Kind == SrcOp {
			return fmt.Sprintf("op%d", v.Op)
		}
		id := fmt.Sprintf("v%d", vid)
		if !emitted[vid] {
			emitted[vid] = true
			label := v.Name
			style := "solid"
			switch v.Kind {
			case SrcTable:
				label = fmt.Sprintf("T[v%d].%s", v.Digit, v.Coord)
				style = "dashed"
			case SrcCorr:
				label = fmt.Sprintf("corr.%s", v.Coord)
				style = "dashed"
			}
			fmt.Fprintf(&b, "  %s [shape=plaintext,style=%s,label=%q];\n", id, style, label)
		}
		return id
	}
	for _, op := range g.Ops {
		for _, operand := range [...]int{op.A, op.B} {
			src := ensureValueNode(operand)
			fmt.Fprintf(&b, "  %s -> op%d;\n", src, op.ID)
		}
	}
	for name, vid := range g.Outputs {
		v := g.Values[vid]
		if v.Kind == SrcOp {
			fmt.Fprintf(&b, "  out_%s [shape=plaintext,label=%q];\n  op%d -> out_%s;\n",
				sanitize(name), name, v.Op, sanitize(name))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
