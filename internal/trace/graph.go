// Package trace records the execution of FourQ's scalar-multiplication
// algorithm as a dataflow graph of GF(p^2) micro-operations. It is the
// reproduction of Steps 1-2 of the paper's automated scheduling flow: the
// algorithm is written once against a small arithmetic DSL, executed, and
// every subroutine call is recorded together with its data dependencies.
//
// The recorded graph is simultaneously *evaluated* on concrete field
// values, so the trace doubles as a golden reference when the scheduled
// program is later executed on the cycle-accurate RTL model.
package trace

import (
	"fmt"

	"repro/internal/fp2"
)

// Unit identifies the functional unit an operation issues on.
type Unit uint8

const (
	// UnitMul is the pipelined Karatsuba GF(p^2) multiplier.
	UnitMul Unit = iota
	// UnitAdd is the GF(p^2) adder/subtractor.
	UnitAdd
)

func (u Unit) String() string {
	if u == UnitMul {
		return "MUL"
	}
	return "ADD"
}

// LaneCmd selects add or subtract for one GF(p) lane of the adder.
type LaneCmd uint8

const (
	LaneAdd LaneCmd = iota
	LaneSub
)

// CmdMode describes how the adder command bits are produced.
type CmdMode uint8

const (
	// CmdStatic: the command bits are fixed in the instruction word.
	CmdStatic CmdMode = iota
	// CmdDynSign: both lanes compute (0 op x); op is + when the recoded
	// sign s_digit is positive and - when negative. This is the paper's
	// runtime "cmd." column driven by the scalar digits.
	CmdDynSign
)

// SrcKind classifies how a value is obtained.
type SrcKind uint8

const (
	// SrcOp: produced by an operation in the graph.
	SrcOp SrcKind = iota
	// SrcInput: an external input (loaded into the register file).
	SrcInput
	// SrcConst: a constant preloaded in the register file.
	SrcConst
	// SrcTable: a runtime-indexed read of the precomputed table T[v_i];
	// Coord selects the coordinate, Digit the recoded digit position.
	// When the digit's sign is negative the X+Y and Y-X coordinates swap.
	SrcTable
	// SrcCorr: the parity-correction operand: coordinate of -P (i.e.
	// table slot 0 with swap) when the decomposition was corrected, the
	// cached identity constant otherwise.
	SrcCorr
	// SrcROM: a runtime-indexed read of the fixed-base window ROM;
	// Coord selects the coordinate, Digit the window (equal to the
	// recoded digit position driving the entry index; window 0 lives in
	// the register-file table region as SrcTable). ROM contents are
	// program constants, so a SrcROM value has no producer dependencies
	// and consumes no register-file read port.
	SrcROM
)

// TableCoord names the four cached coordinates stored per table entry.
type TableCoord uint8

const (
	CoordXplusY TableCoord = iota
	CoordYminusX
	CoordZ2
	CoordT2d
	numCoords
)

func (c TableCoord) String() string {
	switch c {
	case CoordXplusY:
		return "X+Y"
	case CoordYminusX:
		return "Y-X"
	case CoordZ2:
		return "2Z"
	case CoordT2d:
		return "2dT"
	}
	return "?"
}

// Value is a node of the dataflow graph.
type Value struct {
	ID    int
	Kind  SrcKind
	Op    int        // producing op for SrcOp, else -1
	Name  string     // for inputs/constants/outputs
	Coord TableCoord // for SrcTable / SrcCorr
	Digit int        // for SrcTable: recoded digit position; -1 otherwise
}

// Op is a recorded GF(p^2) micro-operation.
type Op struct {
	ID           int
	Unit         Unit
	CmdMode      CmdMode
	CmdRe, CmdIm LaneCmd // static command bits (UnitAdd, CmdStatic)
	Digit        int     // digit position driving CmdDynSign; -1 = correction flag
	A, B         int     // operand value IDs
	Out          int     // produced value ID
	Label        string
}

// Graph is the full recorded trace.
type Graph struct {
	Values []Value
	Ops    []Op
	// Concrete holds the evaluated field element of every value (the
	// trace is recorded while executing on concrete data).
	Concrete []fp2.Element
	// TableSlots[u][c] is the value ID that produces coordinate c of
	// table entry T[u]. Zero-valued until the table is registered.
	TableSlots [8][numCoords]int
	hasTable   bool
	// ROM holds the fixed-base window constants read by SrcROM values:
	// ROM[w-1][u][c] is coordinate c of entry u of window w. Empty for
	// traces without ROM reads.
	ROM [][8][numCoords]fp2.Element
	// Inputs and Outputs name the external interface.
	Inputs  map[string]int
	Outputs map[string]int
}

// NumMuls returns the number of multiplier operations.
func (g *Graph) NumMuls() int {
	n := 0
	for _, op := range g.Ops {
		if op.Unit == UnitMul {
			n++
		}
	}
	return n
}

// NumAdds returns the number of adder operations.
func (g *Graph) NumAdds() int { return len(g.Ops) - g.NumMuls() }

// Stats summarizes the operation mix, reproducing the paper's profiling
// observation that GF(p^2) multiplications dominate the SM workload.
type Stats struct {
	Muls, Adds, Total int
	MulShare          float64
}

// Stats computes the op-mix summary of the graph.
func (g *Graph) Stats() Stats {
	m := g.NumMuls()
	t := len(g.Ops)
	s := Stats{Muls: m, Adds: t - m, Total: t}
	if t > 0 {
		s.MulShare = float64(m) / float64(t)
	}
	return s
}

// HasTable reports whether table slots were registered.
func (g *Graph) HasTable() bool { return g.hasTable }

// OperandDeps returns the op IDs a value depends on, used by the
// scheduler to build precedence edges. Table and correction reads depend
// conservatively on every producer of the coordinate pair they may read
// (the schedule must be valid for every scalar).
func (g *Graph) OperandDeps(valueID int) []int {
	v := g.Values[valueID]
	switch v.Kind {
	case SrcOp:
		return []int{v.Op}
	case SrcInput, SrcConst, SrcROM:
		return nil
	case SrcTable, SrcCorr:
		var deps []int
		add := func(id int) {
			if g.Values[id].Kind == SrcOp {
				deps = append(deps, g.Values[id].Op)
			}
		}
		slots := g.TableSlots
		appendCoord := func(c TableCoord) {
			if v.Kind == SrcCorr {
				add(slots[0][c])
				return
			}
			for u := 0; u < 8; u++ {
				add(slots[u][c])
			}
		}
		switch v.Coord {
		case CoordXplusY, CoordYminusX:
			// Sign swap may read either coordinate.
			appendCoord(CoordXplusY)
			appendCoord(CoordYminusX)
		default:
			appendCoord(v.Coord)
		}
		return deps
	}
	return nil
}

// CheckConsistency validates internal invariants of the graph: operand
// IDs in range, ops produce distinct values, table registration complete.
// Returns the first problem found.
func (g *Graph) CheckConsistency() error {
	if len(g.Concrete) != len(g.Values) {
		return fmt.Errorf("trace: %d concrete values for %d nodes", len(g.Concrete), len(g.Values))
	}
	seenOut := make(map[int]bool)
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("trace: op %d has ID %d", i, op.ID)
		}
		for _, v := range [...]int{op.A, op.B, op.Out} {
			if v < 0 || v >= len(g.Values) {
				return fmt.Errorf("trace: op %d references value %d out of range", i, v)
			}
		}
		if seenOut[op.Out] {
			return fmt.Errorf("trace: value %d produced twice", op.Out)
		}
		seenOut[op.Out] = true
		if g.Values[op.Out].Kind != SrcOp || g.Values[op.Out].Op != i {
			return fmt.Errorf("trace: op %d output value not linked back", i)
		}
		// Operands must be produced by earlier ops (SSA order).
		for _, v := range [...]int{op.A, op.B} {
			if g.Values[v].Kind == SrcOp && g.Values[v].Op >= i {
				return fmt.Errorf("trace: op %d uses value produced later", i)
			}
		}
	}
	for _, v := range g.Values {
		if v.Kind == SrcTable && !g.hasTable {
			return fmt.Errorf("trace: table read without registered table")
		}
		if v.Kind == SrcTable && (v.Digit < 0 || v.Digit > 64) {
			return fmt.Errorf("trace: table read digit %d out of range", v.Digit)
		}
		if v.Kind == SrcROM && (v.Digit < 1 || v.Digit > len(g.ROM)) {
			return fmt.Errorf("trace: ROM read window %d outside [1,%d]", v.Digit, len(g.ROM))
		}
	}
	return nil
}
