package trace

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/scalar"
)

// This file records the fixed-base comb scalar multiplication: the
// signing-side microprogram. Where the variable-base trace (sm.go)
// interleaves 64 doublings with 65 table additions — a dependence chain
// PR 9's solver work showed is depth-bound — the comb spends
// precomputed ROM instead: scalar.FixedBaseDigits cached additions
// against per-window odd-multiple tables, and no doublings at all. The
// window tables are program constants (the base point is fixed), so
// windows 1.. live in an operand ROM with its own read port (SrcROM)
// and only window 0 occupies the register-file table region — its first
// entry, [1]P, doubling as the parity-correction operand exactly like
// the variable-base program's T[0].

// addROM records P + s_w*ROM_w[v_w]: the comb's per-window addition,
// identical in shape to addTable (8 multiplier ops + 7 adder ops
// including the dynamic sign select) but sourcing the cached point from
// ROM window w, indexed at runtime by recoded digit w.
func (b *smBuilder) addROM(p pointVals, window int, tag string) pointVals {
	t0 := b.Mul(p.Ta, p.Tb, tag+".T1")
	t2dRaw := b.ROMRead(CoordT2d, window)
	t2ds := b.DynSign(t2dRaw, window, tag+".signsel")
	t1 := b.Mul(t0, t2ds, tag+".t1")
	t2 := b.Mul(p.Z, b.ROMRead(CoordZ2, window), tag+".t2")
	xy := b.Add(p.X, p.Y, tag+".x+y")
	yx := b.Sub(p.Y, p.X, tag+".y-x")
	t3 := b.Mul(xy, b.ROMRead(CoordXplusY, window), tag+".t3")
	t4 := b.Mul(yx, b.ROMRead(CoordYminusX, window), tag+".t4")
	ta := b.Sub(t3, t4, tag+".ta")
	tb := b.Add(t3, t4, tag+".tb")
	f := b.Sub(t2, t1, tag+".f")
	g := b.Add(t2, t1, tag+".g")
	return pointVals{
		X:  b.Mul(ta, f, tag+".X"),
		Y:  b.Mul(g, tb, tag+".Y"),
		Z:  b.Mul(f, g, tag+".Z"),
		Ta: ta,
		Tb: tb,
	}
}

// BuildFixedBaseScalarMult records the comb scalar multiplication [k]P
// for the fixed base p: signed odd radix-16 recoding (k reduced mod N,
// forced odd with the parity correction), one ROM addition per window
// from the top digit down to window 1, the window-0 addition against
// the register-file table, the correction add, and normalization to
// affine coordinates. The program has no external inputs — everything
// it consumes is constants and ROM — so one compiled instance serves
// every scalar.
func BuildFixedBaseScalarMult(k scalar.Scalar, p curve.Affine) (*ScalarMultTrace, error) {
	bb := NewBuilder()
	rec, corrected := scalar.RecodeFixedBase(k)
	bb.SetScalar(rec, corrected)

	b := &smBuilder{Builder: bb}
	b.Zero()
	b.one = b.Const("one", fp2.One())
	b.Const("two", fp2.FromUint64(2, 0)) // cached-identity Z2 for the correction read

	windows := curve.FixedBaseOddMultiples(curve.FromAffine(p), scalar.FixedBaseDigits)

	// Window 0: register-file table. Slot u holds [(2u+1)]P cached, so
	// slot 0 is [1]P — the operand the correction read negates, matching
	// the variable-base program's layout.
	var slots [8][4]Val
	for u := 0; u < 8; u++ {
		c := windows[0][u]
		slots[u] = [4]Val{
			b.Const(fmt.Sprintf("fbT%d.x+y", u), c.XplusY),
			b.Const(fmt.Sprintf("fbT%d.y-x", u), c.YminusX),
			b.Const(fmt.Sprintf("fbT%d.2z", u), c.Z2),
			b.Const(fmt.Sprintf("fbT%d.2dt", u), c.T2d),
		}
	}
	b.RegisterTable(slots)

	// Windows 1..FixedBaseDigits-1: operand ROM.
	rom := make([][8][4]fp2.Element, scalar.FixedBaseDigits-1)
	for w := 1; w < scalar.FixedBaseDigits; w++ {
		for u := 0; u < 8; u++ {
			c := windows[w][u]
			rom[w-1][u] = [4]fp2.Element{c.XplusY, c.YminusX, c.Z2, c.T2d}
		}
	}
	b.RegisterROM(rom)

	sections := map[string][2]int{}
	mark := func(name string, from int) {
		sections[name] = [2]int{from, len(b.g.Ops)}
	}

	// Comb chain: top window down to window 1 from ROM, window 0 from
	// the register table. Digit order is irrelevant for correctness (the
	// terms commute) but walking top-down keeps labels aligned with the
	// recoding's positional weights.
	start := len(b.g.Ops)
	identity := pointVals{X: b.Zero(), Y: b.one, Z: b.one, Ta: b.Zero(), Tb: b.one}
	acc := b.addROM(identity, scalar.FixedBaseDigits-1, "init")
	for w := scalar.FixedBaseDigits - 2; w >= 1; w-- {
		acc = b.addROM(acc, w, fmt.Sprintf("add%d", w))
	}
	acc = b.addTable(acc, 0, "add0")
	mark("mainloop", start)

	// Parity correction + normalization, as in the variable-base trace.
	start = len(b.g.Ops)
	acc = b.addCorr(acc, "corr")
	zinv := b.invert(acc.Z, "inv")
	x := b.Mul(acc.X, zinv, "out.x")
	y := b.Mul(acc.Y, zinv, "out.y")
	mark("finalize", start)

	b.Output("x", x)
	b.Output("y", y)

	g := b.Graph()
	if err := g.CheckConsistency(); err != nil {
		return nil, err
	}
	return &ScalarMultTrace{Graph: g, XOut: x.ID(), YOut: y.ID(), Sections: sections}, nil
}
