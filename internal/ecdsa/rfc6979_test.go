package ecdsa

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/scalar"
)

func TestDeterministicSignVerify(t *testing.T) {
	priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("deterministic nonces prevent the PlayStation 3 failure")
	sig, err := SignDeterministic(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(&priv.Public, msg, sig) {
		t.Fatal("deterministic signature rejected")
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("same input, same output")
	a, err := SignDeterministic(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SignDeterministic(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.R.Equal(b.R) || !a.S.Equal(b.S) {
		t.Fatal("two deterministic signatures of the same message differ")
	}
	c, err := SignDeterministic(priv, []byte("different message"))
	if err != nil {
		t.Fatal(err)
	}
	if a.R.Equal(c.R) {
		t.Fatal("nonce reused across messages")
	}
}

func TestDeterministicDiffersAcrossKeys(t *testing.T) {
	p1, _ := GenerateKey(rand.Reader)
	p2, _ := GenerateKey(rand.Reader)
	msg := []byte("m")
	s1, _ := SignDeterministic(p1, msg)
	s2, _ := SignDeterministic(p2, msg)
	if s1.R.Equal(s2.R) {
		t.Fatal("same nonce for different keys")
	}
}

func TestBits2IntOctetsRoundTrip(t *testing.T) {
	q := scalar.Order()
	for _, v := range []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(q, big.NewInt(1)),
	} {
		oct := int2octets(v)
		if len(oct) != rolen {
			t.Fatalf("int2octets length %d, want %d", len(oct), rolen)
		}
		// Decoding the octets (full width) recovers v since v < q < 2^qlen.
		got := new(big.Int).SetBytes(oct)
		if got.Cmp(v) != 0 {
			t.Fatalf("int2octets round trip: %v != %v", got, v)
		}
	}
	// bits2int keeps the leftmost qlen bits of longer strings.
	long := make([]byte, 40)
	for i := range long {
		long[i] = 0xFF
	}
	v := bits2int(long)
	if v.BitLen() != qlen {
		t.Fatalf("bits2int kept %d bits, want %d", v.BitLen(), qlen)
	}
	// bits2octets output is always reduced.
	if new(big.Int).SetBytes(bits2octets(long)).Cmp(q) >= 0 {
		t.Fatal("bits2octets not reduced")
	}
}

func TestDeriveNonceInRange(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	q := scalar.Order()
	for i := 0; i < 16; i++ {
		h := []byte{byte(i), 0xAB, 0xCD}
		k := deriveNonce(priv.D, h)
		if k.IsZero() || k.Big().Cmp(q) >= 0 {
			t.Fatalf("nonce out of range: %v", k)
		}
	}
}

func BenchmarkSignDeterministic(b *testing.B) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SignDeterministic(priv, msg); err != nil {
			b.Fatal(err)
		}
	}
}
