package ecdsa

import (
	"crypto/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("priority vehicle approaching intersection 12, clear lane 3")
	sig, err := Sign(rand.Reader, priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(&priv.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("speed limit 50")
	sig, _ := Sign(rand.Reader, priv, msg)
	if Verify(&priv.Public, []byte("speed limit 90"), sig) {
		t.Fatal("tampered message accepted")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("traffic light interval update")
	sig, _ := Sign(rand.Reader, priv, msg)
	bad := sig
	bad.R[0] ^= 1
	if Verify(&priv.Public, msg, bad) {
		t.Fatal("tampered r accepted")
	}
	bad = sig
	bad.S[2] ^= 1 << 17
	if Verify(&priv.Public, msg, bad) {
		t.Fatal("tampered s accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	priv1, _ := GenerateKey(rand.Reader)
	priv2, _ := GenerateKey(rand.Reader)
	msg := []byte("emergency broadcast")
	sig, _ := Sign(rand.Reader, priv1, msg)
	if Verify(&priv2.Public, msg, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyRejectsOutOfRange(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("m")
	sig, _ := Sign(rand.Reader, priv, msg)
	if Verify(&priv.Public, msg, Signature{R: scalar.Scalar{}, S: sig.S}) {
		t.Fatal("r = 0 accepted")
	}
	if Verify(&priv.Public, msg, Signature{R: sig.R, S: scalar.Scalar{}}) {
		t.Fatal("s = 0 accepted")
	}
	big := scalar.Scalar{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	if Verify(&priv.Public, msg, Signature{R: big, S: sig.S}) {
		t.Fatal("r >= N accepted")
	}
}

func TestSignatureBytesRoundTrip(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	sig, _ := Sign(rand.Reader, priv, []byte("x"))
	b := sig.Bytes()
	got, err := SignatureFromBytes(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.R.Equal(sig.R) || !got.S.Equal(sig.S) {
		t.Fatal("round trip mismatch")
	}
	if _, err := SignatureFromBytes(b[:10]); err == nil {
		t.Fatal("short signature accepted")
	}
}

func TestPublicKeyConsistency(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	want := curve.ScalarMult(priv.D, curve.Generator())
	if !priv.Public.Q.Equal(want) {
		t.Fatal("public key != [d]G")
	}
	if !priv.Public.Q.IsOnCurve() {
		t.Fatal("public key off curve")
	}
}

func TestManySignatures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	priv, _ := GenerateKey(rand.Reader)
	for i := 0; i < 8; i++ {
		msg := []byte{byte(i), byte(i * 7)}
		sig, err := Sign(rand.Reader, priv, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(&priv.Public, msg, sig) {
			t.Fatalf("signature %d rejected", i)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("benchmark message for ITS throughput evaluation")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(rand.Reader, priv, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("benchmark message for ITS throughput evaluation")
	sig, _ := Sign(rand.Reader, priv, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(&priv.Public, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}
