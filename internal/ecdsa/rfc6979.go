package ecdsa

import (
	"crypto/hmac"
	"crypto/sha256"
	"math/big"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// Deterministic ECDSA nonces per RFC 6979: the per-message secret k is
// derived from the private key and message hash with an HMAC-SHA256
// DRBG, removing the catastrophic failure mode of a biased or repeated
// random nonce (the attack that broke several fielded ECDSA systems).
// The resulting signatures are plain ECDSA signatures and verify with
// the ordinary Verify.

// qlen is the bit length of the FourQ subgroup order.
var qlen = scalar.Order().BitLen()

// rolen is the octet length of the order.
var rolen = (qlen + 7) / 8

// bits2int converts a bit string to an integer, keeping the leftmost
// qlen bits (RFC 6979 section 2.3.2).
func bits2int(b []byte) *big.Int {
	v := new(big.Int).SetBytes(b)
	if excess := 8*len(b) - qlen; excess > 0 {
		v.Rsh(v, uint(excess))
	}
	return v
}

// int2octets encodes x (reduced mod q) as exactly rolen bytes
// (RFC 6979 section 2.3.3).
func int2octets(x *big.Int) []byte {
	out := make([]byte, rolen)
	b := x.Bytes()
	copy(out[rolen-len(b):], b)
	return out
}

// bits2octets is bits2int reduced mod q, then int2octets
// (RFC 6979 section 2.3.4).
func bits2octets(b []byte) []byte {
	z := bits2int(b)
	z.Mod(z, scalar.Order())
	return int2octets(z)
}

// deriveNonce runs the RFC 6979 HMAC-SHA256 DRBG until it produces a
// candidate in [1, q-1].
func deriveNonce(priv scalar.Scalar, h1 []byte) scalar.Scalar {
	// Private key as an integer mod q, big-endian octets.
	x := new(big.Int).Mod(priv.Big(), scalar.Order())

	V := make([]byte, sha256.Size)
	for i := range V {
		V[i] = 0x01
	}
	K := make([]byte, sha256.Size)

	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}

	K = mac(K, V, []byte{0x00}, int2octets(x), bits2octets(h1))
	V = mac(K, V)
	K = mac(K, V, []byte{0x01}, int2octets(x), bits2octets(h1))
	V = mac(K, V)

	q := scalar.Order()
	for {
		var t []byte
		for len(t)*8 < qlen {
			V = mac(K, V)
			t = append(t, V...)
		}
		k := bits2int(t)
		if k.Sign() > 0 && k.Cmp(q) < 0 {
			return scalar.FromBig(k)
		}
		K = mac(K, V, []byte{0x00})
		V = mac(K, V)
	}
}

// SignDeterministic produces an RFC 6979 deterministic ECDSA signature:
// identical (priv, msg) pairs always produce identical signatures, and
// no randomness source is consumed.
func SignDeterministic(priv *PrivateKey, msg []byte) (Signature, error) {
	e := sha256.Sum256(msg)
	z := hashToZ(msg)
	extra := []byte(nil)
	for attempt := 0; ; attempt++ {
		h1 := e[:]
		if attempt > 0 {
			// Retry ("case r == 0 or s == 0"): fold a counter into the
			// DRBG input, per the RFC's additional-data mechanism.
			h1 = append(append([]byte{}, e[:]...), extra...)
		}
		k := deriveNonce(priv.D, h1)
		r := rFromPoint(curve.ScalarMult(k, curve.Generator()))
		if r.IsZero() {
			extra = append(extra, 0x00)
			continue
		}
		kinv, err := scalar.InvModN(k)
		if err != nil {
			extra = append(extra, 0x00)
			continue
		}
		s := scalar.MulModN(kinv, scalar.AddModN(z, scalar.MulModN(r, priv.D)))
		if s.IsZero() {
			extra = append(extra, 0x00)
			continue
		}
		return Signature{R: r, S: s}, nil
	}
}
