package ecdsa_test

import (
	"crypto/rand"
	"fmt"

	"repro/internal/ecdsa"
)

// Example signs and verifies an ITS message.
func Example() {
	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	msg := []byte("emergency vehicle, clear intersection 7")
	sig, err := ecdsa.Sign(rand.Reader, priv, msg)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", ecdsa.Verify(&priv.Public, msg, sig))
	fmt.Println("tampered rejected:", !ecdsa.Verify(&priv.Public, []byte("clear intersection 8"), sig))
	// Output:
	// verified: true
	// tampered rejected: true
}

// ExampleSignDeterministic shows RFC 6979 nonces: no randomness at
// signing time, identical signatures for identical inputs.
func ExampleSignDeterministic() {
	priv, err := ecdsa.GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	msg := []byte("m")
	s1, _ := ecdsa.SignDeterministic(priv, msg)
	s2, _ := ecdsa.SignDeterministic(priv, msg)
	fmt.Println("deterministic:", s1.R.Equal(s2.R) && s1.S.Equal(s2.S))
	fmt.Println("verifies:", ecdsa.Verify(&priv.Public, msg, s1))
	// Output:
	// deterministic: true
	// verifies: true
}
