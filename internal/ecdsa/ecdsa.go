// Package ecdsa implements the ECDSA signature scheme over the FourQ
// curve, following the workflow in Section II-A of the reproduced paper
// (the intelligent-transportation-systems use case that motivates the
// ASIC: high-throughput signature generation and verification).
//
// Conventions specific to FourQ: the x coordinate of a curve point is an
// element of GF(p^2); "r = x1 mod n" interprets the 32-byte little-endian
// encoding of x1 as an integer. The hash is SHA-256 and z takes its
// leftmost 246 bits (the bit length of the subgroup order N).
package ecdsa

import (
	"crypto/sha256"
	"errors"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// PrivateKey is an ECDSA private key: a scalar d_A in [1, N-1].
type PrivateKey struct {
	D      scalar.Scalar
	Public PublicKey
}

// PublicKey is the point Q_A = [d_A]G.
type PublicKey struct {
	Q curve.Point
}

// Signature is the pair (r, s).
type Signature struct {
	R, S scalar.Scalar
}

// Size is the byte length of an encoded signature.
const Size = 2 * scalar.Size

// Bytes encodes the signature as r || s (little-endian scalars).
func (sig Signature) Bytes() [Size]byte {
	var out [Size]byte
	r := sig.R.Bytes()
	s := sig.S.Bytes()
	copy(out[:scalar.Size], r[:])
	copy(out[scalar.Size:], s[:])
	return out
}

// SignatureFromBytes decodes r || s.
func SignatureFromBytes(b []byte) (Signature, error) {
	if len(b) != Size {
		return Signature{}, errors.New("ecdsa: bad signature length")
	}
	r, err := scalar.FromBytes(b[:scalar.Size])
	if err != nil {
		return Signature{}, err
	}
	s, err := scalar.FromBytes(b[scalar.Size:])
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: r, S: s}, nil
}

// GenerateKey creates a key pair using randomness from rand.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	d, err := scalar.Random(rand)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{
		D:      d,
		Public: PublicKey{Q: curve.ScalarMult(d, curve.Generator())},
	}, nil
}

// hashToZ computes z, the leftmost L_n bits of SHA-256(msg), reduced into
// a scalar (L_n = 246, so the 256-bit digest is shifted right by 10).
func hashToZ(msg []byte) scalar.Scalar {
	e := sha256.Sum256(msg)
	v := new(big.Int).SetBytes(e[:])
	v.Rsh(v, uint(256-scalar.Order().BitLen()))
	return scalar.FromBig(v)
}

// rFromPoint computes r = x1 mod N from the affine x coordinate.
func rFromPoint(p curve.Point) scalar.Scalar {
	a := p.Affine()
	xb := a.X.Bytes()
	s, _ := scalar.FromBytes(xb[:])
	return scalar.ModN(s)
}

// Sign produces an ECDSA signature of msg, drawing the nonce from rand.
// It retries (per the standard algorithm) in the negligible-probability
// cases r == 0 or s == 0.
func Sign(rand io.Reader, priv *PrivateKey, msg []byte) (Signature, error) {
	z := hashToZ(msg)
	for {
		k, err := scalar.Random(rand)
		if err != nil {
			return Signature{}, err
		}
		r := rFromPoint(curve.ScalarMult(k, curve.Generator()))
		if r.IsZero() {
			continue
		}
		kinv, err := scalar.InvModN(k)
		if err != nil {
			continue
		}
		s := scalar.MulModN(kinv, scalar.AddModN(z, scalar.MulModN(r, priv.D)))
		if s.IsZero() {
			continue
		}
		return Signature{R: r, S: s}, nil
	}
}

// Verify checks the signature of msg against the public key, following
// the five verification steps of Section II-A.
func Verify(pub *PublicKey, msg []byte, sig Signature) bool {
	// Step 1: r, s in [1, N-1].
	n := scalar.Order()
	if sig.R.IsZero() || sig.S.IsZero() {
		return false
	}
	if sig.R.Big().Cmp(n) >= 0 || sig.S.Big().Cmp(n) >= 0 {
		return false
	}
	// Step 2-3.
	z := hashToZ(msg)
	w, err := scalar.InvModN(sig.S)
	if err != nil {
		return false
	}
	u1 := scalar.MulModN(z, w)
	u2 := scalar.MulModN(sig.R, w)
	// Step 4: (x1, y1) = [u1]G + [u2]Q.
	p := curve.DoubleScalarMult(u1, curve.Generator(), u2, pub.Q)
	if p.IsIdentity() {
		return false
	}
	// Step 5.
	return rFromPoint(p).Equal(sig.R)
}
