package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyProgramTrace records the timeline of a tiny 3-instruction program
// (two multiplier issues, one adder issue) in pure virtual time, the
// exact shape the RTL observer produces.
func tinyProgramTrace() *Recorder {
	r := NewRecorder()
	r.ThreadName(1, "Fp2 multiplier")
	r.ThreadName(2, "Fp2 adder/subtractor")
	r.Slice(1, "t0 := P.x*P.y", "issue", 0, 3, map[string]any{"dst": 4})
	r.Slice(2, "t1 := P.x+P.y", "issue", 0, 1, map[string]any{"dst": 5})
	r.Slice(1, "t2 := t0*t1", "issue", 3, 3, map[string]any{"dst": 6})
	r.Instant(2, "writeback t1", "wb", 1, nil)
	r.CounterSample(9, "occupancy", 0, map[string]any{"mul": 1, "add": 1})
	r.CounterSample(9, "occupancy", 3, map[string]any{"mul": 1, "add": 0})
	return r
}

func TestGoldenTinyProgramTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyProgramTrace().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tiny_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON is not byte-stable against golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// And a second render must be byte-identical to the first.
	var again bytes.Buffer
	if err := tinyProgramTrace().WriteTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same trace differ")
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyProgramTrace().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 8 {
		t.Fatalf("parsed %d events, want 8", len(evs))
	}
	var slices, metas int
	for _, ev := range evs {
		switch ev.Phase {
		case PhaseComplete:
			slices++
		case PhaseMetadata:
			metas++
		}
	}
	if slices != 3 || metas != 2 {
		t.Fatalf("slices=%d metas=%d, want 3 and 2", slices, metas)
	}
	if evs[2].Name != "t0 := P.x*P.y" || evs[2].TS != 0 || evs[2].Dur != 3 {
		t.Fatalf("first slice mangled: %+v", evs[2])
	}
}

func TestSpanUsesClock(t *testing.T) {
	r := NewRecorder()
	now := int64(100)
	r.SetClock(func() int64 { return now })
	sp := r.StartSpan(0, "schedule", "core")
	now = 350
	sp.End(map[string]any{"ops": 28})
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Phase != PhaseComplete || ev.TS != 100 || ev.Dur != 250 {
		t.Fatalf("span event = %+v, want ts=100 dur=250", ev)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty recorder produced %d events", len(evs))
	}
}
