package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecorderRingOrderAndWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	var tick int64
	f.SetClock(func() int64 { tick++; return tick })
	for i := 0; i < 7; i++ {
		f.Record(fmt.Sprintf("ev%d", i), i, uint64(i), 0, "")
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events after 7 records", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(3 + i) // events 3..6 survive
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq = %d, want %d (oldest-first order)", i, ev.Seq, wantSeq)
		}
		if ev.Kind != fmt.Sprintf("ev%d", wantSeq) {
			t.Fatalf("event %d: kind = %q", i, ev.Kind)
		}
	}
	if evs[0].TimeUS >= evs[3].TimeUS {
		t.Fatal("timestamps not monotone across the snapshot")
	}
}

func TestFlightRecorderDefaultSize(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightSize {
		t.Fatalf("default ring capacity = %d, want %d", got, DefaultFlightSize)
	}
}

// TestFlightRecorderConcurrentRecord hammers Record from many
// goroutines while a reader snapshots: no race (run under -race), every
// surviving event internally consistent.
func TestFlightRecorderConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record("w", g, uint64(g*1000+i), i, "detail")
			}
		}(g)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range f.Events() {
					if ev.Kind != "w" {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("full ring snapshot has %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not sequential at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecorderAnomalyDumps(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetMeta("seed", int64(42))
	f.SetMeta("workers", 3)
	f.Record("execute", 0, 7, 1, "")
	f.Record("validation_failed", 0, 7, 1, "off-curve")
	d := f.Anomaly("validation_failed")
	if d.Reason != "validation_failed" {
		t.Fatalf("dump reason = %q", d.Reason)
	}
	if len(d.Events) != 2 || d.Events[1].Detail != "off-curve" {
		t.Fatalf("dump did not capture the ring: %+v", d.Events)
	}
	if d.Meta["seed"] != int64(42) || d.Meta["workers"] != 3 {
		t.Fatalf("dump meta missing seed/config: %v", d.Meta)
	}

	// The dump is immutable: later records must not leak into it.
	f.Record("later", 1, 8, 0, "")
	if got := f.Dumps(); len(got) != 1 || len(got[0].Events) != 2 {
		t.Fatalf("retained dump changed after later records: %+v", got)
	}

	// The history is bounded: a storm keeps only the most recent dumps.
	for i := 0; i < 3*defaultMaxDumps; i++ {
		f.Anomaly(fmt.Sprintf("storm%d", i))
	}
	dumps := f.Dumps()
	if len(dumps) != defaultMaxDumps {
		t.Fatalf("dump history holds %d, want the %d most recent", len(dumps), defaultMaxDumps)
	}
	if dumps[len(dumps)-1].Reason != fmt.Sprintf("storm%d", 3*defaultMaxDumps-1) {
		t.Fatalf("newest dump is %q", dumps[len(dumps)-1].Reason)
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetMeta("lane_width", 4)
	f.Record("admit", -1, 1, 0, "")
	f.Anomaly("breaker_open")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Meta   map[string]any `json:"meta"`
		Events []FlightEvent  `json:"events"`
		Dumps  []FlightDump   `json:"dumps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != "admit" {
		t.Fatalf("events = %+v", doc.Events)
	}
	if len(doc.Dumps) != 1 || doc.Dumps[0].Reason != "breaker_open" {
		t.Fatalf("dumps = %+v", doc.Dumps)
	}
	if doc.Meta["lane_width"] != float64(4) { // JSON numbers decode as float64
		t.Fatalf("meta = %v", doc.Meta)
	}
	if doc.Dumps[0].Meta["lane_width"] != float64(4) {
		t.Fatalf("dump meta = %v", doc.Dumps[0].Meta)
	}
}
