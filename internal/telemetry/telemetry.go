// Package telemetry is the repo's dependency-light observability core:
// named counters, gauges and histograms behind a concurrent Registry
// with a deterministic snapshot API, plus a trace-event Recorder (see
// trace.go) that exports Chrome trace_event JSON loadable in Perfetto
// or chrome://tracing.
//
// The package deliberately has no third-party dependencies and no
// global state: every consumer (the RTL datapath observer, the
// scheduler progress hooks, the core pipeline spans, the bench tools)
// creates its own Registry/Recorder and owns its lifetime. All types
// are safe for concurrent use.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic; this is
// not enforced so deltas computed by callers stay cheap).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge (delta may be negative), making
// a Gauge usable as an up/down counter — e.g. queue depth or in-flight
// work tracked from many goroutines. Implemented as a CAS loop over the
// float bits; concurrent Adds never lose updates.
//
// A gauge used as an up/down counter must never report a negative level
// from a stray extra decrement (a "-1 in-flight" reading is always a
// bug upstream, and dashboards treat it as one), so Add clamps at zero
// when the step would take a non-negative gauge below it. Gauges that
// legitimately hold negative values (set via Set, or decremented from
// an already-negative level) pass through untouched.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		next := cur + delta
		if cur >= 0 && next < 0 {
			next = 0
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets plus running
// count/sum/min/max. Buckets are optional: a histogram created without
// bounds still tracks the summary statistics.
type Histogram struct {
	mu     sync.Mutex
	count  int64
	sum    float64
	min    float64
	max    float64
	bounds []float64 // sorted upper bounds; counts has len(bounds)+1 (last = overflow)
	counts []int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.bounds) > 0 {
		i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
		h.counts[i]++
	}
}

// Sum returns the running total of every observed sample.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// BucketCount is one histogram bucket in a snapshot. Le is the inclusive
// upper bound; the last bucket of a bounded histogram is the overflow
// bucket with Le = +Inf.
type BucketCount struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders +Inf as the string "+Inf" (JSON has no Inf).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	a := alias{Le: b.Le, Count: b.Count}
	if math.IsInf(b.Le, +1) {
		a.Le = "+Inf"
	}
	return json.Marshal(a)
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts both plain
// numbers and the string "+Inf" for Le, so snapshots round-trip through
// JSON (the /debug/telemetry endpoint is consumed programmatically).
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var a struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	b.Count = a.Count
	switch le := a.Le.(type) {
	case string:
		b.Le = math.Inf(+1)
	case float64:
		b.Le = le
	}
	return nil
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the containing bucket.
// The estimate is clamped to the exact [Min, Max] the histogram tracked,
// so single-bucket and overflow-bucket observations never extrapolate
// past real data: a rank landing in the +Inf overflow bucket answers
// Max, q=0 answers Min and q=1 answers Max exactly. An empty histogram,
// a histogram without buckets, or a q outside [0, 1] answers NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return s.Min
	}
	if q == 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum int64
	lower := s.Min
	for _, b := range s.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank {
			if math.IsInf(b.Le, +1) {
				return s.Max // overflow bucket: all we know is the max
			}
			v := b.Le
			if b.Count > 0 {
				v = lower + (b.Le-lower)*(rank-float64(prev))/float64(b.Count)
			}
			return clamp(v, s.Min, s.Max)
		}
		if !math.IsInf(b.Le, +1) {
			lower = b.Le
		}
	}
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	for i, c := range h.counts {
		le := math.Inf(+1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: c})
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Safe for concurrent use; all callers share one instance per name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds on first use (bounds are sorted; later
// calls may omit them — the first registration wins).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b}
		if len(b) > 0 {
			h.counts = make([]int64, len(b)+1)
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a deterministic point-in-time copy of a Registry: two
// snapshots of the same state marshal to identical JSON (encoding/json
// sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteMetrics writes the flat JSON metrics dump (an indented Snapshot)
// to w. Output is deterministic for a given registry state.
func (r *Registry) WriteMetrics(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
