package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the post-mortem half of the observability
// layer: a fixed-size lock-free ring buffer of recent structured events
// that producers append to continuously and cheaply, and that is
// snapshotted into an immutable dump the moment an anomaly fires
// (validation failure, breaker trip, quarantine, lane error — whatever
// the producer deems dump-worthy). The ring means the recorder is
// always on without ever growing; the dumps mean the events *leading
// up to* a failure survive even though the ring keeps rolling, so a
// post-mortem needs no always-on tracing. Dumps carry caller-set
// metadata (seed, configuration) so a dump is replayable on its own.

// FlightEvent is one structured entry of the flight-recorder ring.
// Producers fill the semantic fields; Seq and TimeUS are stamped by
// Record.
type FlightEvent struct {
	// Seq is the global record ordinal (0-based); consecutive in a
	// snapshot unless the ring wrapped.
	Seq uint64 `json:"seq"`
	// TimeUS is microseconds since the recorder was created (or the
	// injected clock's reading).
	TimeUS int64 `json:"t_us"`
	// Kind names the event ("execute", "validation_failed",
	// "breaker_open", ...).
	Kind string `json:"kind"`
	// Worker is the producing worker's id, -1 when not worker-bound.
	Worker int `json:"worker"`
	// Req is the request id the event belongs to, 0 when none.
	Req uint64 `json:"req,omitempty"`
	// Attempt is the 1-based RTL attempt number, 0 when not an attempt.
	Attempt int `json:"attempt,omitempty"`
	// Detail carries free-form context (an error string, a backend name).
	Detail string `json:"detail,omitempty"`
}

// FlightDump is one snapshot of the ring, taken by Anomaly (or on
// demand). Events are in Seq order, oldest first.
type FlightDump struct {
	// Reason is the anomaly that triggered the dump ("breaker_open",
	// "worker_quarantined", ...; "on_demand" for explicit snapshots).
	Reason string `json:"reason"`
	// TimeUS is the recorder clock at dump time.
	TimeUS int64 `json:"t_us"`
	// Meta is the caller-set context (seed, config) at dump time.
	Meta map[string]any `json:"meta,omitempty"`
	// Events is the ring's contents at dump time.
	Events []FlightEvent `json:"events"`
}

// FlightRecorder is the fixed-size lock-free event ring plus its bounded
// dump history. Record is wait-free for concurrent producers (one
// atomic fetch-add plus one atomic pointer store); Events and Anomaly
// observe a consistent-enough snapshot without stopping writers. The
// zero value is not usable; call NewFlightRecorder.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	head  atomic.Uint64 // next sequence number to assign

	start time.Time
	nowUS atomic.Pointer[func() int64] // injectable clock (tests)

	mu       sync.Mutex
	meta     map[string]any
	dumps    []FlightDump
	maxDumps int
}

// DefaultFlightSize is the ring capacity used when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightSize = 512

// defaultMaxDumps bounds the retained anomaly-dump history: a storm of
// anomalies keeps the most recent dumps and drops the oldest, so the
// recorder's memory stays bounded no matter how sick the producer is.
const defaultMaxDumps = 8

// NewFlightRecorder returns a flight recorder whose ring holds the last
// `size` events (DefaultFlightSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	f := &FlightRecorder{
		slots:    make([]atomic.Pointer[FlightEvent], size),
		start:    time.Now(),
		meta:     map[string]any{},
		maxDumps: defaultMaxDumps,
	}
	clock := func() int64 { return time.Since(f.start).Microseconds() }
	f.nowUS.Store(&clock)
	return f
}

// SetClock replaces the microsecond clock (deterministic tests).
func (f *FlightRecorder) SetClock(now func() int64) { f.nowUS.Store(&now) }

// SetMeta attaches (or overwrites) one metadata key included in every
// subsequent dump — seeds, pool sizes, validation levels: whatever a
// post-mortem needs to replay the run.
func (f *FlightRecorder) SetMeta(key string, value any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.meta[key] = value
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.slots) }

// Record appends one event to the ring, overwriting the oldest entry
// when full. Safe for any number of concurrent producers and never
// blocks: slot claim is an atomic fetch-add and publication an atomic
// pointer store.
func (f *FlightRecorder) Record(kind string, worker int, req uint64, attempt int, detail string) {
	seq := f.head.Add(1) - 1
	ev := &FlightEvent{
		Seq:     seq,
		TimeUS:  (*f.nowUS.Load())(),
		Kind:    kind,
		Worker:  worker,
		Req:     req,
		Attempt: attempt,
		Detail:  detail,
	}
	f.slots[seq%uint64(len(f.slots))].Store(ev)
}

// Events returns the ring's current contents in Seq order, oldest
// first. Concurrent writers may overwrite slots mid-read; every
// returned event is internally consistent (publication is a single
// pointer store), stale reads are simply dropped.
func (f *FlightRecorder) Events() []FlightEvent {
	head := f.head.Load()
	out := make([]FlightEvent, 0, len(f.slots))
	min := uint64(0)
	if head > uint64(len(f.slots)) {
		min = head - uint64(len(f.slots))
	}
	for i := range f.slots {
		ev := f.slots[i].Load()
		// A slot can hold an event newer than the head we read (a racing
		// writer) or be about to be overwritten; keep only events from
		// the window [min, head).
		if ev != nil && ev.Seq >= min && ev.Seq < head {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Anomaly snapshots the ring into a dump tagged with the given reason,
// appends it to the bounded dump history, and returns it. This is the
// automatic post-mortem hook: producers call it the moment something
// dump-worthy happens, so the events leading up to the anomaly are
// preserved before the ring rolls over them.
func (f *FlightRecorder) Anomaly(reason string) FlightDump {
	d := FlightDump{
		Reason: reason,
		TimeUS: (*f.nowUS.Load())(),
		Events: f.Events(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d.Meta = make(map[string]any, len(f.meta))
	for k, v := range f.meta {
		d.Meta[k] = v
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > f.maxDumps {
		f.dumps = append(f.dumps[:0], f.dumps[len(f.dumps)-f.maxDumps:]...)
	}
	return d
}

// Dumps returns the retained anomaly dumps, oldest first (at most the
// recorder's bound; older dumps are dropped).
func (f *FlightRecorder) Dumps() []FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump(nil), f.dumps...)
}

// flightDoc is the on-wire shape of WriteJSON: the live ring, the
// retained anomaly dumps, and the metadata.
type flightDoc struct {
	Meta   map[string]any `json:"meta,omitempty"`
	Events []FlightEvent  `json:"events"`
	Dumps  []FlightDump   `json:"dumps"`
}

// WriteJSON writes the full recorder state — current ring contents,
// metadata, and every retained anomaly dump — as indented JSON. This is
// what /debug/flightrecorder serves.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := flightDoc{Events: f.Events(), Dumps: f.Dumps()}
	if doc.Events == nil {
		doc.Events = []FlightEvent{}
	}
	if doc.Dumps == nil {
		doc.Dumps = []FlightDump{}
	}
	f.mu.Lock()
	doc.Meta = make(map[string]any, len(f.meta))
	for k, v := range f.meta {
		doc.Meta[k] = v
	}
	f.mu.Unlock()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
