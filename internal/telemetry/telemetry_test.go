package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Get-or-create on every iteration: exercises the
				// registry lock as well as the counter itself.
				reg.Counter("issues").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("issues").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("util")
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(0.57)
	if g.Value() != 0.57 {
		t.Fatalf("gauge = %v, want 0.57", g.Value())
	}
	if reg.Gauge("util") != g {
		t.Fatal("same name must return the same gauge")
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Up/down pattern: every +2 is followed by a -1, so the
				// final value detects any lost CAS update.
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge after concurrent adds = %v, want %d", got, workers*perWorker)
	}
}

func TestGaugeAddUnderflowClamp(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("inflight")
	// A stray decrement on an empty up/down gauge must clamp, not
	// report "-1 in flight".
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("stray decrement: gauge = %v, want 0", got)
	}
	g.Add(3)
	g.Add(-5) // overshooting decrement clamps at the floor
	if got := g.Value(); got != 0 {
		t.Fatalf("overshoot decrement: gauge = %v, want 0", got)
	}
	// Explicitly negative gauges (thermometer-style, placed via Set)
	// keep full signed semantics: the clamp only guards the
	// non-negative up/down-counter use.
	g.Set(-4)
	g.Add(-1)
	if got := g.Value(); got != -5 {
		t.Fatalf("negative gauge decrement: gauge = %v, want -5", got)
	}
	g.Add(2)
	if got := g.Value(); got != -3 {
		t.Fatalf("negative gauge increment: gauge = %v, want -3", got)
	}
}

// TestGaugeUnderflowClampContended hammers the CAS loop with balanced
// traffic plus deliberate stray decrements while a reader polls: the
// clamp must hold the never-negative invariant at every instant, not
// just at rest.
func TestGaugeUnderflowClampContended(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("inflight")
	stop := make(chan struct{})
	negSeen := make(chan float64, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if v := g.Value(); v < 0 {
					select {
					case negSeen <- v:
					default:
					}
				}
			}
		}
	}()
	const workers, perWorker = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
				if i%16 == 0 {
					g.Add(-1) // the stray decrement the clamp exists for
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	select {
	case v := <-negSeen:
		t.Fatalf("reader observed negative gauge %v under contention", v)
	default:
	}
	if got := g.Value(); got < 0 {
		t.Fatalf("gauge settled negative: %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Histogram("lat", 1, 4, 16).Observe(float64(i % 32))
			}
		}(w)
	}
	wg.Wait()
	s := reg.Histogram("lat").snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	// Each worker observes i%32 for i in [0, perWorker); the sum is exact.
	perWorkerSum := 0
	for i := 0; i < perWorker; i++ {
		perWorkerSum += i % 32
	}
	wantSum := float64(workers * perWorkerSum)
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Min != 0 || s.Max != 31 {
		t.Fatalf("min/max = %v/%v, want 0/31", s.Min, s.Max)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", 10, 1, 100) // unsorted on purpose
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []BucketCount{
		{Le: 1, Count: 2},            // 0.5, 1
		{Le: 10, Count: 2},           // 2, 10
		{Le: 100, Count: 1},          // 11
		{Le: math.Inf(+1), Count: 1}, // 1000
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b").Add(2)
	reg.Counter("a").Add(1)
	reg.Gauge("z").Set(3.5)
	reg.Gauge("y").Set(-1)
	reg.Histogram("h", 1, 2).Observe(1.5)
	reg.Histogram("g").Observe(42)

	s1, s2 := reg.Snapshot(), reg.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ: %+v vs %+v", s1, s2)
	}
	var b1, b2 bytes.Buffer
	if err := reg.WriteMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("metrics dumps differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Snapshots are copies: mutating the registry afterwards must not
	// change an already-taken snapshot.
	reg.Counter("a").Inc()
	if s1.Counters["a"] != 1 {
		t.Fatalf("snapshot mutated: a = %d", s1.Counters["a"])
	}
}

func TestSnapshotHistogramSummary(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("m")
	h.Observe(2)
	h.Observe(4)
	s := reg.Snapshot().Histograms["m"]
	if s.Count != 2 || s.Sum != 6 || s.Mean != 3 || s.Min != 2 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("unbounded histogram has buckets: %+v", s.Buckets)
	}
}
