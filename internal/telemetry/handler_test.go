package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("engine.submitted").Add(5)
	reg.Gauge("engine.queue_depth").Set(2.5)
	h := reg.Histogram("engine.latency_seconds", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	reg.Histogram("engine.boundless").Observe(7)
	return reg
}

func TestWritePrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE engine_submitted counter\nengine_submitted 5\n",
		"# TYPE engine_queue_depth gauge\nengine_queue_depth 2.5\n",
		"# TYPE engine_latency_seconds histogram\n",
		`engine_latency_seconds_bucket{le="0.001"} 1`,
		`engine_latency_seconds_bucket{le="0.01"} 2`,
		`engine_latency_seconds_bucket{le="0.1"} 3`,
		`engine_latency_seconds_bucket{le="+Inf"} 4`,
		"engine_latency_seconds_count 4",
		// A histogram registered without bounds still exposes the
		// mandatory +Inf bucket.
		`engine_boundless_bucket{le="+Inf"} 1`,
		"engine_boundless_sum 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "engine.") {
		t.Error("unsanitized dotted metric name leaked into the exposition")
	}

	// Deterministic: a second snapshot of the same state is byte-equal.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic")
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"engine.queue_depth": "engine_queue_depth",
		"rtl.opcode.MUL":     "rtl_opcode_MUL",
		"9lives":             "_lives",
		"a-b c":              "a_b_c",
		"ok:name_1":          "ok:name_1",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := testRegistry()
	fr := NewFlightRecorder(8)
	fr.Record("admit", -1, 1, 0, "")
	fr.Anomaly("breaker_open")
	h := NewHandler(reg, fr)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), "engine_submitted 5") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	} else if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}

	rec := get("/debug/telemetry")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/telemetry does not parse: %v", err)
	}
	if snap.Counters["engine.submitted"] != 5 {
		t.Fatalf("/debug/telemetry counters = %v", snap.Counters)
	}

	rec = get("/debug/flightrecorder")
	var doc struct {
		Events []FlightEvent `json:"events"`
		Dumps  []FlightDump  `json:"dumps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/flightrecorder does not parse: %v", err)
	}
	if len(doc.Events) != 1 || len(doc.Dumps) != 1 {
		t.Fatalf("/debug/flightrecorder = %+v", doc)
	}

	// No recorder attached: honest 404, not an empty 200.
	if rec := get("/debug/flightrecorder"); rec.Code != 200 {
		t.Fatalf("with recorder: code %d", rec.Code)
	}
	none := NewHandler(reg, nil)
	rec = httptest.NewRecorder()
	none.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if rec.Code != 404 {
		t.Fatalf("nil recorder: code %d, want 404", rec.Code)
	}
}

func TestDebugMuxMountsProfilingSurface(t *testing.T) {
	mux := NewDebugMux(testRegistry(), nil)
	for _, path := range []string{"/metrics", "/debug/telemetry", "/debug/vars", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: code %d, want 200", path, rec.Code)
		}
	}
}

func TestHistogramSumCountAccessors(t *testing.T) {
	var h Histogram
	if h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("fresh histogram accessors not zero")
	}
	h.Observe(1.5)
	h.Observe(2.5)
	if h.Sum() != 4 || h.Count() != 2 {
		t.Fatalf("Sum/Count = %v/%v, want 4/2", h.Sum(), h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()

	// Empty: no estimate to give.
	empty := reg.Histogram("empty", 1, 2).snapshot()
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram p50 = %v, want NaN", got)
	}

	// Bucketless: summary stats only, quantiles unavailable.
	nb := reg.Histogram("nobounds")
	nb.Observe(3)
	if got := nb.snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("bucketless histogram p50 = %v, want NaN", got)
	}

	// Single bucket populated: interpolation clamps to the exact
	// min/max, never past real data.
	single := reg.Histogram("single", 10, 20)
	for _, v := range []float64{4, 5, 6} {
		single.Observe(v)
	}
	s := single.snapshot()
	if got := s.Quantile(0.5); got < 4 || got > 6 {
		t.Fatalf("single-bucket p50 = %v, want within [4, 6]", got)
	}
	if got := s.Quantile(0); got != 4 {
		t.Fatalf("q=0 = %v, want the exact min", got)
	}
	if got := s.Quantile(1); got != 6 {
		t.Fatalf("q=1 = %v, want the exact max", got)
	}

	// Overflow bucket: a rank past the last finite bound answers the
	// tracked max instead of inventing a value beyond +Inf.
	over := reg.Histogram("overflow", 1, 2)
	over.Observe(0.5)
	over.Observe(1.5)
	over.Observe(100) // overflow
	o := over.snapshot()
	if got := o.Quantile(0.99); got != 100 {
		t.Fatalf("overflow p99 = %v, want the tracked max 100", got)
	}
	if got := o.Quantile(0.25); got <= 0 || got > 1 {
		t.Fatalf("p25 = %v, want inside the first bucket", got)
	}

	// Uniform fill across buckets: the median lands mid-range.
	u := reg.Histogram("uniform", 1, 2, 3, 4)
	for i := 0; i < 4; i++ {
		u.Observe(float64(i) + 0.5)
	}
	us := u.snapshot()
	if got := us.Quantile(0.5); got < 1 || got > 3 {
		t.Fatalf("uniform p50 = %v, want near 2", got)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := us.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// p50/p95/p99 are monotone.
	p50, p95, p99 := us.Quantile(0.5), us.Quantile(0.95), us.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}
