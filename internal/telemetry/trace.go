package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// The Recorder collects events in the Chrome trace_event format
// (the "JSON Array Format" subset with a traceEvents wrapper object),
// which Perfetto and chrome://tracing load directly. Two time domains
// coexist:
//
//   - virtual time: cycle-accurate producers (the RTL observer) pass
//     explicit timestamps, one microsecond per modelled cycle, via
//     Slice/Instant/CounterSample;
//   - wall-clock time: pipeline phases use StartSpan/End, stamped from
//     the recorder's clock (time.Since(start) by default, overridable
//     with SetClock for deterministic tests).
//
// Track (tid) constants are chosen by the producer; name tracks with
// ThreadName so the viewer shows labels instead of numbers.

// Phase constants of the trace_event format used here.
const (
	PhaseComplete = "X" // complete event: ts + dur
	PhaseInstant  = "i" // instant event
	PhaseCounter  = "C" // counter sample
	PhaseMetadata = "M" // metadata (thread names)
)

// TraceEvent is one entry of the traceEvents array.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk wrapper object.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Recorder accumulates trace events. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []TraceEvent
	start  time.Time
	now    func() int64 // microseconds since start
}

// NewRecorder returns a Recorder whose wall clock starts at zero now.
func NewRecorder() *Recorder {
	r := &Recorder{start: time.Now()}
	r.now = func() int64 { return time.Since(r.start).Microseconds() }
	return r
}

// SetClock replaces the wall-clock source (microseconds). Used by tests
// and by producers that want a fully virtual time base for spans.
func (r *Recorder) SetClock(f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = f
}

// NowUS returns the recorder's current timestamp in microseconds (its
// wall clock unless SetClock replaced it). Producers that stamp slices
// with explicit timestamps — e.g. a request span whose stages end on
// different goroutines — read the clock here so every stage shares the
// recorder's time base.
func (r *Recorder) NowUS() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now()
}

func (r *Recorder) append(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Slice records a complete event: a box from tsUS to tsUS+durUS on
// track tid.
func (r *Recorder) Slice(tid int, name, cat string, tsUS, durUS int64, args map[string]any) {
	r.append(TraceEvent{Name: name, Cat: cat, Phase: PhaseComplete, TS: tsUS, Dur: durUS, TID: tid, Args: args})
}

// Instant records a zero-duration marker on track tid.
func (r *Recorder) Instant(tid int, name, cat string, tsUS int64, args map[string]any) {
	r.append(TraceEvent{Name: name, Cat: cat, Phase: PhaseInstant, TS: tsUS, TID: tid, Scope: "t", Args: args})
}

// CounterSample records a counter-track sample (rendered as a stacked
// area chart by the viewers).
func (r *Recorder) CounterSample(tid int, name string, tsUS int64, series map[string]any) {
	r.append(TraceEvent{Name: name, Phase: PhaseCounter, TS: tsUS, TID: tid, Args: series})
}

// ThreadName labels track tid in the viewer.
func (r *Recorder) ThreadName(tid int, name string) {
	r.append(TraceEvent{Name: "thread_name", Phase: PhaseMetadata, TID: tid, Args: map[string]any{"name": name}})
}

// Span is an open wall-clock interval; End records it as a complete
// event.
type Span struct {
	r     *Recorder
	name  string
	cat   string
	tid   int
	start int64
}

// StartSpan opens a wall-clock span on track tid.
func (r *Recorder) StartSpan(tid int, name, cat string) *Span {
	r.mu.Lock()
	now := r.now()
	r.mu.Unlock()
	return &Span{r: r, name: name, cat: cat, tid: tid, start: now}
}

// End closes the span, recording a complete event with the measured
// duration and the given args (may be nil).
func (s *Span) End(args map[string]any) {
	s.r.mu.Lock()
	now := s.r.now()
	s.r.mu.Unlock()
	s.r.Slice(s.tid, s.name, s.cat, s.start, now-s.start, args)
}

// Events returns a copy of everything recorded so far, in record order.
func (r *Recorder) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.events...)
}

// WriteTrace writes the Chrome trace_event JSON file to w. Output is
// byte-deterministic for a given event sequence (encoding/json sorts
// the args map keys).
func (r *Recorder) WriteTrace(w io.Writer) error {
	f := traceFile{TraceEvents: r.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseTrace reads a trace_event JSON file back (the wrapper-object
// form written by WriteTrace). Used by tests and the CI smoke checker
// to verify emitted traces without a browser.
func ParseTrace(rd io.Reader) ([]TraceEvent, error) {
	var f traceFile
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	return f.TraceEvents, nil
}
