package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The unified HTTP debug surface: one handler serving the Prometheus
// text exposition of a Registry (/metrics), the JSON metrics snapshot
// (/debug/telemetry), and the flight recorder's ring + anomaly dumps
// (/debug/flightrecorder), designed to be mounted next to net/http/pprof
// and expvar. ServeDebug does exactly that mounting and is what every
// command's -debug-addr flag runs.

// promName sanitizes a metric name for the Prometheus exposition
// format: [a-zA-Z_:][a-zA-Z0-9_:]*. The repo's dotted names map
// predictably ("engine.queue_depth" -> "engine_queue_depth").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a sample value the way Prometheus expects,
// including the spelled-out specials.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric, counters and
// gauges as single samples, histograms as cumulative le-labelled
// buckets plus _sum and _count. Output is deterministic for a given
// snapshot (names are sorted), so it is golden-testable and lintable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Snapshot buckets hold per-bucket counts; the exposition wants
		// cumulative ones. A bucketless histogram still exposes the
		// mandatory +Inf bucket so every histogram is well-formed.
		var cum int64
		sawInf := false
		for _, b := range h.Buckets {
			cum += b.Count
			if math.IsInf(b.Le, +1) {
				sawInf = true
				cum = h.Count // by construction; be explicit for the reader
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b.Le), cum); err != nil {
				return err
			}
		}
		if !sawInf {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// NewHandler returns the unified debug handler for a registry and an
// optional flight recorder (nil disables /debug/flightrecorder):
//
//	/metrics               Prometheus text exposition
//	/debug/telemetry       JSON metrics snapshot (Registry.WriteMetrics)
//	/debug/flightrecorder  flight-recorder ring + anomaly dumps (JSON)
func NewHandler(reg *Registry, fr *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := fr.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// NewDebugMux is NewHandler plus the standard profiling surface:
// net/http/pprof under /debug/pprof/ and expvar under /debug/vars, all
// on one mux so a single -debug-addr serves everything.
func NewDebugMux(reg *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	h := NewHandler(reg, fr)
	mux.Handle("/metrics", h)
	mux.Handle("/debug/telemetry", h)
	mux.Handle("/debug/flightrecorder", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// ServeDebug serves the full debug surface (NewDebugMux) on addr in a
// background goroutine and returns immediately — the shape every
// command's -debug-addr flag wants. Serving errors are reported to
// stderr rather than returned: the debug server is best-effort and must
// never take the real workload down with it.
func ServeDebug(addr string, reg *Registry, fr *FlightRecorder) {
	mux := NewDebugMux(reg, fr)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: debug server:", err)
		}
	}()
	fmt.Printf("debug server (pprof + expvar + /metrics + /debug) on http://%s/\n", addr)
}
