package p256

import (
	stdecdsa "crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"testing"
)

func TestECDSASignVerify(t *testing.T) {
	priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("p256 baseline signature")
	sig, err := Sign(rand.Reader, priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(priv.PubX, priv.PubY, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(priv.PubX, priv.PubY, []byte("other"), sig) {
		t.Fatal("wrong message accepted")
	}
}

func TestECDSAInteropVerifyStdlibSignature(t *testing.T) {
	// Signatures produced by crypto/ecdsa must verify with our code.
	std, err := stdecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("interop: stdlib signs, we verify")
	h := sha256.Sum256(msg)
	r, s, err := stdecdsa.Sign(rand.Reader, std, h[:])
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(std.PublicKey.X, std.PublicKey.Y, msg, &Signature{R: r, S: s}) {
		t.Fatal("stdlib signature rejected by our verifier")
	}
}

func TestECDSAInteropStdlibVerifiesOurSignature(t *testing.T) {
	priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("interop: we sign, stdlib verifies")
	sig, err := Sign(rand.Reader, priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(msg)
	pub := &stdecdsa.PublicKey{Curve: elliptic.P256(), X: priv.PubX, Y: priv.PubY}
	if !stdecdsa.Verify(pub, h[:], sig.R, sig.S) {
		t.Fatal("our signature rejected by crypto/ecdsa")
	}
}

func TestECDSARejections(t *testing.T) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("m")
	sig, _ := Sign(rand.Reader, priv, msg)

	other, _ := GenerateKey(rand.Reader)
	if Verify(other.PubX, other.PubY, msg, sig) {
		t.Error("wrong key accepted")
	}
	bad := &Signature{R: N, S: sig.S}
	if Verify(priv.PubX, priv.PubY, msg, bad) {
		t.Error("r >= N accepted")
	}
	if Verify(priv.PubX, priv.PubY, msg, nil) {
		t.Error("nil signature accepted")
	}
	if Verify(Gx, Gx, msg, sig) { // off-curve public key
		t.Error("off-curve key accepted")
	}
}

func BenchmarkECDSAVerifyP256(b *testing.B) {
	priv, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	sig, _ := Sign(rand.Reader, priv, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(priv.PubX, priv.PubY, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}
