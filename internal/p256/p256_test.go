package p256

import (
	"crypto/elliptic"
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGeneratorOnCurve(t *testing.T) {
	if !OnCurve(Gx, Gy) {
		t.Fatal("generator not on curve")
	}
}

func TestAgainstStdlib(t *testing.T) {
	std := elliptic.P256()
	for i := 0; i < 6; i++ {
		k, err := rand.Int(rand.Reader, N)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() == 0 {
			continue
		}
		wantX, wantY := std.ScalarBaseMult(k.Bytes())
		got, err := ScalarMultBinary(k, Gx, Gy)
		if err != nil {
			t.Fatal(err)
		}
		if got.X.Cmp(wantX) != 0 || got.Y.Cmp(wantY) != 0 {
			t.Fatalf("binary SM disagrees with stdlib for k=%v", k)
		}
		gotW, err := ScalarMultWNAF(k, Gx, Gy)
		if err != nil {
			t.Fatal(err)
		}
		if gotW.X.Cmp(wantX) != 0 || gotW.Y.Cmp(wantY) != 0 {
			t.Fatalf("wNAF SM disagrees with stdlib for k=%v", k)
		}
	}
}

func TestScalarMultEdgeCases(t *testing.T) {
	one, err := ScalarMultBinary(big.NewInt(1), Gx, Gy)
	if err != nil {
		t.Fatal(err)
	}
	if one.X.Cmp(Gx) != 0 || one.Y.Cmp(Gy) != 0 {
		t.Error("[1]G != G")
	}
	// [N]G = infinity.
	inf, err := ScalarMultBinary(N, Gx, Gy)
	if err != nil {
		t.Fatal(err)
	}
	if inf.X != nil || inf.Y != nil {
		t.Error("[N]G should be infinity")
	}
	// Off-curve rejection.
	if _, err := ScalarMultBinary(big.NewInt(5), big.NewInt(1), big.NewInt(1)); err == nil {
		t.Error("off-curve point accepted")
	}
}

func TestOpCounts(t *testing.T) {
	k, _ := rand.Int(rand.Reader, N)
	k.SetBit(k, 255, 1) // force full length
	bin, err := ScalarMultBinary(k, Gx, Gy)
	if err != nil {
		t.Fatal(err)
	}
	wnafRes, err := ScalarMultWNAF(k, Gx, Gy)
	if err != nil {
		t.Fatal(err)
	}
	// Binary: ~256 doublings (8 mult-ops) + ~128 additions (11 mult-ops).
	if bin.Ops.Mults() < 2500 || bin.Ops.Mults() > 4500 {
		t.Errorf("binary mult count %d implausible", bin.Ops.Mults())
	}
	// wNAF should use fewer multiplications than binary.
	if wnafRes.Ops.Mults() >= bin.Ops.Mults() {
		t.Errorf("wNAF (%d) not cheaper than binary (%d)", wnafRes.Ops.Mults(), bin.Ops.Mults())
	}
}

func TestCycleModel(t *testing.T) {
	k, _ := rand.Int(rand.Reader, N)
	k.SetBit(k, 255, 1)
	res, err := ScalarMultWNAF(k, Gx, Gy)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultCycleModel()
	cycles := m.Cycles(res.Ops)
	// Same-silicon model: P-256 lands in the high thousands of cycles --
	// a few times slower than the ~2.5k-cycle FourQ design, consistent
	// with the paper's 3.66x headline against the P-256 ASIC.
	if cycles < 5000 || cycles > 25000 {
		t.Errorf("cycle estimate %d outside plausible band", cycles)
	}
}

func TestWnafReconstruction(t *testing.T) {
	for _, k := range []int64{1, 2, 3, 7, 255, 65537, 1234567891} {
		naf := wnaf(big.NewInt(k), 4)
		v := big.NewInt(0)
		for i := len(naf) - 1; i >= 0; i-- {
			v.Lsh(v, 1)
			v.Add(v, big.NewInt(int64(naf[i])))
		}
		if v.Int64() != k {
			t.Errorf("wNAF(%d) reconstructs to %v", k, v)
		}
		for _, d := range naf {
			if d%2 == 0 && d != 0 {
				t.Errorf("wNAF digit %d even", d)
			}
			if d > 7 || d < -7 {
				t.Errorf("wNAF digit %d out of range", d)
			}
		}
	}
}

func BenchmarkScalarMultWNAF(b *testing.B) {
	k, _ := rand.Int(rand.Reader, N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScalarMultWNAF(k, Gx, Gy); err != nil {
			b.Fatal(err)
		}
	}
}
