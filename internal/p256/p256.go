// Package p256 implements NIST P-256 scalar multiplication as the
// prior-art baseline of the paper's Table II (rows [5], [19]-[21]): the
// short Weierstrass curve y^2 = x^3 - 3x + b over the 256-bit NIST prime,
// with Jacobian-coordinate arithmetic and wNAF scalar multiplication.
//
// Field arithmetic runs on 4x64-bit limbs in Montgomery form (package
// mont); math/big appears only at the public API boundary. Performance
// comparisons against the FourQ processor use the operation-count cycle
// model in CycleModel, not Go wall-clock times.
package p256

import (
	"errors"
	"math/big"

	"repro/internal/mont"
)

// Curve parameters (FIPS 186-4).
var (
	P  = mustHex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
	N  = mustHex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
	B  = mustHex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
	Gx = mustHex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
	Gy = mustHex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
)

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("p256: bad constant")
	}
	return v
}

// pMod is the Montgomery context for the field prime.
var pMod = func() *mont.Modulus {
	m, err := mont.NewModulus(elemFromBig(P))
	if err != nil {
		panic("p256: " + err.Error())
	}
	return m
}()

// felem is a field element in Montgomery form.
type felem = mont.Elem

func elemFromBig(v *big.Int) mont.Elem {
	var e mont.Elem
	red := new(big.Int).Mod(v, new(big.Int).Lsh(big.NewInt(1), 256))
	for i := 0; i < 4; i++ {
		e[i] = new(big.Int).Rsh(red, uint(64*i)).Uint64()
	}
	return e
}

func elemToBig(e mont.Elem) *big.Int {
	v := new(big.Int)
	for i := 3; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Add(v, new(big.Int).SetUint64(e[i]))
	}
	return v
}

func feFromBig(v *big.Int) felem { return pMod.ToMont(pMod.Reduce(elemFromBig(v))) }
func feToBig(e felem) *big.Int   { return elemToBig(pMod.FromMont(e)) }

// Precomputed Montgomery-form curve constants.
var (
	feB     = feFromBig(B)
	feGx    = feFromBig(Gx)
	feGy    = feFromBig(Gy)
	feOne   = pMod.One
	feThree = feFromBig(big.NewInt(3))
)

// OpCount tallies field operations for the cycle model.
type OpCount struct {
	Mul, Sqr, Add, Inv int
}

// Mults returns mult-type operations (squarings count as multiplications
// on the modelled datapath).
func (c OpCount) Mults() int { return c.Mul + c.Sqr }

// point is a Jacobian-coordinate point (X/Z^2, Y/Z^3) with coordinates
// in Montgomery form; z == 0 is the point at infinity.
type point struct {
	x, y, z felem
}

func infinity() point { return point{x: feOne, y: feOne} }

func (p point) isInfinity() bool { return mont.IsZero(p.z) }

// OnCurve verifies the affine curve equation for big.Int coordinates.
func OnCurve(x, y *big.Int) bool {
	if x == nil || y == nil {
		return false
	}
	xe, ye := feFromBig(x), feFromBig(y)
	lhs := pMod.Mul(ye, ye)
	x2 := pMod.Mul(xe, xe)
	rhs := pMod.Mul(x2, xe)
	rhs = pMod.Sub(rhs, pMod.Mul(feThree, xe))
	rhs = pMod.Add(rhs, feB)
	return lhs == rhs
}

// fieldCtx wraps the Montgomery context with op counting.
type fieldCtx struct{ ops OpCount }

func (f *fieldCtx) mul(a, b felem) felem {
	f.ops.Mul++
	return pMod.Mul(a, b)
}

func (f *fieldCtx) sqr(a felem) felem {
	f.ops.Sqr++
	return pMod.Mul(a, a)
}

func (f *fieldCtx) add(a, b felem) felem {
	f.ops.Add++
	return pMod.Add(a, b)
}

func (f *fieldCtx) sub(a, b felem) felem {
	f.ops.Add++
	return pMod.Sub(a, b)
}

func (f *fieldCtx) inv(a felem) felem {
	f.ops.Inv++
	return pMod.InvFermat(a)
}

// affine normalizes p (nil, nil for infinity).
func (f *fieldCtx) affine(p point) (x, y *big.Int) {
	if p.isInfinity() {
		return nil, nil
	}
	zi := f.inv(p.z)
	zi2 := f.sqr(zi)
	x = feToBig(f.mul(p.x, zi2))
	y = feToBig(f.mul(p.y, f.mul(zi2, zi)))
	return x, y
}

// double computes 2p (Jacobian, a = -3: 4M + 4S).
func (f *fieldCtx) double(p point) point {
	if p.isInfinity() {
		return infinity()
	}
	delta := f.sqr(p.z)
	gamma := f.sqr(p.y)
	beta := f.mul(p.x, gamma)
	alpha := f.mul(f.sub(p.x, delta), f.add(p.x, delta))
	alpha = f.add(f.add(alpha, alpha), alpha)
	beta4 := f.add(f.add(beta, beta), f.add(beta, beta))
	beta8 := f.add(beta4, beta4)
	x3 := f.sub(f.sqr(alpha), beta8)
	z3 := f.sub(f.sub(f.sqr(f.add(p.y, p.z)), gamma), delta)
	g2 := f.sqr(gamma)
	g8 := f.add(f.add(g2, g2), f.add(g2, g2))
	g8 = f.add(g8, g8)
	y3 := f.sub(f.mul(alpha, f.sub(beta4, x3)), g8)
	return point{x3, y3, z3}
}

// addMixed computes p + q with q affine (8M + 3S).
func (f *fieldCtx) addMixed(p point, qx, qy felem) point {
	if p.isInfinity() {
		return point{qx, qy, feOne}
	}
	z1z1 := f.sqr(p.z)
	u2 := f.mul(qx, z1z1)
	s2 := f.mul(qy, f.mul(p.z, z1z1))
	h := f.sub(u2, p.x)
	r := f.sub(s2, p.y)
	if mont.IsZero(h) {
		if mont.IsZero(r) {
			return f.double(p)
		}
		return infinity()
	}
	h2 := f.sqr(h)
	h3 := f.mul(h2, h)
	v := f.mul(p.x, h2)
	x3 := f.sub(f.sub(f.sqr(r), h3), f.add(v, v))
	y3 := f.sub(f.mul(r, f.sub(v, x3)), f.mul(p.y, h3))
	z3 := f.mul(p.z, h)
	return point{x3, y3, z3}
}

// ScalarMultResult carries the product and the operation tally.
type ScalarMultResult struct {
	X, Y *big.Int
	Ops  OpCount
}

// ScalarMultBinary computes [k](x,y) by plain double-and-add: the
// Section II reference method.
func ScalarMultBinary(k *big.Int, x, y *big.Int) (*ScalarMultResult, error) {
	if !OnCurve(x, y) {
		return nil, errors.New("p256: point not on curve")
	}
	f := &fieldCtx{}
	qx, qy := feFromBig(x), feFromBig(y)
	acc := infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = f.double(acc)
		if k.Bit(i) == 1 {
			acc = f.addMixed(acc, qx, qy)
		}
	}
	ax, ay := f.affine(acc)
	return &ScalarMultResult{X: ax, Y: ay, Ops: f.ops}, nil
}

// ScalarMultWNAF computes [k](x,y) with width-4 NAF recoding
// (~256 doublings + ~51 additions), the form a competitive ASIC design
// would implement.
func ScalarMultWNAF(k *big.Int, x, y *big.Int) (*ScalarMultResult, error) {
	if !OnCurve(x, y) {
		return nil, errors.New("p256: point not on curve")
	}
	f := &fieldCtx{}
	type aff struct{ x, y felem }
	base := aff{feFromBig(x), feFromBig(y)}
	// Precompute odd multiples [1,3,...,15]P in affine form (normalized
	// individually; the cycle model amortizes these inversions as a
	// Montgomery batch, see CycleModel).
	var table [8]aff
	table[0] = base
	twoP := f.double(point{base.x, base.y, feOne})
	tx, ty := f.affine(twoP)
	t2 := aff{feFromBig(tx), feFromBig(ty)}
	cur := point{base.x, base.y, feOne}
	for i := 1; i < 8; i++ {
		cur = f.addMixed(cur, t2.x, t2.y)
		cx, cy := f.affine(cur)
		table[i] = aff{feFromBig(cx), feFromBig(cy)}
	}
	naf := wnaf(k, 4)
	acc := infinity()
	for i := len(naf) - 1; i >= 0; i-- {
		acc = f.double(acc)
		d := naf[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			e := table[(d-1)/2]
			acc = f.addMixed(acc, e.x, e.y)
		} else {
			e := table[(-d-1)/2]
			acc = f.addMixed(acc, e.x, pMod.Neg(e.y))
		}
	}
	ax, ay := f.affine(acc)
	return &ScalarMultResult{X: ax, Y: ay, Ops: f.ops}, nil
}

// wnaf computes the width-w non-adjacent form, least significant first.
func wnaf(k *big.Int, w uint) []int {
	var out []int
	v := new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	for v.Sign() > 0 {
		var d int64
		if v.Bit(0) == 1 {
			d = new(big.Int).Mod(v, big.NewInt(mod)).Int64()
			if d >= half {
				d -= mod
			}
			v.Sub(v, big.NewInt(d))
		}
		out = append(out, int(d))
		v.Rsh(v, 1)
	}
	return out
}

// CycleModel estimates the cycle count of the SM on a P-256 datapath
// built from the same silicon as the FourQ processor: the three 127-bit
// multiplier cores compose one 256-bit Karatsuba product, so each 256-bit
// modular multiplication occupies MulIssueSlots issue slots of the
// (pipelined) multiplier; the NIST-prime reduction adds are absorbed by
// the adder in parallel.
type CycleModel struct {
	// MulIssueSlots is the number of multiplier issue cycles per 256-bit
	// modular multiplication (3: one per 128x128 Karatsuba limb product).
	MulIssueSlots int
	// InvCycles is the cost of one field inversion (Fermat chain of
	// ~256 squarings + ~11 multiplications, each MulIssueSlots wide).
	InvCycles int
}

// DefaultCycleModel returns the same-silicon comparison model.
func DefaultCycleModel() CycleModel {
	return CycleModel{MulIssueSlots: 3, InvCycles: 267 * 3}
}

// Cycles estimates the SM cycle count from an operation tally. Inversions
// beyond the first (table normalizations) are assumed batched with
// Montgomery's trick -- three extra multiplications each instead of a
// full Fermat chain, as a competitive ASIC design would implement.
func (m CycleModel) Cycles(ops OpCount) int {
	c := ops.Mults() * m.MulIssueSlots
	if ops.Inv > 0 {
		c += m.InvCycles + (ops.Inv-1)*3*m.MulIssueSlots
	}
	return c
}
