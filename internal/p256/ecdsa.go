package p256

import (
	"crypto/sha256"
	"io"
	"math/big"

	"repro/internal/mont"
)

// ECDSA over P-256, the exact workload of the paper's Table II baseline
// [5] (a P-256 signature-verification ASIC). Scalar arithmetic modulo
// the group order runs on the limb Montgomery context; signatures are
// interoperable with crypto/ecdsa (verified in the tests).

// nMod is the Montgomery context for the group order.
var nMod = func() *mont.Modulus {
	m, err := mont.NewModulus(elemFromBig(N))
	if err != nil {
		panic("p256: " + err.Error())
	}
	return m
}()

// modOrder reduces a big.Int into [0, N).
func modOrder(v *big.Int) *big.Int {
	return new(big.Int).Mod(v, N)
}

// PrivateKey is an ECDSA P-256 private key.
type PrivateKey struct {
	D    *big.Int
	PubX *big.Int
	PubY *big.Int
}

// Signature is the (r, s) pair.
type Signature struct {
	R, S *big.Int
}

// GenerateKey creates a key pair with randomness from rand.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	for {
		var buf [32]byte
		if _, err := io.ReadFull(rand, buf[:]); err != nil {
			return nil, err
		}
		d := modOrder(new(big.Int).SetBytes(buf[:]))
		if d.Sign() == 0 {
			continue
		}
		res, err := ScalarMultWNAF(d, Gx, Gy)
		if err != nil {
			return nil, err
		}
		return &PrivateKey{D: d, PubX: res.X, PubY: res.Y}, nil
	}
}

// hashToInt converts a SHA-256 digest to an integer per FIPS 186-4
// (leftmost min(N.BitLen, 256) bits; both are 256 here).
func hashToInt(h []byte) *big.Int {
	return new(big.Int).SetBytes(h)
}

// Sign produces an ECDSA signature of msg (SHA-256 digest internally).
func Sign(rand io.Reader, priv *PrivateKey, msg []byte) (*Signature, error) {
	e := sha256.Sum256(msg)
	z := hashToInt(e[:])
	for {
		var buf [32]byte
		if _, err := io.ReadFull(rand, buf[:]); err != nil {
			return nil, err
		}
		k := modOrder(new(big.Int).SetBytes(buf[:]))
		if k.Sign() == 0 {
			continue
		}
		res, err := ScalarMultWNAF(k, Gx, Gy)
		if err != nil {
			return nil, err
		}
		r := modOrder(res.X)
		if r.Sign() == 0 {
			continue
		}
		// s = k^-1 (z + r d) mod N, on the Montgomery context.
		kinv := nMod.FromMont(nMod.InvFermat(nMod.ToMont(elemFromBig(k))))
		rd := nMod.Mul(nMod.ToMont(elemFromBig(r)), nMod.ToMont(elemFromBig(priv.D)))
		sum := nMod.Add(nMod.FromMont(rd), nMod.Reduce(elemFromBig(z)))
		s := nMod.FromMont(nMod.Mul(nMod.ToMont(kinv), nMod.ToMont(sum)))
		sBig := elemToBig(s)
		if sBig.Sign() == 0 {
			continue
		}
		return &Signature{R: r, S: sBig}, nil
	}
}

// Verify checks an ECDSA signature over msg.
func Verify(pubX, pubY *big.Int, msg []byte, sig *Signature) bool {
	if sig == nil || sig.R == nil || sig.S == nil {
		return false
	}
	if sig.R.Sign() <= 0 || sig.S.Sign() <= 0 || sig.R.Cmp(N) >= 0 || sig.S.Cmp(N) >= 0 {
		return false
	}
	if !OnCurve(pubX, pubY) {
		return false
	}
	e := sha256.Sum256(msg)
	z := hashToInt(e[:])
	w := nMod.FromMont(nMod.InvFermat(nMod.ToMont(elemFromBig(sig.S))))
	u1 := elemToBig(nMod.FromMont(nMod.Mul(nMod.ToMont(nMod.Reduce(elemFromBig(z))), nMod.ToMont(w))))
	u2 := elemToBig(nMod.FromMont(nMod.Mul(nMod.ToMont(elemFromBig(sig.R)), nMod.ToMont(w))))

	// [u1]G + [u2]Q via two multiplications and a mixed add on the
	// Jacobian machinery.
	f := &fieldCtx{}
	r1, err := ScalarMultWNAF(u1, Gx, Gy)
	if err != nil {
		return false
	}
	r2, err := ScalarMultWNAF(u2, pubX, pubY)
	if err != nil {
		return false
	}
	var sum point
	switch {
	case r1.X == nil && r2.X == nil:
		return false
	case r1.X == nil:
		sum = point{feFromBig(r2.X), feFromBig(r2.Y), feOne}
	case r2.X == nil:
		sum = point{feFromBig(r1.X), feFromBig(r1.Y), feOne}
	default:
		sum = f.addMixed(point{feFromBig(r1.X), feFromBig(r1.Y), feOne}, feFromBig(r2.X), feFromBig(r2.Y))
	}
	if sum.isInfinity() {
		return false
	}
	x, _ := f.affine(sum)
	return modOrder(x).Cmp(sig.R) == 0
}
