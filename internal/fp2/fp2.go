// Package fp2 implements arithmetic in the quadratic extension field
// GF(p^2) = GF(p)[i]/(i^2+1) with p = 2^127 - 1, the field over which the
// FourQ curve is defined.
//
// Besides the ordinary software routines (Karatsuba and schoolbook
// multiplication, inversion, square roots) the package contains a bit-exact
// model of the pipelined multiplier datapath from the reproduced paper
// (Algorithm 2: Karatsuba multiplication with lazy reduction on 256-bit
// intermediate registers), used by the cycle-accurate RTL simulator.
package fp2

import (
	"fmt"
	"io"

	"repro/internal/fp"
)

// Size is the byte length of an encoded field element (two GF(p) elements).
const Size = 2 * fp.Size

// Element is an element a + b*i of GF(p^2) with a, b in GF(p) and i^2 = -1.
// The zero value is the additive identity.
type Element struct {
	A fp.Element // real part
	B fp.Element // imaginary part
}

// New builds an element from its real and imaginary GF(p) parts.
func New(a, b fp.Element) Element { return Element{A: a, B: b} }

// FromUint64 returns the element a + b*i for small integers a, b.
func FromUint64(a, b uint64) Element { return Element{A: fp.New(a), B: fp.New(b)} }

// Zero returns the additive identity.
func Zero() Element { return Element{} }

// One returns the multiplicative identity.
func One() Element { return Element{A: fp.One()} }

// I returns the square root of -1, the element i.
func I() Element { return Element{B: fp.One()} }

// IsZero reports whether e == 0.
func (e Element) IsZero() bool { return e.A.IsZero() && e.B.IsZero() }

// IsOne reports whether e == 1.
func (e Element) IsOne() bool { return e.A.IsOne() && e.B.IsZero() }

// Equal reports whether e == x.
func (e Element) Equal(x Element) bool { return e.A.Equal(x.A) && e.B.Equal(x.B) }

// Add returns a + b.
func Add(a, b Element) Element {
	return Element{A: fp.Add(a.A, b.A), B: fp.Add(a.B, b.B)}
}

// Sub returns a - b.
func Sub(a, b Element) Element {
	return Element{A: fp.Sub(a.A, b.A), B: fp.Sub(a.B, b.B)}
}

// Neg returns -a.
func Neg(a Element) Element {
	return Element{A: fp.Neg(a.A), B: fp.Neg(a.B)}
}

// Conj returns the conjugate a - b*i. Conjugation is the p-power Frobenius
// map of GF(p^2)/GF(p).
func Conj(a Element) Element {
	return Element{A: a.A, B: fp.Neg(a.B)}
}

// Double returns 2a.
func Double(a Element) Element {
	return Element{A: fp.Double(a.A), B: fp.Double(a.B)}
}

// MulI returns a * i, a free rotation in hardware (swap + negate).
func MulI(a Element) Element {
	return Element{A: fp.Neg(a.B), B: a.A}
}

// MulFp scales a by the GF(p) element s.
func MulFp(a Element, s fp.Element) Element {
	return Element{A: fp.Mul(a.A, s), B: fp.Mul(a.B, s)}
}

// MulSmall scales a by a small integer.
func MulSmall(a Element, v uint64) Element {
	return Element{A: fp.MulSmall(a.A, v), B: fp.MulSmall(a.B, v)}
}

// Mul returns a * b using Karatsuba multiplication: three GF(p)
// multiplications and five additions/subtractions, the decomposition the
// paper's multiplier implements. See also MulSchoolbook and MulAlg2.
func Mul(a, b Element) Element {
	t0 := fp.Mul(a.A, b.A)           // a0*b0
	t1 := fp.Mul(a.B, b.B)           // a1*b1
	t2 := fp.Add(a.A, a.B)           // a0+a1
	t3 := fp.Add(b.A, b.B)           // b0+b1
	t6 := fp.Mul(t2, t3)             // (a0+a1)(b0+b1)
	c0 := fp.Sub(t0, t1)             // a0b0 - a1b1
	c1 := fp.Sub(t6, fp.Add(t0, t1)) // cross term
	return Element{A: c0, B: c1}
}

// MulSchoolbook returns a * b using the traditional four-multiplication
// formula. Kept as the ablation baseline for the Karatsuba datapath (the
// paper's Section III-B compares against a four-multiplier design).
func MulSchoolbook(a, b Element) Element {
	c0 := fp.Sub(fp.Mul(a.A, b.A), fp.Mul(a.B, b.B))
	c1 := fp.Add(fp.Mul(a.A, b.B), fp.Mul(a.B, b.A))
	return Element{A: c0, B: c1}
}

// Sqr returns a^2 using the complex squaring shortcut:
// (a0+a1*i)^2 = (a0+a1)(a0-a1) + 2*a0*a1*i  -- two GF(p) multiplications.
func Sqr(a Element) Element {
	t0 := fp.Add(a.A, a.B)
	t1 := fp.Sub(a.A, a.B)
	t2 := fp.Double(a.A)
	return Element{A: fp.Mul(t0, t1), B: fp.Mul(t2, a.B)}
}

// Norm returns the field norm a0^2 + a1^2 in GF(p).
func Norm(a Element) fp.Element {
	return fp.Add(fp.Sqr(a.A), fp.Sqr(a.B))
}

// Inv returns a^-1 (and zero for a == 0), via conjugate over norm:
// (a0 + a1*i)^-1 = (a0 - a1*i) / (a0^2 + a1^2).
func Inv(a Element) Element {
	n := fp.Inv(Norm(a))
	return Element{A: fp.Mul(a.A, n), B: fp.Mul(fp.Neg(a.B), n)}
}

// IsSquare reports whether a is a quadratic residue in GF(p^2).
// a is a square iff its norm is a square in GF(p).
func IsSquare(a Element) bool {
	return fp.IsSquare(Norm(a))
}

// BatchInv inverts every element of xs in place using Montgomery's trick:
// one field inversion plus 3(n-1) multiplications. Zero entries stay
// zero (matching Inv's convention) and do not disturb the others.
func BatchInv(xs []Element) {
	n := len(xs)
	if n == 0 {
		return
	}
	// Prefix products, skipping zeros.
	prefix := make([]Element, n)
	acc := One()
	for i, x := range xs {
		prefix[i] = acc
		if !x.IsZero() {
			acc = Mul(acc, x)
		}
	}
	inv := Inv(acc)
	for i := n - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			continue
		}
		orig := xs[i]
		xs[i] = Mul(inv, prefix[i])
		inv = Mul(inv, orig)
	}
}

// Sqrt returns x with x^2 == a, if a is a square. The second return value
// reports success. Uses the standard complex method for p == 3 (mod 4).
func Sqrt(a Element) (Element, bool) {
	if a.B.IsZero() {
		// a is in GF(p): either sqrt(a0) or sqrt(-a0)*i exists.
		if r, ok := fp.Sqrt(a.A); ok {
			return Element{A: r}, true
		}
		if r, ok := fp.Sqrt(fp.Neg(a.A)); ok {
			return Element{B: r}, true
		}
		return Element{}, false
	}
	n, ok := fp.Sqrt(Norm(a))
	if !ok {
		return Element{}, false
	}
	inv2 := fp.Inv(fp.New(2))
	v := fp.Mul(fp.Add(a.A, n), inv2)
	if !fp.IsSquare(v) {
		v = fp.Mul(fp.Sub(a.A, n), inv2)
	}
	x0, ok := fp.Sqrt(v)
	if !ok {
		return Element{}, false
	}
	x1 := fp.Mul(a.B, fp.Inv(fp.Double(x0)))
	r := Element{A: x0, B: x1}
	if !Sqr(r).Equal(a) {
		return Element{}, false
	}
	return r, true
}

// Bytes returns the 32-byte encoding: real part little-endian, then
// imaginary part little-endian (FourQ convention).
func (e Element) Bytes() [Size]byte {
	var out [Size]byte
	a := e.A.Bytes()
	b := e.B.Bytes()
	copy(out[:fp.Size], a[:])
	copy(out[fp.Size:], b[:])
	return out
}

// FromBytes decodes a 32-byte encoding, rejecting non-canonical parts.
func FromBytes(b []byte) (Element, error) {
	if len(b) != Size {
		return Element{}, fmt.Errorf("fp2: encoding must be %d bytes, got %d", Size, len(b))
	}
	a, err := fp.FromBytes(b[:fp.Size])
	if err != nil {
		return Element{}, err
	}
	bb, err := fp.FromBytes(b[fp.Size:])
	if err != nil {
		return Element{}, err
	}
	return Element{A: a, B: bb}, nil
}

// Random returns a uniformly random element read from r.
func Random(r io.Reader) (Element, error) {
	a, err := fp.Random(r)
	if err != nil {
		return Element{}, err
	}
	b, err := fp.Random(r)
	if err != nil {
		return Element{}, err
	}
	return Element{A: a, B: b}, nil
}

// String formats the element as "a + b*i" in hex.
func (e Element) String() string {
	return fmt.Sprintf("%v + %v*i", e.A, e.B)
}
