package fp2

import (
	"math/big"
	mrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fp"
)

var bigP = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

func randFp(r *mrand.Rand) fp.Element {
	for {
		lo := r.Uint64()
		hi := r.Uint64() & 0x7FFFFFFFFFFFFFFF
		e := fp.SetLimbs(lo, hi)
		elo, ehi := e.Limbs()
		if elo == lo && ehi == hi {
			return e
		}
	}
}

func randElement(r *mrand.Rand) Element {
	return Element{A: randFp(r), B: randFp(r)}
}

// Generate implements quick.Generator.
func (Element) Generate(r *mrand.Rand, _ int) reflect.Value {
	var e Element
	switch r.Intn(10) {
	case 0:
		e = Zero()
	case 1:
		e = One()
	case 2:
		e = I()
	case 3:
		// p-1 in both coordinates: maximal canonical values.
		pm1 := fp.Sub(fp.Zero(), fp.One())
		e = Element{A: pm1, B: pm1}
	default:
		e = randElement(r)
	}
	return reflect.ValueOf(e)
}

func fpToBig(e fp.Element) *big.Int {
	lo, hi := e.Limbs()
	v := new(big.Int).SetUint64(hi)
	v.Lsh(v, 64)
	return v.Add(v, new(big.Int).SetUint64(lo))
}

// refMul multiplies via big.Int complex arithmetic.
func refMul(a, b Element) (re, im *big.Int) {
	a0, a1 := fpToBig(a.A), fpToBig(a.B)
	b0, b1 := fpToBig(b.A), fpToBig(b.B)
	re = new(big.Int).Mul(a0, b0)
	re.Sub(re, new(big.Int).Mul(a1, b1))
	re.Mod(re, bigP)
	im = new(big.Int).Mul(a0, b1)
	im.Add(im, new(big.Int).Mul(a1, b0))
	im.Mod(im, bigP)
	return
}

func TestIIsSqrtMinusOne(t *testing.T) {
	minusOne := Neg(One())
	if !Mul(I(), I()).Equal(minusOne) {
		t.Fatal("i^2 != -1")
	}
	if !MulI(One()).Equal(I()) {
		t.Fatal("MulI(1) != i")
	}
}

func TestMulAgainstBigInt(t *testing.T) {
	f := func(a, b Element) bool {
		got := Mul(a, b)
		re, im := refMul(a, b)
		return fpToBig(got.A).Cmp(re) == 0 && fpToBig(got.B).Cmp(im) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulVariantsAgree(t *testing.T) {
	f := func(a, b Element) bool {
		m := Mul(a, b)
		return m.Equal(MulSchoolbook(a, b)) && m.Equal(MulAlg2(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlg2StageInvariants(t *testing.T) {
	// The lazy-reduction pipeline keeps all intermediates inside the widths
	// of the hardware registers; check the documented bounds.
	rng := mrand.New(mrand.NewSource(21))
	pm1 := fp.Sub(fp.Zero(), fp.One())
	cases := []struct{ x, y Element }{
		{Zero(), Zero()},
		{One(), One()},
		{Element{A: pm1, B: pm1}, Element{A: pm1, B: pm1}},
		{I(), I()},
		{Element{A: pm1}, Element{B: pm1}},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, struct{ x, y Element }{randElement(rng), randElement(rng)})
	}
	for _, c := range cases {
		tr := MulAlg2Trace(c.x, c.y)
		// t7 must fit in 254 bits.
		if tr.T7[3]>>62 != 0 {
			t.Fatalf("t7 exceeds 254 bits for %v * %v", c.x, c.y)
		}
		// t8 (cross term) must fit in 255 bits and be non-negative
		// (checked implicitly: t6 >= t5 always).
		if tr.T8[3]>>63 != 0 {
			t.Fatalf("t8 exceeds 255 bits for %v * %v", c.x, c.y)
		}
		// Final outputs are canonical.
		want := Mul(c.x, c.y)
		if !tr.Z0.Equal(want.A) || !tr.Z1.Equal(want.B) {
			t.Fatalf("Alg2 result mismatch for %v * %v", c.x, c.y)
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	f := func(a Element) bool {
		return Sqr(a).Equal(Mul(a, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	assoc := func(a, b, c Element) bool {
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	distrib := func(a, b, c Element) bool {
		return Mul(a, Add(b, c)).Equal(Add(Mul(a, b), Mul(a, c)))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error("distributivity:", err)
	}
	conjMult := func(a, b Element) bool {
		return Conj(Mul(a, b)).Equal(Mul(Conj(a), Conj(b)))
	}
	if err := quick.Check(conjMult, nil); err != nil {
		t.Error("conjugation homomorphism:", err)
	}
	addSub := func(a, b Element) bool {
		return Sub(Add(a, b), b).Equal(a) && Add(a, Neg(a)).IsZero()
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Error("add/sub:", err)
	}
}

func TestInv(t *testing.T) {
	if !Inv(Zero()).IsZero() {
		t.Error("Inv(0) != 0")
	}
	f := func(a Element) bool {
		if a.IsZero() {
			return true
		}
		return Mul(a, Inv(a)).IsOne()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormMultiplicative(t *testing.T) {
	f := func(a, b Element) bool {
		return Norm(Mul(a, b)).Equal(fp.Mul(Norm(a), Norm(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSqrt(t *testing.T) {
	rng := mrand.New(mrand.NewSource(31))
	for i := 0; i < 50; i++ {
		a := randElement(rng)
		s := Sqr(a)
		r, ok := Sqrt(s)
		if !ok {
			t.Fatalf("Sqrt failed on square %v", s)
		}
		if !Sqr(r).Equal(s) {
			t.Fatalf("Sqrt returned non-root for %v", s)
		}
	}
	// Pure-real and pure-imaginary cases.
	for i := 0; i < 20; i++ {
		a := Element{A: randFp(rng)}
		s := Sqr(a)
		if r, ok := Sqrt(s); !ok || !Sqr(r).Equal(s) {
			t.Fatalf("Sqrt failed on real square")
		}
		b := Element{B: randFp(rng)}
		s = Sqr(b)
		if r, ok := Sqrt(s); !ok || !Sqr(r).Equal(s) {
			t.Fatalf("Sqrt failed on imaginary square")
		}
	}
	// Non-squares must be rejected. i*nonsquare trick: find one by search.
	found := 0
	for i := 0; i < 50; i++ {
		a := randElement(rng)
		if !IsSquare(a) {
			found++
			if _, ok := Sqrt(a); ok {
				t.Fatalf("Sqrt succeeded on non-square %v", a)
			}
		}
	}
	if found == 0 {
		t.Error("no non-squares found in 50 random elements; suspicious")
	}
}

func TestMulIEquivalence(t *testing.T) {
	f := func(a Element) bool {
		return MulI(a).Equal(Mul(a, I()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulFpAndSmall(t *testing.T) {
	f := func(a Element, v uint64) bool {
		s := fp.New(v)
		return MulFp(a, s).Equal(Mul(a, Element{A: s})) &&
			MulSmall(a, v).Equal(MulFp(a, s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a Element) bool {
		b := a.Bytes()
		got, err := FromBytes(b[:])
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromBytes(make([]byte, 7)); err == nil {
		t.Error("FromBytes accepted wrong length")
	}
}

func BenchmarkMulKaratsuba(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x, y := randElement(rng), randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	sink = x
}

func BenchmarkMulSchoolbook(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x, y := randElement(rng), randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = MulSchoolbook(x, y)
	}
	sink = x
}

func BenchmarkMulAlg2(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x, y := randElement(rng), randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = MulAlg2(x, y)
	}
	sink = x
}

func BenchmarkSqr(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x := randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Sqr(x)
	}
	sink = x
}

func BenchmarkInv(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x := randElement(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Inv(x)
	}
	sink = x
}

var sink Element
