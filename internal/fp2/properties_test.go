package fp2

import (
	"testing"
	"testing/quick"

	"repro/internal/fp"
)

// Deeper algebraic properties of GF(p^2), complementing the basic axiom
// tests in fp2_test.go.

func TestFrobeniusIsConjugation(t *testing.T) {
	// The p-power Frobenius of GF(p^2)/GF(p) fixes GF(p) and negates the
	// imaginary part: a^p == conj(a).
	pExp := []uint64{^uint64(0), 0x7FFFFFFFFFFFFFFF} // p = 2^127-1
	f := func(a Element) bool {
		frob := Element{
			A: fp.Exp(a.A, pExp),
			B: fp.Exp(a.B, pExp),
		}
		// Component-wise x^p == x in GF(p) (Fermat), so a^p as a field
		// power must be computed properly: use square-and-multiply over
		// the whole field via repeated squaring.
		apow := expFp2(a, pExp)
		return apow.Equal(Conj(a)) && frob.A.Equal(a.A) && frob.B.Equal(a.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// expFp2 is a simple square-and-multiply in GF(p^2) for tests.
func expFp2(a Element, e []uint64) Element {
	r := One()
	for i := len(e) - 1; i >= 0; i-- {
		for b := 63; b >= 0; b-- {
			r = Sqr(r)
			if e[i]>>uint(b)&1 == 1 {
				r = Mul(r, a)
			}
		}
	}
	return r
}

func TestUnitGroupOrder(t *testing.T) {
	// a^(p^2-1) == 1 for a != 0: exponent (p-1)(p+1) applied in stages.
	pm1 := []uint64{^uint64(0) - 1, 0x7FFFFFFFFFFFFFFF} // p-1
	pp1 := []uint64{0, 0x8000000000000000}              // p+1 = 2^127
	f := func(a Element) bool {
		if a.IsZero() {
			return true
		}
		return expFp2(expFp2(a, pm1), pp1).IsOne()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSquareDetection(t *testing.T) {
	// Exactly the squares pass IsSquare; the product of two non-squares
	// is a square.
	f := func(a, b Element) bool {
		if a.IsZero() || b.IsZero() {
			return true
		}
		sa, sb := IsSquare(a), IsSquare(b)
		prod := IsSquare(Mul(a, b))
		// quadratic character is multiplicative
		return prod == (sa == sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInvolutionAndLinearity(t *testing.T) {
	f := func(a, b Element) bool {
		return Conj(Conj(a)).Equal(a) &&
			Conj(Add(a, b)).Equal(Add(Conj(a), Conj(b))) &&
			Neg(Neg(a)).Equal(a) &&
			Sub(Zero(), a).Equal(Neg(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormIsFpValued(t *testing.T) {
	f := func(a Element) bool {
		n := Norm(a)
		// norm(a) = a * conj(a), and the product must be purely real.
		prod := Mul(a, Conj(a))
		return prod.B.IsZero() && prod.A.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDoubleHalf(t *testing.T) {
	inv2 := Element{A: fp.Inv(fp.New(2))}
	f := func(a Element) bool {
		return Mul(Double(a), inv2).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
