package fp2

import (
	mrand "math/rand"
	"testing"

	"repro/internal/fp"
)

// TestMulAlg2RowsMatchesTrace pins the lean row kernel to the traced
// Algorithm 2 model bit for bit: random elements plus the lazy-
// reduction edge cases (zero, one, maximal limbs — the inputs that
// exercise T4's sign lift and condSubP's double subtraction).
func TestMulAlg2RowsMatchesTrace(t *testing.T) {
	pm1 := fp.SetLimbs(^uint64(0)-1, ^uint64(0)>>1) // p - 1
	edges := []Element{
		{},
		New(fp.One(), fp.Zero()),
		New(fp.Zero(), fp.One()),
		New(pm1, pm1),
		New(pm1, fp.Zero()),
		New(fp.Zero(), pm1),
		New(fp.One(), pm1),
	}
	rng := mrand.New(mrand.NewSource(97))
	var a, b []Element
	for _, x := range edges {
		for _, y := range edges {
			a = append(a, x)
			b = append(b, y)
		}
	}
	for i := 0; i < 512; i++ {
		a = append(a, randElement(rng))
		b = append(b, randElement(rng))
	}
	dst := make([]Element, len(a))
	MulAlg2Rows(dst, a, b)
	for i := range a {
		want := MulAlg2(a[i], b[i])
		if !dst[i].Equal(want) {
			t.Fatalf("pair %d: row kernel %v != traced MulAlg2 %v for %v * %v",
				i, dst[i], want, a[i], b[i])
		}
	}
}

// FuzzMulAlg2RowsEquivalence fuzzes the lean kernel against the traced
// model over arbitrary limb patterns (SetLimbs canonicalizes them).
func FuzzMulAlg2RowsEquivalence(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0),
		uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0),
		^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, b0, b1, b2, b3 uint64) {
		a := New(fp.SetLimbs(a0, a1), fp.SetLimbs(a2, a3))
		b := New(fp.SetLimbs(b0, b1), fp.SetLimbs(b2, b3))
		var dst [1]Element
		MulAlg2Rows(dst[:], []Element{a}, []Element{b})
		if want := MulAlg2(a, b); !dst[0].Equal(want) {
			t.Fatalf("row kernel %v != traced MulAlg2 %v for %v * %v", dst[0], want, a, b)
		}
	})
}

func BenchmarkMulAlg2Rows(b *testing.B) {
	rng := mrand.New(mrand.NewSource(5))
	const n = 8
	var av, bv, dst [n]Element
	for i := range av {
		av[i] = randElement(rng)
		bv[i] = randElement(rng)
	}
	b.Run("traced-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i += n {
			for l := 0; l < n; l++ {
				dst[l] = MulAlg2(av[l], bv[l])
			}
		}
	})
	b.Run("lean-rows", func(b *testing.B) {
		for i := 0; i < b.N; i += n {
			MulAlg2Rows(dst[:], av[:], bv[:])
		}
	})
	sinkRows = dst
}

var sinkRows [8]Element
