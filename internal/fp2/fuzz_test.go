package fp2

import (
	"math/big"
	"testing"

	"repro/internal/fp"
)

// bigPair is the math/big reference of a GF(p^2) element: real and
// imaginary parts as integers mod p.
type bigPair struct{ a, b *big.Int }

func toBigPair(e Element) bigPair {
	lift := func(x fp.Element) *big.Int {
		lo, hi := x.Limbs()
		v := new(big.Int).SetUint64(hi)
		v.Lsh(v, 64)
		return v.Or(v, new(big.Int).SetUint64(lo))
	}
	return bigPair{a: lift(e.A), b: lift(e.B)}
}

func modP(v *big.Int) *big.Int { return v.Mod(v, bigP) }

// mulRef computes (a0 + b0*i)(a1 + b1*i) mod p with i^2 = -1 in the
// schoolbook reference domain.
func mulRef(x, y bigPair) bigPair {
	re := new(big.Int).Mul(x.a, y.a)
	re.Sub(re, new(big.Int).Mul(x.b, y.b))
	im := new(big.Int).Mul(x.a, y.b)
	im.Add(im, new(big.Int).Mul(x.b, y.a))
	return bigPair{a: modP(re), b: modP(im)}
}

func pairEqual(got Element, want bigPair) bool {
	g := toBigPair(got)
	return g.a.Cmp(want.a) == 0 && g.b.Cmp(want.b) == 0
}

// FuzzMulVsBig differentially tests the three multiplier
// implementations — software Karatsuba (Mul), schoolbook
// (MulSchoolbook), and the bit-exact datapath stage model (MulAlg2,
// Algorithm 2's lazy-reduction pipeline, which the cycle-accurate RTL
// executes) — against a math/big reference on fuzz-chosen elements.
func FuzzMulVsBig(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0x7FFFFFFFFFFFFFFE), ^uint64(0), uint64(0x7FFFFFFFFFFFFFFE),
		^uint64(0), uint64(0x7FFFFFFFFFFFFFFE), ^uint64(0), uint64(0x7FFFFFFFFFFFFFFE)) // (p-1) everywhere
	f.Add(uint64(2), uint64(0), uint64(3), uint64(0), uint64(5), uint64(0), uint64(7), uint64(0))

	f.Fuzz(func(t *testing.T, xalo, xahi, xblo, xbhi, yalo, yahi, yblo, ybhi uint64) {
		x := New(fp.SetLimbs(xalo, xahi), fp.SetLimbs(xblo, xbhi))
		y := New(fp.SetLimbs(yalo, yahi), fp.SetLimbs(yblo, ybhi))
		rx, ry := toBigPair(x), toBigPair(y)
		want := mulRef(rx, ry)

		if got := Mul(x, y); !pairEqual(got, want) {
			t.Fatalf("Mul(%v, %v) = %v, reference (%v, %v)", x, y, got, want.a, want.b)
		}
		if got := MulSchoolbook(x, y); !pairEqual(got, want) {
			t.Fatalf("MulSchoolbook diverges from reference for %v * %v", x, y)
		}
		if got := MulAlg2(x, y); !pairEqual(got, want) {
			t.Fatalf("MulAlg2 (datapath model) diverges from reference for %v * %v", x, y)
		}
		if got := Sqr(x); !pairEqual(got, mulRef(rx, rx)) {
			t.Fatalf("Sqr diverges from reference for %v", x)
		}

		// Additive ops against the same reference domain.
		sum := bigPair{a: modP(new(big.Int).Add(rx.a, ry.a)), b: modP(new(big.Int).Add(rx.b, ry.b))}
		if got := Add(x, y); !pairEqual(got, sum) {
			t.Fatalf("Add diverges from reference")
		}
		diff := bigPair{a: modP(new(big.Int).Sub(rx.a, ry.a)), b: modP(new(big.Int).Sub(rx.b, ry.b))}
		if got := Sub(x, y); !pairEqual(got, diff) {
			t.Fatalf("Sub diverges from reference")
		}
	})
}

// FuzzInvVsBig checks inversion (conjugate-over-norm with the GF(p)
// addition-chain inverse inside) against a reference built from
// math/big's ModInverse, plus the defining identity x * x^-1 == 1.
func FuzzInvVsBig(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0), uint64(1), uint64(0)) // i
	f.Add(uint64(3), uint64(7), ^uint64(0), uint64(0x7FFFFFFFFFFFFFFE))

	f.Fuzz(func(t *testing.T, alo, ahi, blo, bhi uint64) {
		x := New(fp.SetLimbs(alo, ahi), fp.SetLimbs(blo, bhi))
		inv := Inv(x)
		if x.IsZero() {
			if !inv.IsZero() {
				t.Fatal("Inv(0) must be 0")
			}
			return
		}
		if got := Mul(x, inv); !got.IsOne() {
			t.Fatalf("x * Inv(x) = %v, want 1 (x = %v)", got, x)
		}
		// Reference: (a - b*i) * (a^2 + b^2)^-1 mod p.
		rx := toBigPair(x)
		norm := new(big.Int).Mul(rx.a, rx.a)
		norm.Add(norm, new(big.Int).Mul(rx.b, rx.b))
		normInv := new(big.Int).ModInverse(modP(norm), bigP)
		want := bigPair{
			a: modP(new(big.Int).Mul(rx.a, normInv)),
			b: modP(new(big.Int).Mul(new(big.Int).Neg(rx.b), normInv)),
		}
		if !pairEqual(inv, want) {
			t.Fatalf("Inv(%v) diverges from reference", x)
		}
	})
}
