package fp2

import (
	"math/bits"

	"repro/internal/fp"
)

// This file is a bit-exact software model of the paper's Algorithm 2: the
// pipelined Karatsuba GF(p^2) multiplier with lazy reduction. The hardware
// keeps unreduced 254..256-bit intermediates in pipeline registers and
// performs the Mersenne reduction only at the very end of the accumulation
// (the "lazy reduction" of Scott / Aranha et al.). The RTL simulator in
// internal/rtl executes exactly these stages, one per pipeline cycle.

// u256 is an unsigned 256-bit integer in four little-endian 64-bit limbs.
type u256 [4]uint64

func u256FromFp(e fp.Element) u256 {
	lo, hi := e.Limbs()
	return u256{lo, hi, 0, 0}
}

// mulWide computes the full 256-bit product of two canonical GF(p)
// elements (each < 2^127), i.e. Algorithm 2's t0, t1.
func mulWide(a, b fp.Element) u256 {
	a0, a1 := a.Limbs()
	b0, b1 := b.Limbs()
	h00, l00 := bits.Mul64(a0, b0)
	h01, l01 := bits.Mul64(a0, b1)
	h10, l10 := bits.Mul64(a1, b0)
	h11, l11 := bits.Mul64(a1, b1)

	var r u256
	r[0] = l00
	var c, c2 uint64
	r[1], c = bits.Add64(h00, l01, 0)
	r[2], c2 = bits.Add64(h01, l11, c)
	r[3] = h11 + c2
	r[1], c = bits.Add64(r[1], l10, 0)
	r[2], c2 = bits.Add64(r[2], h10, c)
	r[3] += c2
	return r
}

// mulWide128 multiplies two 128-bit values given as limb pairs (used for
// t6 = t2*t3 where the factors may reach 2^128-2).
func mulWide128(a0, a1, b0, b1 uint64) u256 {
	h00, l00 := bits.Mul64(a0, b0)
	h01, l01 := bits.Mul64(a0, b1)
	h10, l10 := bits.Mul64(a1, b0)
	h11, l11 := bits.Mul64(a1, b1)

	var r u256
	r[0] = l00
	var c, c2 uint64
	r[1], c = bits.Add64(h00, l01, 0)
	r[2], c2 = bits.Add64(h01, l11, c)
	r[3] = h11 + c2
	r[1], c = bits.Add64(r[1], l10, 0)
	r[2], c2 = bits.Add64(r[2], h10, c)
	r[3] += c2
	return r
}

func addU256(a, b u256) (r u256, carry uint64) {
	var c uint64
	r[0], c = bits.Add64(a[0], b[0], 0)
	r[1], c = bits.Add64(a[1], b[1], c)
	r[2], c = bits.Add64(a[2], b[2], c)
	r[3], c = bits.Add64(a[3], b[3], c)
	return r, c
}

func subU256(a, b u256) (r u256, borrow uint64) {
	var bw uint64
	r[0], bw = bits.Sub64(a[0], b[0], 0)
	r[1], bw = bits.Sub64(a[1], b[1], bw)
	r[2], bw = bits.Sub64(a[2], b[2], bw)
	r[3], bw = bits.Sub64(a[3], b[3], bw)
	return r, bw
}

// pRepresentative254 is 2^254 - 1 = p * (2^127 + 1), the multiple of p the
// datapath adds to make a negative 254-bit lazy value non-negative. The
// paper writes this step as "t7 <- t4 + p if t4 < 0": in the folded 254-bit
// domain the constant that plays the role of p is p*(2^127+1).
var pRepresentative254 = u256{^uint64(0), ^uint64(0), ^uint64(0), 0x3FFFFFFFFFFFFFFF}

// fold254 computes v[126:0] + v[253:127] for a 254-bit value (Algorithm 2's
// t9 computation), returning a 128-bit result as two limbs.
func fold254(v u256) (lo, hi uint64) {
	low0 := v[0]
	low1 := v[1] & 0x7FFFFFFFFFFFFFFF
	hi0 := v[1]>>63 | v[2]<<1
	hi1 := v[2]>>63 | v[3]<<1 // bits up to 253 only; caller guarantees v < 2^254
	var c uint64
	lo, c = bits.Add64(low0, hi0, 0)
	hi, _ = bits.Add64(low1, hi1, c)
	return lo, hi
}

// fold256 computes v[126:0] + v[253:127] + v[255:254] (Algorithm 2's t10
// computation), valid for the full 256-bit register.
func fold256(v u256) (lo, hi uint64) {
	top2 := v[3] >> 62 // bits 255:254, weight 2^254 == 1 (mod p)
	masked := v
	masked[3] &= 0x3FFFFFFFFFFFFFFF
	lo, hi = fold254(masked)
	var c uint64
	lo, c = bits.Add64(lo, top2, 0)
	hi += c
	return lo, hi
}

// condSubP reduces a 128-bit folded value into [0, p) with up to two
// conditional subtractions, the datapath's final correction stage.
func condSubP(lo, hi uint64) fp.Element {
	p0, p1 := fp.P()
	for i := 0; i < 2; i++ {
		if hi > p1 || (hi == p1 && lo >= p0) {
			var bw uint64
			lo, bw = bits.Sub64(lo, p0, 0)
			hi, _ = bits.Sub64(hi, p1, bw)
		}
	}
	return fp.SetLimbs(lo, hi)
}

// Alg2Trace records every named intermediate of Algorithm 2 so tests and
// the RTL model can check stage values, not just the final product.
type Alg2Trace struct {
	T0, T1, T6     u256   // wide products
	T2Lo, T2Hi     uint64 // x0+x1 (128-bit)
	T3Lo, T3Hi     uint64 // y0+y1
	T4Neg          bool   // sign of t0-t1
	T4, T5, T7, T8 u256
	T9Lo, T9Hi     uint64
	T10Lo, T10Hi   uint64
	Z0, Z1         fp.Element
}

// MulAlg2 multiplies a*b following Algorithm 2 of the paper stage by
// stage and returns the product. It is functionally identical to Mul; the
// point is that every intermediate matches the hardware pipeline register
// contents. Use MulAlg2Trace to observe the stages.
func MulAlg2(a, b Element) Element {
	tr := MulAlg2Trace(a, b)
	return Element{A: tr.Z0, B: tr.Z1}
}

// MulAlg2Trace is MulAlg2 with full visibility into the pipeline stages.
func MulAlg2Trace(x, y Element) Alg2Trace {
	var tr Alg2Trace

	// Stage 1: two wide multiplications and the two Karatsuba pre-additions.
	tr.T0 = mulWide(x.A, y.A)
	tr.T1 = mulWide(x.B, y.B)
	x0lo, x0hi := x.A.Limbs()
	x1lo, x1hi := x.B.Limbs()
	y0lo, y0hi := y.A.Limbs()
	y1lo, y1hi := y.B.Limbs()
	var c uint64
	tr.T2Lo, c = bits.Add64(x0lo, x1lo, 0)
	tr.T2Hi, _ = bits.Add64(x0hi, x1hi, c)
	tr.T3Lo, c = bits.Add64(y0lo, y1lo, 0)
	tr.T3Hi, _ = bits.Add64(y0hi, y1hi, c)

	// Stage 2: t4 = t0 - t1 (signed), t5 = t0 + t1, t6 = t2 * t3.
	var borrow uint64
	tr.T4, borrow = subU256(tr.T0, tr.T1)
	tr.T4Neg = borrow != 0
	tr.T5, _ = addU256(tr.T0, tr.T1)
	tr.T6 = mulWide128(tr.T2Lo, tr.T2Hi, tr.T3Lo, tr.T3Hi)

	// Stage 3: make t4 non-negative by adding p*(2^127+1) = 2^254-1;
	// t8 = t6 - t5 (always non-negative: it is the cross term).
	tr.T7 = tr.T4
	if tr.T4Neg {
		tr.T7, _ = addU256(tr.T4, pRepresentative254)
	}
	tr.T8, _ = subU256(tr.T6, tr.T5)

	// Stage 4: Mersenne folds.
	tr.T9Lo, tr.T9Hi = fold254(tr.T7)
	tr.T10Lo, tr.T10Hi = fold256(tr.T8)

	// Stage 5: final conditional subtractions.
	tr.Z0 = condSubP(tr.T9Lo, tr.T9Hi)
	tr.Z1 = condSubP(tr.T10Lo, tr.T10Hi)
	return tr
}

// mulAlg2Lean is MulAlg2 with the pipeline-trace bookkeeping stripped:
// the same stages in the same order on the same lazy-reduction domains,
// fused so every intermediate stays in registers instead of being
// written into an Alg2Trace. Outputs are bit-identical to MulAlg2 by
// construction (TestMulAlg2RowsMatchesTrace pins it exhaustively over
// random and edge-case inputs).
func mulAlg2Lean(x, y Element) Element {
	x0lo, x0hi := x.A.Limbs()
	x1lo, x1hi := x.B.Limbs()
	y0lo, y0hi := y.A.Limbs()
	y1lo, y1hi := y.B.Limbs()

	// Stage 1: t0 = x0*y0 and t1 = x1*y1 (mulWide flattened into limb
	// variables so every intermediate stays in registers), plus the
	// Karatsuba pre-additions t2 = x0+x1, t3 = y0+y1.
	var c, c2 uint64
	h00, l00 := bits.Mul64(x0lo, y0lo)
	h01, l01 := bits.Mul64(x0lo, y0hi)
	h10, l10 := bits.Mul64(x0hi, y0lo)
	h11, l11 := bits.Mul64(x0hi, y0hi)
	t00 := l00
	t01, c := bits.Add64(h00, l01, 0)
	t02, c2 := bits.Add64(h01, l11, c)
	t03 := h11 + c2
	t01, c = bits.Add64(t01, l10, 0)
	t02, c2 = bits.Add64(t02, h10, c)
	t03 += c2

	h00, l00 = bits.Mul64(x1lo, y1lo)
	h01, l01 = bits.Mul64(x1lo, y1hi)
	h10, l10 = bits.Mul64(x1hi, y1lo)
	h11, l11 = bits.Mul64(x1hi, y1hi)
	t10 := l00
	t11, c := bits.Add64(h00, l01, 0)
	t12, c2 := bits.Add64(h01, l11, c)
	t13 := h11 + c2
	t11, c = bits.Add64(t11, l10, 0)
	t12, c2 = bits.Add64(t12, h10, c)
	t13 += c2

	t2lo, c := bits.Add64(x0lo, x1lo, 0)
	t2hi, _ := bits.Add64(x0hi, x1hi, c)
	t3lo, c := bits.Add64(y0lo, y1lo, 0)
	t3hi, _ := bits.Add64(y0hi, y1hi, c)

	// Stage 2: t4 = t0 - t1 (signed), t5 = t0 + t1, t6 = t2 * t3.
	var bw uint64
	t40, bw := bits.Sub64(t00, t10, 0)
	t41, bw := bits.Sub64(t01, t11, bw)
	t42, bw := bits.Sub64(t02, t12, bw)
	t43, bw := bits.Sub64(t03, t13, bw)

	t50, c := bits.Add64(t00, t10, 0)
	t51, c := bits.Add64(t01, t11, c)
	t52, c := bits.Add64(t02, t12, c)
	t53, _ := bits.Add64(t03, t13, c)

	h00, l00 = bits.Mul64(t2lo, t3lo)
	h01, l01 = bits.Mul64(t2lo, t3hi)
	h10, l10 = bits.Mul64(t2hi, t3lo)
	h11, l11 = bits.Mul64(t2hi, t3hi)
	t60 := l00
	t61, c := bits.Add64(h00, l01, 0)
	t62, c2 := bits.Add64(h01, l11, c)
	t63 := h11 + c2
	t61, c = bits.Add64(t61, l10, 0)
	t62, c2 = bits.Add64(t62, h10, c)
	t63 += c2

	// Stage 3: lift t4 into the non-negative 254-bit domain by adding
	// p*(2^127+1) = 2^254-1 when negative; t8 = t6 - t5 (the cross term,
	// always non-negative).
	if bw != 0 {
		t40, c = bits.Add64(t40, ^uint64(0), 0)
		t41, c = bits.Add64(t41, ^uint64(0), c)
		t42, c = bits.Add64(t42, ^uint64(0), c)
		t43, _ = bits.Add64(t43, 0x3FFFFFFFFFFFFFFF, c)
	}
	t80, bw := bits.Sub64(t60, t50, 0)
	t81, bw := bits.Sub64(t61, t51, bw)
	t82, bw := bits.Sub64(t62, t52, bw)
	t83, _ := bits.Sub64(t63, t53, bw)

	// Stage 4: Mersenne folds — fold254 for t4, fold256 for t8.
	z0lo, c := bits.Add64(t40, t41>>63|t42<<1, 0)
	z0hi, _ := bits.Add64(t41&mask127le, t42>>63|t43<<1, c)

	top2 := t83 >> 62
	t83 &= 0x3FFFFFFFFFFFFFFF
	z1lo, c := bits.Add64(t80, t81>>63|t82<<1, 0)
	z1hi, _ := bits.Add64(t81&mask127le, t82>>63|t83<<1, c)
	z1lo, c = bits.Add64(z1lo, top2, 0)
	z1hi += c

	// Stage 5: final conditional subtractions into canonical form.
	return Element{A: condSubP(z0lo, z0hi), B: condSubP(z1lo, z1hi)}
}

// mask127le keeps the low 63 bits of a high limb (bit 127 of the wide
// value), mirroring fold254's masking.
const mask127le = 0x7FFFFFFFFFFFFFFF

// MulAlg2Rows computes dst[i] = a[i] * b[i] with the Algorithm 2
// multiplier for whole operand rows (the lockstep lane machine's mul
// kernel, see internal/rtl). Results are bit-identical to per-element
// MulAlg2 — same stages, same lazy-reduction domains — without
// materializing a pipeline trace per product, which is what makes the
// batched path cheaper than N scalar calls. dst, a and b must have the
// same length.
func MulAlg2Rows(dst, a, b []Element) {
	_ = dst[len(a)-1] // one bounds check, then the loop body elides them
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = mulAlg2Lean(a[i], b[i])
	}
}

// FpMulCount reports the number of GF(p) multiplier instances Algorithm 2
// uses (3, versus 4 for the schoolbook datapath); used by the area model.
const FpMulCount = 3

// SchoolbookFpMulCount is the GF(p) multiplier count of the naive design.
const SchoolbookFpMulCount = 4
