package isa

import (
	"testing"
)

// FuzzDecode: Decode must never panic and, for words it accepts,
// Encode(Decode(w)) must reproduce the meaningful bits (re-decode
// equality, since reserved bits are dropped).
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	if w, err := Encode(Instr{Unit: UnitAdd, Dst: 42, CmdMode: CmdDynSign, Digit: 17}); err == nil {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint64) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			// Encode enforces stricter range checks than Decode extracts
			// (register fields are masked on decode, so this cannot
			// happen; flag it if it does).
			t.Fatalf("decoded instruction not re-encodable: %+v", in)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatal("re-encoded word not decodable")
		}
		if in2 != in {
			t.Fatalf("decode/encode not idempotent: %+v vs %+v", in, in2)
		}
	})
}

// FuzzParseProgram: the assembler parser must never panic, and programs
// it accepts must survive a format/parse round trip.
func FuzzParseProgram(f *testing.F) {
	f.Add(FormatProgram(sampleProgram()))
	f.Add(".regs 4\nI 0 MUL A=r1 B=r1 DST=r2\n")
	f.Add("garbage\n")
	f.Add(".latency mul=\n")
	f.Add("I 0 ADD A=tbl[x+y,64] B=corr[2dt] CMD=dyn(corr) DST=r1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src)
		if err != nil {
			return
		}
		text := FormatProgram(p)
		p2, err := ParseProgram(text)
		if err != nil {
			t.Fatalf("formatted accepted program fails to parse: %v\n%s", err, text)
		}
		if FormatProgram(p2) != text {
			t.Fatal("format/parse/format not a fixed point")
		}
	})
}
