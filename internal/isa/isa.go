// Package isa defines the microinstruction set of the FourQ ASIC
// cryptoprocessor model: the control-word layout of the program ROM that
// the FSM sequencer (Fig. 1(a)) walks through, one multiplier issue and
// one adder issue per cycle, with register-file addressing, forwarding
// selects, and the runtime table-indexing and sign commands driven by the
// recoded scalar digits (the "cmd." column of the paper's Table I).
package isa

import (
	"errors"
	"fmt"
	"sort"
)

// Unit indices.
const (
	UnitMul = 0
	UnitAdd = 1
)

// OperandKind selects how a datapath input is sourced.
type OperandKind uint8

const (
	// OpNone marks an unused operand slot.
	OpNone OperandKind = iota
	// OpReg reads the register file at Reg.
	OpReg
	// OpFwdMul takes the multiplier output port (the result completing
	// this cycle), bypassing the register file.
	OpFwdMul
	// OpFwdAdd takes the adder output port.
	OpFwdAdd
	// OpTable reads the precomputed-table region: the physical address is
	// computed from the recoded digit v_Digit and coordinate Coord, with
	// the X+Y / Y-X swap applied when the digit sign is negative.
	OpTable
	// OpCorr reads the parity-correction operand: coordinate Coord of -P
	// (table entry 0, swapped) when the correction flag is set, else the
	// cached-identity constant register.
	OpCorr
	// OpROM reads the fixed-base window ROM: coordinate Coord of entry
	// v_Digit of window Digit (1-based; window 0 lives in the register
	// -file table region and uses OpTable), with the same X+Y / Y-X swap
	// as OpTable when the digit sign is negative. The ROM has its own
	// read port, so an OpROM operand consumes no register-file port.
	OpROM
)

func (k OperandKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpReg:
		return "reg"
	case OpFwdMul:
		return "Mout"
	case OpFwdAdd:
		return "Sout"
	case OpTable:
		return "tbl"
	case OpCorr:
		return "corr"
	case OpROM:
		return "rom"
	}
	return "?"
}

// Operand is one datapath input specifier.
type Operand struct {
	Kind  OperandKind
	Reg   uint16 // register address (OpReg)
	Coord uint8  // table coordinate 0..3 (OpTable/OpCorr/OpROM)
	Digit uint8  // recoded digit position 0..64 (OpTable); ROM window 1..62 (OpROM)
}

// CmdMode selects how the adder's command bits are produced.
type CmdMode uint8

const (
	// CmdStatic takes the lane commands from the instruction word.
	CmdStatic CmdMode = iota
	// CmdDynSign derives both lane commands from the sign of recoded
	// digit Digit (subtract when negative); Digit == DigitCorr uses the
	// correction flag instead.
	CmdDynSign
)

// DigitCorr is the Digit sentinel selecting the correction flag.
const DigitCorr = 127

// Lane command bits.
const (
	CmdAdd = 0
	CmdSub = 1
)

// Instr is one issued micro-operation.
type Instr struct {
	Cycle   int
	Unit    uint8 // UnitMul or UnitAdd
	A, B    Operand
	CmdMode CmdMode
	CmdRe   uint8 // lane commands (UnitAdd, CmdStatic)
	CmdIm   uint8
	Digit   uint8 // digit for CmdDynSign (DigitCorr = correction flag)
	Dst     uint16
	// NoWB suppresses the register-file write-back: the result is only
	// delivered on the unit's forwarding output. Set by the scheduler's
	// write-back elision pass for values all of whose consumers read the
	// forwarding network, saving register-file write energy.
	NoWB  bool
	Label string // debug only; not encoded
}

// ConstLoad preloads a register with a constant at program load time.
type ConstLoad struct {
	Reg   uint16
	Value [4]uint64 // fp2 limbs: re.lo, re.hi, im.lo, im.hi
}

// Program is a complete scheduled microprogram plus its register-file
// load map.
type Program struct {
	Instrs     []Instr
	NumRegs    int
	Makespan   int
	MulLatency int
	AddLatency int
	// MulII is the multiplier initiation interval (0 treated as 1).
	MulII int
	// InputRegs maps external input names to their registers.
	InputRegs map[string]uint16
	// ConstRegs lists constants to preload.
	ConstRegs []ConstLoad
	// TableRegs[u][c] is the register holding coordinate c of T[u].
	TableRegs [8][4]uint16
	// CorrIdentRegs holds the registers with the cached identity
	// (1, 1, 2, 0) used by OpCorr when the correction flag is clear.
	CorrIdentRegs [4]uint16
	// OutputRegs maps output names to registers.
	OutputRegs map[string]uint16
	// ROMWindows is the fixed-base operand ROM consumed by OpROM reads:
	// ROMWindows[w-1][u][c] holds coordinate c (fp2 limbs laid out as in
	// ConstLoad) of entry u of window w. Empty for programs without ROM
	// operands. The data lives beside the control-word ROM (ROMImage)
	// and is addressed by (window, runtime digit index, coordinate), so
	// it never occupies register-file space.
	ROMWindows [][8][4][4]uint64
}

// Validate performs structural checks: register addresses in range, at
// most one issue per unit per cycle, cycles within the makespan.
func (p *Program) Validate() error {
	type slot struct {
		unit  uint8
		cycle int
	}
	seen := map[slot]bool{}
	ii := p.MulII
	if ii <= 0 {
		ii = 1
	}
	lastMul := -1 << 30
	sorted := append([]Instr(nil), p.Instrs...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Cycle < sorted[b].Cycle })
	for _, in := range sorted {
		if in.Unit == UnitMul {
			if in.Cycle < lastMul+ii {
				return fmt.Errorf("isa: multiplier issues at %d and %d violate II=%d", lastMul, in.Cycle, ii)
			}
			lastMul = in.Cycle
		}
	}
	for i, in := range p.Instrs {
		if in.Unit != UnitMul && in.Unit != UnitAdd {
			return fmt.Errorf("isa: instr %d has invalid unit %d", i, in.Unit)
		}
		s := slot{in.Unit, in.Cycle}
		if seen[s] {
			return fmt.Errorf("isa: unit %d double-issued at cycle %d", in.Unit, in.Cycle)
		}
		seen[s] = true
		if int(in.Dst) >= p.NumRegs {
			return fmt.Errorf("isa: instr %d writes register %d >= %d", i, in.Dst, p.NumRegs)
		}
		for _, op := range [...]Operand{in.A, in.B} {
			if op.Kind == OpReg && int(op.Reg) >= p.NumRegs {
				return fmt.Errorf("isa: instr %d reads register %d >= %d", i, op.Reg, p.NumRegs)
			}
			if op.Kind == OpTable && op.Coord > 3 {
				return fmt.Errorf("isa: instr %d table coord %d", i, op.Coord)
			}
			if op.Kind == OpTable && op.Digit > 64 {
				return fmt.Errorf("isa: instr %d table digit %d", i, op.Digit)
			}
			if op.Kind == OpROM {
				if op.Coord > 3 {
					return fmt.Errorf("isa: instr %d ROM coord %d", i, op.Coord)
				}
				if op.Digit < 1 || int(op.Digit) > len(p.ROMWindows) {
					return fmt.Errorf("isa: instr %d ROM window %d outside [1,%d]", i, op.Digit, len(p.ROMWindows))
				}
			}
		}
		lat := p.AddLatency
		if in.Unit == UnitMul {
			lat = p.MulLatency
		}
		if in.Cycle < 0 || in.Cycle+lat > p.Makespan {
			return fmt.Errorf("isa: instr %d at cycle %d completes after makespan %d", i, in.Cycle, p.Makespan)
		}
	}
	return nil
}

// SortByCycle orders the instructions by (cycle, unit), the ROM order.
func (p *Program) SortByCycle() {
	sort.SliceStable(p.Instrs, func(i, j int) bool {
		if p.Instrs[i].Cycle != p.Instrs[j].Cycle {
			return p.Instrs[i].Cycle < p.Instrs[j].Cycle
		}
		return p.Instrs[i].Unit < p.Instrs[j].Unit
	})
}

// Control-word bit layout, one 64-bit word per issued operation
// (LSB first):
//
//	bit   0      valid
//	bit   1      unit
//	bit   2      cmdmode
//	bits  3-4    cmdRe, cmdIm
//	bits  5-11   digit (7 bits)
//	bits 12-32   operand A: kind(3) reg(9) coord(2) digit(7)
//	bits 33-53   operand B: kind(3) reg(9) coord(2) digit(7)
//	bits 54-62   dst register (9 bits)
//	bit  63      no-writeback flag
const (
	wordValid   = 1 << 0
	maxRegBits  = 9
	maxRegCount = 1 << maxRegBits
)

// MaxRegs is the architectural register-file size limit (9-bit address).
const MaxRegs = maxRegCount

var errWord = errors.New("isa: malformed control word")

// Encode packs an instruction into a 64-bit control word. The Cycle and
// Label fields are not encoded: the ROM address is the cycle.
func Encode(in Instr) (uint64, error) {
	if in.Dst >= maxRegCount || in.A.Reg >= maxRegCount || in.B.Reg >= maxRegCount {
		return 0, fmt.Errorf("isa: register address exceeds %d", maxRegCount)
	}
	var w uint64 = wordValid
	w |= uint64(in.Unit&1) << 1
	w |= uint64(in.CmdMode&1) << 2
	w |= uint64(in.CmdRe&1) << 3
	w |= uint64(in.CmdIm&1) << 4
	w |= uint64(in.Digit&0x7F) << 5
	enc := func(op Operand, shift uint) {
		w |= uint64(op.Kind&7) << shift
		w |= uint64(op.Reg&(maxRegCount-1)) << (shift + 3)
		w |= uint64(op.Coord&3) << (shift + 12)
		w |= uint64(op.Digit&0x7F) << (shift + 14)
	}
	enc(in.A, 12)
	enc(in.B, 33)
	w |= uint64(in.Dst) << 54
	if in.NoWB {
		w |= 1 << 63
	}
	return w, nil
}

// Decode unpacks a control word.
func Decode(w uint64) (Instr, error) {
	if w&wordValid == 0 {
		return Instr{}, errWord
	}
	var in Instr
	in.Unit = uint8(w >> 1 & 1)
	in.CmdMode = CmdMode(w >> 2 & 1)
	in.CmdRe = uint8(w >> 3 & 1)
	in.CmdIm = uint8(w >> 4 & 1)
	in.Digit = uint8(w >> 5 & 0x7F)
	dec := func(shift uint) Operand {
		return Operand{
			Kind:  OperandKind(w >> shift & 7),
			Reg:   uint16(w >> (shift + 3) & (maxRegCount - 1)),
			Coord: uint8(w >> (shift + 12) & 3),
			Digit: uint8(w >> (shift + 14) & 0x7F),
		}
	}
	in.A = dec(12)
	in.B = dec(33)
	in.Dst = uint16(w >> 54 & (maxRegCount - 1))
	in.NoWB = w>>63&1 == 1
	return in, nil
}

// ROMImage renders the program as the two-issue-slot-per-cycle ROM the
// FSM walks: words[2*c] is the multiplier slot of cycle c, words[2*c+1]
// the adder slot; empty slots are zero (invalid) words. The image size in
// bits feeds the area model.
func (p *Program) ROMImage() ([]uint64, error) {
	words := make([]uint64, 2*(p.Makespan+1))
	for _, in := range p.Instrs {
		w, err := Encode(in)
		if err != nil {
			return nil, err
		}
		idx := 2*in.Cycle + int(in.Unit)
		if idx >= len(words) {
			return nil, fmt.Errorf("isa: instruction cycle %d outside ROM", in.Cycle)
		}
		if words[idx] != 0 {
			return nil, fmt.Errorf("isa: ROM slot collision at cycle %d unit %d", in.Cycle, in.Unit)
		}
		words[idx] = w
	}
	return words, nil
}

// FromROMImage reconstructs the instruction stream of a ROM image.
func FromROMImage(words []uint64) ([]Instr, error) {
	var out []Instr
	for idx, w := range words {
		if w == 0 {
			continue
		}
		in, err := Decode(w)
		if err != nil {
			return nil, err
		}
		in.Cycle = idx / 2
		if int(in.Unit) != idx%2 {
			return nil, fmt.Errorf("isa: ROM slot %d holds unit %d", idx, in.Unit)
		}
		out = append(out, in)
	}
	return out, nil
}
