package isa

import (
	"reflect"
	"strings"
	"testing"
)

func sampleProgram() *Program {
	return &Program{
		NumRegs:    64,
		Makespan:   20,
		MulLatency: 3,
		AddLatency: 1,
		MulII:      1,
		InputRegs:  map[string]uint16{"P.x": 5, "P.y": 6},
		OutputRegs: map[string]uint16{"x": 30, "y": 31},
		ConstRegs: []ConstLoad{
			{Reg: 0, Value: [4]uint64{0, 0, 0, 0}},
			{Reg: 1, Value: [4]uint64{1, 0, 0, 0}},
			{Reg: 2, Value: [4]uint64{0x142, 0xE4, 0xB3821488F1FC0C8D, 0x5E472F846657E0FC}},
		},
		TableRegs: func() (t [8][4]uint16) {
			for u := 0; u < 8; u++ {
				for c := 0; c < 4; c++ {
					t[u][c] = uint16(10 + 4*u + c)
				}
			}
			return
		}(),
		CorrIdentRegs: [4]uint16{1, 1, 2, 0},
		Instrs: []Instr{
			{Cycle: 0, Unit: UnitMul, A: Operand{Kind: OpReg, Reg: 5}, B: Operand{Kind: OpReg, Reg: 5}, Dst: 40, Label: "dbl.x2"},
			{Cycle: 1, Unit: UnitAdd, A: Operand{Kind: OpReg, Reg: 5}, B: Operand{Kind: OpReg, Reg: 6}, CmdRe: CmdAdd, CmdIm: CmdAdd, Dst: 41, Label: "dbl.x+y"},
			{Cycle: 3, Unit: UnitAdd, A: Operand{Kind: OpFwdMul}, B: Operand{Kind: OpReg, Reg: 41}, CmdRe: CmdSub, CmdIm: CmdSub, Dst: 42},
			{Cycle: 4, Unit: UnitAdd, A: Operand{Kind: OpReg, Reg: 0}, B: Operand{Kind: OpTable, Coord: 3, Digit: 17}, CmdMode: CmdDynSign, Digit: 17, Dst: 43, Label: "signsel"},
			{Cycle: 5, Unit: UnitAdd, A: Operand{Kind: OpFwdAdd}, B: Operand{Kind: OpCorr, Coord: 2}, CmdMode: CmdDynSign, Digit: DigitCorr, Dst: 44},
			{Cycle: 6, Unit: UnitMul, A: Operand{Kind: OpTable, Coord: 0, Digit: 3}, B: Operand{Kind: OpReg, Reg: 44}, Dst: 45, NoWB: true, Label: "elided"},
		},
	}
}

func TestAsmRoundTrip(t *testing.T) {
	p := sampleProgram()
	text := FormatProgram(p)
	got, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("parse error:\n%s\n%v", text, err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\noriginal: %+v\nparsed:   %+v\ntext:\n%s", p, got, text)
	}
}

func TestAsmRoundTripNoTable(t *testing.T) {
	p := &Program{
		NumRegs: 8, Makespan: 4, MulLatency: 2, AddLatency: 1,
		InputRegs:  map[string]uint16{"x": 0},
		OutputRegs: map[string]uint16{"p": 3},
		Instrs: []Instr{
			{Cycle: 0, Unit: UnitMul, A: Operand{Kind: OpReg}, B: Operand{Kind: OpReg}, Dst: 3},
		},
	}
	got, err := ParseProgram(FormatProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.ConstRegs != nil {
		// normalize: empty vs nil
		t.Log("const normalization")
	}
	if !reflect.DeepEqual(p.Instrs, got.Instrs) || got.NumRegs != 8 {
		t.Fatal("no-table round trip mismatch")
	}
}

func TestAsmParseErrors(t *testing.T) {
	bad := []string{
		".regs x",
		".latency mul=a",
		".latency bogus=3",
		".input onlyname",
		".const r0 0x1",
		".table 9 x+y r3",
		".table 0 nope r3",
		".corrident what r1",
		"I zero MUL A=r1 B=r2 DST=r3",
		"I 0 DIV A=r1 B=r2 DST=r3",
		"I 0 MUL A=r9999 B=r2 DST=r3",
		"I 0 MUL A=tbl[x+y] B=r2 DST=r3",
		"I 0 MUL A=tbl[x+y,99] B=r2 DST=r3",
		"I 0 ADD A=r1 B=r2 CMD=*/ DST=r3",
		"I 0 ADD A=r1 B=r2 CMD=dyn(99) DST=r3",
		"I 0 MUL A=r1 B=r2 DST=banana",
		"garbage line",
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("accepted invalid line %q", src)
		}
	}
}

func TestAsmCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
.regs 4

.makespan 3
.latency mul=2 add=1
I 0 MUL A=r1 B=r1 DST=r2 ; squared
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Label != "squared" {
		t.Fatalf("comment/label parsing wrong: %+v", p.Instrs)
	}
}

func TestFormatOperandCoverage(t *testing.T) {
	ops := []Operand{
		{Kind: OpNone},
		{Kind: OpReg, Reg: 17},
		{Kind: OpFwdMul},
		{Kind: OpFwdAdd},
		{Kind: OpTable, Coord: 2, Digit: 64},
		{Kind: OpCorr, Coord: 1},
	}
	for _, op := range ops {
		s := formatOperand(op)
		if s == "?" {
			t.Errorf("unformattable operand %+v", op)
		}
		got, err := parseOperand(s)
		if err != nil {
			t.Errorf("cannot reparse %q: %v", s, err)
			continue
		}
		if got != op {
			t.Errorf("operand %q round trip: %+v != %+v", s, got, op)
		}
	}
}

func TestAsmStable(t *testing.T) {
	// Formatting is deterministic (sorted maps).
	p := sampleProgram()
	a := FormatProgram(p)
	bOut := FormatProgram(p)
	if a != bOut {
		t.Fatal("formatting not deterministic")
	}
	if !strings.Contains(a, ".table 7 2dt") {
		t.Error("table directives missing")
	}
}
