package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Textual assembly format for microprograms, so schedules can be dumped,
// inspected, diffed and reloaded. One directive or instruction per line:
//
//	.regs 101
//	.makespan 3940
//	.latency mul=3 add=1
//	.input P.x r5
//	.const r0 0x0 0x0 0x0 0x0
//	.table 3 2dt r40
//	.corrident 2z r2
//	.output x r88
//	I 12 MUL  A=r5 B=Mout DST=r7          ; dbl.x2
//	I 13 ADD  A=tbl[x+y,17] B=r9 CMD=+- DST=r8
//	I 14 ADD  A=r1 B=corr[2dt] CMD=dyn(corr) DST=r9
//
// Comments start with ';' or '#'.

var coordNames = [4]string{"x+y", "y-x", "2z", "2dt"}

func coordByName(s string) (uint8, error) {
	for i, n := range coordNames {
		if n == s {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown coordinate %q", s)
}

func formatOperand(op Operand) string {
	switch op.Kind {
	case OpNone:
		return "none"
	case OpReg:
		return fmt.Sprintf("r%d", op.Reg)
	case OpFwdMul:
		return "Mout"
	case OpFwdAdd:
		return "Sout"
	case OpTable:
		return fmt.Sprintf("tbl[%s,%d]", coordNames[op.Coord&3], op.Digit)
	case OpCorr:
		return fmt.Sprintf("corr[%s]", coordNames[op.Coord&3])
	}
	return "?"
}

func parseOperand(s string) (Operand, error) {
	switch {
	case s == "none":
		return Operand{Kind: OpNone}, nil
	case s == "Mout":
		return Operand{Kind: OpFwdMul}, nil
	case s == "Sout":
		return Operand{Kind: OpFwdAdd}, nil
	case strings.HasPrefix(s, "r"):
		v, err := strconv.ParseUint(s[1:], 10, 16)
		if err != nil || v >= MaxRegs {
			return Operand{}, fmt.Errorf("isa: bad register %q", s)
		}
		return Operand{Kind: OpReg, Reg: uint16(v)}, nil
	case strings.HasPrefix(s, "tbl[") && strings.HasSuffix(s, "]"):
		inner := s[4 : len(s)-1]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return Operand{}, fmt.Errorf("isa: bad table operand %q", s)
		}
		c, err := coordByName(parts[0])
		if err != nil {
			return Operand{}, err
		}
		d, err := strconv.ParseUint(parts[1], 10, 8)
		if err != nil || d > 64 {
			return Operand{}, fmt.Errorf("isa: bad table digit in %q", s)
		}
		return Operand{Kind: OpTable, Coord: c, Digit: uint8(d)}, nil
	case strings.HasPrefix(s, "corr[") && strings.HasSuffix(s, "]"):
		c, err := coordByName(s[5 : len(s)-1])
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpCorr, Coord: c}, nil
	}
	return Operand{}, fmt.Errorf("isa: unknown operand %q", s)
}

func formatCmd(in Instr) string {
	if in.CmdMode == CmdDynSign {
		if in.Digit == DigitCorr {
			return "dyn(corr)"
		}
		return fmt.Sprintf("dyn(%d)", in.Digit)
	}
	lane := func(c uint8) byte {
		if c == CmdSub {
			return '-'
		}
		return '+'
	}
	return string([]byte{lane(in.CmdRe), lane(in.CmdIm)})
}

func parseCmd(s string, in *Instr) error {
	switch {
	case s == "dyn(corr)":
		in.CmdMode = CmdDynSign
		in.Digit = DigitCorr
		return nil
	case strings.HasPrefix(s, "dyn(") && strings.HasSuffix(s, ")"):
		d, err := strconv.ParseUint(s[4:len(s)-1], 10, 8)
		if err != nil || d > 64 {
			return fmt.Errorf("isa: bad dynamic command %q", s)
		}
		in.CmdMode = CmdDynSign
		in.Digit = uint8(d)
		return nil
	case len(s) == 2 && (s[0] == '+' || s[0] == '-') && (s[1] == '+' || s[1] == '-'):
		in.CmdMode = CmdStatic
		if s[0] == '-' {
			in.CmdRe = CmdSub
		}
		if s[1] == '-' {
			in.CmdIm = CmdSub
		}
		return nil
	}
	return fmt.Errorf("isa: bad command %q", s)
}

// FormatProgram renders a program in the textual assembly format.
func FormatProgram(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".regs %d\n", p.NumRegs)
	fmt.Fprintf(&b, ".makespan %d\n", p.Makespan)
	ii := p.MulII
	if ii <= 0 {
		ii = 1
	}
	fmt.Fprintf(&b, ".latency mul=%d add=%d ii=%d\n", p.MulLatency, p.AddLatency, ii)
	inputs := make([]string, 0, len(p.InputRegs))
	for name := range p.InputRegs {
		inputs = append(inputs, name)
	}
	sort.Strings(inputs)
	for _, name := range inputs {
		fmt.Fprintf(&b, ".input %s r%d\n", name, p.InputRegs[name])
	}
	for _, c := range p.ConstRegs {
		fmt.Fprintf(&b, ".const r%d 0x%x 0x%x 0x%x 0x%x\n", c.Reg, c.Value[0], c.Value[1], c.Value[2], c.Value[3])
	}
	if p.TableRegs != ([8][4]uint16{}) {
		for u := 0; u < 8; u++ {
			for c := 0; c < 4; c++ {
				fmt.Fprintf(&b, ".table %d %s r%d\n", u, coordNames[c], p.TableRegs[u][c])
			}
		}
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&b, ".corrident %s r%d\n", coordNames[c], p.CorrIdentRegs[c])
		}
	}
	outputs := make([]string, 0, len(p.OutputRegs))
	for name := range p.OutputRegs {
		outputs = append(outputs, name)
	}
	sort.Strings(outputs)
	for _, name := range outputs {
		fmt.Fprintf(&b, ".output %s r%d\n", name, p.OutputRegs[name])
	}
	for _, in := range p.Instrs {
		unit := "MUL"
		if in.Unit == UnitAdd {
			unit = "ADD"
		}
		fmt.Fprintf(&b, "I %d %s A=%s B=%s", in.Cycle, unit, formatOperand(in.A), formatOperand(in.B))
		if in.Unit == UnitAdd {
			fmt.Fprintf(&b, " CMD=%s", formatCmd(in))
		}
		fmt.Fprintf(&b, " DST=r%d", in.Dst)
		if in.NoWB {
			b.WriteString(" NOWB")
		}
		if in.Label != "" {
			fmt.Fprintf(&b, " ; %s", in.Label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseProgram parses the textual assembly format back into a Program.
func ParseProgram(src string) (*Program, error) {
	p := &Program{
		InputRegs:  map[string]uint16{},
		OutputRegs: map[string]uint16{},
	}
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		label := ""
		if i := strings.Index(line, ";"); i >= 0 {
			label = strings.TrimSpace(line[i+1:])
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(msg string, args ...any) (*Program, error) {
			return nil, fmt.Errorf("isa: line %d: %s", lineNo, fmt.Sprintf(msg, args...))
		}
		parseReg := func(s string) (uint16, error) {
			if !strings.HasPrefix(s, "r") {
				return 0, fmt.Errorf("expected register, got %q", s)
			}
			v, err := strconv.ParseUint(s[1:], 10, 16)
			if err != nil || v >= MaxRegs {
				return 0, fmt.Errorf("bad register %q", s)
			}
			return uint16(v), nil
		}
		switch fields[0] {
		case ".regs":
			if len(fields) != 2 {
				return fail("bad .regs")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail("bad .regs: %v", err)
			}
			p.NumRegs = v
		case ".makespan":
			if len(fields) != 2 {
				return fail("bad .makespan")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return fail("bad .makespan: %v", err)
			}
			p.Makespan = v
		case ".latency":
			for _, f := range fields[1:] {
				kv := strings.SplitN(f, "=", 2)
				if len(kv) != 2 {
					return fail("bad .latency field %q", f)
				}
				v, err := strconv.Atoi(kv[1])
				if err != nil {
					return fail("bad latency %q", f)
				}
				switch kv[0] {
				case "mul":
					p.MulLatency = v
				case "add":
					p.AddLatency = v
				case "ii":
					p.MulII = v
				default:
					return fail("unknown latency unit %q", kv[0])
				}
			}
		case ".input":
			if len(fields) != 3 {
				return fail("bad .input")
			}
			r, err := parseReg(fields[2])
			if err != nil {
				return fail("%v", err)
			}
			p.InputRegs[fields[1]] = r
		case ".output":
			if len(fields) != 3 {
				return fail("bad .output")
			}
			r, err := parseReg(fields[2])
			if err != nil {
				return fail("%v", err)
			}
			p.OutputRegs[fields[1]] = r
		case ".const":
			if len(fields) != 6 {
				return fail("bad .const")
			}
			r, err := parseReg(fields[1])
			if err != nil {
				return fail("%v", err)
			}
			var c ConstLoad
			c.Reg = r
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseUint(strings.TrimPrefix(fields[2+i], "0x"), 16, 64)
				if err != nil {
					return fail("bad const limb %q", fields[2+i])
				}
				c.Value[i] = v
			}
			p.ConstRegs = append(p.ConstRegs, c)
		case ".table":
			if len(fields) != 4 {
				return fail("bad .table")
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 0 || u > 7 {
				return fail("bad table entry index %q", fields[1])
			}
			c, err := coordByName(fields[2])
			if err != nil {
				return fail("%v", err)
			}
			r, err := parseReg(fields[3])
			if err != nil {
				return fail("%v", err)
			}
			p.TableRegs[u][c] = r
		case ".corrident":
			if len(fields) != 3 {
				return fail("bad .corrident")
			}
			c, err := coordByName(fields[1])
			if err != nil {
				return fail("%v", err)
			}
			r, err := parseReg(fields[2])
			if err != nil {
				return fail("%v", err)
			}
			p.CorrIdentRegs[c] = r
		case "I":
			in, err := parseInstrFields(fields[1:])
			if err != nil {
				return fail("%v", err)
			}
			in.Label = label
			p.Instrs = append(p.Instrs, in)
		default:
			return fail("unknown directive %q", fields[0])
		}
	}
	return p, nil
}

func parseInstrFields(fields []string) (Instr, error) {
	var in Instr
	if len(fields) < 2 {
		return in, fmt.Errorf("truncated instruction")
	}
	cyc, err := strconv.Atoi(fields[0])
	if err != nil {
		return in, fmt.Errorf("bad cycle %q", fields[0])
	}
	in.Cycle = cyc
	switch fields[1] {
	case "MUL":
		in.Unit = UnitMul
	case "ADD":
		in.Unit = UnitAdd
	default:
		return in, fmt.Errorf("bad unit %q", fields[1])
	}
	for _, f := range fields[2:] {
		if f == "NOWB" {
			in.NoWB = true
			continue
		}
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return in, fmt.Errorf("bad field %q", f)
		}
		switch kv[0] {
		case "A":
			op, err := parseOperand(kv[1])
			if err != nil {
				return in, err
			}
			in.A = op
		case "B":
			op, err := parseOperand(kv[1])
			if err != nil {
				return in, err
			}
			in.B = op
		case "CMD":
			if err := parseCmd(kv[1], &in); err != nil {
				return in, err
			}
		case "DST":
			if !strings.HasPrefix(kv[1], "r") {
				return in, fmt.Errorf("bad DST %q", kv[1])
			}
			v, err := strconv.ParseUint(kv[1][1:], 10, 16)
			if err != nil || v >= MaxRegs {
				return in, fmt.Errorf("bad DST %q", kv[1])
			}
			in.Dst = uint16(v)
		default:
			return in, fmt.Errorf("unknown field %q", kv[0])
		}
	}
	return in, nil
}
