package isa

import (
	mrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator for Instr (encodable subset).
func (Instr) Generate(r *mrand.Rand, _ int) reflect.Value {
	op := func() Operand {
		return Operand{
			Kind:  OperandKind(r.Intn(6)),
			Reg:   uint16(r.Intn(MaxRegs)),
			Coord: uint8(r.Intn(4)),
			Digit: uint8(r.Intn(65)),
		}
	}
	in := Instr{
		Unit:    uint8(r.Intn(2)),
		A:       op(),
		B:       op(),
		CmdMode: CmdMode(r.Intn(2)),
		CmdRe:   uint8(r.Intn(2)),
		CmdIm:   uint8(r.Intn(2)),
		Digit:   uint8(r.Intn(128)),
		Dst:     uint16(r.Intn(MaxRegs)),
		NoWB:    r.Intn(2) == 1,
	}
	return reflect.ValueOf(in)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(in Instr) bool {
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		if err != nil {
			return false
		}
		// Cycle and Label are not encoded.
		in.Cycle, in.Label = 0, ""
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsBigRegisters(t *testing.T) {
	if _, err := Encode(Instr{Dst: MaxRegs}); err == nil {
		t.Error("oversized dst accepted")
	}
	if _, err := Encode(Instr{A: Operand{Kind: OpReg, Reg: MaxRegs}}); err == nil {
		t.Error("oversized A.Reg accepted")
	}
}

func TestDecodeRejectsInvalidWord(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("invalid word accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{
		NumRegs:    16,
		Makespan:   10,
		MulLatency: 3,
		AddLatency: 1,
		Instrs: []Instr{
			{Cycle: 0, Unit: UnitMul, Dst: 1},
			{Cycle: 0, Unit: UnitAdd, Dst: 2},
			{Cycle: 1, Unit: UnitMul, Dst: 3},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double issue.
	bad := *p
	bad.Instrs = append(append([]Instr(nil), p.Instrs...), Instr{Cycle: 0, Unit: UnitMul, Dst: 4})
	if bad.Validate() == nil {
		t.Error("double issue not caught")
	}
	// Register out of range.
	bad = *p
	bad.Instrs = []Instr{{Cycle: 0, Unit: UnitMul, Dst: 16}}
	if bad.Validate() == nil {
		t.Error("register overflow not caught")
	}
	// Completion past makespan.
	bad = *p
	bad.Instrs = []Instr{{Cycle: 9, Unit: UnitMul, Dst: 1}}
	if bad.Validate() == nil {
		t.Error("completion past makespan not caught")
	}
}

func TestROMImageRoundTrip(t *testing.T) {
	p := &Program{
		NumRegs:    32,
		Makespan:   8,
		MulLatency: 3,
		AddLatency: 1,
		Instrs: []Instr{
			{Cycle: 0, Unit: UnitMul, A: Operand{Kind: OpReg, Reg: 1}, B: Operand{Kind: OpReg, Reg: 2}, Dst: 3},
			{Cycle: 2, Unit: UnitAdd, A: Operand{Kind: OpFwdMul}, B: Operand{Kind: OpReg, Reg: 4}, CmdRe: CmdSub, Dst: 5},
			{Cycle: 3, Unit: UnitAdd, A: Operand{Kind: OpTable, Coord: 2, Digit: 17}, B: Operand{Kind: OpCorr, Coord: 1}, CmdMode: CmdDynSign, Digit: 17, Dst: 6},
		},
	}
	words, err := p.ROMImage()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2*(p.Makespan+1) {
		t.Fatalf("ROM size %d", len(words))
	}
	back, err := FromROMImage(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(p.Instrs) {
		t.Fatalf("got %d instrs back, want %d", len(back), len(p.Instrs))
	}
	for i, in := range p.Instrs {
		want := in
		want.Label = ""
		if back[i] != want {
			t.Errorf("instr %d: got %+v want %+v", i, back[i], want)
		}
	}
}

func TestSortByCycle(t *testing.T) {
	p := &Program{Instrs: []Instr{
		{Cycle: 5, Unit: UnitAdd},
		{Cycle: 2, Unit: UnitMul},
		{Cycle: 5, Unit: UnitMul},
	}}
	p.SortByCycle()
	if p.Instrs[0].Cycle != 2 || p.Instrs[1].Cycle != 5 || p.Instrs[1].Unit != UnitMul {
		t.Error("sort order wrong")
	}
}
