// Package gates models the silicon area of the cryptoprocessor (Fig. 3
// of the paper: 1400 kGE in 2-input-NAND equivalents, occupying
// 1.76 mm x 3.56 mm of a 65 nm SOTB die).
//
// Component sizes are first-order standard-cell estimates (multiplier
// arrays scale with bits^2, register files and ROMs with bit count); a
// single calibration factor maps the raw estimate of the reference
// configuration onto the published 1400 kGE total, accounting for the
// physical-design overheads (clock tree, test logic, utilization margins)
// a gate-count model cannot see. Relative block sizes and the scaling
// under design changes (e.g. 4-multiplier schoolbook datapath vs the
// 3-multiplier Karatsuba one) come from the model.
package gates

import (
	"fmt"
	"math"
)

// Published silicon figures.
const (
	PaperKGE      = 1400.0
	PaperWidthMM  = 1.76
	PaperHeightMM = 3.56
)

// PaperAreaMM2 is the published SM-unit area.
const PaperAreaMM2 = PaperWidthMM * PaperHeightMM

// Config describes a datapath configuration.
type Config struct {
	// FpMultipliers is the number of GF(p) multiplier cores inside the
	// GF(p^2) multiplier: 3 for Karatsuba (the paper), 4 for schoolbook.
	FpMultipliers int
	// FieldBits is the GF(p) operand width (127 for FourQ, 256 for P-256).
	FieldBits int
	// Registers is the register-file depth (words of 2*FieldBits bits).
	Registers int
	// ROMWords is the number of 64-bit control words in the program ROM.
	ROMWords int
	// PipelineStages of the multiplier (pipeline registers).
	PipelineStages int
}

// DefaultConfig returns the fabricated chip's configuration; Registers
// and ROMWords reflect the scheduled full-SM microprogram.
func DefaultConfig(registers, romWords int) Config {
	return Config{
		FpMultipliers:  3,
		FieldBits:      127,
		Registers:      registers,
		ROMWords:       romWords,
		PipelineStages: 3,
	}
}

// Block is one area entry of the Fig. 3 breakdown.
type Block struct {
	Name string
	KGE  float64
}

// Breakdown is a complete area report.
type Breakdown struct {
	Blocks   []Block
	TotalKGE float64
	// Die dimensions assuming the published GE density and aspect ratio.
	AreaMM2            float64
	WidthMM, HeightMM  float64
	CalibrationApplied float64
}

// Raw per-component gate-count estimates (GE).
const (
	geMulPerBit2    = 6.8 // parallel multiplier array, GE per bit^2
	geAddPerBit     = 12  // carry-lookahead add/sub, GE per bit
	geFlopPerBit    = 6   // pipeline/architectural register, GE per bit
	geRegFilePerBit = 11  // 4R/2W flop-based register file incl. muxing
	geROMPerBit     = 0.6 // synthesized control ROM incl. decoder
	geControlFixed  = 25000
)

// estimateRaw computes the uncalibrated block list.
func estimateRaw(c Config) []Block {
	b := float64(c.FieldBits)
	mulCore := geMulPerBit2 * b * b
	multBlock := float64(c.FpMultipliers)*mulCore +
		// Karatsuba pre/post adders, lazy-reduction folders, and the
		// pipeline registers (2*FieldBits wide datapath per stage).
		6*geAddPerBit*2*b +
		float64(c.PipelineStages)*geFlopPerBit*4*b
	addBlock := 2*geAddPerBit*b + geFlopPerBit*2*b
	rfBlock := float64(c.Registers) * 2 * b * geRegFilePerBit
	romBlock := float64(c.ROMWords) * 64 * geROMPerBit
	ctrl := float64(geControlFixed)
	return []Block{
		{"Fp2 multiplier (pipelined Karatsuba)", multBlock / 1000},
		{"Fp2 adder/subtractor", addBlock / 1000},
		{"register file (4R/2W)", rfBlock / 1000},
		{"program ROM", romBlock / 1000},
		{"controller / FSM / digit logic", ctrl / 1000},
	}
}

// Estimate returns the raw (uncalibrated) breakdown for a configuration.
func Estimate(c Config) Breakdown {
	blocks := estimateRaw(c)
	total := 0.0
	for _, bl := range blocks {
		total += bl.KGE
	}
	return withDie(Breakdown{Blocks: blocks, TotalKGE: total, CalibrationApplied: 1})
}

// EstimateCalibrated scales the raw estimate of cfg so that the reference
// configuration ref lands exactly on the published 1400 kGE. Use
// cfg == ref to reproduce Fig. 3; use a modified cfg (e.g. schoolbook
// multiplier) to predict design-change costs relative to silicon.
func EstimateCalibrated(cfg, ref Config) Breakdown {
	rawRef := Estimate(ref)
	factor := PaperKGE / rawRef.TotalKGE
	blocks := estimateRaw(cfg)
	total := 0.0
	for i := range blocks {
		blocks[i].KGE *= factor
		total += blocks[i].KGE
	}
	return withDie(Breakdown{Blocks: blocks, TotalKGE: total, CalibrationApplied: factor})
}

// withDie fills in the die-dimension figures using the published GE
// density and aspect ratio.
func withDie(b Breakdown) Breakdown {
	density := PaperAreaMM2 / PaperKGE // mm^2 per kGE
	b.AreaMM2 = b.TotalKGE * density
	aspect := PaperWidthMM / PaperHeightMM
	b.HeightMM = math.Sqrt(b.AreaMM2 / aspect)
	b.WidthMM = b.AreaMM2 / b.HeightMM
	return b
}

// LatencyAreaProduct computes Table II's figure of merit:
// area (kGE) x latency (ms).
func LatencyAreaProduct(kGE, latencySeconds float64) float64 {
	return kGE * latencySeconds * 1000
}

// String renders the breakdown as a Fig. 3-style report.
func (b Breakdown) String() string {
	s := ""
	for _, bl := range b.Blocks {
		s += fmt.Sprintf("  %-40s %8.1f kGE (%4.1f%%)\n", bl.Name, bl.KGE, 100*bl.KGE/b.TotalKGE)
	}
	s += fmt.Sprintf("  %-40s %8.1f kGE\n", "TOTAL", b.TotalKGE)
	s += fmt.Sprintf("  die: %.2f mm x %.2f mm = %.2f mm^2", b.WidthMM, b.HeightMM, b.AreaMM2)
	return s
}
