package gates

import (
	"math"
	"strings"
	"testing"
)

func refConfig() Config { return DefaultConfig(104, 2*2500) }

func TestCalibratedTotalMatchesPaper(t *testing.T) {
	ref := refConfig()
	b := EstimateCalibrated(ref, ref)
	if math.Abs(b.TotalKGE-PaperKGE) > 1e-6 {
		t.Errorf("calibrated total %f != %f", b.TotalKGE, PaperKGE)
	}
	if math.Abs(b.AreaMM2-PaperAreaMM2) > 1e-6 {
		t.Errorf("area %f != %f", b.AreaMM2, PaperAreaMM2)
	}
	// Die dimensions keep the published aspect ratio.
	if math.Abs(b.WidthMM/b.HeightMM-PaperWidthMM/PaperHeightMM) > 1e-9 {
		t.Error("aspect ratio wrong")
	}
}

func TestSchoolbookCostsMore(t *testing.T) {
	ref := refConfig()
	kar := EstimateCalibrated(ref, ref)
	sb := ref
	sb.FpMultipliers = 4
	school := EstimateCalibrated(sb, ref)
	if school.TotalKGE <= kar.TotalKGE {
		t.Error("4-multiplier schoolbook datapath should be larger")
	}
	// One extra 127-bit multiplier core is a significant share.
	delta := school.TotalKGE - kar.TotalKGE
	if delta < 50 {
		t.Errorf("schoolbook delta %f kGE implausibly small", delta)
	}
}

func TestScalingDirections(t *testing.T) {
	ref := refConfig()
	base := Estimate(ref)
	bigger := ref
	bigger.Registers *= 2
	if Estimate(bigger).TotalKGE <= base.TotalKGE {
		t.Error("more registers should cost area")
	}
	wider := ref
	wider.FieldBits = 256
	if Estimate(wider).TotalKGE <= base.TotalKGE {
		t.Error("wider field should cost area")
	}
	longer := ref
	longer.ROMWords *= 2
	if Estimate(longer).TotalKGE <= base.TotalKGE {
		t.Error("bigger ROM should cost area")
	}
}

func TestBreakdownShares(t *testing.T) {
	ref := refConfig()
	b := EstimateCalibrated(ref, ref)
	if len(b.Blocks) != 5 {
		t.Fatalf("expected 5 blocks, got %d", len(b.Blocks))
	}
	sum := 0.0
	for _, bl := range b.Blocks {
		if bl.KGE <= 0 {
			t.Errorf("block %s non-positive", bl.Name)
		}
		sum += bl.KGE
	}
	if math.Abs(sum-b.TotalKGE) > 1e-9 {
		t.Error("blocks do not sum to total")
	}
	// The multiplier and register file dominate the SM unit.
	if b.Blocks[0].KGE < b.Blocks[1].KGE {
		t.Error("multiplier should dwarf the adder")
	}
}

func TestLatencyAreaProduct(t *testing.T) {
	// Table II "ours @1.2V": 1400 kGE x 0.0101 ms = 14.1.
	got := LatencyAreaProduct(1400, 10.1e-6)
	if math.Abs(got-14.14) > 0.01 {
		t.Errorf("latency-area product %f, want ~14.14", got)
	}
}

func TestStringRendering(t *testing.T) {
	b := EstimateCalibrated(refConfig(), refConfig())
	s := b.String()
	if !strings.Contains(s, "TOTAL") || !strings.Contains(s, "kGE") {
		t.Error("report missing fields")
	}
}
