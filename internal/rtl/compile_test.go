package rtl

import (
	"errors"
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
)

// boundInputs converts a name->value input map into a Binding list via
// the compiled program's register resolution.
func boundInputs(t testing.TB, cp *CompiledProgram, in map[string]fp2.Element) []Binding {
	t.Helper()
	bound := make([]Binding, 0, len(in))
	for name, v := range in {
		r, ok := cp.InputReg(name)
		if !ok {
			t.Fatalf("input %q not in program", name)
		}
		bound = append(bound, Binding{Reg: r, Val: v})
	}
	return bound
}

// TestCompiledMatchesInterpreter is the core differential check of the
// tentpole: the compiled fast path and the reference interpreter must
// agree on outputs AND on the complete statistics structure for a spread
// of random scalars.
func TestCompiledMatchesInterpreter(t *testing.T) {
	prog, acc, table, _ := dblAddSetup(t, 21, sched.MethodList)
	inputs := dblAddInputs(acc, table)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.NewMachine()
	rng := mrand.New(mrand.NewSource(77))
	for trial := 0; trial < 32; trial++ {
		k := randScalar(rng)
		dec := scalar.Decompose(k)
		in := RunInput{Inputs: inputs, Rec: scalar.Recode(dec), Corrected: dec.Corrected}

		wantOut, wantSt, err := Interpret(prog, in)
		if err != nil {
			t.Fatalf("trial %d: interpreter: %v", trial, err)
		}
		gotSt, err := m.Run(in)
		if err != nil {
			t.Fatalf("trial %d: compiled: %v", trial, err)
		}
		for name := range prog.OutputRegs {
			r, _ := cp.OutputReg(name)
			if !m.Reg(r).Equal(wantOut[name]) {
				t.Fatalf("trial %d: output %q differs between compiled and interpreted", trial, name)
			}
		}
		if !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("trial %d: stats differ:\ncompiled:    %+v\ninterpreted: %+v", trial, gotSt, wantSt)
		}
	}
}

// TestCompiledMachineReuse checks that a reused machine carries no state
// between runs: alternating scalars, bound-input runs, and an
// interleaved slow-path (observed) run must all stay correct.
func TestCompiledMachineReuse(t *testing.T) {
	prog, acc, table, _ := dblAddSetup(t, 22, sched.MethodBnB)
	inputs := dblAddInputs(acc, table)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.NewMachine()
	bound := boundInputs(t, cp, inputs)
	rng := mrand.New(mrand.NewSource(88))
	for trial := 0; trial < 12; trial++ {
		k := randScalar(rng)
		dec := scalar.Decompose(k)
		in := RunInput{Bound: bound, Rec: scalar.Recode(dec), Corrected: dec.Corrected}
		if trial%3 == 2 {
			// Every third run takes the interpreted slow path on the same
			// machine (an Observer forces it); it must neither corrupt nor
			// be corrupted by the surrounding fast-path runs.
			in.Observer = func(Event) {}
		}
		if _, err := m.Run(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := curve.Point{}
		for name, dst := range map[string]*fp2.Element{
			"x": &got.X, "y": &got.Y, "z": &got.Z, "ta": &got.Ta, "tb": &got.Tb,
		} {
			r, _ := cp.OutputReg(name)
			*dst = m.Reg(r)
		}
		if !got.Equal(expectedDblAdd(acc, table, k)) {
			t.Fatalf("trial %d: reused machine produced a wrong result", trial)
		}
	}
}

// TestObserverEventParity requires the event stream of a Machine run
// with an Observer to be byte-identical — same events, same order — to
// the reference interpreter's.
func TestObserverEventParity(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 23, sched.MethodList)
	inputs := dblAddInputs(acc, table)
	dec := scalar.Decompose(k)
	collect := func(run func(RunInput) error) []Event {
		var evs []Event
		in := RunInput{
			Inputs:    inputs,
			Rec:       scalar.Recode(dec),
			Corrected: dec.Corrected,
			Observer:  func(e Event) { evs = append(evs, e) },
		}
		if err := run(in); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	want := collect(func(in RunInput) error {
		_, _, err := Interpret(prog, in)
		return err
	})
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.NewMachine()
	got := collect(func(in RunInput) error {
		_, err := m.Run(in)
		return err
	})
	if len(got) != len(want) {
		t.Fatalf("event count %d, interpreter produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs:\nmachine:     %+v\ninterpreter: %+v", i, got[i], want[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("no events observed")
	}
}

// pokeInjector is a minimal fault injector: at one cycle it flips the
// low bit of one register-file word. Used to check that a Machine run
// with an Injector behaves identically to the reference interpreter.
type pokeInjector struct {
	cycle int
	reg   uint16
}

func (p *pokeInjector) BeginCycle(cycle int, rf RegFile) {
	if cycle == p.cycle && int(p.reg) < rf.NumRegs() {
		v := rf.Peek(p.reg)
		lo, hi := v.A.Limbs()
		rf.Poke(p.reg, fp2.New(fp.SetLimbs(lo^1, hi), v.B))
	}
}
func (p *pokeInjector) Fetch(_ int, ins isa.Instr) (isa.Instr, bool)      { return ins, true }
func (p *pokeInjector) Forward(_ int, _ uint8, v fp2.Element) fp2.Element { return v }
func (p *pokeInjector) Retire(_ int, _ uint8, _ uint16, v fp2.Element) fp2.Element {
	return v
}

// TestInjectorParity: a faulted Machine run must agree with a faulted
// interpreter run — same (possibly corrupted) outputs, same stats, same
// error — across a sweep of injection points.
func TestInjectorParity(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 24, sched.MethodList)
	inputs := dblAddInputs(acc, table)
	dec := scalar.Decompose(k)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.NewMachine()
	for cycle := 0; cycle <= prog.Makespan; cycle += 7 {
		for reg := 0; reg < prog.NumRegs; reg += 11 {
			mkIn := func() RunInput {
				return RunInput{
					Inputs:    inputs,
					Rec:       scalar.Recode(dec),
					Corrected: dec.Corrected,
					Injector:  &pokeInjector{cycle: cycle, reg: uint16(reg)},
				}
			}
			wantOut, wantSt, wantErr := Interpret(prog, mkIn())
			gotSt, gotErr := m.Run(mkIn())
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("cycle %d reg %d: error parity broken: machine=%v interpreter=%v", cycle, reg, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("cycle %d reg %d: errors differ: machine=%v interpreter=%v", cycle, reg, gotErr, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Fatalf("cycle %d reg %d: stats differ under injection", cycle, reg)
			}
			for name := range prog.OutputRegs {
				r, _ := cp.OutputReg(name)
				if !m.Reg(r).Equal(wantOut[name]) {
					t.Fatalf("cycle %d reg %d: output %q differs under injection", cycle, reg, name)
				}
			}
		}
	}
}

// TestCompileRejectsHazards: the structural corruptions the interpreter
// used to trip over at runtime must now be rejected at Compile time.
func TestCompileRejectsHazards(t *testing.T) {
	prog, _, _, _ := dblAddSetup(t, 25, sched.MethodList)
	corrupt := func(mutate func(p *isa.Program)) error {
		cp := *prog
		cp.Instrs = append([]isa.Instr(nil), prog.Instrs...)
		mutate(&cp)
		_, err := Compile(&cp)
		return err
	}
	if err := corrupt(func(p *isa.Program) {
		for i := range p.Instrs {
			if p.Instrs[i].Unit == isa.UnitMul && p.Instrs[i].Cycle > 0 {
				p.Instrs[i].Cycle = p.Instrs[0].Cycle
				break
			}
		}
	}); err == nil {
		t.Error("double issue not rejected at compile time")
	}
	if err := corrupt(func(p *isa.Program) {
		for i := range p.Instrs {
			if p.Instrs[i].A.Kind == isa.OpFwdMul {
				p.Instrs[i].A = isa.Operand{Kind: isa.OpFwdAdd}
			}
		}
	}); err == nil || !errors.Is(err, ErrHazard) {
		t.Errorf("idle-unit forwarding: want ErrHazard, got %v", err)
	}
	if err := corrupt(func(p *isa.Program) {
		p.NumRegs++
		p.Instrs[len(p.Instrs)-1].A = isa.Operand{Kind: isa.OpReg, Reg: uint16(p.NumRegs - 1)}
	}); err == nil || !errors.Is(err, ErrHazard) {
		t.Errorf("never-written read: want ErrHazard, got %v", err)
	}
	if err := corrupt(func(p *isa.Program) {
		for i := range p.Instrs {
			if p.Instrs[i].Unit == isa.UnitAdd {
				p.Instrs[i].CmdMode = isa.CmdDynSign
				p.Instrs[i].Digit = scalar.Digits + 3
				break
			}
		}
	}); err == nil || !errors.Is(err, ErrHazard) {
		t.Errorf("out-of-range dyn-sign digit: want ErrHazard, got %v", err)
	}
}

// TestBoundInputCount: a Bound list that does not cover the program's
// inputs exactly is rejected on both paths.
func TestBoundInputCount(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 26, sched.MethodList)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	dec := scalar.Decompose(k)
	bound := boundInputs(t, cp, dblAddInputs(acc, table))[:3]
	in := RunInput{Bound: bound, Rec: scalar.Recode(dec), Corrected: dec.Corrected}
	if _, err := cp.NewMachine().Run(in); err == nil {
		t.Error("fast path accepted a short Bound list")
	}
	if _, _, err := Interpret(prog, in); err == nil {
		t.Error("interpreter accepted a short Bound list")
	}
}

// TestFastPathZeroAllocs: the compiled fast path with bound inputs must
// not touch the heap in steady state.
func TestFastPathZeroAllocs(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 27, sched.MethodList)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.NewMachine()
	dec := scalar.Decompose(k)
	in := RunInput{Bound: boundInputs(t, cp, dblAddInputs(acc, table)), Rec: scalar.Recode(dec), Corrected: dec.Corrected}
	if _, err := m.Run(in); err != nil { // warm-up validates the setup
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("machine fast path allocates %.1f times per run, want 0", allocs)
	}
}
