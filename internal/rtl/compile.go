package rtl

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
)

// CompiledProgram is the ahead-of-time execution plan for one immutable
// microprogram: the result of running every data-independent part of the
// interpreter exactly once. It holds
//
//   - a dense per-cycle issue/retire table (no per-run byCycle
//     bucketing, no dynamic pipeline slices),
//   - operands pre-decoded to small enums, with the 16 possible
//     table-region registers of each OpTable operand resolved per
//     (index, sign) ahead of time,
//   - the statically proven structural-hazard facts: double issue,
//     multiplier II, read/write port pressure, forwarding alignment and
//     never-written reads are schedule properties, so a validated plan
//     runs with no hazard checks in the hot loop (the few reads whose
//     target register is runtime-selected and not provably initialized
//     keep a per-operand check flag),
//   - the complete Stats of a run, which for this fixed-FSM design are
//     data-independent — including the IssuesByOpcode map, built once
//     and shared read-only by every run.
//
// A CompiledProgram is immutable after Compile and safe for concurrent
// use; per-run mutable state lives in Machine.
type CompiledProgram struct {
	prog *isa.Program
	// byCycle groups the original instruction stream by issue cycle in
	// program order; the interpreted slow path walks it so observed event
	// order is identical to the reference interpreter's.
	byCycle [][]isa.Instr
	ops     []cOp    // pre-decoded, cycle-major, program intra-cycle order
	cycles  []cCycle // one entry per cycle 0..Makespan
	consts  []constSlot
	inputs  []inputSlot
	// initWritten is the written-bits template after program load
	// (constants and inputs true); copied into the machine per run when
	// trackWritten is set.
	initWritten []bool
	// trackWritten is set when at least one runtime-selected operand
	// could not be statically proven initialized, so the fast path must
	// maintain written bits to serve its residual checks.
	trackWritten bool
	// rom is the flattened fixed-base window ROM: coordinate c of entry u
	// of window w lives at (w-1)*32 + u*4 + c, pre-converted from limbs.
	// OpROM operands resolve against it through their own read port, so
	// ROM reads never count toward register-file port pressure.
	rom          []fp2.Element
	stats        Stats
	opcodeCounts [numOpcodes]int
}

type constSlot struct {
	reg uint16
	val fp2.Element
}

type inputSlot struct {
	name string
	reg  uint16
}

// cOperand is a pre-decoded datapath input. For the runtime-selected
// kinds the register candidates are resolved at compile time: tblPos/
// tblNeg for OpTable (indexed by the recoded digit's table index, sign
// picking the X+Y / Y-X swap), corrReg/identReg for OpCorr's two
// branches; OpROM reuses tblPos/tblNeg as flat indices into cp.rom.
// check marks the rare operand whose selected register must still be
// confirmed initialized at runtime.
type cOperand struct {
	kind     isa.OperandKind
	check    bool
	reg      uint16 // OpReg
	digit    uint8  // OpTable index digit / OpROM window
	tblPos   [8]uint16
	tblNeg   [8]uint16
	corrReg  uint16 // OpCorr, correction flag set
	identReg uint16 // OpCorr, correction flag clear
}

// cOp is one pre-decoded issued operation.
type cOp struct {
	unit    uint8
	dynSign bool
	digit   uint8 // CmdDynSign digit (DigitCorr = correction flag)
	subRe   bool
	subIm   bool
	noWB    bool
	dst     uint16
	label   string // runtime-check error context only
	a, b    cOperand
}

// cCycle is one row of the dense issue/retire table: the ops issuing
// this cycle as a [first, first+count) window into ops, plus the op
// (by index) retiring on each unit this cycle (-1 when the unit's
// pipeline delivers nothing).
type cCycle struct {
	first, count int32
	retMul       int32
	retAdd       int32
}

// Compile validates the program once and lowers it to a CompiledProgram.
// All schedule-level structural hazards the interpreter would detect at
// runtime — double issue, multiplier II violations, register port
// over-subscription, forwarding from an idle unit, statically reachable
// reads of never-written registers, malformed operand kinds, out-of-range
// dynamic-sign digits — are detected here and reported as ErrHazard (or
// the isa validation error), so a plan that compiles runs hazard-free.
func Compile(p *isa.Program) (*CompiledProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := &CompiledProgram{
		prog:        p,
		byCycle:     buildByCycle(p),
		cycles:      make([]cCycle, p.Makespan+1),
		initWritten: make([]bool, p.NumRegs),
	}
	// Program load: constants pre-converted from limbs, inputs resolved
	// to slots. Both are marked in the written-bits template (the machine
	// binds every input before running; the count is enforced at bind).
	for _, c := range p.ConstRegs {
		cp.consts = append(cp.consts, constSlot{
			reg: c.Reg,
			val: fp2.New(fp.SetLimbs(c.Value[0], c.Value[1]), fp.SetLimbs(c.Value[2], c.Value[3])),
		})
		cp.initWritten[c.Reg] = true
	}
	for name, reg := range p.InputRegs {
		cp.inputs = append(cp.inputs, inputSlot{name: name, reg: reg})
		cp.initWritten[reg] = true
	}
	if len(p.ROMWindows) > 0 {
		cp.rom = make([]fp2.Element, len(p.ROMWindows)*32)
		for w := range p.ROMWindows {
			for u := 0; u < 8; u++ {
				for c := 0; c < 4; c++ {
					l := p.ROMWindows[w][u][c]
					cp.rom[w*32+u*4+c] = fp2.New(fp.SetLimbs(l[0], l[1]), fp.SetLimbs(l[2], l[3]))
				}
			}
		}
	}

	// Static walk of the schedule: an abstract run of the interpreter's
	// cycle loop tracking only data-independent state (written bits and
	// per-cycle retire/issue structure), performing its checks and
	// accumulating its statistics once.
	written := append([]bool(nil), cp.initWritten...)
	for i := range cp.cycles {
		cp.cycles[i].retMul = -1
		cp.cycles[i].retAdd = -1
	}
	for cycle := 0; cycle <= p.Makespan; cycle++ {
		cc := &cp.cycles[cycle]
		// Write-back phase. One result per unit per cycle is structural
		// (per-unit single issue at fixed latency), so retMul/retAdd are
		// conflict-free by construction.
		writes := 0
		for _, idx := range [2]int32{cc.retMul, cc.retAdd} {
			if idx < 0 {
				continue
			}
			op := &cp.ops[idx]
			if op.noWB {
				cp.stats.ElidedWrites++
			} else {
				written[op.dst] = true
				writes++
			}
		}
		if writes > 2 {
			return nil, fmt.Errorf("%w: %d register writes at cycle %d (2 ports)", ErrHazard, writes, cycle)
		}
		cp.stats.RegWrites += writes
		cp.stats.WritePortPressure[writes]++
		// Issue phase.
		cc.first = int32(len(cp.ops))
		reads := 0
		for _, ins := range cp.byCycle[cycle] {
			op := cOp{
				unit:  ins.Unit,
				noWB:  ins.NoWB,
				dst:   ins.Dst,
				label: ins.Label,
			}
			var ra, rb int
			var err error
			op.a, ra, err = cp.compileOperand(ins.A, cycle, cc, written)
			if err != nil {
				return nil, fmt.Errorf("cycle %d op %q A: %w", cycle, ins.Label, err)
			}
			op.b, rb, err = cp.compileOperand(ins.B, cycle, cc, written)
			if err != nil {
				return nil, fmt.Errorf("cycle %d op %q B: %w", cycle, ins.Label, err)
			}
			reads += ra + rb
			// A non-positive latency means the result would complete at or
			// before its own issue's write-back phase and never retire —
			// the interpreter reports it as a drain hazard.
			lat := p.AddLatency
			if ins.Unit == isa.UnitMul {
				lat = p.MulLatency
			}
			if lat <= 0 {
				return nil, fmt.Errorf("%w: result still in flight after makespan", ErrHazard)
			}
			idx := int32(len(cp.ops))
			if ins.Unit == isa.UnitMul {
				cp.stats.MulIssues++
				cp.cycles[cycle+p.MulLatency].retMul = idx
			} else {
				cp.stats.AddIssues++
				if ins.CmdMode == isa.CmdDynSign {
					op.dynSign = true
					op.digit = ins.Digit
					if ins.Digit != isa.DigitCorr && ins.Digit >= scalar.Digits {
						return nil, fmt.Errorf("cycle %d op %q: %w: dyn sign digit %d", cycle, ins.Label, ErrHazard, ins.Digit)
					}
				} else {
					op.subRe = ins.CmdRe == isa.CmdSub
					op.subIm = ins.CmdIm == isa.CmdSub
				}
				cp.cycles[cycle+p.AddLatency].retAdd = idx
			}
			cp.opcodeCounts[opcodeID(ins)]++
			cp.ops = append(cp.ops, op)
			cc.count++
		}
		if reads > 4 {
			return nil, fmt.Errorf("%w: %d register reads at cycle %d (4 ports)", ErrHazard, reads, cycle)
		}
		cp.stats.RegReads += reads
		cp.stats.ReadPortPressure[reads]++
		if cc.count == 0 {
			cp.stats.StallCycles++
		}
	}
	// Instruction writes are statically addressed, so end-of-run written
	// bits are exact: outputs can be checked once here.
	for name, reg := range p.OutputRegs {
		if int(reg) >= p.NumRegs {
			return nil, fmt.Errorf("rtl: output %q register %d out of range", name, reg)
		}
		if !written[reg] {
			return nil, fmt.Errorf("rtl: output %q register %d never written", name, reg)
		}
	}
	cp.stats.Cycles = p.Makespan
	if p.Makespan > 0 {
		cp.stats.MulUtilization = float64(cp.stats.MulIssues) / float64(p.Makespan)
		cp.stats.AddUtilization = float64(cp.stats.AddIssues) / float64(p.Makespan)
	}
	cp.stats.IssuesByOpcode = make(map[string]int, numOpcodes)
	for id, n := range cp.opcodeCounts {
		if n > 0 {
			cp.stats.IssuesByOpcode[opcodeNames[id]] = n
		}
	}
	return cp, nil
}

// compileOperand pre-decodes one operand and performs its static checks
// against the written bits as of this cycle; it returns the read-port
// count the operand consumes.
func (cp *CompiledProgram) compileOperand(op isa.Operand, cycle int, cc *cCycle, written []bool) (cOperand, int, error) {
	p := cp.prog
	provable := func(r uint16) bool {
		return int(r) < p.NumRegs && written[r]
	}
	switch op.Kind {
	case isa.OpReg:
		// Range-checked by Validate; a statically unwritten read at this
		// cycle fails in every run, so it is a compile error.
		if !written[op.Reg] {
			return cOperand{}, 0, fmt.Errorf("%w: read of never-written register %d", ErrHazard, op.Reg)
		}
		return cOperand{kind: isa.OpReg, reg: op.Reg}, 1, nil
	case isa.OpFwdMul:
		if cc.retMul < 0 {
			return cOperand{}, 0, fmt.Errorf("%w: forwarding from idle multiplier", ErrHazard)
		}
		cp.stats.ForwardedReads++
		return cOperand{kind: isa.OpFwdMul}, 0, nil
	case isa.OpFwdAdd:
		if cc.retAdd < 0 {
			return cOperand{}, 0, fmt.Errorf("%w: forwarding from idle adder", ErrHazard)
		}
		cp.stats.ForwardedReads++
		return cOperand{kind: isa.OpFwdAdd}, 0, nil
	case isa.OpTable:
		if op.Digit >= scalar.Digits {
			return cOperand{}, 0, fmt.Errorf("%w: table digit %d", ErrHazard, op.Digit)
		}
		c := cOperand{kind: isa.OpTable, digit: op.Digit}
		swapped := swap01(op.Coord)
		for idx := 0; idx < 8; idx++ {
			c.tblPos[idx] = p.TableRegs[idx][op.Coord]
			c.tblNeg[idx] = p.TableRegs[idx][swapped]
			if !provable(c.tblPos[idx]) || !provable(c.tblNeg[idx]) {
				// The digit may never select this entry; defer to a
				// runtime check instead of rejecting the schedule.
				c.check = true
				cp.trackWritten = true
			}
		}
		return c, 1, nil
	case isa.OpROM:
		// Validate checked the window and coordinate ranges; the digit
		// positions driving the runtime index must also exist.
		if op.Digit >= scalar.Digits {
			return cOperand{}, 0, fmt.Errorf("%w: ROM window %d exceeds digit positions", ErrHazard, op.Digit)
		}
		// Pre-resolve the flat ROM addresses for the 16 possible
		// (index, sign) selections. ROM contents are always present, so no
		// written check; the ROM's own read port keeps the register-file
		// read count at zero.
		c := cOperand{kind: isa.OpROM, digit: op.Digit}
		base := (int(op.Digit) - 1) * 32
		swapped := swap01(op.Coord)
		for idx := 0; idx < 8; idx++ {
			c.tblPos[idx] = uint16(base + idx*4 + int(op.Coord))
			c.tblNeg[idx] = uint16(base + idx*4 + int(swapped))
		}
		cp.stats.ROMReads++
		return c, 0, nil
	case isa.OpCorr:
		if op.Coord > 3 {
			return cOperand{}, 0, fmt.Errorf("%w: corr coord %d", ErrHazard, op.Coord)
		}
		c := cOperand{
			kind:     isa.OpCorr,
			corrReg:  p.TableRegs[0][swap01(op.Coord)],
			identReg: p.CorrIdentRegs[op.Coord],
		}
		if !provable(c.corrReg) || !provable(c.identReg) {
			c.check = true
			cp.trackWritten = true
		}
		return c, 1, nil
	}
	return cOperand{}, 0, fmt.Errorf("%w: operand kind %v unresolvable", ErrHazard, op.Kind)
}

// swap01 applies the table-region coordinate swap (X+Y <-> Y-X) used for
// negative digits and the parity correction; coordinates 2 and 3 are
// unaffected.
func swap01(coord uint8) uint8 {
	switch coord {
	case 0:
		return 1
	case 1:
		return 0
	}
	return coord
}

// Stats returns the precomputed statistics of any run of the program.
// The IssuesByOpcode map is shared: treat the result as read-only.
func (cp *CompiledProgram) Stats() Stats { return cp.stats }

// Program returns the compiled source program (immutable by contract).
func (cp *CompiledProgram) Program() *isa.Program { return cp.prog }

// InputReg resolves an external input name to its register, for building
// allocation-free Binding lists.
func (cp *CompiledProgram) InputReg(name string) (uint16, bool) {
	r, ok := cp.prog.InputRegs[name]
	return r, ok
}

// OutputReg resolves an output name to its register, for reading results
// off a Machine without an output map.
func (cp *CompiledProgram) OutputReg(name string) (uint16, bool) {
	r, ok := cp.prog.OutputRegs[name]
	return r, ok
}

// NumInputs is the number of external inputs a run must bind.
func (cp *CompiledProgram) NumInputs() int { return len(cp.inputs) }
