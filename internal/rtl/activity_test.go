package rtl

import (
	"bytes"
	mrand "math/rand"
	"strings"
	"testing"

	"repro/internal/scalar"
	"repro/internal/sched"
)

func TestActivityCounting(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 31, sched.MethodList)
	dec := scalar.Decompose(k)
	act := NewActivity(prog.Makespan)
	_, st, err := Run(prog, RunInput{
		Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected,
		Observer: act.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if act.Toggles == 0 {
		t.Fatal("no switching activity recorded")
	}
	if act.MeanTogglesPerCycle() <= 0 {
		t.Fatal("mean activity non-positive")
	}
	// Every toggle is attributed to some cycle.
	sum := 0
	for _, c := range act.PerCycle {
		sum += c
	}
	if sum != act.Toggles {
		t.Fatalf("per-cycle toggles sum %d != total %d", sum, act.Toggles)
	}
	// Sanity: with ~28 writebacks of 254-bit pseudo-random values,
	// activity should be on the order of 100+ toggles per writeback.
	if act.Toggles < 100*st.RegWrites/2 {
		t.Errorf("activity %d suspiciously low for %d writes", act.Toggles, st.RegWrites)
	}
}

func TestActivityDeterministicPerScalar(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 32, sched.MethodList)
	run := func(k scalar.Scalar) int {
		dec := scalar.Decompose(k)
		act := NewActivity(prog.Makespan)
		_, _, err := Run(prog, RunInput{
			Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected,
			Observer: act.Observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		return act.Toggles
	}
	a := run(k)
	if run(k) != a {
		t.Fatal("activity not deterministic for the same scalar")
	}
	// Different scalars produce different data activity (the data-
	// dependent leakage the constant schedule does NOT hide).
	rng := mrand.New(mrand.NewSource(9))
	diff := false
	for i := 0; i < 4 && !diff; i++ {
		if run(randScalar(rng)) != a {
			diff = true
		}
	}
	if !diff {
		t.Error("activity identical across scalars; toggle model seems data-independent")
	}
}

func TestWriteVCD(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 33, sched.MethodList)
	dec := scalar.Decompose(k)
	var buf bytes.Buffer
	out, st, err := WriteVCD(prog, RunInput{
		Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || st.MulIssues != 15 {
		t.Fatal("VCD run did not execute normally")
	}
	s := buf.String()
	for _, want := range []string{
		"$timescale", "$enddefinitions", "$var wire 256 # mul_out",
		"$var wire 1 ! mul_issue", "#0", "1!",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VCD output missing %q", want)
		}
	}
	// Timestamps are 10ns apart; final timestamp = (makespan+1)*10.
	if !strings.Contains(s, "#"+itoa((prog.Makespan+1)*10)) {
		t.Error("final timestamp missing")
	}
	// The observer chain must still work alongside the VCD dumper.
	act := NewActivity(prog.Makespan)
	buf.Reset()
	_, _, err = WriteVCD(prog, RunInput{
		Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected,
		Observer: act.Observe,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if act.Toggles == 0 {
		t.Error("chained observer not invoked")
	}
}

func TestVCDBitRendering(t *testing.T) {
	if got := vcdAddr(0); got != "0" {
		t.Errorf("vcdAddr(0) = %q", got)
	}
	if got := vcdAddr(5); got != "101" {
		t.Errorf("vcdAddr(5) = %q", got)
	}
	if got := vcdAddr(256); got != "100000000" {
		t.Errorf("vcdAddr(256) = %q", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
