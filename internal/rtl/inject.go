package rtl

import (
	"repro/internal/fp2"
	"repro/internal/isa"
)

// Injector is the datapath fault-injection interface: rtl.Run calls it
// at four architecturally meaningful points of every cycle, letting an
// implementation (internal/fault) corrupt state exactly the way silicon
// faults do — register-file upsets, pipeline-register upsets, glitched
// forwarding paths, and control-ROM corruption. A nil Injector in
// RunInput costs nothing; the simulator only consults it when set.
//
// Hook ordering within cycle c is fixed and documented so that faults
// addressed by (cycle, site, bit) are exactly replayable:
//
//  1. BeginCycle(c, rf)  — before the write-back phase; register-file
//     words hold the values left by cycle c-1.
//  2. Retire(c, ...)     — once per result completing at c, before the
//     value reaches the forwarding port and the register file (a fault
//     here models an upset pipeline output register: both consumers see
//     the corrupted word).
//  3. Fetch(c, ins)      — once per control-ROM slot issuing at c,
//     before operand resolution.
//  4. Forward(c, ...)    — once per operand sourced from a forwarding
//     port at c (a fault here models a glitched bypass wire; the
//     register-file copy, if any, stays intact).
//
// Implementations are called from a single goroutine per Run; they need
// no internal locking unless shared across concurrent runs.
type Injector interface {
	// BeginCycle may inspect and corrupt the architectural register
	// file at the start of cycle.
	BeginCycle(cycle int, rf RegFile)
	// Fetch intercepts an instruction leaving the control ROM. The
	// returned instruction is issued instead; ok=false squashes the
	// slot entirely (models a corrupted valid bit).
	Fetch(cycle int, ins isa.Instr) (_ isa.Instr, ok bool)
	// Forward intercepts an operand value on a forwarding path.
	// unit is isa.UnitMul or isa.UnitAdd (which output port).
	Forward(cycle int, unit uint8, v fp2.Element) fp2.Element
	// Retire intercepts a result leaving a functional unit's pipeline
	// at its completion cycle, before write-back and forwarding.
	Retire(cycle int, unit uint8, dst uint16, v fp2.Element) fp2.Element
}

// RegFile is the injector's window onto the architectural register
// file. Poke corrupts the stored word only — it never marks a
// never-written register as valid, so the hazard checker's
// read-of-never-written detection is unaffected (flipping a bit in an
// uninitialized SRAM word is architecturally invisible, and the model
// keeps it that way).
type RegFile interface {
	// NumRegs is the register-file size of the running program.
	NumRegs() int
	// Written reports whether the register has been written (by program
	// load or a completed write-back).
	Written(r uint16) bool
	// Peek reads the stored word without consuming a read port.
	Peek(r uint16) fp2.Element
	// Poke overwrites the stored word without consuming a write port.
	Poke(r uint16, v fp2.Element)
}

// regWindow adapts a machine to the RegFile view.
type regWindow struct{ m *machine }

func (w regWindow) NumRegs() int                 { return len(w.m.regs) }
func (w regWindow) Written(r uint16) bool        { return int(r) < len(w.m.written) && w.m.written[r] }
func (w regWindow) Peek(r uint16) fp2.Element    { return w.m.regs[r] }
func (w regWindow) Poke(r uint16, v fp2.Element) { w.m.regs[r] = v }
