package rtl

import (
	"errors"
	mrand "math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// elidedSetup schedules the DBLADD block with write-back elision on.
func elidedSetup(t testing.TB, seed int64) (*sched.Result, curve.Point, [8]curve.Cached, scalar.Scalar) {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	p := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	table := curve.BuildTable(curve.NewMultiBase(p))
	acc := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	k := randScalar(rng)
	tr, err := trace.BuildDblAdd(k, acc, table)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{
		Method: sched.MethodList, ElideWritebacks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, acc, table, k
}

func TestElisionCorrectAndSavesWrites(t *testing.T) {
	r, acc, table, k := elidedSetup(t, 41)
	if r.ElidedWrites == 0 {
		t.Fatal("elision pass removed nothing; forwarding-only values exist in this block")
	}
	got := runDblAdd(t, r.Program, acc, table, k)
	want := expectedDblAdd(acc, table, k)
	if !got.Equal(want) {
		t.Fatal("elided program computes wrong result")
	}
	// Compare write traffic against the unelided program.
	dec := scalar.Decompose(k)
	_, st, err := Run(r.Program, RunInput{Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected})
	if err != nil {
		t.Fatal(err)
	}
	if st.ElidedWrites != r.ElidedWrites {
		t.Errorf("RTL elided %d writes, scheduler marked %d", st.ElidedWrites, r.ElidedWrites)
	}
	if st.RegWrites+st.ElidedWrites != st.MulIssues+st.AddIssues {
		t.Errorf("write accounting broken: %d + %d != %d ops", st.RegWrites, st.ElidedWrites, st.MulIssues+st.AddIssues)
	}
}

func TestElisionScalarIndependent(t *testing.T) {
	r, acc, table, _ := elidedSetup(t, 42)
	rng := mrand.New(mrand.NewSource(55))
	for i := 0; i < 8; i++ {
		k := randScalar(rng)
		got := runDblAdd(t, r.Program, acc, table, k)
		if !got.Equal(expectedDblAdd(acc, table, k)) {
			t.Fatalf("elided program wrong for scalar %d", i)
		}
	}
}

func TestOverEagerElisionCaught(t *testing.T) {
	// Manually elide a write that IS architecturally needed: the hazard
	// checker must flag the read of the never-written register.
	prog, acc, table, k := dblAddSetup(t, 43, sched.MethodList)
	cp := *prog
	cp.Instrs = append([]isa.Instr(nil), prog.Instrs...)
	// Find an instruction whose dst is later read via OpReg and kill its WB.
	victim := -1
	for i, in := range cp.Instrs {
		for j := i + 1; j < len(cp.Instrs); j++ {
			for _, op := range [...]isa.Operand{cp.Instrs[j].A, cp.Instrs[j].B} {
				if op.Kind == isa.OpReg && op.Reg == in.Dst {
					victim = i
				}
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("no register-read consumer found")
	}
	cp.Instrs[victim].NoWB = true
	dec := scalar.Decompose(k)
	_, _, err := Run(&cp, RunInput{Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected})
	if err == nil {
		t.Fatal("over-eager elision not caught")
	}
	if !errors.Is(err, ErrHazard) {
		t.Fatalf("expected hazard error, got %v", err)
	}
}

func TestElisionOnFullSM(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := mrand.New(mrand.NewSource(44))
	tr, err := trace.BuildScalarMult(randScalar(rng), curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{
		Method: sched.MethodList, ElideWritebacks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ElidedWrites < 500 {
		t.Errorf("only %d writes elided on the full SM; expected a large forwarding-only population", r.ElidedWrites)
	}
	k := randScalar(rng)
	dec := scalar.Decompose(k)
	g := curve.GeneratorAffine()
	out, st, err := Run(r.Program, RunInput{
		Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
		Rec:       scalar.Recode(dec),
		Corrected: dec.Corrected,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !out["x"].Equal(want.X) || !out["y"].Equal(want.Y) {
		t.Fatal("elided full-SM program wrong")
	}
	t.Logf("full SM with elision: %d/%d writes elided (%.0f%% RF write energy saved)",
		st.ElidedWrites, st.ElidedWrites+st.RegWrites,
		100*float64(st.ElidedWrites)/float64(st.ElidedWrites+st.RegWrites))
}

func TestElisionWithInitiationInterval(t *testing.T) {
	// Elision and a narrower multiplier (II=2) compose correctly.
	rng := mrand.New(mrand.NewSource(61))
	p := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	table := curve.BuildTable(curve.NewMultiBase(p))
	acc := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	k := randScalar(rng)
	tr, err := trace.BuildDblAdd(k, acc, table)
	if err != nil {
		t.Fatal(err)
	}
	res := sched.DefaultResources()
	res.MulII = 2
	res.MulLatency = 4
	r, err := sched.Schedule(tr.Graph, res, sched.Options{Method: sched.MethodList, ElideWritebacks: true})
	if err != nil {
		t.Fatal(err)
	}
	got := runDblAdd(t, r.Program, acc, table, k)
	if !got.Equal(expectedDblAdd(acc, table, k)) {
		t.Fatal("II=2 + elision program wrong")
	}
	// II is respected: 15 muls at II=2 need at least 29 issue cycles.
	if r.Makespan < 15*2-1 {
		t.Fatalf("makespan %d violates the issue bound for II=2", r.Makespan)
	}
}
