package rtl

import (
	"fmt"
	"io"

	"repro/internal/fp2"
	"repro/internal/isa"
)

// VCD (Value Change Dump, IEEE 1364) waveform export of a program
// execution, viewable in GTKWave and friends. One timestep per clock
// cycle; the dumped signals are the two issue strobes, the two result
// buses (256 bit), and the two write-back addresses.

type vcdSignal struct {
	id    byte
	name  string
	width int
}

var vcdSignals = []vcdSignal{
	{'!', "mul_issue", 1},
	{'"', "add_issue", 1},
	{'#', "mul_out", 256},
	{'$', "add_out", 256},
	{'%', "mul_wb_addr", 9},
	{'&', "add_wb_addr", 9},
}

// WriteVCD executes the program (as Run does) while dumping a waveform
// to w. It returns the run outputs and statistics.
func WriteVCD(p *isa.Program, in RunInput, w io.Writer) (map[string]fp2.Element, Stats, error) {
	var werr error
	emit := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	emit("$date repro fourq-asic $end\n")
	emit("$timescale 1ns $end\n")
	emit("$scope module fourq_sm $end\n")
	for _, s := range vcdSignals {
		emit("$var wire %d %c %s $end\n", s.width, s.id, s.name)
	}
	emit("$upscope $end\n$enddefinitions $end\n")
	emit("#0\n0!\n0\"\n")

	cur := -1
	issued := map[byte]bool{}
	dump := func(ev Event) {
		if ev.Cycle != cur {
			// Close the previous cycle: drop issue strobes that fired.
			if cur >= 0 {
				for id := range issued {
					emit("0%c\n", id)
				}
			}
			issued = map[byte]bool{}
			cur = ev.Cycle
			emit("#%d\n", cur*10)
		}
		switch ev.Kind {
		case EvIssue:
			if ev.Unit == isa.UnitMul {
				emit("1!\n")
				issued['!'] = true
			} else {
				emit("1\"\n")
				issued['"'] = true
			}
		case EvWriteback:
			if ev.Unit == isa.UnitMul {
				emit("b%s #\n", vcdBits(ev.Value))
				emit("b%s %%\n", vcdAddr(ev.Dst))
			} else {
				emit("b%s $\n", vcdBits(ev.Value))
				emit("b%s &\n", vcdAddr(ev.Dst))
			}
		}
	}
	in.Observer = TeeObservers(in.Observer, dump)
	out, st, err := Run(p, in)
	if err != nil {
		return nil, st, err
	}
	if cur >= 0 {
		for id := range issued {
			emit("0%c\n", id)
		}
	}
	emit("#%d\n", (p.Makespan+1)*10)
	if werr != nil {
		return nil, st, werr
	}
	return out, st, nil
}

// vcdBits renders a 256-bit field element as a binary VCD vector,
// most significant bit first, without leading zeros (VCD convention).
func vcdBits(v fp2.Element) string {
	a0, a1 := v.A.Limbs()
	b0, b1 := v.B.Limbs()
	limbs := [4]uint64{b1, b0, a1, a0} // imaginary part in the high half
	out := make([]byte, 0, 256)
	started := false
	for _, l := range limbs {
		for i := 63; i >= 0; i-- {
			bit := byte('0' + (l >> uint(i) & 1))
			if !started && bit == '0' {
				continue
			}
			started = true
			out = append(out, bit)
		}
	}
	if !started {
		return "0"
	}
	return string(out)
}

func vcdAddr(a uint16) string {
	out := make([]byte, 0, 9)
	started := false
	for i := 8; i >= 0; i-- {
		bit := byte('0' + (a >> uint(i) & 1))
		if !started && bit == '0' {
			continue
		}
		started = true
		out = append(out, bit)
	}
	if !started {
		return "0"
	}
	return string(out)
}
