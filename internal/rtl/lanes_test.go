package rtl

import (
	"errors"
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
)

// laneFixture builds one DBLADD program with per-lane inputs: each lane
// gets its own accumulator, table and scalar, so the lockstep run mixes
// genuinely independent work.
type laneFixture struct {
	cp     *CompiledProgram
	accs   []curve.Point
	tables [][8]curve.Cached
	ks     []scalar.Scalar
	ins    []RunInput
}

func newLaneFixture(t testing.TB, seed int64, lanes int) *laneFixture {
	t.Helper()
	prog, _, _, _ := dblAddSetup(t, seed, sched.MethodList)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := &laneFixture{cp: cp}
	rng := mrand.New(mrand.NewSource(seed * 7))
	for l := 0; l < lanes; l++ {
		p := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
		table := curve.BuildTable(curve.NewMultiBase(p))
		acc := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
		k := randScalar(rng)
		dec := scalar.Decompose(k)
		f.accs = append(f.accs, acc)
		f.tables = append(f.tables, table)
		f.ks = append(f.ks, k)
		f.ins = append(f.ins, RunInput{
			Bound:     boundInputs(t, cp, dblAddInputs(acc, table)),
			Rec:       scalar.Recode(dec),
			Corrected: dec.Corrected,
		})
	}
	return f
}

// TestLaneMachineParity is the tentpole differential: an L-lane lockstep
// run must produce, for every lane, outputs and Stats byte-identical to
// L independent single-lane Machine.Run calls — across several reuses of
// the same lane machine.
func TestLaneMachineParity(t *testing.T) {
	const lanes = 5
	for trial := 0; trial < 4; trial++ {
		f := newLaneFixture(t, int64(40+trial), lanes)
		// Run the same machine twice per trial to cover lane-machine
		// reuse (pooled machines are the steady state upstack).
		lm := f.cp.NewLaneMachine(lanes)
		for reuse := 0; reuse < 2; reuse++ {
			errs := make([]error, lanes)
			gotSt, err := lm.RunLanes(f.ins, errs)
			if err != nil {
				t.Fatalf("trial %d reuse %d: %v", trial, reuse, err)
			}
			m := f.cp.NewMachine()
			for l := 0; l < lanes; l++ {
				if errs[l] != nil {
					t.Fatalf("trial %d lane %d: unexpected lane error: %v", trial, l, errs[l])
				}
				wantSt, err := m.Run(f.ins[l])
				if err != nil {
					t.Fatalf("trial %d lane %d: single-lane: %v", trial, l, err)
				}
				if !reflect.DeepEqual(gotSt, wantSt) {
					t.Fatalf("trial %d lane %d: stats differ:\nlanes:  %+v\nsingle: %+v", trial, l, gotSt, wantSt)
				}
				for name := range f.cp.Program().OutputRegs {
					r, _ := f.cp.OutputReg(name)
					if !lm.Reg(l, r).Equal(m.Reg(r)) {
						t.Fatalf("trial %d lane %d: output %q differs from single-lane run", trial, l, name)
					}
				}
				// And the library-level truth, so lockstep cannot drift in
				// sync with a broken single-lane path.
				want := expectedDblAdd(f.accs[l], f.tables[l], f.ks[l])
				got := curve.Point{}
				for name, dst := range map[string]*fp2.Element{
					"x": &got.X, "y": &got.Y, "z": &got.Z, "ta": &got.Ta, "tb": &got.Tb,
				} {
					r, _ := f.cp.OutputReg(name)
					*dst = lm.Reg(l, r)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d lane %d: lockstep result differs from library", trial, l)
				}
			}
		}
	}
}

// TestLaneMachinePartialBatch runs fewer lanes than the machine's width
// (the engine's partial-final-batch shape) and checks parity for each.
func TestLaneMachinePartialBatch(t *testing.T) {
	const width = 8
	for _, n := range []int{1, 3, width} {
		f := newLaneFixture(t, 90+int64(n), n)
		lm := f.cp.NewLaneMachine(width)
		errs := make([]error, n)
		if _, err := lm.RunLanes(f.ins, errs); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m := f.cp.NewMachine()
		for l := 0; l < n; l++ {
			if errs[l] != nil {
				t.Fatalf("n=%d lane %d: %v", n, l, errs[l])
			}
			if _, err := m.Run(f.ins[l]); err != nil {
				t.Fatal(err)
			}
			for name := range f.cp.Program().OutputRegs {
				r, _ := f.cp.OutputReg(name)
				if !lm.Reg(l, r).Equal(m.Reg(r)) {
					t.Fatalf("n=%d lane %d: output %q differs", n, l, name)
				}
			}
		}
	}
}

// checkProgram is a hand-built schedule with a runtime-selected table
// read whose candidate registers are only partially written, forcing
// Compile to keep the residual written-bits check (trackWritten):
//
//	cycle 0: add r4 := a+b     (T[0] coord 0, retires cycle 1)
//	cycle 1: add r5 := a+a     (T[0] coord 1, retires cycle 2)
//	cycle 3: add r2 := tbl(digit 0, coord 0) + a   (retires cycle 4)
//
// T[1] maps to {r2, r3}: r3 is never written and r2 only at cycle 4 —
// after the read — so a digit selecting index 1 must fail at runtime,
// while index 0 (either sign) succeeds.
func checkProgram(t testing.TB) (*CompiledProgram, RunInput) {
	t.Helper()
	p := &isa.Program{
		NumRegs:    40,
		Makespan:   4,
		MulLatency: 3,
		AddLatency: 1,
		InputRegs:  map[string]uint16{"a": 0, "b": 1},
		OutputRegs: map[string]uint16{"out": 2},
		Instrs: []isa.Instr{
			{Cycle: 0, Unit: isa.UnitAdd, A: isa.Operand{Kind: isa.OpReg, Reg: 0}, B: isa.Operand{Kind: isa.OpReg, Reg: 1}, Dst: 4, Label: "t0xy:=a+b"},
			{Cycle: 1, Unit: isa.UnitAdd, A: isa.Operand{Kind: isa.OpReg, Reg: 0}, B: isa.Operand{Kind: isa.OpReg, Reg: 0}, Dst: 5, Label: "t0yx:=a+a"},
			{Cycle: 3, Unit: isa.UnitAdd, A: isa.Operand{Kind: isa.OpTable, Coord: 0, Digit: 0}, B: isa.Operand{Kind: isa.OpReg, Reg: 0}, Dst: 2, Label: "out:=tbl+a"},
		},
	}
	for u := 0; u < 8; u++ {
		for c := 0; c < 4; c++ {
			p.TableRegs[u][c] = uint16(8 + u*4 + c)
		}
	}
	p.TableRegs[0][0] = 4
	p.TableRegs[0][1] = 5
	p.TableRegs[1][0] = 2 // written only after the read retires
	p.TableRegs[1][1] = 3 // never written
	cp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.trackWritten {
		t.Fatal("fixture broken: program compiled without residual checks")
	}
	in := RunInput{Inputs: map[string]fp2.Element{
		"a": fp2.New(fp.SetLimbs(3, 0), fp.SetLimbs(1, 0)),
		"b": fp2.New(fp.SetLimbs(5, 0), fp.SetLimbs(2, 0)),
	}}
	return cp, in
}

// TestLaneMachineErrorIsolation drives one lane into a residual-check
// failure: that lane's error must be byte-identical to the single-lane
// Machine's, and every other lane's output must be untouched.
func TestLaneMachineErrorIsolation(t *testing.T) {
	cp, base := checkProgram(t)
	mkIn := func(index uint8, sign int8) RunInput {
		in := base
		in.Rec.Index[0] = index
		in.Rec.Sign[0] = sign
		return in
	}
	ins := []RunInput{
		mkIn(0, 1),  // reads r4: fine
		mkIn(1, 1),  // reads r2: unwritten at cycle 3 -> lane error
		mkIn(0, -1), // negative sign swaps to r5: fine
	}
	lm := cp.NewLaneMachine(len(ins))
	errs := make([]error, len(ins))
	if _, err := lm.RunLanes(ins, errs); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy lanes errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || !errors.Is(errs[1], ErrHazard) {
		t.Fatalf("faulty lane error = %v, want an ErrHazard", errs[1])
	}
	outReg, _ := cp.OutputReg("out")
	for _, l := range []int{0, 2} {
		m := cp.NewMachine()
		if _, err := m.Run(ins[l]); err != nil {
			t.Fatalf("single-lane reference for lane %d: %v", l, err)
		}
		if !lm.Reg(l, outReg).Equal(m.Reg(outReg)) {
			t.Fatalf("lane %d output corrupted by its neighbour's failure", l)
		}
	}
	// Error parity: the failing lane's error string matches what the
	// single-lane machine returns for the same input.
	m := cp.NewMachine()
	_, wantErr := m.Run(ins[1])
	if wantErr == nil {
		t.Fatal("single-lane reference unexpectedly succeeded")
	}
	if errs[1].Error() != wantErr.Error() {
		t.Fatalf("lane error %q != single-lane error %q", errs[1], wantErr)
	}
}

// TestMachineRunResetsResidualState is the reuse-safety regression for
// the pooled-machine path the lane work extends: consecutive Run calls
// on one Machine must fully reset the written bits and leave no stale
// pipeline values behind — a success must not leak its write set into
// the next run's residual checks, and an aborted run must not corrupt
// the run after it.
func TestMachineRunResetsResidualState(t *testing.T) {
	cp, base := checkProgram(t)
	good := base
	good.Rec.Index[0], good.Rec.Sign[0] = 0, 1
	bad := base
	bad.Rec.Index[0], bad.Rec.Sign[0] = 1, 1

	m := cp.NewMachine()
	// Run 1 succeeds and, in doing so, writes r2 (= T[1] coord 0).
	if _, err := m.Run(good); err != nil {
		t.Fatal(err)
	}
	// Run 2 selects T[1]: with correctly reset written bits this reads
	// never-written r2 and must fail; a machine leaking run 1's write
	// set would wrongly succeed on run 1's stale value.
	if _, err := m.Run(bad); err == nil || !errors.Is(err, ErrHazard) {
		t.Fatalf("reused machine did not reset written bits: err = %v", err)
	}
	// Run 3 after the aborted run must be bit-identical to a fresh
	// machine: no pipeline value slot or register residue.
	if _, err := m.Run(good); err != nil {
		t.Fatal(err)
	}
	fresh := cp.NewMachine()
	if _, err := fresh.Run(good); err != nil {
		t.Fatal(err)
	}
	outReg, _ := cp.OutputReg("out")
	if !m.Reg(outReg).Equal(fresh.Reg(outReg)) {
		t.Fatal("run after an aborted run differs from a fresh machine")
	}
}

// TestLaneMachineRejectsMisuse covers the whole-run error paths: no
// lanes, overflowing the width, mismatched error slice, and inputs that
// force the interpreter.
func TestLaneMachineRejectsMisuse(t *testing.T) {
	f := newLaneFixture(t, 61, 2)
	lm := f.cp.NewLaneMachine(2)
	if _, err := lm.RunLanes(nil, nil); err == nil {
		t.Fatal("empty lane run must error")
	}
	three := []RunInput{f.ins[0], f.ins[1], f.ins[0]}
	if _, err := lm.RunLanes(three, make([]error, 3)); err == nil {
		t.Fatal("overflowing the lane width must error")
	}
	if _, err := lm.RunLanes(f.ins, make([]error, 1)); err == nil {
		t.Fatal("mismatched errs length must error")
	}
	observed := []RunInput{f.ins[0], f.ins[1]}
	observed[1].Observer = func(Event) {}
	if _, err := lm.RunLanes(observed, make([]error, 2)); err == nil {
		t.Fatal("Observer on a lane must reject the lockstep run")
	}
}

// TestLaneMachineZeroAllocs pins the steady-state guarantee: a warm
// lockstep run with caller-owned buffers allocates nothing.
func TestLaneMachineZeroAllocs(t *testing.T) {
	const lanes = 4
	f := newLaneFixture(t, 71, lanes)
	lm := f.cp.NewLaneMachine(lanes)
	errs := make([]error, lanes)
	if _, err := lm.RunLanes(f.ins, errs); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := lm.RunLanes(f.ins, errs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunLanes allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzLaneMachineParity cross-checks lockstep execution against the
// single-lane machine for random lane counts and scalars. The seed
// corpus covers the degenerate single lane and the full width.
func FuzzLaneMachineParity(f *testing.F) {
	const maxLanes = 8
	f.Add(uint8(1), uint64(0x5eed))
	f.Add(uint8(maxLanes), uint64(0xface))
	prog, acc, table, _ := dblAddSetup(f, 123, sched.MethodList)
	cp, err := Compile(prog)
	if err != nil {
		f.Fatal(err)
	}
	bound := boundInputs(f, cp, dblAddInputs(acc, table))
	lm := cp.NewLaneMachine(maxLanes)
	m := cp.NewMachine()
	f.Fuzz(func(t *testing.T, lanes uint8, seed uint64) {
		n := int(lanes%maxLanes) + 1
		s := seed
		next := func() uint64 { // splitmix64
			s += 0x9E3779B97F4A7C15
			z := s
			z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
			z = (z ^ z>>27) * 0x94D049BB133111EB
			return z ^ z>>31
		}
		ins := make([]RunInput, n)
		for l := 0; l < n; l++ {
			k := scalar.Scalar{next(), next(), next(), next()}
			dec := scalar.Decompose(k)
			ins[l] = RunInput{Bound: bound, Rec: scalar.Recode(dec), Corrected: dec.Corrected}
		}
		errs := make([]error, n)
		gotSt, err := lm.RunLanes(ins, errs)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < n; l++ {
			wantSt, err := m.Run(ins[l])
			if err != nil || errs[l] != nil {
				t.Fatalf("lane %d: errors %v / %v", l, errs[l], err)
			}
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Fatalf("lane %d: stats diverge", l)
			}
			for name := range prog.OutputRegs {
				r, _ := cp.OutputReg(name)
				if !lm.Reg(l, r).Equal(m.Reg(r)) {
					t.Fatalf("lane %d: output %q diverges from the single-lane machine", l, name)
				}
			}
		}
	})
}
