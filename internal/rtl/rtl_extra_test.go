package rtl

import (
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestAsmRoundTripExecutes formats a real scheduled program as assembly
// text, parses it back, and executes the parsed program: results must be
// identical. This pins down that the textual format captures everything
// the datapath needs.
func TestAsmRoundTripExecutes(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 21, sched.MethodList)
	text := isa.FormatProgram(prog)
	parsed, err := isa.ParseProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	want := runDblAdd(t, prog, acc, table, k)
	got := runDblAdd(t, parsed, acc, table, k)
	if !got.Equal(want) {
		t.Fatal("parsed program computes a different result")
	}
}

// TestConstantStructure verifies the side-channel property the
// fixed-FSM design provides: the issue schedule (cycle, unit, destination
// of every operation) is byte-for-byte identical for every scalar; only
// register-file addresses of table reads and the adder sign commands vary.
func TestConstantStructure(t *testing.T) {
	prog, acc, table, _ := dblAddSetup(t, 22, sched.MethodList)
	rng := mrand.New(mrand.NewSource(5150))
	var ref Stats
	for trial := 0; trial < 8; trial++ {
		k := randScalar(rng)
		dec := scalar.Decompose(k)
		_, st, err := Run(prog, RunInput{
			Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected,
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = st
			continue
		}
		if !reflect.DeepEqual(st, ref) {
			t.Fatalf("execution statistics vary with the scalar: %+v vs %+v", st, ref)
		}
	}
}

// TestRunRejectsUnvalidatableProgram checks that Run refuses programs
// failing static validation.
func TestRunRejectsUnvalidatableProgram(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 23, sched.MethodList)
	bad := *prog
	bad.Instrs = append([]isa.Instr(nil), prog.Instrs...)
	bad.Instrs[0].Dst = uint16(bad.NumRegs) // out of range
	dec := scalar.Decompose(k)
	if _, _, err := Run(&bad, RunInput{Inputs: dblAddInputs(acc, table), Rec: scalar.Recode(dec), Corrected: dec.Corrected}); err == nil {
		t.Fatal("invalid program executed")
	}
}

// TestEndoProgramTableIndexing exercises runtime indexing across every
// digit value: scalars engineered so specific (sign, index) pairs occur.
func TestEndoProgramTableIndexing(t *testing.T) {
	prog, acc, table, _ := dblAddSetup(t, 24, sched.MethodList)
	// Sweep all 8 table indices at digit 0 with both signs by crafting
	// decompositions directly.
	for idx := 0; idx < 8; idx++ {
		for _, signBit := range []uint64{0, 1} {
			// a1 odd; bit1 of a1 determines sign at digit 0 (b1[0] =
			// 2*a1[1]-1), index bits come from a2..a4 parities.
			a1 := uint64(1) | signBit<<1
			var k scalar.Scalar
			k[0] = a1
			k[1] = uint64(idx) & 1
			k[2] = uint64(idx) >> 1 & 1
			k[3] = uint64(idx) >> 2 & 1
			dec := scalar.Decompose(k)
			rec := scalar.Recode(dec)
			if int(rec.Index[0]) != idx {
				t.Fatalf("engineered scalar has index %d, want %d", rec.Index[0], idx)
			}
			got := runDblAdd(t, prog, acc, table, k)
			want := expectedDblAdd(acc, table, k)
			if !got.Equal(want) {
				t.Fatalf("idx=%d sign=%d: RTL mismatch", idx, rec.Sign[0])
			}
		}
	}
}

// TestProgramGenericOverBasePoint runs the same full program with a
// different base point input.
func TestProgramGenericOverBasePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := mrand.New(mrand.NewSource(25))
	tr, err := trace.BuildScalarMult(randScalar(rng), curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodList})
	if err != nil {
		t.Fatal(err)
	}
	base := curve.ScalarMultBinary(randScalar(rng), curve.Generator()).Affine()
	k := randScalar(rng)
	dec := scalar.Decompose(k)
	out, _, err := Run(r.Program, RunInput{
		Inputs:    map[string]fp2.Element{"P.x": base.X, "P.y": base.Y},
		Rec:       scalar.Recode(dec),
		Corrected: dec.Corrected,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMult(k, curve.FromAffine(base)).Affine()
	if !out["x"].Equal(want.X) || !out["y"].Equal(want.Y) {
		t.Fatal("program not generic over the base point")
	}
}
