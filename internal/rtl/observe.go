package rtl

import (
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// TeeObservers fans a run's event stream out to several observers in
// argument order; nil entries are skipped. It returns nil when every
// argument is nil, so RunInput.Observer stays cheap for unobserved runs.
func TeeObservers(obs ...func(Event)) func(Event) {
	live := make([]func(Event), 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev Event) {
		for _, o := range live {
			o(ev)
		}
	}
}

// Trace track ids used by RunTelemetry (the tid of the Chrome
// trace_event entries). Track 0 is left to wall-clock pipeline spans.
const (
	TraceTrackMul       = 1 // multiplier issue slices
	TraceTrackAdd       = 2 // adder issue slices
	TraceTrackOccupancy = 9 // counter track sampling unit occupancy
)

// RunTelemetry converts datapath events into telemetry: one complete
// trace slice per functional-unit issue (duration = the unit's pipeline
// latency, one microsecond of trace time per cycle), occupancy counter
// samples, and registry counters for issues, write-backs, forwarded
// reads and elided writes. Attach Observe via RunInput.Observer (or
// TeeObservers), then call Finish with the run's Stats to publish the
// derived gauges and histograms.
type RunTelemetry struct {
	reg    *telemetry.Registry
	rec    *telemetry.Recorder
	mulLat int
	addLat int
}

// NewRunTelemetry prepares an observer for one execution of p. Either
// reg or rec may be nil to skip metrics or tracing respectively.
func NewRunTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder, p *isa.Program) *RunTelemetry {
	t := &RunTelemetry{reg: reg, rec: rec, mulLat: p.MulLatency, addLat: p.AddLatency}
	if rec != nil {
		rec.ThreadName(TraceTrackMul, "Fp2 multiplier")
		rec.ThreadName(TraceTrackAdd, "Fp2 adder/subtractor")
	}
	return t
}

// Observe consumes one datapath event.
func (t *RunTelemetry) Observe(ev Event) {
	switch ev.Kind {
	case EvIssue:
		track, lat, unit := TraceTrackAdd, t.addLat, "add"
		if ev.Unit == isa.UnitMul {
			track, lat, unit = TraceTrackMul, t.mulLat, "mul"
		}
		if t.rec != nil {
			t.rec.Slice(track, ev.Label, "issue", int64(ev.Cycle), int64(lat),
				map[string]any{"dst": int(ev.Dst)})
		}
		if t.reg != nil {
			t.reg.Counter("rtl.issues." + unit).Inc()
			if ev.FwdA {
				t.reg.Counter("rtl.forwarded_reads").Inc()
			}
			if ev.FwdB {
				t.reg.Counter("rtl.forwarded_reads").Inc()
			}
		}
	case EvWriteback:
		if t.reg != nil {
			if ev.Elided {
				t.reg.Counter("rtl.elided_writes").Inc()
			} else {
				t.reg.Counter("rtl.reg_writes").Inc()
			}
		}
		if t.rec != nil && ev.Elided {
			unit := "add"
			if ev.Unit == isa.UnitMul {
				unit = "mul"
			}
			t.rec.Instant(TraceTrackOccupancy, "elided wb ("+unit+")", "wb", int64(ev.Cycle), nil)
		}
	}
}

// Finish publishes the run's summary statistics: utilization gauges,
// stall/port-pressure counters, per-opcode issue counters, and the
// occupancy counter-track samples bracketing the run.
func (t *RunTelemetry) Finish(st Stats) {
	if t.reg != nil {
		t.reg.Gauge("rtl.cycles").Set(float64(st.Cycles))
		t.reg.Gauge("rtl.mul_utilization").Set(st.MulUtilization)
		t.reg.Gauge("rtl.add_utilization").Set(st.AddUtilization)
		t.reg.Counter("rtl.stall_cycles").Add(int64(st.StallCycles))
		readH := t.reg.Histogram("rtl.read_ports_per_cycle", 0, 1, 2, 3, 4)
		for k, n := range st.ReadPortPressure {
			for i := 0; i < n; i++ {
				readH.Observe(float64(k))
			}
		}
		writeH := t.reg.Histogram("rtl.write_ports_per_cycle", 0, 1, 2)
		for k, n := range st.WritePortPressure {
			for i := 0; i < n; i++ {
				writeH.Observe(float64(k))
			}
		}
		for op, n := range st.IssuesByOpcode {
			t.reg.Counter("rtl.opcode." + op).Add(int64(n))
		}
	}
	if t.rec != nil {
		t.rec.CounterSample(TraceTrackOccupancy, "utilization", 0, map[string]any{
			"mul_pct": int(100 * st.MulUtilization),
			"add_pct": int(100 * st.AddUtilization),
		})
		t.rec.CounterSample(TraceTrackOccupancy, "utilization", int64(st.Cycles), map[string]any{
			"mul_pct": 0,
			"add_pct": 0,
		})
	}
}
