package rtl

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
)

// Machine is the reusable mutable state for executing one compiled
// program: the register file, the written bits, and one value slot per
// scheduled operation standing in for the units' pipeline registers
// (each op's completion cycle is static, so the dynamic pipe-slot lists
// of the interpreter collapse into a flat array indexed by op).
//
// A Machine is NOT safe for concurrent use; give each goroutine its own
// (each core.Executor and engine worker owns one). Steady-state Run on
// the fast path performs zero heap allocations: bind inputs with
// RunInput.Bound and read outputs back with Reg + CompiledProgram's
// OutputReg.
type Machine struct {
	cp      *CompiledProgram
	regs    []fp2.Element
	written []bool
	vals    []fp2.Element // one result slot per op, indexed like cp.ops
	// slow is the lazily built reference interpreter sharing this
	// machine's register file; it serves runs with an Observer or
	// Injector attached, preserving the interpreter's exact event and
	// hook semantics.
	slow *machine
}

// NewMachine allocates a machine for the compiled program.
func (cp *CompiledProgram) NewMachine() *Machine {
	return &Machine{
		cp:      cp,
		regs:    make([]fp2.Element, cp.prog.NumRegs),
		written: make([]bool, cp.prog.NumRegs),
		vals:    make([]fp2.Element, len(cp.ops)),
	}
}

// Program returns the machine's compiled program.
func (m *Machine) Program() *CompiledProgram { return m.cp }

// Reg reads a register-file word (no port accounting); resolve output
// registers once with CompiledProgram.OutputReg.
func (m *Machine) Reg(r uint16) fp2.Element { return m.regs[r] }

// Run executes one scalar multiplication worth of the program. With no
// Observer and no Injector it takes the compiled fast path: bind
// constants and inputs, run the dense issue/retire table with all
// statically proven checks elided, and return the precomputed Stats
// (whose IssuesByOpcode map is shared across runs — read-only).
// Otherwise it falls back to the reference interpreter on this machine's
// buffers, with byte-identical event ordering and injection hooks.
func (m *Machine) Run(in RunInput) (Stats, error) {
	if in.Observer != nil || in.Injector != nil {
		return m.runSlow(in)
	}
	if err := m.bind(in); err != nil {
		return Stats{}, err
	}
	if err := m.runFast(&in.Rec, in.Corrected); err != nil {
		return Stats{}, err
	}
	return m.cp.stats, nil
}

// bind resets the register file for a fast-path run: constants reloaded,
// inputs bound (by register when Bound is set, by name otherwise), and
// the written-bits template restored when residual runtime checks need
// it. Registers beyond those may hold values from the previous run;
// that is safe because the compile-time walk proved every statically
// addressed read is preceded by a write, and runtime-selected reads that
// could not be proven carry a written-bits check.
func (m *Machine) bind(in RunInput) error {
	cp := m.cp
	for _, c := range cp.consts {
		m.regs[c.reg] = c.val
	}
	if cp.trackWritten {
		copy(m.written, cp.initWritten)
	}
	if in.Bound != nil {
		if len(in.Bound) != len(cp.inputs) {
			return fmt.Errorf("rtl: %d bound inputs for a program with %d inputs", len(in.Bound), len(cp.inputs))
		}
		for _, b := range in.Bound {
			if int(b.Reg) >= len(m.regs) {
				return fmt.Errorf("rtl: bound input register %d out of range", b.Reg)
			}
			m.regs[b.Reg] = b.Val
		}
		return nil
	}
	for _, slot := range cp.inputs {
		v, ok := in.Inputs[slot.name]
		if !ok {
			return fmt.Errorf("rtl: missing input %q", slot.name)
		}
		m.regs[slot.reg] = v
	}
	return nil
}

// runFast is the compiled cycle loop: write-back then issue each cycle,
// exactly the interpreter's phase order, with every schedule-level check
// already discharged by Compile.
func (m *Machine) runFast(rec *scalar.Recoded, corrected bool) error {
	cp := m.cp
	ops := cp.ops
	vals := m.vals
	regs := m.regs
	track := cp.trackWritten
	var mulOut, addOut fp2.Element
	for c := range cp.cycles {
		cc := &cp.cycles[c]
		// Write-back phase: the retiring result reaches the forwarding
		// port always, the register file unless elided.
		if i := cc.retMul; i >= 0 {
			mulOut = vals[i]
			if op := &ops[i]; !op.noWB {
				regs[op.dst] = mulOut
				if track {
					m.written[op.dst] = true
				}
			}
		}
		if i := cc.retAdd; i >= 0 {
			addOut = vals[i]
			if op := &ops[i]; !op.noWB {
				regs[op.dst] = addOut
				if track {
					m.written[op.dst] = true
				}
			}
		}
		// Issue phase.
		for i := cc.first; i < cc.first+cc.count; i++ {
			op := &ops[i]
			a, err := m.operand(&op.a, op, rec, corrected, &mulOut, &addOut)
			if err != nil {
				return err
			}
			b, err := m.operand(&op.b, op, rec, corrected, &mulOut, &addOut)
			if err != nil {
				return err
			}
			if op.unit == isa.UnitMul {
				vals[i] = fp2.MulAlg2(a, b)
				continue
			}
			subRe, subIm := op.subRe, op.subIm
			if op.dynSign {
				neg := corrected
				if op.digit != isa.DigitCorr {
					neg = rec.Sign[op.digit] < 0
				}
				subRe, subIm = neg, neg
			}
			var r fp2.Element
			if subRe {
				r.A = fp.Sub(a.A, b.A)
			} else {
				r.A = fp.Add(a.A, b.A)
			}
			if subIm {
				r.B = fp.Sub(a.B, b.B)
			} else {
				r.B = fp.Add(a.B, b.B)
			}
			vals[i] = r
		}
	}
	return nil
}

// operand resolves a pre-decoded operand. Statically proven kinds are
// straight loads; runtime-selected table/correction reads apply the
// precompiled register choice, plus a written-bits check when Compile
// could not prove the target initialized.
func (m *Machine) operand(o *cOperand, op *cOp, rec *scalar.Recoded, corrected bool, mulOut, addOut *fp2.Element) (fp2.Element, error) {
	switch o.kind {
	case isa.OpReg:
		return m.regs[o.reg], nil
	case isa.OpFwdMul:
		return *mulOut, nil
	case isa.OpFwdAdd:
		return *addOut, nil
	case isa.OpTable:
		r := o.tblPos[rec.Index[o.digit]]
		if rec.Sign[o.digit] < 0 {
			r = o.tblNeg[rec.Index[o.digit]]
		}
		if o.check {
			if err := m.checkRead(r, op); err != nil {
				return fp2.Element{}, err
			}
		}
		return m.regs[r], nil
	case isa.OpROM:
		r := o.tblPos[rec.Index[o.digit]]
		if rec.Sign[o.digit] < 0 {
			r = o.tblNeg[rec.Index[o.digit]]
		}
		return m.cp.rom[r], nil
	case isa.OpCorr:
		r := o.identReg
		if corrected {
			r = o.corrReg
		}
		if o.check {
			if err := m.checkRead(r, op); err != nil {
				return fp2.Element{}, err
			}
		}
		return m.regs[r], nil
	}
	// Compile rejects every other kind.
	panic("rtl: unreachable operand kind on compiled path")
}

// checkRead is the residual runtime hazard check for operands whose
// register selection could not be statically proven safe.
func (m *Machine) checkRead(r uint16, op *cOp) error {
	if int(r) >= len(m.regs) {
		return fmt.Errorf("op %q: %w: register %d out of range", op.label, ErrHazard, r)
	}
	if !m.written[r] {
		return fmt.Errorf("op %q: %w: read of never-written register %d", op.label, ErrHazard, r)
	}
	return nil
}

// runSlow executes via the reference interpreter on this machine's
// register file (so outputs land in the same place as the fast path).
func (m *Machine) runSlow(in RunInput) (Stats, error) {
	if m.slow == nil {
		m.slow = &machine{
			prog:    m.cp.prog,
			regs:    m.regs,
			written: m.written,
			byCycle: m.cp.byCycle,
		}
	}
	return m.slow.run(in)
}
