package rtl

import (
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fixedBaseSetup builds and schedules the fixed-base comb program for
// the generator.
func fixedBaseSetup(t testing.TB, seed int64) *CompiledProgram {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	tr, err := trace.BuildFixedBaseScalarMult(randScalar(rng), curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodList})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(r.Program)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestFixedBaseOnRTL(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixed-base SM on RTL is slow")
	}
	cp := fixedBaseSetup(t, 21)
	if cp.NumInputs() != 0 {
		t.Fatalf("fixed-base program has %d inputs, want 0", cp.NumInputs())
	}
	if cp.Stats().ROMReads == 0 {
		t.Fatal("fixed-base program performs no ROM reads")
	}
	m := cp.NewMachine()
	xr, _ := cp.OutputReg("x")
	yr, _ := cp.OutputReg("y")

	rng := mrand.New(mrand.NewSource(22))
	scalars := []scalar.Scalar{
		randScalar(rng), randScalar(rng),
		{},   // 0: corrected, identity result
		{42}, // even: correction path
		scalar.FromBig(scalar.Order()),
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
	}
	for i, k := range scalars {
		rec, corrected := scalar.RecodeFixedBase(k)
		in := RunInput{Rec: rec, Corrected: corrected}
		if _, err := m.Run(in); err != nil {
			t.Fatalf("scalar %d: %v", i, err)
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !m.Reg(xr).Equal(want.X) || !m.Reg(yr).Equal(want.Y) {
			t.Fatalf("scalar %d: compiled fixed-base result differs from library", i)
		}
		// Interpreter differential: same outputs, same statistics (the
		// compiled path precomputes them; the interpreter counts live).
		out, ist, err := Interpret(cp.Program(), in)
		if err != nil {
			t.Fatalf("scalar %d: interpret: %v", i, err)
		}
		if !out["x"].Equal(want.X) || !out["y"].Equal(want.Y) {
			t.Fatalf("scalar %d: interpreted fixed-base result differs from library", i)
		}
		if i == 0 {
			cst := cp.Stats()
			if !reflect.DeepEqual(cst, ist) {
				t.Fatalf("compiled stats %+v differ from interpreted %+v", cst, ist)
			}
			t.Logf("fixed-base SM: %d cycles, %d muls, %d ROM reads",
				cst.Cycles, cst.MulIssues, cst.ROMReads)
		}
	}
}

func TestFixedBaseLanesOnRTL(t *testing.T) {
	if testing.Short() {
		t.Skip("lockstep fixed-base SM on RTL is slow")
	}
	cp := fixedBaseSetup(t, 23)
	const width = 4
	lm := cp.NewLaneMachine(width)
	xr, _ := cp.OutputReg("x")
	yr, _ := cp.OutputReg("y")

	rng := mrand.New(mrand.NewSource(24))
	ks := [width]scalar.Scalar{randScalar(rng), {2}, randScalar(rng), {1}}
	ins := make([]RunInput, width)
	for l, k := range ks {
		rec, corrected := scalar.RecodeFixedBase(k)
		ins[l] = RunInput{Rec: rec, Corrected: corrected}
	}
	errs := make([]error, width)
	if _, err := lm.RunLanes(ins, errs); err != nil {
		t.Fatal(err)
	}
	for l, k := range ks {
		if errs[l] != nil {
			t.Fatalf("lane %d: %v", l, errs[l])
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !lm.Reg(l, xr).Equal(want.X) || !lm.Reg(l, yr).Equal(want.Y) {
			t.Fatalf("lane %d: lockstep fixed-base result differs from library", l)
		}
	}
}
