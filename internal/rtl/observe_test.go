package rtl

import (
	"bytes"
	"testing"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// tinyProgram builds a 3-instruction program by hand:
//
//	cycle 0: mul  r2 = a*b      (writes back at cycle 3)
//	cycle 0: add  r3 = a+b      (writes back at cycle 1)
//	cycle 4: add  r4 = r2+r3    (writes back at cycle 5)
func tinyProgram() (*isa.Program, RunInput) {
	p := &isa.Program{
		NumRegs:    5,
		Makespan:   5,
		MulLatency: 3,
		AddLatency: 1,
		InputRegs:  map[string]uint16{"a": 0, "b": 1},
		OutputRegs: map[string]uint16{"out": 4},
		Instrs: []isa.Instr{
			{Cycle: 0, Unit: isa.UnitMul, A: isa.Operand{Kind: isa.OpReg, Reg: 0}, B: isa.Operand{Kind: isa.OpReg, Reg: 1}, Dst: 2, Label: "t0:=a*b"},
			{Cycle: 0, Unit: isa.UnitAdd, A: isa.Operand{Kind: isa.OpReg, Reg: 0}, B: isa.Operand{Kind: isa.OpReg, Reg: 1}, Dst: 3, Label: "t1:=a+b"},
			{Cycle: 4, Unit: isa.UnitAdd, A: isa.Operand{Kind: isa.OpReg, Reg: 2}, B: isa.Operand{Kind: isa.OpReg, Reg: 3}, Dst: 4, Label: "t2:=t0+t1"},
		},
	}
	in := RunInput{Inputs: map[string]fp2.Element{
		"a": fp2.New(fp.SetLimbs(3, 0), fp.SetLimbs(1, 0)),
		"b": fp2.New(fp.SetLimbs(5, 0), fp.SetLimbs(2, 0)),
	}}
	return p, in
}

func TestTeeObservers(t *testing.T) {
	if TeeObservers(nil, nil) != nil {
		t.Fatal("all-nil tee must be nil")
	}
	var a, b int
	one := func(Event) { a++ }
	two := func(Event) { b++ }
	tee := TeeObservers(one, nil, two)
	tee(Event{})
	tee(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("observers saw %d/%d events, want 2/2", a, b)
	}
}

func TestTeeObserversInVCD(t *testing.T) {
	p, in := tinyProgram()
	var events int
	in.Observer = func(Event) { events++ }
	var vcd bytes.Buffer
	if _, _, err := WriteVCD(p, in, &vcd); err != nil {
		t.Fatal(err)
	}
	// 3 issues + 3 write-backs, seen by the chained observer while the
	// VCD dumper observes the same run.
	if events != 6 {
		t.Fatalf("chained observer saw %d events, want 6", events)
	}
	if !bytes.Contains(vcd.Bytes(), []byte("mul_issue")) {
		t.Fatal("VCD output missing signal declarations")
	}
}

func TestRunExtendedStats(t *testing.T) {
	p, in := tinyProgram()
	_, st, err := Run(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if st.MulIssues != 1 || st.AddIssues != 2 {
		t.Fatalf("issues = %d mul / %d add", st.MulIssues, st.AddIssues)
	}
	wantMul := 1.0 / 5.0
	wantAdd := 2.0 / 5.0
	if st.MulUtilization != wantMul || st.AddUtilization != wantAdd {
		t.Fatalf("utilization = %v/%v, want %v/%v", st.MulUtilization, st.AddUtilization, wantMul, wantAdd)
	}
	// Cycles 1, 2, 3, 5 issue nothing (loop runs cycles 0..5).
	if st.StallCycles != 4 {
		t.Fatalf("stall cycles = %d, want 4", st.StallCycles)
	}
	// Cycle 0 reads 4 ports, cycle 4 reads 2, the other 4 cycles read 0.
	if st.ReadPortPressure != [5]int{4, 0, 1, 0, 1} {
		t.Fatalf("read pressure = %v", st.ReadPortPressure)
	}
	// Write-backs at cycles 1, 3, 5: three cycles with 1 write each.
	if st.WritePortPressure[1] != 3 || st.WritePortPressure[2] != 0 {
		t.Fatalf("write pressure = %v", st.WritePortPressure)
	}
	if st.IssuesByOpcode["mul"] != 1 || st.IssuesByOpcode["add"] != 2 {
		t.Fatalf("opcodes = %v", st.IssuesByOpcode)
	}
}

// TestRunTelemetryTraceRoundTrip runs the tiny 3-instruction program
// under the telemetry observer, writes the Chrome trace, parses it back
// and checks there is exactly one complete slice per issue with the
// unit's latency as its duration.
func TestRunTelemetryTraceRoundTrip(t *testing.T) {
	p, in := tinyProgram()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder()
	tel := NewRunTelemetry(reg, rec, p)
	in.Observer = tel.Observe
	_, st, err := Run(p, in)
	if err != nil {
		t.Fatal(err)
	}
	tel.Finish(st)

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	type slice struct {
		ts, dur int64
		tid     int
	}
	got := map[string]slice{}
	for _, ev := range evs {
		if ev.Phase == telemetry.PhaseComplete && ev.Cat == "issue" {
			got[ev.Name] = slice{ev.TS, ev.Dur, ev.TID}
		}
	}
	want := map[string]slice{
		"t0:=a*b":   {0, 3, TraceTrackMul},
		"t1:=a+b":   {0, 1, TraceTrackAdd},
		"t2:=t0+t1": {4, 1, TraceTrackAdd},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d issue slices, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("slice %q = %+v, want %+v", name, got[name], w)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["rtl.issues.mul"] != 1 || snap.Counters["rtl.issues.add"] != 2 {
		t.Fatalf("issue counters = %v", snap.Counters)
	}
	if snap.Gauges["rtl.add_utilization"] != 2.0/5.0 {
		t.Fatalf("add utilization gauge = %v", snap.Gauges["rtl.add_utilization"])
	}
	if snap.Counters["rtl.reg_writes"] != 3 {
		t.Fatalf("reg_writes = %d, want 3", snap.Counters["rtl.reg_writes"])
	}
	if h := snap.Histograms["rtl.read_ports_per_cycle"]; h.Count != 6 {
		t.Fatalf("read-port histogram count = %d, want 6", h.Count)
	}
}

// TestRunTelemetryForwardingAndElision checks the forwarded-read and
// elided-write counters through the observer on a program that uses
// both features.
func TestRunTelemetryForwardingAndElision(t *testing.T) {
	p, in := tinyProgram()
	// Rewire the last add to read the adder forwarding port for operand
	// B: t1 completes at cycle 1, so issue a consumer at cycle 1.
	p.Instrs[2] = isa.Instr{
		Cycle: 1, Unit: isa.UnitAdd,
		A:   isa.Operand{Kind: isa.OpReg, Reg: 0},
		B:   isa.Operand{Kind: isa.OpFwdAdd},
		Dst: 4, Label: "t2:=a+fwd",
	}
	// Elide t0's write-back; nothing reads r2 anymore.
	p.Instrs[0].NoWB = true
	p.Makespan = 3

	reg := telemetry.NewRegistry()
	tel := NewRunTelemetry(reg, nil, p)
	in.Observer = tel.Observe
	_, st, err := Run(p, in)
	if err != nil {
		t.Fatal(err)
	}
	tel.Finish(st)
	if st.ForwardedReads != 1 || st.ElidedWrites != 1 {
		t.Fatalf("stats fwd/elide = %d/%d, want 1/1", st.ForwardedReads, st.ElidedWrites)
	}
	snap := reg.Snapshot()
	if snap.Counters["rtl.forwarded_reads"] != 1 {
		t.Fatalf("forwarded_reads counter = %d", snap.Counters["rtl.forwarded_reads"])
	}
	if snap.Counters["rtl.elided_writes"] != 1 {
		t.Fatalf("elided_writes counter = %d", snap.Counters["rtl.elided_writes"])
	}
}
