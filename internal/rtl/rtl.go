// Package rtl is a cycle-accurate model of the proposed cryptoprocessor
// datapath (Fig. 1 of the paper): a 4-read/2-write register file, a
// pipelined Karatsuba GF(p^2) multiplier (executed bit-exactly through
// the Algorithm 2 stage model), a GF(p^2) adder/subtractor with per-lane
// commands, forwarding paths from both unit outputs, and an FSM sequencer
// that walks the scheduled microprogram one cycle at a time.
//
// The model is also a hazard checker: it fails loudly on structural
// violations (double issue, port over-subscription, reads of never
// written registers, forwarding from an idle unit), so a corrupted
// schedule cannot silently produce a result.
//
// Execution comes in two forms:
//
//   - Compile + Machine: an ahead-of-time pass (Compile) validates the
//     immutable program once, hoists every data-independent check and
//     statistic out of the cycle loop, and produces a dense execution
//     plan; a reusable Machine then runs scalar multiplications with
//     zero steady-state heap allocations. This mirrors the paper's
//     hardware, whose ROM/FSM controller is fixed at tape-out: the
//     schedule's structural properties are facts of the program, not of
//     any particular run (Section III-C).
//   - Interpret: the reference cycle-by-cycle interpreter, which decodes
//     and checks every instruction as it executes. It is the semantic
//     baseline the compiled plan is differentially tested against, and
//     the path every observed (Observer) or fault-injected (Injector)
//     run takes, so event ordering and injection hook semantics are
//     byte-for-byte those of the original interpreter.
//
// Run remains the convenience entry point: it compiles the program and
// executes it on a fresh machine, dispatching to the fast compiled loop
// when no Observer or Injector is attached.
package rtl

import (
	"errors"
	"fmt"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
)

// Binding is one register-bound external input: the allocation-free
// alternative to RunInput.Inputs. Resolve the register once with
// CompiledProgram.InputReg and reuse the binding across runs.
type Binding struct {
	Reg uint16
	Val fp2.Element
}

// RunInput carries the per-run data: external inputs, and the recoded
// scalar digits + correction flag that drive the runtime table indexing
// and dynamic sign commands.
type RunInput struct {
	Inputs map[string]fp2.Element
	// Bound, when non-nil, supplies the external inputs by register
	// instead of by name and takes precedence over Inputs. It must cover
	// every program input exactly once (resolve registers with
	// CompiledProgram.InputReg); the steady-state serving path uses it to
	// avoid building a map per scalar multiplication.
	Bound     []Binding
	Rec       scalar.Recoded
	Corrected bool
	// Observer, when non-nil, receives one Event per issue and per
	// write-back, in cycle order. Used by the VCD dumper and the
	// switching-activity model. Forces the interpreted path.
	Observer func(Event)
	// Injector, when non-nil, is consulted at the fault-injection hook
	// points of every cycle (see the Injector interface for the exact
	// ordering). Used by internal/fault to model SEUs, stuck-at faults
	// and control-ROM corruption. Forces the interpreted path.
	Injector Injector
}

// EventKind tags an observed datapath event.
type EventKind uint8

const (
	// EvIssue: an operation entered a functional unit this cycle.
	EvIssue EventKind = iota
	// EvWriteback: a result completed and was written to the register file.
	EvWriteback
)

// Event is one observed datapath transaction.
type Event struct {
	Kind  EventKind
	Cycle int
	Unit  uint8 // isa.UnitMul or isa.UnitAdd
	Dst   uint16
	// A, B are the resolved operand values (EvIssue only).
	A, B fp2.Element
	// FwdA, FwdB report operands sourced from the forwarding network
	// instead of the register file (EvIssue only).
	FwdA, FwdB bool
	// Value is the produced result (EvWriteback only).
	Value fp2.Element
	// Elided marks a write-back absorbed by the elision pass: the value
	// left the unit's output port but never reached the register file
	// (EvWriteback only).
	Elided bool
	// Label is the debug label of the instruction (EvIssue only).
	Label string
}

// Stats summarizes an execution.
//
// Every field is a property of the schedule, not of the data flowing
// through it (the fixed-FSM design's side-channel guarantee), so the
// compiled fast path precomputes the whole struct at Compile time. On
// that path IssuesByOpcode is a single map shared by every run of the
// program — treat it as read-only.
type Stats struct {
	Cycles         int
	MulIssues      int
	AddIssues      int
	RegReads       int
	RegWrites      int
	ElidedWrites   int
	ForwardedReads int
	// ROMReads counts operands served by the fixed-base window ROM's
	// dedicated read port (OpROM); they consume no register-file ports.
	ROMReads int
	// MulUtilization is MulIssues / Cycles.
	MulUtilization float64
	// AddUtilization is AddIssues / Cycles.
	AddUtilization float64
	// StallCycles counts cycles in which neither unit issued (pipeline
	// bubbles waiting on latency or port limits).
	StallCycles int
	// ReadPortPressure[k] counts cycles that consumed exactly k of the 4
	// register-file read ports.
	ReadPortPressure [5]int
	// WritePortPressure[k] counts cycles that consumed exactly k of the
	// 2 register-file write ports.
	WritePortPressure [3]int
	// IssuesByOpcode counts issues per opcode mnemonic ("mul", "add",
	// "sub", "addsub.mixed", "addsub.dyn").
	IssuesByOpcode map[string]int
}

// Opcode ids: the dense index space behind the IssuesByOpcode mnemonics.
// The interpreter counts issues in a fixed-size array indexed by these
// and materializes the map once at run end; the compiled path counts
// them at Compile time.
const (
	opcodeMul = iota
	opcodeAdd
	opcodeSub
	opcodeAddSubMixed
	opcodeAddSubDyn
	numOpcodes
)

var opcodeNames = [numOpcodes]string{"mul", "add", "sub", "addsub.mixed", "addsub.dyn"}

// opcodeID returns the dense opcode index for an instruction.
func opcodeID(ins isa.Instr) uint8 {
	if ins.Unit == isa.UnitMul {
		return opcodeMul
	}
	if ins.CmdMode == isa.CmdDynSign {
		return opcodeAddSubDyn
	}
	switch {
	case ins.CmdRe == isa.CmdAdd && ins.CmdIm == isa.CmdAdd:
		return opcodeAdd
	case ins.CmdRe == isa.CmdSub && ins.CmdIm == isa.CmdSub:
		return opcodeSub
	}
	return opcodeAddSubMixed
}

// Opcode returns the mnemonic used as the IssuesByOpcode key for an
// instruction: the unit plus, for the adder, how its lane commands are
// produced.
func Opcode(ins isa.Instr) string { return opcodeNames[opcodeID(ins)] }

// ErrHazard wraps all structural violations detected during execution
// (and, for schedule-level hazards, at Compile time).
var ErrHazard = errors.New("rtl: structural hazard")

type pipeSlot struct {
	valid      bool
	completion int
	dst        uint16
	noWB       bool
	value      fp2.Element
}

// machine is the interpreter's datapath state. Buffers are reusable
// across runs (run resets them), which is how Machine's slow path avoids
// re-allocating when an Observer or Injector forces interpretation.
type machine struct {
	prog         *isa.Program
	regs         []fp2.Element
	written      []bool
	in           RunInput
	mulPipe      []pipeSlot // in-flight multiplier results
	addPipe      []pipeSlot
	byCycle      [][]isa.Instr
	opcodeCounts [numOpcodes]int
	stats        Stats
}

// newInterpreter builds interpreter state for p. byCycle groups the
// instruction stream by issue cycle, preserving the program's intra-cycle
// order (which fixes the observer event order within a cycle).
func newInterpreter(p *isa.Program) *machine {
	return &machine{
		prog:    p,
		regs:    make([]fp2.Element, p.NumRegs),
		written: make([]bool, p.NumRegs),
		byCycle: buildByCycle(p),
	}
}

// buildByCycle groups instructions by issue cycle in program order.
func buildByCycle(p *isa.Program) [][]isa.Instr {
	byCycle := make([][]isa.Instr, p.Makespan+1)
	for _, ins := range p.Instrs {
		byCycle[ins.Cycle] = append(byCycle[ins.Cycle], ins)
	}
	return byCycle
}

// Run executes the program and returns the named outputs. It is a thin
// compile-then-execute wrapper: the program is validated and planned
// once (Compile), then run on a fresh Machine — the fast compiled loop
// when no Observer/Injector is attached, the reference interpreter
// otherwise. Callers executing the same program many times should
// Compile once and reuse a Machine instead.
func Run(p *isa.Program, in RunInput) (map[string]fp2.Element, Stats, error) {
	cp, err := Compile(p)
	if err != nil {
		return nil, Stats{}, err
	}
	m := cp.NewMachine()
	st, err := m.Run(in)
	if err != nil {
		return nil, Stats{}, err
	}
	// The compiled path shares one opcode map across runs; Run's contract
	// predates that, so hand each caller an independent copy.
	st.IssuesByOpcode = cloneOpcodeMap(st.IssuesByOpcode)
	out := make(map[string]fp2.Element, len(p.OutputRegs))
	for name, reg := range p.OutputRegs {
		out[name] = m.Reg(reg)
	}
	return out, st, nil
}

func cloneOpcodeMap(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Interpret executes the program on the reference cycle-by-cycle
// interpreter, bypassing the compiled plan entirely. It is the semantic
// baseline: the differential suite runs scalars through both Interpret
// and the compiled Machine and requires identical outputs, statistics,
// observer event streams and injection behavior. It allocates per call;
// use Compile + Machine for steady-state execution.
func Interpret(p *isa.Program, in RunInput) (map[string]fp2.Element, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	m := newInterpreter(p)
	st, err := m.run(in)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make(map[string]fp2.Element, len(p.OutputRegs))
	for name, reg := range p.OutputRegs {
		out[name] = m.regs[reg]
	}
	return out, st, nil
}

// run executes one interpreted pass over the program, resetting the
// machine's reusable buffers first. The caller has already validated the
// program.
func (m *machine) run(in RunInput) (Stats, error) {
	p := m.prog
	m.in = in
	m.stats = Stats{}
	for i := range m.opcodeCounts {
		m.opcodeCounts[i] = 0
	}
	m.mulPipe = m.mulPipe[:0]
	m.addPipe = m.addPipe[:0]
	for i := range m.written {
		m.written[i] = false
	}
	// Program load: constants and inputs.
	for _, c := range p.ConstRegs {
		m.regs[c.Reg] = fp2.New(fp.SetLimbs(c.Value[0], c.Value[1]), fp.SetLimbs(c.Value[2], c.Value[3]))
		m.written[c.Reg] = true
	}
	if in.Bound != nil {
		if len(in.Bound) != len(p.InputRegs) {
			return Stats{}, fmt.Errorf("rtl: %d bound inputs for a program with %d inputs", len(in.Bound), len(p.InputRegs))
		}
		for _, b := range in.Bound {
			if int(b.Reg) >= len(m.regs) {
				return Stats{}, fmt.Errorf("rtl: bound input register %d out of range", b.Reg)
			}
			m.regs[b.Reg] = b.Val
			m.written[b.Reg] = true
		}
	} else {
		for name, reg := range p.InputRegs {
			v, ok := in.Inputs[name]
			if !ok {
				return Stats{}, fmt.Errorf("rtl: missing input %q", name)
			}
			m.regs[reg] = v
			m.written[reg] = true
		}
	}

	mulII := p.MulII
	if mulII <= 0 {
		mulII = 1
	}
	lastMulIssue := -1 << 30

	for cycle := 0; cycle <= p.Makespan; cycle++ {
		if in.Injector != nil {
			in.Injector.BeginCycle(cycle, regWindow{m})
		}
		// Write-back phase: results completing this cycle reach the
		// register file (write-through) and the forwarding ports.
		mulOut, addOut, err := m.writeback(cycle)
		if err != nil {
			return Stats{}, err
		}
		// Issue phase.
		reads := 0
		var mulIssued, addIssued bool
		for _, ins := range m.byCycle[cycle] {
			if in.Injector != nil {
				var ok bool
				if ins, ok = in.Injector.Fetch(cycle, ins); !ok {
					continue // corrupted valid bit: the slot never issues
				}
			}
			a, ra, err := m.resolve(cycle, ins, ins.A, mulOut, addOut)
			if err != nil {
				return Stats{}, fmt.Errorf("cycle %d op %q A: %w", cycle, ins.Label, err)
			}
			b, rb, err := m.resolve(cycle, ins, ins.B, mulOut, addOut)
			if err != nil {
				return Stats{}, fmt.Errorf("cycle %d op %q B: %w", cycle, ins.Label, err)
			}
			reads += ra + rb
			m.opcodeCounts[opcodeID(ins)]++
			if m.in.Observer != nil {
				m.in.Observer(Event{
					Kind: EvIssue, Cycle: cycle, Unit: ins.Unit, Dst: ins.Dst,
					A: a, B: b, FwdA: isFwd(ins.A), FwdB: isFwd(ins.B), Label: ins.Label,
				})
			}
			switch ins.Unit {
			case isa.UnitMul:
				if mulIssued {
					return Stats{}, fmt.Errorf("%w: multiplier double issue at cycle %d", ErrHazard, cycle)
				}
				if cycle < lastMulIssue+mulII {
					return Stats{}, fmt.Errorf("%w: multiplier II=%d violated at cycle %d", ErrHazard, mulII, cycle)
				}
				lastMulIssue = cycle
				mulIssued = true
				m.stats.MulIssues++
				result := fp2.MulAlg2(a, b)
				m.mulPipe = append(m.mulPipe, pipeSlot{true, cycle + p.MulLatency, ins.Dst, ins.NoWB, result})
			case isa.UnitAdd:
				if addIssued {
					return Stats{}, fmt.Errorf("%w: adder double issue at cycle %d", ErrHazard, cycle)
				}
				addIssued = true
				m.stats.AddIssues++
				result, err := m.addsub(ins, a, b)
				if err != nil {
					return Stats{}, err
				}
				m.addPipe = append(m.addPipe, pipeSlot{true, cycle + p.AddLatency, ins.Dst, ins.NoWB, result})
			}
		}
		if reads > 4 {
			return Stats{}, fmt.Errorf("%w: %d register reads at cycle %d (4 ports)", ErrHazard, reads, cycle)
		}
		m.stats.RegReads += reads
		m.stats.ReadPortPressure[reads]++
		if !mulIssued && !addIssued {
			m.stats.StallCycles++
		}
	}
	// Drain check: schedule validation guarantees everything completes by
	// Makespan, so the pipes must be empty. Checked pipe by pipe — no
	// concatenated scratch slice.
	for _, s := range m.mulPipe {
		if s.valid {
			return Stats{}, fmt.Errorf("%w: result still in flight after makespan", ErrHazard)
		}
	}
	for _, s := range m.addPipe {
		if s.valid {
			return Stats{}, fmt.Errorf("%w: result still in flight after makespan", ErrHazard)
		}
	}

	for name, reg := range p.OutputRegs {
		if !m.written[reg] {
			return Stats{}, fmt.Errorf("rtl: output %q register %d never written", name, reg)
		}
	}
	m.stats.Cycles = p.Makespan
	if p.Makespan > 0 {
		m.stats.MulUtilization = float64(m.stats.MulIssues) / float64(p.Makespan)
		m.stats.AddUtilization = float64(m.stats.AddIssues) / float64(p.Makespan)
	}
	// Materialize the opcode map from the dense counters, nonzero entries
	// only (exactly the keys the per-issue map increments used to carry).
	m.stats.IssuesByOpcode = make(map[string]int, numOpcodes)
	for id, n := range m.opcodeCounts {
		if n > 0 {
			m.stats.IssuesByOpcode[opcodeNames[id]] = n
		}
	}
	return m.stats, nil
}

// isFwd reports whether an operand reads a forwarding port.
func isFwd(op isa.Operand) bool {
	return op.Kind == isa.OpFwdMul || op.Kind == isa.OpFwdAdd
}

// writeback retires results whose completion is this cycle; it returns
// the unit output-port values for the forwarding network.
func (m *machine) writeback(cycle int) (mulOut, addOut *fp2.Element, err error) {
	writes := 0
	retire := func(pipe []pipeSlot, unit uint8) ([]pipeSlot, *fp2.Element, error) {
		var out *fp2.Element
		next := pipe[:0]
		for _, s := range pipe {
			if !s.valid || s.completion != cycle {
				if s.valid {
					next = append(next, s)
				}
				continue
			}
			if out != nil {
				return nil, nil, fmt.Errorf("%w: two results on one unit at cycle %d", ErrHazard, cycle)
			}
			v := s.value
			if m.in.Injector != nil {
				// A pipeline-output-register fault corrupts both the
				// forwarding port and the register-file write.
				v = m.in.Injector.Retire(cycle, unit, s.dst, v)
			}
			out = &v
			if s.noWB {
				m.stats.ElidedWrites++
			} else {
				// A corrupted control word (ROM fault) can aim a write
				// anywhere in the 9-bit address space; a real register
				// file would silently alias, our model fails loudly.
				if int(s.dst) >= len(m.regs) {
					return nil, nil, fmt.Errorf("%w: write to register %d out of range at cycle %d", ErrHazard, s.dst, cycle)
				}
				m.regs[s.dst] = v
				m.written[s.dst] = true
				writes++
			}
			if m.in.Observer != nil {
				m.in.Observer(Event{Kind: EvWriteback, Cycle: cycle, Unit: unit, Dst: s.dst, Value: v, Elided: s.noWB})
			}
		}
		return next, out, nil
	}
	m.mulPipe, mulOut, err = retire(m.mulPipe, isa.UnitMul)
	if err != nil {
		return nil, nil, err
	}
	m.addPipe, addOut, err = retire(m.addPipe, isa.UnitAdd)
	if err != nil {
		return nil, nil, err
	}
	if writes > 2 {
		return nil, nil, fmt.Errorf("%w: %d register writes at cycle %d (2 ports)", ErrHazard, writes, cycle)
	}
	m.stats.RegWrites += writes
	m.stats.WritePortPressure[writes]++
	return mulOut, addOut, nil
}

// resolve produces the operand value and the number of register-file
// read ports it consumed.
func (m *machine) resolve(cycle int, ins isa.Instr, op isa.Operand, mulOut, addOut *fp2.Element) (fp2.Element, int, error) {
	readReg := func(r uint16) (fp2.Element, error) {
		if int(r) >= len(m.regs) {
			return fp2.Element{}, fmt.Errorf("%w: register %d out of range", ErrHazard, r)
		}
		if !m.written[r] {
			return fp2.Element{}, fmt.Errorf("%w: read of never-written register %d", ErrHazard, r)
		}
		return m.regs[r], nil
	}
	switch op.Kind {
	case isa.OpReg:
		v, err := readReg(op.Reg)
		return v, 1, err
	case isa.OpFwdMul:
		if mulOut == nil {
			return fp2.Element{}, 0, fmt.Errorf("%w: forwarding from idle multiplier", ErrHazard)
		}
		m.stats.ForwardedReads++
		v := *mulOut
		if m.in.Injector != nil {
			v = m.in.Injector.Forward(cycle, isa.UnitMul, v)
		}
		return v, 0, nil
	case isa.OpFwdAdd:
		if addOut == nil {
			return fp2.Element{}, 0, fmt.Errorf("%w: forwarding from idle adder", ErrHazard)
		}
		m.stats.ForwardedReads++
		v := *addOut
		if m.in.Injector != nil {
			v = m.in.Injector.Forward(cycle, isa.UnitAdd, v)
		}
		return v, 0, nil
	case isa.OpTable:
		if op.Digit >= scalar.Digits {
			return fp2.Element{}, 0, fmt.Errorf("%w: table digit %d", ErrHazard, op.Digit)
		}
		sign := m.in.Rec.Sign[op.Digit]
		idx := m.in.Rec.Index[op.Digit]
		coord := op.Coord
		if sign < 0 {
			switch coord {
			case 0:
				coord = 1
			case 1:
				coord = 0
			}
		}
		v, err := readReg(m.prog.TableRegs[idx][coord])
		return v, 1, err
	case isa.OpROM:
		if op.Digit >= scalar.Digits {
			return fp2.Element{}, 0, fmt.Errorf("%w: ROM window %d exceeds digit positions", ErrHazard, op.Digit)
		}
		if op.Digit < 1 || int(op.Digit) > len(m.prog.ROMWindows) {
			return fp2.Element{}, 0, fmt.Errorf("%w: ROM window %d outside [1,%d]", ErrHazard, op.Digit, len(m.prog.ROMWindows))
		}
		sign := m.in.Rec.Sign[op.Digit]
		idx := m.in.Rec.Index[op.Digit]
		coord := op.Coord
		if sign < 0 {
			switch coord {
			case 0:
				coord = 1
			case 1:
				coord = 0
			}
		}
		// The ROM has its own read port: no register-file port consumed,
		// no written bit to check.
		m.stats.ROMReads++
		l := m.prog.ROMWindows[op.Digit-1][idx][coord]
		return fp2.New(fp.SetLimbs(l[0], l[1]), fp.SetLimbs(l[2], l[3])), 0, nil
	case isa.OpCorr:
		if m.in.Corrected {
			coord := op.Coord
			switch coord {
			case 0:
				coord = 1
			case 1:
				coord = 0
			case 3:
				coord = 3 // raw 2dT; the dynamic sign op negates it
			}
			v, err := readReg(m.prog.TableRegs[0][coord])
			return v, 1, err
		}
		v, err := readReg(m.prog.CorrIdentRegs[op.Coord])
		return v, 1, err
	}
	return fp2.Element{}, 0, fmt.Errorf("%w: operand kind %v unresolvable", ErrHazard, op.Kind)
}

// addsub executes the adder with per-lane commands, resolving dynamic
// sign commands from the recoded digits / correction flag.
func (m *machine) addsub(ins isa.Instr, a, b fp2.Element) (fp2.Element, error) {
	cmdRe, cmdIm := ins.CmdRe, ins.CmdIm
	if ins.CmdMode == isa.CmdDynSign {
		neg := false
		if ins.Digit == isa.DigitCorr {
			neg = m.in.Corrected
		} else {
			if ins.Digit >= scalar.Digits {
				return fp2.Element{}, fmt.Errorf("%w: dyn sign digit %d", ErrHazard, ins.Digit)
			}
			neg = m.in.Rec.Sign[ins.Digit] < 0
		}
		if neg {
			cmdRe, cmdIm = isa.CmdSub, isa.CmdSub
		} else {
			cmdRe, cmdIm = isa.CmdAdd, isa.CmdAdd
		}
	}
	var out fp2.Element
	if cmdRe == isa.CmdAdd {
		out.A = fp.Add(a.A, b.A)
	} else {
		out.A = fp.Sub(a.A, b.A)
	}
	if cmdIm == isa.CmdAdd {
		out.B = fp.Add(a.B, b.B)
	} else {
		out.B = fp.Sub(a.B, b.B)
	}
	return out, nil
}
