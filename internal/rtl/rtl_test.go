package rtl

import (
	"errors"
	mrand "math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

func randScalar(r *mrand.Rand) scalar.Scalar {
	var s scalar.Scalar
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}

// dblAddSetup builds and schedules a standalone DBLADD block.
func dblAddSetup(t testing.TB, seed int64, method sched.Method) (*isa.Program, curve.Point, [8]curve.Cached, scalar.Scalar) {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	p := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	table := curve.BuildTable(curve.NewMultiBase(p))
	acc := curve.ScalarMultBinary(randScalar(rng), curve.Generator())
	k := randScalar(rng)
	tr, err := trace.BuildDblAdd(k, acc, table)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	return r.Program, acc, table, k
}

func dblAddInputs(acc curve.Point, table [8]curve.Cached) map[string]fp2.Element {
	in := map[string]fp2.Element{
		"Q.x": acc.X, "Q.y": acc.Y, "Q.z": acc.Z, "Q.ta": acc.Ta, "Q.tb": acc.Tb,
	}
	names := [4]string{"x+y", "y-x", "2z", "2dt"}
	vals := func(c curve.Cached) [4]fp2.Element {
		return [4]fp2.Element{c.XplusY, c.YminusX, c.Z2, c.T2d}
	}
	for u := 0; u < 8; u++ {
		v := vals(table[u])
		for ci, n := range names {
			in["T"+string(rune('0'+u))+"."+n] = v[ci]
		}
	}
	return in
}

func runDblAdd(t testing.TB, prog *isa.Program, acc curve.Point, table [8]curve.Cached, k scalar.Scalar) curve.Point {
	t.Helper()
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	out, _, err := Run(prog, RunInput{Inputs: dblAddInputs(acc, table), Rec: rec, Corrected: dec.Corrected})
	if err != nil {
		t.Fatal(err)
	}
	return curve.Point{X: out["x"], Y: out["y"], Z: out["z"], Ta: out["ta"], Tb: out["tb"]}
}

func expectedDblAdd(acc curve.Point, table [8]curve.Cached, k scalar.Scalar) curve.Point {
	rec := scalar.Recode(scalar.Decompose(k))
	return curve.AddCached(curve.Double(acc), table[rec.Index[0]].CondNeg(rec.Sign[0]))
}

func TestRunDblAddMatchesLibrary(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 11, sched.MethodList)
	got := runDblAdd(t, prog, acc, table, k)
	if !got.Equal(expectedDblAdd(acc, table, k)) {
		t.Fatal("RTL DBLADD result differs from library")
	}
}

func TestRunDblAddScalarIndependence(t *testing.T) {
	// The program was traced with one scalar; running with other scalars
	// must still be correct (the schedule is scalar-independent; only the
	// runtime table indexing and sign commands change).
	prog, acc, table, _ := dblAddSetup(t, 12, sched.MethodBnB)
	rng := mrand.New(mrand.NewSource(99))
	for trial := 0; trial < 16; trial++ {
		k := randScalar(rng)
		got := runDblAdd(t, prog, acc, table, k)
		if !got.Equal(expectedDblAdd(acc, table, k)) {
			t.Fatalf("trial %d: result differs for fresh scalar", trial)
		}
	}
}

func TestRunReportsStats(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 13, sched.MethodList)
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	_, st, err := Run(prog, RunInput{Inputs: dblAddInputs(acc, table), Rec: rec, Corrected: dec.Corrected})
	if err != nil {
		t.Fatal(err)
	}
	if st.MulIssues != 15 || st.AddIssues != 13 {
		t.Errorf("issue counts %d/%d, want 15/13", st.MulIssues, st.AddIssues)
	}
	if st.MulUtilization <= 0 || st.MulUtilization > 1 {
		t.Errorf("utilization %f out of range", st.MulUtilization)
	}
	if st.RegWrites == 0 || st.RegReads == 0 {
		t.Error("no register traffic recorded")
	}
}

func TestRunMissingInput(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 14, sched.MethodList)
	in := dblAddInputs(acc, table)
	delete(in, "Q.x")
	dec := scalar.Decompose(k)
	if _, _, err := Run(prog, RunInput{Inputs: in, Rec: scalar.Recode(dec), Corrected: dec.Corrected}); err == nil {
		t.Fatal("missing input not reported")
	}
}

func TestHazardInjection(t *testing.T) {
	prog, acc, table, k := dblAddSetup(t, 15, sched.MethodList)
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	in := RunInput{Inputs: dblAddInputs(acc, table), Rec: rec, Corrected: dec.Corrected}

	corrupt := func(mutate func(p *isa.Program)) error {
		cp := *prog
		cp.Instrs = append([]isa.Instr(nil), prog.Instrs...)
		mutate(&cp)
		_, _, err := Run(&cp, in)
		return err
	}

	// Double issue on the multiplier.
	err := corrupt(func(p *isa.Program) {
		for i := range p.Instrs {
			if p.Instrs[i].Unit == isa.UnitMul && p.Instrs[i].Cycle > 0 {
				p.Instrs[i].Cycle = p.Instrs[0].Cycle
				break
			}
		}
	})
	if err == nil {
		t.Error("double issue not detected")
	}

	// Forwarding from an idle unit: push a forwarding consumer early.
	err = corrupt(func(p *isa.Program) {
		for i := range p.Instrs {
			if p.Instrs[i].A.Kind == isa.OpFwdMul {
				p.Instrs[i].A = isa.Operand{Kind: isa.OpFwdAdd}
			}
		}
	})
	if err == nil {
		t.Error("idle-unit forwarding not detected (or no forwarding in program)")
	}

	// Read of a never-written register.
	err = corrupt(func(p *isa.Program) {
		p.Instrs[len(p.Instrs)-1].A = isa.Operand{Kind: isa.OpReg, Reg: uint16(p.NumRegs - 1)}
		p.NumRegs++ // shift so the register is fresh
		p.Instrs[len(p.Instrs)-1].A.Reg = uint16(p.NumRegs - 1)
	})
	if err == nil {
		t.Error("uninitialized register read not detected")
	}
	if err != nil && !errors.Is(err, ErrHazard) {
		t.Errorf("expected ErrHazard, got %v", err)
	}
}

func TestFullScalarMultOnRTL(t *testing.T) {
	if testing.Short() {
		t.Skip("full SM on RTL is slow")
	}
	rng := mrand.New(mrand.NewSource(16))
	traceScalar := randScalar(rng)
	tr, err := trace.BuildScalarMult(traceScalar, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodList})
	if err != nil {
		t.Fatal(err)
	}
	g := curve.GeneratorAffine()
	inputs := map[string]fp2.Element{"P.x": g.X, "P.y": g.Y}

	// Run with the traced scalar and three fresh ones.
	scalars := []scalar.Scalar{traceScalar, randScalar(rng), {42}, {0, 0, 0, ^uint64(0)}}
	for i, k := range scalars {
		dec := scalar.Decompose(k)
		out, st, err := Run(r.Program, RunInput{Inputs: inputs, Rec: scalar.Recode(dec), Corrected: dec.Corrected})
		if err != nil {
			t.Fatalf("scalar %d: %v", i, err)
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !out["x"].Equal(want.X) || !out["y"].Equal(want.Y) {
			t.Fatalf("scalar %d: RTL SM result differs from library", i)
		}
		if i == 0 {
			t.Logf("full SM: %d cycles, mul util %.2f, %d fwd reads, %d regs",
				st.Cycles, st.MulUtilization, st.ForwardedReads, r.Program.NumRegs)
		}
	}
}
