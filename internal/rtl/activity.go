package rtl

import (
	"math/bits"

	"repro/internal/fp2"
	"repro/internal/isa"
)

// Switching-activity model: counts the bit toggles on the two functional
// units' output buses and the operand buses across consecutive cycles.
// Toggle counts are the standard first-order proxy for dynamic power in
// CMOS (P ~ alpha * C * V^2 * f) and double as a data-dependence probe
// for side-channel analysis: with the fixed-FSM design only the *data*
// toggles vary with the scalar, never the schedule.

// Activity accumulates switching statistics over a run.
type Activity struct {
	// Toggles is the total number of output-bus bit flips.
	Toggles int
	// PerCycle holds the toggle count of each cycle (indexed by cycle).
	PerCycle []int
	// lastMul/lastAdd are the previous bus values.
	lastMul, lastAdd fp2.Element
	haveMul, haveAdd bool
}

// NewActivity returns an Activity sized for a program with the given
// makespan; attach its Observe method to RunInput.Observer.
func NewActivity(makespan int) *Activity {
	return &Activity{PerCycle: make([]int, makespan+1)}
}

// Observe consumes datapath events.
func (a *Activity) Observe(ev Event) {
	if ev.Kind != EvWriteback {
		return
	}
	var dist int
	switch ev.Unit {
	case isa.UnitMul:
		if a.haveMul {
			dist = hamming(a.lastMul, ev.Value)
		} else {
			dist = popcount(ev.Value)
		}
		a.lastMul = ev.Value
		a.haveMul = true
	case isa.UnitAdd:
		if a.haveAdd {
			dist = hamming(a.lastAdd, ev.Value)
		} else {
			dist = popcount(ev.Value)
		}
		a.lastAdd = ev.Value
		a.haveAdd = true
	}
	a.Toggles += dist
	if ev.Cycle >= 0 && ev.Cycle < len(a.PerCycle) {
		a.PerCycle[ev.Cycle] += dist
	}
}

// MeanTogglesPerCycle is the average switching activity.
func (a *Activity) MeanTogglesPerCycle() float64 {
	if len(a.PerCycle) == 0 {
		return 0
	}
	return float64(a.Toggles) / float64(len(a.PerCycle))
}

func hamming(x, y fp2.Element) int {
	xa0, xa1 := x.A.Limbs()
	xb0, xb1 := x.B.Limbs()
	ya0, ya1 := y.A.Limbs()
	yb0, yb1 := y.B.Limbs()
	return bits.OnesCount64(xa0^ya0) + bits.OnesCount64(xa1^ya1) +
		bits.OnesCount64(xb0^yb0) + bits.OnesCount64(xb1^yb1)
}

func popcount(x fp2.Element) int {
	a0, a1 := x.A.Limbs()
	b0, b1 := x.B.Limbs()
	return bits.OnesCount64(a0) + bits.OnesCount64(a1) +
		bits.OnesCount64(b0) + bits.OnesCount64(b1)
}
