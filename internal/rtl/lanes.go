package rtl

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
)

// LaneMachine executes the compiled schedule once for up to Width
// independent scalar multiplications in lockstep. The design exploits
// the ASIC's defining property: the issue/retire table is static and
// data-independent (Section III-C), so L runs over different scalars
// walk *exactly* the same control path. Batching them lets the table
// decode, cycle loop, and operand dispatch be paid once per L lanes,
// turning the inner fp2 kernels into tight loops over contiguous
// per-lane values.
//
// State is laid out structure-of-arrays: the register file and the
// pipeline value slots are flat [entry*Width + lane] arrays, so the
// per-op lane loop touches one contiguous row. Per-lane data — the
// recoded digits driving table indexing, the dynamic sign commands, the
// parity-correction selects — flows through the same pre-decoded
// selects as the single-lane fast path.
//
// Error handling is per lane: a residual runtime check failing in one
// lane records that lane's error (byte-identical to the error the
// single-lane Machine would return) and degrades only that lane; the
// remaining lanes complete normally. This is sound because the checks
// depend only on the lane's own recoded digits, never on datapath
// values, and the written-bits state is a property of the schedule —
// shared by all lanes.
//
// A LaneMachine is NOT safe for concurrent use; give each goroutine its
// own. Steady-state RunLanes performs zero heap allocations: the caller
// owns the input and error slices, and outputs are read back per lane
// with Reg.
type LaneMachine struct {
	cp    *CompiledProgram
	width int
	// regs is the SoA register file: register r of lane l lives at
	// regs[int(r)*width+l].
	regs []fp2.Element
	// vals is one result row per scheduled op (the units' pipeline
	// registers, like Machine.vals, widened per lane).
	vals []fp2.Element
	// written is shared across lanes: instruction writes are statically
	// addressed, so the written-bits state at any cycle is a schedule
	// property, identical in every lane. Only maintained when the
	// program carries residual runtime checks (cp.trackWritten).
	written []bool
	// aBuf/bBuf gather runtime-selected operands (table/correction
	// reads, whose source register differs per lane) into one row.
	aBuf, bBuf []fp2.Element
	// ins/errs alias the caller's slices for the duration of one run.
	ins  []RunInput
	errs []error
	n    int
}

// NewLaneMachine allocates a lockstep machine for up to width lanes.
func (cp *CompiledProgram) NewLaneMachine(width int) *LaneMachine {
	if width < 1 {
		width = 1
	}
	return &LaneMachine{
		cp:      cp,
		width:   width,
		regs:    make([]fp2.Element, cp.prog.NumRegs*width),
		vals:    make([]fp2.Element, len(cp.ops)*width),
		written: make([]bool, cp.prog.NumRegs),
		aBuf:    make([]fp2.Element, width),
		bBuf:    make([]fp2.Element, width),
	}
}

// Width is the lane capacity; RunLanes accepts any 1..Width inputs.
func (lm *LaneMachine) Width() int { return lm.width }

// Program returns the machine's compiled program.
func (lm *LaneMachine) Program() *CompiledProgram { return lm.cp }

// Reg reads a register-file word of one lane (no port accounting);
// resolve output registers once with CompiledProgram.OutputReg.
func (lm *LaneMachine) Reg(lane int, r uint16) fp2.Element {
	return lm.regs[int(r)*lm.width+lane]
}

// RunLanes executes one lockstep pass of the schedule over len(ins)
// lanes (a partial final batch — fewer inputs than Width — is fine).
// errs must have the same length as ins; on return errs[l] carries lane
// l's failure, byte-identical to the error the single-lane Machine.Run
// would have returned for the same input, or nil on success. A failing
// lane degrades only itself: the others complete and their outputs are
// valid. The returned Stats are the program's precomputed statistics —
// identical for every lane, because the schedule is data-independent
// (IssuesByOpcode is the shared read-only map).
//
// The returned error reports caller mistakes that prevent the lockstep
// run as a whole (no lanes, more lanes than Width, mismatched errs
// length, an Observer or Injector attached — those force the
// interpreter and have no lockstep equivalent); per-lane input problems
// land in errs instead.
func (lm *LaneMachine) RunLanes(ins []RunInput, errs []error) (Stats, error) {
	if len(ins) == 0 {
		return Stats{}, fmt.Errorf("rtl: lane run with no inputs")
	}
	if len(ins) > lm.width {
		return Stats{}, fmt.Errorf("rtl: %d lane inputs for a machine of width %d", len(ins), lm.width)
	}
	if len(errs) != len(ins) {
		return Stats{}, fmt.Errorf("rtl: %d error slots for %d lane inputs", len(errs), len(ins))
	}
	for l := range ins {
		if ins[l].Observer != nil || ins[l].Injector != nil {
			return Stats{}, fmt.Errorf("rtl: lane %d: lockstep execution does not support Observer or Injector (use Machine.Run)", l)
		}
		errs[l] = nil
	}
	lm.ins, lm.errs, lm.n = ins, errs, len(ins)
	if lm.cp.trackWritten {
		copy(lm.written, lm.cp.initWritten)
	}
	for l := range ins {
		if err := lm.bindLane(l, &ins[l]); err != nil && errs[l] == nil {
			errs[l] = err
		}
	}
	lm.run()
	lm.ins, lm.errs = nil, nil // do not retain the caller's slices
	return lm.cp.stats, nil
}

// bindLane resets lane l's register column for a run: constants
// reloaded, inputs bound. As on the single-lane fast path, registers
// beyond those may hold values from the previous run; the compile-time
// written proof (plus the shared residual checks) makes that safe.
func (lm *LaneMachine) bindLane(l int, in *RunInput) error {
	cp, w := lm.cp, lm.width
	for _, c := range cp.consts {
		lm.regs[int(c.reg)*w+l] = c.val
	}
	if in.Bound != nil {
		if len(in.Bound) != len(cp.inputs) {
			return fmt.Errorf("rtl: %d bound inputs for a program with %d inputs", len(in.Bound), len(cp.inputs))
		}
		for _, b := range in.Bound {
			if int(b.Reg) >= cp.prog.NumRegs {
				return fmt.Errorf("rtl: bound input register %d out of range", b.Reg)
			}
			lm.regs[int(b.Reg)*w+l] = b.Val
		}
		return nil
	}
	for _, slot := range cp.inputs {
		v, ok := in.Inputs[slot.name]
		if !ok {
			return fmt.Errorf("rtl: missing input %q", slot.name)
		}
		lm.regs[int(slot.reg)*w+l] = v
	}
	return nil
}

// run is the lockstep cycle loop: write-back then issue each cycle, the
// single-lane fast path's phase order with every per-op decision made
// once and applied to all lanes.
func (lm *LaneMachine) run() {
	cp := lm.cp
	ops := cp.ops
	w, n := lm.width, lm.n
	track := cp.trackWritten
	// Forwarding rows alias the retiring op's value row directly: each
	// op's row is written once at issue and only read at its retire
	// cycle, so no copy is needed.
	var mulFwd, addFwd []fp2.Element
	for c := range cp.cycles {
		cc := &cp.cycles[c]
		// Write-back phase.
		if i := cc.retMul; i >= 0 {
			row := lm.vals[int(i)*w : int(i)*w+n]
			mulFwd = row
			if op := &ops[i]; !op.noWB {
				copy(lm.regs[int(op.dst)*w:int(op.dst)*w+n], row)
				if track {
					lm.written[op.dst] = true
				}
			}
		}
		if i := cc.retAdd; i >= 0 {
			row := lm.vals[int(i)*w : int(i)*w+n]
			addFwd = row
			if op := &ops[i]; !op.noWB {
				copy(lm.regs[int(op.dst)*w:int(op.dst)*w+n], row)
				if track {
					lm.written[op.dst] = true
				}
			}
		}
		// Issue phase.
		for i := cc.first; i < cc.first+cc.count; i++ {
			op := &ops[i]
			av := lm.operandRow(&op.a, op, mulFwd, addFwd, lm.aBuf)
			bv := lm.operandRow(&op.b, op, mulFwd, addFwd, lm.bBuf)
			out := lm.vals[int(i)*w : int(i)*w+n]
			if op.unit == isa.UnitMul {
				// Row kernel: bit-identical to per-lane MulAlg2 without
				// materializing a pipeline trace per product.
				fp2.MulAlg2Rows(out, av, bv)
				continue
			}
			if op.dynSign {
				// The sign command is per lane: each lane's recoded digit
				// (or correction flag) drives its own add/sub select.
				for l := 0; l < n; l++ {
					in := &lm.ins[l]
					neg := in.Corrected
					if op.digit != isa.DigitCorr {
						neg = in.Rec.Sign[op.digit] < 0
					}
					if neg {
						out[l].A = fp.Sub(av[l].A, bv[l].A)
						out[l].B = fp.Sub(av[l].B, bv[l].B)
					} else {
						out[l].A = fp.Add(av[l].A, bv[l].A)
						out[l].B = fp.Add(av[l].B, bv[l].B)
					}
				}
				continue
			}
			// Static lane commands: one branch per op, not per lane.
			switch {
			case !op.subRe && !op.subIm:
				for l := 0; l < n; l++ {
					out[l].A = fp.Add(av[l].A, bv[l].A)
					out[l].B = fp.Add(av[l].B, bv[l].B)
				}
			case op.subRe && op.subIm:
				for l := 0; l < n; l++ {
					out[l].A = fp.Sub(av[l].A, bv[l].A)
					out[l].B = fp.Sub(av[l].B, bv[l].B)
				}
			case op.subRe:
				for l := 0; l < n; l++ {
					out[l].A = fp.Sub(av[l].A, bv[l].A)
					out[l].B = fp.Add(av[l].B, bv[l].B)
				}
			default:
				for l := 0; l < n; l++ {
					out[l].A = fp.Add(av[l].A, bv[l].A)
					out[l].B = fp.Sub(av[l].B, bv[l].B)
				}
			}
		}
	}
}

// operandRow resolves one pre-decoded operand for all lanes. Statically
// addressed reads and forwarding taps are zero-copy row views; the
// runtime-selected kinds (table/correction) gather per lane into buf,
// applying the residual written-bits check where Compile could not
// discharge it.
func (lm *LaneMachine) operandRow(o *cOperand, op *cOp, mulFwd, addFwd, buf []fp2.Element) []fp2.Element {
	w, n := lm.width, lm.n
	switch o.kind {
	case isa.OpReg:
		base := int(o.reg) * w
		return lm.regs[base : base+n]
	case isa.OpFwdMul:
		return mulFwd
	case isa.OpFwdAdd:
		return addFwd
	case isa.OpTable:
		for l := 0; l < n; l++ {
			rec := &lm.ins[l].Rec
			r := o.tblPos[rec.Index[o.digit]]
			if rec.Sign[o.digit] < 0 {
				r = o.tblNeg[rec.Index[o.digit]]
			}
			buf[l] = lm.laneRead(r, l, op, o.check)
		}
		return buf[:n]
	case isa.OpROM:
		// Per-lane ROM gather: each lane's recoded digit selects its own
		// flat ROM address; contents are constants, so no residual check.
		for l := 0; l < n; l++ {
			rec := &lm.ins[l].Rec
			r := o.tblPos[rec.Index[o.digit]]
			if rec.Sign[o.digit] < 0 {
				r = o.tblNeg[rec.Index[o.digit]]
			}
			buf[l] = lm.cp.rom[r]
		}
		return buf[:n]
	case isa.OpCorr:
		for l := 0; l < n; l++ {
			r := o.identReg
			if lm.ins[l].Corrected {
				r = o.corrReg
			}
			buf[l] = lm.laneRead(r, l, op, o.check)
		}
		return buf[:n]
	}
	// Compile rejects every other kind.
	panic("rtl: unreachable operand kind on compiled lane path")
}

// laneRead loads one lane's runtime-selected register, recording the
// lane's first residual-check failure. A failed lane keeps executing in
// lockstep on placeholder data (the register file column it already
// has) so the other lanes' schedule walk is undisturbed; its error —
// identical to the single-lane Machine's — is what the caller sees.
func (lm *LaneMachine) laneRead(r uint16, l int, op *cOp, check bool) fp2.Element {
	if check {
		if int(r) >= lm.cp.prog.NumRegs {
			if lm.errs[l] == nil {
				lm.errs[l] = fmt.Errorf("op %q: %w: register %d out of range", op.label, ErrHazard, r)
			}
			return fp2.Element{}
		}
		if !lm.written[r] && lm.errs[l] == nil {
			lm.errs[l] = fmt.Errorf("op %q: %w: read of never-written register %d", op.label, ErrHazard, r)
		}
	}
	return lm.regs[int(r)*lm.width+l]
}
