package jobshop

import (
	"sort"
)

// Exact branch-and-bound solver. The search is organized as iterative
// deepening on the makespan: for each candidate makespan M (starting at a
// lower bound), a chronological DFS with constraint propagation decides
// whether a feasible schedule completing by M exists. The first feasible
// M is optimal. This mirrors how CP solvers close small scheduling
// instances and is exact for block-sized problems (tens of tasks, e.g.
// the paper's Table I double-and-add block).

// BnBResult is the outcome of BranchAndBound.
type BnBResult struct {
	Schedule Schedule
	// Optimal is true when the returned schedule's makespan was proved
	// minimal. When the node budget runs out the incumbent (list/anneal)
	// schedule is returned with Optimal == false.
	Optimal bool
	// Nodes is the number of search nodes explored.
	Nodes int64
	// LowerBound is the best proven lower bound on the makespan.
	LowerBound int
}

// LowerBound computes max(critical-path bound, machine-load bounds).
func LowerBound(inst *Instance) (int, error) {
	order, err := inst.topoOrder()
	if err != nil {
		return 0, err
	}
	est := inst.earliestStarts(order)
	lb := 0
	for i, t := range inst.Tasks {
		if c := est[i] + t.Tail; c > lb {
			lb = c
		}
	}
	// Machine load: a machine with total occupancy W, the earliest task
	// released at r and the cheapest (tail - dur) slack s, cannot finish
	// before r + W - 1 + min_i(tail_i - dur_i + 1).
	load := make([]int, inst.Machines)
	minRel := make([]int, inst.Machines)
	minSlack := make([]int, inst.Machines)
	for m := range minRel {
		minRel[m] = 1 << 30
		minSlack[m] = 1 << 30
	}
	for i, t := range inst.Tasks {
		load[t.Machine] += t.dur()
		if est[i] < minRel[t.Machine] {
			minRel[t.Machine] = est[i]
		}
		// Whichever task runs last on the machine starts no earlier than
		// rel + (W - dur_last) and publishes at start + tail_last, so the
		// machine bound is rel + W + min_i(tail_i - dur_i). No clamping:
		// a task with tail < dur legitimately publishes before the
		// machine frees.
		if s := t.Tail - t.dur(); s < minSlack[t.Machine] {
			minSlack[t.Machine] = s
		}
	}
	for m := 0; m < inst.Machines; m++ {
		if load[m] == 0 {
			continue
		}
		if b := minRel[m] + load[m] + minSlack[m]; b > lb {
			lb = b
		}
	}
	return lb, nil
}

// BranchAndBound finds a minimum-makespan schedule, exploring at most
// maxNodes search nodes. If the budget is exhausted before optimality is
// proven, the best heuristic schedule found so far is returned with
// Optimal == false.
func BranchAndBound(inst *Instance, maxNodes int64) (BnBResult, error) {
	return BranchAndBoundObserved(inst, maxNodes, nil)
}

// BranchAndBoundObserved is BranchAndBound with progress reporting: fn
// (when non-nil) receives the initial heuristic incumbent, every lower
// bound improvement, node-count heartbeats, the improved incumbent when
// a feasible makespan is found, and a final ProgressDone.
func BranchAndBoundObserved(inst *Instance, maxNodes int64, fn ProgressFunc) (BnBResult, error) {
	lb, err := LowerBound(inst)
	if err != nil {
		return BnBResult{}, err
	}
	incumbent, err := SolveList(inst)
	if err != nil {
		return BnBResult{}, err
	}
	res := BnBResult{Schedule: incumbent, LowerBound: lb}
	fn.emit(Progress{Kind: ProgressIncumbent, Makespan: incumbent.Makespan, Bound: lb})
	if incumbent.Makespan == lb {
		res.Optimal = true
		fn.emit(Progress{Kind: ProgressDone, Makespan: res.Schedule.Makespan, Bound: res.LowerBound, Optimal: true})
		return res, nil
	}
	s := &bnbState{inst: inst, preds: inst.preds(), succs: inst.succs(), budget: maxNodes, progress: fn}
	order, _ := inst.topoOrder()
	s.topo = order
	for m := lb; m < incumbent.Makespan; m++ {
		found, ok := s.feasible(m)
		if !ok {
			// budget exhausted; cannot prove anything further.
			res.Nodes = s.nodes
			fn.emit(Progress{Kind: ProgressDone, Makespan: res.Schedule.Makespan, Bound: res.LowerBound, Nodes: s.nodes})
			return res, nil
		}
		if found != nil {
			sched := Schedule{Start: found, Makespan: m}
			// Recompute true makespan (may be < m if tails end earlier).
			actual := 0
			for i, st := range found {
				if e := st + inst.Tasks[i].Tail; e > actual {
					actual = e
				}
			}
			sched.Makespan = actual
			res.Schedule = sched
			res.Optimal = true
			res.Nodes = s.nodes
			fn.emit(Progress{Kind: ProgressIncumbent, Makespan: actual, Bound: res.LowerBound, Nodes: s.nodes})
			fn.emit(Progress{Kind: ProgressDone, Makespan: actual, Bound: res.LowerBound, Nodes: s.nodes, Optimal: true})
			return res, nil
		}
		res.LowerBound = m + 1
		fn.emit(Progress{Kind: ProgressBound, Makespan: incumbent.Makespan, Bound: m + 1, Nodes: s.nodes})
	}
	// All makespans below the incumbent proved infeasible: incumbent optimal.
	res.Optimal = true
	res.Nodes = s.nodes
	fn.emit(Progress{Kind: ProgressDone, Makespan: res.Schedule.Makespan, Bound: res.LowerBound, Nodes: s.nodes, Optimal: true})
	return res, nil
}

type bnbState struct {
	inst     *Instance
	preds    [][]Prec
	succs    [][]Prec
	topo     []int
	nodes    int64
	budget   int64
	progress ProgressFunc
}

// feasible reports whether a schedule with makespan <= M exists; it
// returns (starts, true) on success, (nil, true) on proven infeasibility,
// and (nil, false) when the node budget ran out.
func (s *bnbState) feasible(m int) ([]int, bool) {
	n := len(s.inst.Tasks)
	est := make([]int, n)
	lst := make([]int, n)
	for i, t := range s.inst.Tasks {
		est[i] = t.Release
		lst[i] = m - t.Tail
	}
	// Forward propagate est, backward propagate lst.
	for _, v := range s.topo {
		for _, p := range s.succs[v] {
			if est[v]+p.Lag > est[p.After] {
				est[p.After] = est[v] + p.Lag
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := s.topo[i]
		for _, p := range s.succs[v] {
			if lst[p.After]-p.Lag < lst[v] {
				lst[v] = lst[p.After] - p.Lag
			}
		}
	}
	for i := 0; i < n; i++ {
		if est[i] > lst[i] {
			return nil, true // infeasible at this makespan
		}
	}
	start := make([]int, n)
	for i := range start {
		start[i] = -1
	}
	busy := make([]int, s.inst.Machines)
	ok, exhausted := s.dfs(0, 0, est, lst, start, busy)
	if exhausted {
		return nil, false
	}
	if ok {
		return start, true
	}
	return nil, true
}

// dfs schedules chronologically: at time t it branches over the choices
// of which ready task each machine issues (or none). Returns
// (success, budgetExhausted).
func (s *bnbState) dfs(t, done int, est, lst, start, busy []int) (bool, bool) {
	n := len(s.inst.Tasks)
	if done == n {
		return true, false
	}
	s.nodes++
	if s.nodes > s.budget {
		return false, true
	}
	if s.nodes%bnbHeartbeat == 0 {
		s.progress.emit(Progress{Kind: ProgressNodes, Nodes: s.nodes})
	}
	// Deadline check and ready-set construction.
	type pend struct{ lst, dur int }
	ready := make(map[int][]int)    // machine -> ready task ids
	pending := make(map[int][]pend) // machine -> unscheduled task info
	minEst := 1 << 30
	for i := 0; i < n; i++ {
		if start[i] >= 0 {
			continue
		}
		if lst[i] < t {
			return false, false // someone already missed their deadline
		}
		pending[s.inst.Tasks[i].Machine] = append(pending[s.inst.Tasks[i].Machine],
			pend{lst[i], s.inst.Tasks[i].dur()})
		// Effective est given scheduled preds.
		e := est[i]
		okAllPreds := true
		for _, p := range s.preds[i] {
			if start[p.Before] < 0 {
				okAllPreds = false
				// optimistic: est already includes static propagation
				continue
			}
			if v := start[p.Before] + p.Lag; v > e {
				e = v
			}
		}
		if e < minEst {
			minEst = e
		}
		if okAllPreds && e <= t && busy[s.inst.Tasks[i].Machine] <= t {
			m := s.inst.Tasks[i].Machine
			ready[m] = append(ready[m], i)
		}
	}
	// Hall/pigeonhole pruning: on each machine, among the k
	// tightest-deadline unscheduled tasks, total occupancy cum must fit
	// before the k-th deadline: lst_k >= avail + cum - maxDur.
	for m, items := range pending {
		sort.Slice(items, func(a, b int) bool { return items[a].lst < items[b].lst })
		avail := t
		if busy[m] > avail {
			avail = busy[m]
		}
		cum, maxDur := 0, 0
		for _, it := range items {
			cum += it.dur
			if it.dur > maxDur {
				maxDur = it.dur
			}
			if it.lst < avail+cum-maxDur {
				return false, false
			}
		}
	}
	if len(ready) == 0 {
		// Nothing ready: fast-forward to the next interesting time (a
		// precedence release or a machine becoming free).
		next := minEst
		for m := range pending {
			if busy[m] > t && busy[m] < next {
				next = busy[m]
			}
		}
		if next <= t {
			next = t + 1
		}
		return s.dfs(next, done, est, lst, start, busy)
	}
	// Order machines deterministically.
	machines := make([]int, 0, len(ready))
	for m := range ready {
		machines = append(machines, m)
	}
	sort.Ints(machines)
	// Branch over per-machine choices via recursive product. To keep the
	// branching factor sane each machine chooses among its ready tasks
	// ordered by (lst, id); "issue nothing" is tried last and only when no
	// ready task on that machine is forced (lst == t).
	var assign func(mi int) (bool, bool)
	chosen := make([]int, 0, len(machines))
	assign = func(mi int) (bool, bool) {
		if mi == len(machines) {
			// All machines decided for time t; recurse to t+1.
			return s.dfs(t+1, done+len(chosen), est, lst, start, busy)
		}
		m := machines[mi]
		cands := append([]int(nil), ready[m]...)
		sort.Slice(cands, func(a, b int) bool {
			if lst[cands[a]] != lst[cands[b]] {
				return lst[cands[a]] < lst[cands[b]]
			}
			return cands[a] < cands[b]
		})
		forced := len(cands) > 0 && lst[cands[0]] == t
		for _, id := range cands {
			start[id] = t
			prevBusy := busy[m]
			busy[m] = t + s.inst.Tasks[id].dur()
			chosen = append(chosen, id)
			ok, exhausted := assign(mi + 1)
			chosen = chosen[:len(chosen)-1]
			busy[m] = prevBusy
			if exhausted {
				start[id] = -1
				return false, true
			}
			if ok {
				return true, false
			}
			start[id] = -1
		}
		if !forced {
			return assign(mi + 1)
		}
		return false, false
	}
	return assign(0)
}
