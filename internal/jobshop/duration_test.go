package jobshop

import (
	"math/rand"
	"testing"
)

func TestDurationValidate(t *testing.T) {
	inst := &Instance{
		Tasks:    []Task{{Machine: 0, Dur: 3, Tail: 3}, {Machine: 0, Dur: 1, Tail: 1}},
		Machines: 1,
	}
	// Overlap: task 1 starting inside task 0's occupancy window.
	if Validate(inst, Schedule{Start: []int{0, 2}, Makespan: 3}) == nil {
		t.Error("occupancy overlap not caught")
	}
	if err := Validate(inst, Schedule{Start: []int{0, 3}, Makespan: 4}); err != nil {
		t.Errorf("valid occupancy schedule rejected: %v", err)
	}
}

func TestDurationListSchedule(t *testing.T) {
	// Three Dur=2 tasks on one machine: issue at 0, 2, 4; tail 2 each.
	inst := &Instance{Machines: 1}
	for i := 0; i < 3; i++ {
		inst.Tasks = append(inst.Tasks, Task{Machine: 0, Dur: 2, Tail: 2})
	}
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 6 {
		t.Errorf("makespan %d, want 6", s.Makespan)
	}
}

func TestDurationLowerBound(t *testing.T) {
	inst := &Instance{Machines: 1}
	for i := 0; i < 4; i++ {
		inst.Tasks = append(inst.Tasks, Task{Machine: 0, Dur: 3, Tail: 3})
	}
	lb, err := LowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Total occupancy 12, last task publishes at start+3 >= 9+3.
	if lb != 12 {
		t.Errorf("lower bound %d, want 12", lb)
	}
	s, _ := SolveList(inst)
	if s.Makespan != 12 {
		t.Errorf("list makespan %d, want 12", s.Makespan)
	}
}

func TestDurationBranchAndBound(t *testing.T) {
	// Mixed durations with a precedence that forces an idle decision:
	// the exact solver must still prove optimality.
	inst := &Instance{
		Tasks: []Task{
			{Machine: 0, Dur: 2, Tail: 2}, // 0
			{Machine: 0, Dur: 1, Tail: 4}, // 1: long tail
			{Machine: 1, Dur: 1, Tail: 1}, // 2: succ of 1
		},
		Precs:    []Prec{{Before: 1, After: 2, Lag: 4}},
		Machines: 2,
	}
	r, err := BranchAndBound(inst, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst, r.Schedule); err != nil {
		t.Fatal(err)
	}
	if !r.Optimal {
		t.Error("small duration instance not solved to optimality")
	}
	// Optimal: issue 1 at 0 (tail to 4), 0 at 1..2, 2 at 4 -> makespan 5.
	if r.Schedule.Makespan != 5 {
		t.Errorf("makespan %d, want 5", r.Schedule.Makespan)
	}
}

func TestDurationRandomAgreement(t *testing.T) {
	// On random small instances with durations, BnB must never beat the
	// proven lower bound nor lose to the list scheduler, and everything
	// must validate.
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 20; trial++ {
		inst := &Instance{Machines: 2}
		n := 5 + rng.Intn(8)
		for i := 0; i < n; i++ {
			inst.Tasks = append(inst.Tasks, Task{
				Machine: rng.Intn(2),
				Dur:     1 + rng.Intn(3),
				Tail:    1 + rng.Intn(4),
			})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					inst.Precs = append(inst.Precs, Prec{Before: i, After: j, Lag: 1 + rng.Intn(3)})
				}
			}
		}
		list, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, list); err != nil {
			t.Fatalf("trial %d list: %v", trial, err)
		}
		r, err := BranchAndBound(inst, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, r.Schedule); err != nil {
			t.Fatalf("trial %d bnb: %v", trial, err)
		}
		lb, _ := LowerBound(inst)
		if r.Schedule.Makespan < lb {
			t.Fatalf("trial %d: makespan %d below lower bound %d", trial, r.Schedule.Makespan, lb)
		}
		if r.Schedule.Makespan > list.Makespan {
			t.Fatalf("trial %d: bnb worse than list", trial)
		}
	}
}

func TestTabuValidAndNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 8; trial++ {
		inst := &Instance{Machines: 2}
		n := 10 + rng.Intn(15)
		for i := 0; i < n; i++ {
			inst.Tasks = append(inst.Tasks, Task{Machine: rng.Intn(2), Dur: 1 + rng.Intn(2), Tail: 1 + rng.Intn(4)})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(5) == 0 {
					inst.Precs = append(inst.Precs, Prec{Before: i, After: j, Lag: 1 + rng.Intn(3)})
				}
			}
		}
		list, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := Tabu(inst, int64(trial), 150, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, tb); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tb.Makespan > list.Makespan {
			t.Fatalf("trial %d: tabu %d worse than its list start %d", trial, tb.Makespan, list.Makespan)
		}
	}
	// Empty instance.
	if _, err := Tabu(&Instance{Machines: 1}, 0, 10, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	inst := &Instance{Machines: 2}
	for i := 0; i < 20; i++ {
		inst.Tasks = append(inst.Tasks, Task{Machine: rng.Intn(2), Tail: 1 + rng.Intn(3)})
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if rng.Intn(6) == 0 {
				inst.Precs = append(inst.Precs, Prec{Before: i, After: j, Lag: 1 + rng.Intn(2)})
			}
		}
	}
	a1, _ := Anneal(inst, 5, 200)
	a2, _ := Anneal(inst, 5, 200)
	if a1.Makespan != a2.Makespan {
		t.Error("Anneal not deterministic for fixed seed")
	}
	t1, _ := Tabu(inst, 5, 100, 0, 0)
	t2, _ := Tabu(inst, 5, 100, 0, 0)
	if t1.Makespan != t2.Makespan {
		t.Error("Tabu not deterministic for fixed seed")
	}
	l1, _ := SolveList(inst)
	l2, _ := SolveList(inst)
	for i := range l1.Start {
		if l1.Start[i] != l2.Start[i] {
			t.Fatal("ListSchedule not deterministic")
		}
	}
}
