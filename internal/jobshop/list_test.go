package jobshop

import (
	"math/rand"
	"testing"
)

// randomLagInstance is randomInstance widened to the corners the
// event-driven scheduler must agree with the reference on: zero-lag
// edges, multi-cycle occupancies, and spread-out release dates.
func randomLagInstance(rng *rand.Rand, n, machines int) *Instance {
	inst := &Instance{Machines: machines}
	for i := 0; i < n; i++ {
		inst.Tasks = append(inst.Tasks, Task{
			Machine: rng.Intn(machines),
			Dur:     rng.Intn(4), // 0 means 1
			Tail:    1 + rng.Intn(4),
			Release: rng.Intn(6),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(n) < 2 {
				inst.Precs = append(inst.Precs, Prec{Before: i, After: j, Lag: rng.Intn(4)})
			}
		}
	}
	return inst
}

// TestListScheduleMatchesReference pins the event-driven ListSchedule
// bit-identical to the time-stepped reference scan across random
// instances and random (including negative) priority vectors. This
// equivalence is what lets the local-search solvers trust the fast
// evaluator.
func TestListScheduleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 300; trial++ {
		inst := randomLagInstance(rng, 2+rng.Intn(40), 1+rng.Intn(3))
		n := len(inst.Tasks)
		prio := make([]int, n)
		switch trial % 3 {
		case 0:
			p, err := CriticalPathPriorities(inst)
			if err != nil {
				t.Fatal(err)
			}
			prio = p
		case 1:
			for i := range prio {
				prio[i] = rng.Intn(2*n+1) - n
			}
		case 2: // heavy ties
			for i := range prio {
				prio[i] = rng.Intn(3)
			}
		}
		want, err := listScheduleRef(inst, prio)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ListSchedule(inst, prio)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("trial %d: makespan %d, reference %d", trial, got.Makespan, want.Makespan)
		}
		for i := range want.Start {
			if got.Start[i] != want.Start[i] {
				t.Fatalf("trial %d: task %d starts at %d, reference %d", trial, i, got.Start[i], want.Start[i])
			}
		}
		if err := Validate(inst, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestEvaluatorReuse verifies the scratch reset: one evaluator run many
// times over different priority vectors must match fresh evaluations.
func TestEvaluatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	inst := randomLagInstance(rng, 60, 2)
	ev, err := newEvaluator(inst)
	if err != nil {
		t.Fatal(err)
	}
	n := len(inst.Tasks)
	prios := make([][]int, 8)
	for k := range prios {
		prios[k] = make([]int, n)
		for i := range prios[k] {
			prios[k][i] = rng.Intn(2*n+1) - n
		}
	}
	// Interleave: shared evaluator forward, then backward, vs fresh.
	want := make([]Schedule, len(prios))
	for k, p := range prios {
		s, err := ListSchedule(inst, p)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = s
	}
	for pass := 0; pass < 2; pass++ {
		for k := range prios {
			idx := k
			if pass == 1 {
				idx = len(prios) - 1 - k
			}
			s, err := ev.scheduleCopy(prios[idx])
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan != want[idx].Makespan {
				t.Fatalf("reuse pass %d prio %d: makespan %d, want %d", pass, idx, s.Makespan, want[idx].Makespan)
			}
			for i := range s.Start {
				if s.Start[i] != want[idx].Start[i] {
					t.Fatalf("reuse pass %d prio %d: task %d start %d, want %d", pass, idx, i, s.Start[i], want[idx].Start[i])
				}
			}
		}
	}
}

func TestEvaluatorRejectsBadInstances(t *testing.T) {
	cyclic := &Instance{
		Tasks:    []Task{{Machine: 0, Tail: 1}, {Machine: 0, Tail: 1}},
		Precs:    []Prec{{Before: 0, After: 1, Lag: 1}, {Before: 1, After: 0, Lag: 1}},
		Machines: 1,
	}
	if _, err := newEvaluator(cyclic); err == nil {
		t.Error("cycle not rejected")
	}
	badMachine := &Instance{Tasks: []Task{{Machine: 3, Tail: 1}}, Machines: 1}
	if _, err := newEvaluator(badMachine); err == nil {
		t.Error("out-of-range machine not rejected")
	}
	ev, err := newEvaluator(&Instance{Tasks: []Task{{Machine: 0, Tail: 1}}, Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.run([]int{1, 2}); err == nil {
		t.Error("wrong priority length not rejected")
	}
}

func BenchmarkEvaluatorRun1000(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 1000, 2)
	ev, err := newEvaluator(inst)
	if err != nil {
		b.Fatal(err)
	}
	prio, err := CriticalPathPriorities(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ev.run(prio); err != nil {
			b.Fatal(err)
		}
	}
}
