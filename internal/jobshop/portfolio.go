package jobshop

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Portfolio solver: the full-trace counterpart of the exact B&B. A
// scalar-multiplication trace has thousands of tasks — far past exact
// search — so the portfolio races two complementary attacks on the
// incumbent schedule:
//
//   - N tabu workers, each a diversified seeded restart of the shared
//     tabuSearch core starting from the incumbent's priority vector;
//   - M large-neighborhood-search (LNS) workers that carve a window of
//     consecutive tasks (in incumbent start order) out of the schedule,
//     re-solve the window exactly with the existing branch-and-bound as
//     an ordering oracle, splice the improved order back into a global
//     priority vector, and re-list-schedule the whole trace.
//
// Rounds are barrier-synchronized: within a round every worker starts
// from the same incumbent and owns its RNG and evaluator outright, so
// results are independent of goroutine interleaving; the merge picks
// the best worker deterministically (lowest makespan, ties to the
// lowest worker index). Same instance + same PortfolioOptions (seed,
// rounds, budgets) therefore yields the same schedule bit for bit —
// the property CI pins via Schedule.Hash. The optional TimeBudget is
// the one escape hatch and is checked only at round barriers; setting
// it trades that determinism for a wall-clock cap.

// PortfolioOptions configures Portfolio. Zero values select defaults.
type PortfolioOptions struct {
	// TabuWorkers is the number of parallel diversified tabu searches
	// per round (default 3).
	TabuWorkers int
	// LNSWorkers is the number of parallel window re-solvers per round
	// (default 2).
	LNSWorkers int
	// Rounds is the number of barrier-synchronized improvement rounds
	// (default 6). The budget knob: determinism holds for a fixed value.
	Rounds int
	// TabuIters is the tabu iteration count per worker per round
	// (default 120).
	TabuIters int
	// Neighborhood and Tenure are passed to the tabu core (defaults 12
	// and 8, applied there).
	Neighborhood int
	Tenure       int
	// Window is the LNS window size in tasks (default 40).
	Window int
	// BnBNodes is the branch-and-bound node budget per window re-solve
	// (default 200k). Exhaustion is benign: the oracle then returns the
	// heuristic order and the round simply does not improve.
	BnBNodes int64
	// Seed is the root seed; every (round, worker) RNG derives from it.
	Seed int64
	// TimeBudget, when positive, stops the portfolio at the first round
	// barrier past the budget. It does NOT abort a round in flight, and
	// it breaks run-to-run determinism (a slow machine runs fewer
	// rounds); leave it zero when reproducibility matters.
	TimeBudget time.Duration
	// Progress receives the incumbent trajectory: the initial
	// incumbent, every accepted improvement (Iteration = round), a
	// heartbeat per round, and a final ProgressDone.
	Progress ProgressFunc
}

func (o PortfolioOptions) withDefaults() PortfolioOptions {
	if o.TabuWorkers <= 0 {
		o.TabuWorkers = 3
	}
	if o.LNSWorkers < 0 {
		o.LNSWorkers = 0
	} else if o.LNSWorkers == 0 {
		o.LNSWorkers = 2
	}
	if o.Rounds <= 0 {
		o.Rounds = 6
	}
	if o.TabuIters <= 0 {
		o.TabuIters = 120
	}
	if o.Window <= 0 {
		o.Window = 40
	}
	if o.BnBNodes <= 0 {
		o.BnBNodes = 200_000
	}
	return o
}

// PortfolioResult is the outcome of Portfolio.
type PortfolioResult struct {
	Schedule Schedule
	// Prio is the priority vector whose list schedule is Schedule
	// (useful for warm-starting further search).
	Prio []int
	// Improvements counts accepted incumbent improvements.
	Improvements int
	// TabuWins / LNSWins attribute the improvements to the worker kind.
	TabuWins, LNSWins int
	// RoundsRun is the number of rounds actually executed (fewer than
	// requested if the lower bound was hit or the TimeBudget expired).
	RoundsRun int
	// LowerBound is the proven makespan lower bound of the instance.
	LowerBound int
	// Optimal is true when the schedule matches the lower bound.
	Optimal bool
}

// Hash returns a stable FNV-1a fingerprint of the schedule (makespan
// plus every start time). Used by CI to pin portfolio determinism.
func (s Schedule) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(int64(s.Makespan)))
	for _, st := range s.Start {
		mix(uint64(int64(st)))
	}
	return h
}

// workerSeed derives the RNG seed of one (round, worker) cell from the
// root seed via a splitmix64 step, so diversification does not depend
// on worker count or round order.
func workerSeed(seed int64, round, worker int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(uint32(round)*1024+uint32(worker)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Portfolio runs the portfolio solver on inst. See the package comment
// above for the algorithm and the determinism contract.
func Portfolio(inst *Instance, opts PortfolioOptions) (PortfolioResult, error) {
	o := opts.withDefaults()
	fn := o.Progress
	lb, err := LowerBound(inst)
	if err != nil {
		return PortfolioResult{}, err
	}
	base, err := CriticalPathPriorities(inst)
	if err != nil {
		return PortfolioResult{}, err
	}
	n := len(inst.Tasks)
	if n == 0 {
		s, err := SolveList(inst)
		if err != nil {
			return PortfolioResult{}, err
		}
		fn.emit(Progress{Kind: ProgressDone, Makespan: s.Makespan, Bound: lb, Optimal: true})
		return PortfolioResult{Schedule: s, Prio: base, LowerBound: lb, Optimal: true}, nil
	}

	evMain, err := newEvaluator(inst)
	if err != nil {
		return PortfolioResult{}, err
	}
	// Stretch the critical-path priorities by prioScale so the local
	// search has sub-class resolution; the list schedule is unchanged
	// (scaling preserves the priority order).
	incPrio := make([]int, n)
	for i, p := range base {
		incPrio[i] = p * prioScale
	}
	inc, err := evMain.scheduleCopy(incPrio)
	if err != nil {
		return PortfolioResult{}, err
	}
	fn.emit(Progress{Kind: ProgressIncumbent, Makespan: inc.Makespan, Bound: lb})

	nw := o.TabuWorkers + o.LNSWorkers
	evs := make([]*evaluator, nw)
	for i := range evs {
		if evs[i], err = newEvaluator(inst); err != nil {
			return PortfolioResult{}, err
		}
	}

	var deadline time.Time
	if o.TimeBudget > 0 {
		deadline = time.Now().Add(o.TimeBudget)
	}

	res := PortfolioResult{LowerBound: lb}
	type outcome struct {
		prio  []int
		sched Schedule
		ok    bool
		err   error
	}
	for r := 0; r < o.Rounds; r++ {
		if inc.Makespan <= lb {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		res.RoundsRun++
		out := make([]outcome, nw)
		var wg sync.WaitGroup
		for wi := 0; wi < nw; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(workerSeed(o.Seed, r, wi)))
				if wi < o.TabuWorkers {
					prio, sched, err := tabuWorker(evs[wi], incPrio, rng, wi, o)
					out[wi] = outcome{prio, sched, err == nil, err}
				} else {
					prio, sched, ok, err := lnsWorker(evs[wi], inst, inc, incPrio, rng, o)
					out[wi] = outcome{prio, sched, ok && err == nil, err}
				}
			}(wi)
		}
		wg.Wait()
		// Deterministic merge: best makespan, ties to the lowest index.
		bestIdx := -1
		for i, oc := range out {
			if oc.err != nil {
				return PortfolioResult{}, fmt.Errorf("jobshop: portfolio worker %d round %d: %w", i, r, oc.err)
			}
			if !oc.ok {
				continue
			}
			if oc.sched.Makespan < inc.Makespan &&
				(bestIdx == -1 || oc.sched.Makespan < out[bestIdx].sched.Makespan) {
				bestIdx = i
			}
		}
		if bestIdx >= 0 {
			inc = out[bestIdx].sched
			incPrio = out[bestIdx].prio
			res.Improvements++
			if bestIdx < o.TabuWorkers {
				res.TabuWins++
			} else {
				res.LNSWins++
			}
			fn.emit(Progress{Kind: ProgressIncumbent, Makespan: inc.Makespan, Bound: lb, Iteration: r + 1})
		}
		fn.emit(Progress{Kind: ProgressIteration, Makespan: inc.Makespan, Bound: lb, Iteration: r + 1})
	}
	res.Schedule = inc
	res.Prio = incPrio
	res.Optimal = inc.Makespan <= lb
	fn.emit(Progress{Kind: ProgressDone, Makespan: inc.Makespan, Bound: lb, Iteration: res.RoundsRun, Optimal: res.Optimal})
	return res, nil
}

// prioScale stretches the base priority scale so that small tabu
// deltas and diversification jitters reorder near-ties instead of
// jumping whole priority classes.
const prioScale = 4

// tabuWorker runs one diversified tabu restart from the incumbent
// priority vector. Worker 0 intensifies (starts exactly at the
// incumbent); higher indices first pick the best of a few jittered
// re-constructions of the incumbent (a GRASP step — jitter growing
// with the worker index), so restarts explore different basins.
func tabuWorker(ev *evaluator, incPrio []int, rng *rand.Rand, wi int, o PortfolioOptions) ([]int, Schedule, error) {
	cur := append([]int(nil), incPrio...)
	if wi > 0 {
		const grasps = 4
		jit := 2 * wi
		cand := make([]int, len(incPrio))
		bestSpan := int(^uint(0) >> 1)
		for g := 0; g < grasps; g++ {
			for i := range cand {
				cand[i] = incPrio[i] + rng.Intn(2*jit+1) - jit
			}
			_, span, err := ev.run(cand)
			if err != nil {
				return nil, Schedule{}, err
			}
			if span < bestSpan {
				bestSpan = span
				copy(cur, cand)
			}
		}
	}
	return tabuSearch(ev, cur, rng, o.TabuIters, o.Neighborhood, o.Tenure, nil)
}

// lnsWorker carves a window of consecutive tasks (in incumbent start
// order) out of the schedule, re-solves the window exactly with the
// branch-and-bound as an ordering oracle (frozen outside-window
// predecessors become release dates; successor deadlines are dropped —
// soundness comes from re-evaluating globally, not from the window
// model), splices the oracle's order back into the incumbent priority
// vector, and list-schedules the whole instance. The splice permutes
// only the window tasks' own priority values (largest value to the
// task the oracle starts first): everything the local search has
// learned about the rest of the trace stays intact. The repaired
// schedule competes at the merge like any other: acceptance is by
// actual global makespan, so an unhelpful window (ok=false or no
// improvement) is simply discarded.
func lnsWorker(ev *evaluator, inst *Instance, inc Schedule, incPrio []int, rng *rand.Rand, o PortfolioOptions) ([]int, Schedule, bool, error) {
	n := len(inst.Tasks)
	w := o.Window
	if w > n {
		w = n
	}
	if w < 2 {
		return nil, Schedule{}, false, nil
	}
	// Tasks in incumbent start order (ties by id): the sequence the
	// window is cut from and the backbone of the rebuilt priorities.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if inc.Start[order[a]] != inc.Start[order[b]] {
			return inc.Start[order[a]] < inc.Start[order[b]]
		}
		return order[a] < order[b]
	})
	ws := 0
	if n > w {
		ws = rng.Intn(n - w + 1)
	}
	window := order[ws : ws+w]
	loc := make([]int, n)
	for i := range loc {
		loc[i] = -1
	}
	for li, id := range window {
		loc[id] = li
	}
	// Sub-instance in window-relative time: frozen outside-window
	// predecessors turn into release dates, internal precedences carry
	// over, everything else (machines, durs, tails) is unchanged.
	basetime := inc.Start[window[0]]
	sub := Instance{Machines: inst.Machines, Tasks: make([]Task, w)}
	for li, id := range window {
		t := inst.Tasks[id]
		rel := t.Release - basetime
		if rel < 0 {
			rel = 0
		}
		sub.Tasks[li] = Task{Machine: t.Machine, Dur: t.Dur, Tail: t.Tail, Release: rel}
	}
	for _, p := range inst.Precs {
		lb, la := loc[p.Before], loc[p.After]
		switch {
		case lb >= 0 && la >= 0:
			sub.Precs = append(sub.Precs, Prec{Before: lb, After: la, Lag: p.Lag})
		case lb < 0 && la >= 0:
			if rel := inc.Start[p.Before] + p.Lag - basetime; rel > sub.Tasks[la].Release {
				sub.Tasks[la].Release = rel
			}
		}
	}
	oracle, err := BranchAndBound(&sub, o.BnBNodes)
	if err != nil {
		return nil, Schedule{}, false, err
	}
	// Window order by oracle start (ties by local index), spliced back
	// into the global sequence at the window's positions.
	perm := make([]int, w)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if oracle.Schedule.Start[perm[a]] != oracle.Schedule.Start[perm[b]] {
			return oracle.Schedule.Start[perm[a]] < oracle.Schedule.Start[perm[b]]
		}
		return perm[a] < perm[b]
	})
	// Permute the window tasks' existing priority values: the task the
	// oracle starts first receives the largest of the values the window
	// currently holds, and so on. Non-window priorities are untouched.
	prio := append([]int(nil), incPrio...)
	vals := make([]int, w)
	for k, id := range window {
		vals[k] = incPrio[id]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	for k, p := range perm {
		prio[window[p]] = vals[k]
	}
	sched, err := ev.scheduleCopy(prio)
	if err != nil {
		return nil, Schedule{}, false, err
	}
	return prio, sched, true, nil
}
