package jobshop_test

import (
	"fmt"

	"repro/internal/jobshop"
)

// Example schedules a small two-machine instance with a latency chain.
func Example() {
	inst := &jobshop.Instance{
		Machines: 2,
		Tasks: []jobshop.Task{
			{Machine: 0, Tail: 3}, // a multiply
			{Machine: 0, Tail: 3}, // another multiply
			{Machine: 1, Tail: 1}, // an add consuming the first product
		},
		Precs: []jobshop.Prec{{Before: 0, After: 2, Lag: 3}},
	}
	s, err := jobshop.SolveList(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("makespan:", s.Makespan)
	fmt.Println("valid:", jobshop.Validate(inst, s) == nil)

	exact, err := jobshop.BranchAndBound(inst, 100000)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal proven:", exact.Optimal)
	// Output:
	// makespan: 4
	// valid: true
	// optimal proven: true
}
