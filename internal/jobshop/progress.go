package jobshop

// Solver progress reporting. Long branch-and-bound and local-search
// runs were previously silent until completion; the *Observed solver
// variants invoke a ProgressFunc at every meaningful search event so
// callers (the sched package, the cmd tools, tests) can surface live
// incumbent/bound trajectories. Callbacks run synchronously on the
// solver goroutine — keep them cheap.

// ProgressKind tags a solver progress event.
type ProgressKind uint8

const (
	// ProgressIncumbent: a new best schedule was found (also emitted for
	// the initial heuristic incumbent).
	ProgressIncumbent ProgressKind = iota
	// ProgressBound: the proven lower bound improved.
	ProgressBound
	// ProgressNodes: a periodic node-count heartbeat (branch-and-bound).
	ProgressNodes
	// ProgressIteration: a periodic iteration heartbeat (local search).
	ProgressIteration
	// ProgressDone: the solver finished; Makespan/Bound/Optimal are final.
	ProgressDone
)

func (k ProgressKind) String() string {
	switch k {
	case ProgressIncumbent:
		return "incumbent"
	case ProgressBound:
		return "bound"
	case ProgressNodes:
		return "nodes"
	case ProgressIteration:
		return "iteration"
	case ProgressDone:
		return "done"
	}
	return "?"
}

// Progress is one solver progress event.
type Progress struct {
	Kind ProgressKind
	// Makespan is the best incumbent makespan known so far.
	Makespan int
	// Bound is the best proven lower bound so far (0 when the solver
	// does not prove bounds, e.g. tabu search).
	Bound int
	// Nodes is the number of branch-and-bound nodes explored so far.
	Nodes int64
	// Iteration is the local-search iteration (tabu).
	Iteration int
	// Optimal is set on ProgressDone when optimality was proven.
	Optimal bool
}

// ProgressFunc receives progress events; nil disables reporting.
type ProgressFunc func(Progress)

// emit invokes fn if non-nil.
func (fn ProgressFunc) emit(p Progress) {
	if fn != nil {
		fn(p)
	}
}

// bnbHeartbeat is the node interval between ProgressNodes events.
const bnbHeartbeat = 1 << 20
