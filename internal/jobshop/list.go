package jobshop

import (
	"errors"
	"fmt"
)

// Event-driven list scheduling. The reference scheduler
// (listScheduleRef) rescans every unscheduled task at every time step,
// which is O(makespan * n * preds) — ~30ms on a full 4.7k-op
// scalar-multiplication trace and far too slow as the inner evaluation
// of a local-search solver. The evaluator below builds the successor
// adjacency once (CSR layout) and then simulates the exact same greedy
// policy with per-machine ready heaps and an arrival heap, reusing all
// scratch state across evaluations: O((n+E) log n) per call and
// allocation-free in steady state. The equivalence is load-bearing and
// pinned by TestListScheduleMatchesReference.
//
// Semantics note: the reference collects each time step's candidates
// before any machine issues, so a successor can never become a
// candidate in the same step its last predecessor issues — even with a
// zero precedence lag. The evaluator reproduces that by clamping the
// eligibility lag of every edge to at least one cycle (the validation
// constraint itself keeps the declared lag).

// evaluator is a reusable list-scheduling engine bound to one Instance.
// It is NOT safe for concurrent use: concurrent solvers (the portfolio)
// give every worker its own evaluator.
type evaluator struct {
	inst     *Instance
	n        int
	machines int

	// CSR successor adjacency. Lags are the eligibility lags
	// (max(lag, 1), see the semantics note above).
	succHead []int32
	succTo   []int32
	succLag  []int32
	npreds   []int32

	// Scratch reused across runs.
	remaining []int32
	readyAt   []int
	start     []int
	freeAt    []int
	heaps     [][]int32 // per-machine ready heap: (prio desc, id asc)
	arr       []arrival // min-heap: (at asc, id asc)
	prio      []int     // priority vector of the run in flight
}

type arrival struct {
	at int
	id int32
}

// newEvaluator validates inst (acyclic precedences, machine indices in
// range) and builds the reusable adjacency.
func newEvaluator(inst *Instance) (*evaluator, error) {
	if _, err := inst.topoOrder(); err != nil {
		return nil, err
	}
	n := len(inst.Tasks)
	for i, t := range inst.Tasks {
		if t.Machine < 0 || t.Machine >= inst.Machines {
			return nil, fmt.Errorf("jobshop: task %d machine %d out of range [0,%d)", i, t.Machine, inst.Machines)
		}
	}
	ev := &evaluator{
		inst:     inst,
		n:        n,
		machines: inst.Machines,
		succHead: make([]int32, n+1),
		succTo:   make([]int32, len(inst.Precs)),
		succLag:  make([]int32, len(inst.Precs)),
		npreds:   make([]int32, n),

		remaining: make([]int32, n),
		readyAt:   make([]int, n),
		start:     make([]int, n),
		freeAt:    make([]int, inst.Machines),
		heaps:     make([][]int32, inst.Machines),
		arr:       make([]arrival, 0, n),
	}
	for _, p := range inst.Precs {
		ev.succHead[p.Before+1]++
		ev.npreds[p.After]++
	}
	for i := 0; i < n; i++ {
		ev.succHead[i+1] += ev.succHead[i]
	}
	fill := make([]int32, n)
	for _, p := range inst.Precs {
		lag := int32(p.Lag)
		if lag < 1 {
			lag = 1
		}
		at := ev.succHead[p.Before] + fill[p.Before]
		fill[p.Before]++
		ev.succTo[at] = int32(p.After)
		ev.succLag[at] = lag
	}
	for m := range ev.heaps {
		ev.heaps[m] = make([]int32, 0, 64)
	}
	return ev, nil
}

// run schedules under prio and returns (starts, makespan). The returned
// slice is the evaluator's scratch buffer: it is only valid until the
// next run call — callers keeping a schedule must copy it.
func (ev *evaluator) run(prio []int) ([]int, int, error) {
	n := ev.n
	if len(prio) != n {
		return nil, 0, fmt.Errorf("jobshop: priority vector length %d != %d tasks", len(prio), n)
	}
	ev.prio = prio
	copy(ev.remaining, ev.npreds)
	ev.arr = ev.arr[:0]
	for m := range ev.heaps {
		ev.heaps[m] = ev.heaps[m][:0]
		ev.freeAt[m] = 0
	}
	for i := 0; i < n; i++ {
		ev.readyAt[i] = ev.inst.Tasks[i].Release
		ev.start[i] = -1
		if ev.npreds[i] == 0 {
			at := ev.readyAt[i]
			if at < 0 {
				at = 0
			}
			ev.pushArrival(arrival{at, int32(i)})
		}
	}

	scheduled, makespan := 0, 0
	t := 0
	if len(ev.arr) > 0 {
		t = ev.arr[0].at
	}
	for scheduled < n {
		// Drain arrivals due at or before t into their machine heaps.
		for len(ev.arr) > 0 && ev.arr[0].at <= t {
			a := ev.popArrival()
			ev.pushReady(ev.inst.Tasks[a.id].Machine, a.id)
		}
		// Every free machine issues its best ready task (one per step).
		for m := 0; m < ev.machines; m++ {
			if ev.freeAt[m] > t || len(ev.heaps[m]) == 0 {
				continue
			}
			id := ev.popReady(m)
			task := &ev.inst.Tasks[id]
			ev.start[id] = t
			ev.freeAt[m] = t + task.dur()
			scheduled++
			if end := t + task.Tail; end > makespan {
				makespan = end
			}
			for e := ev.succHead[id]; e < ev.succHead[id+1]; e++ {
				to := ev.succTo[e]
				// succLag is the eligibility lag, pre-clamped to >= 1
				// (see the semantics note): the candidate-collection
				// ordering of the reference scheduler makes a
				// same-cycle hand-off impossible even for lag-0 edges.
				if r := t + int(ev.succLag[e]); r > ev.readyAt[to] {
					ev.readyAt[to] = r
				}
				ev.remaining[to]--
				if ev.remaining[to] == 0 {
					ev.pushArrival(arrival{ev.readyAt[to], to})
				}
			}
		}
		if scheduled == n {
			break
		}
		// Advance to the next event: an arrival, or a busy machine with
		// queued work becoming free.
		next := int(^uint(0) >> 1)
		if len(ev.arr) > 0 {
			next = ev.arr[0].at
		}
		for m := 0; m < ev.machines; m++ {
			if len(ev.heaps[m]) > 0 && ev.freeAt[m] > t && ev.freeAt[m] < next {
				next = ev.freeAt[m]
			}
		}
		if next <= t {
			if next == int(^uint(0)>>1) {
				return nil, 0, errors.New("jobshop: internal error, list scheduler stuck")
			}
			next = t + 1
		}
		t = next
	}
	return ev.start, makespan, nil
}

// scheduleCopy runs prio and returns an owned Schedule.
func (ev *evaluator) scheduleCopy(prio []int) (Schedule, error) {
	starts, makespan, err := ev.run(prio)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{Start: append([]int(nil), starts...), Makespan: makespan}, nil
}

// readyLess orders the ready heap: higher priority first, ties by
// lower task id — the reference scheduler's exact tie-break.
func (ev *evaluator) readyLess(a, b int32) bool {
	if ev.prio[a] != ev.prio[b] {
		return ev.prio[a] > ev.prio[b]
	}
	return a < b
}

func (ev *evaluator) pushReady(m int, id int32) {
	h := append(ev.heaps[m], id)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.readyLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	ev.heaps[m] = h
}

func (ev *evaluator) popReady(m int) int32 {
	h := ev.heaps[m]
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && ev.readyLess(h[l], h[best]) {
			best = l
		}
		if r < len(h) && ev.readyLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	ev.heaps[m] = h
	return top
}

func arrivalLess(a, b arrival) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

func (ev *evaluator) pushArrival(a arrival) {
	h := append(ev.arr, a)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !arrivalLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	ev.arr = h
}

func (ev *evaluator) popArrival() arrival {
	h := ev.arr
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && arrivalLess(h[l], h[best]) {
			best = l
		}
		if r < len(h) && arrivalLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	ev.arr = h
	return top
}
