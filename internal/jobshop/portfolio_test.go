package jobshop

import (
	"math/rand"
	"sync"
	"testing"
)

// testPortfolioOpts is a small, fast configuration exercising both
// worker kinds across a few rounds.
func testPortfolioOpts(seed int64) PortfolioOptions {
	return PortfolioOptions{
		TabuWorkers: 2,
		LNSWorkers:  2,
		Rounds:      3,
		TabuIters:   40,
		Window:      12,
		BnBNodes:    5_000,
		Seed:        seed,
	}
}

// TestPortfolioDeterministic pins the determinism contract: same
// instance + same options (seed, rounds, budgets; no TimeBudget) must
// yield the same schedule bit for bit, regardless of goroutine
// interleaving. This is the property CI's sched-smoke re-checks on the
// real trace via Schedule.Hash.
func TestPortfolioDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		inst := randomLagInstance(rng, 80+trial*20, 2)
		opts := testPortfolioOpts(int64(100 + trial))
		a, err := Portfolio(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Portfolio(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Schedule.Hash() != b.Schedule.Hash() {
			t.Fatalf("trial %d: hashes differ: %016x vs %016x", trial, a.Schedule.Hash(), b.Schedule.Hash())
		}
		if a.Schedule.Makespan != b.Schedule.Makespan {
			t.Fatalf("trial %d: makespans differ: %d vs %d", trial, a.Schedule.Makespan, b.Schedule.Makespan)
		}
		for i := range a.Schedule.Start {
			if a.Schedule.Start[i] != b.Schedule.Start[i] {
				t.Fatalf("trial %d: task %d start %d vs %d", trial, i, a.Schedule.Start[i], b.Schedule.Start[i])
			}
		}
		if a.Improvements != b.Improvements || a.TabuWins != b.TabuWins || a.LNSWins != b.LNSWins {
			t.Fatalf("trial %d: provenance differs: %+v vs %+v", trial, a, b)
		}
	}
}

// TestPortfolioValidAndNotWorse checks that every portfolio schedule
// satisfies the instance (precedences, machine capacity) and never
// regresses the list-scheduling incumbent it starts from.
func TestPortfolioValidAndNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		inst := randomLagInstance(rng, 60+trial*30, 2)
		list, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Portfolio(inst, testPortfolioOpts(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if res.Schedule.Makespan > list.Makespan {
			t.Fatalf("trial %d: portfolio %d worse than list %d", trial, res.Schedule.Makespan, list.Makespan)
		}
		if res.Schedule.Makespan < res.LowerBound {
			t.Fatalf("trial %d: makespan %d below lower bound %d", trial, res.Schedule.Makespan, res.LowerBound)
		}
		if res.Optimal != (res.Schedule.Makespan == res.LowerBound) {
			t.Fatalf("trial %d: optimal flag %v inconsistent (makespan %d, lb %d)",
				trial, res.Optimal, res.Schedule.Makespan, res.LowerBound)
		}
	}
}

// TestPortfolioLNSOnlySchedulesValid pushes all the weight onto the LNS
// workers (one token tabu intensifier, several window re-solvers) so
// the splice path — carve window, exact re-solve, priority-value
// permutation, global re-evaluation — is exercised and its accepted
// schedules are validated against the original instance.
func TestPortfolioLNSOnlySchedulesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		inst := randomLagInstance(rng, 90, 2)
		res, err := Portfolio(inst, PortfolioOptions{
			TabuWorkers: 1,
			LNSWorkers:  4,
			Rounds:      4,
			TabuIters:   1,
			Window:      15,
			BnBNodes:    20_000,
			Seed:        int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
	}
}

// TestPortfolioEmptyInstance covers the n==0 fast path.
func TestPortfolioEmptyInstance(t *testing.T) {
	res, err := Portfolio(&Instance{Machines: 2}, testPortfolioOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 0 || !res.Optimal {
		t.Fatalf("empty instance: %+v", res)
	}
}

// TestPortfolioStopsAtLowerBound: an instance the list heuristic
// already solves optimally must come back Optimal with zero rounds
// spent searching.
func TestPortfolioStopsAtLowerBound(t *testing.T) {
	// A pure chain: list scheduling is trivially optimal.
	inst := &Instance{Machines: 1}
	for i := 0; i < 6; i++ {
		inst.Tasks = append(inst.Tasks, Task{Machine: 0, Tail: 1})
		if i > 0 {
			inst.Precs = append(inst.Precs, Prec{Before: i - 1, After: i, Lag: 1})
		}
	}
	res, err := Portfolio(inst, testPortfolioOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("chain not optimal: %+v", res)
	}
	if res.RoundsRun != 0 {
		t.Fatalf("spent %d rounds on an already-optimal incumbent", res.RoundsRun)
	}
}

// TestPortfolioProgressEvents checks the observer trajectory: an
// initial incumbent, monotonically improving incumbents, a heartbeat
// per round, and a final Done carrying the result.
func TestPortfolioProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomLagInstance(rng, 100, 2)
	var events []Progress
	opts := testPortfolioOpts(7)
	opts.Progress = func(p Progress) { events = append(events, p) }
	res, err := Portfolio(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	if events[0].Kind != ProgressIncumbent {
		t.Fatalf("first event %+v, want initial incumbent", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != ProgressDone || last.Makespan != res.Schedule.Makespan {
		t.Fatalf("last event %+v, want Done with makespan %d", last, res.Schedule.Makespan)
	}
	prev := -1
	incumbents := 0
	for _, e := range events {
		if e.Kind != ProgressIncumbent {
			continue
		}
		incumbents++
		if prev >= 0 && e.Makespan >= prev {
			t.Fatalf("incumbent not improving: %d after %d", e.Makespan, prev)
		}
		prev = e.Makespan
	}
	if incumbents != 1+res.Improvements {
		t.Fatalf("%d incumbent events, want initial + %d improvements", incumbents, res.Improvements)
	}
}

// TestWorkerSeedDecorrelated: the per-(round, worker) seeds must be
// pairwise distinct over a realistic grid — identical seeds would make
// "diversified" restarts search the same trajectory.
func TestWorkerSeedDecorrelated(t *testing.T) {
	seen := map[int64][2]int{}
	for r := 0; r < 32; r++ {
		for w := 0; w < 16; w++ {
			s := workerSeed(42, r, w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], r, w, s)
			}
			seen[s] = [2]int{r, w}
		}
	}
}

// TestScheduleHashDiscriminates: the CI fingerprint must move when the
// schedule moves.
func TestScheduleHashDiscriminates(t *testing.T) {
	a := Schedule{Start: []int{0, 1, 2}, Makespan: 3}
	b := Schedule{Start: []int{0, 2, 1}, Makespan: 3}
	c := Schedule{Start: []int{0, 1, 2}, Makespan: 4}
	if a.Hash() == b.Hash() || a.Hash() == c.Hash() {
		t.Fatalf("hash collisions: %016x %016x %016x", a.Hash(), b.Hash(), c.Hash())
	}
	if a.Hash() != (Schedule{Start: []int{0, 1, 2}, Makespan: 3}).Hash() {
		t.Fatal("hash not stable")
	}
}

// TestTabuConcurrentSolvesRaceFree is the concurrency audit promised in
// the Tabu doc comment: many simultaneous solves over ONE shared
// Instance, each with its own seed, must be race-free (the -race CI lane
// runs this package) and bit-identical to a sequential solve with the
// same seed — i.e. all mutable solver state really is per-call.
func TestTabuConcurrentSolvesRaceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	inst := randomLagInstance(rng, 120, 2)
	const workers = 8
	want := make([]Schedule, workers)
	for i := range want {
		s, err := Tabu(inst, int64(i), 60, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	got := make([]Schedule, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = Tabu(inst, int64(i), 60, 0, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i].Makespan != want[i].Makespan {
			t.Fatalf("worker %d: concurrent makespan %d != sequential %d", i, got[i].Makespan, want[i].Makespan)
		}
		for j := range want[i].Start {
			if got[i].Start[j] != want[i].Start[j] {
				t.Fatalf("worker %d: task %d start %d != %d", i, j, got[i].Start[j], want[i].Start[j])
			}
		}
	}
}
