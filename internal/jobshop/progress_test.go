package jobshop

import (
	"math/rand"
	"testing"
)

func TestBranchAndBoundProgressEvents(t *testing.T) {
	// The two-chain instance where the list scheduler is suboptimal, so
	// branch-and-bound actually searches and improves the incumbent.
	inst := &Instance{
		Tasks: []Task{
			{Machine: 0, Tail: 1},
			{Machine: 0, Tail: 1},
			{Machine: 1, Tail: 6},
		},
		Precs:    []Prec{{Before: 0, After: 2, Lag: 1}},
		Machines: 2,
	}
	var events []Progress
	res, err := BranchAndBoundObserved(inst, 1_000_000, func(p Progress) { events = append(events, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	first, last := events[0], events[len(events)-1]
	if first.Kind != ProgressIncumbent {
		t.Fatalf("first event %v, want incumbent", first.Kind)
	}
	if last.Kind != ProgressDone {
		t.Fatalf("last event %v, want done", last.Kind)
	}
	if last.Makespan != res.Schedule.Makespan || last.Optimal != res.Optimal {
		t.Fatalf("done event %+v disagrees with result makespan=%d optimal=%v",
			last, res.Schedule.Makespan, res.Optimal)
	}
	// The incumbent trajectory must be non-increasing and end at the
	// returned makespan; bounds must be non-decreasing.
	prevInc, prevBound := 1<<30, 0
	improvements := 0
	for _, ev := range events {
		switch ev.Kind {
		case ProgressIncumbent:
			if ev.Makespan > prevInc {
				t.Fatalf("incumbent worsened: %d after %d", ev.Makespan, prevInc)
			}
			if ev.Makespan < prevInc {
				improvements++
			}
			prevInc = ev.Makespan
		case ProgressBound:
			if ev.Bound < prevBound {
				t.Fatalf("bound regressed: %d after %d", ev.Bound, prevBound)
			}
			prevBound = ev.Bound
		}
	}
	// List yields 8 on this instance, optimum is 7: the search must have
	// reported the improvement.
	if improvements < 1 {
		t.Fatalf("expected at least one incumbent improvement, events: %+v", events)
	}
}

func TestBranchAndBoundProgressImmediateOptimal(t *testing.T) {
	// On the chain instance list scheduling is already optimal: still
	// expect the initial incumbent and a done event.
	var kinds []ProgressKind
	if _, err := BranchAndBoundObserved(chainInstance(), 1_000_000, func(p Progress) {
		kinds = append(kinds, p.Kind)
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 2 || kinds[0] != ProgressIncumbent || kinds[len(kinds)-1] != ProgressDone {
		t.Fatalf("kinds = %v, want incumbent...done", kinds)
	}
}

func TestBranchAndBoundNilProgress(t *testing.T) {
	// The nil callback path must behave identically to BranchAndBound.
	rng := rand.New(rand.NewSource(77))
	inst := randomInstance(rng, 12, 2)
	a, err := BranchAndBound(inst, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BranchAndBoundObserved(inst, 100_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.Makespan != b.Schedule.Makespan || a.Optimal != b.Optimal || a.Nodes != b.Nodes {
		t.Fatalf("observed(nil) diverges: %+v vs %+v", a, b)
	}
}

func TestTabuProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	inst := randomInstance(rng, 20, 2)
	var events []Progress
	s, err := TabuObserved(inst, 1, 250, 0, 0, func(p Progress) { events = append(events, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least incumbent + done", len(events))
	}
	if events[0].Kind != ProgressIncumbent {
		t.Fatalf("first event %v, want incumbent", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != ProgressDone || last.Makespan != s.Makespan || last.Iteration != 250 {
		t.Fatalf("done event %+v, want makespan %d at iteration 250", last, s.Makespan)
	}
	// Determinism: same seed, same events.
	var replay []Progress
	if _, err := TabuObserved(inst, 1, 250, 0, 0, func(p Progress) { replay = append(replay, p) }); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(events) {
		t.Fatalf("replay produced %d events, want %d", len(replay), len(events))
	}
	for i := range replay {
		if replay[i] != events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, replay[i], events[i])
		}
	}
}
