package jobshop

import (
	"math/rand"
	"testing"
)

// chainInstance: t0 -> t1 -> t2 on one machine, lag 3 each, tail 3.
func chainInstance() *Instance {
	return &Instance{
		Tasks: []Task{
			{Machine: 0, Tail: 3},
			{Machine: 0, Tail: 3},
			{Machine: 0, Tail: 1},
		},
		Precs: []Prec{
			{Before: 0, After: 1, Lag: 3},
			{Before: 1, After: 2, Lag: 3},
		},
		Machines: 1,
	}
}

func TestListScheduleChain(t *testing.T) {
	inst := chainInstance()
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
	// Optimal: starts 0, 3, 6; makespan 7.
	if s.Makespan != 7 {
		t.Errorf("chain makespan = %d, want 7", s.Makespan)
	}
}

func TestListScheduleMachineContention(t *testing.T) {
	// 5 independent unit tasks on one machine, tail 1: makespan 5.
	inst := &Instance{Machines: 1}
	for i := 0; i < 5; i++ {
		inst.Tasks = append(inst.Tasks, Task{Machine: 0, Tail: 1})
	}
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst, s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 5 {
		t.Errorf("makespan = %d, want 5", s.Makespan)
	}
}

func TestListScheduleTwoMachines(t *testing.T) {
	// Two independent chains, one per machine: they run in parallel.
	inst := &Instance{
		Tasks: []Task{
			{Machine: 0, Tail: 2}, {Machine: 0, Tail: 2},
			{Machine: 1, Tail: 2}, {Machine: 1, Tail: 2},
		},
		Precs: []Prec{
			{Before: 0, After: 1, Lag: 2},
			{Before: 2, After: 3, Lag: 2},
		},
		Machines: 2,
	}
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 4 {
		t.Errorf("makespan = %d, want 4", s.Makespan)
	}
}

func TestReleaseDates(t *testing.T) {
	inst := &Instance{
		Tasks:    []Task{{Machine: 0, Tail: 1, Release: 10}},
		Machines: 1,
	}
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 10 || s.Makespan != 11 {
		t.Errorf("release date ignored: start=%d makespan=%d", s.Start[0], s.Makespan)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	inst := chainInstance()
	good, _ := SolveList(inst)
	if err := Validate(inst, good); err != nil {
		t.Fatal(err)
	}
	// Precedence violation.
	bad := Schedule{Start: []int{0, 1, 6}, Makespan: 7}
	if Validate(inst, bad) == nil {
		t.Error("precedence violation not caught")
	}
	// Machine double-booking.
	inst2 := &Instance{
		Tasks:    []Task{{Machine: 0, Tail: 1}, {Machine: 0, Tail: 1}},
		Machines: 1,
	}
	if Validate(inst2, Schedule{Start: []int{0, 0}, Makespan: 1}) == nil {
		t.Error("double booking not caught")
	}
	// Wrong makespan.
	if Validate(inst2, Schedule{Start: []int{0, 1}, Makespan: 99}) == nil {
		t.Error("wrong makespan not caught")
	}
	// Release violation.
	inst3 := &Instance{Tasks: []Task{{Machine: 0, Tail: 1, Release: 5}}, Machines: 1}
	if Validate(inst3, Schedule{Start: []int{0}, Makespan: 1}) == nil {
		t.Error("release violation not caught")
	}
	// Length mismatch.
	if Validate(inst, Schedule{Start: []int{0}, Makespan: 1}) == nil {
		t.Error("length mismatch not caught")
	}
}

func TestCycleDetection(t *testing.T) {
	inst := &Instance{
		Tasks:    []Task{{Machine: 0, Tail: 1}, {Machine: 0, Tail: 1}},
		Precs:    []Prec{{Before: 0, After: 1, Lag: 1}, {Before: 1, After: 0, Lag: 1}},
		Machines: 1,
	}
	if _, err := SolveList(inst); err == nil {
		t.Error("cycle not detected")
	}
	if _, err := CriticalPathPriorities(inst); err == nil {
		t.Error("cycle not detected by priorities")
	}
}

// randomInstance builds a random layered DAG instance.
func randomInstance(rng *rand.Rand, n, machines int) *Instance {
	inst := &Instance{Machines: machines}
	for i := 0; i < n; i++ {
		inst.Tasks = append(inst.Tasks, Task{
			Machine: rng.Intn(machines),
			Tail:    1 + rng.Intn(3),
			Release: rng.Intn(3),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(n) < 2 {
				inst.Precs = append(inst.Precs, Prec{Before: i, After: j, Lag: 1 + rng.Intn(3)})
			}
		}
	}
	return inst
}

func TestListScheduleRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		inst := randomInstance(rng, 5+rng.Intn(30), 1+rng.Intn(3))
		s, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBranchAndBoundOptimalOnKnown(t *testing.T) {
	inst := chainInstance()
	res, err := BranchAndBound(inst, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Schedule.Makespan != 7 {
		t.Errorf("BnB chain: optimal=%v makespan=%d, want true/7", res.Optimal, res.Schedule.Makespan)
	}
	// A case where the greedy list scheduler is suboptimal: two chains on
	// one machine where issuing the short-priority task first hurts.
	inst2 := &Instance{
		Tasks: []Task{
			{Machine: 0, Tail: 1}, // 0: feeds long chain on machine 1
			{Machine: 0, Tail: 1}, // 1: independent
			{Machine: 1, Tail: 6}, // 2: long successor of 0
		},
		Precs:    []Prec{{Before: 0, After: 2, Lag: 1}},
		Machines: 2,
	}
	res2, err := BranchAndBound(inst2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(inst2, res2.Schedule); err != nil {
		t.Fatal(err)
	}
	if !res2.Optimal || res2.Schedule.Makespan != 7 {
		t.Errorf("BnB: optimal=%v makespan=%d, want true/7", res2.Optimal, res2.Schedule.Makespan)
	}
}

func TestBranchAndBoundNeverWorseThanList(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 6+rng.Intn(12), 2)
		list, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BranchAndBound(inst, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, res.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Schedule.Makespan > list.Makespan {
			t.Fatalf("trial %d: BnB %d worse than list %d", trial, res.Schedule.Makespan, list.Makespan)
		}
		if res.Optimal && res.Schedule.Makespan < res.LowerBound {
			t.Fatalf("trial %d: makespan below proven lower bound", trial)
		}
	}
}

func TestBranchAndBoundBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	inst := randomInstance(rng, 40, 2)
	res, err := BranchAndBound(inst, 10) // tiny budget
	if err != nil {
		t.Fatal(err)
	}
	// Must still return a valid (heuristic) schedule.
	if err := Validate(inst, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealValidAndNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, 10+rng.Intn(20), 2)
		list, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		ann, err := Anneal(inst, int64(trial), 300)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(inst, ann); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ann.Makespan > list.Makespan {
			t.Fatalf("trial %d: anneal %d worse than its list start %d", trial, ann.Makespan, list.Makespan)
		}
	}
}

func TestLowerBoundSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 5+rng.Intn(20), 2)
		lb, err := LowerBound(inst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SolveList(inst)
		if err != nil {
			t.Fatal(err)
		}
		if lb > s.Makespan {
			t.Fatalf("trial %d: lower bound %d exceeds feasible makespan %d", trial, lb, s.Makespan)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	inst := &Instance{Machines: 1}
	s, err := SolveList(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 {
		t.Error("empty instance should have zero makespan")
	}
	res, err := BranchAndBound(inst, 100)
	if err != nil || !res.Optimal {
		t.Error("empty instance should solve optimally")
	}
}

func BenchmarkListSchedule1000(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveList(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchAndBound28(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	inst := randomInstance(rng, 28, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BranchAndBound(inst, 500_000); err != nil {
			b.Fatal(err)
		}
	}
}
