// Package jobshop provides a job-shop / resource-constrained scheduling
// solver: the in-repo substitute for the PySchedule + IBM CP Optimizer
// pair the paper uses in its automated instruction-scheduling flow
// (Section III-C, Step 3).
//
// The model matches what instruction scheduling for a pipelined datapath
// needs: every task occupies one machine (functional unit issue slot) for
// exactly one time unit, and precedence edges carry lags (the producing
// unit's pipeline latency). The objective is the makespan
// max_i (start_i + tail_i), where tail_i is the task's result latency.
//
// Three solvers are provided:
//
//   - ListSchedule: deterministic greedy list scheduling under a priority
//     vector (critical-path priorities by default); linear time, used for
//     full scalar-multiplication traces with thousands of operations.
//   - BranchAndBound: exact makespan minimization with CP-style pruning
//     (precedence-propagated release dates, machine-load and critical-path
//     lower bounds); practical for block-sized instances like the paper's
//     Table I and proves optimality.
//   - Anneal: simulated annealing over priority vectors, refining the list
//     schedule when exact search is out of reach.
package jobshop

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Task is an operation bound to one machine.
type Task struct {
	// Machine is the index of the (unary) machine the task issues on.
	Machine int
	// Dur is the machine occupancy: the number of consecutive time units
	// the machine is busy (the issue interval of a partially pipelined
	// unit). Zero means 1.
	Dur int
	// Tail is the task's result latency: its successors (and the
	// makespan) see the result Tail time units after the start.
	Tail int
	// Release is the earliest permitted start time.
	Release int
}

// dur returns the effective occupancy of a task.
func (t Task) dur() int {
	if t.Dur <= 0 {
		return 1
	}
	return t.Dur
}

// Prec is a precedence constraint: start[After] >= start[Before] + Lag.
type Prec struct {
	Before, After int
	Lag           int
}

// Instance is a scheduling problem.
type Instance struct {
	Tasks    []Task
	Precs    []Prec
	Machines int
}

// Schedule assigns a start time to every task.
type Schedule struct {
	Start    []int
	Makespan int
}

// Validate checks that s satisfies every constraint of inst and that the
// recorded makespan is correct. It returns a descriptive error on the
// first violation found.
func Validate(inst *Instance, s Schedule) error {
	if len(s.Start) != len(inst.Tasks) {
		return fmt.Errorf("jobshop: schedule has %d starts for %d tasks", len(s.Start), len(inst.Tasks))
	}
	// Release dates and machine capacity (occupancy-aware).
	type slot struct{ machine, time int }
	used := make(map[slot]int, len(inst.Tasks))
	makespan := 0
	for i, t := range inst.Tasks {
		st := s.Start[i]
		if st < t.Release {
			return fmt.Errorf("jobshop: task %d starts at %d before release %d", i, st, t.Release)
		}
		for dt := 0; dt < t.dur(); dt++ {
			k := slot{t.Machine, st + dt}
			if prev, ok := used[k]; ok {
				return fmt.Errorf("jobshop: tasks %d and %d overlap on machine %d at time %d", prev, i, t.Machine, st+dt)
			}
			used[k] = i
		}
		if end := st + t.Tail; end > makespan {
			makespan = end
		}
	}
	for _, p := range inst.Precs {
		if s.Start[p.After] < s.Start[p.Before]+p.Lag {
			return fmt.Errorf("jobshop: precedence %d->%d (lag %d) violated: %d < %d+%d",
				p.Before, p.After, p.Lag, s.Start[p.After], s.Start[p.Before], p.Lag)
		}
	}
	if makespan != s.Makespan {
		return fmt.Errorf("jobshop: recorded makespan %d, actual %d", s.Makespan, makespan)
	}
	return nil
}

// succs builds adjacency lists of successor edges.
func (inst *Instance) succs() [][]Prec {
	out := make([][]Prec, len(inst.Tasks))
	for _, p := range inst.Precs {
		out[p.Before] = append(out[p.Before], p)
	}
	return out
}

// preds builds adjacency lists of predecessor edges.
func (inst *Instance) preds() [][]Prec {
	out := make([][]Prec, len(inst.Tasks))
	for _, p := range inst.Precs {
		out[p.After] = append(out[p.After], p)
	}
	return out
}

// topoOrder returns a topological order of the precedence DAG, or an
// error if the precedences contain a cycle.
func (inst *Instance) topoOrder() ([]int, error) {
	n := len(inst.Tasks)
	indeg := make([]int, n)
	for _, p := range inst.Precs {
		if p.Before < 0 || p.Before >= n || p.After < 0 || p.After >= n {
			return nil, fmt.Errorf("jobshop: precedence references task out of range")
		}
		indeg[p.After]++
	}
	succ := inst.succs()
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, p := range succ[v] {
			indeg[p.After]--
			if indeg[p.After] == 0 {
				queue = append(queue, p.After)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("jobshop: precedence graph has a cycle")
	}
	return order, nil
}

// CriticalPathPriorities returns, for each task, the length of the
// longest lag-weighted path from the task to any sink, including the
// task's own tail. Scheduling in decreasing priority order is the classic
// critical-path heuristic.
func CriticalPathPriorities(inst *Instance) ([]int, error) {
	order, err := inst.topoOrder()
	if err != nil {
		return nil, err
	}
	succ := inst.succs()
	prio := make([]int, len(inst.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := inst.Tasks[v].Tail
		for _, p := range succ[v] {
			if c := p.Lag + prio[p.After]; c > best {
				best = c
			}
		}
		prio[v] = best
	}
	return prio, nil
}

// earliestStarts propagates release dates through the precedence DAG,
// ignoring machine capacity (the "infinite resources" relaxation).
func (inst *Instance) earliestStarts(order []int) []int {
	est := make([]int, len(inst.Tasks))
	for i, t := range inst.Tasks {
		est[i] = t.Release
	}
	succ := inst.succs()
	for _, v := range order {
		for _, p := range succ[v] {
			if est[v]+p.Lag > est[p.After] {
				est[p.After] = est[v] + p.Lag
			}
		}
	}
	return est
}

// ListSchedule builds a feasible schedule greedily: at each time step,
// among the precedence-ready tasks, the highest-priority task is issued
// on each free machine. Ties break by task index for determinism.
//
// The implementation is event-driven (O((n+E) log n) instead of the
// time-stepped O(makespan * n) reference scan) so local-search solvers
// can afford thousands of evaluations on full scalar-multiplication
// traces; listScheduleRef keeps the original scan and the equivalence
// test in jobshop_test.go pins the two bit-identical.
func ListSchedule(inst *Instance, prio []int) (Schedule, error) {
	ev, err := newEvaluator(inst)
	if err != nil {
		return Schedule{}, err
	}
	return ev.scheduleCopy(prio)
}

// listScheduleRef is the original time-stepped list scheduler, kept as
// the semantic reference for the event-driven implementation.
func listScheduleRef(inst *Instance, prio []int) (Schedule, error) {
	n := len(inst.Tasks)
	if len(prio) != n {
		return Schedule{}, fmt.Errorf("jobshop: priority vector length %d != %d tasks", len(prio), n)
	}
	if _, err := inst.topoOrder(); err != nil {
		return Schedule{}, err
	}
	preds := inst.preds()
	start := make([]int, n)
	for i := range start {
		start[i] = -1
	}
	busyUntil := make([]int, inst.Machines)
	// ready time of each task given scheduled predecessors; recomputed lazily.
	scheduled := 0
	// Candidate heap per machine would be faster; n is a few thousand so a
	// simple sorted scan per time step is fine and simpler to verify.
	type cand struct{ id, ready int }
	makespan := 0
	for time := 0; scheduled < n; time++ {
		// Collect ready tasks per machine.
		perMachine := make([][]cand, inst.Machines)
		for i := 0; i < n; i++ {
			if start[i] >= 0 {
				continue
			}
			ready := inst.Tasks[i].Release
			ok := true
			for _, p := range preds[i] {
				if start[p.Before] < 0 {
					ok = false
					break
				}
				if t := start[p.Before] + p.Lag; t > ready {
					ready = t
				}
			}
			if ok && ready <= time {
				m := inst.Tasks[i].Machine
				perMachine[m] = append(perMachine[m], cand{i, ready})
			}
		}
		for m := range perMachine {
			cands := perMachine[m]
			if len(cands) == 0 || busyUntil[m] > time {
				continue
			}
			sort.Slice(cands, func(a, b int) bool {
				if prio[cands[a].id] != prio[cands[b].id] {
					return prio[cands[a].id] > prio[cands[b].id]
				}
				return cands[a].id < cands[b].id
			})
			best := cands[0].id
			start[best] = time
			busyUntil[m] = time + inst.Tasks[best].dur()
			scheduled++
			if end := time + inst.Tasks[best].Tail; end > makespan {
				makespan = end
			}
		}
	}
	return Schedule{Start: start, Makespan: makespan}, nil
}

// SolveList is ListSchedule under critical-path priorities.
func SolveList(inst *Instance) (Schedule, error) {
	prio, err := CriticalPathPriorities(inst)
	if err != nil {
		return Schedule{}, err
	}
	return ListSchedule(inst, prio)
}

// Anneal refines a priority vector by simulated annealing: random
// perturbations of task priorities, re-running the list scheduler, and
// accepting improvements (and occasional regressions, cooling over time).
// Deterministic for a fixed seed.
func Anneal(inst *Instance, seed int64, iters int) (Schedule, error) {
	base, err := CriticalPathPriorities(inst)
	if err != nil {
		return Schedule{}, err
	}
	cur := make([]int, len(base))
	copy(cur, base)
	bestSched, err := ListSchedule(inst, cur)
	if err != nil {
		return Schedule{}, err
	}
	curSpan := bestSched.Makespan
	rng := rand.New(rand.NewSource(seed))
	n := len(inst.Tasks)
	if n == 0 {
		return bestSched, nil
	}
	temp := float64(curSpan) / 8
	if temp < 1 {
		temp = 1
	}
	for it := 0; it < iters; it++ {
		next := make([]int, n)
		copy(next, cur)
		// Perturb a few tasks' priorities.
		for j := 0; j < 1+rng.Intn(3); j++ {
			i := rng.Intn(n)
			next[i] += rng.Intn(2*len(base)+1) - len(base)
		}
		s, err := ListSchedule(inst, next)
		if err != nil {
			return Schedule{}, err
		}
		delta := s.Makespan - curSpan
		if delta <= 0 || rng.Float64() < annealAccept(delta, temp) {
			cur = next
			curSpan = s.Makespan
			if s.Makespan < bestSched.Makespan {
				bestSched = s
			}
		}
		temp *= 0.995
		if temp < 0.5 {
			temp = 0.5
		}
	}
	return bestSched, nil
}

func annealAccept(delta int, temp float64) float64 {
	// exp(-delta/temp) without importing math for a hot path: a cheap
	// rational approximation is enough for an acceptance probability.
	x := float64(delta) / temp
	if x > 30 {
		return 0
	}
	// exp(-x) ~= 1/(1+x+x^2/2+x^3/6) for moderate x.
	return 1 / (1 + x + x*x/2 + x*x*x/6)
}
