package jobshop

import (
	"math/rand"
)

// Tabu refines a priority vector by tabu search: each iteration samples
// a neighborhood of single-task priority perturbations, moves to the
// best neighbor whose perturbed task is not tabu (accepting uphill moves
// when stuck), and marks the moved task tabu for a fixed tenure. An
// aspiration rule overrides the tabu when a move beats the incumbent.
// Deterministic for a fixed seed.
//
// Concurrency audit (the portfolio runs many of these in parallel on
// one Instance): every piece of mutable state — the *rand.Rand, the
// current/best priority vectors, the tabu tenure table, and the list
// scheduling evaluator with its scratch buffers — is created per call
// and never escapes; the shared *Instance is only ever read. Concurrent
// Tabu/TabuObserved calls on one instance are therefore race-free,
// which TestTabuConcurrentSolvesRaceFree pins under -race.
func Tabu(inst *Instance, seed int64, iters, neighborhood, tenure int) (Schedule, error) {
	return TabuObserved(inst, seed, iters, neighborhood, tenure, nil)
}

// tabuHeartbeat is the iteration interval between ProgressIteration
// events.
const tabuHeartbeat = 100

// TabuObserved is Tabu with progress reporting: fn (when non-nil)
// receives the initial incumbent, every incumbent improvement with the
// iteration it occurred at, periodic iteration heartbeats, and a final
// ProgressDone.
func TabuObserved(inst *Instance, seed int64, iters, neighborhood, tenure int, fn ProgressFunc) (Schedule, error) {
	base, err := CriticalPathPriorities(inst)
	if err != nil {
		return Schedule{}, err
	}
	if len(inst.Tasks) == 0 {
		return SolveList(inst)
	}
	ev, err := newEvaluator(inst)
	if err != nil {
		return Schedule{}, err
	}
	// Local RNG: never the shared global source, so concurrent solves
	// stay deterministic per seed and race-free.
	rng := rand.New(rand.NewSource(seed))
	cur := append([]int(nil), base...)
	_, best, err := tabuSearch(ev, cur, rng, iters, neighborhood, tenure, fn)
	if err != nil {
		return Schedule{}, err
	}
	fn.emit(Progress{Kind: ProgressDone, Makespan: best.Makespan, Iteration: iters})
	return best, nil
}

// tabuSearch is the core loop shared by TabuObserved and the portfolio
// tabu workers. It refines cur in place using the caller's evaluator
// and RNG (both owned exclusively by this call) and returns the best
// priority vector found together with its schedule. fn (when non-nil)
// receives the initial incumbent, improvements, and heartbeats; the
// final ProgressDone is the caller's to emit.
func tabuSearch(ev *evaluator, cur []int, rng *rand.Rand, iters, neighborhood, tenure int, fn ProgressFunc) ([]int, Schedule, error) {
	if neighborhood <= 0 {
		neighborhood = 12
	}
	if tenure <= 0 {
		tenure = 8
	}
	n := ev.n
	best, err := ev.scheduleCopy(cur)
	if err != nil {
		return nil, Schedule{}, err
	}
	bestPrio := append([]int(nil), cur...)
	fn.emit(Progress{Kind: ProgressIncumbent, Makespan: best.Makespan})
	tabuUntil := make([]int, n)

	for it := 0; it < iters; it++ {
		if it > 0 && it%tabuHeartbeat == 0 {
			fn.emit(Progress{Kind: ProgressIteration, Makespan: best.Makespan, Iteration: it})
		}
		type move struct{ task, delta, makespan int }
		bestMove := move{task: -1}
		for j := 0; j < neighborhood; j++ {
			task := rng.Intn(n)
			// Mostly fine-grained nudges (a few ranks), with an
			// occasional large kick to escape basins: on full traces
			// small deltas dominate the yield per evaluation — a random
			// ±n jump almost always wrecks the schedule.
			width := tabuMoveSpan
			if rng.Intn(8) == 0 {
				width = tabuKickSpan
			}
			delta := 1 + rng.Intn(width)
			if rng.Intn(2) == 0 {
				delta = -delta
			}
			// Evaluate the single-task perturbation in place (the
			// evaluator never retains prio) and revert.
			cur[task] += delta
			_, makespan, err := ev.run(cur)
			cur[task] -= delta
			if err != nil {
				return nil, Schedule{}, err
			}
			aspires := makespan < best.Makespan
			if tabuUntil[task] > it && !aspires {
				continue
			}
			if bestMove.task == -1 || makespan < bestMove.makespan {
				bestMove = move{task, delta, makespan}
			}
		}
		if bestMove.task == -1 {
			continue // whole neighborhood tabu; retry with fresh samples
		}
		cur[bestMove.task] += bestMove.delta
		tabuUntil[bestMove.task] = it + tenure
		if bestMove.makespan < best.Makespan {
			// Re-evaluate the accepted move to materialize its schedule
			// (the neighborhood scan only kept makespans).
			starts, got, err := ev.run(cur)
			if err != nil {
				return nil, Schedule{}, err
			}
			best = Schedule{Start: append([]int(nil), starts...), Makespan: got}
			copy(bestPrio, cur)
			fn.emit(Progress{Kind: ProgressIncumbent, Makespan: best.Makespan, Iteration: it})
		}
	}
	return bestPrio, best, nil
}

const (
	// tabuMoveSpan bounds the usual priority nudge of a tabu move;
	// tabuKickSpan the occasional (1 in 8) basin-escaping kick.
	tabuMoveSpan = 16
	tabuKickSpan = 256
)
