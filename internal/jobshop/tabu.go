package jobshop

import (
	"math/rand"
)

// Tabu refines a priority vector by tabu search: each iteration samples
// a neighborhood of single-task priority perturbations, moves to the
// best neighbor whose perturbed task is not tabu (accepting uphill moves
// when stuck), and marks the moved task tabu for a fixed tenure. An
// aspiration rule overrides the tabu when a move beats the incumbent.
// Deterministic for a fixed seed.
func Tabu(inst *Instance, seed int64, iters, neighborhood, tenure int) (Schedule, error) {
	return TabuObserved(inst, seed, iters, neighborhood, tenure, nil)
}

// tabuHeartbeat is the iteration interval between ProgressIteration
// events.
const tabuHeartbeat = 100

// TabuObserved is Tabu with progress reporting: fn (when non-nil)
// receives the initial incumbent, every incumbent improvement with the
// iteration it occurred at, periodic iteration heartbeats, and a final
// ProgressDone.
func TabuObserved(inst *Instance, seed int64, iters, neighborhood, tenure int, fn ProgressFunc) (Schedule, error) {
	if neighborhood <= 0 {
		neighborhood = 12
	}
	if tenure <= 0 {
		tenure = 8
	}
	base, err := CriticalPathPriorities(inst)
	if err != nil {
		return Schedule{}, err
	}
	n := len(inst.Tasks)
	if n == 0 {
		return SolveList(inst)
	}
	cur := append([]int(nil), base...)
	best, err := ListSchedule(inst, cur)
	if err != nil {
		return Schedule{}, err
	}
	curSpan := best.Makespan
	fn.emit(Progress{Kind: ProgressIncumbent, Makespan: best.Makespan})
	tabuUntil := make([]int, n)
	rng := rand.New(rand.NewSource(seed))
	span := len(base) + 1

	for it := 0; it < iters; it++ {
		if it > 0 && it%tabuHeartbeat == 0 {
			fn.emit(Progress{Kind: ProgressIteration, Makespan: best.Makespan, Iteration: it})
		}
		type move struct {
			task, delta, makespan int
			sched                 Schedule
		}
		bestMove := move{task: -1}
		for j := 0; j < neighborhood; j++ {
			task := rng.Intn(n)
			delta := rng.Intn(2*span+1) - span
			if delta == 0 {
				delta = 1
			}
			cand := append([]int(nil), cur...)
			cand[task] += delta
			s, err := ListSchedule(inst, cand)
			if err != nil {
				return Schedule{}, err
			}
			aspires := s.Makespan < best.Makespan
			if tabuUntil[task] > it && !aspires {
				continue
			}
			if bestMove.task == -1 || s.Makespan < bestMove.makespan {
				bestMove = move{task, delta, s.Makespan, s}
			}
		}
		if bestMove.task == -1 {
			continue // whole neighborhood tabu; retry with fresh samples
		}
		cur[bestMove.task] += bestMove.delta
		curSpan = bestMove.makespan
		tabuUntil[bestMove.task] = it + tenure
		if curSpan < best.Makespan {
			best = bestMove.sched
			fn.emit(Progress{Kind: ProgressIncumbent, Makespan: best.Makespan, Iteration: it})
		}
	}
	fn.emit(Progress{Kind: ProgressDone, Makespan: best.Makespan, Iteration: iters})
	return best, nil
}
