package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

// Outcome classifies one fault-injected scalar multiplication.
type Outcome string

const (
	// OutcomeDetected: the run failed loudly — either the hazard
	// checker tripped (structural corruption) or the cheap end-of-SM
	// result validation rejected the point. The engine's retry /
	// degradation machinery sees exactly this class.
	OutcomeDetected Outcome = "detected"
	// OutcomeSilent: the run completed, the cheap checks passed, but
	// the result differs from the functional oracle — silent data
	// corruption, the worst case for a serving system.
	OutcomeSilent Outcome = "silent"
	// OutcomeMasked: the fault had no architectural effect (dead
	// register, overwritten before use, or it never fired).
	OutcomeMasked Outcome = "masked"
)

// Detectors (the Trial.Detector values for OutcomeDetected).
const (
	// DetectorHazard: rtl.Run's structural hazard checker refused the
	// corrupted run (double issue, bad register address, missing
	// output, ...). ROM corruption mostly dies here.
	DetectorHazard = "hazard"
	// DetectorOnCurve: the cheap end-of-SM validation (non-degenerate,
	// on-curve) rejected the decoded point.
	DetectorOnCurve = "oncurve"
)

// CampaignConfig parametrizes a seeded fault campaign.
type CampaignConfig struct {
	// Seed drives every random choice; equal seeds (with equal Trials
	// and Sites on the same processor build) reproduce the campaign
	// byte for byte.
	Seed int64
	// Trials is the number of faults injected, one full scalar
	// multiplication each. Default 64.
	Trials int
	// Sites restricts the sweep; empty means AllSites().
	Sites []Site
	// K is the scalar multiplied in every trial; zero selects
	// core.DefaultTraceScalar(). One fixed scalar keeps trials
	// comparable: only the fault varies.
	K scalar.Scalar
	// Registry, when non-nil, receives the campaign's fault.* counters.
	Registry *telemetry.Registry
}

// SiteTally aggregates outcomes for one site.
type SiteTally struct {
	Trials   int `json:"trials"`
	Detected int `json:"detected"`
	Silent   int `json:"silent"`
	Masked   int `json:"masked"`
}

// Trial is one campaign entry: the (replayable) fault and its outcome.
type Trial struct {
	Fault    Fault   `json:"fault"`
	Outcome  Outcome `json:"outcome"`
	Detector string  `json:"detector,omitempty"`
	// Fired counts the fault's architecturally visible applications
	// during the run; a masked outcome with Fired=0 means the fault
	// never even touched live state.
	Fired int `json:"fired"`
}

// CampaignMeta is the replay recipe. Validators (scripts/benchcheck)
// reject fault reports that carry corruption rates without it.
type CampaignMeta struct {
	Seed   int64    `json:"seed"`
	Trials int      `json:"trials"`
	Sites  []string `json:"sites"`
	// Validation names the cheap detector classified against
	// (core.Validate.String of the structural check level).
	Validation string `json:"validation"`
}

// Report is the deterministic campaign result: marshaling it twice for
// the same config and processor build yields identical bytes (maps
// serialize sorted, floats derive from integer tallies).
type Report struct {
	Campaign CampaignMeta `json:"campaign"`
	Detected int          `json:"detected"`
	Silent   int          `json:"silent"`
	Masked   int          `json:"masked"`
	// DetectionCoverage is detected / (detected + silent): the share of
	// architecturally effective faults the cheap checks caught. 1 when
	// no fault had any effect.
	DetectionCoverage float64              `json:"detection_coverage"`
	BySite            map[string]SiteTally `json:"by_site"`
	Trials            []Trial              `json:"trial_log"`
}

// splitmix64 is the campaign RNG: tiny, seedable, stable across Go
// releases (unlike math/rand ordering guarantees, which the replayable-
// report contract cannot depend on).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// Campaign sweeps cfg.Trials seeded faults over [K]G on p and
// classifies every outcome. Each trial runs one fault on a fresh
// executor; the shared processor is never mutated, so campaigns may run
// concurrently with normal serving.
func Campaign(p *core.Processor, cfg CampaignConfig) (*Report, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 64
	}
	sites := cfg.Sites
	if len(sites) == 0 {
		sites = AllSites()
	}
	k := cfg.K
	if k.IsZero() {
		k = core.DefaultTraceScalar()
	}
	base := curve.GeneratorAffine()
	want := curve.ScalarMult(k, curve.FromAffine(base)).Affine()
	prog := p.Program()

	rep := &Report{
		Campaign: CampaignMeta{
			Seed:       cfg.Seed,
			Trials:     cfg.Trials,
			Validation: core.ValidateOnCurve.String(),
		},
		BySite: map[string]SiteTally{},
	}
	for _, s := range sites {
		rep.Campaign.Sites = append(rep.Campaign.Sites, s.String())
	}

	rng := splitmix64(cfg.Seed)
	for i := 0; i < cfg.Trials; i++ {
		f := randomFault(&rng, sites, prog.Makespan, prog.NumRegs)
		inj := NewInjector([]Fault{f}, cfg.Registry)
		ex := p.NewExecutor()
		ex.SetInjector(inj)
		got, _, err := ex.ScalarMultPoint(k, base)

		tr := Trial{Fault: f}
		switch {
		case err != nil:
			tr.Outcome, tr.Detector = OutcomeDetected, DetectorHazard
		case core.ValidateAffine(got) != nil:
			tr.Outcome, tr.Detector = OutcomeDetected, DetectorOnCurve
		case !got.X.Equal(want.X) || !got.Y.Equal(want.Y):
			tr.Outcome = OutcomeSilent
		default:
			tr.Outcome = OutcomeMasked
		}
		tr.Fired = inj.Fired()
		rep.Trials = append(rep.Trials, tr)

		tally := rep.BySite[f.Site.String()]
		tally.Trials++
		switch tr.Outcome {
		case OutcomeDetected:
			rep.Detected++
			tally.Detected++
		case OutcomeSilent:
			rep.Silent++
			tally.Silent++
		default:
			rep.Masked++
			tally.Masked++
		}
		rep.BySite[f.Site.String()] = tally
	}
	if eff := rep.Detected + rep.Silent; eff > 0 {
		rep.DetectionCoverage = float64(rep.Detected) / float64(eff)
	} else {
		rep.DetectionCoverage = 1
	}
	if got := len(rep.Trials); got != cfg.Trials {
		return nil, fmt.Errorf("fault: campaign produced %d trials, want %d", got, cfg.Trials)
	}
	return rep, nil
}

// FindDetected sweeps seeded faults like Campaign but stops at the
// first one whose run the cheap end-of-SM validation rejects (detector
// "oncurve" — hazard-detected faults are skipped). Tests use it to pin
// a concrete, deterministically replayable fault that result validation
// catches; the error reports an exhausted sweep.
func FindDetected(p *core.Processor, cfg CampaignConfig) (Fault, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 64
	}
	sites := cfg.Sites
	if len(sites) == 0 {
		sites = AllSites()
	}
	k := cfg.K
	if k.IsZero() {
		k = core.DefaultTraceScalar()
	}
	base := curve.GeneratorAffine()
	prog := p.Program()
	rng := splitmix64(cfg.Seed)
	for i := 0; i < cfg.Trials; i++ {
		f := randomFault(&rng, sites, prog.Makespan, prog.NumRegs)
		ex := p.NewExecutor()
		ex.SetInjector(NewInjector([]Fault{f}, cfg.Registry))
		got, _, err := ex.ScalarMultPoint(k, base)
		if err == nil && core.ValidateAffine(got) != nil {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("fault: no validation-detected fault in %d trials (seed %d)", cfg.Trials, cfg.Seed)
}

// randomFault draws one fault. The draw order is part of the replay
// contract: (site, cycle, kind, index, bit), each from one RNG step.
func randomFault(rng *splitmix64, sites []Site, makespan, numRegs int) Fault {
	f := Fault{
		Site:  sites[rng.intn(len(sites))],
		Cycle: rng.intn(makespan + 1),
	}
	// Mostly SEUs, with a persistent-defect tail (1/8 each stuck-at).
	switch rng.intn(8) {
	case 0:
		f.Kind = KindStuckAt0
	case 1:
		f.Kind = KindStuckAt1
	default:
		f.Kind = KindTransient
	}
	switch f.Site {
	case SiteRegFile:
		f.Index = uint16(rng.intn(numRegs))
		f.Bit = uint16(rng.intn(WordBits))
	case SiteROM:
		f.Index = uint16(rng.intn(2))
		f.Bit = uint16(rng.intn(ROMBits))
	default:
		f.Bit = uint16(rng.intn(WordBits))
	}
	return f
}
