package fault

import (
	"sync/atomic"
	"testing"

	"repro/internal/fp2"
	"repro/internal/isa"
)

// TestGateArmsAndDisarms pins the pass-through contract: a disarmed
// Gate never consults its inner injector and alters nothing; arming the
// shared switch routes every hook through.
func TestGateArmsAndDisarms(t *testing.T) {
	inner := NewInjector([]Fault{
		{Site: SitePipeMul, Kind: KindStuckAt1, Bit: 0},
	}, nil)
	var armed atomic.Bool
	g := NewGate(inner, &armed)

	v := fp2.Element{} // real-lane bit 0 clear: the stuck-at-1 flips it
	if got := g.Retire(0, isa.UnitMul, 0, v); got != v {
		t.Fatalf("disarmed Retire mutated the value: %+v", got)
	}
	ins := isa.Instr{Unit: isa.UnitMul}
	if got, ok := g.Fetch(0, ins); !ok || got != ins {
		t.Fatalf("disarmed Fetch altered the slot: %+v ok=%v", got, ok)
	}
	if got := g.Forward(0, isa.UnitMul, v); got != v {
		t.Fatalf("disarmed Forward mutated the value: %+v", got)
	}
	if inner.Fired() != 0 {
		t.Fatalf("inner fired %d times while disarmed", inner.Fired())
	}

	armed.Store(true)
	if got := g.Retire(0, isa.UnitMul, 0, v); got == v {
		t.Fatal("armed Retire did not apply the stuck-at fault")
	}
	if inner.Fired() != 1 {
		t.Fatalf("inner fired %d times after one armed retire, want 1", inner.Fired())
	}

	armed.Store(false)
	if got := g.Retire(0, isa.UnitMul, 0, v); got != v {
		t.Fatal("re-disarmed Retire still applying faults")
	}
}
