package fault

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/telemetry"
)

// One processor build per test binary: the trace->schedule->emit
// pipeline is the expensive part, and it is immutable once built.
var (
	procOnce sync.Once
	procVal  *core.Processor
	procErr  error
)

func testProc(t testing.TB) *core.Processor {
	t.Helper()
	procOnce.Do(func() { procVal, procErr = core.New(core.Config{}) })
	if procErr != nil {
		t.Fatal(procErr)
	}
	return procVal
}

func TestMutateWordBitAddressing(t *testing.T) {
	v := fp2.New(fp.SetLimbs(0x0123456789ABCDEF, 0x00FF00FF00FF00FF), fp.SetLimbs(7, 9))
	for _, bit := range []uint16{0, 5, 63, 64, 100, 126, 127, 200, 253} {
		f := Fault{Bit: bit, Kind: KindTransient}
		flipped := f.mutateWord(v)
		if flipped == v {
			t.Fatalf("bit %d: transient flip left the word unchanged", bit)
		}
		// An XOR flip is its own inverse as long as no lane aliased
		// through the Mersenne fold, which these values never do.
		if back := f.mutateWord(flipped); back != v {
			t.Fatalf("bit %d: double flip did not restore the word", bit)
		}
		lane := "real"
		if bit >= 127 {
			lane = "imag"
		}
		other := flipped.B
		same := v.B
		if bit >= 127 {
			other, same = flipped.A, v.A
		}
		if !other.Equal(same) {
			t.Fatalf("bit %d: flip leaked outside the %s lane", bit, lane)
		}
	}
}

func TestMutateWordStuckAt(t *testing.T) {
	v := fp2.New(fp.New(0), fp.New(0))
	set := Fault{Bit: 3, Kind: KindStuckAt1}
	if got := set.mutateWord(v); got == v {
		t.Fatal("stuck-at-1 on a zero bit changed nothing")
	} else if again := set.mutateWord(got); again != got {
		t.Fatal("stuck-at-1 is not idempotent")
	}
	clear := Fault{Bit: 3, Kind: KindStuckAt0}
	if got := clear.mutateWord(v); got != v {
		t.Fatal("stuck-at-0 on an already-zero bit changed the word")
	}
}

// TestMersenneFoldAliasing pins the one representability edge: flipping
// the single zero bit of p-2^k yields the all-ones pattern p, which the
// canonical representation folds to 0 — the same aliasing a 127-bit
// hardware register would exhibit one reduction later.
func TestMersenneFoldAliasing(t *testing.T) {
	p0, p1 := fp.P()
	almost := fp.SetLimbs(p0&^(1<<5), p1) // p - 2^5, canonical
	v := fp2.New(almost, fp.New(0))
	f := Fault{Bit: 5, Kind: KindTransient}
	if got := f.mutateWord(v); !got.A.IsZero() {
		t.Fatalf("flip to the all-ones pattern must fold to 0, got %v", got.A)
	}
}

func TestInjectorBudgetModelsOneShotSEU(t *testing.T) {
	p := testProc(t)
	f := findDetectedRegFileFault(t, p)
	reg := telemetry.NewRegistry()
	inj := NewInjector([]Fault{f}, reg).SetBudget(1)
	ex := p.NewExecutor()
	ex.SetInjector(inj)

	k := core.DefaultTraceScalar()
	g := curve.GeneratorAffine()
	if _, _, err := ex.ScalarMultValidated(k, g, core.ValidateOnCurve); err == nil {
		t.Fatal("first run: the armed fault was not detected")
	}
	if inj.Fired() != 1 {
		t.Fatalf("first run fired %d times, want 1", inj.Fired())
	}
	// The SEU is spent: the retry must run fault-free and validate.
	got, _, err := ex.ScalarMultValidated(k, g, core.ValidateOracle)
	if err != nil {
		t.Fatalf("second run with exhausted budget: %v", err)
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
		t.Fatal("second run result differs from oracle")
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.armed"] != 1 || snap.Counters["fault.fired"] != 1 {
		t.Fatalf("telemetry armed=%d fired=%d, want 1/1",
			snap.Counters["fault.armed"], snap.Counters["fault.fired"])
	}
}

// findDetectedRegFileFault deterministically locates a register-file
// bit flip that the cheap on-curve validation catches (exported to the
// engine tests via FindDetected).
func findDetectedRegFileFault(t testing.TB, p *core.Processor) Fault {
	t.Helper()
	f, err := FindDetected(p, CampaignConfig{Seed: 0xF4017, Trials: 48, Sites: []Site{SiteRegFile}})
	if err != nil {
		t.Fatalf("no validation-detected register-file fault in the sweep: %v", err)
	}
	return f
}

func TestCampaignReplayableByteForByte(t *testing.T) {
	p := testProc(t)
	cfg := CampaignConfig{Seed: 42, Trials: 36}
	r1, err := Campaign(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Campaign(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.MarshalIndent(r1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.MarshalIndent(r2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different campaign reports")
	}

	other, err := Campaign(p, CampaignConfig{Seed: 43, Trials: 36})
	if err != nil {
		t.Fatal(err)
	}
	bo, _ := json.Marshal(other)
	if string(bo) == string(b1) {
		t.Fatal("different seeds produced identical reports (RNG not threaded)")
	}
}

func TestCampaignClassificationReconciles(t *testing.T) {
	p := testProc(t)
	rep, err := Campaign(p, CampaignConfig{Seed: 7, Trials: 40, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Detected + rep.Silent + rep.Masked; got != 40 {
		t.Fatalf("outcomes sum to %d, want 40", got)
	}
	if len(rep.Trials) != 40 {
		t.Fatalf("trial log has %d entries, want 40", len(rep.Trials))
	}
	var bySiteTotal int
	for site, tally := range rep.BySite {
		if tally.Detected+tally.Silent+tally.Masked != tally.Trials {
			t.Fatalf("site %s tally does not reconcile: %+v", site, tally)
		}
		bySiteTotal += tally.Trials
	}
	if bySiteTotal != 40 {
		t.Fatalf("per-site trials sum to %d, want 40", bySiteTotal)
	}
	if rep.Detected == 0 {
		t.Fatal("a 40-trial all-site sweep detected nothing; injection is not reaching the datapath")
	}
	if rep.DetectionCoverage < 0 || rep.DetectionCoverage > 1 {
		t.Fatalf("detection coverage %v outside [0,1]", rep.DetectionCoverage)
	}
	for _, tr := range rep.Trials {
		if tr.Outcome == OutcomeDetected && tr.Detector == "" {
			t.Fatalf("detected trial %v carries no detector", tr.Fault)
		}
		if (tr.Outcome == OutcomeSilent || tr.Outcome == OutcomeDetected) &&
			tr.Detector != DetectorHazard && tr.Fired == 0 {
			t.Fatalf("trial %v affected the result without firing", tr.Fault)
		}
	}
}

// TestROMValidBitSquashFailsLoudly: killing a control word's valid bit
// makes its instruction vanish; the hazard checker (or the output
// completeness check) must refuse the run rather than return a point
// computed from a truncated program.
func TestROMValidBitSquash(t *testing.T) {
	p := testProc(t)
	prog := p.Program()
	first := prog.Instrs[0]
	for _, ins := range prog.Instrs {
		if ins.Cycle < first.Cycle {
			first = ins
		}
	}
	reg := telemetry.NewRegistry()
	inj := NewInjector([]Fault{{
		Cycle: first.Cycle, Site: SiteROM, Index: uint16(first.Unit), Bit: 0, Kind: KindStuckAt0,
	}}, reg)
	ex := p.NewExecutor()
	ex.SetInjector(inj)
	_, _, err := ex.ScalarMultPoint(core.DefaultTraceScalar(), curve.GeneratorAffine())
	if err == nil {
		t.Fatal("run with a squashed first instruction completed silently")
	}
	if got := reg.Snapshot().Counters["fault.squashed_slots"]; got == 0 {
		t.Fatal("squashed-slot telemetry did not record the dead valid bit")
	}
}

func TestValidationSentinelsSurface(t *testing.T) {
	p := testProc(t)
	f := findDetectedRegFileFault(t, p)
	ex := p.NewExecutor()
	ex.SetInjector(NewInjector([]Fault{f}, nil))
	_, _, err := ex.ScalarMultValidated(core.DefaultTraceScalar(), curve.GeneratorAffine(), core.ValidateOnCurve)
	if !errors.Is(err, core.ErrOffCurve) && !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("validation error %v is not a structural-check sentinel", err)
	}
}
