package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/rtl"
	"repro/internal/scalar"
)

// TestCampaignInterpreterParity is the injector half of the
// compiled/interpreted equivalence suite: a seeded campaign classified
// through the production path (executor over a reusable machine, which
// takes the interpreted slow path once an injector is attached) must
// agree trial for trial — same detected/silent/masked counts, same
// per-trial outcome — with an independent replay of every recorded
// fault through rtl.Interpret, the reference interpreter.
func TestCampaignInterpreterParity(t *testing.T) {
	p := testProc(t)
	cfg := CampaignConfig{Seed: 0xC0DE, Trials: 48}
	rep, err := Campaign(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	k := core.DefaultTraceScalar()
	base := curve.GeneratorAffine()
	want := curve.ScalarMult(k, curve.FromAffine(base)).Affine()
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	prog := p.Program()

	var detected, silent, masked int
	for i, tr := range rep.Trials {
		out, _, err := rtl.Interpret(prog, rtl.RunInput{
			Inputs:    map[string]fp2.Element{"P.x": base.X, "P.y": base.Y},
			Rec:       rec,
			Corrected: dec.Corrected,
			Injector:  NewInjector([]Fault{tr.Fault}, nil),
		})
		var got Outcome
		switch {
		case err != nil:
			got = OutcomeDetected
		case core.ValidateAffine(curve.Affine{X: out["x"], Y: out["y"]}) != nil:
			got = OutcomeDetected
		case !out["x"].Equal(want.X) || !out["y"].Equal(want.Y):
			got = OutcomeSilent
		default:
			got = OutcomeMasked
		}
		if got != tr.Outcome {
			t.Fatalf("trial %d (%v): campaign classified %q, interpreter replay %q",
				i, tr.Fault, tr.Outcome, got)
		}
		switch got {
		case OutcomeDetected:
			detected++
		case OutcomeSilent:
			silent++
		default:
			masked++
		}
	}
	if detected != rep.Detected || silent != rep.Silent || masked != rep.Masked {
		t.Fatalf("tallies differ: campaign %d/%d/%d, interpreter replay %d/%d/%d",
			rep.Detected, rep.Silent, rep.Masked, detected, silent, masked)
	}
}
