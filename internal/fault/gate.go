package fault

import (
	"sync/atomic"

	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/rtl"
)

// Gate wraps an rtl.Injector behind an atomic arm switch so a chaos
// campaign can open and close a fault window on a live engine without
// rebuilding it: while disarmed every hook is a transparent pass-
// through, while armed the inner injector sees every call. The switch
// is shared — arming one *atomic.Bool arms every Gate built over it,
// which is how a campaign poisons all of one shard's workers at once.
type Gate struct {
	inner rtl.Injector
	armed *atomic.Bool
}

// NewGate wraps inner behind the shared armed switch.
func NewGate(inner rtl.Injector, armed *atomic.Bool) *Gate {
	return &Gate{inner: inner, armed: armed}
}

// BeginCycle implements rtl.Injector.
func (g *Gate) BeginCycle(cycle int, rf rtl.RegFile) {
	if g.armed.Load() {
		g.inner.BeginCycle(cycle, rf)
	}
}

// Fetch implements rtl.Injector.
func (g *Gate) Fetch(cycle int, ins isa.Instr) (isa.Instr, bool) {
	if g.armed.Load() {
		return g.inner.Fetch(cycle, ins)
	}
	return ins, true
}

// Forward implements rtl.Injector.
func (g *Gate) Forward(cycle int, unit uint8, v fp2.Element) fp2.Element {
	if g.armed.Load() {
		return g.inner.Forward(cycle, unit, v)
	}
	return v
}

// Retire implements rtl.Injector.
func (g *Gate) Retire(cycle int, unit uint8, dst uint16, v fp2.Element) fp2.Element {
	if g.armed.Load() {
		return g.inner.Retire(cycle, unit, dst, v)
	}
	return v
}
