// Package fault is the deterministic fault-injection layer for the
// cycle-accurate cryptoprocessor model. The paper's headline energy
// number (0.327 uJ per scalar multiplication) is earned at 0.32 V —
// deep near-threshold operation where timing upsets and SEUs are the
// dominant reliability concern — yet the published results assume a
// perfect datapath. This package lets the reproduction ask what the
// silicon paper cannot: what happens when the hardware lies.
//
// A Fault is addressed by (cycle, site, bit), so every campaign is
// exactly replayable: the same seed produces the same fault list,
// the same corrupted runs, and byte-identical reports. Faults model
//
//   - single/multi bit flips in register-file words (SiteRegFile),
//   - upsets in the functional units' pipeline output registers
//     (SitePipeMul, SitePipeAdd),
//   - glitched forwarding paths (SiteFwdMul, SiteFwdAdd), and
//   - control-ROM instruction corruption (SiteROM),
//
// each transient (one-shot) or stuck-at-0/1 (persistent from the fault
// cycle on). The Injector implements rtl.Injector and reports fault.*
// telemetry; Campaign sweeps seeded faults over full scalar
// multiplications and classifies every outcome as detected, silent
// corruption, or masked. See docs/FAULTS.md.
package fault

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Site identifies the datapath structure a fault lives in.
type Site uint8

const (
	// SiteRegFile upsets a stored register-file word. Index is the
	// register address; the flip lands before the write-back phase of
	// the fault cycle, so it corrupts the value left by the previous
	// cycle.
	SiteRegFile Site = iota
	// SitePipeMul upsets the multiplier's pipeline output register: the
	// result retiring at the fault cycle is corrupted before it reaches
	// the forwarding port and the register file.
	SitePipeMul
	// SitePipeAdd is the adder/subtractor pipeline output register.
	SitePipeAdd
	// SiteFwdMul glitches the multiplier forwarding path: an operand
	// sourced from the Mout bypass at the fault cycle is corrupted; the
	// register-file copy (if any) stays intact.
	SiteFwdMul
	// SiteFwdAdd is the adder forwarding path.
	SiteFwdAdd
	// SiteROM corrupts a control word as it leaves the program ROM.
	// Index selects the issue slot (isa.UnitMul or isa.UnitAdd), Bit
	// the control-word bit (0..63); flipping the valid bit squashes the
	// slot entirely.
	SiteROM

	numSites
)

var siteNames = [numSites]string{
	"regfile", "pipe_mul", "pipe_add", "fwd_mul", "fwd_add", "rom",
}

// String names the site as used in reports and metrics.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// MarshalJSON renders the site as its name so campaign reports read
// without a decoder ring.
func (s Site) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// AllSites lists every injectable site, in address order.
func AllSites() []Site {
	return []Site{SiteRegFile, SitePipeMul, SitePipeAdd, SiteFwdMul, SiteFwdAdd, SiteROM}
}

// Kind selects the fault's temporal behavior.
type Kind uint8

const (
	// KindTransient applies exactly once, at the fault cycle (an SEU).
	KindTransient Kind = iota
	// KindStuckAt0 forces the bit to 0 at every access from the fault
	// cycle on (a manufacturing or wear-out defect).
	KindStuckAt0
	// KindStuckAt1 forces the bit to 1 from the fault cycle on.
	KindStuckAt1
)

var kindNames = [...]string{"transient", "stuck0", "stuck1"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// WordBits is the fault-addressable width of a GF(p^2) datapath word:
// two 127-bit lanes (p = 2^127 - 1 values are 127 bits wide in the
// register file). Bits 0..126 address the real lane, 127..253 the
// imaginary lane.
const WordBits = 254

// ROMBits is the width of a control word (one 64-bit ROM entry).
const ROMBits = 64

// Fault is one injectable hardware fault, fully determined by its
// fields: campaigns serialize and replay faults by value.
type Fault struct {
	// Cycle is when the fault strikes (transient) or begins (stuck-at).
	Cycle int `json:"cycle"`
	// Site is the datapath structure addressed.
	Site Site `json:"site"`
	// Index narrows the site: the register address for SiteRegFile, the
	// issue slot (isa.UnitMul/isa.UnitAdd) for SiteROM; unused
	// elsewhere.
	Index uint16 `json:"index"`
	// Bit addresses the upset bit: 0..WordBits-1 for datapath words,
	// 0..ROMBits-1 for control words.
	Bit uint16 `json:"bit"`
	// Kind is the temporal behavior.
	Kind Kind `json:"kind"`
}

// String renders the replayable fault address.
func (f Fault) String() string {
	switch f.Site {
	case SiteRegFile:
		return fmt.Sprintf("%s r%d bit %d @cycle %d", f.Kind, f.Index, f.Bit, f.Cycle)
	case SiteROM:
		return fmt.Sprintf("%s rom slot %d bit %d @cycle %d", f.Kind, f.Index, f.Bit, f.Cycle)
	}
	return fmt.Sprintf("%s %s bit %d @cycle %d", f.Kind, f.Site, f.Bit, f.Cycle)
}

// active reports whether the fault applies at cycle: transients fire at
// exactly their cycle, stuck-at faults from it on.
func (f Fault) active(cycle int) bool {
	if f.Kind == KindTransient {
		return cycle == f.Cycle
	}
	return cycle >= f.Cycle
}

// mutateWord applies the fault's bit operation to a datapath word. Lane
// values stay canonical: fp.SetLimbs folds the (unrepresentable) all-
// ones pattern p back to 0, exactly as the datapath's Mersenne
// reduction would on the next pass.
func (f Fault) mutateWord(v fp2.Element) fp2.Element {
	bit := f.Bit % WordBits
	a, b := v.A, v.B
	if bit < 127 {
		a = mutateLane(a, bit, f.Kind)
	} else {
		b = mutateLane(b, bit-127, f.Kind)
	}
	return fp2.New(a, b)
}

func mutateLane(e fp.Element, bit uint16, k Kind) fp.Element {
	lo, hi := e.Limbs()
	target, mask := &lo, uint64(1)<<bit
	if bit >= 64 {
		target, mask = &hi, uint64(1)<<(bit-64)
	}
	switch k {
	case KindTransient:
		*target ^= mask
	case KindStuckAt0:
		*target &^= mask
	case KindStuckAt1:
		*target |= mask
	}
	return fp.SetLimbs(lo, hi)
}

// Injector applies a fixed fault list through the rtl.Injector hook
// points, counting every architecturally visible application (stuck-at
// accesses that leave the word unchanged do not count as fired). One
// Injector serves one goroutine at a time; reuse across sequential runs
// is allowed and is how wall-clock-once SEUs are modeled (see Budget).
type Injector struct {
	faults []Fault
	fired  []int
	// budget caps the total number of applications across the
	// injector's lifetime; <0 is unlimited. A budget of 1 models a true
	// single-event upset: it strikes one run (the engine's retry then
	// executes fault-free).
	budget  int
	firedC  *telemetry.Counter
	squashC *telemetry.Counter
}

// NewInjector builds an injector over faults. reg, when non-nil,
// receives fault.* telemetry: "fault.armed" (faults loaded),
// "fault.fired" (architecturally visible applications), and
// "fault.squashed_slots" (ROM faults that killed an instruction's valid
// bit).
func NewInjector(faults []Fault, reg *telemetry.Registry) *Injector {
	in := &Injector{
		faults: append([]Fault(nil), faults...),
		fired:  make([]int, len(faults)),
		budget: -1,
	}
	if reg != nil {
		reg.Counter("fault.armed").Add(int64(len(faults)))
		in.firedC = reg.Counter("fault.fired")
		in.squashC = reg.Counter("fault.squashed_slots")
	}
	return in
}

// SetBudget caps the total number of applications (negative =
// unlimited) and returns the injector for chaining.
func (in *Injector) SetBudget(n int) *Injector {
	in.budget = n
	return in
}

// Fired returns the total number of architecturally visible fault
// applications so far.
func (in *Injector) Fired() int {
	t := 0
	for _, n := range in.fired {
		t += n
	}
	return t
}

// FiredByFault returns per-fault application counts, index-aligned with
// the constructor's fault list.
func (in *Injector) FiredByFault() []int { return append([]int(nil), in.fired...) }

// spend consumes one application from the budget; it returns false when
// the budget is exhausted.
func (in *Injector) spend() bool {
	if in.budget == 0 {
		return false
	}
	if in.budget > 0 {
		in.budget--
	}
	return true
}

func (in *Injector) fire(i int) {
	in.fired[i]++
	if in.firedC != nil {
		in.firedC.Inc()
	}
}

// BeginCycle implements rtl.Injector: register-file faults.
func (in *Injector) BeginCycle(cycle int, rf rtl.RegFile) {
	for i, f := range in.faults {
		if f.Site != SiteRegFile || !f.active(cycle) || int(f.Index) >= rf.NumRegs() {
			continue
		}
		old := rf.Peek(f.Index)
		next := f.mutateWord(old)
		if next == old || !in.spend() {
			continue
		}
		rf.Poke(f.Index, next)
		in.fire(i)
	}
}

// Fetch implements rtl.Injector: control-ROM corruption.
func (in *Injector) Fetch(cycle int, ins isa.Instr) (isa.Instr, bool) {
	for i, f := range in.faults {
		if f.Site != SiteROM || !f.active(cycle) || f.Index != uint16(ins.Unit) {
			continue
		}
		w, err := isa.Encode(ins)
		if err != nil {
			continue
		}
		mask := uint64(1) << (f.Bit % ROMBits)
		switch f.Kind {
		case KindTransient:
			w ^= mask
		case KindStuckAt0:
			w &^= mask
		case KindStuckAt1:
			w |= mask
		}
		corrupted, err := isa.Decode(w)
		if err != nil {
			// The valid bit died: the slot never issues.
			if in.spend() {
				in.fire(i)
				if in.squashC != nil {
					in.squashC.Inc()
				}
				return ins, false
			}
			continue
		}
		corrupted.Cycle, corrupted.Label = ins.Cycle, ins.Label
		if corrupted == ins || !in.spend() {
			continue
		}
		in.fire(i)
		ins = corrupted
	}
	return ins, true
}

// Forward implements rtl.Injector: forwarding-path glitches.
func (in *Injector) Forward(cycle int, unit uint8, v fp2.Element) fp2.Element {
	site := SiteFwdMul
	if unit == isa.UnitAdd {
		site = SiteFwdAdd
	}
	return in.mutateAt(site, cycle, v)
}

// Retire implements rtl.Injector: pipeline-output-register upsets.
func (in *Injector) Retire(cycle int, unit uint8, dst uint16, v fp2.Element) fp2.Element {
	site := SitePipeMul
	if unit == isa.UnitAdd {
		site = SitePipeAdd
	}
	return in.mutateAt(site, cycle, v)
}

func (in *Injector) mutateAt(site Site, cycle int, v fp2.Element) fp2.Element {
	for i, f := range in.faults {
		if f.Site != site || !f.active(cycle) {
			continue
		}
		next := f.mutateWord(v)
		if next == v || !in.spend() {
			continue
		}
		in.fire(i)
		v = next
	}
	return v
}

var _ rtl.Injector = (*Injector)(nil)
