package core

import (
	"bytes"
	"testing"

	"repro/internal/jobshop"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// TestTableIBnBProgress checks the acceptance criterion that the
// branch-and-bound solver reports at least one progress event
// (incumbent or bound improvement) on the Table I workload.
func TestTableIBnBProgress(t *testing.T) {
	var incumbents, bounds, done int
	r, err := TableIObserved(sched.DefaultResources(), func(p jobshop.Progress) {
		switch p.Kind {
		case jobshop.ProgressIncumbent:
			incumbents++
		case jobshop.ProgressBound:
			bounds++
		case jobshop.ProgressDone:
			done++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if incumbents+bounds < 1 {
		t.Fatalf("no incumbent/bound progress events on the Table I workload (incumbents=%d bounds=%d)",
			incumbents, bounds)
	}
	if done != 1 {
		t.Fatalf("done events = %d, want 1", done)
	}
	if r.Makespan <= 0 {
		t.Fatalf("Table I makespan = %d", r.Makespan)
	}
}

// TestProcessorTelemetry builds one processor with a telemetry recorder
// and exercises both the wall-clock pipeline spans and the cycle-domain
// SM timeline.
func TestProcessorTelemetry(t *testing.T) {
	rec := telemetry.NewRecorder()
	p, err := New(Config{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"trace/functional": false, "schedule/functional": false,
		"trace/endo": false, "schedule/endo": false,
	}
	for _, ev := range rec.Events() {
		if ev.Cat == "core.pipeline" && ev.Phase == telemetry.PhaseComplete {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing pipeline span %q", name)
		}
	}

	k := scalar.Scalar{0x1234, 0x5678, 0x9ABC, 0xDEF0}
	var buf bytes.Buffer
	st, err := p.TraceScalarMult(k, &buf)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var issueSlices int
	for _, ev := range evs {
		if ev.Phase == telemetry.PhaseComplete && ev.Cat == "issue" {
			issueSlices++
		}
	}
	if wantSlices := st.MulIssues + st.AddIssues; issueSlices != wantSlices {
		t.Fatalf("trace has %d issue slices, want %d (one per issue)", issueSlices, wantSlices)
	}
	if st.AddUtilization <= 0 || st.MulUtilization <= 0 {
		t.Fatalf("utilization not populated: %+v", st)
	}
}
