package core

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/rtl"
	"repro/internal/scalar"
)

// laneState is the executor's pooled lockstep state: the lane machine
// plus pre-bound per-lane input slots, grown once to the widest batch
// this executor has seen and reused for every run after that (the
// steady-state lane path performs zero heap allocations, like the
// single-lane fast path).
type laneState struct {
	lm *rtl.LaneMachine
	// bound[l] is lane l's fixed (base.X, base.Y) binding pair; the
	// RunInput Bound slices point into it and stay valid until the next
	// growth.
	bound [][2]rtl.Binding
	ins   []rtl.RunInput
}

// lanes returns the executor's lockstep state, growing it to hold at
// least n lanes. Growth reallocates the machine (a width change moves
// every structure-of-arrays row), so it only ever widens.
func (e *Executor) lanes(n int) *laneState {
	ls := e.ls
	if ls == nil {
		ls = &laneState{}
		e.ls = ls
	}
	if ls.lm == nil || ls.lm.Width() < n {
		ls.lm = e.p.funcCompiled.NewLaneMachine(n)
		ls.bound = make([][2]rtl.Binding, n)
		ls.ins = make([]rtl.RunInput, n)
		for l := 0; l < n; l++ {
			ls.bound[l][0].Reg = e.p.funcIn[0]
			ls.bound[l][1].Reg = e.p.funcIn[1]
			ls.ins[l].Bound = ls.bound[l][:]
		}
	}
	return ls
}

// ScalarMultLanes executes [ks[l]]bases[l] for every lane l in one
// lockstep pass of the compiled schedule (see rtl.LaneMachine). outs
// and errs are per-lane: errs[l] is exactly the error a single-lane
// ScalarMultPoint would have returned for that input (nil on success),
// and outs[l] is valid iff errs[l] is nil — a failing lane degrades
// only itself. The returned rtl.Stats are the schedule's (identical
// for every lane, data-independent); the whole-batch error is reserved
// for caller mistakes (mismatched slice lengths, no lanes).
//
// With an injector attached the lockstep path is bypassed: each lane
// runs through the single-lane machine so faults land in exactly one
// lane, preserving the per-lane error contract.
func (e *Executor) ScalarMultLanes(ks []scalar.Scalar, bases []curve.Affine, outs []curve.Affine, errs []error) (rtl.Stats, error) {
	n := len(ks)
	if n == 0 {
		return rtl.Stats{}, fmt.Errorf("core: lane run with no scalars")
	}
	if len(bases) != n || len(outs) != n || len(errs) != n {
		return rtl.Stats{}, fmt.Errorf("core: lane slice lengths diverge: %d scalars, %d bases, %d outs, %d errs",
			n, len(bases), len(outs), len(errs))
	}
	if e.inj != nil {
		for l := 0; l < n; l++ {
			outs[l], _, errs[l] = e.ScalarMultPoint(ks[l], bases[l])
		}
		return e.p.funcCompiled.Stats(), nil
	}
	ls := e.lanes(n)
	for l := 0; l < n; l++ {
		dec := scalar.Decompose(ks[l])
		ls.bound[l][0].Val = bases[l].X
		ls.bound[l][1].Val = bases[l].Y
		ls.ins[l].Rec = scalar.Recode(dec)
		ls.ins[l].Corrected = dec.Corrected
	}
	st, err := ls.lm.RunLanes(ls.ins[:n], errs)
	if err != nil {
		return st, err
	}
	for l := 0; l < n; l++ {
		if errs[l] != nil {
			continue
		}
		outs[l] = curve.Affine{
			X: ls.lm.Reg(l, e.p.funcOut[0]),
			Y: ls.lm.Reg(l, e.p.funcOut[1]),
		}
		e.runs++
		e.cycles += int64(st.Cycles)
	}
	return st, nil
}

// fbLanes returns the executor's fixed-base lockstep state, growing it
// to hold at least n lanes (the fixed-base program has no external
// inputs, so the lanes carry only the recoded scalars).
func (e *Executor) fbLanes(n int) *laneState {
	ls := e.fbls
	if ls == nil {
		ls = &laneState{}
		e.fbls = ls
	}
	if ls.lm == nil || ls.lm.Width() < n {
		ls.lm = e.p.fbCompiled.NewLaneMachine(n)
		ls.ins = make([]rtl.RunInput, n)
	}
	return ls
}

// ScalarMultFixedBaseLanes executes [ks[l]]G for every lane l in one
// lockstep pass of the fixed-base comb schedule, with the same per-lane
// error contract as ScalarMultLanes. Without the fixed-base program (or
// with an injector attached) each lane runs through the single-lane
// fixed-base path instead.
func (e *Executor) ScalarMultFixedBaseLanes(ks []scalar.Scalar, outs []curve.Affine, errs []error) (rtl.Stats, error) {
	n := len(ks)
	if n == 0 {
		return rtl.Stats{}, fmt.Errorf("core: lane run with no scalars")
	}
	if len(outs) != n || len(errs) != n {
		return rtl.Stats{}, fmt.Errorf("core: lane slice lengths diverge: %d scalars, %d outs, %d errs",
			n, len(outs), len(errs))
	}
	if e.p.fbCompiled == nil || e.inj != nil {
		var st rtl.Stats
		for l := 0; l < n; l++ {
			outs[l], st, errs[l] = e.ScalarMultFixedBase(ks[l])
		}
		return st, nil
	}
	ls := e.fbLanes(n)
	for l := 0; l < n; l++ {
		ls.ins[l].Rec, ls.ins[l].Corrected = scalar.RecodeFixedBase(ks[l])
	}
	st, err := ls.lm.RunLanes(ls.ins[:n], errs)
	if err != nil {
		return st, err
	}
	for l := 0; l < n; l++ {
		if errs[l] != nil {
			continue
		}
		outs[l] = curve.Affine{
			X: ls.lm.Reg(l, e.p.fbOut[0]),
			Y: ls.lm.Reg(l, e.p.fbOut[1]),
		}
		e.runs++
		e.cycles += int64(st.Cycles)
	}
	return st, nil
}

// ScalarMultFixedBaseLanesValidated is ScalarMultFixedBaseLanes plus
// the per-lane end-of-SM result checks (oracle: the library's [k]G).
func (e *Executor) ScalarMultFixedBaseLanesValidated(ks []scalar.Scalar, outs []curve.Affine, errs []error, v Validate) (rtl.Stats, error) {
	st, err := e.ScalarMultFixedBaseLanes(ks, outs, errs)
	if err != nil || v == ValidateNone {
		return st, err
	}
	for l := range ks {
		if errs[l] != nil {
			continue
		}
		if verr := ValidateAffine(outs[l]); verr != nil {
			errs[l] = fmt.Errorf("%w (k=%v)", verr, ks[l])
			continue
		}
		if v == ValidateOracle {
			want := curve.ScalarMult(ks[l], curve.Generator()).Affine()
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				errs[l] = fmt.Errorf("%w (k=%v)", ErrOracleMismatch, ks[l])
			}
		}
	}
	return st, nil
}

// ScalarMultLanesValidated is ScalarMultLanes plus the per-lane
// end-of-SM result checks of ScalarMultValidated: a lane that ran but
// produced a bad point gets its errs[l] set to the same wrapped
// ErrOffCurve / ErrDegenerate / ErrOracleMismatch error the single-lane
// path reports, with the raw point left in outs[l] for diagnosis.
func (e *Executor) ScalarMultLanesValidated(ks []scalar.Scalar, bases []curve.Affine, outs []curve.Affine, errs []error, v Validate) (rtl.Stats, error) {
	st, err := e.ScalarMultLanes(ks, bases, outs, errs)
	if err != nil || v == ValidateNone {
		return st, err
	}
	for l := range ks {
		if errs[l] != nil {
			continue
		}
		if verr := ValidateAffine(outs[l]); verr != nil {
			errs[l] = fmt.Errorf("%w (k=%v)", verr, ks[l])
			continue
		}
		if v == ValidateOracle {
			want := curve.ScalarMult(ks[l], curve.FromAffine(bases[l])).Affine()
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				errs[l] = fmt.Errorf("%w (k=%v)", ErrOracleMismatch, ks[l])
			}
		}
	}
	return st, nil
}
