package core

import (
	"testing"
)

func TestMultiCoreScaling(t *testing.T) {
	p := getProcessor(t)
	one, err := p.MultiCore(1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	eleven, err := p.MultiCore(11, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput scales linearly.
	if !approx(eleven.OpsPerSec/one.OpsPerSec, 11, 1e-9) {
		t.Errorf("throughput scaling %.2f, want 11", eleven.OpsPerSec/one.OpsPerSec)
	}
	// Area scales sub-linearly (shared ROM + controller).
	if eleven.AreaKGE >= 11*one.AreaKGE {
		t.Errorf("area should scale sub-linearly: %f vs %f", eleven.AreaKGE, 11*one.AreaKGE)
	}
	if eleven.AreaKGE <= one.AreaKGE {
		t.Error("multi-core should still cost area")
	}
	// Latency per SM unchanged.
	if !approx(eleven.LatencyMS, one.LatencyMS, 1e-9) {
		t.Error("per-SM latency should not change with cores")
	}
	// An 11-core version should beat the 11-core FPGA [10] (6.47e4 SM/s)
	// by a wide margin, as the single-core already does.
	if eleven.OpsPerSec < 6.47e4*10 {
		t.Errorf("11-core throughput %.3g implausibly low", eleven.OpsPerSec)
	}
	if _, err := p.MultiCore(0, 1.2); err == nil {
		t.Error("0 cores accepted")
	}
}
