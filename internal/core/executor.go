package core

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
)

// DefaultTraceScalar is the scalar used to seed trace recording when
// Config.TraceScalar is zero: any fixed scalar with all four sub-scalars
// active (the program is scalar-independent, a fixed default keeps
// builds deterministic).
func DefaultTraceScalar() scalar.Scalar {
	return scalar.Scalar{
		0x243F6A8885A308D3, 0x13198A2E03707344,
		0xA4093822299F31D0, 0x082EFA98EC4E6C89,
	}
}

// ConfigKey is the comparable identity of a Config: two Configs with the
// same key build byte-identical processors, so caches (internal/engine)
// can share one built instance between them. Incidental fields that do
// not influence the built program — the telemetry recorder and the
// scheduler progress callback — are deliberately excluded.
type ConfigKey struct {
	Resources   sched.Resources
	Method      sched.Method
	AnnealIters int
	BnBBudget   int64
	BlockSize   int
	SchedSeed   int64
	Elide       bool
	TraceScalar scalar.Scalar
}

// CacheKey derives the comparable cache identity of c, normalizing the
// defaulted fields so that Config{} and an explicitly spelled-out
// default configuration map to the same key.
func (c Config) CacheKey() ConfigKey {
	res := c.Resources
	if res == (sched.Resources{}) {
		res = sched.DefaultResources()
	}
	ts := c.TraceScalar
	if ts.IsZero() {
		ts = DefaultTraceScalar()
	}
	return ConfigKey{
		Resources:   res,
		Method:      c.Sched.Method,
		AnnealIters: c.Sched.AnnealIters,
		BnBBudget:   c.Sched.BnBBudget,
		BlockSize:   c.Sched.BlockSize,
		SchedSeed:   c.Sched.Seed,
		Elide:       c.Sched.ElideWritebacks,
		TraceScalar: ts,
	}
}

// Executor is a per-worker handle for running scalar multiplications on
// a shared Processor. The processor's scheduled program is immutable
// after New and rtl.Run builds a fresh machine per call, so any number
// of Executors may run concurrently over one Processor without locking
// the datapath model; each worker of a pool owns exactly one Executor
// and its (unsynchronized) aggregate run statistics.
type Executor struct {
	p      *Processor
	runs   int
	cycles int64
}

// NewExecutor returns an independent executor over p.
func (p *Processor) NewExecutor() *Executor { return &Executor{p: p} }

// Runs returns the number of scalar multiplications this executor has
// completed successfully.
func (e *Executor) Runs() int { return e.runs }

// Cycles returns the total modeled datapath cycles this executor has
// executed.
func (e *Executor) Cycles() int64 { return e.cycles }

// ScalarMult executes [k]G bit-true on the RTL model.
func (e *Executor) ScalarMult(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	return e.ScalarMultPoint(k, curve.GeneratorAffine())
}

// ScalarMultPoint executes [k]P on the RTL model.
func (e *Executor) ScalarMultPoint(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	out, st, err := e.p.ScalarMultPoint(k, base)
	if err != nil {
		return out, st, err
	}
	e.runs++
	e.cycles += int64(st.Cycles)
	return out, st, nil
}

// ScalarMultChecked executes [k]P on the RTL model and cross-checks the
// result against the pure functional curve model (the differential
// oracle): a datapath divergence is returned as an error, never as a
// wrong point.
func (e *Executor) ScalarMultChecked(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	out, st, err := e.ScalarMultPoint(k, base)
	if err != nil {
		return out, st, err
	}
	want := curve.ScalarMult(k, curve.FromAffine(base)).Affine()
	if !out.X.Equal(want.X) || !out.Y.Equal(want.Y) {
		return out, st, fmt.Errorf("core: RTL result differs from functional model for k=%v", k)
	}
	return out, st, nil
}
