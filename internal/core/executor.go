package core

import (
	"errors"
	"fmt"

	"repro/internal/curve"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
)

// Result-validation errors. ErrOffCurve and ErrDegenerate come from the
// cheap structural checks (no recompute); ErrOracleMismatch from the
// full functional-model recompute. All three mean the datapath produced
// a wrong word — callers (internal/engine) treat them as detected
// faults and retry or degrade rather than deliver the point.
var (
	// ErrOffCurve: the decoded result does not satisfy the curve
	// equation. A random register upset almost never lands back on the
	// curve, so this single check catches the bulk of silent datapath
	// corruption at the cost of a few field multiplications.
	ErrOffCurve = errors.New("core: result validation: point not on curve")
	// ErrDegenerate: the result decoded to the all-zero word, the
	// affine image of a Z=0 projective point (the final inversion of a
	// zeroed denominator). (0,0) is not on the curve, but the distinct
	// error preserves the root cause.
	ErrDegenerate = errors.New("core: result validation: degenerate zero point (Z=0 image)")
	// ErrOracleMismatch: the RTL result differs from the pure
	// functional curve model.
	ErrOracleMismatch = errors.New("core: RTL result differs from functional oracle")
)

// Validate selects the end-of-scalar-multiplication result checks. The
// zero value is ValidateOnCurve: cheap structural validation is the
// default, opting *out* of self-checking is explicit.
type Validate uint8

const (
	// ValidateOnCurve runs the cheap structural checks: the decoded
	// point is non-degenerate and on the curve. No recompute; cost is a
	// handful of field multiplications against thousands of modeled
	// cycles per run.
	ValidateOnCurve Validate = iota
	// ValidateNone delivers the raw datapath output unchecked.
	ValidateNone
	// ValidateOracle adds a full functional-model recompute (the
	// differential oracle). Roughly doubles the cost of a run; catches
	// even corruption that lands on a valid curve point.
	ValidateOracle
)

// String names the validation level (used in reports and logs).
func (v Validate) String() string {
	switch v {
	case ValidateOnCurve:
		return "oncurve"
	case ValidateNone:
		return "none"
	case ValidateOracle:
		return "oracle"
	}
	return fmt.Sprintf("validate(%d)", uint8(v))
}

// ValidateAffine runs the cheap structural result checks on a decoded
// scalar-multiplication output: the hardware analog is an end-of-SM
// self-test that needs no second scalar multiplication.
func ValidateAffine(a curve.Affine) error {
	if a.X.IsZero() && a.Y.IsZero() {
		return ErrDegenerate
	}
	if !a.IsOnCurveAffine() {
		return ErrOffCurve
	}
	return nil
}

// DefaultTraceScalar is the scalar used to seed trace recording when
// Config.TraceScalar is zero: any fixed scalar with all four sub-scalars
// active (the program is scalar-independent, a fixed default keeps
// builds deterministic).
func DefaultTraceScalar() scalar.Scalar {
	return scalar.Scalar{
		0x243F6A8885A308D3, 0x13198A2E03707344,
		0xA4093822299F31D0, 0x082EFA98EC4E6C89,
	}
}

// ConfigKey is the comparable identity of a Config: two Configs with the
// same key build byte-identical processors, so caches (internal/engine)
// can share one built instance between them. Incidental fields that do
// not influence the built program — the telemetry recorder and the
// scheduler progress callback — are deliberately excluded.
type ConfigKey struct {
	Resources   sched.Resources
	Method      sched.Method
	AnnealIters int
	BnBBudget   int64
	BlockSize   int
	SchedSeed   int64
	// Portfolio is comparable by construction (plain integer knobs); it
	// only differentiates keys when Method is MethodPortfolio, but
	// including it unconditionally is harmless (zero elsewhere).
	Portfolio   sched.PortfolioKnobs
	Elide       bool
	TraceScalar scalar.Scalar
	// FixedBase distinguishes processors that additionally carry the
	// fixed-base comb program.
	FixedBase bool
}

// CacheKey derives the comparable cache identity of c, normalizing the
// defaulted fields so that Config{} and an explicitly spelled-out
// default configuration map to the same key.
func (c Config) CacheKey() ConfigKey {
	res := c.Resources
	if res == (sched.Resources{}) {
		res = sched.DefaultResources()
	}
	ts := c.TraceScalar
	if ts.IsZero() {
		ts = DefaultTraceScalar()
	}
	return ConfigKey{
		Resources:   res,
		Method:      c.Sched.Method,
		AnnealIters: c.Sched.AnnealIters,
		BnBBudget:   c.Sched.BnBBudget,
		BlockSize:   c.Sched.BlockSize,
		SchedSeed:   c.Sched.Seed,
		Portfolio:   c.Sched.Portfolio,
		Elide:       c.Sched.ElideWritebacks,
		TraceScalar: ts,
		FixedBase:   c.FixedBase,
	}
}

// Executor is a per-worker handle for running scalar multiplications on
// a shared Processor. The processor's compiled program is immutable
// after New and each Executor owns a dedicated rtl.Machine (register
// file, pipeline value slots) plus a fixed input-binding buffer, so any
// number of Executors may run concurrently over one Processor without
// locking the datapath model, and a steady-state ScalarMult on the
// fast path (no injector) performs zero heap allocations. Each worker
// of a pool owns exactly one Executor and its (unsynchronized)
// aggregate run statistics. An Executor is not safe for concurrent use.
type Executor struct {
	p      *Processor
	m      *rtl.Machine
	bound  [2]rtl.Binding
	inj    rtl.Injector
	runs   int
	cycles int64
	// fbm is the lazily-built machine for the fixed-base comb program
	// (only when the processor carries one).
	fbm *rtl.Machine
	// ls is the lazily-grown lockstep lane state (ScalarMultLanes).
	ls *laneState
	// fbls is the lockstep lane state of the fixed-base program.
	fbls *laneState
}

// NewExecutor returns an independent executor over p with its own
// reusable datapath machine.
func (p *Processor) NewExecutor() *Executor {
	e := &Executor{p: p, m: p.funcCompiled.NewMachine()}
	e.bound[0].Reg = p.funcIn[0]
	e.bound[1].Reg = p.funcIn[1]
	return e
}

// SetInjector attaches a datapath fault injector to every subsequent
// run of this executor (nil detaches). The injector is confined to this
// executor's goroutine; the shared processor is never mutated.
func (e *Executor) SetInjector(inj rtl.Injector) { e.inj = inj }

// Runs returns the number of scalar multiplications this executor has
// completed successfully.
func (e *Executor) Runs() int { return e.runs }

// Cycles returns the total modeled datapath cycles this executor has
// executed.
func (e *Executor) Cycles() int64 { return e.cycles }

// ScalarMult executes [k]G bit-true on the RTL model.
func (e *Executor) ScalarMult(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	return e.ScalarMultPoint(k, curve.GeneratorAffine())
}

// ScalarMultPoint executes [k]P on the RTL model, reusing this
// executor's machine. With no injector attached this is the compiled
// fast path and allocates nothing; note the returned Stats then carry
// the program's shared read-only IssuesByOpcode map.
func (e *Executor) ScalarMultPoint(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	dec := scalar.Decompose(k)
	e.bound[0].Val = base.X
	e.bound[1].Val = base.Y
	st, err := e.m.Run(rtl.RunInput{
		Bound:     e.bound[:],
		Rec:       scalar.Recode(dec),
		Corrected: dec.Corrected,
		Injector:  e.inj,
	})
	if err != nil {
		return curve.Affine{}, st, err
	}
	e.runs++
	e.cycles += int64(st.Cycles)
	return curve.Affine{X: e.m.Reg(e.p.funcOut[0]), Y: e.m.Reg(e.p.funcOut[1])}, st, nil
}

// ScalarMultValidated executes [k]P on the RTL model and applies the
// selected end-of-SM result checks. Validation failures come back as
// wrapped ErrOffCurve / ErrDegenerate / ErrOracleMismatch errors (with
// the raw point still returned for diagnosis); a structural hazard in
// the run itself is returned unchanged.
func (e *Executor) ScalarMultValidated(k scalar.Scalar, base curve.Affine, v Validate) (curve.Affine, rtl.Stats, error) {
	out, st, err := e.ScalarMultPoint(k, base)
	if err != nil || v == ValidateNone {
		return out, st, err
	}
	if err := ValidateAffine(out); err != nil {
		return out, st, fmt.Errorf("%w (k=%v)", err, k)
	}
	if v == ValidateOracle {
		want := curve.ScalarMult(k, curve.FromAffine(base)).Affine()
		if !out.X.Equal(want.X) || !out.Y.Equal(want.Y) {
			return out, st, fmt.Errorf("%w (k=%v)", ErrOracleMismatch, k)
		}
	}
	return out, st, nil
}

// HasFixedBase reports whether this executor's processor carries the
// fixed-base comb program (so ScalarMultFixedBase rides it instead of
// falling back to the variable-base program).
func (e *Executor) HasFixedBase() bool { return e.p.fbCompiled != nil }

// ScalarMultFixedBase executes [k]G on the fixed-base comb program,
// reusing this executor's dedicated fixed-base machine. When the
// processor was built without Config.FixedBase it degrades gracefully
// to the variable-base program — same result, longer schedule.
func (e *Executor) ScalarMultFixedBase(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	if e.p.fbCompiled == nil {
		return e.ScalarMult(k)
	}
	if e.fbm == nil {
		e.fbm = e.p.fbCompiled.NewMachine()
	}
	rec, corrected := scalar.RecodeFixedBase(k)
	st, err := e.fbm.Run(rtl.RunInput{Rec: rec, Corrected: corrected, Injector: e.inj})
	if err != nil {
		return curve.Affine{}, st, err
	}
	e.runs++
	e.cycles += int64(st.Cycles)
	return curve.Affine{X: e.fbm.Reg(e.p.fbOut[0]), Y: e.fbm.Reg(e.p.fbOut[1])}, st, nil
}

// ScalarMultFixedBaseValidated is ScalarMultFixedBase plus the selected
// end-of-SM result checks, mirroring ScalarMultValidated (the oracle is
// the functional library's [k]G).
func (e *Executor) ScalarMultFixedBaseValidated(k scalar.Scalar, v Validate) (curve.Affine, rtl.Stats, error) {
	out, st, err := e.ScalarMultFixedBase(k)
	if err != nil || v == ValidateNone {
		return out, st, err
	}
	if err := ValidateAffine(out); err != nil {
		return out, st, fmt.Errorf("%w (k=%v)", err, k)
	}
	if v == ValidateOracle {
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !out.X.Equal(want.X) || !out.Y.Equal(want.Y) {
			return out, st, fmt.Errorf("%w (k=%v)", ErrOracleMismatch, k)
		}
	}
	return out, st, nil
}

// ScalarMultChecked executes [k]P on the RTL model and cross-checks the
// result against the pure functional curve model (the differential
// oracle): a datapath divergence is returned as an error (wrapping
// ErrOracleMismatch or the structural checks' sentinels), never as a
// wrong point.
func (e *Executor) ScalarMultChecked(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	return e.ScalarMultValidated(k, base, ValidateOracle)
}
