package core

import (
	"testing"
)

func TestParetoSweep(t *testing.T) {
	pts, err := ParetoSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("expected 4 design points, got %d", len(pts))
	}
	byII := map[int]ParetoPoint{}
	for _, p := range pts {
		if !p.Verified {
			t.Errorf("%s: RTL verification failed", p.Name)
		}
		if p.Cycles <= 0 || p.AreaKGE <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Name, p)
		}
		if p.FpCores != 4 {
			byII[p.MulII] = p
		}
	}
	// Narrower multipliers shrink the multiplier block itself...
	if !(byII[1].MultiplierKGE > byII[2].MultiplierKGE && byII[2].MultiplierKGE > byII[3].MultiplierKGE) {
		t.Errorf("multiplier block should shrink with fewer cores: %v %v %v",
			byII[1].MultiplierKGE, byII[2].MultiplierKGE, byII[3].MultiplierKGE)
	}
	// ...but are slower,...
	if !(byII[1].Cycles < byII[2].Cycles && byII[2].Cycles < byII[3].Cycles) {
		t.Errorf("cycles should grow with II: %d %d %d",
			byII[1].Cycles, byII[2].Cycles, byII[3].Cycles)
	}
	// ...and under a per-cycle control store the longer program grows the
	// ROM faster than the cores shrink -- the paper's full-throughput
	// design is Pareto-optimal on the latency-area product.
	for ii := 2; ii <= 3; ii++ {
		if byII[ii].LatencyAreaProduct <= byII[1].LatencyAreaProduct {
			t.Errorf("II=%d should have a worse latency-area product than the paper design", ii)
		}
	}
	// The schoolbook variant pays area for no cycle benefit over Karatsuba.
	var school ParetoPoint
	for _, p := range pts {
		if p.FpCores == 4 {
			school = p
		}
	}
	if school.AreaKGE <= byII[1].AreaKGE {
		t.Error("schoolbook should cost more area than the paper design")
	}
	if school.Cycles < byII[1].Cycles {
		t.Error("schoolbook should not be faster at equal II")
	}
	t.Logf("pareto:")
	for _, p := range pts {
		t.Logf("  %-26s %5d cycles  %7.0f kGE  %6.1f us  LAP %.1f",
			p.Name, p.Cycles, p.AreaKGE, p.LatencyUS, p.LatencyAreaProduct)
	}
}
