package core

import (
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/scalar"
)

// TestExecutorScalarMultZeroAllocs pins the tentpole guarantee: a warm
// Executor running the compiled fast path (no injector) performs zero
// heap allocations per scalar multiplication.
func TestExecutorScalarMultZeroAllocs(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	k := DefaultTraceScalar()
	if _, _, err := ex.ScalarMult(k); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := ex.ScalarMult(k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Executor.ScalarMult allocates %.1f times per run on the fast path, want 0", allocs)
	}
}

// TestExecutorMatchesInterpreted runs the end-to-end differential at the
// core layer: the executor's compiled path must agree with the
// reference interpreter on both the result point and the run statistics
// for random scalars.
func TestExecutorMatchesInterpreted(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(4242))
	for trial := 0; trial < 4; trial++ {
		var k scalar.Scalar
		for i := range k {
			k[i] = rng.Uint64()
		}
		want, wantSt, err := p.ScalarMultInterpreted(k)
		if err != nil {
			t.Fatalf("trial %d: interpreted: %v", trial, err)
		}
		got, gotSt, err := ex.ScalarMult(k)
		if err != nil {
			t.Fatalf("trial %d: compiled: %v", trial, err)
		}
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			t.Fatalf("trial %d: compiled result differs from interpreted", trial)
		}
		if !reflect.DeepEqual(gotSt, wantSt) {
			t.Fatalf("trial %d: stats differ:\ncompiled:    %+v\ninterpreted: %+v", trial, gotSt, wantSt)
		}
	}
}
