package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scalar"
)

// Example runs the full flow: build the processor (trace -> schedule ->
// microprogram), execute a scalar multiplication on the cycle-accurate
// model, and read off the calibrated silicon figures.
func Example() {
	p, err := core.New(core.Config{})
	if err != nil {
		panic(err)
	}
	if err := p.Verify(1, 7); err != nil {
		panic(err)
	}
	fmt.Println("RTL verified against the functional library")

	_, stats, err := p.ScalarMult(scalar.FromUint64(1000003))
	if err != nil {
		panic(err)
	}
	fmt.Println("one SM executes in", stats.Cycles, "cycles (functional program)")

	m, err := p.PowerModel()
	if err != nil {
		panic(err)
	}
	fmt.Printf("modelled silicon @1.2V: %.1f us, %.2f uJ per SM\n",
		m.Latency(1.2)*1e6, m.EnergyPerSM(1.2)*1e6)
	// Output:
	// RTL verified against the functional library
	// one SM executes in 3940 cycles (functional program)
	// modelled silicon @1.2V: 10.1 us, 3.98 uJ per SM
}
