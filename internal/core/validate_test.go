package core

import (
	"errors"
	"testing"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/isa"
	"repro/internal/rtl"
	"repro/internal/scalar"
)

// outputSwapper is a minimal rtl.Injector that replaces every value
// retiring into the named registers, steering the datapath's decoded
// result to an attacker-chosen point while leaving the run structurally
// clean. It is how the tests reach the validation paths that random bit
// flips rarely hit (a corrupted result that is still on the curve).
type outputSwapper struct {
	xReg, yReg uint16
	x, y       fp2.Element
}

func (s *outputSwapper) BeginCycle(int, rtl.RegFile) {}
func (s *outputSwapper) Fetch(_ int, ins isa.Instr) (isa.Instr, bool) {
	return ins, true
}
func (s *outputSwapper) Forward(_ int, _ uint8, v fp2.Element) fp2.Element { return v }
func (s *outputSwapper) Retire(_ int, _ uint8, dst uint16, v fp2.Element) fp2.Element {
	switch dst {
	case s.xReg:
		return s.x
	case s.yReg:
		return s.y
	}
	return v
}

func swapperFor(t *testing.T, p *Processor, to curve.Affine) *outputSwapper {
	t.Helper()
	outs := p.Program().OutputRegs
	xr, okx := outs["x"]
	yr, oky := outs["y"]
	if !okx || !oky {
		t.Fatalf("program outputs missing x/y: %v", outs)
	}
	return &outputSwapper{xReg: xr, yReg: yr, x: to.X, y: to.Y}
}

// TestScalarMultCheckedMismatchPath is the regression test for the
// previously untested branch: a corrupted result that still lies on the
// curve must come back as ErrOracleMismatch, never as a wrong point.
func TestScalarMultCheckedMismatchPath(t *testing.T) {
	p := getProcessor(t)
	k := DefaultTraceScalar()
	// A valid curve point that is NOT [k]G: the cheap structural checks
	// accept it, only the oracle recompute can tell it apart.
	wrong := curve.ScalarMult(scalar.FromUint64(3), curve.Generator()).Affine()
	if !wrong.IsOnCurveAffine() {
		t.Fatal("test fixture: wrong point must be on the curve")
	}
	ex := p.NewExecutor()
	ex.SetInjector(swapperFor(t, p, wrong))
	got, _, err := ex.ScalarMultChecked(k, curve.GeneratorAffine())
	if err == nil {
		t.Fatal("ScalarMultChecked accepted a corrupted on-curve result")
	}
	if !errors.Is(err, ErrOracleMismatch) {
		t.Fatalf("err = %v, want ErrOracleMismatch", err)
	}
	// The raw point still comes back for diagnosis.
	if !got.X.Equal(wrong.X) || !got.Y.Equal(wrong.Y) {
		t.Fatal("mismatch error did not carry the corrupted point")
	}
}

// TestScalarMultCheckedHappyPathUnchanged pins that the checked path
// still returns clean results when the datapath is honest.
func TestScalarMultCheckedHappyPath(t *testing.T) {
	p := getProcessor(t)
	k := DefaultTraceScalar()
	got, st, err := p.NewExecutor().ScalarMultChecked(k, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 {
		t.Fatal("missing run statistics")
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
		t.Fatal("checked result differs from oracle on a clean run")
	}
}

// TestValidateOnCurveCatchesOffCurveResult drives the cheap structural
// check: steer the output to a word that satisfies no curve equation.
func TestValidateOnCurveCatchesOffCurveResult(t *testing.T) {
	p := getProcessor(t)
	bogus := curve.Affine{X: fp2.FromUint64(2, 3), Y: fp2.FromUint64(5, 7)}
	if bogus.IsOnCurveAffine() {
		t.Fatal("test fixture: bogus point must be off the curve")
	}
	ex := p.NewExecutor()
	ex.SetInjector(swapperFor(t, p, bogus))
	_, _, err := ex.ScalarMultValidated(DefaultTraceScalar(), curve.GeneratorAffine(), ValidateOnCurve)
	if !errors.Is(err, ErrOffCurve) {
		t.Fatalf("err = %v, want ErrOffCurve", err)
	}
	// ValidateNone must hand the corrupted word through untouched: the
	// caller explicitly opted out of self-checking.
	got, _, err := ex.ScalarMultValidated(DefaultTraceScalar(), curve.GeneratorAffine(), ValidateNone)
	if err != nil {
		t.Fatalf("ValidateNone rejected the run: %v", err)
	}
	if !got.X.Equal(bogus.X) {
		t.Fatal("ValidateNone did not deliver the raw datapath output")
	}
}

// TestValidateAffineDegenerate covers the Z=0 image: the all-zero word
// gets its own sentinel so the root cause survives into logs.
func TestValidateAffineDegenerate(t *testing.T) {
	if err := ValidateAffine(curve.Affine{}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("zero point: err = %v, want ErrDegenerate", err)
	}
	if err := ValidateAffine(curve.GeneratorAffine()); err != nil {
		t.Fatalf("generator rejected: %v", err)
	}
	id := curve.Identity().Affine()
	if err := ValidateAffine(id); err != nil {
		t.Fatalf("identity (a legal SM result for k = order) rejected: %v", err)
	}
}
