package core

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/c25519"
	"repro/internal/curve"
	"repro/internal/gates"
	"repro/internal/isa"
	"repro/internal/jobshop"
	"repro/internal/p256"
	"repro/internal/power"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file regenerates the paper's tables and figures (see DESIGN.md's
// per-experiment index). Every function returns structured data plus a
// rendered report so the cmd tools and benchmarks share one source of
// truth.

// ---------------------------------------------------------------- E2: Table I

// TableIResult is the scheduled double-and-add block.
type TableIResult struct {
	Muls, Adds int
	Makespan   int
	Optimal    bool
	LowerBound int
	Listing    string // Table I-style rendering
}

// TableI schedules the 15-mult/13-add double-and-add block with the
// exact branch-and-bound solver and renders a Table I-style listing.
func TableI(res sched.Resources) (*TableIResult, error) {
	return TableIObserved(res, nil)
}

// TableIObserved is TableI with solver progress reporting: progress
// (when non-nil) receives the branch-and-bound incumbent/bound
// trajectory while the block is being scheduled.
func TableIObserved(res sched.Resources, progress jobshop.ProgressFunc) (*TableIResult, error) {
	k := scalar.Scalar{0x9E3779B97F4A7C15, 2, 3, 4}
	p := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(p))
	tr, err := trace.BuildDblAdd(k, p, table)
	if err != nil {
		return nil, err
	}
	r, err := sched.Schedule(tr.Graph, res, sched.Options{
		Method: sched.MethodBnB, BnBBudget: 10_000_000, Progress: progress,
	})
	if err != nil {
		return nil, err
	}
	return &TableIResult{
		Muls:       tr.Graph.NumMuls(),
		Adds:       tr.Graph.NumAdds(),
		Makespan:   r.Makespan,
		Optimal:    r.Optimal,
		LowerBound: r.LowerBound,
		Listing:    FormatScheduleTable(tr.Graph, r),
	}, nil
}

// FormatScheduleTable renders a schedule in the style of the paper's
// Table I: one row per cycle with the multiplier issue, adder issue and
// write-backs.
func FormatScheduleTable(g *trace.Graph, r *sched.Result) string {
	type row struct {
		mul, add string
		wb       []string
	}
	rows := make([]row, r.Makespan+1)
	res := sched.Resources{MulLatency: r.Program.MulLatency, AddLatency: r.Program.AddLatency}
	for _, op := range g.Ops {
		c := r.Starts[op.ID]
		lat := res.AddLatency
		slotStr := fmt.Sprintf("%s", op.Label)
		if op.Unit == trace.UnitMul {
			lat = res.MulLatency
			rows[c].mul = slotStr
		} else {
			rows[c].add = slotStr
		}
		done := c + lat
		if done <= r.Makespan {
			rows[done].wb = append(rows[done].wb, op.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s | %-14s | %-14s | %s\n", "Cycle", "Fp2 Mult", "Fp2 Add/Sub", "Write back")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 72))
	for c, rw := range rows {
		if rw.mul == "" && rw.add == "" && len(rw.wb) == 0 {
			continue
		}
		sort.Strings(rw.wb)
		fmt.Fprintf(&b, "%-6d | %-14s | %-14s | %s\n", c, rw.mul, rw.add, strings.Join(rw.wb, " "))
	}
	return b.String()
}

// ------------------------------------------------------------- E1: op profile

// OpMixResult reproduces the profiling observation motivating the
// Fp2-multiplier-centric datapath ("Fp2 multiplications account for
// approximately 57% of total arithmetic operations").
type OpMixResult struct {
	Stats    trace.Stats
	Sections map[string]trace.Stats
}

// OpMix profiles the functional SM trace.
func (p *Processor) OpMix() OpMixResult {
	return OpMixResult{Stats: p.stats}
}

// --------------------------------------------------------------- E4: Figure 4

// Figure4 evaluates the calibrated voltage model on the measured range.
type Figure4Result struct {
	Cycles     int
	Points     []power.SweepPoint
	MinEnergyV float64
	MinEnergyJ float64
}

// Figure4 computes the voltage sweep (Fmax, latency, energy vs VDD).
func (p *Processor) Figure4(n int) (*Figure4Result, error) {
	m, err := p.PowerModel()
	if err != nil {
		return nil, err
	}
	pts := m.Sweep(power.AnchorLowV, power.AnchorHighV, n)
	v, e := m.MinEnergyVoltage()
	return &Figure4Result{Cycles: p.CyclesEndoModeled(), Points: pts, MinEnergyV: v, MinEnergyJ: e}, nil
}

// --------------------------------------------------------------- E6: Figure 3

// Figure3 returns the area breakdown (1400 kGE, 1.76 x 3.56 mm).
func (p *Processor) Figure3() gates.Breakdown { return p.Area() }

// --------------------------------------------------------------- E5: Table II

// TableIIResult holds our regenerated rows and the headline ratios.
type TableIIResult struct {
	OursHighV, OursLowV CompRow
	Prior               []CompRow
	// Headline ratios of the paper (expected 3.66x, 15.5x, 5.14x).
	SpeedupVsP256ASIC  float64
	SpeedupVsFourQFPGA float64
	EnergyGainVsECDSA  float64
	// Cross-check from our own same-silicon baselines.
	P256ModelCycles    int
	C25519ModelCycles  int
	FourQCycles        int
	ModelSpeedupP256   float64
	ModelSpeedupC25519 float64
}

// TableII regenerates the comparison table.
func (p *Processor) TableII() (*TableIIResult, error) {
	m, err := p.PowerModel()
	if err != nil {
		return nil, err
	}
	area := p.Area()
	mk := func(v float64) CompRow {
		lat := m.Latency(v)
		return CompRow{
			Design: "Ours (model)", Platform: "ASIC 65nm SOTB", Curve: "FourQ", Cores: 1,
			Area:    fmt.Sprintf("%.0f kGE", area.TotalKGE),
			AreaKGE: area.TotalKGE, VDD: v,
			LatencyMS: lat * 1e3, OpsPerSec: 1 / lat,
			EnergyUJ:           m.EnergyPerSM(v) * 1e6,
			LatencyAreaProduct: gates.LatencyAreaProduct(area.TotalKGE, lat),
		}
	}
	r := &TableIIResult{
		OursHighV: mk(power.AnchorHighV),
		OursLowV:  mk(power.AnchorLowV),
		Prior:     PriorArt,
	}
	r.SpeedupVsP256ASIC = P256ASICLatencyMS / r.OursHighV.LatencyMS
	r.SpeedupVsFourQFPGA = FourQFPGALatencyMS / r.OursHighV.LatencyMS
	r.EnergyGainVsECDSA = ECDSAASICEnergyUJ / r.OursLowV.EnergyUJ

	// Same-silicon cross-check: run our P-256 and Curve25519 baselines
	// through their op-count cycle models.
	kBig, _ := new(big.Int).SetString("7a2f6b3c9d1e8f4a5b6c7d8e9f0a1b2c3d4e5f60718293a4b5c6d7e8f9012345", 16)
	pr, err := p256.ScalarMultWNAF(kBig, p256.Gx, p256.Gy)
	if err != nil {
		return nil, err
	}
	r.P256ModelCycles = p256.DefaultCycleModel().Cycles(pr.Ops)
	var sb [32]byte
	sb[0] = 0x45
	sb[10] = 0x99
	ck := c25519.ClampScalar(sb)
	cr, err := c25519.ScalarMult(ck, c25519.BasePointU)
	if err != nil {
		return nil, err
	}
	r.C25519ModelCycles = c25519.DefaultCycleModel().Cycles(cr.Ops)
	r.FourQCycles = p.CyclesEndoModeled()
	r.ModelSpeedupP256 = float64(r.P256ModelCycles) / float64(r.FourQCycles)
	r.ModelSpeedupC25519 = float64(r.C25519ModelCycles) / float64(r.FourQCycles)
	return r, nil
}

// MultiCore models an n-core instantiation of the SM unit, the scaling
// the FPGA prior art of Table II uses ([10] and [22] report 11-core
// versions): datapath, register file and multiplier replicate per core
// while the program ROM and controller are shared, and throughput scales
// linearly (SMs are independent).
func (p *Processor) MultiCore(n int, vdd float64) (CompRow, error) {
	if n < 1 {
		return CompRow{}, fmt.Errorf("core: need at least one core, got %d", n)
	}
	m, err := p.PowerModel()
	if err != nil {
		return CompRow{}, err
	}
	area := p.Area()
	perCore, shared := 0.0, 0.0
	for _, bl := range area.Blocks {
		switch bl.Name {
		case "program ROM", "controller / FSM / digit logic":
			shared += bl.KGE
		default:
			perCore += bl.KGE
		}
	}
	kge := float64(n)*perCore + shared
	lat := m.Latency(vdd)
	return CompRow{
		Design: fmt.Sprintf("Ours (model, %d cores)", n), Platform: "ASIC 65nm SOTB",
		Curve: "FourQ", Cores: n,
		Area: fmt.Sprintf("%.0f kGE", kge), AreaKGE: kge, VDD: vdd,
		LatencyMS: lat * 1e3, OpsPerSec: float64(n) / lat,
		EnergyUJ:           m.EnergyPerSM(vdd) * 1e6,
		LatencyAreaProduct: gates.LatencyAreaProduct(kge, lat),
	}, nil
}

// ------------------------------------------------------------- E7: ablation

// AblationRow compares scheduling methods on the same trace.
type AblationRow struct {
	Method     string
	Makespan   int
	LowerBound int
	Optimal    bool
}

// SchedulerAblation runs the scheduler comparison on the DBLADD block
// and, when full is true, list-vs-blocked on the whole SM trace.
func SchedulerAblation(res sched.Resources, full bool) ([]AblationRow, error) {
	var rows []AblationRow
	k := scalar.Scalar{5, 6, 7, 8}
	g := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(g))
	blockTr, err := trace.BuildDblAdd(k, g, table)
	if err != nil {
		return nil, err
	}
	for _, m := range []sched.Method{sched.MethodList, sched.MethodAnneal, sched.MethodTabu, sched.MethodBnB, sched.MethodBlocked} {
		r, err := sched.Schedule(blockTr.Graph, res, sched.Options{
			Method: m, BnBBudget: 3_000_000, AnnealIters: 800, BlockSize: 7,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Method:   "dbladd/" + m.String(),
			Makespan: r.Makespan, LowerBound: r.LowerBound, Optimal: r.Optimal,
		})
	}
	if full {
		smTr, err := trace.BuildScalarMult(k, curve.GeneratorAffine())
		if err != nil {
			return nil, err
		}
		for _, m := range []sched.Method{sched.MethodList, sched.MethodBlocked} {
			r, err := sched.Schedule(smTr.Graph, res, sched.Options{Method: m, BlockSize: 28})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Method:   "fullsm/" + m.String(),
				Makespan: r.Makespan, LowerBound: r.LowerBound, Optimal: r.Optimal,
			})
		}
	}
	return rows, nil
}

// ForwardingAblation compares the default datapath against one whose
// adder results must round-trip through the register file (modelled as
// one extra cycle of adder latency), quantifying the forwarding paths the
// paper highlights in Fig. 1.
func ForwardingAblation(res sched.Resources) (withFwd, withoutFwd int, err error) {
	k := scalar.Scalar{9, 10, 11, 12}
	g := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(g))
	tr, err := trace.BuildDblAdd(k, g, table)
	if err != nil {
		return 0, 0, err
	}
	r1, err := sched.Schedule(tr.Graph, res, sched.Options{Method: sched.MethodList})
	if err != nil {
		return 0, 0, err
	}
	slow := res
	slow.AddLatency++
	slow.MulLatency++
	r2, err := sched.Schedule(tr.Graph, slow, sched.Options{Method: sched.MethodList})
	if err != nil {
		return 0, 0, err
	}
	return r1.Makespan, r2.Makespan, nil
}

// ElisionAblation quantifies the write-back elision optimization on the
// full SM program: how many register-file writes the forwarding network
// absorbs entirely.
type ElisionResult struct {
	TotalOps     int
	ElidedWrites int
	SavedShare   float64
}

// ElisionAblation schedules the full SM with the elision pass and
// reports the write-traffic reduction.
func ElisionAblation(res sched.Resources) (*ElisionResult, error) {
	k := scalar.Scalar{13, 14, 15, 16}
	tr, err := trace.BuildScalarMult(k, curve.GeneratorAffine())
	if err != nil {
		return nil, err
	}
	r, err := sched.Schedule(tr.Graph, res, sched.Options{Method: sched.MethodList, ElideWritebacks: true})
	if err != nil {
		return nil, err
	}
	total := len(tr.Graph.Ops)
	return &ElisionResult{
		TotalOps:     total,
		ElidedWrites: r.ElidedWrites,
		SavedShare:   float64(r.ElidedWrites) / float64(total),
	}, nil
}

// ROMStats reports the control-store footprint.
type ROMStats struct {
	Words    int
	Bits     int
	Programs int
}

// ROM reports the size of the functional + endo control ROMs.
func (p *Processor) ROM() (ROMStats, error) {
	w1, err := p.funcProg.ROMImage()
	if err != nil {
		return ROMStats{}, err
	}
	w2, err := p.endoProg.ROMImage()
	if err != nil {
		return ROMStats{}, err
	}
	return ROMStats{Words: len(w1) + len(w2), Bits: 64 * (len(w1) + len(w2)), Programs: 2}, nil
}

// LowerBoundOfInstance exposes the jobshop bound for reporting.
func LowerBoundOfInstance(g *trace.Graph, res sched.Resources) (int, error) {
	inst, err := sched.BuildInstance(g, res)
	if err != nil {
		return 0, err
	}
	return jobshop.LowerBound(inst)
}

// ProgramSummary renders a one-paragraph description of a program.
func ProgramSummary(p *isa.Program) string {
	return fmt.Sprintf("%d instructions, %d cycles, %d registers (mul latency %d, add latency %d)",
		len(p.Instrs), p.Makespan, p.NumRegs, p.MulLatency, p.AddLatency)
}
