package core

import (
	"flag"
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
	"repro/internal/sched"
)

var diffTrials = flag.Int("difftrials", 8, "random scalars for the RTL-vs-functional differential test")

// TestDifferentialRTLvsFunctional is the differential oracle for every
// parallel execution path: it runs scalars through Processor.ScalarMult
// (the cycle-accurate RTL datapath) and through the pure functional
// curve model and requires bit-identical affine results. Edge scalars
// (zero, one, the group order, all-ones) are always included; the rest
// are drawn from a seeded PRNG so failures replay.
func TestDifferentialRTLvsFunctional(t *testing.T) {
	p := getProcessor(t)

	edges := []scalar.Scalar{
		{},                             // k = 0: [0]G must be the identity via the corrected path
		{1},                            // k = 1
		{2},                            // k = 2: smallest even (corrected) scalar
		scalar.FromBig(scalar.Order()), // k = N
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}, // k = 2^256 - 1
	}
	rng := rand.New(rand.NewSource(0x5eed))
	ks := edges
	for i := 0; i < *diffTrials; i++ {
		ks = append(ks, scalar.Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()})
	}

	g := curve.Generator()
	for _, k := range ks {
		got, st, err := p.ScalarMult(k)
		if err != nil {
			t.Fatalf("RTL run for k=%v: %v", k, err)
		}
		if st.Cycles != p.CyclesFunctional() {
			t.Errorf("k=%v: run took %d cycles, program makespan %d", k, st.Cycles, p.CyclesFunctional())
		}
		want := curve.ScalarMult(k, g).Affine()
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			t.Errorf("k=%v: RTL (%v,%v) != functional (%v,%v)", k, got.X, got.Y, want.X, want.Y)
		}
	}
}

// TestExecutorCheckedCatchesOwnOracle exercises the Executor wrapper the
// engine's workers use: the checked path must agree with the plain path
// and accumulate per-executor statistics.
func TestExecutorChecked(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	g := curve.GeneratorAffine()
	for i := uint64(1); i <= 3; i++ {
		k := scalar.Scalar{i, i ^ 0xABCD, 0, i << 32}
		got, _, err := ex.ScalarMultChecked(k, g)
		if err != nil {
			t.Fatalf("checked run %d: %v", i, err)
		}
		plain, _, err := p.ScalarMult(k)
		if err != nil {
			t.Fatal(err)
		}
		if !got.X.Equal(plain.X) || !got.Y.Equal(plain.Y) {
			t.Fatalf("checked and plain executor paths disagree for k=%v", k)
		}
	}
	if ex.Runs() != 3 {
		t.Errorf("executor runs = %d, want 3", ex.Runs())
	}
	if ex.Cycles() != 3*int64(p.CyclesFunctional()) {
		t.Errorf("executor cycles = %d, want %d", ex.Cycles(), 3*p.CyclesFunctional())
	}
}

// TestConfigCacheKey pins the normalization contract: the zero Config
// and a spelled-out default configuration must share one cache entry,
// while a genuinely different datapath must not.
func TestConfigCacheKey(t *testing.T) {
	def := Config{}.CacheKey()
	spelled := Config{Resources: sched.DefaultResources(), TraceScalar: DefaultTraceScalar()}.CacheKey()
	if def != spelled {
		t.Errorf("zero config key %+v != spelled-out default key %+v", def, spelled)
	}
	narrow := Config{}
	narrow.Resources = sched.DefaultResources()
	narrow.Resources.MulII = 3
	if narrow.CacheKey() == def {
		t.Error("narrow-multiplier config must not share the default cache key")
	}
}
