package core

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/power"
	"repro/internal/scalar"
	"repro/internal/sched"
)

// sharedProcessor is built once; constructing and scheduling the full SM
// trace takes a noticeable fraction of a second.
var sharedProcessor *Processor

func getProcessor(t testing.TB) *Processor {
	t.Helper()
	if sharedProcessor == nil {
		p, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		sharedProcessor = p
	}
	return sharedProcessor
}

func TestProcessorVerify(t *testing.T) {
	p := getProcessor(t)
	if err := p.Verify(4, 12345); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCounts(t *testing.T) {
	p := getProcessor(t)
	if p.CyclesEndoModeled() >= p.CyclesFunctional() {
		t.Errorf("endo-modelled cycles (%d) should be below functional (%d): the substitution doublings dominate step 1",
			p.CyclesEndoModeled(), p.CyclesFunctional())
	}
	// Paper-comparable count: roughly 2-4k cycles at one Fp2 mult/cycle.
	if p.CyclesEndoModeled() < 1000 || p.CyclesEndoModeled() > 6000 {
		t.Errorf("endo-modelled cycle count %d implausible", p.CyclesEndoModeled())
	}
	t.Logf("cycles: functional=%d endo-modelled=%d", p.CyclesFunctional(), p.CyclesEndoModeled())
}

func TestScalarMultEndoMatchesLibrary(t *testing.T) {
	p := getProcessor(t)
	k := scalar.Scalar{77, 88, 99, 111}
	gotFunc, _, err := p.ScalarMult(k)
	if err != nil {
		t.Fatal(err)
	}
	gotEndo, _, err := p.ScalarMultEndo(k, curve.GeneratorAffine())
	if err != nil {
		t.Fatal(err)
	}
	if !gotFunc.X.Equal(gotEndo.X) || !gotFunc.Y.Equal(gotEndo.Y) {
		t.Fatal("functional and endo-workload programs disagree")
	}
}

func TestPowerModelPlausibleFrequency(t *testing.T) {
	p := getProcessor(t)
	m, err := p.PowerModel()
	if err != nil {
		t.Fatal(err)
	}
	f := m.Fmax(1.2)
	// The derived clock at 1.2 V should be a plausible 65 nm frequency.
	if f < 100e6 || f > 800e6 {
		t.Errorf("derived Fmax(1.2V) = %.1f MHz implausible", f/1e6)
	}
	t.Logf("derived Fmax(1.2V) = %.1f MHz for %d cycles/SM", f/1e6, p.CyclesEndoModeled())
}

func TestTableI(t *testing.T) {
	r, err := TableI(sched.DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if r.Muls != 15 || r.Adds != 13 {
		t.Errorf("block op counts %d/%d, want 15/13", r.Muls, r.Adds)
	}
	if !r.Optimal {
		t.Error("Table I block should solve to proven optimality")
	}
	if r.Makespan < 18 || r.Makespan > 30 {
		t.Errorf("DBLADD makespan %d not in the vicinity of the paper's 25", r.Makespan)
	}
	if r.Listing == "" {
		t.Error("empty listing")
	}
}

func TestTableII(t *testing.T) {
	p := getProcessor(t)
	r, err := p.TableII()
	if err != nil {
		t.Fatal(err)
	}
	// Headline ratios (exact by calibration).
	if r.SpeedupVsP256ASIC < 3.5 || r.SpeedupVsP256ASIC > 3.8 {
		t.Errorf("speedup vs P-256 ASIC = %.2f, paper says 3.66", r.SpeedupVsP256ASIC)
	}
	if r.SpeedupVsFourQFPGA < 15.0 || r.SpeedupVsFourQFPGA > 16.0 {
		t.Errorf("speedup vs FourQ FPGA = %.2f, paper says 15.5", r.SpeedupVsFourQFPGA)
	}
	if r.EnergyGainVsECDSA < 4.9 || r.EnergyGainVsECDSA > 5.4 {
		t.Errorf("energy gain vs ECDSA ASIC = %.2f, paper says 5.14", r.EnergyGainVsECDSA)
	}
	// Same-silicon cross-check: our P-256 model should be several times
	// slower than FourQ, in the neighbourhood of the measured 3.66x.
	if r.ModelSpeedupP256 < 2.0 || r.ModelSpeedupP256 > 6.0 {
		t.Errorf("model-based P-256 speedup %.2f outside [2,6]", r.ModelSpeedupP256)
	}
	// Curve25519 should sit between P-256 and FourQ (the paper's ~2x).
	if r.ModelSpeedupC25519 <= 1.0 || r.ModelSpeedupC25519 >= r.ModelSpeedupP256 {
		t.Errorf("Curve25519 model speedup %.2f not between FourQ and P-256 (%.2f)",
			r.ModelSpeedupC25519, r.ModelSpeedupP256)
	}
	// Latency-area product at 1.2 V should match the paper's 14.1.
	if r.OursHighV.LatencyAreaProduct < 13.5 || r.OursHighV.LatencyAreaProduct > 14.8 {
		t.Errorf("latency-area product %.1f, paper says 14.1", r.OursHighV.LatencyAreaProduct)
	}
	t.Logf("speedups: vs P-256 ASIC %.2fx (model cross-check %.2fx), vs FourQ FPGA %.1fx, energy vs ECDSA %.2fx",
		r.SpeedupVsP256ASIC, r.ModelSpeedupP256, r.SpeedupVsFourQFPGA, r.EnergyGainVsECDSA)
}

func TestFigure3(t *testing.T) {
	p := getProcessor(t)
	b := p.Figure3()
	if b.TotalKGE < 1399.9 || b.TotalKGE > 1400.1 {
		t.Errorf("area %f kGE != 1400", b.TotalKGE)
	}
}

func TestFigure4(t *testing.T) {
	p := getProcessor(t)
	r, err := p.Figure4(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 23 {
		t.Fatal("wrong sweep size")
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if !approx(first.LatencyS, power.AnchorLowLatency, 1e-6) || !approx(last.LatencyS, power.AnchorHighLatency, 1e-6) {
		t.Error("sweep endpoints do not hit the paper's anchors")
	}
	if !approx(first.EnergyJ, power.AnchorLowEnergy, 1e-6) || !approx(last.EnergyJ, power.AnchorHighEnergy, 1e-6) {
		t.Error("energy endpoints do not hit the paper's anchors")
	}
	if r.MinEnergyV > 0.40 {
		t.Errorf("minimum-energy voltage %.2f V too high", r.MinEnergyV)
	}
}

func approx(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}

func TestOpMix(t *testing.T) {
	p := getProcessor(t)
	mix := p.OpMix()
	if mix.Stats.MulShare < 0.45 || mix.Stats.MulShare > 0.70 {
		t.Errorf("mul share %.2f outside plausible band around the paper's 57%%", mix.Stats.MulShare)
	}
}

func TestSchedulerAblation(t *testing.T) {
	rows, err := SchedulerAblation(sched.DefaultResources(), false)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]AblationRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	if byMethod["dbladd/bnb"].Makespan > byMethod["dbladd/list"].Makespan {
		t.Error("exact solver worse than list")
	}
	if byMethod["dbladd/blocked"].Makespan < byMethod["dbladd/bnb"].Makespan {
		t.Error("blocked beat exact?")
	}
}

func TestForwardingAblation(t *testing.T) {
	with, without, err := ForwardingAblation(sched.DefaultResources())
	if err != nil {
		t.Fatal(err)
	}
	if without <= with {
		t.Errorf("longer unit latency should lengthen the block: %d vs %d", without, with)
	}
}

func TestROMStats(t *testing.T) {
	p := getProcessor(t)
	r, err := p.ROM()
	if err != nil {
		t.Fatal(err)
	}
	if r.Words < 1000 {
		t.Errorf("ROM suspiciously small: %d words", r.Words)
	}
}

func TestSectionTiming(t *testing.T) {
	p := getProcessor(t)
	spans := p.SectionTiming()
	if len(spans) != 4 {
		t.Fatalf("expected 4 sections, got %d", len(spans))
	}
	byName := map[string]SectionSpan{}
	total := 0
	for _, s := range spans {
		byName[s.Name] = s
		total += s.Ops
		if s.FirstIssue > s.LastDone {
			t.Fatalf("section %s has inverted span", s.Name)
		}
	}
	if total != 4663 {
		t.Errorf("section ops sum %d, want 4663", total)
	}
	// Dependency order: the main loop cannot finish before the table
	// build starts, and finalize ends the schedule.
	if byName["mainloop"].LastDone < byName["tablebuild"].LastDone {
		t.Error("main loop finished before the table build")
	}
	if byName["finalize"].LastDone != p.CyclesFunctional() {
		t.Errorf("finalize ends at %d, makespan %d", byName["finalize"].LastDone, p.CyclesFunctional())
	}
	// Global scheduling overlaps sections: the table build starts before
	// the multibase chain fully drains.
	if byName["tablebuild"].FirstIssue >= byName["multibase"].LastDone {
		t.Error("no cross-section overlap; scheduler is serializing sections")
	}
	t.Logf("sections:")
	for _, s := range spans {
		t.Logf("  %-10s %4d ops, cycles [%d, %d]", s.Name, s.Ops, s.FirstIssue, s.LastDone)
	}
}
