package core

import (
	mrand "math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// sharedFBProcessor is the FixedBase-enabled counterpart of
// sharedProcessor, built once per test binary.
var sharedFBProcessor *Processor

func getFBProcessor(t testing.TB) *Processor {
	t.Helper()
	if sharedFBProcessor == nil {
		p, err := New(Config{FixedBase: true})
		if err != nil {
			t.Fatal(err)
		}
		sharedFBProcessor = p
	}
	return sharedFBProcessor
}

func TestFixedBaseGated(t *testing.T) {
	p := getProcessor(t)
	if p.HasFixedBase() {
		t.Fatal("default Config built the fixed-base program")
	}
	if _, _, err := p.ScalarMultFixedBase(scalar.Scalar{1}); err == nil {
		t.Fatal("ScalarMultFixedBase on a processor without the program did not error")
	}
	// The executor degrades gracefully to the variable-base program.
	e := p.NewExecutor()
	if e.HasFixedBase() {
		t.Fatal("executor reports fixed-base on a processor without it")
	}
	k := scalar.Scalar{5, 6, 7, 8}
	got, _, err := e.ScalarMultFixedBase(k)
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
		t.Fatal("fallback fixed-base result differs from library")
	}
}

func TestFixedBaseCacheKeyDistinct(t *testing.T) {
	if (Config{}).CacheKey() == (Config{FixedBase: true}.CacheKey()) {
		t.Fatal("FixedBase does not differentiate the cache key")
	}
}

func TestFixedBaseMakespan(t *testing.T) {
	p := getFBProcessor(t)
	if !p.HasFixedBase() {
		t.Fatal("FixedBase config did not build the program")
	}
	fb, vb := p.CyclesFixedBase(), p.CyclesFunctional()
	// The comb trades the doubling chain for ROM: the ISSUE gate is
	// fb <= vb/2 even against the portfolio-optimized variable-base
	// schedule, and default list scheduling already clears it.
	if fb == 0 || fb > vb/2 {
		t.Fatalf("fixed-base makespan %d not below half the variable-base %d", fb, vb)
	}
	t.Logf("makespan: fixedbase=%d variable=%d (%.2fx)", fb, vb, float64(fb)/float64(vb))
}

func TestFixedBaseMatchesLibrary(t *testing.T) {
	p := getFBProcessor(t)
	e := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(31))
	scalars := []scalar.Scalar{
		{}, {1}, {42},
		scalar.FromBig(scalar.Order()),
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()},
		{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()},
	}
	for i, k := range scalars {
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		got, _, err := p.ScalarMultFixedBase(k)
		if err != nil {
			t.Fatalf("scalar %d: processor: %v", i, err)
		}
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			t.Fatalf("scalar %d: processor fixed-base result differs from library", i)
		}
		got, _, err = e.ScalarMultFixedBaseValidated(k, ValidateOracle)
		if err != nil {
			t.Fatalf("scalar %d: executor: %v", i, err)
		}
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			t.Fatalf("scalar %d: executor fixed-base result differs from library", i)
		}
	}
}

func TestFixedBaseLanesParity(t *testing.T) {
	p := getFBProcessor(t)
	e := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(32))
	const n = 5
	ks := make([]scalar.Scalar, n)
	for i := range ks {
		ks[i] = scalar.Scalar{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	}
	ks[2] = scalar.Scalar{2} // even: correction path in one lane only
	outs := make([]curve.Affine, n)
	errs := make([]error, n)
	if _, err := e.ScalarMultFixedBaseLanesValidated(ks, outs, errs, ValidateOracle); err != nil {
		t.Fatal(err)
	}
	for l, k := range ks {
		if errs[l] != nil {
			t.Fatalf("lane %d: %v", l, errs[l])
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
			t.Fatalf("lane %d: lockstep fixed-base result differs from library", l)
		}
	}
}
