// Package core assembles the paper's cryptoprocessor end to end: it runs
// the automated flow (trace recording, job-shop scheduling, control-signal
// generation), executes scalar multiplications on the cycle-accurate
// datapath model, and attaches the calibrated power and area models. The
// cmd tools, benchmarks and examples drive everything through this
// package.
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/gates"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// EndoStepCycles models the cycle cost of Algorithm 1's step 1 when the
// Costello-Longa endomorphisms phi, psi are implemented in hardware
// instead of our doubling-chain substitution (see DESIGN.md): computing
// phi(P), psi(P) and psi(phi(P)) with the published explicit formulas
// costs on the order of 100 GF(p^2) multiplier operations; on the
// one-multiplication-per-cycle datapath that is ~100 issue cycles plus
// pipeline drain and the latency of the short dependent chains.
const EndoStepCycles = 112

// Config parametrizes processor construction.
type Config struct {
	// Resources of the datapath (DefaultResources if zero).
	Resources sched.Resources
	// Scheduling options (MethodList by default).
	Sched sched.Options
	// TraceScalar seeds trace recording; any scalar produces an
	// equivalent schedule (the program is scalar-independent). A fixed
	// default keeps builds deterministic.
	TraceScalar scalar.Scalar
	// FixedBase additionally builds the fixed-base comb microprogram for
	// [k]G (the signing workload): the comb's window tables are baked in
	// as constants and ROM, trading control-ROM area for a far shorter
	// schedule than the generic variable-base program. Executors fall
	// back to the variable-base program when it is disabled.
	FixedBase bool
	// Telemetry, when non-nil, receives wall-clock timing spans for each
	// phase of the build pipeline (functional and endo-workload
	// trace recording and scheduling) on trace track 0, viewable in
	// Perfetto next to the cycle-domain datapath timeline.
	Telemetry *telemetry.Recorder
}

// Processor is a scheduled instance of the FourQ ASIC model.
type Processor struct {
	cfg Config
	// Functional program: full Algorithm 1 including the doubling-chain
	// step 1 (what the RTL actually executes bit-true).
	funcProg   *isa.Program
	funcResult *sched.Result
	// Endo-workload program: step 1 outputs supplied as inputs, matching
	// the paper's workload shape; its makespan + EndoStepCycles is the
	// paper-comparable cycle count.
	endoProg   *isa.Program
	endoResult *sched.Result
	// Fixed-base comb program for [k]G (nil unless Config.FixedBase):
	// window tables in constants + ROM, no external inputs.
	fbProg   *isa.Program
	fbResult *sched.Result
	stats    trace.Stats
	sections []SectionSpan
	// Compiled execution plans (rtl.Compile output) for both programs,
	// built once at New: the paper's chip fixes its ROM/FSM controller at
	// tape-out, and the model mirrors that by discharging validation,
	// hazard analysis and statistics ahead of every run.
	funcCompiled *rtl.CompiledProgram
	endoCompiled *rtl.CompiledProgram
	fbCompiled   *rtl.CompiledProgram
	// Pre-resolved input/output registers ({P.x, P.y} -> {x, y} for the
	// functional program, P0..P3 coordinates for the endo workload), so
	// runs bind operands without building maps.
	funcIn  [2]uint16
	funcOut [2]uint16
	endoIn  [8]uint16
	endoOut [2]uint16
	fbOut   [2]uint16
	// Machine pools for the Processor-level convenience entry points;
	// per-worker Executors own a dedicated machine instead.
	funcPool sync.Pool
	endoPool sync.Pool
	fbPool   sync.Pool
}

// SectionSpan reports where a trace section landed in the schedule.
type SectionSpan struct {
	Name       string
	Ops        int
	FirstIssue int
	LastDone   int
}

// SectionTiming breaks the functional schedule down by algorithm phase
// (multibase, table build, main loop, finalize), showing how the global
// scheduler overlaps them.
func (p *Processor) SectionTiming() []SectionSpan {
	return p.sections
}

// New builds, schedules and verifies a processor instance.
func New(cfg Config) (*Processor, error) {
	if cfg.Resources == (sched.Resources{}) {
		cfg.Resources = sched.DefaultResources()
	}
	if cfg.TraceScalar.IsZero() {
		cfg.TraceScalar = DefaultTraceScalar()
	}
	p := &Processor{cfg: cfg}

	// phase wraps one pipeline step in a wall-clock telemetry span (a
	// no-op without a recorder).
	phase := func(name string, args map[string]any, f func() error) error {
		var sp *telemetry.Span
		if cfg.Telemetry != nil {
			sp = cfg.Telemetry.StartSpan(0, name, "core.pipeline")
		}
		err := f()
		if sp != nil {
			sp.End(args)
		}
		return err
	}

	g := curve.GeneratorAffine()
	var funcTr *trace.ScalarMultTrace
	if err := phase("trace/functional", nil, func() (err error) {
		funcTr, err = trace.BuildScalarMult(cfg.TraceScalar, g)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: trace: %w", err)
	}
	p.stats = funcTr.Graph.Stats()
	var fr *sched.Result
	if err := phase("schedule/functional", map[string]any{"ops": len(funcTr.Graph.Ops)}, func() (err error) {
		fr, err = sched.Schedule(funcTr.Graph, cfg.Resources, cfg.Sched)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: schedule: %w", err)
	}
	p.funcProg, p.funcResult = fr.Program, fr
	p.sections = sectionSpans(funcTr, fr, cfg.Resources)

	mb := curve.NewMultiBase(curve.Generator())
	var bases [4]curve.Affine
	for j := 0; j < 4; j++ {
		bases[j] = mb.P[j].Affine()
	}
	var endoTr *trace.ScalarMultTrace
	if err := phase("trace/endo", nil, func() (err error) {
		endoTr, err = trace.BuildScalarMultWithBases(cfg.TraceScalar, bases)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: endo trace: %w", err)
	}
	var er *sched.Result
	if err := phase("schedule/endo", map[string]any{"ops": len(endoTr.Graph.Ops)}, func() (err error) {
		er, err = sched.Schedule(endoTr.Graph, cfg.Resources, cfg.Sched)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: endo schedule: %w", err)
	}
	p.endoProg, p.endoResult = er.Program, er

	if cfg.FixedBase {
		var fbTr *trace.ScalarMultTrace
		if err := phase("trace/fixedbase", nil, func() (err error) {
			fbTr, err = trace.BuildFixedBaseScalarMult(cfg.TraceScalar, g)
			return err
		}); err != nil {
			return nil, fmt.Errorf("core: fixed-base trace: %w", err)
		}
		var fbr *sched.Result
		if err := phase("schedule/fixedbase", map[string]any{"ops": len(fbTr.Graph.Ops)}, func() (err error) {
			fbr, err = sched.Schedule(fbTr.Graph, cfg.Resources, cfg.Sched)
			return err
		}); err != nil {
			return nil, fmt.Errorf("core: fixed-base schedule: %w", err)
		}
		p.fbProg, p.fbResult = fbr.Program, fbr
	}

	// Ahead-of-time compilation of both microprograms: one-time
	// validation + static hazard analysis + precomputed statistics.
	if err := phase("compile/functional", map[string]any{"instrs": len(p.funcProg.Instrs)}, func() (err error) {
		p.funcCompiled, err = rtl.Compile(p.funcProg)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	if err := phase("compile/endo", map[string]any{"instrs": len(p.endoProg.Instrs)}, func() (err error) {
		p.endoCompiled, err = rtl.Compile(p.endoProg)
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: endo compile: %w", err)
	}
	if p.fbProg != nil {
		if err := phase("compile/fixedbase", map[string]any{"instrs": len(p.fbProg.Instrs)}, func() (err error) {
			p.fbCompiled, err = rtl.Compile(p.fbProg)
			return err
		}); err != nil {
			return nil, fmt.Errorf("core: fixed-base compile: %w", err)
		}
	}
	if err := resolveRegs(p.funcCompiled, []string{"P.x", "P.y"}, p.funcIn[:], []string{"x", "y"}, p.funcOut[:]); err != nil {
		return nil, err
	}
	endoNames := make([]string, 0, 8)
	for j := 0; j < 4; j++ {
		endoNames = append(endoNames, fmt.Sprintf("P%d.x", j), fmt.Sprintf("P%d.y", j))
	}
	if err := resolveRegs(p.endoCompiled, endoNames, p.endoIn[:], []string{"x", "y"}, p.endoOut[:]); err != nil {
		return nil, err
	}
	if p.fbCompiled != nil {
		if err := resolveRegs(p.fbCompiled, nil, nil, []string{"x", "y"}, p.fbOut[:]); err != nil {
			return nil, err
		}
		p.fbPool.New = func() any { return p.fbCompiled.NewMachine() }
	}
	p.funcPool.New = func() any { return p.funcCompiled.NewMachine() }
	p.endoPool.New = func() any { return p.endoCompiled.NewMachine() }
	return p, nil
}

// resolveRegs resolves named program inputs and outputs to registers.
func resolveRegs(cp *rtl.CompiledProgram, inNames []string, in []uint16, outNames []string, out []uint16) error {
	if cp.NumInputs() != len(inNames) {
		return fmt.Errorf("core: program has %d inputs, expected %d", cp.NumInputs(), len(inNames))
	}
	for i, name := range inNames {
		r, ok := cp.InputReg(name)
		if !ok {
			return fmt.Errorf("core: program missing input %q", name)
		}
		in[i] = r
	}
	for i, name := range outNames {
		r, ok := cp.OutputReg(name)
		if !ok {
			return fmt.Errorf("core: program missing output %q", name)
		}
		out[i] = r
	}
	return nil
}

// sectionSpans computes the schedule footprint of each trace section.
func sectionSpans(tr *trace.ScalarMultTrace, r *sched.Result, res sched.Resources) []SectionSpan {
	names := []string{"multibase", "tablebuild", "mainloop", "finalize"}
	var out []SectionSpan
	for _, name := range names {
		rng, ok := tr.Sections[name]
		if !ok {
			continue
		}
		span := SectionSpan{Name: name, Ops: rng[1] - rng[0], FirstIssue: 1 << 30}
		for op := rng[0]; op < rng[1]; op++ {
			st := r.Starts[op]
			if st < span.FirstIssue {
				span.FirstIssue = st
			}
			lat := res.AddLatency
			if tr.Graph.Ops[op].Unit == trace.UnitMul {
				lat = res.MulLatency
			}
			if st+lat > span.LastDone {
				span.LastDone = st + lat
			}
		}
		out = append(out, span)
	}
	return out
}

// CyclesFunctional is the cycle count of the bit-true program (includes
// the 192 substitution doublings of step 1).
func (p *Processor) CyclesFunctional() int { return p.funcProg.Makespan }

// CyclesEndoModeled is the paper-comparable cycle count: the scheduled
// makespan of Algorithm 1 with step 1's endomorphism cost modelled.
func (p *Processor) CyclesEndoModeled() int { return p.endoProg.Makespan + EndoStepCycles }

// Program returns the functional microprogram.
func (p *Processor) Program() *isa.Program { return p.funcProg }

// Compiled returns the compiled execution plan of the functional
// microprogram (immutable, safe to share).
func (p *Processor) Compiled() *rtl.CompiledProgram { return p.funcCompiled }

// EndoProgram returns the endo-workload microprogram.
func (p *Processor) EndoProgram() *isa.Program { return p.endoProg }

// ScheduleResult returns the functional scheduling result.
func (p *Processor) ScheduleResult() *sched.Result { return p.funcResult }

// HasFixedBase reports whether the fixed-base comb program was built
// (Config.FixedBase).
func (p *Processor) HasFixedBase() bool { return p.fbCompiled != nil }

// CyclesFixedBase is the cycle count of the fixed-base comb program, or
// 0 when it was not built.
func (p *Processor) CyclesFixedBase() int {
	if p.fbProg == nil {
		return 0
	}
	return p.fbProg.Makespan
}

// FixedBaseProgram returns the fixed-base comb microprogram (nil unless
// Config.FixedBase).
func (p *Processor) FixedBaseProgram() *isa.Program { return p.fbProg }

// FixedBaseScheduleResult returns the fixed-base scheduling result (nil
// unless Config.FixedBase).
func (p *Processor) FixedBaseScheduleResult() *sched.Result { return p.fbResult }

// FixedBaseCompiled returns the compiled fixed-base execution plan (nil
// unless Config.FixedBase).
func (p *Processor) FixedBaseCompiled() *rtl.CompiledProgram { return p.fbCompiled }

// TraceStats returns the op-mix statistics of the functional trace.
func (p *Processor) TraceStats() trace.Stats { return p.stats }

// ScalarMult executes [k]G bit-true on the RTL model and returns the
// affine result plus execution statistics.
func (p *Processor) ScalarMult(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	g := curve.GeneratorAffine()
	return p.ScalarMultPoint(k, g)
}

// ScalarMultPoint executes [k]P on the RTL model for an arbitrary base
// point (the program is generic: the base point is an input).
func (p *Processor) ScalarMultPoint(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	return p.ScalarMultPointInjected(k, base, nil)
}

// ScalarMultPointInjected executes [k]P with a fault injector attached
// to the datapath model (see rtl.Injector and internal/fault). A nil
// injector is the plain fault-free run. The returned error reports
// structural hazards the corrupted run tripped; value corruption that
// stays architecturally plausible is returned as a (possibly wrong)
// point — classifying it is the caller's job (see ValidateAffine and
// fault.Campaign).
func (p *Processor) ScalarMultPointInjected(k scalar.Scalar, base curve.Affine, inj rtl.Injector) (curve.Affine, rtl.Stats, error) {
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	m := p.funcPool.Get().(*rtl.Machine)
	defer p.funcPool.Put(m)
	st, err := m.Run(rtl.RunInput{
		Bound:     []rtl.Binding{{Reg: p.funcIn[0], Val: base.X}, {Reg: p.funcIn[1], Val: base.Y}},
		Rec:       rec,
		Corrected: dec.Corrected,
		Injector:  inj,
	})
	if err != nil {
		return curve.Affine{}, st, err
	}
	return curve.Affine{X: m.Reg(p.funcOut[0]), Y: m.Reg(p.funcOut[1])}, st, nil
}

// ScalarMultFixedBase executes [k]G on the fixed-base comb program
// (Config.FixedBase must be set — see HasFixedBase). The program has no
// external inputs: only the recoded scalar flows in.
func (p *Processor) ScalarMultFixedBase(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	if p.fbCompiled == nil {
		return curve.Affine{}, rtl.Stats{}, fmt.Errorf("core: fixed-base program not built (Config.FixedBase)")
	}
	rec, corrected := scalar.RecodeFixedBase(k)
	m := p.fbPool.Get().(*rtl.Machine)
	defer p.fbPool.Put(m)
	st, err := m.Run(rtl.RunInput{Rec: rec, Corrected: corrected})
	if err != nil {
		return curve.Affine{}, st, err
	}
	return curve.Affine{X: m.Reg(p.fbOut[0]), Y: m.Reg(p.fbOut[1])}, st, nil
}

// ScalarMultInterpreted executes [k]G on the reference cycle-by-cycle
// interpreter (rtl.Interpret), bypassing the compiled plan. It is the
// semantic baseline of the differential equivalence suite and the
// pre-compilation comparison point of the latency benchmark.
func (p *Processor) ScalarMultInterpreted(k scalar.Scalar) (curve.Affine, rtl.Stats, error) {
	g := curve.GeneratorAffine()
	dec := scalar.Decompose(k)
	out, st, err := rtl.Interpret(p.funcProg, rtl.RunInput{
		Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
		Rec:       scalar.Recode(dec),
		Corrected: dec.Corrected,
	})
	if err != nil {
		return curve.Affine{}, st, err
	}
	return curve.Affine{X: out["x"], Y: out["y"]}, st, nil
}

// ScalarMultEndo executes the endo-workload program: the caller-visible
// result is identical, but step 1's points are computed by the library
// (standing in for the endomorphism unit) and loaded as inputs.
func (p *Processor) ScalarMultEndo(k scalar.Scalar, base curve.Affine) (curve.Affine, rtl.Stats, error) {
	dec := scalar.Decompose(k)
	rec := scalar.Recode(dec)
	mb := curve.NewMultiBase(curve.FromAffine(base))
	bound := make([]rtl.Binding, 8)
	for j := 0; j < 4; j++ {
		a := mb.P[j].Affine()
		bound[2*j] = rtl.Binding{Reg: p.endoIn[2*j], Val: a.X}
		bound[2*j+1] = rtl.Binding{Reg: p.endoIn[2*j+1], Val: a.Y}
	}
	m := p.endoPool.Get().(*rtl.Machine)
	defer p.endoPool.Put(m)
	st, err := m.Run(rtl.RunInput{Bound: bound, Rec: rec, Corrected: dec.Corrected})
	if err != nil {
		return curve.Affine{}, st, err
	}
	return curve.Affine{X: m.Reg(p.endoOut[0]), Y: m.Reg(p.endoOut[1])}, st, nil
}

// TraceScalarMult executes [k]G bit-true on the RTL model under the
// telemetry observer and writes the Chrome trace_event timeline of the
// run (one complete slice per multiplier/adder issue, occupancy
// samples; loadable in Perfetto or chrome://tracing) to w. The result
// is cross-checked against the functional library before the trace is
// written, so a corrupted run cannot produce a plausible-looking
// timeline. It returns the run statistics.
func (p *Processor) TraceScalarMult(k scalar.Scalar, w io.Writer) (rtl.Stats, error) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder()
	tel := rtl.NewRunTelemetry(reg, rec, p.funcProg)
	dec := scalar.Decompose(k)
	g := curve.GeneratorAffine()
	m := p.funcPool.Get().(*rtl.Machine)
	defer p.funcPool.Put(m)
	st, err := m.Run(rtl.RunInput{
		Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
		Rec:       scalar.Recode(dec),
		Corrected: dec.Corrected,
		Observer:  tel.Observe,
	})
	if err != nil {
		return st, err
	}
	tel.Finish(st)
	want := curve.ScalarMult(k, curve.Generator()).Affine()
	if !m.Reg(p.funcOut[0]).Equal(want.X) || !m.Reg(p.funcOut[1]).Equal(want.Y) {
		return st, fmt.Errorf("core: traced run differs from library for k=%v", k)
	}
	return st, rec.WriteTrace(w)
}

// Verify runs nTrials random scalar multiplications on the RTL model and
// cross-checks each against the functional library. It returns the first
// mismatch as an error.
func (p *Processor) Verify(nTrials int, seed int64) error {
	s := uint64(seed)
	next := func() uint64 { // splitmix64
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	for i := 0; i < nTrials; i++ {
		k := scalar.Scalar{next(), next(), next(), next()}
		got, _, err := p.ScalarMult(k)
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", i, err)
		}
		want := curve.ScalarMult(k, curve.Generator()).Affine()
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			return fmt.Errorf("core: trial %d: RTL result differs from library for k=%v", i, k)
		}
	}
	return nil
}

// PowerModel calibrates the Fig. 4 voltage model for this processor's
// paper-comparable cycle count.
func (p *Processor) PowerModel() (*power.Model, error) {
	return power.Calibrate(float64(p.CyclesEndoModeled()))
}

// AreaConfig returns the gates.Config describing this instance.
func (p *Processor) AreaConfig() gates.Config {
	rom, _ := p.funcProg.ROMImage()
	return gates.DefaultConfig(p.funcProg.NumRegs, len(rom))
}

// Area returns the Fig. 3 breakdown, calibrated so this configuration
// reproduces the published 1400 kGE.
func (p *Processor) Area() gates.Breakdown {
	cfg := p.AreaConfig()
	return gates.EstimateCalibrated(cfg, cfg)
}
