package core

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/fp2"
	"repro/internal/gates"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Design-space exploration around the paper's datapath choice: the
// GF(p^2) Karatsuba multiplier needs three GF(p) limb products, so the
// number of physical 127-bit multiplier cores trades area against the
// multiplier's initiation interval (II). The paper builds the
// full-throughput 3-core/II=1 unit; this sweep quantifies what the
// cheaper 2-core/II=2 and 1-core/II=3 variants (and the 4-core
// schoolbook datapath) would have delivered.

// ParetoPoint is one evaluated configuration.
type ParetoPoint struct {
	Name       string
	FpCores    int
	MulII      int
	MulLatency int
	// Cycles is the full-SM makespan under list scheduling.
	Cycles int
	// AreaKGE from the gates model, calibrated against the paper config.
	AreaKGE float64
	// MultiplierKGE is the multiplier block alone (the quantity the
	// core-count trade directly shrinks; the total is dominated by the
	// per-cycle control ROM, which grows with the makespan).
	MultiplierKGE float64
	// LatencyUS at the reference design's 1.2 V clock (the narrower
	// multipliers have shorter critical paths, so this is conservative
	// for them).
	LatencyUS float64
	// LatencyAreaProduct is Table II's figure of merit (kGE * ms).
	LatencyAreaProduct float64
	// Verified is true when the scheduled program was executed on the
	// RTL model (with its II constraint enforced) and matched the
	// functional library.
	Verified bool
}

// paretoConfigs are the explored design points.
var paretoConfigs = []struct {
	name    string
	cores   int
	ii      int
	latency int
}{
	{"3 cores, II=1 (paper)", 3, 1, 3},
	{"2 cores, II=2", 2, 2, 4},
	{"1 core, II=3", 1, 3, 5},
	{"4 cores schoolbook, II=1", 4, 1, 3},
}

// ParetoSweep schedules the full scalar multiplication for every
// datapath variant, verifies each program on the RTL model, and returns
// the area/latency trade-off points.
func ParetoSweep() ([]ParetoPoint, error) {
	k := scalar.Scalar{21, 22, 23, 24}
	tr, err := trace.BuildScalarMult(k, curve.GeneratorAffine())
	if err != nil {
		return nil, err
	}
	refArea := gates.DefaultConfig(0, 0) // registers/ROM filled per variant below

	var out []ParetoPoint
	var refClock float64
	for i, cfg := range paretoConfigs {
		res := sched.DefaultResources()
		res.MulII = cfg.ii
		res.MulLatency = cfg.latency
		r, err := sched.Schedule(tr.Graph, res, sched.Options{Method: sched.MethodList})
		if err != nil {
			return nil, fmt.Errorf("pareto %q: %w", cfg.name, err)
		}
		rom, err := r.Program.ROMImage()
		if err != nil {
			return nil, err
		}
		areaCfg := gates.DefaultConfig(r.Program.NumRegs, len(rom))
		areaCfg.FpMultipliers = cfg.cores
		areaCfg.PipelineStages = cfg.latency
		if i == 0 {
			refArea = areaCfg
		}
		area := gates.EstimateCalibrated(areaCfg, refArea)
		multKGE := area.Blocks[0].KGE

		// RTL verification under the variant's II constraint.
		verified := false
		g := curve.GeneratorAffine()
		dec := scalar.Decompose(k)
		outv, _, err := rtl.Run(r.Program, rtl.RunInput{
			Inputs:    map[string]fp2.Element{"P.x": g.X, "P.y": g.Y},
			Rec:       scalar.Recode(dec),
			Corrected: dec.Corrected,
		})
		if err == nil {
			want := curve.ScalarMult(k, curve.Generator()).Affine()
			verified = outv["x"].Equal(want.X) && outv["y"].Equal(want.Y)
		}

		pt := ParetoPoint{
			Name:          cfg.name,
			FpCores:       cfg.cores,
			MulII:         cfg.ii,
			MulLatency:    cfg.latency,
			Cycles:        r.Makespan,
			AreaKGE:       area.TotalKGE,
			MultiplierKGE: multKGE,
			Verified:      verified,
		}
		if i == 0 {
			m, err := power.Calibrate(float64(r.Makespan))
			if err != nil {
				return nil, err
			}
			refClock = m.Fmax(power.AnchorHighV)
		}
		latency := float64(pt.Cycles) / refClock
		pt.LatencyUS = latency * 1e6
		pt.LatencyAreaProduct = gates.LatencyAreaProduct(pt.AreaKGE, latency)
		out = append(out, pt)
	}
	return out, nil
}
