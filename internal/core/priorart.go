package core

// Prior-art rows of the paper's Table II, as published. These are cited
// measurement results used as the fixed comparison points; our own rows
// are regenerated from the simulator and models.

// CompRow is one line of the Table II comparison.
type CompRow struct {
	Design    string
	Platform  string
	Curve     string
	Cores     int
	Area      string  // published area description
	AreaKGE   float64 // kGE when reported, else 0
	VDD       float64 // volts, 0 when not reported
	LatencyMS float64 // per-operation latency, 0 when not reported
	OpsPerSec float64
	EnergyUJ  float64 // per operation, 0 when not reported
	// LatencyAreaProduct is the paper's (A)x(B) column, kGE*ms.
	LatencyAreaProduct float64
	Note               string
}

// PriorArt lists the published comparison rows of Table II.
var PriorArt = []CompRow{
	{Design: "[5] Knezevic et al.", Platform: "NANGATE 45nm", Curve: "NIST P-256", Cores: 1,
		Area: "1030 kGE", AreaKGE: 1030, LatencyMS: 0.0370, OpsPerSec: 2.70e4, LatencyAreaProduct: 38.1,
		Note: "signature verification, post-synthesis"},
	{Design: "[5] Knezevic et al.", Platform: "NANGATE 45nm", Curve: "NIST P-256", Cores: 1,
		Area: "373 kGE", AreaKGE: 373, LatencyMS: 0.0750, OpsPerSec: 1.33e4, LatencyAreaProduct: 28.0},
	{Design: "[5] Knezevic et al.", Platform: "NANGATE 45nm", Curve: "NIST P-256", Cores: 1,
		Area: "322 kGE", AreaKGE: 322, LatencyMS: 0.0760, OpsPerSec: 1.32e4, LatencyAreaProduct: 24.5},
	{Design: "[5] Knezevic et al.", Platform: "NANGATE 45nm", Curve: "NIST P-256", Cores: 1,
		Area: "253 kGE", AreaKGE: 253, LatencyMS: 0.115, OpsPerSec: 8700, LatencyAreaProduct: 29.1},
	{Design: "[5] Knezevic et al.", Platform: "NANGATE 45nm", Curve: "NIST P-256", Cores: 1,
		Area: "223 kGE", AreaKGE: 223, LatencyMS: 0.212, OpsPerSec: 4720, LatencyAreaProduct: 47.3},
	{Design: "[18] Tamura-Ikeda", Platform: "ASIC 65nm SOTB", Curve: "Any", Cores: 1,
		Area: "2490 kGE", AreaKGE: 2490, LatencyMS: 0.0600, OpsPerSec: 1.67e4, EnergyUJ: 10.7,
		LatencyAreaProduct: 149, Note: "post-layout"},
	{Design: "[17] Tamura-Ikeda", Platform: "ASIC 65nm SOTB", Curve: "Any", Cores: 1,
		Area: "1.92 mm2", VDD: 1.10, LatencyMS: 0.325, OpsPerSec: 3080, EnergyUJ: 13.9,
		Note: "signature generation"},
	{Design: "[17] Tamura-Ikeda", Platform: "ASIC 65nm SOTB", Curve: "Any", Cores: 1,
		Area: "1.92 mm2", VDD: 0.300, LatencyMS: 2.30, OpsPerSec: 435, EnergyUJ: 1.68},
	{Design: "[19] Guneysu-Paar", Platform: "Virtex-4", Curve: "NIST P-256", Cores: 1,
		Area: "1715 LS, 32 DSPs", LatencyMS: 0.495, OpsPerSec: 2020},
	{Design: "[19] Guneysu-Paar", Platform: "Virtex-4", Curve: "NIST P-256", Cores: 16,
		Area: "24574 LS, 512 DSPs", OpsPerSec: 2.47e4},
	{Design: "[20] Loi-Ko", Platform: "Virtex-5", Curve: "NIST P-256", Cores: 1,
		Area: "1980 LS, 7 DSPs, 2 BRAMs", LatencyMS: 3.95, OpsPerSec: 253},
	{Design: "[21] Roy et al.", Platform: "Virtex-5", Curve: "NIST P-256", Cores: 1,
		Area: "4505 LS, 16 DSPs", LatencyMS: 0.570, OpsPerSec: 1750},
	{Design: "[22] Sasdrich-Guneysu", Platform: "Zynq-7020", Curve: "Curve25519", Cores: 1,
		Area: "1029 LS, 20 DSPs", LatencyMS: 0.397, OpsPerSec: 2520},
	{Design: "[22] Sasdrich-Guneysu", Platform: "Zynq-7020", Curve: "Curve25519", Cores: 11,
		Area: "11277 LS, 220 DSPs", LatencyMS: 0.341, OpsPerSec: 3.23e4},
	{Design: "[10] Jarvinen et al.", Platform: "Zynq-7020", Curve: "FourQ", Cores: 1,
		Area: "1691 LS, 27 DSPs, 10 BRAMs", LatencyMS: 0.157, OpsPerSec: 6390},
	{Design: "[10] Jarvinen et al.", Platform: "Zynq-7020", Curve: "FourQ", Cores: 11,
		Area: "5967 LS, 187 DSPs, 110 BRAMs", LatencyMS: 0.170, OpsPerSec: 6.47e4},
}

// Key published reference values used in the paper's headline claims.
const (
	// P256ASICLatencyMS is [5]'s fastest latency (the 3.66x reference).
	P256ASICLatencyMS = 0.0370
	// FourQFPGALatencyMS is [10]'s single-core latency (the 15.5x reference).
	FourQFPGALatencyMS = 0.157
	// ECDSAASICEnergyUJ is [17]'s low-voltage energy (the 5.14x reference).
	ECDSAASICEnergyUJ = 1.68
)
