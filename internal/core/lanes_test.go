package core

import (
	mrand "math/rand"
	"reflect"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
)

func randScalarCore(r *mrand.Rand) scalar.Scalar {
	var k scalar.Scalar
	for i := range k {
		k[i] = r.Uint64()
	}
	return k
}

// laneCase builds n random (scalar, base) pairs mixing fixed-base
// (generator) and variable-base lanes.
func laneCase(rng *mrand.Rand, n int) ([]scalar.Scalar, []curve.Affine) {
	ks := make([]scalar.Scalar, n)
	bases := make([]curve.Affine, n)
	for l := 0; l < n; l++ {
		ks[l] = randScalarCore(rng)
		if l%2 == 0 {
			bases[l] = curve.GeneratorAffine()
		} else {
			bases[l] = curve.ScalarMultBinary(randScalarCore(rng), curve.Generator()).Affine()
		}
	}
	return ks, bases
}

// TestScalarMultLanesParity: the lockstep executor path must agree,
// lane for lane, with independent single-lane ScalarMultPoint runs —
// same points, same Stats — over mixed fixed/variable-base batches and
// partial batches narrower than the widest the executor has seen.
func TestScalarMultLanesParity(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	ref := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(777))
	for _, n := range []int{4, 1, 3} { // widest first: later runs are partial batches
		ks, bases := laneCase(rng, n)
		outs := make([]curve.Affine, n)
		errs := make([]error, n)
		st, err := ex.ScalarMultLanes(ks, bases, outs, errs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for l := 0; l < n; l++ {
			if errs[l] != nil {
				t.Fatalf("n=%d lane %d: %v", n, l, errs[l])
			}
			want, wantSt, err := ref.ScalarMultPoint(ks[l], bases[l])
			if err != nil {
				t.Fatal(err)
			}
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				t.Fatalf("n=%d lane %d: lockstep point differs from single-lane", n, l)
			}
			if !reflect.DeepEqual(st, wantSt) {
				t.Fatalf("n=%d lane %d: stats differ", n, l)
			}
		}
	}
	if ex.Runs() != 8 {
		t.Fatalf("executor counted %d runs, want 8", ex.Runs())
	}
}

// TestScalarMultLanesValidated checks the per-lane validation contract:
// all-good batches pass every level, and the oracle level agrees with
// the functional model.
func TestScalarMultLanesValidated(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(778))
	ks, bases := laneCase(rng, 3)
	outs := make([]curve.Affine, 3)
	errs := make([]error, 3)
	for _, v := range []Validate{ValidateNone, ValidateOnCurve, ValidateOracle} {
		if _, err := ex.ScalarMultLanesValidated(ks, bases, outs, errs, v); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for l := range errs {
			if errs[l] != nil {
				t.Fatalf("%v lane %d: %v", v, l, errs[l])
			}
			want := curve.ScalarMult(ks[l], curve.FromAffine(bases[l])).Affine()
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				t.Fatalf("%v lane %d: wrong point", v, l)
			}
		}
	}
}

// TestScalarMultLanesRejectsMisuse covers the whole-batch error paths.
func TestScalarMultLanesRejectsMisuse(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	if _, err := ex.ScalarMultLanes(nil, nil, nil, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	ks := []scalar.Scalar{DefaultTraceScalar(), DefaultTraceScalar()}
	bases := []curve.Affine{curve.GeneratorAffine()}
	if _, err := ex.ScalarMultLanes(ks, bases, make([]curve.Affine, 2), make([]error, 2)); err == nil {
		t.Fatal("mismatched bases length must error")
	}
}

// TestScalarMultLanesZeroAllocs pins the steady-state guarantee at the
// executor layer: a warm lane batch allocates nothing per run.
func TestScalarMultLanesZeroAllocs(t *testing.T) {
	p := getProcessor(t)
	ex := p.NewExecutor()
	rng := mrand.New(mrand.NewSource(779))
	const n = 4
	ks, bases := laneCase(rng, n)
	outs := make([]curve.Affine, n)
	errs := make([]error, n)
	if _, err := ex.ScalarMultLanes(ks, bases, outs, errs); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ex.ScalarMultLanes(ks, bases, outs, errs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ScalarMultLanes allocates %.1f times per batch steady-state, want 0", allocs)
	}
}

// FuzzLaneParity cross-checks the full scalar-multiplication program in
// lockstep against the single-lane executor for random lane counts and
// scalars; seeds cover the degenerate single lane and the full width.
func FuzzLaneParity(f *testing.F) {
	const maxLanes = 4
	f.Add(uint8(0), uint64(0xabcd)) // 1 lane
	f.Add(uint8(maxLanes-1), uint64(0xef01))
	p := getProcessor(f)
	ex := p.NewExecutor()
	ref := p.NewExecutor()
	f.Fuzz(func(t *testing.T, lanes uint8, seed uint64) {
		n := int(lanes%maxLanes) + 1
		rng := mrand.New(mrand.NewSource(int64(seed)))
		ks, bases := laneCase(rng, n)
		outs := make([]curve.Affine, n)
		errs := make([]error, n)
		if _, err := ex.ScalarMultLanes(ks, bases, outs, errs); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < n; l++ {
			if errs[l] != nil {
				t.Fatalf("lane %d: %v", l, errs[l])
			}
			want, _, err := ref.ScalarMultPoint(ks[l], bases[l])
			if err != nil {
				t.Fatal(err)
			}
			if !outs[l].X.Equal(want.X) || !outs[l].Y.Equal(want.Y) {
				t.Fatalf("lane %d: lockstep diverges from single-lane", l)
			}
		}
	})
}
