package core

import (
	"testing"

	"repro/internal/scalar"
	"repro/internal/sched"
)

// TestPortfolioProcessorBitTrue is the end-to-end soundness property of
// the portfolio scheduler: a processor built from portfolio schedules
// must pass the RTL hazard compilation inside New, clear Verify's
// functional differential, and produce byte-identical scalar-mult
// outputs to the single-solver (list) processor — a reordered schedule
// may change the cycle count but never the arithmetic.
func TestPortfolioProcessorBitTrue(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second full processor")
	}
	pp, err := New(Config{Sched: sched.Options{
		Method: sched.MethodPortfolio,
		Seed:   7,
		Portfolio: sched.PortfolioKnobs{
			TabuWorkers: 2,
			LNSWorkers:  1,
			Rounds:      1,
			TabuIters:   25,
			Window:      24,
			BnBNodes:    20_000,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	pl := getProcessor(t)
	if pp.CyclesFunctional() > pl.CyclesFunctional() {
		t.Errorf("portfolio schedule (%d cycles) worse than list (%d)",
			pp.CyclesFunctional(), pl.CyclesFunctional())
	}
	if r := pp.ScheduleResult(); r.Solver != "portfolio" || r.ScheduleHash == 0 {
		t.Fatalf("schedule provenance: %+v", r)
	}
	if err := pp.Verify(2, 424242); err != nil {
		t.Fatal(err)
	}
	ks := []scalar.Scalar{
		{1}, {2},
		{0xDEADBEEF, 0xFEEDFACE, 0x12345678, 0x0BADF00D},
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
	}
	for _, k := range ks {
		got, _, err := pp.ScalarMult(k)
		if err != nil {
			t.Fatalf("portfolio RTL run k=%v: %v", k, err)
		}
		want, _, err := pl.ScalarMult(k)
		if err != nil {
			t.Fatal(err)
		}
		if !got.X.Equal(want.X) || !got.Y.Equal(want.Y) {
			t.Errorf("k=%v: portfolio (%v,%v) != list (%v,%v)", k, got.X, got.Y, want.X, want.Y)
		}
	}
}
