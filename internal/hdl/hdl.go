// Package hdl exports the modelled cryptoprocessor as synthesizable-style
// SystemVerilog (unpacked-array ports carry the recoded digit RAM): a
// structural top level wiring the register file, the
// pipelined Karatsuba GF(p^2) multiplier (Algorithm 2 written
// behaviourally over wide vectors), the two-lane adder/subtractor, the
// forwarding muxes and the ROM-driven sequencer, plus the program ROM as
// a $readmemh image.
//
// The generated RTL mirrors the Go cycle-accurate model
// (internal/rtl) construct for construct; functional truth within this
// repository is established by the Go model, and the export exists so the
// design can be taken into a standard simulation/synthesis flow.
package hdl

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Design is a set of generated files (name -> contents).
type Design map[string]string

// Generate renders the full design for a scheduled program.
func Generate(p *isa.Program) (Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	words, err := p.ROMImage()
	if err != nil {
		return nil, err
	}
	d := Design{}
	d["rom.hex"] = romHex(words)
	d["fp2_mul.v"] = fp2MulV(p.MulLatency)
	d["fp2_addsub.v"] = fp2AddSubV()
	d["regfile.v"] = regfileV(p.NumRegs)
	d["sequencer.v"] = sequencerV(p, len(words))
	d["fourq_sm_top.v"] = topV(p, len(words))
	return d, nil
}

func romHex(words []uint64) string {
	var b strings.Builder
	for _, w := range words {
		fmt.Fprintf(&b, "%016x\n", w)
	}
	return b.String()
}

// fp2MulV renders the pipelined Karatsuba multiplier with lazy
// reduction: a literal transcription of the paper's Algorithm 2 staged
// across `stages` pipeline registers.
func fp2MulV(stages int) string {
	return fmt.Sprintf(`// GF(p^2) pipelined Karatsuba multiplier, p = 2^127-1 (Algorithm 2).
// Latency %d cycles, initiation interval 1.
module fp2_mul (
    input  wire         clk,
    input  wire [253:0] a,   // {a1[126:0], a0[126:0]}
    input  wire [253:0] b,
    output wire [253:0] z
);
    localparam [126:0] P = 127'h7FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF;

    wire [126:0] x0 = a[126:0];
    wire [126:0] x1 = a[253:127];
    wire [126:0] y0 = b[126:0];
    wire [126:0] y1 = b[253:127];

    // Stage 1: the three Karatsuba partial products and pre-additions.
    reg [253:0] t0_q, t1_q;
    reg [255:0] t6_q;
    always @(posedge clk) begin
        t0_q <= x0 * y0;
        t1_q <= x1 * y1;
        t6_q <= (x0 + x1) * (y0 + y1);
    end

    // Stage 2: lazy accumulation (t4 = t0-t1 made non-negative by adding
    // p*(2^127+1) = 2^254-1; t8 = t6 - (t0+t1) is the cross term).
    reg [254:0] t7_q;
    reg [255:0] t8_q;
    always @(posedge clk) begin
        t7_q <= (t0_q >= t1_q) ? (t0_q - t1_q)
                               : (t0_q + 255'h3FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF - t1_q);
        t8_q <= t6_q - t0_q - t1_q;
    end

    // Stage 3: Mersenne folds and final conditional subtractions.
    reg [253:0] z_q;
    wire [127:0] f0 = t7_q[126:0] + t7_q[253:127];
    wire [127:0] f1 = t8_q[126:0] + t8_q[253:127] + t8_q[255:254];
    wire [127:0] r0a = (f0 >= {1'b0, P}) ? (f0 - {1'b0, P}) : f0;
    wire [127:0] r1a = (f1 >= {1'b0, P}) ? (f1 - {1'b0, P}) : f1;
    wire [126:0] r0 = (r0a[126:0] == P) ? 127'd0 : r0a[126:0];
    wire [126:0] r1 = (r1a[126:0] == P) ? 127'd0 : r1a[126:0];
    always @(posedge clk) begin
        z_q <= {r1, r0};
    end

    assign z = z_q;
endmodule
`, stages)
}

func fp2AddSubV() string {
	return `// GF(p^2) adder/subtractor: two independent GF(p) lanes with per-lane
// add/subtract commands (cmd[0] = real lane, cmd[1] = imaginary lane;
// 0 = add, 1 = subtract). Single-cycle.
module fp2_addsub (
    input  wire         clk,
    input  wire [253:0] a,
    input  wire [253:0] b,
    input  wire [1:0]   cmd,
    output wire [253:0] z
);
    localparam [126:0] P = 127'h7FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF;

    function [126:0] lane;
        input [126:0] x;
        input [126:0] y;
        input         sub;
        reg   [127:0] s;
        begin
            if (sub)
                s = (x >= y) ? (x - y) : (x + {1'b0, P} - y);
            else
                s = x + y;
            // fold bit 127 and normalize
            s = s[126:0] + s[127];
            if (s[126:0] == P) s = 0;
            lane = s[126:0];
        end
    endfunction

    reg [253:0] z_q;
    always @(posedge clk) begin
        z_q[126:0]   <= lane(a[126:0],   b[126:0],   cmd[0]);
        z_q[253:127] <= lane(a[253:127], b[253:127], cmd[1]);
    end
    assign z = z_q;
endmodule
`
}

func regfileV(numRegs int) string {
	addrBits := 1
	for 1<<addrBits < numRegs {
		addrBits++
	}
	return fmt.Sprintf(`// 4-read / 2-write register file, %d x 254-bit words.
module regfile (
    input  wire         clk,
    input  wire [%d:0]  raddr_a,
    input  wire [%d:0]  raddr_b,
    input  wire [%d:0]  raddr_c,
    input  wire [%d:0]  raddr_d,
    output wire [253:0] rdata_a,
    output wire [253:0] rdata_b,
    output wire [253:0] rdata_c,
    output wire [253:0] rdata_d,
    input  wire         wen_a,
    input  wire [%d:0]  waddr_a,
    input  wire [253:0] wdata_a,
    input  wire         wen_b,
    input  wire [%d:0]  waddr_b,
    input  wire [253:0] wdata_b
);
    reg [253:0] mem [0:%d];

    assign rdata_a = mem[raddr_a];
    assign rdata_b = mem[raddr_b];
    assign rdata_c = mem[raddr_c];
    assign rdata_d = mem[raddr_d];

    always @(posedge clk) begin
        if (wen_a) mem[waddr_a] <= wdata_a;
        if (wen_b) mem[waddr_b] <= wdata_b;
    end
endmodule
`, numRegs,
		addrBits-1, addrBits-1, addrBits-1, addrBits-1,
		addrBits-1, addrBits-1, numRegs-1)
}

// sequencerV renders the FSM: cycle counter, ROM fetch, control-word
// decode, runtime table addressing from the recoded digit RAM, and the
// dynamic sign commands.
func sequencerV(p *isa.Program, romWords int) string {
	var tbl strings.Builder
	for u := 0; u < 8; u++ {
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&tbl, "            table_addr[%d][%d] = 9'd%d;\n", u, c, p.TableRegs[u][c])
		}
	}
	var corr strings.Builder
	for c := 0; c < 4; c++ {
		fmt.Fprintf(&corr, "            corr_ident[%d] = 9'd%d;\n", c, p.CorrIdentRegs[c])
	}
	return fmt.Sprintf(`// ROM-driven sequencer: walks %d control words (two per cycle), decodes
// the 64-bit instruction format of internal/isa, resolves runtime table
// operands from the recoded digit RAM (sign s_i, index v_i) and produces
// the datapath control signals.
module sequencer (
    input  wire        clk,
    input  wire        rst,
    // recoded scalar digits, loaded before start
    input  wire [7:0]  digit_v   [0:64],   // table indices v_i
    input  wire        digit_s   [0:64],   // 1 = negative sign s_i
    input  wire        corr_flag,          // parity-correction flag
    output reg  [63:0] mul_word,
    output reg  [63:0] add_word,
    output reg  [%d:0] cycle,
    output reg         done
);
    localparam MAKESPAN = %d;

    reg [63:0] rom [0:%d];
    initial $readmemh("rom.hex", rom);

    // Fixed address maps generated from the scheduled program.
    reg [8:0] table_addr [0:7][0:3];
    reg [8:0] corr_ident [0:3];
    initial begin
%s%s    end

    always @(posedge clk) begin
        if (rst) begin
            cycle <= 0;
            done  <= 0;
        end else if (!done) begin
            mul_word <= rom[2*cycle];
            add_word <= rom[2*cycle + 1];
            if (cycle == MAKESPAN)
                done <= 1;
            else
                cycle <= cycle + 1;
        end
    end

    // Operand resolution (per the isa control-word layout):
    //   kind 1 = register, 2/3 = forwarding, 4 = table read, 5 = correction.
    // Table reads swap the X+Y / Y-X coordinates when digit_s[i] is set;
    // dynamic-command adds subtract when digit_s[i] (or corr_flag) is set.
    function [8:0] resolve_addr;
        input [2:0] kind;
        input [8:0] regaddr;
        input [1:0] coord;
        input [6:0] digit;
        reg   [1:0] eff;
        begin
            case (kind)
                3'd4: begin
                    eff = coord;
                    if (digit_s[digit] && coord < 2)
                        eff = coord ^ 2'd1;
                    resolve_addr = table_addr[digit_v[digit]][eff];
                end
                3'd5: begin
                    if (corr_flag) begin
                        eff = coord;
                        if (coord < 2) eff = coord ^ 2'd1;
                        resolve_addr = table_addr[0][eff];
                    end else
                        resolve_addr = corr_ident[coord];
                end
                default: resolve_addr = regaddr;
            endcase
        end
    endfunction
endmodule
`, romWords, cycleBits(p.Makespan)-1, p.Makespan, romWords-1, tbl.String(), corr.String())
}

func cycleBits(makespan int) int {
	b := 1
	for 1<<b <= makespan {
		b++
	}
	return b
}

func topV(p *isa.Program, romWords int) string {
	return fmt.Sprintf(`// FourQ scalar-multiplication unit: structural top level.
// Generated from a scheduled microprogram: makespan %d cycles,
// %d instructions, %d registers, multiplier latency %d, adder latency %d.
module fourq_sm_top (
    input  wire         clk,
    input  wire         rst,
    input  wire [7:0]   digit_v [0:64],
    input  wire         digit_s [0:64],
    input  wire         corr_flag,
    output wire         done
);
    wire [63:0] mul_word, add_word;
    wire [%d:0] cycle;

    sequencer u_seq (
        .clk(clk), .rst(rst),
        .digit_v(digit_v), .digit_s(digit_s), .corr_flag(corr_flag),
        .mul_word(mul_word), .add_word(add_word),
        .cycle(cycle), .done(done)
    );

    // Register file read/write buses.
    wire [253:0] rdata_a, rdata_b, rdata_c, rdata_d;
    wire [253:0] mul_out, add_out;

    // Forwarding muxes: operand kind 2 selects mul_out, 3 selects add_out.
    wire [253:0] mul_a = (mul_word[14:12] == 3'd2) ? mul_out :
                         (mul_word[14:12] == 3'd3) ? add_out : rdata_a;
    wire [253:0] mul_b = (mul_word[35:33] == 3'd2) ? mul_out :
                         (mul_word[35:33] == 3'd3) ? add_out : rdata_b;
    wire [253:0] add_a = (add_word[14:12] == 3'd2) ? mul_out :
                         (add_word[14:12] == 3'd3) ? add_out : rdata_c;
    wire [253:0] add_b = (add_word[35:33] == 3'd2) ? mul_out :
                         (add_word[35:33] == 3'd3) ? add_out : rdata_d;

    fp2_mul u_mul (.clk(clk), .a(mul_a), .b(mul_b), .z(mul_out));

    // Adder command bits: static from the control word (bits 4:3), or
    // both-lanes-subtract when the dynamic mode bit (2) is set and the
    // referenced digit's sign (or the correction flag, digit 127) is
    // negative.
    wire [6:0] dyn_digit = add_word[11:5];
    wire       dyn_neg   = (dyn_digit == 7'd127) ? corr_flag : digit_s[dyn_digit];
    wire [1:0] add_cmd   = add_word[2] ? {2{dyn_neg}} : {add_word[4], add_word[3]};
    fp2_addsub u_add (.clk(clk), .a(add_a), .b(add_b), .cmd(add_cmd), .z(add_out));

    regfile u_rf (
        .clk(clk),
        .raddr_a(mul_word[23:15]), .raddr_b(mul_word[44:36]),
        .raddr_c(add_word[23:15]), .raddr_d(add_word[44:36]),
        .rdata_a(rdata_a), .rdata_b(rdata_b), .rdata_c(rdata_c), .rdata_d(rdata_d),
        .wen_a(mul_word[0] & ~mul_word[63]), .waddr_a(mul_word[62:54]), .wdata_a(mul_out),
        .wen_b(add_word[0] & ~add_word[63]), .waddr_b(add_word[62:54]), .wdata_b(add_out)
    );
endmodule
`, p.Makespan, len(p.Instrs), p.NumRegs, p.MulLatency, p.AddLatency, cycleBits(p.Makespan)-1)
}
