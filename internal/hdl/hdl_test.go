package hdl

import (
	mrand "math/rand"
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/isa"
	"repro/internal/scalar"
	"repro/internal/sched"
	"repro/internal/trace"
)

func generatedDesign(t testing.TB) Design {
	t.Helper()
	rng := mrand.New(mrand.NewSource(51))
	var k scalar.Scalar
	for i := range k {
		k[i] = rng.Uint64()
	}
	p := curve.Generator()
	table := curve.BuildTable(curve.NewMultiBase(p))
	tr, err := trace.BuildDblAdd(k, p, table)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Schedule(tr.Graph, sched.DefaultResources(), sched.Options{Method: sched.MethodList})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(r.Program)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateProducesAllFiles(t *testing.T) {
	d := generatedDesign(t)
	for _, f := range []string{"rom.hex", "fp2_mul.v", "fp2_addsub.v", "regfile.v", "sequencer.v", "fourq_sm_top.v"} {
		if _, ok := d[f]; !ok {
			t.Errorf("missing generated file %s", f)
		}
		if len(d[f]) == 0 {
			t.Errorf("empty generated file %s", f)
		}
	}
}

func TestVerilogStructure(t *testing.T) {
	d := generatedDesign(t)
	for name, src := range d {
		if !strings.HasSuffix(name, ".v") {
			continue
		}
		// Every module closes, and counts match.
		mods := strings.Count(src, "\nmodule ") + boolToInt(strings.HasPrefix(src, "module "))
		if mods == 0 {
			mods = strings.Count(src, "module ")
		}
		ends := strings.Count(src, "endmodule")
		opens := strings.Count(src, "module ") - strings.Count(src, "endmodule")
		if opens != 0 {
			t.Errorf("%s: %d module decls vs %d endmodule", name, strings.Count(src, "module "), ends)
		}
		// Balanced begin/end.
		if strings.Count(src, "begin") != strings.Count(src, "\n        end")+strings.Count(src, " end")+strings.Count(src, "\nend") {
			// loose check only: begins must not exceed total 'end' tokens
			if strings.Count(src, "begin") > strings.Count(src, "end") {
				t.Errorf("%s: unbalanced begin/end", name)
			}
		}
	}
	// The top instantiates every submodule.
	top := d["fourq_sm_top.v"]
	for _, inst := range []string{"sequencer u_seq", "fp2_mul u_mul", "fp2_addsub u_add", "regfile u_rf"} {
		if !strings.Contains(top, inst) {
			t.Errorf("top missing instantiation %q", inst)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestROMHexMatchesProgram(t *testing.T) {
	d := generatedDesign(t)
	lines := strings.Split(strings.TrimSpace(d["rom.hex"]), "\n")
	for i, l := range lines {
		if len(l) != 16 {
			t.Fatalf("rom.hex line %d not a 64-bit word: %q", i, l)
		}
	}
	// Sequencer references the right ROM depth.
	if !strings.Contains(d["sequencer.v"], "$readmemh(\"rom.hex\", rom)") {
		t.Error("sequencer does not load rom.hex")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generatedDesign(t)
	b := generatedDesign(t)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("%s not deterministic", name)
		}
	}
}

func TestTableAddressMapEmbedded(t *testing.T) {
	d := generatedDesign(t)
	seq := d["sequencer.v"]
	// All 32 table-address assignments plus 4 correction constants.
	if strings.Count(seq, "table_addr[") < 32 {
		t.Error("table address map incomplete")
	}
	if strings.Count(seq, "corr_ident[") < 4 {
		t.Error("correction constants missing")
	}
}

func TestGenerateRejectsInvalidProgram(t *testing.T) {
	// A program that double-issues the multiplier must be rejected by the
	// structural validation before any Verilog is rendered.
	bad := &isa.Program{
		NumRegs: 4, Makespan: 5, MulLatency: 3, AddLatency: 1, MulII: 1,
		Instrs: []isa.Instr{
			{Cycle: 0, Unit: isa.UnitMul, Dst: 1},
			{Cycle: 0, Unit: isa.UnitMul, Dst: 2},
		},
	}
	if _, err := Generate(bad); err == nil {
		t.Error("invalid program accepted")
	}
}
