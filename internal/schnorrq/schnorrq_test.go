package schnorrq

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("schnorrq over fourq")
	sig := k.Sign(msg)
	if !Verify(&k.Public, msg, sig[:]) {
		t.Fatal("valid signature rejected")
	}
}

func TestDeterministicSignatures(t *testing.T) {
	var seed [SeedSize]byte
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	k1, err := NewKeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("determinism")
	s1 := k1.Sign(msg)
	s2 := k2.Sign(msg)
	if !bytes.Equal(s1[:], s2[:]) {
		t.Fatal("same seed + message produced different signatures")
	}
	if k1.Public.Bytes() != k2.Public.Bytes() {
		t.Fatal("same seed produced different public keys")
	}
	// Different messages must produce different nonce points.
	s3 := k1.Sign([]byte("other"))
	if bytes.Equal(s1[:32], s3[:32]) {
		t.Fatal("nonce reuse across messages")
	}
}

func TestRejections(t *testing.T) {
	k, _ := GenerateKey(rand.Reader)
	msg := []byte("msg")
	sig := k.Sign(msg)

	if Verify(&k.Public, []byte("other msg"), sig[:]) {
		t.Error("wrong message accepted")
	}
	bad := sig
	bad[5] ^= 0x40 // corrupt R
	if Verify(&k.Public, msg, bad[:]) {
		t.Error("corrupted R accepted")
	}
	bad = sig
	bad[curve0()+3] ^= 1 // corrupt s
	if Verify(&k.Public, msg, bad[:]) {
		t.Error("corrupted s accepted")
	}
	if Verify(&k.Public, msg, sig[:10]) {
		t.Error("truncated signature accepted")
	}
	other, _ := GenerateKey(rand.Reader)
	if Verify(&other.Public, msg, sig[:]) {
		t.Error("wrong key accepted")
	}
	// Non-canonical s (>= N): all-ones scalar.
	bad = sig
	for i := curve0(); i < len(bad); i++ {
		bad[i] = 0xFF
	}
	if Verify(&k.Public, msg, bad[:]) {
		t.Error("non-canonical s accepted")
	}
}

func curve0() int { return SignatureSize - 32 }

func TestPublicKeyRoundTrip(t *testing.T) {
	k, _ := GenerateKey(rand.Reader)
	enc := k.Public.Bytes()
	pk, err := PublicKeyFromBytes(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sig := k.Sign(msg)
	if !Verify(pk, msg, sig[:]) {
		t.Fatal("signature invalid under decoded public key")
	}
	if _, err := PublicKeyFromBytes(enc[:10]); err == nil {
		t.Error("short public key accepted")
	}
}

func TestManyKeysAndMessages(t *testing.T) {
	for i := 0; i < 4; i++ {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			msg := []byte{byte(i), byte(j), 0xAB}
			sig := k.Sign(msg)
			if !Verify(&k.Public, msg, sig[:]) {
				t.Fatalf("key %d message %d rejected", i, j)
			}
		}
	}
}

func BenchmarkSign(b *testing.B) {
	k, _ := GenerateKey(rand.Reader)
	msg := []byte("benchmark")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigSink = k.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	k, _ := GenerateKey(rand.Reader)
	msg := []byte("benchmark")
	sig := k.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(&k.Public, msg, sig[:]) {
			b.Fatal("verify failed")
		}
	}
}

var sigSink [SignatureSize]byte
