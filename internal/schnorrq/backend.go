package schnorrq

import (
	"context"
	"errors"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// ScalarMulter is a pluggable backend for the scheme's scalar
// multiplications, satisfied by internal/engine.Engine: SignWith and
// VerifyWith route every [k]P through it instead of the in-process
// functional model, so signatures can be produced and checked on the
// modeled accelerator (or any other offload path).
type ScalarMulter interface {
	ScalarMultAffine(ctx context.Context, k scalar.Scalar, base curve.Affine) (curve.Affine, error)
}

// FixedBaseScalarMulter is the optional fast path of a ScalarMulter: a
// backend that can compute generator multiplications [k]G on a cheaper
// dedicated schedule (internal/engine routes them to the fixed-base
// comb microprogram). SignWith type-asserts for it, so the commitment
// multiplication — the only curve operation in signing — automatically
// rides the cheap schedule when the backend offers one; verification's
// [h]A is genuinely variable-base and stays on ScalarMultAffine.
type FixedBaseScalarMulter interface {
	ScalarMultFixedBase(ctx context.Context, k scalar.Scalar) (curve.Affine, error)
}

// SignWith produces the same deterministic signature as Sign, computing
// the commitment R = [r]G on the backend (on its fixed-base path when
// it implements FixedBaseScalarMulter).
func (k *PrivateKey) SignWith(ctx context.Context, sm ScalarMulter, msg []byte) ([SignatureSize]byte, error) {
	var sig [SignatureSize]byte
	r := hashToScalar(k.prefix[:], msg)
	if r.IsZero() {
		r = scalar.FromUint64(1) // mirror Sign's degenerate-nonce fallback
	}
	var Ra curve.Affine
	var err error
	if fb, ok := sm.(FixedBaseScalarMulter); ok {
		Ra, err = fb.ScalarMultFixedBase(ctx, r)
	} else {
		Ra, err = sm.ScalarMultAffine(ctx, r, curve.GeneratorAffine())
	}
	if err != nil {
		return sig, err
	}
	Renc := curve.FromAffine(Ra).Bytes()
	h := hashToScalar(Renc[:], k.Public.enc[:], msg)
	s := scalar.SubModN(r, scalar.MulModN(h, k.d))

	copy(sig[:curve.Size], Renc[:])
	sb := s.Bytes()
	copy(sig[curve.Size:], sb[:])
	return sig, nil
}

// VerifyWith checks a signature like Verify, computing the two scalar
// multiplications [s]G and [h]A on the backend and combining them with
// one functional point addition. The bool is the verdict; the error
// reports a backend failure (on which the verdict is meaningless).
func VerifyWith(ctx context.Context, sm ScalarMulter, pub *PublicKey, msg, sig []byte) (bool, error) {
	if len(sig) != SignatureSize {
		return false, nil
	}
	R, err := curve.FromBytes(sig[:curve.Size])
	if err != nil {
		return false, nil
	}
	s, err := scalar.FromBytes(sig[curve.Size:])
	if err != nil {
		return false, nil
	}
	if s.Big().Cmp(scalar.Order()) >= 0 {
		return false, nil
	}
	h := hashToScalar(sig[:curve.Size], pub.enc[:], msg)

	sG, err := sm.ScalarMultAffine(ctx, s, curve.GeneratorAffine())
	if err != nil {
		return false, err
	}
	hA, err := sm.ScalarMultAffine(ctx, h, pub.A.Affine())
	if err != nil {
		return false, err
	}
	lhs := curve.Add(curve.FromAffine(sG), curve.FromAffine(hA))
	return lhs.Equal(R), nil
}

// FuncScalarMulter adapts the pure functional curve model to the
// ScalarMulter interface — the software fallback and the differential
// reference for engine-backed signing.
type FuncScalarMulter struct{}

// ScalarMultAffine computes [k]base in software.
func (FuncScalarMulter) ScalarMultAffine(_ context.Context, k scalar.Scalar, base curve.Affine) (curve.Affine, error) {
	if !base.IsOnCurveAffine() {
		return curve.Affine{}, errors.New("schnorrq: base point not on curve")
	}
	return curve.ScalarMult(k, curve.FromAffine(base)).Affine(), nil
}
