// Package schnorrq implements a SchnorrQ-style signature scheme over
// FourQ: the Schnorr variant the FourQ authors pair with the curve
// (deterministic nonces, hash-derived keys). It complements the ECDSA
// implementation as the second signature workload for the modelled
// accelerator; signing costs one fixed-base scalar multiplication and
// verification one double-scalar multiplication, exactly the operations
// the ASIC accelerates.
//
// Scheme (following the SchnorrQ design):
//
//	key:    d <- SHA-512(seed)[:32] reduced mod N;  A = [d]G
//	sign:   r = SHA-512(seed[32:] || m) mod N; R = [r]G
//	        h = SHA-512(enc(R) || enc(A) || m) mod N
//	        s = r - h*d mod N; signature = (enc(R), s)
//	verify: h = SHA-512(enc(R) || enc(A) || m) mod N
//	        accept iff [s]G + [h]A == R
package schnorrq

import (
	"crypto/sha512"
	"errors"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// SeedSize is the private seed length.
const SeedSize = 32

// SignatureSize is the encoded signature length: a compressed point plus
// a 32-byte scalar.
const SignatureSize = curve.Size + scalar.Size

// PrivateKey holds the seed and the derived signing material.
type PrivateKey struct {
	seed   [SeedSize]byte
	d      scalar.Scalar
	prefix [32]byte // nonce-derivation secret (second half of the seed hash)
	Public PublicKey
}

// PublicKey is the point A = [d]G with its cached encoding.
type PublicKey struct {
	A   curve.Point
	enc [curve.Size]byte
}

// Bytes returns the compressed public key.
func (p *PublicKey) Bytes() [curve.Size]byte { return p.enc }

// PublicKeyFromBytes decodes a compressed public key.
func PublicKeyFromBytes(b []byte) (*PublicKey, error) {
	pt, err := curve.FromBytes(b)
	if err != nil {
		return nil, err
	}
	var pk PublicKey
	pk.A = pt
	copy(pk.enc[:], b)
	return &pk, nil
}

// hashToScalar reduces SHA-512 output modulo the group order.
func hashToScalar(parts ...[]byte) scalar.Scalar {
	h := sha512.New()
	for _, p := range parts {
		h.Write(p)
	}
	sum := h.Sum(nil)
	v := new(big.Int).SetBytes(sum)
	v.Mod(v, scalar.Order())
	return scalar.FromBig(v)
}

// GenerateKey draws a random seed from rand and derives the key pair.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	var seed [SeedSize]byte
	if _, err := io.ReadFull(rand, seed[:]); err != nil {
		return nil, err
	}
	return NewKeyFromSeed(seed)
}

// NewKeyFromSeed deterministically derives a key pair from a seed.
func NewKeyFromSeed(seed [SeedSize]byte) (*PrivateKey, error) {
	expanded := sha512.Sum512(seed[:])
	k := &PrivateKey{seed: seed}
	copy(k.prefix[:], expanded[32:])
	k.d = hashToScalar(expanded[:32])
	if k.d.IsZero() {
		return nil, errors.New("schnorrq: degenerate seed")
	}
	k.Public.A = curve.ScalarMult(k.d, curve.Generator())
	k.Public.enc = k.Public.A.Bytes()
	return k, nil
}

// Seed returns the private seed.
func (k *PrivateKey) Seed() [SeedSize]byte { return k.seed }

// Sign produces a deterministic signature of msg.
func (k *PrivateKey) Sign(msg []byte) [SignatureSize]byte {
	r := hashToScalar(k.prefix[:], msg)
	if r.IsZero() {
		// Degenerate with negligible probability; perturb determin-
		// istically so the nonce is never zero.
		r = scalar.FromUint64(1)
	}
	R := curve.ScalarMult(r, curve.Generator())
	Renc := R.Bytes()
	h := hashToScalar(Renc[:], k.Public.enc[:], msg)
	s := scalar.SubModN(r, scalar.MulModN(h, k.d))

	var sig [SignatureSize]byte
	copy(sig[:curve.Size], Renc[:])
	sb := s.Bytes()
	copy(sig[curve.Size:], sb[:])
	return sig
}

// Verify checks a signature against the public key.
func Verify(pub *PublicKey, msg []byte, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	R, err := curve.FromBytes(sig[:curve.Size])
	if err != nil {
		return false
	}
	s, err := scalar.FromBytes(sig[curve.Size:])
	if err != nil {
		return false
	}
	// s must be canonical (< N).
	if s.Big().Cmp(scalar.Order()) >= 0 {
		return false
	}
	h := hashToScalar(sig[:curve.Size], pub.enc[:], msg)
	// [s]G + [h]A == R
	lhs := curve.DoubleScalarMult(s, curve.Generator(), h, pub.A)
	return lhs.Equal(R)
}
