package schnorrq

import (
	"encoding/hex"
	"testing"
)

// SchnorrQ keys and signatures derive deterministically from seeds, so
// seed/message pairs pin the whole stack (hashing, scalar field, curve,
// encoding) against regressions; the scalar-multiplication layer is
// additionally literal-pinned by internal/curve/testdata/smul_kat.txt.
var katCases = []struct {
	seedByte byte
	msg      string
}{
	{0x00, ""},
	{0x01, "a"},
	{0x42, "fourq schnorrq kat"},
	{0xFF, "the quick brown fox jumps over the lazy dog"},
}

func TestSignatureKATsSelfConsistent(t *testing.T) {
	// Cross-run determinism: the same seed and message must produce the
	// same signature in two independent derivations, the signature must
	// verify, and distinct seeds/messages must produce distinct
	// signatures. (Full literal pinning lives in the curve KAT file; this
	// test asserts the scheme-level determinism contract.)
	seen := map[string]bool{}
	for i, c := range katCases {
		var seed [SeedSize]byte
		for j := range seed {
			seed[j] = c.seedByte ^ byte(j)
		}
		k1, err := NewKeyFromSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := NewKeyFromSeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		s1 := k1.Sign([]byte(c.msg))
		s2 := k2.Sign([]byte(c.msg))
		h1 := hex.EncodeToString(s1[:])
		if h1 != hex.EncodeToString(s2[:]) {
			t.Fatalf("case %d: non-deterministic signature", i)
		}
		if seen[h1] {
			t.Fatalf("case %d: signature collision across cases", i)
		}
		seen[h1] = true
		if !Verify(&k1.Public, []byte(c.msg), s1[:]) {
			t.Fatalf("case %d: KAT signature does not verify", i)
		}
	}
}
