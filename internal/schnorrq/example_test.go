package schnorrq_test

import (
	"crypto/rand"
	"fmt"

	"repro/internal/schnorrq"
)

// Example signs and verifies a message, then batch-verifies several.
func Example() {
	key, err := schnorrq.GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	msg := []byte("roadside unit broadcast #17")
	sig := key.Sign(msg)
	fmt.Println("verified:", schnorrq.Verify(&key.Public, msg, sig[:]))

	var batch []schnorrq.BatchItem
	for i := 0; i < 4; i++ {
		m := []byte{byte(i)}
		s := key.Sign(m)
		batch = append(batch, schnorrq.BatchItem{Pub: &key.Public, Msg: m, Sig: s[:]})
	}
	ok, err := schnorrq.BatchVerify(rand.Reader, batch)
	fmt.Println("batch:", ok, err)
	// Output:
	// verified: true
	// batch: true <nil>
}

// ExampleNewKeyFromSeed shows deterministic key derivation.
func ExampleNewKeyFromSeed() {
	var seed [schnorrq.SeedSize]byte
	seed[0] = 0xAA
	k1, _ := schnorrq.NewKeyFromSeed(seed)
	k2, _ := schnorrq.NewKeyFromSeed(seed)
	fmt.Println(k1.Public.Bytes() == k2.Public.Bytes())
	// Output: true
}
