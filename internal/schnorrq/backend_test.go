package schnorrq

import (
	"context"
	"crypto/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// TestSignWithMatchesSign pins the backend-routed signing path to the
// plain software path: same key, same message, byte-identical signature.
func TestSignWithMatchesSign(t *testing.T) {
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("engine-routed signing must be bit-compatible")
	want := k.Sign(msg)
	got, err := k.SignWith(context.Background(), FuncScalarMulter{}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SignWith = %x, Sign = %x", got[:16], want[:16])
	}
}

// spyScalarMulter counts which backend method served each request so the
// routing decision is observable.
type spyScalarMulter struct {
	variable, fixed int
}

func (s *spyScalarMulter) ScalarMultAffine(_ context.Context, k scalar.Scalar, base curve.Affine) (curve.Affine, error) {
	s.variable++
	return curve.ScalarMult(k, curve.FromAffine(base)).Affine(), nil
}

func (s *spyScalarMulter) ScalarMultFixedBase(_ context.Context, k scalar.Scalar) (curve.Affine, error) {
	s.fixed++
	return curve.ScalarMult(k, curve.Generator()).Affine(), nil
}

// TestSignWithRoutesFixedBase pins the request-class split: a backend
// offering FixedBaseScalarMulter gets signing's [r]G on the fixed-base
// method (bit-compatible signature), while verification keeps [s]G and
// [h]A on the variable-base method.
func TestSignWithRoutesFixedBase(t *testing.T) {
	ctx := context.Background()
	k, err := NewKeyFromSeed([32]byte{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("commitment rides the comb")
	spy := &spyScalarMulter{}
	sig, err := k.SignWith(ctx, spy, msg)
	if err != nil {
		t.Fatal(err)
	}
	if sig != k.Sign(msg) {
		t.Fatal("fixed-base-routed signature differs from software signature")
	}
	if spy.fixed != 1 || spy.variable != 0 {
		t.Fatalf("signing used fixed=%d variable=%d backend calls, want 1/0", spy.fixed, spy.variable)
	}
	ok, err := VerifyWith(ctx, spy, &k.Public, msg, sig[:])
	if err != nil || !ok {
		t.Fatalf("verification failed: ok=%v err=%v", ok, err)
	}
	if spy.fixed != 1 || spy.variable != 2 {
		t.Fatalf("verification used fixed=%d variable=%d backend calls, want 1/2", spy.fixed, spy.variable)
	}
}

func TestVerifyWith(t *testing.T) {
	ctx := context.Background()
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("message under test")
	sig := k.Sign(msg)

	ok, err := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid signature rejected by backend verification")
	}
	ok, err = VerifyWith(ctx, FuncScalarMulter{}, &k.Public, []byte("tampered"), sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered message accepted by backend verification")
	}
	bad := sig
	bad[0] ^= 1
	if ok, _ := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, bad[:]); ok {
		t.Fatal("corrupted signature accepted")
	}
	if ok, _ := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, sig[:10]); ok {
		t.Fatal("truncated signature accepted")
	}
}
