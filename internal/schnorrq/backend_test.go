package schnorrq

import (
	"context"
	"crypto/rand"
	"testing"
)

// TestSignWithMatchesSign pins the backend-routed signing path to the
// plain software path: same key, same message, byte-identical signature.
func TestSignWithMatchesSign(t *testing.T) {
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("engine-routed signing must be bit-compatible")
	want := k.Sign(msg)
	got, err := k.SignWith(context.Background(), FuncScalarMulter{}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SignWith = %x, Sign = %x", got[:16], want[:16])
	}
}

func TestVerifyWith(t *testing.T) {
	ctx := context.Background()
	k, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("message under test")
	sig := k.Sign(msg)

	ok, err := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid signature rejected by backend verification")
	}
	ok, err = VerifyWith(ctx, FuncScalarMulter{}, &k.Public, []byte("tampered"), sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered message accepted by backend verification")
	}
	bad := sig
	bad[0] ^= 1
	if ok, _ := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, bad[:]); ok {
		t.Fatal("corrupted signature accepted")
	}
	if ok, _ := VerifyWith(ctx, FuncScalarMulter{}, &k.Public, msg, sig[:10]); ok {
		t.Fatal("truncated signature accepted")
	}
}
