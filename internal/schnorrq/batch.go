package schnorrq

import (
	"errors"
	"io"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// Batch verification: n signatures verify together with one random
// linear combination,
//
//	[sum z_i*s_i]G + sum [z_i*h_i]A_i - sum [z_i]R_i == O,
//
// where the z_i are fresh random 128-bit weights (z_0 = 1). A single
// multi-scalar multiplication replaces n double-scalar multiplications,
// which is how a roadside unit would keep up with dense traffic. If the
// batch fails, fall back to one-by-one verification to isolate the bad
// message.

// BatchItem pairs a message with its signature and signer.
type BatchItem struct {
	Pub *PublicKey
	Msg []byte
	Sig []byte
}

// errBadBatch reports a malformed batch entry.
var errBadBatch = errors.New("schnorrq: malformed batch entry")

// BatchVerify checks all items together; randomness for the weights is
// drawn from rand. An empty batch verifies trivially.
func BatchVerify(rand io.Reader, items []BatchItem) (bool, error) {
	if len(items) == 0 {
		return true, nil
	}
	var (
		sSum    scalar.Scalar // sum z_i * s_i
		scalars []scalar.Scalar
		points  []curve.Point
	)
	for i, it := range items {
		if it.Pub == nil || len(it.Sig) != SignatureSize {
			return false, errBadBatch
		}
		R, err := curve.FromBytes(it.Sig[:curve.Size])
		if err != nil {
			return false, nil // invalid encoding: batch rejects
		}
		s, err := scalar.FromBytes(it.Sig[curve.Size:])
		if err != nil || s.Big().Cmp(scalar.Order()) >= 0 {
			return false, nil
		}
		h := hashToScalar(it.Sig[:curve.Size], it.Pub.enc[:], it.Msg)

		z := scalar.FromUint64(1)
		if i > 0 {
			// 128-bit random weight.
			var buf [16]byte
			if _, err := io.ReadFull(rand, buf[:]); err != nil {
				return false, err
			}
			var zs scalar.Scalar
			for j := 0; j < 8; j++ {
				zs[0] |= uint64(buf[j]) << (8 * j)
				zs[1] |= uint64(buf[8+j]) << (8 * j)
			}
			if zs.IsZero() {
				zs = scalar.FromUint64(1)
			}
			z = zs
		}

		sSum = scalar.AddModN(sSum, scalar.MulModN(z, s))
		scalars = append(scalars, scalar.MulModN(z, h))
		points = append(points, it.Pub.A)
		scalars = append(scalars, z)
		points = append(points, R.Neg())
	}
	total := curve.Add(
		curve.ScalarMult(sSum, curve.Generator()),
		curve.MultiScalarMult(scalars, points),
	)
	return total.IsIdentity(), nil
}
