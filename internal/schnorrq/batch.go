package schnorrq

import (
	"context"
	"errors"
	"io"
	"sync"

	"repro/internal/curve"
	"repro/internal/scalar"
)

// Batch verification: n signatures verify together with one random
// linear combination,
//
//	[sum z_i*s_i]G + sum [z_i*h_i]A_i - sum [z_i]R_i == O,
//
// where the z_i are fresh random 128-bit weights (z_0 = 1). A single
// multi-scalar multiplication replaces n double-scalar multiplications,
// which is how a roadside unit would keep up with dense traffic. If the
// batch fails, fall back to one-by-one verification to isolate the bad
// message.
//
// Two execution paths share the same combination (batchTerms):
// BatchVerify evaluates it with the in-process multi-scalar ladder, and
// BatchVerifyWith routes every term through a pluggable ScalarMulter —
// the same backend seam SignWith/VerifyWith use — so batch verification
// can ride the modeled accelerator instead of bypassing it.

// BatchItem pairs a message with its signature and signer.
type BatchItem struct {
	Pub *PublicKey
	Msg []byte
	Sig []byte
}

// errBadBatch reports a malformed batch entry.
var errBadBatch = errors.New("schnorrq: malformed batch entry")

// batchTerms is the parsed random linear combination of a batch: the
// generator coefficient sum z_i*s_i plus the per-signature term pairs
// ([z_i*h_i]A_i and [z_i](-R_i)) ready for any multi-scalar evaluator.
type batchTerms struct {
	sSum    scalar.Scalar
	scalars []scalar.Scalar
	points  []curve.Point
}

// collectBatchTerms parses and weighs every item. The bool mirrors the
// verification verdict for structurally invalid signatures (bad point or
// non-canonical scalar encodings reject the batch without error, exactly
// as a single Verify answers false); the error reports misuse (nil
// public key, wrong-length signature) or a randomness failure.
func collectBatchTerms(rand io.Reader, items []BatchItem) (batchTerms, bool, error) {
	var bt batchTerms
	bt.scalars = make([]scalar.Scalar, 0, 2*len(items))
	bt.points = make([]curve.Point, 0, 2*len(items))
	for i, it := range items {
		if it.Pub == nil || len(it.Sig) != SignatureSize {
			return bt, false, errBadBatch
		}
		R, err := curve.FromBytes(it.Sig[:curve.Size])
		if err != nil {
			return bt, false, nil // invalid encoding: batch rejects
		}
		s, err := scalar.FromBytes(it.Sig[curve.Size:])
		if err != nil || s.Big().Cmp(scalar.Order()) >= 0 {
			return bt, false, nil
		}
		h := hashToScalar(it.Sig[:curve.Size], it.Pub.enc[:], it.Msg)

		z := scalar.FromUint64(1)
		if i > 0 {
			// 128-bit random weight.
			var buf [16]byte
			if _, err := io.ReadFull(rand, buf[:]); err != nil {
				return bt, false, err
			}
			var zs scalar.Scalar
			for j := 0; j < 8; j++ {
				zs[0] |= uint64(buf[j]) << (8 * j)
				zs[1] |= uint64(buf[8+j]) << (8 * j)
			}
			if zs.IsZero() {
				zs = scalar.FromUint64(1)
			}
			z = zs
		}

		bt.sSum = scalar.AddModN(bt.sSum, scalar.MulModN(z, s))
		bt.scalars = append(bt.scalars, scalar.MulModN(z, h))
		bt.points = append(bt.points, it.Pub.A)
		bt.scalars = append(bt.scalars, z)
		bt.points = append(bt.points, R.Neg())
	}
	return bt, true, nil
}

// BatchVerify checks all items together; randomness for the weights is
// drawn from rand. An empty batch verifies trivially.
func BatchVerify(rand io.Reader, items []BatchItem) (bool, error) {
	if len(items) == 0 {
		return true, nil
	}
	bt, ok, err := collectBatchTerms(rand, items)
	if !ok || err != nil {
		return false, err
	}
	total := curve.Add(
		curve.ScalarMult(bt.sSum, curve.Generator()),
		curve.MultiScalarMult(bt.scalars, bt.points),
	)
	return total.IsIdentity(), nil
}

// BatchVerifyWith checks all items together like BatchVerify, but
// computes every scalar multiplication of the combination — [sum z_i
// s_i]G plus the 2n per-signature terms — on the backend. The terms are
// submitted concurrently, so an engine-backed ScalarMulter coalesces
// them into lockstep lanes instead of serializing 2n+1 round trips. The
// bool is the verdict; the error reports a backend failure (on which the
// verdict is meaningless).
func BatchVerifyWith(ctx context.Context, rand io.Reader, sm ScalarMulter, items []BatchItem) (bool, error) {
	if len(items) == 0 {
		return true, nil
	}
	bt, ok, err := collectBatchTerms(rand, items)
	if !ok || err != nil {
		return false, err
	}
	terms := make([]curve.Affine, len(bt.scalars)+1)
	errs := make([]error, len(bt.scalars)+1)
	var wg sync.WaitGroup
	wg.Add(len(bt.scalars) + 1)
	go func() {
		defer wg.Done()
		terms[0], errs[0] = sm.ScalarMultAffine(ctx, bt.sSum, curve.GeneratorAffine())
	}()
	for i := range bt.scalars {
		go func(i int) {
			defer wg.Done()
			terms[i+1], errs[i+1] = sm.ScalarMultAffine(ctx, bt.scalars[i], bt.points[i].Affine())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	total := curve.Identity()
	for _, t := range terms {
		total = curve.Add(total, curve.FromAffine(t))
	}
	return total.IsIdentity(), nil
}
