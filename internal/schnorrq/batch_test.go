package schnorrq

import (
	"context"
	"crypto/rand"
	"testing"

	"repro/internal/curve"
)

func makeBatch(t testing.TB, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, n)
	for i := range items {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte{byte(i), byte(i * 3), 0x55}
		sig := k.Sign(msg)
		items[i] = BatchItem{Pub: &k.Public, Msg: msg, Sig: sig[:]}
	}
	return items
}

func TestBatchVerifyValid(t *testing.T) {
	items := makeBatch(t, 6)
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid batch rejected")
	}
}

func TestBatchVerifyEmpty(t *testing.T) {
	ok, err := BatchVerify(rand.Reader, nil)
	if err != nil || !ok {
		t.Fatal("empty batch should verify")
	}
}

func TestBatchVerifySingle(t *testing.T) {
	items := makeBatch(t, 1)
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil || !ok {
		t.Fatal("single-item batch rejected")
	}
}

func TestBatchVerifyCatchesForgery(t *testing.T) {
	for corrupt := 0; corrupt < 3; corrupt++ {
		items := makeBatch(t, 5)
		switch corrupt {
		case 0: // tamper a message
			items[2].Msg = []byte("tampered")
		case 1: // tamper s
			sig := append([]byte(nil), items[3].Sig...)
			sig[len(sig)-5] ^= 1
			items[3].Sig = sig
		case 2: // swap signatures between messages
			items[0].Sig, items[1].Sig = items[1].Sig, items[0].Sig
		}
		ok, err := BatchVerify(rand.Reader, items)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("corrupted batch (mode %d) accepted", corrupt)
		}
	}
}

func TestBatchVerifyMalformed(t *testing.T) {
	items := makeBatch(t, 2)
	items[1].Sig = items[1].Sig[:10]
	if _, err := BatchVerify(rand.Reader, items); err == nil {
		t.Fatal("truncated signature not reported as malformed")
	}
	items = makeBatch(t, 2)
	items[0].Pub = nil
	if _, err := BatchVerify(rand.Reader, items); err == nil {
		t.Fatal("nil pub not reported")
	}
}

func TestBatchAgreesWithSingleVerify(t *testing.T) {
	items := makeBatch(t, 4)
	// Every item verifies individually.
	for i, it := range items {
		if !Verify(it.Pub, it.Msg, it.Sig) {
			t.Fatalf("item %d fails single verification", i)
		}
	}
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil || !ok {
		t.Fatal("batch disagrees with single verification")
	}
}

// TestBatchVerifyWithDifferential pins BatchVerifyWith (every term of
// the combination routed through a ScalarMulter backend) to per-
// signature verification and to the in-process BatchVerify, over valid
// batches and every forgery mode the functional path catches.
func TestBatchVerifyWithDifferential(t *testing.T) {
	ctx := context.Background()
	sm := FuncScalarMulter{}

	for _, n := range []int{1, 2, 5} {
		items := makeBatch(t, n)
		ok, err := BatchVerifyWith(ctx, rand.Reader, sm, items)
		if err != nil {
			t.Fatal(err)
		}
		single := true
		for _, it := range items {
			single = single && Verify(it.Pub, it.Msg, it.Sig)
		}
		if ok != single {
			t.Fatalf("n=%d: BatchVerifyWith=%v, per-signature verify=%v", n, ok, single)
		}
		if !ok {
			t.Fatalf("n=%d: valid batch rejected", n)
		}
	}

	for corrupt := 0; corrupt < 3; corrupt++ {
		items := makeBatch(t, 4)
		switch corrupt {
		case 0:
			items[2].Msg = []byte("tampered")
		case 1:
			sig := append([]byte(nil), items[3].Sig...)
			sig[len(sig)-5] ^= 1
			items[3].Sig = sig
		case 2:
			items[0].Sig, items[1].Sig = items[1].Sig, items[0].Sig
		}
		ok, err := BatchVerifyWith(ctx, rand.Reader, sm, items)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("corrupted batch (mode %d) accepted by backend path", corrupt)
		}
		// The corrupted item also fails per-signature verification on the
		// same backend: the two granularities must agree on the verdict.
		anyBad := false
		for _, it := range items {
			single, err := VerifyWith(ctx, sm, it.Pub, it.Msg, it.Sig)
			if err != nil {
				t.Fatal(err)
			}
			anyBad = anyBad || !single
		}
		if !anyBad {
			t.Fatalf("mode %d: batch rejected but every signature verifies individually", corrupt)
		}
	}
}

func TestBatchVerifyWithEmptyAndMalformed(t *testing.T) {
	ctx := context.Background()
	sm := FuncScalarMulter{}
	if ok, err := BatchVerifyWith(ctx, rand.Reader, sm, nil); err != nil || !ok {
		t.Fatal("empty batch should verify")
	}
	items := makeBatch(t, 2)
	items[1].Sig = items[1].Sig[:10]
	if _, err := BatchVerifyWith(ctx, rand.Reader, sm, items); err == nil {
		t.Fatal("truncated signature not reported as malformed")
	}
	// A structurally valid but non-canonical s rejects without error,
	// matching BatchVerify.
	items = makeBatch(t, 2)
	sig := append([]byte(nil), items[1].Sig...)
	for i := curve.Size; i < len(sig); i++ {
		sig[i] = 0xFF
	}
	items[1].Sig = sig
	ok, err := BatchVerifyWith(ctx, rand.Reader, sm, items)
	if err != nil || ok {
		t.Fatalf("non-canonical s: ok=%v err=%v, want rejected without error", ok, err)
	}
}

func BenchmarkBatchVerify16(b *testing.B) {
	items := makeBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := BatchVerify(rand.Reader, items)
		if err != nil || !ok {
			b.Fatal("batch failed")
		}
	}
}

func BenchmarkSingleVerify16(b *testing.B) {
	items := makeBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if !Verify(it.Pub, it.Msg, it.Sig) {
				b.Fatal("verify failed")
			}
		}
	}
}
