package schnorrq

import (
	"crypto/rand"
	"testing"
)

func makeBatch(t testing.TB, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, n)
	for i := range items {
		k, err := GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte{byte(i), byte(i * 3), 0x55}
		sig := k.Sign(msg)
		items[i] = BatchItem{Pub: &k.Public, Msg: msg, Sig: sig[:]}
	}
	return items
}

func TestBatchVerifyValid(t *testing.T) {
	items := makeBatch(t, 6)
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid batch rejected")
	}
}

func TestBatchVerifyEmpty(t *testing.T) {
	ok, err := BatchVerify(rand.Reader, nil)
	if err != nil || !ok {
		t.Fatal("empty batch should verify")
	}
}

func TestBatchVerifySingle(t *testing.T) {
	items := makeBatch(t, 1)
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil || !ok {
		t.Fatal("single-item batch rejected")
	}
}

func TestBatchVerifyCatchesForgery(t *testing.T) {
	for corrupt := 0; corrupt < 3; corrupt++ {
		items := makeBatch(t, 5)
		switch corrupt {
		case 0: // tamper a message
			items[2].Msg = []byte("tampered")
		case 1: // tamper s
			sig := append([]byte(nil), items[3].Sig...)
			sig[len(sig)-5] ^= 1
			items[3].Sig = sig
		case 2: // swap signatures between messages
			items[0].Sig, items[1].Sig = items[1].Sig, items[0].Sig
		}
		ok, err := BatchVerify(rand.Reader, items)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("corrupted batch (mode %d) accepted", corrupt)
		}
	}
}

func TestBatchVerifyMalformed(t *testing.T) {
	items := makeBatch(t, 2)
	items[1].Sig = items[1].Sig[:10]
	if _, err := BatchVerify(rand.Reader, items); err == nil {
		t.Fatal("truncated signature not reported as malformed")
	}
	items = makeBatch(t, 2)
	items[0].Pub = nil
	if _, err := BatchVerify(rand.Reader, items); err == nil {
		t.Fatal("nil pub not reported")
	}
}

func TestBatchAgreesWithSingleVerify(t *testing.T) {
	items := makeBatch(t, 4)
	// Every item verifies individually.
	for i, it := range items {
		if !Verify(it.Pub, it.Msg, it.Sig) {
			t.Fatalf("item %d fails single verification", i)
		}
	}
	ok, err := BatchVerify(rand.Reader, items)
	if err != nil || !ok {
		t.Fatal("batch disagrees with single verification")
	}
}

func BenchmarkBatchVerify16(b *testing.B) {
	items := makeBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := BatchVerify(rand.Reader, items)
		if err != nil || !ok {
			b.Fatal("batch failed")
		}
	}
}

func BenchmarkSingleVerify16(b *testing.B) {
	items := makeBatch(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if !Verify(it.Pub, it.Msg, it.Sig) {
				b.Fatal("verify failed")
			}
		}
	}
}
