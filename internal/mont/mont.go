// Package mont implements generic 256-bit Montgomery arithmetic over an
// odd modulus given as four 64-bit limbs. It backs every non-Mersenne
// field in the repository: the FourQ scalar field (mod the subgroup
// order N), the NIST P-256 field and scalar field, and the Curve25519
// field of the Table II baselines.
//
// All operations run on [4]uint64 limb vectors; no math/big anywhere
// (the derived constants R^2 and -N^-1 mod 2^64 are computed with limb
// arithmetic at construction time).
package mont

import (
	"errors"
	"math/bits"
)

// Elem is a 256-bit value in four little-endian 64-bit limbs.
type Elem = [4]uint64

// Modulus carries an odd modulus and its precomputed Montgomery
// constants (R = 2^256).
type Modulus struct {
	N      Elem
	NPrime uint64 // -N^-1 mod 2^64
	R2     Elem   // R^2 mod N
	One    Elem   // R mod N (1 in Montgomery form)
}

// NewModulus validates and precomputes constants for an odd modulus
// with N < 2^256 and N > 1.
func NewModulus(n Elem) (*Modulus, error) {
	if n[0]&1 == 0 {
		return nil, errors.New("mont: modulus must be odd")
	}
	if n == (Elem{}) || n == (Elem{1}) {
		return nil, errors.New("mont: modulus must exceed 1")
	}
	m := &Modulus{N: n}
	// Newton iteration for the 2-adic inverse of n[0]; odd n0 squares to
	// 1 mod 8, so n0 itself is correct to 3 bits and 6 doublings of
	// precision reach 64 bits.
	inv := n[0]
	for i := 0; i < 6; i++ {
		inv *= 2 - n[0]*inv
	}
	m.NPrime = -inv

	// R mod N by reducing 2^256: start from 2^255 shifted in by doubling
	// 1 mod N 256 times (limb-only).
	one := Elem{1}
	r := one
	for i := 0; i < 256; i++ {
		r = m.addRaw(r, r)
	}
	m.One = r // 2^256 mod N = R mod N
	// R^2 = (R mod N) doubled 256 more times.
	r2 := r
	for i := 0; i < 256; i++ {
		r2 = m.addRaw(r2, r2)
	}
	m.R2 = r2
	return m, nil
}

// geN reports t >= N.
func (m *Modulus) geN(t Elem) bool {
	for i := 3; i >= 0; i-- {
		if t[i] != m.N[i] {
			return t[i] > m.N[i]
		}
	}
	return true
}

// subN computes t - N; caller guarantees t >= N (no borrow out).
func (m *Modulus) subN(t Elem) Elem {
	var bw uint64
	t[0], bw = bits.Sub64(t[0], m.N[0], 0)
	t[1], bw = bits.Sub64(t[1], m.N[1], bw)
	t[2], bw = bits.Sub64(t[2], m.N[2], bw)
	t[3], _ = bits.Sub64(t[3], m.N[3], bw)
	return t
}

// addRaw computes a+b mod N for reduced inputs a, b < N, handling the
// possible 2^256 overflow when N is close to 2^256.
func (m *Modulus) addRaw(a, b Elem) Elem {
	var t Elem
	var c uint64
	t[0], c = bits.Add64(a[0], b[0], 0)
	t[1], c = bits.Add64(a[1], b[1], c)
	t[2], c = bits.Add64(a[2], b[2], c)
	t[3], c = bits.Add64(a[3], b[3], c)
	if c != 0 {
		// t = a+b-2^256; since a,b < N <= 2^256-1, a+b-N < N, so one
		// subtraction of N (borrowing the carry) reduces fully.
		var bw uint64
		t[0], bw = bits.Sub64(t[0], m.N[0], 0)
		t[1], bw = bits.Sub64(t[1], m.N[1], bw)
		t[2], bw = bits.Sub64(t[2], m.N[2], bw)
		t[3], bw = bits.Sub64(t[3], m.N[3], bw)
		_ = bw // cancelled by the carry
		return t
	}
	if m.geN(t) {
		t = m.subN(t)
	}
	return t
}

// Add returns a+b mod N (inputs reduced).
func (m *Modulus) Add(a, b Elem) Elem { return m.addRaw(a, b) }

// Sub returns a-b mod N (inputs reduced).
func (m *Modulus) Sub(a, b Elem) Elem {
	var t Elem
	var bw uint64
	t[0], bw = bits.Sub64(a[0], b[0], 0)
	t[1], bw = bits.Sub64(a[1], b[1], bw)
	t[2], bw = bits.Sub64(a[2], b[2], bw)
	t[3], bw = bits.Sub64(a[3], b[3], bw)
	if bw != 0 {
		var c uint64
		t[0], c = bits.Add64(t[0], m.N[0], 0)
		t[1], c = bits.Add64(t[1], m.N[1], c)
		t[2], c = bits.Add64(t[2], m.N[2], c)
		t[3], _ = bits.Add64(t[3], m.N[3], c)
	}
	return t
}

// Neg returns -a mod N.
func (m *Modulus) Neg(a Elem) Elem { return m.Sub(Elem{}, a) }

// madd computes x*y + a + b as (hi, lo); cannot overflow 128 bits.
func madd(x, y, a, b uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(x, y)
	var c uint64
	lo, c = bits.Add64(lo, a, 0)
	hi += c
	lo, c = bits.Add64(lo, b, 0)
	hi += c
	return
}

// Mul returns a*b*R^-1 mod N (CIOS Montgomery multiplication). At least
// one input must be < N; the other may be any 256-bit value (useful for
// reducing unnormalized inputs against R^2).
func (m *Modulus) Mul(a, b Elem) Elem {
	var t Elem
	var d uint64
	for i := 0; i < 4; i++ {
		var c uint64
		for j := 0; j < 4; j++ {
			c, t[j] = madd(a[i], b[j], t[j], c)
		}
		var overflow uint64
		d, overflow = bits.Add64(d, c, 0)
		mi := t[0] * m.NPrime
		c, _ = madd(mi, m.N[0], t[0], 0)
		for j := 1; j < 4; j++ {
			c, t[j-1] = madd(mi, m.N[j], t[j], c)
		}
		t[3], c = bits.Add64(d, c, 0)
		d = c + overflow
	}
	for d != 0 || m.geN(t) {
		if d != 0 {
			var bw uint64
			t[0], bw = bits.Sub64(t[0], m.N[0], 0)
			t[1], bw = bits.Sub64(t[1], m.N[1], bw)
			t[2], bw = bits.Sub64(t[2], m.N[2], bw)
			t[3], bw = bits.Sub64(t[3], m.N[3], bw)
			d -= bw
			continue
		}
		t = m.subN(t)
	}
	return t
}

// ToMont converts a (any 256-bit value) into Montgomery form, reducing
// mod N in the process.
func (m *Modulus) ToMont(a Elem) Elem { return m.Mul(a, m.R2) }

// FromMont strips the Montgomery factor.
func (m *Modulus) FromMont(a Elem) Elem { return m.Mul(a, Elem{1}) }

// Reduce returns a mod N for any 256-bit a.
func (m *Modulus) Reduce(a Elem) Elem { return m.FromMont(m.ToMont(a)) }

// Sqr returns the Montgomery square.
func (m *Modulus) Sqr(a Elem) Elem { return m.Mul(a, a) }

// Exp computes base^e in Montgomery form (base in Montgomery form,
// exponent as plain limbs, square-and-multiply MSB first).
func (m *Modulus) Exp(base Elem, e Elem) Elem {
	r := m.One
	started := false
	for i := 255; i >= 0; i-- {
		if started {
			r = m.Sqr(r)
		}
		if e[i/64]>>(uint(i)%64)&1 == 1 {
			if started {
				r = m.Mul(r, base)
			} else {
				r = base
				started = true
			}
		}
	}
	if !started {
		return m.One
	}
	return r
}

// InvFermat computes a^-1 in Montgomery form for a prime modulus
// (a^(N-2)); returns the zero element for a == 0.
func (m *Modulus) InvFermat(a Elem) Elem {
	if a == (Elem{}) {
		return Elem{}
	}
	e := m.N
	// N-2: N is odd so N-2 only borrows within the low limb unless
	// N[0] < 2.
	var bw uint64
	e[0], bw = bits.Sub64(e[0], 2, 0)
	e[1], bw = bits.Sub64(e[1], 0, bw)
	e[2], bw = bits.Sub64(e[2], 0, bw)
	e[3], _ = bits.Sub64(e[3], 0, bw)
	return m.Exp(a, e)
}

// IsZero reports a == 0.
func IsZero(a Elem) bool { return a == (Elem{}) }
