package mont

import (
	"math/big"
	mrand "math/rand"
	"testing"
)

// Test moduli: the FourQ subgroup order, the P-256 field prime, the
// Curve25519 prime, and a small odd modulus.
var testModuli = map[string]string{
	"fourq-N":    "29cbc14e5e0a72f05397829cbc14e5dfbd004dfe0f79992fb2540ec7768ce7",
	"p256-p":     "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
	"c25519-p":   "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed",
	"p256-order": "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
	"small":      "10001",
}

func toBig(e Elem) *big.Int {
	v := new(big.Int)
	for i := 3; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Add(v, new(big.Int).SetUint64(e[i]))
	}
	return v
}

func fromBig(v *big.Int) Elem {
	var e Elem
	for i := 0; i < 4; i++ {
		e[i] = new(big.Int).Rsh(v, uint(64*i)).Uint64()
	}
	return e
}

func modulusFor(t *testing.T, hex string) (*Modulus, *big.Int) {
	t.Helper()
	n, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		t.Fatal("bad hex")
	}
	m, err := NewModulus(fromBig(n))
	if err != nil {
		t.Fatal(err)
	}
	return m, n
}

func randElem(r *mrand.Rand) Elem {
	return Elem{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
}

func TestConstants(t *testing.T) {
	for name, hex := range testModuli {
		m, n := modulusFor(t, hex)
		// NPrime * N[0] == -1 mod 2^64.
		if m.NPrime*m.N[0] != ^uint64(0) {
			t.Errorf("%s: NPrime wrong", name)
		}
		// R2 == 2^512 mod N.
		want := new(big.Int).Lsh(big.NewInt(1), 512)
		want.Mod(want, n)
		if toBig(m.R2).Cmp(want) != 0 {
			t.Errorf("%s: R2 wrong", name)
		}
		// One == 2^256 mod N.
		want = new(big.Int).Lsh(big.NewInt(1), 256)
		want.Mod(want, n)
		if toBig(m.One).Cmp(want) != 0 {
			t.Errorf("%s: One wrong", name)
		}
	}
}

func TestNewModulusRejects(t *testing.T) {
	if _, err := NewModulus(Elem{2}); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewModulus(Elem{}); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := NewModulus(Elem{1}); err == nil {
		t.Error("modulus 1 accepted")
	}
}

func TestArithmeticAgainstBig(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	for name, hex := range testModuli {
		m, n := modulusFor(t, hex)
		for trial := 0; trial < 300; trial++ {
			a, b := randElem(rng), randElem(rng)
			ra := m.Reduce(a)
			rb := m.Reduce(b)
			// Reduce matches.
			if toBig(ra).Cmp(new(big.Int).Mod(toBig(a), n)) != 0 {
				t.Fatalf("%s: Reduce mismatch", name)
			}
			// Add/Sub on reduced values.
			sum := new(big.Int).Add(toBig(ra), toBig(rb))
			sum.Mod(sum, n)
			if toBig(m.Add(ra, rb)).Cmp(sum) != 0 {
				t.Fatalf("%s: Add mismatch", name)
			}
			diff := new(big.Int).Sub(toBig(ra), toBig(rb))
			diff.Mod(diff, n)
			if toBig(m.Sub(ra, rb)).Cmp(diff) != 0 {
				t.Fatalf("%s: Sub mismatch", name)
			}
			// Montgomery multiply round trip.
			prod := new(big.Int).Mul(toBig(ra), toBig(rb))
			prod.Mod(prod, n)
			got := m.FromMont(m.Mul(m.ToMont(ra), m.ToMont(rb)))
			if toBig(got).Cmp(prod) != 0 {
				t.Fatalf("%s: Mul mismatch", name)
			}
		}
		// Boundary values.
		nm1 := m.Sub(Elem{}, m.One) // hmm: -One is in Montgomery domain; use N-1 directly
		_ = nm1
		max := Elem{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
		if toBig(m.Reduce(max)).Cmp(new(big.Int).Mod(toBig(max), n)) != 0 {
			t.Fatalf("%s: Reduce(max) mismatch", name)
		}
	}
}

func TestNegAndIdentities(t *testing.T) {
	rng := mrand.New(mrand.NewSource(43))
	for name, hex := range testModuli {
		m, _ := modulusFor(t, hex)
		for trial := 0; trial < 50; trial++ {
			a := m.Reduce(randElem(rng))
			if m.Add(a, m.Neg(a)) != (Elem{}) {
				t.Fatalf("%s: a + (-a) != 0", name)
			}
			am := m.ToMont(a)
			if m.FromMont(m.Mul(am, m.One)) != a {
				t.Fatalf("%s: a*1 != a", name)
			}
		}
	}
}

func TestExpAgainstBig(t *testing.T) {
	rng := mrand.New(mrand.NewSource(44))
	for name, hex := range testModuli {
		m, n := modulusFor(t, hex)
		for trial := 0; trial < 20; trial++ {
			a := m.Reduce(randElem(rng))
			e := randElem(rng)
			got := m.FromMont(m.Exp(m.ToMont(a), e))
			want := new(big.Int).Exp(toBig(a), toBig(e), n)
			if toBig(got).Cmp(want) != 0 {
				t.Fatalf("%s: Exp mismatch", name)
			}
		}
		// a^0 == 1.
		a := m.Reduce(randElem(rng))
		if m.Exp(m.ToMont(a), Elem{}) != m.One {
			t.Fatalf("%s: a^0 != 1", name)
		}
	}
}

func TestInvFermatOnPrimes(t *testing.T) {
	rng := mrand.New(mrand.NewSource(45))
	for _, name := range []string{"fourq-N", "p256-p", "c25519-p", "p256-order", "small"} {
		m, n := modulusFor(t, testModuli[name])
		for trial := 0; trial < 20; trial++ {
			a := m.Reduce(randElem(rng))
			if IsZero(a) {
				continue
			}
			inv := m.FromMont(m.InvFermat(m.ToMont(a)))
			want := new(big.Int).ModInverse(toBig(a), n)
			if toBig(inv).Cmp(want) != 0 {
				t.Fatalf("%s: InvFermat mismatch", name)
			}
		}
		if !IsZero(m.InvFermat(Elem{})) {
			t.Fatalf("%s: InvFermat(0) != 0", name)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	m, _ := NewModulus(fromBig(mustBig(testModuli["p256-p"])))
	rng := mrand.New(mrand.NewSource(1))
	x := m.ToMont(m.Reduce(randElem(rng)))
	y := m.ToMont(m.Reduce(randElem(rng)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
	sink = x
}

func mustBig(hex string) *big.Int {
	v, _ := new(big.Int).SetString(hex, 16)
	return v
}

var sink Elem
