package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/scalar"
	"repro/internal/schnorrq"
)

// testProcessor shares one built processor across every test in the
// package (and, through CachedProcessor, with the engines under test).
func testProcessor(t testing.TB) *core.Processor {
	t.Helper()
	p, err := CachedProcessor(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	e := NewWithProcessor(testProcessor(t), opts)
	t.Cleanup(e.Close)
	return e
}

// oracle computes the functional-model reference for [k]Base.
func oracle(k scalar.Scalar, base curve.Affine) curve.Affine {
	if base == (curve.Affine{}) {
		base = curve.GeneratorAffine()
	}
	return curve.ScalarMult(k, curve.FromAffine(base)).Affine()
}

func TestSubmitMatchesOracle(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	ctx := context.Background()
	for i := uint64(1); i <= 4; i++ {
		k := scalar.Scalar{i * 0x9E3779B97F4A7C15, i, ^i, i << 40}
		r, err := e.Submit(ctx, Request{K: k})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		want := oracle(k, curve.Affine{})
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("submit %d: engine result differs from functional oracle", i)
		}
		if r.Stats.Cycles <= 0 {
			t.Fatalf("submit %d: missing RTL stats", i)
		}
	}
}

func TestSubmitArbitraryBase(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2, Verify: true})
	base := curve.ScalarMult(scalar.FromUint64(12345), curve.Generator()).Affine()
	k := scalar.Scalar{0xFEEDFACE, 7, 0, 1}
	r, err := e.Submit(context.Background(), Request{K: k, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(k, base)
	if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
		t.Fatal("arbitrary-base result differs from functional oracle")
	}
}

func TestSubmitBatchOrderAndOracle(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 4, QueueDepth: 64})
	const n = 12
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i].K = scalar.Scalar{uint64(i) + 1, uint64(i) * 77, 3, uint64(i)}
	}
	out, err := e.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("batch returned %d results, want %d", len(out), n)
	}
	// Results must land at the index of their request even though
	// workers race over the queue.
	for i, r := range out {
		want := oracle(reqs[i].K, curve.Affine{})
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("batch result %d does not match its request's oracle", i)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// One worker, tiny queue: flood it and require honest rejections,
	// with no accepted request lost.
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 2})
	ctx := context.Background()
	const n = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := scalar.Scalar{uint64(i) + 1}
			_, err := e.Submit(ctx, Request{K: k})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted++
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("submit %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if accepted+rejected != n {
		t.Fatalf("accepted %d + rejected %d != %d", accepted, rejected, n)
	}
	if accepted == 0 {
		t.Fatal("every request rejected; queue admits nothing")
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counters["engine.rejected"]; got != int64(rejected) {
		t.Errorf("engine.rejected = %d, want %d", got, rejected)
	}
	if got := snap.Counters["engine.submitted"]; got != int64(accepted) {
		t.Errorf("engine.submitted = %d, want %d", got, accepted)
	}
}

func TestBatchRejectionIsAtomic(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 3})
	reqs := make([]Request, 8) // larger than the whole queue
	for i := range reqs {
		reqs[i].K = scalar.FromUint64(uint64(i) + 1)
	}
	if _, err := e.SubmitBatch(context.Background(), reqs); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: err = %v, want ErrQueueFull", err)
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counters["engine.submitted"]; got != 0 {
		t.Fatalf("rejected batch partially enqueued: submitted = %d", got)
	}
	// The engine must still serve after rejecting.
	if _, err := e.Submit(context.Background(), Request{K: scalar.FromUint64(9)}); err != nil {
		t.Fatalf("submit after batch rejection: %v", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := NewWithProcessor(testProcessor(t), Options{Workers: 1})
	e.Close()
	if _, err := e.Submit(context.Background(), Request{K: scalar.FromUint64(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestCloseIdempotentAndRaceSafe is the regression test for Close
// racing concurrent Close and in-flight Submit calls: every submission
// must resolve (a correct result or an honest ErrClosed/ErrQueueFull),
// both closers must return, and the accounting must reconcile — no
// hang, no panic, no lost request.
func TestCloseIdempotentAndRaceSafe(t *testing.T) {
	for iter := 0; iter < 3; iter++ {
		e := NewWithProcessor(testProcessor(t), Options{Workers: 2, QueueDepth: 16})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				k := scalar.FromUint64(uint64(iter*100 + i + 1))
				r, err := e.Submit(context.Background(), Request{K: k})
				switch {
				case err == nil:
					want := oracle(k, curve.Affine{})
					if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
						t.Errorf("iter %d submit %d: accepted result is wrong", iter, i)
					}
				case errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull):
					// honest refusal while closing / under pressure
				default:
					t.Errorf("iter %d submit %d: unexpected error %v", iter, i, err)
				}
			}(i)
		}
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				e.Close()
			}()
		}
		close(start)
		wg.Wait()
		e.Close() // and once more after everything settled
		snap := e.Metrics().Snapshot()
		sub := snap.Counters["engine.submitted"]
		done := snap.Counters["engine.completed"] + snap.Counters["engine.canceled"]
		if sub != done {
			t.Fatalf("iter %d: submitted %d != completed+canceled %d", iter, sub, done)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(ctx, Request{K: scalar.FromUint64(1)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProcessorCacheShared(t *testing.T) {
	p := testProcessor(t)
	before := CacheSize()
	q, err := CachedProcessor(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Fatal("same config must return the same cached processor instance")
	}
	if CacheSize() != before {
		t.Fatalf("cache grew on a repeat config: %d -> %d", before, CacheSize())
	}
	e1 := newTestEngine(t, Options{Workers: 1})
	e2 := newTestEngine(t, Options{Workers: 2})
	if e1.Processor() != e2.Processor() {
		t.Fatal("engines with the same config must share one processor")
	}
}

// TestSchnorrQOverEngine runs SchnorrQ signing and verification with
// every scalar multiplication executed on the engine's RTL workers, and
// checks bit-compatibility with the software scheme.
func TestSchnorrQOverEngine(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2, Verify: true})
	ctx := context.Background()
	key, err := schnorrq.NewKeyFromSeed([32]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("signed on the modeled ASIC")
	sig, err := key.SignWith(ctx, e, msg)
	if err != nil {
		t.Fatal(err)
	}
	if soft := key.Sign(msg); sig != soft {
		t.Fatal("engine-signed signature differs from software signature")
	}
	ok, err := schnorrq.VerifyWith(ctx, e, &key.Public, msg, sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("engine verification rejected a valid signature")
	}
	ok, err = schnorrq.VerifyWith(ctx, e, &key.Public, []byte("tampered"), sig[:])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("engine verification accepted a tampered message")
	}
}
