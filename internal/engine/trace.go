// Request-lifecycle span tracing: every sampled request leaves a chain
// of Chrome trace_event slices on the engine's Recorder — admission,
// queue wait, lane fill, each execute attempt, validation verdict,
// delivery — and every request (sampled or not) feeds the always-on
// per-stage latency histograms (engine.queue_wait_seconds,
// engine.lane_fill_seconds, engine.execute_seconds, and the existing
// end-to-end engine.latency_seconds). The disabled path
// (Options.Trace == nil) allocates nothing: newSpan answers nil before
// touching anything, and every emission helper is a guarded no-op on a
// nil span.
package engine

import (
	"time"
)

// Track layout on the trace Recorder: track 0 carries the admission /
// queue / delivery timeline, worker w draws its lane-fill and execute
// slices on track w+1. NewWithProcessor names the tracks so viewers
// show labels instead of numbers.
const traceQueueTID = 0

func workerTID(id int) int { return id + 1 }

// reqSpan is the per-request trace state threaded through the job. A
// nil reqSpan means the request is unsampled (or tracing is off).
// enqUS is written by the submitting goroutine before the job becomes
// visible to workers; claimUS by the single worker that claims it — so
// the fields need no locking.
type reqSpan struct {
	enqUS   int64 // admission timestamp (recorder clock)
	claimUS int64 // queue exit: the claiming worker's timestamp
}

// newSpan decides whether a request is traced: never without a
// Recorder, otherwise deterministic 1-in-stride sampling off a shared
// atomic counter (stride 1 skips the counter entirely).
func (e *Engine) newSpan() *reqSpan {
	if e.trace == nil {
		return nil
	}
	if e.traceStride > 1 && e.traceCtr.Add(1)%e.traceStride != 1 {
		return nil
	}
	return &reqSpan{}
}

// spanAdmit stamps admission and draws the admit marker. Called before
// the job enters the queue, so workers never race the enqUS write.
func (e *Engine) spanAdmit(j *job) {
	if j.span == nil {
		return
	}
	j.span.enqUS = e.trace.NowUS()
	e.trace.Instant(traceQueueTID, "admit", "engine", j.span.enqUS,
		map[string]any{"req": j.id})
}

// spanReject marks a request the bounded queue refused (its lifecycle
// ends here; there will be no queue_wait or request slice).
func (e *Engine) spanReject(j *job) {
	if j.span == nil {
		return
	}
	e.trace.Instant(traceQueueTID, "reject", "engine", e.trace.NowUS(),
		map[string]any{"req": j.id})
}

// claimJob stamps a job's exit from the queue: the wall-clock claim
// time, the always-on queue-wait histogram, and (sampled) the
// queue_wait slice from admission to claim.
func (e *Engine) claimJob(j *job) {
	j.claim = time.Now()
	e.queueWait.Observe(j.claim.Sub(j.enq).Seconds())
	if j.span == nil {
		return
	}
	j.span.claimUS = e.trace.NowUS()
	e.trace.Slice(traceQueueTID, "queue_wait", "engine",
		j.span.enqUS, j.span.claimUS-j.span.enqUS,
		map[string]any{"req": j.id})
}

// spanLaneFill draws the coalescing wait — claim to lockstep dispatch —
// on the executing worker's track, tagged with the width the batch
// actually reached.
func (e *Engine) spanLaneFill(j *job, worker, lanes int) {
	if j.span == nil {
		return
	}
	now := e.trace.NowUS()
	e.trace.Slice(workerTID(worker), "lane_fill", "engine",
		j.span.claimUS, now-j.span.claimUS,
		map[string]any{"req": j.id, "lanes": lanes, "width": e.opts.LaneWidth})
}

// spanNowUS reads the recorder clock iff any job in the batch is
// sampled — the shared start timestamp of a lockstep lane run. Answers
// 0 (never read by the emission helpers) when nothing is sampled, so
// the disabled path stays free.
func (e *Engine) spanNowUS(jobs []*job) int64 {
	for _, j := range jobs {
		if j.span != nil {
			return e.trace.NowUS()
		}
	}
	return 0
}

// spanExecute draws one execution pass (an RTL attempt, a lockstep lane
// run, or the software fallback) on the worker's track.
func (e *Engine) spanExecute(j *job, worker, attempt int, backend Backend, startUS int64, ok bool) {
	if j.span == nil {
		return
	}
	now := e.trace.NowUS()
	e.trace.Slice(workerTID(worker), "execute", "engine", startUS, now-startUS,
		map[string]any{"req": j.id, "attempt": attempt, "backend": backend.String(), "ok": ok})
}

// spanValidate marks the end-of-run validation verdict of an RTL pass
// (validation happens inside the executor run, so it is an instant with
// an outcome, not a separately timed stage).
func (e *Engine) spanValidate(j *job, worker int, ok bool) {
	if j.span == nil {
		return
	}
	e.trace.Instant(workerTID(worker), "validate", "engine", e.trace.NowUS(),
		map[string]any{"req": j.id, "ok": ok})
}

// spanDeliver closes the request: the end-to-end slice back on the
// queue track plus the delivery marker.
func (e *Engine) spanDeliver(j *job, r Result) {
	if j.span == nil {
		return
	}
	now := e.trace.NowUS()
	e.trace.Slice(traceQueueTID, "request", "engine",
		j.span.enqUS, now-j.span.enqUS,
		map[string]any{"req": j.id, "backend": r.Backend.String(),
			"attempts": r.Attempts, "ok": r.Err == nil})
	e.trace.Instant(traceQueueTID, "deliver", "engine", now,
		map[string]any{"req": j.id})
}
