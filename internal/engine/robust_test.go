package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/fault"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

// fakeClock drives backoff and breaker cooldowns deterministically.
// Sleep advances the clock by the requested amount (a worker sleeping
// through its backoff IS the passage of time in these tests).
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *fakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// seuFault deterministically locates a register-file bit flip that the
// cheap on-curve validation detects (not one the hazard checker kills:
// those never produce a result to validate).
func seuFault(t testing.TB, p *core.Processor) fault.Fault {
	t.Helper()
	f, err := fault.FindDetected(p, fault.CampaignConfig{
		Seed: 0xF4017, Trials: 48, Sites: []fault.Site{fault.SiteRegFile},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// stuckMulFault is a persistent defect in the multiplier's pipeline
// output register: every retiring product has real-lane bit 0 forced
// high, so the datapath is wrong on essentially every run.
func stuckMulFault() fault.Fault {
	return fault.Fault{Site: fault.SitePipeMul, Kind: fault.KindStuckAt1, Bit: 0}
}

// TestRetryRecoversFromTransientSEU is the tentpole acceptance check at
// the engine level: an injected register-file bit flip is (a) detected
// by result validation, (b) retried successfully, and (c) visible in
// the fault.* / engine.* counters.
func TestRetryRecoversFromTransientSEU(t *testing.T) {
	p := testProcessor(t)
	f := seuFault(t, p)
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewWithProcessor(p, Options{
		Workers:  1,
		Registry: reg,
		Clock:    clk,
		// Budget 1 models a true SEU: it corrupts exactly one run, so
		// the retry executes on clean hardware.
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{f}, reg).SetBudget(1)
		},
	})
	defer e.Close()

	k := core.DefaultTraceScalar()
	r, err := e.Submit(context.Background(), Request{K: k})
	if err != nil {
		t.Fatalf("submit over a transient fault: %v", err)
	}
	want := oracle(k, curve.Affine{})
	if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
		t.Fatal("recovered result differs from functional oracle")
	}
	if r.Backend != BackendRTL {
		t.Fatalf("backend = %v, want rtl (the retry should have recovered)", r.Backend)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one detected fault, one clean retry)", r.Attempts)
	}
	if got := clk.Sleeps(); len(got) != 1 || got[0] <= 0 {
		t.Fatalf("backoff sleeps = %v, want exactly one positive delay", got)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"engine.validation_failed":  1,
		"engine.retries":            1,
		"engine.fallback_completed": 0,
		"fault.armed":               1,
		"fault.fired":               1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestWorkerQuarantine: a worker whose datapath keeps producing
// detected faults is moved permanently onto the software backend; its
// requests are still answered correctly, without further RTL attempts.
func TestWorkerQuarantine(t *testing.T) {
	p := testProcessor(t)
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(p, Options{
		Workers:         1,
		Registry:        reg,
		Clock:           newFakeClock(),
		MaxAttempts:     1,
		QuarantineAfter: 2,
		BreakerWindow:   -1, // isolate quarantine from the breaker
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{stuckMulFault()}, reg)
		},
	})
	defer e.Close()

	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		k := scalar.FromUint64(uint64(i) * 7)
		r, err := e.Submit(ctx, Request{K: k})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		want := oracle(k, curve.Affine{})
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("submit %d: degraded result differs from oracle", i)
		}
		if r.Backend != BackendSoftware {
			t.Fatalf("submit %d: backend = %v, want software", i, r.Backend)
		}
		if i >= 3 && r.Attempts != 0 {
			t.Fatalf("submit %d: quarantined worker made %d RTL attempts", i, r.Attempts)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.workers_quarantined"]; got != 1 {
		t.Fatalf("engine.workers_quarantined = %d, want 1", got)
	}
	if got := snap.Counters["engine.validation_failed"]; got != 2 {
		t.Fatalf("engine.validation_failed = %d, want 2 (then the worker was benched)", got)
	}
}

// TestBreakerDegradesUnderSustainedFaults is the acceptance scenario:
// under a sustained fault load the circuit breaker opens and the engine
// degrades to the functional backend — without dropping or mis-
// answering a single submitted request.
func TestBreakerDegradesUnderSustainedFaults(t *testing.T) {
	p := testProcessor(t)
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewWithProcessor(p, Options{
		Workers:          1,
		Registry:         reg,
		Clock:            clk,
		MaxAttempts:      2,
		QuarantineAfter:  -1, // isolate the breaker from quarantine
		BreakerWindow:    4,
		BreakerThreshold: 1.0,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{stuckMulFault()}, reg)
		},
	})
	defer e.Close()

	const n = 12
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		k := scalar.Scalar{uint64(i), uint64(i) * 0x9E3779B97F4A7C15, 3, uint64(i)}
		r, err := e.Submit(ctx, Request{K: k})
		if err != nil || r.Err != nil {
			t.Fatalf("submit %d dropped under sustained faults: %v / %v", i, err, r.Err)
		}
		want := oracle(k, curve.Affine{})
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("submit %d mis-answered under sustained faults", i)
		}
		// Requests 1-2 burn the 4-attempt window; from then on the
		// breaker is open and the RTL path is not even tried.
		if i > 2 && r.Attempts != 0 {
			t.Fatalf("submit %d: breaker open but %d RTL attempts made", i, r.Attempts)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["engine.breaker_opened"]; got != 1 {
		t.Fatalf("engine.breaker_opened = %d, want 1", got)
	}
	if got := snap.Gauges["engine.breaker_open"]; got != 1 {
		t.Fatalf("engine.breaker_open gauge = %v, want 1", got)
	}
	if got := snap.Counters["engine.validation_failed"]; got != 4 {
		t.Fatalf("engine.validation_failed = %d, want 4 (the window that tripped it)", got)
	}
	if got := snap.Counters["engine.fallback_completed"]; got != n {
		t.Fatalf("engine.fallback_completed = %d, want %d", got, n)
	}
	if got := snap.Counters["engine.completed"]; got != n {
		t.Fatalf("engine.completed = %d, want %d (no request may be dropped)", got, n)
	}
}

// TestBreakerHalfOpenProbeRecloses: after the cooldown one probe is let
// back onto the RTL path; when the hardware has healed (the transient
// budget is spent) the probe closes the breaker and RTL serving
// resumes.
func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	p := testProcessor(t)
	f := seuFault(t, p)
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	const cooldown = 10 * time.Millisecond
	e := NewWithProcessor(p, Options{
		Workers:          1,
		Registry:         reg,
		Clock:            clk,
		MaxAttempts:      1,
		QuarantineAfter:  -1,
		BreakerWindow:    1,
		BreakerThreshold: 1.0,
		BreakerCooldown:  cooldown,
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{f}, reg).SetBudget(1)
		},
	})
	defer e.Close()

	ctx := context.Background()
	k := core.DefaultTraceScalar()

	// 1: the fault fires, the single-slot window trips the breaker.
	r, err := e.Submit(ctx, Request{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if r.Backend != BackendSoftware || r.Attempts != 1 {
		t.Fatalf("request 1: backend %v attempts %d, want software/1", r.Backend, r.Attempts)
	}
	if got := reg.Snapshot().Gauges["engine.breaker_open"]; got != 1 {
		t.Fatalf("breaker did not open: gauge = %v", got)
	}

	// 2: still inside the cooldown — no RTL attempt at all.
	if r, err = e.Submit(ctx, Request{K: k}); err != nil {
		t.Fatal(err)
	} else if r.Backend != BackendSoftware || r.Attempts != 0 {
		t.Fatalf("request 2: backend %v attempts %d, want software/0", r.Backend, r.Attempts)
	}

	// 3: past the cooldown the probe runs on the healed datapath and
	// recloses the breaker.
	clk.Advance(cooldown)
	if r, err = e.Submit(ctx, Request{K: k}); err != nil {
		t.Fatal(err)
	} else if r.Backend != BackendRTL || r.Attempts != 1 {
		t.Fatalf("probe request: backend %v attempts %d, want rtl/1", r.Backend, r.Attempts)
	}
	want := oracle(k, curve.Affine{})
	if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
		t.Fatal("probe result differs from oracle")
	}
	if got := reg.Snapshot().Gauges["engine.breaker_open"]; got != 0 {
		t.Fatalf("breaker did not reclose after a clean probe: gauge = %v", got)
	}
}

func TestBackoffDelayBoundedAndJittered(t *testing.T) {
	rng := jitterRNG(1)
	base, max := 200*time.Microsecond, 10*time.Millisecond
	prevCap := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		cap := base << attempt
		if cap > max || cap <= 0 {
			cap = max
		}
		for i := 0; i < 32; i++ {
			d := backoffDelay(base, max, attempt, &rng)
			if d < cap/2 || d > cap {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, cap/2, cap)
			}
		}
		if cap < prevCap {
			t.Fatalf("attempt %d: backoff cap shrank", attempt)
		}
		prevCap = cap
	}
	if d := backoffDelay(0, max, 3, &rng); d != 0 {
		t.Fatalf("zero base must mean zero delay, got %v", d)
	}
}
