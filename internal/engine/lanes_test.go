package engine

import (
	"context"
	mrand "math/rand"
	"testing"
	"time"

	"repro/internal/curve"
	"repro/internal/fault"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

func randReq(rng *mrand.Rand) Request {
	var k scalar.Scalar
	for i := range k {
		k[i] = rng.Uint64()
	}
	req := Request{K: k}
	if rng.Intn(2) == 1 {
		var b scalar.Scalar
		for i := range b {
			b[i] = rng.Uint64()
		}
		req.Base = curve.ScalarMultBinary(b, curve.Generator()).Affine()
	}
	return req
}

func wantPoint(req Request) curve.Affine {
	base := req.Base
	if base == (curve.Affine{}) {
		base = curve.GeneratorAffine()
	}
	return curve.ScalarMult(req.K, curve.FromAffine(base)).Affine()
}

// TestEngineCoalescing drives a coalescing engine (LaneWidth 4) with a
// mixed fixed/variable-base load: every result must be correct and RTL-
// backed, the lockstep path must actually be taken, and the telemetry
// must reconcile exactly after drain.
func TestEngineCoalescing(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 2, QueueDepth: 64, LaneWidth: 4, Registry: reg,
	})
	rng := mrand.New(mrand.NewSource(31415))
	const jobs = 24
	reqs := make([]Request, jobs)
	for i := range reqs {
		reqs[i] = randReq(rng)
	}
	results, err := e.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		want := wantPoint(reqs[i])
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("request %d: wrong point", i)
		}
		if r.Backend != BackendRTL || r.Attempts != 1 {
			t.Fatalf("request %d: backend %v attempts %d, want RTL/1", i, r.Backend, r.Attempts)
		}
	}
	e.Close()
	get := func(name string) int64 { return reg.Counter(name).Value() }
	if got := get("engine.submitted"); got != jobs {
		t.Fatalf("submitted = %d, want %d", got, jobs)
	}
	if get("engine.submitted") != get("engine.completed")+get("engine.canceled") {
		t.Fatal("telemetry does not reconcile: submitted != completed + canceled")
	}
	laneRuns, laneLanes := get("engine.lane_runs"), get("engine.lane_lanes")
	if laneRuns < 1 || laneLanes < 2 {
		t.Fatalf("lockstep path unused: lane_runs=%d lane_lanes=%d", laneRuns, laneLanes)
	}
	if laneLanes > jobs {
		t.Fatalf("lane_lanes=%d exceeds submitted jobs %d", laneLanes, jobs)
	}
	if v := reg.Gauge("engine.in_flight").Value(); v != 0 {
		t.Fatalf("in_flight = %v after drain, want 0", v)
	}
}

// TestEngineFlushDeadline pins the lone-request guarantee with an
// injected clock: a worker holding a partial batch waits for lane-mates
// only in FlushDeadline/4 slices up to the deadline, then runs — so a
// single submission completes after a bounded (fake) wait, and with a
// negative deadline it never waits at all.
func TestEngineFlushDeadline(t *testing.T) {
	clk := newFakeClock()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, LaneWidth: 4, FlushDeadline: time.Millisecond, Clock: clk,
	})
	defer e.Close()
	req := randReq(mrand.New(mrand.NewSource(7)))
	r, err := e.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := wantPoint(req)
	if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
		t.Fatal("lone coalesced request returned a wrong point")
	}
	var waited time.Duration
	for _, d := range clk.Sleeps() {
		if d != 250*time.Microsecond {
			t.Fatalf("flush wait slept %v, want FlushDeadline/4 slices", d)
		}
		waited += d
	}
	if waited == 0 {
		t.Fatal("partial batch ran without consulting the flush deadline")
	}
	if waited > 2*time.Millisecond {
		t.Fatalf("lone request held for %v of fake time, deadline was 1ms", waited)
	}

	// Negative deadline: run immediately, no flush sleeps at all.
	clk2 := newFakeClock()
	e2 := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, LaneWidth: 4, FlushDeadline: -1, Clock: clk2,
	})
	defer e2.Close()
	if _, err := e2.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if n := len(clk2.Sleeps()); n != 0 {
		t.Fatalf("negative FlushDeadline slept %d times, want 0", n)
	}
}

// TestEngineLaneFaultIsolation arms a one-shot guaranteed-detected
// fault on a coalescing engine: exactly one request of the batch pays a
// retry, every request still gets the correct RTL-backed answer, and
// the batch accounting reflects one detected fault.
func TestEngineLaneFaultIsolation(t *testing.T) {
	p := testProcessor(t)
	f := seuFault(t, p)
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(p, Options{
		Workers: 1, QueueDepth: 8, LaneWidth: 4, Verify: true, Registry: reg,
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{f}, reg).SetBudget(1)
		},
	})
	rng := mrand.New(mrand.NewSource(99))
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = randReq(rng)
	}
	results, err := e.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	retried := 0
	for i, r := range results {
		want := wantPoint(reqs[i])
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("request %d: wrong point", i)
		}
		if r.Backend != BackendRTL {
			t.Fatalf("request %d: backend %v, want RTL", i, r.Backend)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried != 1 {
		t.Fatalf("%d requests retried, want exactly the faulted lane", retried)
	}
	if got := reg.Counter("engine.validation_failed").Value(); got != 1 {
		t.Fatalf("validation_failed = %d, want 1", got)
	}
	if got := reg.Counter("engine.retries").Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

// TestEngineCoalescingCancellation: a request canceled while queued is
// skipped by the batch claim and never delivered, and the counters
// still reconcile.
func TestEngineCoalescingCancellation(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, QueueDepth: 16, LaneWidth: 4, Registry: reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(ctx, randReq(mrand.New(mrand.NewSource(1)))); err == nil {
		t.Fatal("submit with a done context must not run")
	}
	r, err := e.Submit(context.Background(), randReq(mrand.New(mrand.NewSource(2))))
	if err != nil || r.Err != nil {
		t.Fatalf("live submission failed: %v / %v", err, r.Err)
	}
	e.Close()
	get := func(name string) int64 { return reg.Counter(name).Value() }
	if get("engine.submitted") != get("engine.completed")+get("engine.canceled") {
		t.Fatal("telemetry does not reconcile after cancellation")
	}
}

// TestEngineCoalescedEqualsSingle runs the same workload through a
// coalescing engine and a classic single-job engine sharing one
// processor: byte-identical points either way.
func TestEngineCoalescedEqualsSingle(t *testing.T) {
	p := testProcessor(t)
	lanes := NewWithProcessor(p, Options{Workers: 1, QueueDepth: 32, LaneWidth: 4})
	single := NewWithProcessor(p, Options{Workers: 1, QueueDepth: 32})
	defer lanes.Close()
	defer single.Close()
	rng := mrand.New(mrand.NewSource(2718))
	reqs := make([]Request, 9)
	for i := range reqs {
		reqs[i] = randReq(rng)
	}
	rl, err := lanes.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := single.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if !rl[i].Point.X.Equal(rs[i].Point.X) || !rl[i].Point.Y.Equal(rs[i].Point.Y) {
			t.Fatalf("request %d: coalesced and single-job engines disagree", i)
		}
	}
}
