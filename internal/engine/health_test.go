package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

// TestHealthSnapshot drives the engine through its degradation ladder
// and asserts the Health() introspection surface tracks it: a clean
// engine reports full health, a persistently faulty one reports the
// validation failures, the quarantine, and the open breaker a
// supervisor needs to score it.
func TestHealthSnapshot(t *testing.T) {
	p := testProcessor(t)

	clean := NewWithProcessor(p, Options{Workers: 1})
	h := clean.Health()
	if h.Workers != 1 || h.Quarantined != 0 || h.BreakerOpen ||
		h.ValidationFailures != 0 || h.QueueDepth != 0 || h.OldestQueueAge != 0 {
		t.Fatalf("fresh engine health = %+v, want pristine", h)
	}
	if _, err := clean.Submit(context.Background(), Request{K: scalar.FromUint64(7)}); err != nil {
		t.Fatal(err)
	}
	if h := clean.Health(); h.Completed != 1 || h.ValidationFailures != 0 {
		t.Fatalf("after one clean request: health = %+v", h)
	}
	clean.Close()

	reg := telemetry.NewRegistry()
	sick := NewWithProcessor(p, Options{
		Workers:          1,
		Registry:         reg,
		Clock:            newFakeClock(),
		MaxAttempts:      1,
		QuarantineAfter:  2,
		BreakerWindow:    2,
		BreakerThreshold: 1.0,
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{stuckMulFault()}, reg)
		},
	})
	defer sick.Close()
	for i := 0; i < 3; i++ {
		if _, err := sick.Submit(context.Background(), Request{K: scalar.FromUint64(uint64(i) + 3)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	h = sick.Health()
	if h.ValidationFailures != 2 {
		t.Errorf("ValidationFailures = %d, want 2 (then the worker was benched)", h.ValidationFailures)
	}
	if h.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", h.Quarantined)
	}
	if !h.BreakerOpen {
		t.Error("BreakerOpen = false after a full window of faults")
	}
	if h.Completed != 3 {
		t.Errorf("Completed = %d, want 3 (fallback still answers)", h.Completed)
	}
}

// TestHealthQueueAgeAndExecHook pins the stalled-shard signal: with the
// single worker wedged inside ExecHook, queued requests age without
// bound and Health reports it; releasing the hook drains everything
// exactly once.
func TestHealthQueueAgeAndExecHook(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan int, 8)
	e := NewWithProcessor(testProcessor(t), Options{
		Workers:    1,
		QueueDepth: 8,
		ExecHook: func(w int) {
			entered <- w
			<-hold
		},
	})
	defer e.Close()

	var wg sync.WaitGroup
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Submit(context.Background(), Request{K: scalar.FromUint64(uint64(i) + 1)})
			results <- err
		}(i)
	}
	// The worker claims one job and wedges; the remaining two sit queued.
	<-entered
	deadline := time.Now().Add(10 * time.Second)
	for e.Health().QueueDepth != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h := e.Health()
	if h.QueueDepth != 2 {
		t.Fatalf("QueueDepth = %d with a wedged worker, want 2", h.QueueDepth)
	}
	if h.OldestQueueAge <= 0 {
		t.Fatalf("OldestQueueAge = %v, want > 0 while stalled", h.OldestQueueAge)
	}
	if h.Load != 3 {
		t.Fatalf("Load = %d, want 3 (1 claimed + 2 queued)", h.Load)
	}
	age1 := h.OldestQueueAge
	time.Sleep(5 * time.Millisecond)
	if age2 := e.Health().OldestQueueAge; age2 <= age1 {
		t.Fatalf("queue age did not grow while stalled: %v then %v", age1, age2)
	}

	close(hold)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("stalled request failed after release: %v", err)
		}
	}
	if h := e.Health(); h.QueueDepth != 0 || h.Load != 0 || h.Completed != 3 {
		t.Fatalf("post-release health = %+v, want drained", h)
	}
}
