package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/fault"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

// spanEvents indexes a recorder's output by event name.
func spanEvents(rec *telemetry.Recorder) map[string][]telemetry.TraceEvent {
	byName := map[string][]telemetry.TraceEvent{}
	for _, ev := range rec.Events() {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	return byName
}

// TestRequestSpanEndToEnd submits one request through a traced engine
// and checks the full lifecycle chain lands on the recorder — admit,
// queue_wait, execute, validate, request, deliver — all tagged with the
// same request id, plus the always-on per-stage histograms.
func TestRequestSpanEndToEnd(t *testing.T) {
	rec := telemetry.NewRecorder()
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, Registry: reg, Trace: rec, TraceSampleRate: 1,
	})
	defer e.Close()

	k := core.DefaultTraceScalar()
	r, err := e.Submit(context.Background(), Request{K: k})
	if err != nil || r.Err != nil {
		t.Fatalf("submit: %v / %v", err, r.Err)
	}

	byName := spanEvents(rec)
	for _, stage := range []string{"admit", "queue_wait", "execute", "validate", "request", "deliver"} {
		evs := byName[stage]
		if len(evs) != 1 {
			t.Fatalf("stage %q: %d events, want exactly 1", stage, len(evs))
		}
		if got := evs[0].Args["req"]; got != uint64(1) {
			t.Fatalf("stage %q: req arg = %v, want 1", stage, got)
		}
	}
	ex := byName["execute"][0]
	if ex.Args["backend"] != "rtl" || ex.Args["attempt"] != 1 || ex.Args["ok"] != true {
		t.Fatalf("execute args = %v", ex.Args)
	}
	if v := byName["validate"][0]; v.Args["ok"] != true {
		t.Fatalf("validate args = %v", v.Args)
	}
	req := byName["request"][0]
	if req.Args["backend"] != "rtl" || req.Args["ok"] != true {
		t.Fatalf("request args = %v", req.Args)
	}
	// The end-to-end slice contains the queue_wait and execute stages.
	qw, exq := byName["queue_wait"][0], byName["execute"][0]
	if qw.TS < req.TS || exq.TS+exq.Dur > req.TS+req.Dur {
		t.Fatal("stage slices fall outside the end-to-end request slice")
	}
	// Tracks are named for the viewer: queue track + one per worker.
	if len(byName["thread_name"]) != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", len(byName["thread_name"]))
	}

	snap := reg.Snapshot()
	for _, h := range []string{"engine.queue_wait_seconds", "engine.execute_seconds", "engine.latency_seconds"} {
		if got := snap.Histograms[h].Count; got != 1 {
			t.Fatalf("%s count = %d, want 1", h, got)
		}
	}

	// The flight ring saw the same lifecycle.
	kinds := map[string]bool{}
	for _, ev := range e.Flight().Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"admit", "execute", "deliver"} {
		if !kinds[k] {
			t.Fatalf("flight ring missing %q event (has %v)", k, kinds)
		}
	}
}

// TestTraceSampling: rate 0.5 traces every second request,
// deterministically.
func TestTraceSampling(t *testing.T) {
	rec := telemetry.NewRecorder()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, Trace: rec, TraceSampleRate: 0.5,
	})
	defer e.Close()
	ctx := context.Background()
	for i := 1; i <= 8; i++ {
		if _, err := e.Submit(ctx, Request{K: scalar.Scalar{uint64(i), 2, 3, 4}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(spanEvents(rec)["request"]); got != 4 {
		t.Fatalf("rate 0.5 over 8 requests traced %d, want 4", got)
	}
}

// TestSpanLaneBatch drives the coalescing path under tracing: a full
// batch produces lane_fill slices and one lockstep execute slice per
// lane, all attempt #1.
func TestSpanLaneBatch(t *testing.T) {
	rec := telemetry.NewRecorder()
	reg := telemetry.NewRegistry()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, Registry: reg, Trace: rec, TraceSampleRate: 1,
		LaneWidth: 2, FlushDeadline: 50 * time.Millisecond,
	})
	defer e.Close()

	reqs := []Request{{K: scalar.Scalar{1, 2, 3, 4}}, {K: scalar.Scalar{5, 6, 7, 8}}}
	rs, err := e.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		want := oracle(reqs[i].K, curve.Affine{})
		if !r.Point.X.Equal(want.X) || !r.Point.Y.Equal(want.Y) {
			t.Fatalf("lane %d wrong answer", i)
		}
	}
	byName := spanEvents(rec)
	if got := len(byName["lane_fill"]); got != 2 {
		t.Fatalf("lane_fill slices = %d, want 2", got)
	}
	if got := len(byName["execute"]); got != 2 {
		t.Fatalf("execute slices = %d, want 2", got)
	}
	for _, ev := range byName["execute"] {
		if ev.Args["attempt"] != 1 || ev.Args["backend"] != "rtl" {
			t.Fatalf("lockstep execute args = %v", ev.Args)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["engine.lane_fill_ratio"]; got != 1 {
		t.Fatalf("lane_fill_ratio = %v, want 1 (full batch)", got)
	}
	if got := snap.Histograms["engine.lane_fill_seconds"].Count; got < 1 {
		t.Fatalf("lane_fill_seconds count = %d, want >= 1", got)
	}
}

// TestLaneFillDeadlineMetrics: a lone request on a wide-lane engine is
// flushed by the deadline, and says so in the metrics.
func TestLaneFillDeadlineMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewWithProcessor(testProcessor(t), Options{
		Workers: 1, Registry: reg, Clock: clk,
		LaneWidth: 4, FlushDeadline: 200 * time.Microsecond,
	})
	defer e.Close()

	k := core.DefaultTraceScalar()
	r, err := e.Submit(context.Background(), Request{K: k})
	if err != nil || r.Backend != BackendRTL {
		t.Fatalf("submit: %v, backend %v", err, r.Backend)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.flush_deadline_hits"]; got < 1 {
		t.Fatalf("flush_deadline_hits = %d, want >= 1 (partial batch flushed)", got)
	}
	if got := snap.Gauges["engine.lane_fill_ratio"]; got != 0.25 {
		t.Fatalf("lane_fill_ratio = %v, want 0.25 (1 of 4 lanes)", got)
	}
}

// TestFlightDumpOnBreakerTrip forces the breaker open under a sustained
// stuck-at fault and checks the anomaly dump machinery: the trip
// auto-snapshots the flight ring, and the dump holds the failing
// request's validation_failed events — the post-mortem story, captured
// at the moment of degradation with no tracing enabled.
func TestFlightDumpOnBreakerTrip(t *testing.T) {
	p := testProcessor(t)
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewWithProcessor(p, Options{
		Workers:          1,
		Registry:         reg,
		Clock:            clk,
		MaxAttempts:      2,
		QuarantineAfter:  -1,
		BreakerWindow:    4,
		BreakerThreshold: 1.0,
		BreakerCooldown:  time.Hour,
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{stuckMulFault()}, reg)
		},
	})
	defer e.Close()

	ctx := context.Background()
	for i := 1; i <= 4; i++ {
		k := scalar.Scalar{uint64(i), uint64(i) * 0x9E3779B97F4A7C15, 3, uint64(i)}
		if r, err := e.Submit(ctx, Request{K: k}); err != nil || r.Err != nil {
			t.Fatalf("submit %d: %v / %v", i, err, r.Err)
		}
	}
	if got := reg.Snapshot().Counters["engine.breaker_opened"]; got != 1 {
		t.Fatalf("engine.breaker_opened = %d, want 1", got)
	}

	var trip *telemetry.FlightDump
	for i, d := range e.Flight().Dumps() {
		if d.Reason == "breaker_open" {
			trip = &e.Flight().Dumps()[i]
		}
	}
	if trip == nil {
		t.Fatal("no breaker_open dump in the flight recorder")
	}
	// The dump carries the events that tripped the breaker: the failing
	// requests' detected faults (request 2's second attempt is the 4th
	// fault in the window) and the trip marker itself.
	var fails, opens int
	var sawReq2 bool
	for _, ev := range trip.Events {
		switch ev.Kind {
		case "validation_failed":
			fails++
			if ev.Req == 2 {
				sawReq2 = true
			}
		case "breaker_open":
			opens++
		}
	}
	if fails != 4 || opens != 1 || !sawReq2 {
		t.Fatalf("trip dump: %d validation_failed (want 4), %d breaker_open (want 1), req2 seen %v",
			fails, opens, sawReq2)
	}
	// Dump metadata identifies the configuration that tripped.
	if trip.Meta["breaker_window"] != 4 || trip.Meta["workers"] != 1 {
		t.Fatalf("trip dump meta = %v", trip.Meta)
	}
}

// TestFlightDumpOnQuarantine: a worker that keeps failing is
// quarantined, and the quarantine dump holds its failing attempts.
func TestFlightDumpOnQuarantine(t *testing.T) {
	p := testProcessor(t)
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	e := NewWithProcessor(p, Options{
		Workers:         1,
		Registry:        reg,
		Clock:           clk,
		MaxAttempts:     3,
		QuarantineAfter: 2,
		BreakerWindow:   -1,
		Injector: func(int) rtl.Injector {
			return fault.NewInjector([]fault.Fault{stuckMulFault()}, reg)
		},
	})
	defer e.Close()

	k := core.DefaultTraceScalar()
	r, err := e.Submit(context.Background(), Request{K: k})
	if err != nil || r.Err != nil {
		t.Fatalf("submit: %v / %v", err, r.Err)
	}
	if r.Backend != BackendSoftware {
		t.Fatalf("backend = %v, want software after quarantine", r.Backend)
	}

	dumps := e.Flight().Dumps()
	var q *telemetry.FlightDump
	for i, d := range dumps {
		if d.Reason == "worker_quarantined" {
			q = &dumps[i]
		}
	}
	if q == nil {
		t.Fatalf("no worker_quarantined dump (reasons: %v)", dumps)
	}
	var fails int
	for _, ev := range q.Events {
		if ev.Kind == "validation_failed" && ev.Req == 1 {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("quarantine dump holds %d failing attempts of req 1, want 2", fails)
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["engine.workers_active"]; got != 0 {
		t.Fatalf("workers_active = %v, want 0", got)
	}
	if got := snap.Gauges["engine.worker_0_state"]; got != 1 {
		t.Fatalf("worker_0_state = %v, want 1 (quarantined)", got)
	}
}

// TestTracingDisabledZeroAlloc proves the disabled tracing path costs
// nothing: with Options.Trace nil, the span helpers allocate zero bytes
// per request, preserving the engine hot path (and the executor's
// zero-alloc guarantee, checked in internal/core, is untouched because
// tracing never reaches into the datapath).
func TestTracingDisabledZeroAlloc(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	j := &job{id: 1}
	allocs := testing.AllocsPerRun(100, func() {
		j.span = e.newSpan()
		e.spanAdmit(j)
		e.claimJob(j)
		e.spanLaneFill(j, 0, 1)
		e.spanExecute(j, 0, 1, BackendRTL, 0, true)
		e.spanValidate(j, 0, true)
		e.spanDeliver(j, Result{})
	})
	if allocs != 0 {
		t.Fatalf("tracing-disabled span path allocates %v/op, want 0", allocs)
	}
}
