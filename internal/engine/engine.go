// Package engine is the serving layer over the modeled cryptoprocessor:
// a concurrent batch scalar-multiplication service. One Engine owns a
// pool of workers, each with an independent core.Executor over a shared
// (immutable, cache-deduplicated) core.Processor, so many scalar
// multiplications proceed in parallel without locking the datapath
// model. Requests enter through Submit / SubmitBatch against a bounded
// queue: when the queue is full the engine rejects with ErrQueueFull
// (backpressure) instead of growing without bound, and a caller's
// context cancellation abandons work that has not yet been claimed by a
// worker.
//
// Every engine reports into an internal/telemetry Registry (queue depth
// and in-flight gauges, submitted/completed/canceled/rejected counters,
// an end-to-end latency histogram), and the counters reconcile exactly:
// after the engine drains, submitted == completed + canceled.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/rtl"
	"repro/internal/scalar"
	"repro/internal/telemetry"
)

var (
	// ErrClosed is returned by submissions to a closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrQueueFull is the backpressure signal: the bounded queue cannot
	// take the submission. Callers should retry later or shed load.
	ErrQueueFull = errors.New("engine: queue full")
)

// Options sizes an Engine.
type Options struct {
	// Workers is the worker-pool size; each worker owns an independent
	// RTL executor. Defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unclaimed requests.
	// Submissions beyond it fail fast with ErrQueueFull. Defaults to
	// 4 * Workers.
	QueueDepth int
	// Registry receives the engine's metrics (a fresh registry is
	// created when nil). Metric names are listed in docs/ENGINE.md.
	Registry *telemetry.Registry
	// Verify cross-checks every result against the pure functional
	// curve model (the differential oracle). Roughly doubles the cost
	// of a request; meant for soak tests and acceptance runs.
	Verify bool
}

// Request is one scalar multiplication [K]Base. The zero-value Base
// (which is not a curve point) selects the generator.
type Request struct {
	K    scalar.Scalar
	Base curve.Affine
}

// Result carries the affine product and the datapath statistics of the
// run that produced it. Err is set when the RTL model faulted or, under
// Options.Verify, when the result failed the functional-model oracle.
type Result struct {
	Point curve.Affine
	Stats rtl.Stats
	Err   error
}

// Job lifecycle: a submitted job is pending until either a worker claims
// it (then exactly one Result is delivered on done) or the submitter
// cancels it (then nothing is ever sent on done).
const (
	jobPending int32 = iota
	jobClaimed
	jobCanceled
)

type job struct {
	req   Request
	state atomic.Int32
	done  chan Result // buffered 1; sent exactly once iff claimed
	enq   time.Time
}

// Engine is a concurrent batch scalar-multiplication service. Create
// with New or NewWithProcessor; all methods are safe for concurrent use.
type Engine struct {
	proc *core.Processor
	opts Options

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*job
	closed bool

	wg sync.WaitGroup

	submitted *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	rejected  *telemetry.Counter
	canceled  *telemetry.Counter
	depth     *telemetry.Gauge
	inFlight  *telemetry.Gauge
	latency   *telemetry.Histogram
}

// New builds (or fetches from the process-wide cache — see
// CachedProcessor) the processor for cfg and starts an engine over it.
func New(cfg core.Config, opts Options) (*Engine, error) {
	p, err := CachedProcessor(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithProcessor(p, opts), nil
}

// NewWithProcessor starts an engine over an already-built processor.
func NewWithProcessor(p *core.Processor, opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.Workers
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	reg := opts.Registry
	e := &Engine{
		proc:      p,
		opts:      opts,
		submitted: reg.Counter("engine.submitted"),
		completed: reg.Counter("engine.completed"),
		failed:    reg.Counter("engine.failed"),
		rejected:  reg.Counter("engine.rejected"),
		canceled:  reg.Counter("engine.canceled"),
		depth:     reg.Gauge("engine.queue_depth"),
		inFlight:  reg.Gauge("engine.in_flight"),
		latency: reg.Histogram("engine.latency_seconds",
			0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
	}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker(p.NewExecutor())
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Processor returns the shared processor instance the engine runs on.
func (e *Engine) Processor() *core.Processor { return e.proc }

// Metrics returns the registry the engine reports into.
func (e *Engine) Metrics() *telemetry.Registry { return e.opts.Registry }

// Submit enqueues one request and waits for its result. It fails fast
// with ErrQueueFull when the bounded queue cannot take the request and
// with ErrClosed after Close. If ctx is done before a worker claims the
// request, the request is abandoned and ctx.Err() returned; if a worker
// has already claimed it, Submit delivers that worker's result (the
// datapath run is milliseconds — results are never silently dropped).
func (e *Engine) Submit(ctx context.Context, req Request) (Result, error) {
	js, err := e.enqueue(ctx, req)
	if err != nil {
		return Result{}, err
	}
	return e.await(ctx, js[0])
}

// SubmitBatch enqueues all requests as one unit — either the whole
// batch is accepted or none of it is (an over-full queue rejects with
// ErrQueueFull without partial enqueue) — then waits for every result.
// The returned slice always has len(reqs) entries on acceptance;
// per-request failures are carried in Result.Err, and the returned
// error is the first of them (or ctx.Err() if the batch was cut short).
func (e *Engine) SubmitBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	js, err := e.enqueue(ctx, reqs...)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(js))
	var firstErr error
	for i, j := range js {
		r, err := e.await(ctx, j)
		if err != nil && r.Err == nil {
			r.Err = err
		}
		out[i] = r
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// ScalarMult is a convenience Submit of [k]G.
func (e *Engine) ScalarMult(ctx context.Context, k scalar.Scalar) (curve.Affine, error) {
	r, err := e.Submit(ctx, Request{K: k})
	return r.Point, err
}

// ScalarMultAffine submits [k]Base and returns the affine result. It is
// the schnorrq.ScalarMulter backend, letting signature schemes route
// their curve operations through the engine.
func (e *Engine) ScalarMultAffine(ctx context.Context, k scalar.Scalar, base curve.Affine) (curve.Affine, error) {
	r, err := e.Submit(ctx, Request{K: k, Base: base})
	return r.Point, err
}

// Close stops accepting submissions, lets the workers drain the queue,
// and waits for them to exit. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// enqueue atomically appends all reqs to the bounded queue. A context
// that is already done never enqueues (deterministic: the datapath will
// not run for a caller that has left); such requests touch no counter,
// so the telemetry invariant submitted == completed + canceled is over
// accepted requests only.
func (e *Engine) enqueue(ctx context.Context, reqs ...Request) ([]*job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now()
	js := make([]*job, len(reqs))
	for i, r := range reqs {
		js[i] = &job{req: r, done: make(chan Result, 1), enq: now}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if len(e.queue)+len(js) > e.opts.QueueDepth {
		e.mu.Unlock()
		e.rejected.Add(int64(len(js)))
		return nil, ErrQueueFull
	}
	e.queue = append(e.queue, js...)
	e.depth.Set(float64(len(e.queue)))
	if len(js) == 1 {
		e.cond.Signal()
	} else {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	e.submitted.Add(int64(len(js)))
	return js, nil
}

// await blocks until j resolves: a worker's result, or cancellation
// while still pending.
func (e *Engine) await(ctx context.Context, j *job) (Result, error) {
	select {
	case r := <-j.done:
		return r, r.Err
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobPending, jobCanceled) {
			e.canceled.Inc()
			return Result{}, ctx.Err()
		}
		// A worker won the race: its result is already being computed
		// and will arrive; deliver it rather than losing it.
		r := <-j.done
		return r, r.Err
	}
}

// worker pops jobs and executes them on its own executor.
func (e *Engine) worker(ex *core.Executor) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.depth.Set(float64(len(e.queue)))
		e.mu.Unlock()

		if !j.state.CompareAndSwap(jobPending, jobClaimed) {
			continue // canceled while queued; the canceler accounted for it
		}
		e.inFlight.Add(1)
		base := j.req.Base
		if base == (curve.Affine{}) {
			base = curve.GeneratorAffine()
		}
		var r Result
		if e.opts.Verify {
			r.Point, r.Stats, r.Err = ex.ScalarMultChecked(j.req.K, base)
		} else {
			r.Point, r.Stats, r.Err = ex.ScalarMultPoint(j.req.K, base)
		}
		e.inFlight.Add(-1)
		e.latency.Observe(time.Since(j.enq).Seconds())
		if r.Err != nil {
			e.failed.Inc()
		}
		e.completed.Inc()
		j.done <- r
	}
}
